// Ablation: content-defined chunk granularity vs dedup efficiency and
// metadata overhead (the §5.1 design choice; CYRUS follows Dropbox's 4 MB
// average).
//
// Workload: a user repeatedly backs up a 24 MB working set; between
// backups a few files get small local edits. Smaller chunks localize the
// edits (fewer bytes re-uploaded) but multiply metadata rows; whole-file
// "chunking" re-uploads an entire file for a one-byte change. The bench
// reports re-uploaded share bytes and metadata bytes per configuration.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace {

using namespace cyrus;

struct RunResult {
  uint64_t first_backup_bytes = 0;
  uint64_t incremental_bytes = 0;  // shares re-uploaded across 4 edit rounds
  uint64_t metadata_bytes = 0;
  size_t unique_chunks = 0;
};

RunResult RunWorkload(uint64_t avg_chunk, const char* label) {
  (void)label;
  CyrusConfig config;
  config.key_string = "chunking ablation";
  config.client_id = "bench";
  config.t = 2;
  config.epsilon = 5e-4;
  config.cluster_aware = false;
  config.chunker.modulus = avg_chunk;
  config.chunker.min_chunk_size = std::max<uint64_t>(avg_chunk / 8, 64);
  config.chunker.max_chunk_size = avg_chunk * 16;
  config.chunker.window_size = 48;
  auto client = std::move(CyrusClient::Create(config)).value();

  std::vector<std::shared_ptr<SimulatedCsp>> csps;
  for (int i = 0; i < 4; ++i) {
    csps.push_back(
        std::make_shared<SimulatedCsp>(SimulatedCspOptions{StrCat("csp", i)}));
    CspProfile profile;
    profile.download_bytes_per_sec = 2e6;
    profile.upload_bytes_per_sec = 1e6;
    if (!client->AddCsp(csps[i], profile, Credentials{"token"}).ok()) {
      std::abort();
    }
  }

  // 12 files x 2 MB working set.
  Rng rng(777);
  std::vector<Bytes> files(12);
  for (auto& file : files) {
    file.resize(2 * 1024 * 1024);
    for (auto& b : file) {
      b = static_cast<uint8_t>(rng.Next());
    }
  }

  RunResult result;
  auto backup = [&](uint64_t* sink) {
    for (size_t f = 0; f < files.size(); ++f) {
      auto put = client->Put(StrCat("file", f), files[f]);
      if (!put.ok()) {
        std::abort();
      }
      *sink += put->uploaded_share_bytes;
      result.metadata_bytes += put->transfer.TotalBytes(TransferKind::kPutMeta);
    }
  };
  backup(&result.first_backup_bytes);

  // Four edit rounds: 3 files get a 4 KB splice each, then a backup.
  for (int round = 0; round < 4; ++round) {
    for (int e = 0; e < 3; ++e) {
      Bytes& file = files[rng.NextBelow(files.size())];
      const size_t at = rng.NextBelow(file.size() - 4096);
      for (size_t k = 0; k < 4096; ++k) {
        file[at + k] = static_cast<uint8_t>(rng.Next());
      }
    }
    backup(&result.incremental_bytes);
  }
  result.unique_chunks = client->chunk_table().size();
  return result;
}

}  // namespace

int main() {
  std::printf(
      "Ablation: chunk granularity vs dedup efficiency (24 MB working set,\n"
      "4 backup rounds with 3 x 4 KB edits each; t=2, n=3: shares = 1.5x bytes)\n\n");
  std::printf("%-14s %14s %18s %16s %14s\n", "avg chunk", "initial bytes",
              "incremental bytes", "metadata bytes", "unique chunks");

  struct Config {
    const char* label;
    uint64_t avg_chunk;
  };
  const Config configs[] = {
      {"128 KB", 128 * 1024},
      {"512 KB", 512 * 1024},
      {"2 MB", 2 * 1024 * 1024},
      {"whole-file", 64 * 1024 * 1024},  // max > file size: one chunk per file
  };
  for (const Config& config : configs) {
    const RunResult r = RunWorkload(config.avg_chunk, config.label);
    std::printf("%-14s %14s %18s %16s %14zu\n", config.label,
                HumanBytes(r.first_backup_bytes).c_str(),
                HumanBytes(r.incremental_bytes).c_str(),
                HumanBytes(r.metadata_bytes).c_str(), r.unique_chunks);
  }
  std::printf(
      "\nReading: the initial backup always moves n/t = 1.5x the working set\n"
      "(coding overhead); smaller chunks cut incremental upload bytes by ~6x\n"
      "at the cost of more metadata rows - the Dropbox-style multi-MB\n"
      "average the paper adopts sits at the knee of that curve.\n");
  return 0;
}
