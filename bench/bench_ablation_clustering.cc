// Ablation: cluster-aware placement vs plain consistent hashing under
// correlated platform failures (the §4.1 design choice).
//
// Two CSPs share a physical platform (the paper's Amazon case). When the
// platform goes down, both go down together. A chunk with t-of-n shares
// survives iff at least t shares remain reachable. Cluster-aware placement
// puts at most one share per platform, so a platform outage costs at most
// one share; oblivious placement sometimes puts two shares on the doomed
// platform and loses data. This bench measures chunk-loss rates of both
// policies under simulated correlated outages.
#include <cstdio>
#include <set>
#include <vector>

#include "src/core/hash_ring.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

int main() {
  using namespace cyrus;

  // Six providers on four platforms: {0,1} share platform A, {2,3} share
  // platform B, 4 and 5 are independent.
  const std::vector<int> platform_of = {0, 0, 1, 1, 2, 3};
  constexpr uint32_t kT = 2;
  constexpr uint32_t kN = 3;
  constexpr int kChunks = 20000;
  constexpr double kPlatformOutageProb = 0.05;  // per-trial platform downtime

  HashRing oblivious(64);
  HashRing aware(64);
  for (int c = 0; c < 6; ++c) {
    (void)oblivious.AddCsp(c, StrCat("csp", c), -1);
    (void)aware.AddCsp(c, StrCat("csp", c), platform_of[c]);
  }

  Rng rng(41);
  long oblivious_losses = 0;
  long aware_losses = 0;
  long double_exposure = 0;  // chunks with 2+ shares on one platform

  for (int i = 0; i < kChunks; ++i) {
    const Sha1Digest chunk_id = Sha1::Hash(StrCat("chunk-", i));
    auto oblivious_placement = oblivious.SelectCsps(chunk_id, kN);
    auto aware_placement = aware.SelectCspsClusterAware(chunk_id, kN);
    if (!oblivious_placement.ok() || !aware_placement.ok()) {
      return 1;
    }
    // Count platform double-exposure under oblivious placement.
    std::set<int> platforms;
    bool doubled = false;
    for (int csp : *oblivious_placement) {
      doubled |= !platforms.insert(platform_of[csp]).second;
    }
    double_exposure += doubled ? 1 : 0;

    // One random correlated-outage trial per chunk: each platform is down
    // independently with probability p; a down platform takes all of its
    // CSPs with it.
    bool platform_down[4];
    for (bool& down : platform_down) {
      down = rng.NextBool(kPlatformOutageProb);
    }
    auto survivors = [&](const std::vector<int>& placement) {
      uint32_t up = 0;
      for (int csp : placement) {
        up += platform_down[platform_of[csp]] ? 0 : 1;
      }
      return up;
    };
    oblivious_losses += survivors(*oblivious_placement) < kT ? 1 : 0;
    aware_losses += survivors(*aware_placement) < kT ? 1 : 0;
  }

  std::printf("Ablation: platform-aware share placement (t=%u, n=%u, %d chunks,\n"
              "platform outage probability %.0f%% per trial)\n\n",
              kT, kN, kChunks, kPlatformOutageProb * 100);
  std::printf("%-28s %18s %18s\n", "", "oblivious hashing", "cluster-aware");
  std::printf("%-28s %18.2f%% %17s\n", "chunks with 2 shares on one platform",
              100.0 * double_exposure / kChunks, "0.00%");
  std::printf("%-28s %18.3f%% %17.3f%%\n", "chunk-loss rate",
              100.0 * oblivious_losses / kChunks, 100.0 * aware_losses / kChunks);
  std::printf("%-28s %18ld %18ld\n", "chunks lost", oblivious_losses, aware_losses);
  std::printf(
      "\nCluster-aware placement converts correlated platform failures into at\n"
      "most one lost share per chunk - the reliability argument of paper §4.1.\n");
  return 0;
}
