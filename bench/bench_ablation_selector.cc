// Ablation: how much does Algorithm 1's structure actually buy?
//
// The paper motivates its per-chunk online branch-and-bound by (a) the
// exponential C(t,n)^R search space of exact selection (footnote 12) and
// (b) the poor quality of one-shot heuristics. This bench quantifies both
// on random heterogeneous instances:
//   quality: predicted completion vs the exact one-shot MILP optimum and
//            vs greedy-fastest / random / round-robin;
//   cost:    wall-clock per Select() call as the chunk count grows.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/opt/download_selector.h"
#include "src/util/rng.h"

namespace {

using namespace cyrus;

DownloadProblem RandomProblem(size_t chunks, size_t csps, uint32_t t, Rng& rng) {
  DownloadProblem p;
  p.t = t;
  for (size_t c = 0; c < csps; ++c) {
    p.csp_bandwidth.push_back(rng.NextDouble(1e6, 20e6));
  }
  for (size_t r = 0; r < chunks; ++r) {
    DownloadChunk chunk;
    chunk.share_bytes = rng.NextDouble(0.5e6, 6e6);
    // Shares stored on a random subset of size n = t + 2.
    std::vector<int> pool(csps);
    for (size_t c = 0; c < csps; ++c) {
      pool[c] = static_cast<int>(c);
    }
    for (size_t k = 0; k < t + 2 && k < csps; ++k) {
      const size_t j = k + rng.NextBelow(pool.size() - k);
      std::swap(pool[k], pool[j]);
      chunk.stored_at.push_back(pool[k]);
    }
    p.chunks.push_back(std::move(chunk));
  }
  return p;
}

struct Aggregate {
  double time_ratio_sum = 0.0;  // selector / exact optimum
  double worst_ratio = 0.0;
  double select_micros = 0.0;
  int runs = 0;
};

}  // namespace

int main() {
  constexpr int kTrials = 10;
  constexpr size_t kCsps = 6;
  constexpr uint32_t kT = 2;

  std::printf("Ablation: download selection quality vs the exact MILP optimum\n");
  std::printf("(%d random instances per size; 6 CSPs, t=2, n=4 per chunk)\n\n", kTrials);
  std::printf("%6s | %22s | %22s | %22s | %22s\n", "chunks", "cyrus (Algorithm 1)",
              "greedy-fastest", "round-robin", "random");
  std::printf("%6s | %11s %10s | %11s %10s | %11s %10s | %11s %10s\n", "", "mean-ratio",
              "worst", "mean-ratio", "worst", "mean-ratio", "worst", "mean-ratio",
              "worst");

  for (size_t chunks : {2, 4, 6, 8}) {
    std::vector<std::unique_ptr<DownloadSelector>> selectors;
    selectors.push_back(std::make_unique<OptimalDownloadSelector>());
    selectors.push_back(std::make_unique<GreedyFastestDownloadSelector>());
    selectors.push_back(std::make_unique<RoundRobinDownloadSelector>());
    selectors.push_back(std::make_unique<RandomDownloadSelector>(99));
    std::vector<Aggregate> agg(selectors.size());

    Rng rng(1000 + chunks);
    for (int trial = 0; trial < kTrials; ++trial) {
      DownloadProblem p = RandomProblem(chunks, kCsps, kT, rng);
      ExactMilpDownloadSelector exact;
      auto optimum = exact.Select(p);
      if (!optimum.ok() || optimum->predicted_seconds <= 0.0) {
        continue;
      }
      for (size_t s = 0; s < selectors.size(); ++s) {
        const auto start = std::chrono::steady_clock::now();
        auto assignment = selectors[s]->Select(p);
        const auto stop = std::chrono::steady_clock::now();
        if (!assignment.ok()) {
          continue;
        }
        const double ratio = assignment->predicted_seconds / optimum->predicted_seconds;
        agg[s].time_ratio_sum += ratio;
        agg[s].worst_ratio = std::max(agg[s].worst_ratio, ratio);
        agg[s].select_micros +=
            std::chrono::duration<double, std::micro>(stop - start).count();
        ++agg[s].runs;
      }
    }
    std::printf("%6zu |", chunks);
    for (const Aggregate& a : agg) {
      std::printf(" %11.3f %10.3f |", a.time_ratio_sum / a.runs, a.worst_ratio);
    }
    std::printf("\n");
    std::printf("%6s |", "us/call");
    for (const Aggregate& a : agg) {
      std::printf(" %22.0f |", a.select_micros / a.runs);
    }
    std::printf("\n");
  }
  std::printf(
      "\nReading: ratios are completion time / exact optimum (1.000 = optimal).\n"
      "Algorithm 1 stays near-optimal at a polynomial cost; greedy-fastest piles\n"
      "every chunk onto the same clouds and degrades as the batch grows.\n");
  return 0;
}
