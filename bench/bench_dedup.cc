// Cross-user convergent dedup economics (the tentpole experiment for
// src/dedup; see DESIGN.md "Cross-user convergent dedup").
//
// Eight tenants share one CSP pool and one deployment-wide ShareIndex in
// convergent mode. Each tenant stores the same 9 "shared" files (common
// content: OS images, installers, the mail attachment everyone forwards)
// plus 3 private files, so 75% of the offered files are duplicates.
// Tenant 0 writes first and populates the index; tenants 1..7 then hit it
// on every shared chunk and skip encode+upload entirely. The run answers
// three questions, each with a hard bar:
//
//   1. storage: does the index's dedup ratio reach what the workload's
//      duplicate structure makes possible? (bar: >= 0.9x theoretical)
//   2. speed: is a duplicate-chunk Put actually cheap? Modeled transfer
//      completion over the 4-fast/3-slow testbed, hit-class vs miss-class
//      Put throughput. (bar: hits >= 3x misses)
//   3. GC: after tenants 1..7 delete everything, do budgeted scrub passes
//      drive physical bytes down to tenant 0's live footprint?
//      (bar: CSP share bytes and index physical bytes within 5% of the
//      shares tenant 0 uploaded)
//
// Emits BENCH_dedup.json; exits non-zero on any bar miss.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/core/reliability.h"
#include "src/dedup/share_index.h"
#include "src/rest/json.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

constexpr int kTenants = 8;
constexpr int kSharedFiles = 9;   // identical content across all tenants
constexpr int kUniqueFiles = 3;   // private per tenant
constexpr size_t kFileSize = 128 * 1024;
constexpr uint64_t kSeed = 20260809;
constexpr uint32_t kT = 2;
constexpr uint32_t kTargetN = 4;
// Per-pass scrub budget: small enough that reclaiming 7 tenants' private
// shares takes several passes (exercising the deferral path), large
// enough that the loop converges quickly.
constexpr uint64_t kScrubBudgetBytes = 1 * 1024 * 1024;
constexpr int kMaxScrubPasses = 64;

struct DedupBed {
  std::vector<std::shared_ptr<SimulatedCsp>> csps;
  std::vector<std::unique_ptr<CyrusClient>> tenants;
  std::vector<double> upload_bps;
  std::vector<double> download_bps;
};

// One client per tenant, all registering the same connectors in the same
// order (the ShareIndex contract) against the standard 4-fast/3-slow
// testbed, in convergent mode against one shared index.
DedupBed MakeBed(ShareIndex* index) {
  DedupBed bed;
  for (int i = 0; i < bench::kNumFastClouds + bench::kNumSlowClouds; ++i) {
    const bool fast = i < bench::kNumFastClouds;
    SimulatedCspOptions o;
    o.id = StrCat(fast ? "fast" : "slow", i);
    // Convergent shares are idempotent overwrites under a content-derived
    // name; every pool member must be name-keyed.
    o.naming = NamingPolicy::kNameKeyed;
    bed.csps.push_back(std::make_shared<SimulatedCsp>(o));
    const double rate =
        fast ? bench::kFastCloudBytesPerSec : bench::kSlowCloudBytesPerSec;
    bed.upload_bps.push_back(rate);
    bed.download_bps.push_back(rate);
  }

  for (int t = 0; t < kTenants; ++t) {
    CyrusConfig config;
    config.client_id = StrCat("tenant-", t);
    config.key_string = StrCat("user key ", t);
    config.t = kT;
    config.cluster_aware = false;
    config.default_failure_prob = 0.01;
    // Pin Eq. (1) to kTargetN shares per chunk.
    const double loss_n = ChunkLossProbability(kT, kTargetN, 0.01);
    const double loss_prev = ChunkLossProbability(kT, kTargetN - 1, 0.01);
    config.epsilon = std::sqrt(loss_n * loss_prev);
    // ~32 KB average chunks: a 128 KB file spans several chunks so the
    // dedup decision is genuinely per-chunk, not per-file.
    config.chunker.modulus = 32 * 1024;
    config.chunker.min_chunk_size = 4 * 1024;
    config.chunker.max_chunk_size = 128 * 1024;
    config.dedup_mode = DedupMode::kConvergent;
    config.dedup_salt = "bench deployment salt";
    config.share_index = index;
    config.repair.bandwidth_budget_bytes = kScrubBudgetBytes;

    auto client = CyrusClient::Create(std::move(config));
    if (!client.ok()) {
      std::fprintf(stderr, "Create: %s\n", client.status().ToString().c_str());
      std::abort();
    }
    for (size_t i = 0; i < bed.csps.size(); ++i) {
      CspProfile profile;
      profile.rtt_ms = 1.0;
      profile.upload_bytes_per_sec = bed.upload_bps[i];
      profile.download_bytes_per_sec = bed.download_bps[i];
      auto added = client.value()->AddCsp(bed.csps[i], profile,
                                          Credentials{"token"});
      if (!added.ok()) {
        std::fprintf(stderr, "AddCsp: %s\n",
                     added.status().ToString().c_str());
        std::abort();
      }
    }
    bed.tenants.push_back(std::move(client).value());
  }
  return bed;
}

Bytes RandomContent(size_t size, uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

// Accumulates one Put class (index hits vs misses) for the throughput
// contrast.
struct PutClass {
  uint64_t puts = 0;
  uint64_t logical_bytes = 0;
  uint64_t uploaded_share_bytes = 0;
  double modeled_seconds = 0.0;

  double ThroughputMBps() const {
    return modeled_seconds > 0 ? logical_bytes / modeled_seconds / 1e6 : 0.0;
  }
};

uint64_t CspShareBytes(const DedupBed& bed) {
  uint64_t total = 0;
  for (const auto& csp : bed.csps) {
    auto listing = csp->List("");
    if (!listing.ok()) {
      continue;
    }
    for (const ObjectInfo& object : *listing) {
      if (object.name.rfind("meta-", 0) == 0) {
        continue;  // version metadata, not share payload
      }
      total += object.size;
    }
  }
  return total;
}

double NowWallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace
}  // namespace cyrus

int main() {
  using namespace cyrus;
  using bench::BenchReport;

  std::printf(
      "Cross-user dedup economics: %d tenants x (%d shared + %d private) "
      "files of %zu KB\n\n",
      kTenants, kSharedFiles, kUniqueFiles, kFileSize / 1024);

  auto index_or = ShareIndex::Open(ShareIndexOptions{});
  if (!index_or.ok()) {
    std::fprintf(stderr, "ShareIndex::Open: %s\n",
                 index_or.status().ToString().c_str());
    return 1;
  }
  ShareIndex* index = index_or->get();
  DedupBed bed = MakeBed(index);

  // Shared content is identical for every tenant; private content is
  // seeded per (tenant, file).
  std::vector<Bytes> shared_content;
  for (int f = 0; f < kSharedFiles; ++f) {
    shared_content.push_back(RandomContent(kFileSize, kSeed + f));
  }

  PutClass miss_class;
  PutClass hit_class;
  uint64_t mixed_puts = 0;
  uint64_t total_logical = 0;
  uint64_t tenant0_uploaded_share_bytes = 0;

  bench::TimingOptions timing;
  for (int t = 0; t < kTenants; ++t) {
    CyrusClient* client = bed.tenants[t].get();
    for (int f = 0; f < kSharedFiles + kUniqueFiles; ++f) {
      const bool shared = f < kSharedFiles;
      const Bytes content =
          shared ? shared_content[f]
                 : RandomContent(kFileSize, kSeed + 1000 + t * 100 + f);
      const std::string path =
          StrCat(shared ? "shared-" : "private-", f, ".bin");
      auto put = client->Put(path, content);
      if (!put.ok()) {
        std::fprintf(stderr, "Put(%s, %s): %s\n", client->config().client_id.c_str(),
                     path.c_str(), put.status().ToString().c_str());
        return 1;
      }
      total_logical += put->content_bytes;
      if (t == 0) {
        tenant0_uploaded_share_bytes += put->uploaded_share_bytes;
      }
      const double seconds = bench::TransferCompletionSeconds(
          put->transfer, bed.upload_bps, bed.download_bps, timing);
      if (put->index_hit_chunks == put->total_chunks) {
        ++hit_class.puts;
        hit_class.logical_bytes += put->content_bytes;
        hit_class.uploaded_share_bytes += put->uploaded_share_bytes;
        hit_class.modeled_seconds += seconds;
      } else if (put->new_chunks == put->total_chunks) {
        ++miss_class.puts;
        miss_class.logical_bytes += put->content_bytes;
        miss_class.uploaded_share_bytes += put->uploaded_share_bytes;
        miss_class.modeled_seconds += seconds;
      } else {
        ++mixed_puts;
      }
    }
  }

  const ShareIndexStats write_stats = index->Stats();
  // What the duplicate structure makes possible: shared bytes stored once,
  // private bytes per tenant.
  const uint64_t shared_bytes =
      static_cast<uint64_t>(kSharedFiles) * kFileSize;
  const uint64_t theoretical_unique =
      shared_bytes + static_cast<uint64_t>(kTenants) * kUniqueFiles * kFileSize;
  const double theoretical_ratio =
      static_cast<double>(total_logical) / theoretical_unique;
  const double measured_ratio = write_stats.dedup_ratio();

  std::printf("%-14s | %5s | %11s | %10s | %9s\n", "put class", "puts",
              "logical_MB", "upload_MB", "MB/s");
  for (const auto& [name, cls] :
       {std::pair<const char*, const PutClass&>{"miss (unique)", miss_class},
        std::pair<const char*, const PutClass&>{"hit (dup)", hit_class}}) {
    std::printf("%-14s | %5llu | %11.2f | %10.2f | %9.2f\n", name,
                static_cast<unsigned long long>(cls.puts),
                cls.logical_bytes / 1e6, cls.uploaded_share_bytes / 1e6,
                cls.ThroughputMBps());
  }
  std::printf(
      "\ndedup ratio %.3fx (theoretical %.3fx), hit rate %.1f%%, "
      "physical %.2f MB for %.2f MB logical\n",
      measured_ratio, theoretical_ratio, 100.0 * write_stats.hit_rate(),
      write_stats.physical_bytes / 1e6, write_stats.logical_bytes / 1e6);

  // --- GC: tenants 1..7 delete everything; tenant 0 scrubs. -------------
  for (int t = 1; t < kTenants; ++t) {
    CyrusClient* client = bed.tenants[t].get();
    for (int f = 0; f < kSharedFiles + kUniqueFiles; ++f) {
      const std::string path =
          StrCat(f < kSharedFiles ? "shared-" : "private-", f, ".bin");
      const Status deleted = client->Delete(path);
      if (!deleted.ok()) {
        std::fprintf(stderr, "Delete(%s): %s\n", path.c_str(),
                     deleted.ToString().c_str());
        return 1;
      }
    }
  }

  const double gc_wall_start = NowWallSeconds();
  uint64_t chunks_reclaimed = 0;
  uint64_t shares_reclaimed = 0;
  uint64_t bytes_reclaimed = 0;
  uint64_t reclaims_deferred = 0;
  int scrub_passes = 0;
  while (!index->ZeroRefChunks().empty() && scrub_passes < kMaxScrubPasses) {
    auto scrub = bed.tenants[0]->ScrubOnce();
    if (!scrub.ok()) {
      std::fprintf(stderr, "ScrubOnce: %s\n",
                   scrub.status().ToString().c_str());
      return 1;
    }
    ++scrub_passes;
    chunks_reclaimed += scrub->stats.chunks_reclaimed;
    shares_reclaimed += scrub->stats.shares_reclaimed;
    bytes_reclaimed += scrub->stats.bytes_reclaimed;
    reclaims_deferred += scrub->stats.reclaims_deferred;
  }
  const double gc_wall_seconds = NowWallSeconds() - gc_wall_start;

  const ShareIndexStats gc_stats = index->Stats();
  const uint64_t csp_share_bytes = CspShareBytes(bed);
  // Everything live after the deletes is exactly the share set tenant 0
  // uploaded (its misses covered the shared pool and its own private
  // files).
  const uint64_t expected_physical = tenant0_uploaded_share_bytes;
  const double index_physical_error =
      expected_physical > 0
          ? std::fabs(static_cast<double>(gc_stats.physical_bytes) -
                      static_cast<double>(expected_physical)) /
                expected_physical
          : 1.0;
  const double csp_physical_error =
      expected_physical > 0
          ? std::fabs(static_cast<double>(csp_share_bytes) -
                      static_cast<double>(expected_physical)) /
                expected_physical
          : 1.0;

  std::printf(
      "\nGC: %d scrub passes reclaimed %llu chunks / %llu shares "
      "(%.2f MB, %llu deferred by the %.1f MB budget) in %.2fs wall\n",
      scrub_passes, static_cast<unsigned long long>(chunks_reclaimed),
      static_cast<unsigned long long>(shares_reclaimed), bytes_reclaimed / 1e6,
      static_cast<unsigned long long>(reclaims_deferred),
      kScrubBudgetBytes / 1e6, gc_wall_seconds);
  std::printf(
      "post-GC physical: index %.2f MB, CSPs %.2f MB vs %.2f MB live "
      "(%.1f%% / %.1f%% off, bar 5%%)\n",
      gc_stats.physical_bytes / 1e6, csp_share_bytes / 1e6,
      expected_physical / 1e6, 100.0 * index_physical_error,
      100.0 * csp_physical_error);

  // Tenant 0 must still read everything it stored after the reclaim.
  for (const char* path : {"shared-0.bin", "private-11.bin"}) {
    auto got = bed.tenants[0]->Get(path);
    if (!got.ok()) {
      std::fprintf(stderr, "post-GC Get(%s): %s\n", path,
                   got.status().ToString().c_str());
      return 1;
    }
  }

  BenchReport report("dedup");
  report.SetParam("tenants", uint64_t{kTenants});
  report.SetParam("shared_files", uint64_t{kSharedFiles});
  report.SetParam("unique_files", uint64_t{kUniqueFiles});
  report.SetParam("file_bytes", uint64_t{kFileSize});
  report.SetParam("t", uint64_t{kT});
  report.SetParam("n", uint64_t{kTargetN});
  report.SetParam("scrub_budget_bytes", kScrubBudgetBytes);
  report.SetParam("seed", kSeed);

  for (const auto& [name, cls] :
       {std::pair<const char*, const PutClass&>{"miss", miss_class},
        std::pair<const char*, const PutClass&>{"hit", hit_class}}) {
    JsonValue row{JsonValue::Object{}};
    row.Set("phase", "put");
    row.Set("put_class", name);
    row.Set("puts", cls.puts);
    row.Set("logical_bytes", cls.logical_bytes);
    row.Set("uploaded_share_bytes", cls.uploaded_share_bytes);
    row.Set("modeled_seconds", cls.modeled_seconds);
    row.Set("throughput_mbps", cls.ThroughputMBps());
    report.AddRow(std::move(row));
  }
  {
    JsonValue row{JsonValue::Object{}};
    row.Set("phase", "dedup");
    row.Set("logical_bytes", write_stats.logical_bytes);
    row.Set("unique_bytes", write_stats.unique_bytes);
    row.Set("physical_bytes", write_stats.physical_bytes);
    row.Set("dedup_ratio", measured_ratio);
    row.Set("theoretical_ratio", theoretical_ratio);
    row.Set("hit_rate", write_stats.hit_rate());
    row.Set("mixed_puts", mixed_puts);
    report.AddRow(std::move(row));
  }
  {
    JsonValue row{JsonValue::Object{}};
    row.Set("phase", "gc");
    row.Set("scrub_passes", uint64_t{static_cast<uint64_t>(scrub_passes)});
    row.Set("chunks_reclaimed", chunks_reclaimed);
    row.Set("shares_reclaimed", shares_reclaimed);
    row.Set("bytes_reclaimed", bytes_reclaimed);
    row.Set("reclaims_deferred", reclaims_deferred);
    row.Set("live_physical_bytes", expected_physical);
    row.Set("index_physical_bytes", gc_stats.physical_bytes);
    row.Set("csp_share_bytes", csp_share_bytes);
    row.Set("index_physical_error", index_physical_error);
    row.Set("csp_physical_error", csp_physical_error);
    row.Set("reclaim_mbps",
            gc_wall_seconds > 0 ? bytes_reclaimed / gc_wall_seconds / 1e6
                                : 0.0);
    report.AddRow(std::move(row));
  }
  {
    JsonValue summary{JsonValue::Object{}};
    summary.Set("phase", "summary");
    summary.Set("dedup_ratio", measured_ratio);
    summary.Set("theoretical_ratio", theoretical_ratio);
    summary.Set("hit_over_miss_throughput",
                miss_class.ThroughputMBps() > 0
                    ? hit_class.ThroughputMBps() / miss_class.ThroughputMBps()
                    : 0.0);
    summary.Set("gc_physical_error",
                std::max(index_physical_error, csp_physical_error));
    report.AddRow(std::move(summary));
  }
  std::printf("wrote %s\n", report.Write().c_str());

  // --- acceptance bars ---
  bool failed = false;
  if (measured_ratio < 0.9 * theoretical_ratio) {
    std::fprintf(stderr,
                 "FAIL: dedup ratio %.3fx below 0.9x theoretical (%.3fx)\n",
                 measured_ratio, 0.9 * theoretical_ratio);
    failed = true;
  }
  if (hit_class.ThroughputMBps() < 3.0 * miss_class.ThroughputMBps()) {
    std::fprintf(stderr,
                 "FAIL: duplicate-chunk Put throughput %.2f MB/s below 3x "
                 "unique (%.2f MB/s)\n",
                 hit_class.ThroughputMBps(), miss_class.ThroughputMBps());
    failed = true;
  }
  if (hit_class.puts == 0 || miss_class.puts == 0) {
    std::fprintf(stderr, "FAIL: empty put class (hits %llu, misses %llu)\n",
                 static_cast<unsigned long long>(hit_class.puts),
                 static_cast<unsigned long long>(miss_class.puts));
    failed = true;
  }
  if (index_physical_error > 0.05 || csp_physical_error > 0.05) {
    std::fprintf(stderr,
                 "FAIL: post-GC physical bytes off live logical footprint by "
                 "%.1f%% (index) / %.1f%% (CSP), bar 5%%\n",
                 100.0 * index_physical_error, 100.0 * csp_physical_error);
    failed = true;
  }
  if (!index->ZeroRefChunks().empty()) {
    std::fprintf(stderr, "FAIL: %zu zero-ref chunks left after %d passes\n",
                 index->ZeroRefChunks().size(), scrub_passes);
    failed = true;
  }
  return failed ? 1 : 0;
}
