// Degraded-mode transfer engine: availability and tail latency under
// injected CSP outages and a slow provider (the tentpole experiment for
// quorum writes + hedged reads).
//
// Two scenario families, both over the fault-injecting connector layer:
//
//   outage grid - 0/1/2 CSPs permanently down, hedging off vs on. Every
//     trial Puts a fresh multi-chunk file and Gets it back; with a failure
//     budget of 2 the quorum engine must keep Put availability at 1.0
//     while booking the missing shares as repair debt, and Get must keep
//     reconstructing from the surviving quorum.
//
//   slow-CSP tail - one provider sleeps a uniform [0, 30] real ms per call
//     while advertising the fastest link, so the download selector always
//     puts it in the primary set. Unhedged, every chunk waits out the
//     sleep; hedged, the fetcher's adaptive deadline fires a backup from a
//     spare CSP and the tail is cut. Reported as Get p50/p99 over
//     repeated single-file Gets.
//
// Emits BENCH_degraded.json. Exits non-zero when
//   - Put or Get availability drops below 1.0 anywhere in the grid,
//   - hedging regresses the no-fault Get p50 by more than 10% (+1 ms
//     timer-noise slack), or
//   - the hedged Get p99 under the slow CSP is not at least 1.5x better
//     than unhedged.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/cloud/fault_injection.h"
#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/rest/json.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

constexpr int kNumCsps = 5;
constexpr size_t kFileBytes = 16 * 1024;  // 16 x 1 KB chunks
constexpr int kTrials = 20;
constexpr double kSlowSleepMaxMs = 30.0;

struct DegradedBed {
  std::vector<std::shared_ptr<FaultInjectingConnector>> faults;
  std::unique_ptr<CyrusClient> client;
  std::unique_ptr<obs::MetricsRegistry> metrics;
};

DegradedBed MakeBed(bool hedged, int downed_csps, double slow_csp0_ms,
                    uint64_t seed) {
  DegradedBed bed;
  bed.metrics = std::make_unique<obs::MetricsRegistry>();

  CyrusConfig config;
  config.client_id = "bench-degraded";
  config.key_string = StrCat("degraded-key-", seed);
  config.t = 2;
  config.cluster_aware = false;
  config.transfer_concurrency = 4;
  // Pin Eq. (1) off its feasible range so every chunk targets n = kNumCsps
  // shares: outages then force genuinely degraded writes and the slow CSP
  // holds a share of every chunk.
  config.default_failure_prob = 0.5;
  config.epsilon = 1e-9;
  config.put_failure_budget = 2;
  // Fixed 1 KB chunks so every trial moves identical bytes.
  config.chunker.modulus = 1024;
  config.chunker.min_chunk_size = 1024;
  config.chunker.max_chunk_size = 1024;
  config.transfer_retry.max_attempts = 2;
  config.transfer_retry.initial_backoff_ms = 1.0;
  config.transfer_retry.seed = seed;
  config.metrics = bed.metrics.get();
  config.hedge.enabled = hedged;
  // factor 0.5: a fetch older than half the provider's own EWMA is a
  // straggler. With the slow CSP's per-call sleep uniform in [0, max] the
  // EWMA sits near max/2, so this hedges most of its downloads at ~max/4 -
  // an aggressive tail-cutting policy that a spare-rich deployment (n > t
  // fast providers idle) can afford, since a backup share is one cheap
  // extra download.
  config.hedge.deadline_factor = 0.5;
  config.hedge.min_deadline_ms = 1.0;
  config.hedge.default_deadline_ms = 5.0;
  config.hedge.max_hedges = 2;

  auto client = CyrusClient::Create(std::move(config));
  if (!client.ok()) {
    std::fprintf(stderr, "client: %s\n", client.status().ToString().c_str());
    std::abort();
  }
  bed.client = std::move(client).value();

  for (int i = 0; i < kNumCsps; ++i) {
    SimulatedCspOptions o;
    o.id = StrCat("csp", i);
    FaultInjectionOptions faults;
    faults.seed = seed * 131 + static_cast<uint64_t>(i);
    faults.metrics = bed.metrics.get();
    if (i == 0) {
      faults.real_sleep_max_ms = slow_csp0_ms;
    }
    auto injector = std::make_shared<FaultInjectingConnector>(
        std::make_shared<SimulatedCsp>(o), faults);
    bed.faults.push_back(injector);
    CspProfile profile;
    profile.rtt_ms = 1.0;
    // The slow CSP advertises the best link, so the selector always puts
    // it in the primary download set - the worst case hedging must cover.
    profile.download_bytes_per_sec = (i == 0) ? 50e6 : 8e6;
    profile.upload_bytes_per_sec = 5e6;
    auto added = bed.client->AddCsp(injector, profile, Credentials{"token"});
    if (!added.ok()) {
      std::fprintf(stderr, "AddCsp: %s\n", added.status().ToString().c_str());
      std::abort();
    }
  }
  // Outages begin after registration (AddCsp authenticates): the providers
  // die once the session is up, which is when outages actually happen.
  for (int i = 0; i < downed_csps; ++i) {
    bed.faults[kNumCsps - 1 - i]->set_permanently_down(true);
  }
  return bed;
}

Bytes MakeContent(size_t size, uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct GridCell {
  double put_availability = 0.0;
  double get_availability = 0.0;
  double get_p50_ms = 0.0;
  double get_p99_ms = 0.0;
  double put_p50_ms = 0.0;
  uint64_t missing_shares = 0;
  uint64_t hedged_downloads = 0;
};

// One grid cell: `kTrials` fresh files through one bed; every trial is a
// Put (counted against availability) followed by a Get (verified bytes).
GridCell RunCell(bool hedged, int downed_csps, double slow_csp0_ms,
                 uint64_t seed) {
  DegradedBed bed = MakeBed(hedged, downed_csps, slow_csp0_ms, seed);
  GridCell cell;
  std::vector<double> put_ms;
  std::vector<double> get_ms;
  int put_ok = 0;
  int get_ok = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const Bytes content = MakeContent(kFileBytes, seed ^ (0x9E37 + trial));
    const std::string name = StrCat("file-", trial, ".bin");

    const double put_start = NowMs();
    auto put = bed.client->Put(name, content);
    put_ms.push_back(NowMs() - put_start);
    if (!put.ok()) {
      continue;
    }
    ++put_ok;
    cell.missing_shares += put->missing_shares;

    const double get_start = NowMs();
    auto get = bed.client->Get(name);
    get_ms.push_back(NowMs() - get_start);
    if (get.ok() && get->content == content) {
      ++get_ok;
      cell.hedged_downloads += get->hedged_downloads;
    }
  }
  cell.put_availability = static_cast<double>(put_ok) / kTrials;
  cell.get_availability = static_cast<double>(get_ok) / kTrials;
  cell.put_p50_ms = bench::Percentile(put_ms, 50.0);
  if (!get_ms.empty()) {
    cell.get_p50_ms = bench::Percentile(get_ms, 50.0);
    cell.get_p99_ms = bench::Percentile(get_ms, 99.0);
  }
  return cell;
}

}  // namespace
}  // namespace cyrus

int main() {
  using namespace cyrus;
  using bench::BenchReport;

  std::printf(
      "Degraded-mode transfer engine: %d CSPs, t=2, n=%d, budget=2,\n"
      "%d trials of a %zu-byte file per cell. Outage rows kill the last\n"
      "0/1/2 providers; the slow-CSP rows make csp0 sleep U[0, %.0f] real\n"
      "ms per call while advertising the fastest link.\n\n",
      kNumCsps, kNumCsps, kTrials, kFileBytes, kSlowSleepMaxMs);

  BenchReport report("degraded");
  report.SetParam("t", uint64_t{2});
  report.SetParam("n", uint64_t{kNumCsps});
  report.SetParam("put_failure_budget", uint64_t{2});
  report.SetParam("file_bytes", uint64_t{kFileBytes});
  report.SetParam("trials_per_cell", uint64_t{kTrials});
  report.SetParam("slow_sleep_max_ms", kSlowSleepMaxMs);

  std::printf("%-10s %-6s | %7s %7s | %9s %9s %9s | %8s %7s\n", "scenario",
              "hedge", "put_av", "get_av", "put_p50", "get_p50", "get_p99",
              "missing", "hedges");

  bool failed = false;
  double nofault_p50[2] = {0.0, 0.0};    // [hedge off, on]
  double slow_get_p99[2] = {0.0, 0.0};

  for (const bool hedged : {false, true}) {
    for (const int down : {0, 1, 2}) {
      const uint64_t seed = 7000 + 100 * down + (hedged ? 1 : 0);
      const GridCell cell = RunCell(hedged, down, /*slow_csp0_ms=*/0.0, seed);
      if (down == 0) {
        nofault_p50[hedged ? 1 : 0] = cell.get_p50_ms;
      }
      if (cell.put_availability < 1.0 || cell.get_availability < 1.0) {
        std::fprintf(stderr,
                     "FAIL: availability below 1.0 with %d CSPs down "
                     "(put %.2f, get %.2f)\n",
                     down, cell.put_availability, cell.get_availability);
        failed = true;
      }
      if (down > 0 && cell.missing_shares == 0) {
        std::fprintf(stderr,
                     "FAIL: %d CSPs down but no degraded shares booked\n", down);
        failed = true;
      }
      const std::string scenario = StrCat("down-", down);
      std::printf("%-10s %-6s | %7.2f %7.2f | %8.1fms %8.1fms %8.1fms | %8llu %7llu\n",
                  scenario.c_str(), hedged ? "on" : "off",
                  cell.put_availability, cell.get_availability, cell.put_p50_ms,
                  cell.get_p50_ms, cell.get_p99_ms,
                  static_cast<unsigned long long>(cell.missing_shares),
                  static_cast<unsigned long long>(cell.hedged_downloads));

      JsonValue row{JsonValue::Object{}};
      row.Set("scenario", scenario);
      row.Set("downed_csps", uint64_t{static_cast<uint64_t>(down)});
      row.Set("hedging", hedged);
      row.Set("put_availability", cell.put_availability);
      row.Set("get_availability", cell.get_availability);
      row.Set("put_p50_ms", cell.put_p50_ms);
      row.Set("get_p50_ms", cell.get_p50_ms);
      row.Set("get_p99_ms", cell.get_p99_ms);
      row.Set("missing_shares", cell.missing_shares);
      row.Set("hedged_downloads", cell.hedged_downloads);
      report.AddRow(std::move(row));
    }

    // The tail scenario: all providers up, csp0 slow.
    const uint64_t seed = 8000 + (hedged ? 1 : 0);
    const GridCell cell = RunCell(hedged, /*downed_csps=*/0, kSlowSleepMaxMs, seed);
    slow_get_p99[hedged ? 1 : 0] = cell.get_p99_ms;
    if (cell.put_availability < 1.0 || cell.get_availability < 1.0) {
      std::fprintf(stderr, "FAIL: availability below 1.0 in the slow-CSP row\n");
      failed = true;
    }
    std::printf("%-10s %-6s | %7.2f %7.2f | %8.1fms %8.1fms %8.1fms | %8llu %7llu\n",
                "slow-csp0", hedged ? "on" : "off", cell.put_availability,
                cell.get_availability, cell.put_p50_ms, cell.get_p50_ms,
                cell.get_p99_ms,
                static_cast<unsigned long long>(cell.missing_shares),
                static_cast<unsigned long long>(cell.hedged_downloads));

    JsonValue row{JsonValue::Object{}};
    row.Set("scenario", "slow-csp0");
    row.Set("downed_csps", uint64_t{0});
    row.Set("hedging", hedged);
    row.Set("put_availability", cell.put_availability);
    row.Set("get_availability", cell.get_availability);
    row.Set("put_p50_ms", cell.put_p50_ms);
    row.Set("get_p50_ms", cell.get_p50_ms);
    row.Set("get_p99_ms", cell.get_p99_ms);
    row.Set("missing_shares", cell.missing_shares);
    row.Set("hedged_downloads", cell.hedged_downloads);
    report.AddRow(std::move(row));
  }

  const double tail_improvement =
      slow_get_p99[1] > 0.0 ? slow_get_p99[0] / slow_get_p99[1] : 0.0;
  std::printf(
      "\nHeadline: hedged Get p99 under one slow CSP is %.2fx better than\n"
      "unhedged (%.1f ms -> %.1f ms); the acceptance bar is 1.5x.\n",
      tail_improvement, slow_get_p99[0], slow_get_p99[1]);

  JsonValue headline{JsonValue::Object{}};
  headline.Set("scenario", "headline");
  headline.Set("hedged_p99_improvement", tail_improvement);
  headline.Set("nofault_p50_unhedged_ms", nofault_p50[0]);
  headline.Set("nofault_p50_hedged_ms", nofault_p50[1]);
  report.AddRow(std::move(headline));
  std::printf("wrote %s\n", report.Write().c_str());

  // Hedging must be (near) free when nothing is wrong: 10% on the no-fault
  // p50, plus 1 ms of absolute slack because the baseline is sub-10 ms and
  // scheduler jitter alone can exceed 10% of it.
  if (nofault_p50[1] > nofault_p50[0] * 1.10 + 1.0) {
    std::fprintf(stderr,
                 "FAIL: hedging regressed the no-fault Get p50 by >10%% "
                 "(%.2f ms -> %.2f ms)\n",
                 nofault_p50[0], nofault_p50[1]);
    failed = true;
  }
  if (tail_improvement < 1.5) {
    std::fprintf(stderr,
                 "FAIL: hedged p99 improvement %.2fx below the 1.5x bar\n",
                 tail_improvement);
    failed = true;
  }
  return failed ? 1 : 0;
}
