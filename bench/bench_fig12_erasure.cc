// Reproduces Figure 12 - empirical throughput of 100 MB chunk encoding and
// decoding while changing t and n - and doubles as the codec perf gate for
// the SIMD galois kernels (src/rs/galois_kernels.h).
//
// Every (t, n) point is measured twice: once forced onto the scalar
// reference kernel and once on the kernel CPUID dispatch picked for this
// host (AVX2 -> SSSE3 -> scalar). Results go to stdout as a table and to
// BENCH_codec.json (scripts/bench_delta.py compares runs against
// bench/baselines/BENCH_codec.json).
//
// Hard bar: when the AVX2 kernel is active, the encode kernels
// (mul_add_row and the fused encode_block) must beat scalar by at least
// 10x on cache-resident rows; the binary exits non-zero on a miss. The
// bar is measured at the kernel level deliberately: the 100 MB end-to-end
// points stream ~n/t bytes of share output per chunk byte through DRAM,
// so past a few GB/s they measure the memory bus, not the GF(2^8) math
// (the SIMD advantage there is reported, but bounded by bandwidth). On
// hosts without AVX2 the bar is reported but not enforced (narrower
// vectors cannot promise 10x).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "src/rs/galois_kernels.h"
#include "src/rs/secret_sharing.h"
#include "src/util/buffer_pool.h"
#include "src/util/rng.h"

namespace {

using cyrus::Bytes;
using cyrus::GaloisKernelKind;
using cyrus::GaloisKernels;
using cyrus::JsonValue;
using cyrus::SecretSharingCodec;
using cyrus::Share;

constexpr size_t kChunkBytes = 100 * 1024 * 1024;
constexpr size_t kKernelRowBytes = 16 * 1024;  // L1-resident kernel rows
constexpr size_t kKernelFanout = 8;            // encode_block output rows
constexpr double kMinSeconds = 0.3;  // per measurement
constexpr int kMaxIterations = 4;
constexpr double kEncodeBar = 10.0;  // SIMD-vs-scalar, enforced under AVX2

Bytes MakeChunk() {
  cyrus::Rng rng(42);
  Bytes chunk(kChunkBytes);
  for (size_t i = 0; i < chunk.size(); i += 8) {
    const uint64_t v = rng.Next();
    for (size_t j = 0; j < 8 && i + j < chunk.size(); ++j) {
      chunk[i + j] = static_cast<uint8_t>(v >> (8 * j));
    }
  }
  return chunk;
}

// Runs `op` until kMinSeconds or max_iterations, returns MB/s where each
// call to `op` processes bytes_per_op bytes.
template <typename Op>
double MeasureMBps(const Op& op, size_t bytes_per_op,
                   int max_iterations = kMaxIterations) {
  int iterations = 0;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  while (iterations < max_iterations && elapsed < kMinSeconds) {
    op();
    ++iterations;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  }
  return static_cast<double>(iterations) * bytes_per_op / (1024.0 * 1024.0) /
         elapsed;
}

// End-to-end encode into reusable pooled share buffers (the CyrusClient
// Put path): measures the codec, not the allocator.
double MeasureEncodeMBps(const SecretSharingCodec& codec, const Bytes& chunk,
                         cyrus::BufferPool& pool) {
  const size_t share_len = cyrus::ShareSize(chunk.size(), codec.t());
  std::vector<cyrus::PooledBuffer> buffers;
  std::vector<cyrus::MutableByteSpan> dsts(codec.n());
  for (uint32_t i = 0; i < codec.n(); ++i) {
    buffers.push_back(pool.Acquire(share_len));
    dsts[i] = buffers[i].span(share_len);
  }
  return MeasureMBps(
      [&] {
        if (!codec.EncodeInto(chunk, dsts).ok()) {
          std::fprintf(stderr, "encode failed\n");
          std::exit(1);
        }
      },
      kChunkBytes);
}

double MeasureDecodeMBps(const SecretSharingCodec& codec, const Bytes& chunk,
                         uint32_t t) {
  auto shares = codec.Encode(chunk);
  if (!shares.ok()) {
    std::fprintf(stderr, "encode failed\n");
    std::exit(1);
  }
  shares->resize(t);  // decode from exactly t shares, like the paper
  Bytes out(kChunkBytes);
  return MeasureMBps(
      [&] {
        if (!codec.DecodeInto(*shares, cyrus::MutableByteSpan(out)).ok()) {
          std::fprintf(stderr, "decode failed\n");
          std::exit(1);
        }
      },
      kChunkBytes);
}

// Cache-resident kernel measurement: repeatedly applies `kernels` to
// L1-sized rows so the GF(2^8) math - not DRAM - is what's timed. This is
// where the >=10x AVX2 bar is enforced.
double MeasureKernelMBps(const GaloisKernels& kernels, bool fused,
                         cyrus::BufferPool& pool) {
  cyrus::PooledBuffer src_buf = pool.Acquire(kKernelRowBytes);
  cyrus::PooledBuffer dst_buf = pool.Acquire(kKernelRowBytes * kKernelFanout);
  cyrus::Rng rng(7);
  for (uint8_t& b : src_buf.span(kKernelRowBytes)) {
    b = static_cast<uint8_t>(rng.Next());
  }
  const uint8_t* src = src_buf.data();
  uint8_t coeffs[kKernelFanout];
  uint8_t* dsts[kKernelFanout];
  for (size_t r = 0; r < kKernelFanout; ++r) {
    coeffs[r] = static_cast<uint8_t>(0x1d + 31 * r);
    dsts[r] = dst_buf.data() + r * kKernelRowBytes;
  }
  const size_t bytes_per_op = kKernelRowBytes * kKernelFanout;
  const auto op = [&] {
    if (fused) {
      kernels.encode_block(coeffs, kKernelFanout, src, kKernelRowBytes, dsts);
    } else {
      for (size_t r = 0; r < kKernelFanout; ++r) {
        kernels.mul_add_row(coeffs[r], src, dsts[r], kKernelRowBytes);
      }
    }
  };
  // Warm the caches, then time many iterations (rows are tiny).
  op();
  return MeasureMBps(op, bytes_per_op, /*max_iterations=*/200000);
}

}  // namespace

int main() {
  const Bytes chunk = MakeChunk();
  const GaloisKernels& scalar = cyrus::ScalarGaloisKernels();
  const GaloisKernels& simd = cyrus::SelectGaloisKernels("");
  const bool avx2 = simd.kind == GaloisKernelKind::kAvx2;
  cyrus::BufferPool pool;

  cyrus::bench::BenchReport report("codec");
  report.SetParam("chunk_bytes", uint64_t{kChunkBytes});
  report.SetParam("kernel_row_bytes", uint64_t{kKernelRowBytes});
  report.SetParam("simd_kernel", std::string(simd.name));
  report.SetParam("encode_bar_x", kEncodeBar);
  report.SetParam("bar_enforced", avx2);

  bool bar_missed = false;
  auto add_row = [&](const char* op, uint32_t t, uint32_t n,
                     double scalar_mbps, double simd_mbps) {
    const double speedup = simd_mbps / scalar_mbps;
    std::printf("%-16s %-3u %-3u | %11.1f %10.1f | %7.2fx\n", op, t, n,
                scalar_mbps, simd_mbps, speedup);
    JsonValue row{JsonValue::Object{}};
    row.Set("op", std::string(op));
    row.Set("t", uint64_t{t});
    row.Set("n", uint64_t{n});
    row.Set("scalar_MBps", scalar_mbps);
    row.Set("simd_MBps", simd_mbps);
    row.Set("speedup", speedup);
    report.AddRow(std::move(row));
    return speedup;
  };

  // --- Kernel bar: cache-resident GF(2^8) row math, scalar vs SIMD. ---
  std::printf("Codec kernels: %u KB rows x%u, %s vs scalar\n",
              unsigned{kKernelRowBytes / 1024}, unsigned{kKernelFanout},
              simd.name);
  std::printf("%-16s %-3s %-3s | %11s %10s | %8s\n", "op", "t", "n",
              "scalar_MBps", "simd_MBps", "speedup");
  for (const bool fused : {false, true}) {
    const char* op = fused ? "kern_enc_block" : "kern_mul_add";
    const double scalar_mbps = MeasureKernelMBps(scalar, fused, pool);
    const double simd_mbps = MeasureKernelMBps(simd, fused, pool);
    const double speedup = add_row(op, 0, 0, scalar_mbps, simd_mbps);
    if (avx2 && speedup < kEncodeBar) {
      std::fprintf(stderr, "BAR MISS: %s speedup %.2fx < %.1fx\n", op,
                   speedup, kEncodeBar);
      bar_missed = true;
    }
  }

  // --- Figure 12: end-to-end 100 MB chunk codec throughput. These points
  // stream every share through DRAM, so speedups here are advisory (the
  // bus, not the math, is the asymptote). ---
  std::printf("Figure 12: 100 MB chunk codec throughput, %s vs scalar\n",
              simd.name);
  auto run_point = [&](const char* op, uint32_t t, uint32_t n) {
    auto codec = SecretSharingCodec::Create("fig12 key", t, n);
    if (!codec.ok()) {
      std::fprintf(stderr, "codec creation failed\n");
      std::exit(1);
    }
    const bool encode = std::string_view(op) == "encode";
    cyrus::SetActiveGaloisKernelsForTest(&scalar);
    const double scalar_mbps = encode ? MeasureEncodeMBps(*codec, chunk, pool)
                                      : MeasureDecodeMBps(*codec, chunk, t);
    cyrus::SetActiveGaloisKernelsForTest(&simd);
    const double simd_mbps = encode ? MeasureEncodeMBps(*codec, chunk, pool)
                                    : MeasureDecodeMBps(*codec, chunk, t);
    cyrus::SetActiveGaloisKernelsForTest(nullptr);
    add_row(op, t, n, scalar_mbps, simd_mbps);
  };

  // Encoding throughput depends mostly on n (paper: minimum ~100 MB/s at
  // n=11): sweep n with t=2, plus the (3, 5) operating point.
  for (const auto& [t, n] : std::vector<std::pair<uint32_t, uint32_t>>{
           {2, 3}, {2, 5}, {2, 7}, {2, 11}, {3, 5}}) {
    run_point("encode", t, n);
  }
  // Decoding throughput depends mostly on t (paper: minimum ~100 MB/s at
  // t=10): sweep t with n=11, plus the (2, 4) operating point.
  for (const auto& [t, n] : std::vector<std::pair<uint32_t, uint32_t>>{
           {2, 11}, {4, 11}, {10, 11}, {2, 4}}) {
    run_point("decode", t, n);
  }

  report.Write();
  if (bar_missed) {
    std::fprintf(stderr, "bench_fig12_erasure: kernel encode bar missed\n");
    return 1;
  }
  std::printf("kernel encode bar (>=%.0fx under AVX2): %s\n", kEncodeBar,
              avx2 ? "PASS" : "not enforced (no AVX2)");
  return 0;
}
