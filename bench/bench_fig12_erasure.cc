// Reproduces Figure 12: empirical overhead of 100 MB chunk encoding and
// decoding while changing t and n.
//
// The paper sweeps the secret-sharing parameters over a 100 MB chunk with
// zfec and reports throughput; decoding slows with t (more rows in the
// decode matrix-vector product) and encoding with n (more output shares).
// This is a google-benchmark binary over our from-scratch GF(2^8) codec;
// the Throughput counter is chunk-MB per second.
#include <benchmark/benchmark.h>

#include "src/rs/secret_sharing.h"
#include "src/util/rng.h"

namespace {

constexpr size_t kChunkBytes = 100 * 1024 * 1024;

cyrus::Bytes MakeChunk() {
  cyrus::Rng rng(42);
  cyrus::Bytes chunk(kChunkBytes);
  for (size_t i = 0; i < chunk.size(); i += 8) {
    const uint64_t v = rng.Next();
    for (size_t j = 0; j < 8 && i + j < chunk.size(); ++j) {
      chunk[i + j] = static_cast<uint8_t>(v >> (8 * j));
    }
  }
  return chunk;
}

const cyrus::Bytes& Chunk() {
  static const cyrus::Bytes chunk = MakeChunk();
  return chunk;
}

// Encoding: t fixed at 2 (the paper's default privacy level), n sweeps.
void BM_Encode(benchmark::State& state) {
  const uint32_t t = static_cast<uint32_t>(state.range(0));
  const uint32_t n = static_cast<uint32_t>(state.range(1));
  auto codec = cyrus::SecretSharingCodec::Create("fig12 key", t, n);
  if (!codec.ok()) {
    state.SkipWithError("codec creation failed");
    return;
  }
  for (auto _ : state) {
    auto shares = codec->Encode(Chunk());
    benchmark::DoNotOptimize(shares);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kChunkBytes);
  state.counters["chunk_MBps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kChunkBytes / (1024.0 * 1024.0),
      benchmark::Counter::kIsRate);
}

// Decoding from exactly t shares.
void BM_Decode(benchmark::State& state) {
  const uint32_t t = static_cast<uint32_t>(state.range(0));
  const uint32_t n = static_cast<uint32_t>(state.range(1));
  auto codec = cyrus::SecretSharingCodec::Create("fig12 key", t, n);
  if (!codec.ok()) {
    state.SkipWithError("codec creation failed");
    return;
  }
  auto shares = codec->Encode(Chunk());
  if (!shares.ok()) {
    state.SkipWithError("encode failed");
    return;
  }
  shares->resize(t);
  for (auto _ : state) {
    auto chunk = codec->Decode(*shares, kChunkBytes);
    benchmark::DoNotOptimize(chunk);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * kChunkBytes);
  state.counters["chunk_MBps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kChunkBytes / (1024.0 * 1024.0),
      benchmark::Counter::kIsRate);
}

}  // namespace

// Encoding throughput depends mostly on n (paper: minimum ~100 MB/s at
// n=11): sweep n with t=2.
BENCHMARK(BM_Encode)
    ->Args({2, 3})
    ->Args({2, 4})
    ->Args({2, 5})
    ->Args({2, 7})
    ->Args({2, 9})
    ->Args({2, 11})
    ->Unit(benchmark::kMillisecond);

// Paper's operating points.
BENCHMARK(BM_Encode)->Args({3, 4})->Args({3, 5})->Unit(benchmark::kMillisecond);

// Decoding throughput depends mostly on t (paper: minimum ~100 MB/s at
// t=10): sweep t with n=11.
BENCHMARK(BM_Decode)
    ->Args({2, 11})
    ->Args({3, 11})
    ->Args({4, 11})
    ->Args({6, 11})
    ->Args({8, 11})
    ->Args({10, 11})
    ->Unit(benchmark::kMillisecond);

// Paper's operating points.
BENCHMARK(BM_Decode)->Args({2, 3})->Args({2, 4})->Args({3, 4})->Args({3, 5})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
