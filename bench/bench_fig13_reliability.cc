// Reproduces Figure 13: simulated cumulative CSP request failures, single
// providers vs CYRUS configurations.
//
// The paper runs 10^7 request trials against four commercial CSPs whose
// annual downtime spans 1.37-18.53 hours (CloudHarmony monitoring). A
// single-CSP request fails when that provider is down; a CYRUS (t, n)
// request fails only when more than n - t of its n providers are down
// simultaneously. Paper results: ~1,500 failures even for the best single
// CSP, 44 failures for (3,4), zero for (2,4).
#include <cstdio>
#include <vector>

#include "src/cloud/availability.h"
#include "src/core/reliability.h"
#include "src/util/rng.h"

int main() {
  using namespace cyrus;

  constexpr int kTrials = 10000000;
  const std::vector<double>& downtime_hours = PaperAnnualDowntimeHours();
  std::vector<double> p_down;
  for (double hours : downtime_hours) {
    p_down.push_back(hours / 8760.0);
  }

  Rng rng(2015);
  std::vector<long> single_failures(p_down.size(), 0);
  long cyrus_34_failures = 0;  // (t, n) = (3, 4): fails when >= 2 CSPs down
  long cyrus_24_failures = 0;  // (t, n) = (2, 4): fails when >= 3 CSPs down

  // Progress checkpoints make the "cumulative" shape of Figure 13 visible.
  const std::vector<int> checkpoints = {1000000, 2500000, 5000000, 7500000, kTrials};
  size_t next_checkpoint = 0;

  std::printf("Figure 13: cumulative failed requests over 10^7 trials\n");
  std::printf("per-CSP annual downtime (hours): ");
  for (double hours : downtime_hours) {
    std::printf("%.2f ", hours);
  }
  std::printf("\n\n%10s %8s %8s %8s %8s %12s %12s\n", "trials", "csp1", "csp2", "csp3",
              "csp4", "cyrus(3,4)", "cyrus(2,4)");

  for (int trial = 1; trial <= kTrials; ++trial) {
    int down = 0;
    for (size_t c = 0; c < p_down.size(); ++c) {
      const bool failed = rng.NextBool(p_down[c]);
      if (failed) {
        ++single_failures[c];
        ++down;
      }
    }
    if (down >= 2) {
      ++cyrus_34_failures;
    }
    if (down >= 3) {
      ++cyrus_24_failures;
    }
    if (next_checkpoint < checkpoints.size() && trial == checkpoints[next_checkpoint]) {
      std::printf("%10d %8ld %8ld %8ld %8ld %12ld %12ld\n", trial, single_failures[0],
                  single_failures[1], single_failures[2], single_failures[3],
                  cyrus_34_failures, cyrus_24_failures);
      ++next_checkpoint;
    }
  }

  std::printf("\nAnalytic expectation (Eq. 1 with the max downtime as p):\n");
  const double p = p_down.back();
  std::printf("  single worst CSP: %.0f expected failures\n", p * kTrials);
  std::printf("  cyrus (3,4): %.1f expected failures\n",
              ChunkLossProbability(3, 4, p) * kTrials);
  std::printf("  cyrus (2,4): %.4f expected failures\n",
              ChunkLossProbability(2, 4, p) * kTrials);
  std::printf(
      "\nPaper: best single CSP ~1,500 failures; CYRUS (3,4) 44; CYRUS (2,4) 0.\n");
  return 0;
}
