// Reproduces Figure 14: testbed download performance of random, heuristic
// (round-robin), and CYRUS (Algorithm 1) download CSP selection.
//
// Testbed (§7.2): seven private clouds - four at 15 MB/s, three at 2 MB/s -
// the Table 4 dataset (run here at 1/4 scale with proportionally scaled
// chunking), and three configurations (t,n) = (2,3), (2,4), (3,4).
//   (a) mean download completion time per selector and configuration;
//   (b) the per-file throughput distribution for (2,3).
// Paper shape: CYRUS's optimizer is fastest everywhere; random is slowest;
// (3,4) is especially fast under CYRUS (smaller shares) while random and
// heuristic barely improve (they hit slow clouds more often with t=3).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/opt/download_selector.h"

namespace {

using namespace cyrus;
using namespace cyrus::bench;

constexpr double kDatasetScale = 0.25;

struct SelectorRun {
  std::string name;
  double mean_completion = 0.0;
  std::vector<double> throughputs_mbps;  // per file
};

SelectorRun RunSelector(Testbed& bed, const std::vector<DatasetFile>& files,
                        std::unique_ptr<DownloadSelector> selector,
                        std::string selector_name) {
  SelectorRun run;
  run.name = std::move(selector_name);
  bed.client->set_download_selector(std::move(selector));
  double total = 0.0;
  for (const DatasetFile& file : files) {
    auto get = bed.client->Get(file.name);
    if (!get.ok()) {
      std::fprintf(stderr, "get %s failed: %s\n", file.name.c_str(),
                   get.status().ToString().c_str());
      std::abort();
    }
    const double seconds = TransferCompletionSeconds(
        get->transfer, bed.upload_bytes_per_sec, bed.download_bytes_per_sec);
    total += seconds;
    if (seconds > 0.0) {
      run.throughputs_mbps.push_back(file.content.size() * 8.0 / seconds / 1e6);
    }
  }
  run.mean_completion = total / files.size();
  return run;
}

}  // namespace

int main() {
  const auto files = GenerateTable4Dataset(kDatasetScale, 14);

  struct Config {
    uint32_t t;
    uint32_t n;
  };
  const std::vector<Config> configs = {{2, 3}, {2, 4}, {3, 4}};

  std::printf("Figure 14a: mean download completion time (s), %zu files, x%.2f scale\n\n",
              files.size(), kDatasetScale);
  std::printf("%-10s %12s %12s %12s\n", "selector", "(2,3)", "(2,4)", "(3,4)");

  std::vector<std::vector<SelectorRun>> all_runs;  // [config][selector]
  for (const Config& config : configs) {
    Testbed bed = MakeTestbed(config.t, config.n);
    for (const DatasetFile& file : files) {
      auto put = bed.client->Put(file.name, file.content);
      if (!put.ok()) {
        std::fprintf(stderr, "put failed: %s\n", put.status().ToString().c_str());
        return 1;
      }
    }
    std::vector<SelectorRun> runs;
    runs.push_back(RunSelector(bed, files, std::make_unique<RandomDownloadSelector>(7),
                               "random"));
    runs.push_back(RunSelector(bed, files,
                               std::make_unique<RoundRobinDownloadSelector>(),
                               "heuristic"));
    runs.push_back(RunSelector(bed, files, std::make_unique<OptimalDownloadSelector>(),
                               "cyrus"));
    all_runs.push_back(std::move(runs));
  }

  for (size_t s = 0; s < 3; ++s) {
    std::printf("%-10s", all_runs[0][s].name.c_str());
    for (size_t c = 0; c < configs.size(); ++c) {
      std::printf(" %12.3f", all_runs[c][s].mean_completion);
    }
    std::printf("\n");
  }

  std::printf("\nFigure 14b: per-file throughput distribution, (t,n) = (2,3) [Mbps]\n\n");
  std::printf("%-10s %8s %8s %8s %8s %8s\n", "selector", "p10", "p25", "p50", "p75",
              "p90");
  for (size_t s = 0; s < 3; ++s) {
    const auto& samples = all_runs[0][s].throughputs_mbps;
    std::printf("%-10s %8.1f %8.1f %8.1f %8.1f %8.1f\n", all_runs[0][s].name.c_str(),
                Percentile(samples, 10), Percentile(samples, 25),
                Percentile(samples, 50), Percentile(samples, 75),
                Percentile(samples, 90));
  }
  std::printf(
      "\nPaper shape: cyrus < heuristic < random completion times for every (t,n);\n"
      "cyrus's throughput CDF sits to the right of both baselines.\n");
  return 0;
}
