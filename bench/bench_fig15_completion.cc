// Reproduces Figure 15: cumulative upload and download completion times of
// the whole Table 4 dataset under different privacy/reliability settings.
//
// Paper shape: the more private (3,4) configuration is consistently the
// fastest (shares are chunk/t, so t=3 moves less data per cloud),
// especially for uploads; (2,4) and (2,3) are similar, with (2,4) slightly
// slower on upload because the fourth share must also reach a slow cloud.
#include <cstdio>
#include <vector>

#include "bench/common.h"

int main() {
  using namespace cyrus;
  using namespace cyrus::bench;

  constexpr double kDatasetScale = 0.25;
  const auto files = GenerateTable4Dataset(kDatasetScale, 15);

  struct Config {
    uint32_t t;
    uint32_t n;
  };
  const std::vector<Config> configs = {{2, 3}, {2, 4}, {3, 4}};

  std::vector<std::vector<double>> upload_cum(configs.size());
  std::vector<std::vector<double>> download_cum(configs.size());

  for (size_t c = 0; c < configs.size(); ++c) {
    Testbed bed = MakeTestbed(configs[c].t, configs[c].n);
    double up_total = 0.0;
    for (const DatasetFile& file : files) {
      auto put = bed.client->Put(file.name, file.content);
      if (!put.ok()) {
        std::fprintf(stderr, "put failed: %s\n", put.status().ToString().c_str());
        return 1;
      }
      up_total += TransferCompletionSeconds(put->transfer, bed.upload_bytes_per_sec,
                                            bed.download_bytes_per_sec);
      upload_cum[c].push_back(up_total);
    }
    double down_total = 0.0;
    for (const DatasetFile& file : files) {
      auto get = bed.client->Get(file.name);
      if (!get.ok()) {
        std::fprintf(stderr, "get failed: %s\n", get.status().ToString().c_str());
        return 1;
      }
      down_total += TransferCompletionSeconds(get->transfer, bed.upload_bytes_per_sec,
                                              bed.download_bytes_per_sec);
      download_cum[c].push_back(down_total);
    }
  }

  std::printf("Figure 15: cumulative completion times (s), %zu files, x%.2f scale\n\n",
              files.size(), kDatasetScale);
  std::printf("%-8s | %10s %10s %10s | %10s %10s %10s\n", "", "up(2,3)", "up(2,4)",
              "up(3,4)", "down(2,3)", "down(2,4)", "down(3,4)");
  const size_t total = files.size();
  for (size_t frac = 1; frac <= 8; ++frac) {
    const size_t idx = frac * total / 8 - 1;
    std::printf("file %3zu | %10.1f %10.1f %10.1f | %10.1f %10.1f %10.1f\n", idx + 1,
                upload_cum[0][idx], upload_cum[1][idx], upload_cum[2][idx],
                download_cum[0][idx], download_cum[1][idx], download_cum[2][idx]);
  }
  std::printf(
      "\nPaper shape: (3,4) fastest overall (smaller shares), (2,4) slightly\n"
      "slower than (2,3) on upload (an extra share reaches the slow clouds).\n");
  return 0;
}
