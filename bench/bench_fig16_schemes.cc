// Reproduces Figure 16: upload/download completion times of a 40 MB file
// under CYRUS, DepSky, Full Replication, and Full Striping on four CSPs.
//
// Both CYRUS and DepSky use (t,n) = (2,3) with no chunking (each share is
// 20 MB, matching the paper's footnote 13 setup). The four CSP rate
// profiles are spread like real-world providers; the client's uplink is a
// shared bottleneck, as in the paper's real-world runs. Paper shape:
//   upload:   striping < CYRUS < {DepSky, Full Replication}
//             (DepSky pays lock RTTs + backoff and pushes a share to every
//             CSP, cancelling stragglers only after n complete)
//   download: CYRUS < DepSky < striping < replication-average
//             (striping must read from the slowest cloud; replication is
//             averaged over the four replica choices).
#include <cstdio>
#include <vector>

#include "bench/common.h"

int main() {
  using namespace cyrus;
  using namespace cyrus::bench;

  constexpr uint64_t kFileBytes = 40 * 1000 * 1000;
  // Spread per-CSP rates (bytes/s): one fast, one medium, two slow-ish.
  const std::vector<SchemeCsp> csps = {
      {140, 4.0e6, 1.2e6},
      {150, 2.5e6, 0.9e6},
      {190, 1.0e6, 0.7e6},
      {230, 0.45e6, 0.55e6},
  };
  TimingOptions timing;
  timing.client_uplink = 2.0e6;    // shared client uplink bottleneck
  timing.client_downlink = 8.0e6;

  FullReplicationScheme replication;
  FullStripingScheme striping;
  DepSkyScheme depsky(2, 3, /*seed=*/16, /*mean_backoff_seconds=*/5.0);
  CyrusScheme cyrus_scheme(2, 3, /*seed=*/16);

  std::printf("Figure 16: completion times for a 40 MB file, 4 CSPs, (t,n)=(2,3)\n\n");
  std::printf("%-18s %12s %14s\n", "scheme", "upload (s)", "download (s)");

  auto run = [&](StorageScheme& scheme) {
    auto up = scheme.PlanUpload(kFileBytes, csps);
    auto down = scheme.PlanDownload(kFileBytes, csps);
    if (!up.ok() || !down.ok()) {
      std::fprintf(stderr, "planning failed for %s\n",
                   std::string(scheme.name()).c_str());
      std::abort();
    }
    const double up_s = SchemeCompletionSeconds(*up, /*download=*/false, csps, timing);
    const double down_s = SchemeCompletionSeconds(*down, /*download=*/true, csps, timing);
    return std::pair<double, double>(up_s, down_s);
  };

  const auto [cyrus_up, cyrus_down] = run(cyrus_scheme);
  const auto [depsky_up, depsky_down] = run(depsky);
  const auto [striping_up, striping_down] = run(striping);

  // Full Replication download: the paper averages over the four replica
  // choices and also quotes the best/worst CSP.
  auto rep_up_plan = replication.PlanUpload(kFileBytes, csps);
  const double rep_up =
      SchemeCompletionSeconds(*rep_up_plan, /*download=*/false, csps, timing);
  double rep_down_sum = 0.0, rep_down_best = 1e18, rep_down_worst = 0.0;
  for (size_t c = 0; c < csps.size(); ++c) {
    replication.set_download_csp(static_cast<int>(c));
    auto plan = replication.PlanDownload(kFileBytes, csps);
    const double seconds = SchemeCompletionSeconds(*plan, /*download=*/true, csps, timing);
    rep_down_sum += seconds;
    rep_down_best = std::min(rep_down_best, seconds);
    rep_down_worst = std::max(rep_down_worst, seconds);
  }
  const double rep_down = rep_down_sum / csps.size();

  std::printf("%-18s %12.1f %14.1f\n", "cyrus", cyrus_up, cyrus_down);
  std::printf("%-18s %12.1f %14.1f\n", "depsky", depsky_up, depsky_down);
  std::printf("%-18s %12.1f %14.1f\n", "full-striping", striping_up, striping_down);
  std::printf("%-18s %12.1f %14.1f   (best CSP %.1f, worst %.1f)\n", "full-replication",
              rep_up, rep_down, rep_down_best, rep_down_worst);

  std::printf(
      "\nPaper shape check: striping has the fastest upload (least data), CYRUS is\n"
      "second; DepSky pays lock+backoff+push-to-all overheads; CYRUS has the\n"
      "fastest download and replication-average the slowest.\n"
      "(Known deviation, recorded in EXPERIMENTS.md: the paper measured DepSky\n"
      "uploads even slower than full replication; our fluid model reproduces the\n"
      "ordering striping < cyrus < depsky < replication for uploads instead.)\n");
  return 0;
}
