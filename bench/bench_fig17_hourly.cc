// Reproduces Figure 17: box plots of upload/download completion times for a
// 1 MB file, measured hourly for two days, CYRUS vs DepSky.
//
// Per-CSP bandwidth follows a diurnal cycle with noise (as commercial
// providers do); each hour both systems move the same 1 MB file. For small
// files DepSky's fixed protocol costs (two lock round-trips plus a random
// backoff before every write, a metadata round-trip before every read)
// dominate, which is exactly the paper's finding: DepSky's upload times are
// nearly twice CYRUS's, and both its quartiles sit above CYRUS's.
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "bench/common.h"
#include "src/util/rng.h"

int main() {
  using namespace cyrus;
  using namespace cyrus::bench;

  constexpr uint64_t kFileBytes = 1 * 1000 * 1000;
  constexpr int kHours = 48;
  const std::vector<SchemeCsp> base = {
      {140, 0.60e6, 0.30e6},
      {150, 0.45e6, 0.25e6},
      {190, 0.35e6, 0.20e6},
      {230, 0.28e6, 0.15e6},
  };

  DepSkyScheme depsky(2, 3, /*seed=*/17, /*mean_backoff_seconds=*/3.0);
  CyrusScheme cyrus_scheme(2, 3, /*seed=*/17);
  Rng rng(1717);

  std::vector<double> cyrus_up, cyrus_down, depsky_up, depsky_down;
  for (int hour = 0; hour < kHours; ++hour) {
    // Diurnal load factor: slowest in the local evening, plus noise.
    const double diurnal =
        1.0 - 0.3 * std::sin(2.0 * std::numbers::pi * (hour % 24) / 24.0);
    std::vector<SchemeCsp> csps = base;
    for (SchemeCsp& csp : csps) {
      const double noise = 0.85 + 0.3 * rng.NextDouble();
      csp.download_bytes_per_sec *= diurnal * noise;
      csp.upload_bytes_per_sec *= diurnal * noise;
    }
    auto measure = [&](StorageScheme& scheme, std::vector<double>& up,
                       std::vector<double>& down) {
      auto up_plan = scheme.PlanUpload(kFileBytes, csps);
      auto down_plan = scheme.PlanDownload(kFileBytes, csps);
      up.push_back(SchemeCompletionSeconds(*up_plan, false, csps));
      down.push_back(SchemeCompletionSeconds(*down_plan, true, csps));
    };
    measure(cyrus_scheme, cyrus_up, cyrus_down);
    measure(depsky, depsky_up, depsky_down);
  }

  auto print_box = [](const char* label, const BoxStats& stats) {
    std::printf("%-16s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n", label, stats.min,
                stats.q1, stats.median, stats.q3, stats.max, stats.mean);
  };
  std::printf("Figure 17: 1 MB file hourly for %d hours - completion time stats (s)\n\n",
              kHours);
  std::printf("%-16s %8s %8s %8s %8s %8s %8s\n", "", "min", "q1", "median", "q3", "max",
              "mean");
  print_box("cyrus upload", ComputeBoxStats(cyrus_up));
  print_box("depsky upload", ComputeBoxStats(depsky_up));
  print_box("cyrus download", ComputeBoxStats(cyrus_down));
  print_box("depsky download", ComputeBoxStats(depsky_down));

  const double ratio =
      ComputeBoxStats(depsky_up).median / ComputeBoxStats(cyrus_up).median;
  std::printf("\nDepSky/CYRUS median upload ratio: %.2fx (paper: ~2x)\n", ratio);
  return 0;
}
