// Reproduces Figure 18: the number of shares stored at each CSP after many
// uploads, CYRUS vs DepSky.
//
// This bench runs the *functional* clients (not planners) against the same
// four simulated providers: CYRUS places shares by consistent hashing, so
// storage stays balanced; DepSky pushes to every CSP and cancels pending
// requests once n finish, so consistently fast CSPs accumulate shares and
// the slowest gets none - the paper's argument for why DepSky can exhaust
// one provider's capacity early.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "src/baseline/depsky_client.h"
#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

int main() {
  using namespace cyrus;

  constexpr int kUploads = 200;
  constexpr size_t kFileBytes = 256 * 1024;
  const std::vector<double> upload_rates = {10e6, 7e6, 4e6, 1e6};  // CSP 3 slowest

  // --- CYRUS ---
  CyrusConfig config;
  config.key_string = "fig18 key";
  config.client_id = "fig18";
  config.t = 2;
  config.cluster_aware = false;
  config.default_failure_prob = 0.01;
  config.epsilon = 5e-4;  // yields n = 3 with four CSPs
  config.chunker = ChunkerOptions::ForTesting();
  config.chunker.max_chunk_size = 1 * 1024 * 1024;
  auto cyrus_client_result = CyrusClient::Create(config);
  if (!cyrus_client_result.ok()) {
    return 1;
  }
  auto cyrus_client = std::move(cyrus_client_result).value();

  DepSkyClient depsky("fig18 key", 2, 3, "fig18", 18);

  std::vector<std::shared_ptr<SimulatedCsp>> cyrus_csps, depsky_csps;
  for (int i = 0; i < 4; ++i) {
    CspProfile profile;
    profile.rtt_ms = 100;
    profile.upload_bytes_per_sec = upload_rates[i];
    profile.download_bytes_per_sec = upload_rates[i];
    auto a = std::make_shared<SimulatedCsp>(SimulatedCspOptions{StrCat("csp", i)});
    auto b = std::make_shared<SimulatedCsp>(SimulatedCspOptions{StrCat("csp", i)});
    cyrus_csps.push_back(a);
    depsky_csps.push_back(b);
    if (!cyrus_client->AddCsp(a, profile, Credentials{"token"}).ok() ||
        !depsky.AddCsp(b, profile, Credentials{"token"}).ok()) {
      return 1;
    }
  }

  Rng rng(181);
  std::vector<int> cyrus_shares(4, 0), depsky_shares(4, 0);
  for (int u = 0; u < kUploads; ++u) {
    Bytes content(kFileBytes);
    for (auto& byte : content) {
      byte = static_cast<uint8_t>(rng.Next());
    }
    const std::string name = StrCat("file-", u);
    auto put = cyrus_client->Put(name, content);
    if (!put.ok()) {
      std::fprintf(stderr, "cyrus put failed: %s\n", put.status().ToString().c_str());
      return 1;
    }
    for (const TransferRecord& r : put->transfer.records) {
      if (r.kind == TransferKind::kPut && r.success) {
        cyrus_shares[r.csp]++;
      }
    }
    auto write = depsky.Write(name, content);
    if (!write.ok()) {
      std::fprintf(stderr, "depsky write failed: %s\n",
                   write.status().ToString().c_str());
      return 1;
    }
    for (int csp : write->share_csps) {
      depsky_shares[csp]++;
    }
  }

  std::printf("Figure 18: data shares stored per CSP after %d uploads\n\n", kUploads);
  std::printf("%-8s %14s %16s %14s\n", "CSP", "upload rate", "CYRUS shares",
              "DepSky shares");
  for (int i = 0; i < 4; ++i) {
    std::printf("csp%-5d %11.0f MB/s %16d %14d\n", i, upload_rates[i] / 1e6,
                cyrus_shares[i], depsky_shares[i]);
  }
  std::printf(
      "\nPaper shape: CYRUS distributes shares evenly; DepSky concentrates them on\n"
      "the consistently faster CSPs (the slowest CSP stores none).\n");

  bench::BenchReport bench_report("fig18_share_balance");
  bench_report.SetParam("uploads", static_cast<uint64_t>(kUploads));
  bench_report.SetParam("file_bytes", static_cast<uint64_t>(kFileBytes));
  for (int i = 0; i < 4; ++i) {
    JsonValue row{JsonValue::Object{}};
    row.Set("csp", StrCat("csp", i));
    row.Set("upload_bytes_per_sec", upload_rates[i]);
    row.Set("cyrus_shares", static_cast<int64_t>(cyrus_shares[i]));
    row.Set("depsky_shares", static_cast<int64_t>(depsky_shares[i]));
    bench_report.AddRow(std::move(row));
  }
  std::printf("wrote %s\n", bench_report.Write().c_str());
  return 0;
}
