// Reproduces Figure 19: deployment-trial completion times for a 20 MB test
// file in the U.S. and Korea - CYRUS (2,3) and (2,4) vs uploading to each
// individual CSP.
//
// Country profiles (substituting for the trial's measured links):
//   U.S.:  fast per-CSP links; the *client uplink* is the shared
//          bottleneck, so CYRUS's n/t storage overhead costs upload time -
//          (2,4) is slower than every single CSP, (2,3) beats all but the
//          fastest.
//   Korea: per-CSP links are slow and the client NIC is not a bottleneck,
//          so CYRUS's parallel half-size shares beat every single CSP in
//          both directions, and (2,4) costs almost nothing extra.
// CYRUS download rows average over the C(4,n) storage subsets consistent
// hashing could have chosen, then read from the t fastest in the subset.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.h"

namespace {

using namespace cyrus;
using namespace cyrus::bench;

struct CountryProfile {
  const char* name;
  std::vector<SchemeCsp> csps;
  TimingOptions timing;
};

double SingleCspTime(uint64_t bytes, const CountryProfile& profile, size_t csp,
                     bool download) {
  SchemePlan plan;
  plan.transfers.push_back(SchemeTransfer{static_cast<int>(csp), bytes});
  return SchemeCompletionSeconds(plan, download, profile.csps, profile.timing);
}

// CYRUS upload: n shares of size file/t to n consistent-hash CSPs;
// averaged over the C(4, n) equally-likely placements.
double CyrusUpload(uint64_t bytes, const CountryProfile& profile, uint32_t t,
                   uint32_t n) {
  const uint64_t share = (bytes + t - 1) / t;
  const size_t c_count = profile.csps.size();
  double total = 0.0;
  int combos = 0;
  std::vector<bool> pick(c_count, false);
  std::fill(pick.begin(), pick.begin() + n, true);
  do {
    SchemePlan plan;
    for (size_t c = 0; c < c_count; ++c) {
      if (pick[c]) {
        plan.transfers.push_back(SchemeTransfer{static_cast<int>(c), share});
      }
    }
    total += SchemeCompletionSeconds(plan, /*download=*/false, profile.csps,
                                     profile.timing);
    ++combos;
  } while (std::prev_permutation(pick.begin(), pick.end()));
  return total / combos;
}

// CYRUS download: read the t fastest members of the stored subset, averaged
// over placements.
double CyrusDownload(uint64_t bytes, const CountryProfile& profile, uint32_t t,
                     uint32_t n) {
  const uint64_t share = (bytes + t - 1) / t;
  const size_t c_count = profile.csps.size();
  double total = 0.0;
  int combos = 0;
  std::vector<bool> pick(c_count, false);
  std::fill(pick.begin(), pick.begin() + n, true);
  do {
    std::vector<int> holders;
    for (size_t c = 0; c < c_count; ++c) {
      if (pick[c]) {
        holders.push_back(static_cast<int>(c));
      }
    }
    std::sort(holders.begin(), holders.end(), [&](int a, int b) {
      return profile.csps[a].download_bytes_per_sec >
             profile.csps[b].download_bytes_per_sec;
    });
    SchemePlan plan;
    for (uint32_t k = 0; k < t; ++k) {
      plan.transfers.push_back(SchemeTransfer{holders[k], share});
    }
    total += SchemeCompletionSeconds(plan, /*download=*/true, profile.csps,
                                     profile.timing);
    ++combos;
  } while (std::prev_permutation(pick.begin(), pick.end()));
  return total / combos;
}

}  // namespace

int main() {
  constexpr uint64_t kFileBytes = 20 * 1000 * 1000;

  CountryProfile us;
  us.name = "U.S.";
  us.csps = {
      {60, 7.0e6, 2.2e6},
      {75, 3.0e6, 1.4e6},
      {80, 3.0e6, 1.4e6},
      {90, 3.0e6, 1.4e6},
  };
  us.timing.client_uplink = 2.6e6;   // residential uplink: the bottleneck
  us.timing.client_downlink = 12e6;

  CountryProfile korea;
  korea.name = "Korea";
  korea.csps = {
      {300, 1.2e6, 0.35e6},
      {320, 0.50e6, 0.30e6},
      {340, 0.45e6, 0.28e6},
      {360, 0.40e6, 0.25e6},
  };
  korea.timing.client_uplink = 12e6;  // fast domestic pipe; CSPs are far
  korea.timing.client_downlink = 50e6;

  std::printf("Figure 19: trial completion times for a 20 MB file (s)\n");
  for (const CountryProfile& profile : {us, korea}) {
    std::printf("\n--- %s ---\n", profile.name);
    std::printf("%-14s %12s %14s\n", "target", "upload (s)", "download (s)");
    for (size_t c = 0; c < profile.csps.size(); ++c) {
      std::printf("csp%-11zu %12.1f %14.1f\n", c,
                  SingleCspTime(kFileBytes, profile, c, false),
                  SingleCspTime(kFileBytes, profile, c, true));
    }
    for (uint32_t n : {3u, 4u}) {
      std::printf("cyrus (2,%u)    %12.1f %14.1f\n", n,
                  CyrusUpload(kFileBytes, profile, 2, n),
                  CyrusDownload(kFileBytes, profile, 2, n));
    }
  }
  std::printf(
      "\nPaper shape: in the U.S. the client uplink bottleneck makes (2,4) uploads\n"
      "slower than every single CSP while (2,3) beats all but one; in Korea CYRUS\n"
      "beats every single CSP in both directions and (2,4) costs little extra.\n");
  return 0;
}
