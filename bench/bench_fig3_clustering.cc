// Reproduces Figure 3: hierarchical clustering of Table 2's CSPs from
// traceroute paths.
//
// The paper traceroutes from one client to each of the twenty providers,
// builds the minimum spanning tree of the union of paths, and cuts it
// horizontally; the five asterisked (Amazon-hosted) CSPs fall into one
// cluster. Offline, the routed-topology simulator stands in for the real
// Internet; the clustering pipeline (traceroute -> MST -> level cut) is the
// same code a real deployment would run on real traceroutes.
#include <cstdio>
#include <map>
#include <vector>

#include "src/net/clustering.h"
#include "src/net/providers.h"
#include "src/net/topology.h"

int main() {
  using namespace cyrus;

  ProviderTopology pt = MakePaperTopology();
  auto tree = BuildRoutingTree(pt.topology, pt.client, pt.csp_nodes);
  if (!tree.ok()) {
    std::fprintf(stderr, "routing tree failed: %s\n", tree.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 3: routing tree from the client to Table 2's CSPs\n\n");
  std::printf("%s\n", tree->Render(pt.topology).c_str());

  auto clusters = ClusterByPlatform(*tree, pt.csp_nodes);
  if (!clusters.ok()) {
    std::fprintf(stderr, "clustering failed: %s\n", clusters.status().ToString().c_str());
    return 1;
  }

  std::map<int, std::vector<std::string>> members;
  for (size_t i = 0; i < pt.csp_names.size(); ++i) {
    members[(*clusters)[i]].push_back(pt.csp_names[i]);
  }
  std::printf("Platform clusters (cut one level above the CSP leaves):\n");
  size_t multi = 0;
  for (const auto& [cluster, names] : members) {
    std::printf("  cluster %2d (%zu CSPs):", cluster, names.size());
    for (const std::string& name : names) {
      std::printf(" [%s]", name.c_str());
    }
    std::printf("\n");
    if (names.size() > 1) {
      ++multi;
    }
  }
  std::printf("\nPaper: five CSPs (asterisked in Table 2) share Amazon infrastructure\n");
  std::printf("Found: %zu multi-CSP cluster(s); total clusters: %zu\n", multi,
              members.size());
  return 0;
}
