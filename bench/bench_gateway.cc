// 10k-client zipfian open-loop soak of the multi-tenant gateway.
//
// 10,000 tenants share a 4-shard gateway; arrivals are open-loop on the
// simulator's event queue (virtual time - the soak is deterministic and
// runs in seconds of wall-clock), with the issuing tenant drawn from
// Zipf(0.9), the classic popularity skew. Each tenant carries a quota
// contract sized ~1.05x its expected baseline rate, so the experiment
// answers the multi-tenancy question directly:
//
//   phase 1 (baseline): offered load inside every contract. Measures the
//     unloaded ops/s, p50/p99 modeled latency, and (near-zero) reject rate.
//   phase 2 (overload): the zipf schedule doubles - the head tenants now
//     offer 2x their quota. Admission control must shed the excess with
//     *typed* rejects while a probe tenant that stays inside its quota
//     keeps its p99 within 1.5x of the unloaded p99 (the acceptance bar).
//
// Every arrival executes a real Put/Get/List against the shard's
// CyrusClient (chunk, encode, scatter to simulated CSPs), so the soak
// exercises the full stack, not a mock. Emits BENCH_gateway.json; exits
// non-zero if overload sheds nothing, anything fails untyped, or the
// probe's p99 breaches the bar.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/cloud/simulated_csp.h"
#include "src/gateway/admission.h"
#include "src/gateway/gateway.h"
#include "src/sim/event_queue.h"
#include "src/sim/zipf.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

constexpr int kTenants = 10000;
constexpr double kZipfSkew = 0.9;
constexpr int kShards = 4;
constexpr int kCspsPerShard = 4;
constexpr double kPhaseSeconds = 20.0;
constexpr double kBaselineOpsPerSec = 800.0;
constexpr double kProbeOpsPerSec = 20.0;
constexpr uint64_t kSeed = 20260809;

std::unique_ptr<CyrusClient> MakeShardClient(int shard) {
  CyrusConfig config;
  config.client_id = StrCat("bench-gw-shard-", shard);
  config.key_string = "bench gateway key";
  config.t = 2;
  config.epsilon = 1e-4;
  config.chunker = ChunkerOptions::ForTesting();
  config.cluster_aware = false;
  config.transfer_concurrency = 1;
  // Shard workers are the sole writers to their CSP pool: throttle the
  // per-Get/List metadata discovery scan (otherwise O(total versions) per
  // op, quadratic over the soak).
  config.metadata_sync_interval_s = 1e9;
  auto client = CyrusClient::Create(std::move(config));
  if (!client.ok()) {
    std::fprintf(stderr, "Create: %s\n", client.status().ToString().c_str());
    std::abort();
  }
  for (int i = 0; i < kCspsPerShard; ++i) {
    SimulatedCspOptions o;
    o.id = StrCat("gw", shard, "-csp", i);
    auto added = client.value()->AddCsp(std::make_shared<SimulatedCsp>(o),
                                        CspProfile{}, Credentials{"token"});
    if (!added.ok()) {
      std::fprintf(stderr, "AddCsp: %s\n", added.status().ToString().c_str());
      std::abort();
    }
  }
  return std::move(client).value();
}

struct PhaseResult {
  std::string name;
  uint64_t offered = 0;
  uint64_t served = 0;       // admitted and executed OK (or clean NotFound)
  uint64_t typed_rejects = 0;
  uint64_t untyped_failures = 0;
  std::map<std::string, uint64_t> rejects_by_reason;
  std::vector<double> latencies_ms;        // all admitted ops
  std::vector<double> probe_latencies_ms;  // the in-quota probe tenant
  double virtual_seconds = 0.0;
  double wall_seconds = 0.0;

  double ServedPerSec() const {
    return virtual_seconds > 0 ? served / virtual_seconds : 0.0;
  }
  double RejectRate() const {
    return offered > 0 ? static_cast<double>(typed_rejects) / offered : 0.0;
  }
};

double NowWallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One arrival: pick an op (30% put / 65% get / 5% list), run it through
// the gateway, classify the outcome. Gets target paths the tenant has
// written before (first touch of a path becomes a Put).
void RunArrival(GatewayService* gateway, const std::string& tenant,
                std::vector<std::vector<bool>>* written, int tenant_index,
                Rng* rng, bool is_probe, PhaseResult* phase) {
  const int path_index = static_cast<int>(rng->NextBelow(4));
  const std::string path = StrCat("f", path_index, ".dat");
  const double op_draw = rng->NextDouble();
  std::vector<bool>& tenant_written = (*written)[tenant_index];

  Status status;
  if (op_draw < 0.05) {
    status = gateway->List(tenant, "").status();
  } else if (op_draw < 0.35 || !tenant_written[path_index]) {
    const Bytes payload = ToBytes(StrCat("tenant ", tenant, " payload ",
                                         rng->NextBelow(1u << 20)));
    status = gateway->Put(tenant, path, payload).status();
    if (status.ok()) {
      tenant_written[path_index] = true;
    }
  } else {
    status = gateway->Get(tenant, path).status();
  }

  ++phase->offered;
  if (status.ok() || status.code() == StatusCode::kNotFound) {
    ++phase->served;
    const double latency_ms = gateway->last_virtual_latency_s() * 1e3;
    phase->latencies_ms.push_back(latency_ms);
    if (is_probe) {
      phase->probe_latencies_ms.push_back(latency_ms);
    }
  } else if (IsGatewayReject(status)) {
    ++phase->typed_rejects;
    const auto reason = RejectReasonOf(status);
    ++phase->rejects_by_reason[std::string(RejectReasonName(*reason))];
  } else {
    ++phase->untyped_failures;
    if (phase->untyped_failures <= 3) {
      std::fprintf(stderr, "untyped failure: %s\n", status.ToString().c_str());
    }
  }
}

JsonValue PhaseRow(const PhaseResult& phase) {
  JsonValue row{JsonValue::Object{}};
  row.Set("phase", phase.name);
  row.Set("offered_ops", phase.offered);
  row.Set("served_ops", phase.served);
  row.Set("typed_rejects", phase.typed_rejects);
  row.Set("untyped_failures", phase.untyped_failures);
  row.Set("reject_rate", phase.RejectRate());
  row.Set("served_ops_per_sec", phase.ServedPerSec());
  row.Set("p50_latency_ms", bench::Percentile(phase.latencies_ms, 50));
  row.Set("p99_latency_ms", bench::Percentile(phase.latencies_ms, 99));
  row.Set("probe_p50_latency_ms",
          bench::Percentile(phase.probe_latencies_ms, 50));
  row.Set("probe_p99_latency_ms",
          bench::Percentile(phase.probe_latencies_ms, 99));
  row.Set("virtual_seconds", phase.virtual_seconds);
  row.Set("wall_seconds", phase.wall_seconds);
  JsonValue::Object reasons;
  for (const auto& [reason, count] : phase.rejects_by_reason) {
    reasons.emplace(reason, JsonValue(count));
  }
  row.Set("rejects_by_reason", JsonValue(std::move(reasons)));
  return row;
}

}  // namespace
}  // namespace cyrus

int main() {
  using namespace cyrus;
  using bench::BenchReport;

  std::printf("Multi-tenant gateway soak: %d tenants, zipf(%.1f), %d shards\n",
              kTenants, kZipfSkew, kShards);
  std::printf(
      "open-loop on virtual time; phase 1 in-quota, phase 2 offers 2x.\n\n");

  GatewayOptions options;
  options.per_tenant_metrics = false;  // 10k tenants: keep cardinality flat
  options.shard_op_overhead_s = 0.001;
  std::vector<std::unique_ptr<CyrusClient>> clients;
  for (int s = 0; s < kShards; ++s) {
    clients.push_back(MakeShardClient(s));
  }
  auto created = GatewayService::Create(options, std::move(clients));
  if (!created.ok()) {
    std::fprintf(stderr, "Create: %s\n", created.status().ToString().c_str());
    return 1;
  }
  GatewayService* gateway = created.value().get();

  // Quota contracts sized to the baseline schedule: each tenant's rate is
  // ~1.05x its expected zipfian share, so phase 1 fits and phase 2's head
  // tenants run hot. Tiny tail tenants keep a floor contract whose burst
  // absorbs their sporadic ops.
  ZipfGenerator zipf(kTenants, kZipfSkew);
  std::vector<std::string> tenant_names;
  tenant_names.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    tenant_names.push_back(StrCat("tenant-", t));
    const double baseline_rate = kBaselineOpsPerSec * zipf.ProbabilityOf(t);
    TenantQuotas quotas;
    quotas.ops_per_sec = std::max(1.0, 1.05 * baseline_rate);
    quotas.ops_burst = std::max(8.0, quotas.ops_per_sec);
    auto registered = gateway->RegisterTenant(tenant_names.back(), quotas);
    if (!registered.ok()) {
      std::fprintf(stderr, "RegisterTenant: %s\n",
                   registered.ToString().c_str());
      return 1;
    }
  }
  TenantQuotas probe_quotas;
  probe_quotas.ops_per_sec = 2.0 * kProbeOpsPerSec;  // stays in quota
  if (!gateway->RegisterTenant("probe", probe_quotas).ok()) {
    return 1;
  }

  std::vector<std::vector<bool>> written(kTenants + 1,
                                         std::vector<bool>(4, false));
  const int kProbeIndex = kTenants;  // written[] slot for the probe tenant

  BenchReport report("gateway");
  report.SetParam("tenants", uint64_t{kTenants});
  report.SetParam("zipf_skew", kZipfSkew);
  report.SetParam("shards", uint64_t{kShards});
  report.SetParam("phase_seconds", kPhaseSeconds);
  report.SetParam("baseline_ops_per_sec", kBaselineOpsPerSec);
  report.SetParam("overload_factor", 2.0);
  report.SetParam("probe_ops_per_sec", kProbeOpsPerSec);
  report.SetParam("seed", kSeed);

  Rng rng(kSeed);
  std::vector<PhaseResult> phases;
  double phase_start_virtual = 0.0;

  for (const double overload : {1.0, 2.0}) {
    PhaseResult phase;
    phase.name = overload > 1.0 ? "overload-2x" : "baseline";
    const double rate = kBaselineOpsPerSec * overload;
    const uint64_t arrivals = static_cast<uint64_t>(rate * kPhaseSeconds);
    EventQueue queue;

    for (uint64_t i = 0; i < arrivals; ++i) {
      const double when = phase_start_virtual + i / rate;
      queue.ScheduleAt(when, [&, when] {
        gateway->set_time(when);
        const int tenant_index = static_cast<int>(zipf.Next(rng));
        RunArrival(gateway, tenant_names[tenant_index], &written,
                   tenant_index, &rng, /*is_probe=*/false, &phase);
      });
    }
    // The probe holds its (in-quota) rate through both phases.
    const uint64_t probe_arrivals =
        static_cast<uint64_t>(kProbeOpsPerSec * kPhaseSeconds);
    for (uint64_t i = 0; i < probe_arrivals; ++i) {
      const double when = phase_start_virtual + i / kProbeOpsPerSec;
      queue.ScheduleAt(when, [&, when] {
        gateway->set_time(when);
        RunArrival(gateway, "probe", &written, kProbeIndex, &rng,
                   /*is_probe=*/true, &phase);
      });
    }

    const double wall_start = NowWallSeconds();
    queue.RunUntilIdle();
    phase.wall_seconds = NowWallSeconds() - wall_start;
    phase.virtual_seconds = kPhaseSeconds;
    phase_start_virtual += kPhaseSeconds;
    phases.push_back(std::move(phase));
  }

  std::printf("%-12s | %9s %9s %7s | %8s %8s | %9s %9s\n", "phase", "served",
              "rejects", "rate", "p50_ms", "p99_ms", "probe_p50", "probe_p99");
  for (const PhaseResult& phase : phases) {
    std::printf("%-12s | %9llu %9llu %6.2f%% | %8.2f %8.2f | %9.2f %9.2f\n",
                phase.name.c_str(),
                static_cast<unsigned long long>(phase.served),
                static_cast<unsigned long long>(phase.typed_rejects),
                100.0 * phase.RejectRate(),
                bench::Percentile(phase.latencies_ms, 50),
                bench::Percentile(phase.latencies_ms, 99),
                bench::Percentile(phase.probe_latencies_ms, 50),
                bench::Percentile(phase.probe_latencies_ms, 99));
    report.AddRow(PhaseRow(phase));
  }

  const PhaseResult& baseline = phases[0];
  const PhaseResult& overload = phases[1];
  const double probe_p99_baseline =
      bench::Percentile(baseline.probe_latencies_ms, 99);
  const double probe_p99_overload =
      bench::Percentile(overload.probe_latencies_ms, 99);
  const double probe_ratio =
      probe_p99_baseline > 0 ? probe_p99_overload / probe_p99_baseline : 0.0;

  const GatewayStats stats = gateway->Stats();
  std::printf(
      "\nSustained %.0f served ops/s virtual (%.0f ops/s wall) across %zu "
      "tenants.\n",
      overload.ServedPerSec(),
      overload.wall_seconds > 0 ? overload.served / overload.wall_seconds : 0.0,
      stats.num_tenants);
  std::printf(
      "Overload shed %.1f%% with typed rejects; probe p99 %.2f ms vs %.2f ms "
      "unloaded (%.2fx, bar 1.5x).\n",
      100.0 * overload.RejectRate(), probe_p99_overload, probe_p99_baseline,
      probe_ratio);

  JsonValue summary{JsonValue::Object{}};
  summary.Set("phase", "summary");
  summary.Set("probe_p99_ratio", probe_ratio);
  summary.Set("total_ops", stats.ops_total);
  summary.Set("total_rejects", stats.rejects_total);
  report.AddRow(std::move(summary));
  std::printf("wrote %s\n", report.Write().c_str());

  // --- acceptance bars ---
  bool failed = false;
  if (baseline.untyped_failures + overload.untyped_failures > 0) {
    std::fprintf(stderr, "FAIL: untyped failures leaked through the gateway\n");
    failed = true;
  }
  if (overload.typed_rejects == 0) {
    std::fprintf(stderr, "FAIL: 2x overload shed nothing\n");
    failed = true;
  }
  if (overload.RejectRate() < 0.05) {
    std::fprintf(stderr, "FAIL: overload reject rate %.2f%% implausibly low\n",
                 100.0 * overload.RejectRate());
    failed = true;
  }
  if (probe_ratio > 1.5) {
    std::fprintf(stderr,
                 "FAIL: in-quota probe p99 degraded %.2fx under overload "
                 "(bar 1.5x)\n",
                 probe_ratio);
    failed = true;
  }
  if (baseline.RejectRate() > 0.02) {
    std::fprintf(stderr, "FAIL: baseline reject rate %.2f%% (should be ~0)\n",
                 100.0 * baseline.RejectRate());
    failed = true;
  }
  return failed ? 1 : 0;
}
