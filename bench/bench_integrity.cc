// End-to-end share integrity under active corruption and at-rest bit rot
// (the chaos bar for per-share authentication + scrub healing).
//
// Three scenarios over the fault-injecting connector layer, 5 CSPs, t=2,
// n=5 (every chunk keeps a share on every provider):
//
//   clean - no faults. Baseline Get latency and proof that the digest
//     checks are free of false positives: zero rejected shares across the
//     whole run.
//
//   corrupt-csp0 - one provider corrupts 100% of its downloads while
//     advertising the fastest link, so the selector always puts it in the
//     primary set. Every Get must still return intact plaintext
//     (availability 1.0 at the content level): the poisoned shares are
//     rejected *before* decode and replaced from clean providers. The
//     repeat offender must end the run quarantined (registry kFailed), and
//     the Get p99 must stay within 2.5x the clean baseline - the price of
//     detection + failover, not of retry storms.
//
//   scrub-rot - ~1% of at-rest share objects get one byte flipped while
//     the data sits cold. Budgeted scrub passes (sampled digest checks,
//     no decode on the clean path) must find and heal every rotted share
//     in one rotation of the cursor, a follow-up rotation must scan
//     completely clean, and every file must read back intact afterwards.
//
// Emits BENCH_integrity.json. Exits non-zero when
//   - any Get returns corrupt plaintext or fails outright in any scenario,
//   - the clean run rejects a share or the corrupt run rejects none,
//   - the corrupting CSP is not quarantined by the end of its run,
//   - the corrupt-run Get p99 exceeds 2.5x the clean p99 (+1 ms slack),
//   - scrub heals fewer shares than were rotted, or the follow-up sweep
//     still finds failures.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/cloud/fault_injection.h"
#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/crypto/naming.h"
#include "src/rest/json.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

constexpr int kNumCsps = 5;
constexpr size_t kFileBytes = 16 * 1024;  // 16 x 1 KB chunks
constexpr int kTrials = 20;
constexpr double kTailBarFactor = 2.5;

struct IntegrityBed {
  std::vector<std::shared_ptr<FaultInjectingConnector>> faults;
  std::unique_ptr<CyrusClient> client;
  std::unique_ptr<obs::MetricsRegistry> metrics;
};

IntegrityBed MakeBed(uint64_t seed, bool corrupt_csp0,
                     uint32_t integrity_samples_per_pass,
                     uint64_t scrub_budget_bytes) {
  IntegrityBed bed;
  bed.metrics = std::make_unique<obs::MetricsRegistry>();

  CyrusConfig config;
  config.client_id = "bench-integrity";
  config.key_string = StrCat("integrity-key-", seed);
  config.t = 2;
  config.cluster_aware = false;
  config.transfer_concurrency = 4;
  // Pin Eq. (1) off its feasible range so every chunk targets n = kNumCsps
  // shares: the corrupting provider then holds a share of every chunk.
  config.default_failure_prob = 0.5;
  config.epsilon = 1e-9;
  // Fixed 1 KB chunks so every trial moves identical bytes.
  config.chunker.modulus = 1024;
  config.chunker.min_chunk_size = 1024;
  config.chunker.max_chunk_size = 1024;
  config.transfer_retry.max_attempts = 2;
  config.transfer_retry.initial_backoff_ms = 1.0;
  config.transfer_retry.seed = seed;
  config.metrics = bed.metrics.get();
  config.repair.integrity_samples_per_pass = integrity_samples_per_pass;
  config.repair.bandwidth_budget_bytes = scrub_budget_bytes;

  auto client = CyrusClient::Create(std::move(config));
  if (!client.ok()) {
    std::fprintf(stderr, "client: %s\n", client.status().ToString().c_str());
    std::abort();
  }
  bed.client = std::move(client).value();

  for (int i = 0; i < kNumCsps; ++i) {
    SimulatedCspOptions o;
    o.id = StrCat("csp", i);
    FaultInjectionOptions faults;
    faults.seed = seed * 131 + static_cast<uint64_t>(i);
    faults.metrics = bed.metrics.get();
    if (corrupt_csp0 && i == 0) {
      faults.download_corrupt_prob = 1.0;
    }
    auto injector = std::make_shared<FaultInjectingConnector>(
        std::make_shared<SimulatedCsp>(o), faults);
    bed.faults.push_back(injector);
    CspProfile profile;
    profile.rtt_ms = 1.0;
    // The corrupting CSP advertises the best link, so the selector always
    // puts it in the primary download set - the worst case the verify-
    // before-decode path must cover.
    profile.download_bytes_per_sec = (i == 0) ? 50e6 : 8e6;
    profile.upload_bytes_per_sec = 5e6;
    auto added = bed.client->AddCsp(injector, profile, Credentials{"token"});
    if (!added.ok()) {
      std::fprintf(stderr, "AddCsp: %s\n", added.status().ToString().c_str());
      std::abort();
    }
  }
  return bed;
}

Bytes MakeContent(size_t size, uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct TransferCell {
  double get_availability = 0.0;
  double get_p50_ms = 0.0;
  double get_p99_ms = 0.0;
  uint64_t rejected_shares = 0;
  bool csp0_quarantined = false;
};

// One transfer scenario: `kTrials` fresh files, each Put then Get back.
// Availability counts only byte-exact plaintext; a Get that "succeeds"
// with wrong bytes counts as unavailable (and is the one outcome per-share
// authentication exists to prevent).
TransferCell RunTransferCell(bool corrupt_csp0, uint64_t seed) {
  IntegrityBed bed = MakeBed(seed, corrupt_csp0,
                             /*integrity_samples_per_pass=*/0,
                             /*scrub_budget_bytes=*/0);
  TransferCell cell;
  std::vector<double> get_ms;
  int get_ok = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const Bytes content = MakeContent(kFileBytes, seed ^ (0x1417 + trial));
    const std::string name = StrCat("file-", trial, ".bin");
    auto put = bed.client->Put(name, content);
    if (!put.ok()) {
      continue;
    }
    const double get_start = NowMs();
    auto get = bed.client->Get(name);
    get_ms.push_back(NowMs() - get_start);
    if (get.ok() && get->content == content) {
      ++get_ok;
      cell.rejected_shares += get->integrity_rejected_shares;
    }
  }
  cell.get_availability = static_cast<double>(get_ok) / kTrials;
  if (!get_ms.empty()) {
    cell.get_p50_ms = bench::Percentile(get_ms, 50.0);
    cell.get_p99_ms = bench::Percentile(get_ms, 99.0);
  }
  auto state = bed.client->registry().state(0);
  cell.csp0_quarantined = state.ok() && *state == CspState::kFailed;
  return cell;
}

struct ScrubCell {
  uint64_t total_shares = 0;
  uint64_t rotted = 0;
  uint64_t healed = 0;
  uint64_t heal_passes = 0;
  uint64_t verify_failures = 0;
  uint64_t bytes_moved = 0;
  bool files_intact = false;
};

// At-rest rot scenario: a dataset sits cold while ~1% of its share objects
// get one byte flipped, then budgeted scrub passes sweep the table.
ScrubCell RunScrubCell(uint64_t seed) {
  constexpr int kFiles = 12;
  constexpr uint32_t kSamplesPerPass = 32;
  constexpr uint64_t kBudgetBytes = 512 * 1024;

  IntegrityBed bed = MakeBed(seed, /*corrupt_csp0=*/false, kSamplesPerPass,
                             kBudgetBytes);
  ScrubCell cell;

  std::vector<Bytes> contents;
  for (int i = 0; i < kFiles; ++i) {
    contents.push_back(MakeContent(kFileBytes, seed ^ (0xA110 + i)));
    auto put = bed.client->Put(StrCat("cold-", i, ".bin"), contents.back());
    if (!put.ok()) {
      std::fprintf(stderr, "Put: %s\n", put.status().ToString().c_str());
      std::abort();
    }
  }

  // Flip one byte in ~1% of share objects, spread across providers by the
  // seeded rng; force at least 3 so the run always has something to heal.
  const ChunkTable& table = bed.client->chunk_table();
  struct Loc {
    Sha1Digest chunk_id;
    uint32_t share_index;
    uint32_t t;
    int csp;
  };
  std::vector<Loc> locations;
  for (const Sha1Digest& chunk_id : table.AllChunkIds()) {
    const ChunkEntry* entry = table.Find(chunk_id);
    if (entry == nullptr) {
      continue;
    }
    for (const ChunkShare& share : entry->shares) {
      locations.push_back(Loc{chunk_id, share.share_index, entry->t, share.csp});
    }
  }
  cell.total_shares = locations.size();
  Rng rot_rng(seed * 7 + 5);
  std::vector<size_t> to_rot;
  for (size_t i = 0; i < locations.size(); ++i) {
    if (rot_rng.NextDouble(0.0, 1.0) < 0.01) {
      to_rot.push_back(i);
    }
  }
  for (size_t i = 0; to_rot.size() < 3 && i < locations.size(); i += 17) {
    if (std::find(to_rot.begin(), to_rot.end(), i) == to_rot.end()) {
      to_rot.push_back(i);
    }
  }
  for (size_t i : to_rot) {
    const Loc& loc = locations[i];
    if (loc.csp < 0 || loc.csp >= static_cast<int>(bed.faults.size())) {
      continue;
    }
    if (bed.faults[loc.csp]
            ->RotStoredObject(ShareName(loc.chunk_id, loc.share_index, loc.t),
                              /*byte_index=*/13)
            .ok()) {
      ++cell.rotted;
    }
  }

  // One full rotation of the sampled cursor heals everything the rot pass
  // planted; a second rotation must scan clean.
  const size_t chunks = table.AllChunkIds().size();
  const uint64_t passes_per_sweep =
      (chunks + kSamplesPerPass - 1) / kSamplesPerPass;
  for (uint64_t pass = 0; pass < passes_per_sweep; ++pass) {
    auto scrub = bed.client->ScrubOnce();
    if (!scrub.ok()) {
      std::fprintf(stderr, "ScrubOnce: %s\n", scrub.status().ToString().c_str());
      std::abort();
    }
    ++cell.heal_passes;
    cell.healed += scrub->stats.shares_healed;
    cell.bytes_moved += scrub->stats.bytes_moved;
  }
  for (uint64_t pass = 0; pass < passes_per_sweep; ++pass) {
    auto scrub = bed.client->ScrubOnce();
    if (!scrub.ok()) {
      std::fprintf(stderr, "ScrubOnce: %s\n", scrub.status().ToString().c_str());
      std::abort();
    }
    cell.verify_failures += scrub->stats.integrity_failures;
    cell.bytes_moved += scrub->stats.bytes_moved;
  }

  cell.files_intact = true;
  for (int i = 0; i < kFiles; ++i) {
    auto get = bed.client->Get(StrCat("cold-", i, ".bin"));
    if (!get.ok() || get->content != contents[i] ||
        get->integrity_rejected_shares != 0) {
      cell.files_intact = false;
    }
  }
  return cell;
}

}  // namespace
}  // namespace cyrus

int main() {
  using namespace cyrus;
  using bench::BenchReport;

  std::printf(
      "Share integrity chaos bar: %d CSPs, t=2, n=%d, %d trials of a\n"
      "%zu-byte file per transfer cell. corrupt-csp0 poisons 100%% of one\n"
      "provider's downloads; scrub-rot flips one byte in ~1%% of at-rest\n"
      "share objects and sweeps with budgeted scrub passes.\n\n",
      kNumCsps, kNumCsps, kTrials, kFileBytes);

  BenchReport report("integrity");
  report.SetParam("t", uint64_t{2});
  report.SetParam("n", uint64_t{kNumCsps});
  report.SetParam("file_bytes", uint64_t{kFileBytes});
  report.SetParam("trials_per_cell", uint64_t{kTrials});
  report.SetParam("tail_bar_factor", kTailBarFactor);

  bool failed = false;

  std::printf("%-14s | %7s | %9s %9s | %8s | %s\n", "scenario", "get_av",
              "get_p50", "get_p99", "rejected", "quarantined");

  const TransferCell clean = RunTransferCell(/*corrupt_csp0=*/false, 9000);
  std::printf("%-14s | %7.2f | %8.1fms %8.1fms | %8llu | %s\n", "clean",
              clean.get_availability, clean.get_p50_ms, clean.get_p99_ms,
              static_cast<unsigned long long>(clean.rejected_shares), "-");
  if (clean.get_availability < 1.0) {
    std::fprintf(stderr, "FAIL: clean-run Get availability below 1.0\n");
    failed = true;
  }
  if (clean.rejected_shares != 0) {
    std::fprintf(stderr,
                 "FAIL: clean run rejected %llu shares (digest false "
                 "positives)\n",
                 static_cast<unsigned long long>(clean.rejected_shares));
    failed = true;
  }

  const TransferCell corrupt = RunTransferCell(/*corrupt_csp0=*/true, 9001);
  std::printf("%-14s | %7.2f | %8.1fms %8.1fms | %8llu | %s\n", "corrupt-csp0",
              corrupt.get_availability, corrupt.get_p50_ms, corrupt.get_p99_ms,
              static_cast<unsigned long long>(corrupt.rejected_shares),
              corrupt.csp0_quarantined ? "yes" : "NO");
  if (corrupt.get_availability < 1.0) {
    std::fprintf(stderr,
                 "FAIL: Get availability %.2f below 1.0 with one fully "
                 "corrupting CSP\n",
                 corrupt.get_availability);
    failed = true;
  }
  if (corrupt.rejected_shares == 0) {
    std::fprintf(stderr,
                 "FAIL: corrupting CSP produced no integrity rejections "
                 "(corruption was not exercised)\n");
    failed = true;
  }
  if (!corrupt.csp0_quarantined) {
    std::fprintf(stderr, "FAIL: corrupting CSP was not quarantined\n");
    failed = true;
  }
  // Detection + failover may cost extra downloads on the first chunks, but
  // must not turn into a retry storm: p99 within 2.5x the clean baseline,
  // plus 1 ms absolute slack because the baseline is small enough that
  // scheduler jitter alone can breach a pure ratio.
  if (corrupt.get_p99_ms > clean.get_p99_ms * kTailBarFactor + 1.0) {
    std::fprintf(stderr,
                 "FAIL: corrupt-run Get p99 %.2f ms exceeds %.1fx the clean "
                 "p99 %.2f ms\n",
                 corrupt.get_p99_ms, kTailBarFactor, clean.get_p99_ms);
    failed = true;
  }

  for (const auto* cell : {&clean, &corrupt}) {
    JsonValue row{JsonValue::Object{}};
    row.Set("scenario", cell == &clean ? "clean" : "corrupt-csp0");
    row.Set("get_availability", cell->get_availability);
    row.Set("get_p50_ms", cell->get_p50_ms);
    row.Set("get_p99_ms", cell->get_p99_ms);
    row.Set("integrity_rejected_shares", cell->rejected_shares);
    row.Set("csp0_quarantined", cell->csp0_quarantined);
    report.AddRow(std::move(row));
  }

  const ScrubCell scrub = RunScrubCell(9002);
  std::printf(
      "\nscrub-rot: %llu/%llu shares rotted, %llu healed over %llu passes "
      "(%llu share bytes moved); follow-up sweep found %llu failures; "
      "files intact: %s\n",
      static_cast<unsigned long long>(scrub.rotted),
      static_cast<unsigned long long>(scrub.total_shares),
      static_cast<unsigned long long>(scrub.healed),
      static_cast<unsigned long long>(scrub.heal_passes),
      static_cast<unsigned long long>(scrub.bytes_moved),
      static_cast<unsigned long long>(scrub.verify_failures),
      scrub.files_intact ? "yes" : "NO");
  if (scrub.rotted == 0 || scrub.healed != scrub.rotted) {
    std::fprintf(stderr, "FAIL: scrub healed %llu of %llu rotted shares\n",
                 static_cast<unsigned long long>(scrub.healed),
                 static_cast<unsigned long long>(scrub.rotted));
    failed = true;
  }
  if (scrub.verify_failures != 0) {
    std::fprintf(stderr,
                 "FAIL: follow-up scrub sweep still found %llu failures\n",
                 static_cast<unsigned long long>(scrub.verify_failures));
    failed = true;
  }
  if (!scrub.files_intact) {
    std::fprintf(stderr, "FAIL: a file read back corrupt after healing\n");
    failed = true;
  }

  JsonValue row{JsonValue::Object{}};
  row.Set("scenario", "scrub-rot");
  row.Set("total_shares", scrub.total_shares);
  row.Set("shares_rotted", scrub.rotted);
  row.Set("shares_healed", scrub.healed);
  row.Set("heal_passes", scrub.heal_passes);
  row.Set("bytes_moved", scrub.bytes_moved);
  row.Set("followup_failures", scrub.verify_failures);
  row.Set("files_intact", scrub.files_intact);
  report.AddRow(std::move(row));

  const double tail_ratio =
      clean.get_p99_ms > 0.0 ? corrupt.get_p99_ms / clean.get_p99_ms : 0.0;
  std::printf(
      "\nHeadline: one fully-corrupting CSP costs %.2fx on Get p99 "
      "(%.1f ms -> %.1f ms) at availability %.2f; the bar is %.1fx.\n",
      tail_ratio, clean.get_p99_ms, corrupt.get_p99_ms,
      corrupt.get_availability, kTailBarFactor);

  JsonValue headline{JsonValue::Object{}};
  headline.Set("scenario", "headline");
  headline.Set("corrupt_p99_over_clean", tail_ratio);
  headline.Set("corrupt_get_availability", corrupt.get_availability);
  headline.Set("scrub_heal_rate",
               scrub.rotted > 0
                   ? static_cast<double>(scrub.healed) / scrub.rotted
                   : 0.0);
  report.AddRow(std::move(headline));
  std::printf("wrote %s\n", report.Write().c_str());

  return failed ? 1 : 0;
}
