// Substrate microbenchmarks (google-benchmark): throughput of the hot
// primitives under the CYRUS pipeline - SHA-1 content addressing, Rabin
// chunking, consistent-hash placement, and Algorithm 1's LP machinery.
// Not a paper figure; used to confirm the paper's premise that client-side
// computation never rivals WAN transfer time (§7.1 extends this to coding;
// these cover everything else on the Put/Get path).
#include <benchmark/benchmark.h>

#include "src/chunker/chunker.h"
#include "src/core/hash_ring.h"
#include "src/crypto/sha1.h"
#include "src/opt/download_selector.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace {

using namespace cyrus;

Bytes MakeData(size_t size) {
  Rng rng(11);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

void BM_Sha1(benchmark::State& state) {
  const Bytes data = MakeData(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * data.size());
}
BENCHMARK(BM_Sha1)->Arg(64 << 10)->Arg(4 << 20)->Unit(benchmark::kMicrosecond);

void BM_RabinChunking(benchmark::State& state) {
  const Bytes data = MakeData(static_cast<size_t>(state.range(0)));
  ChunkerOptions options;  // 4 MB average, production setting
  options.min_chunk_size = 64 * 1024;
  auto chunker = Chunker::Create(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker->Split(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * data.size());
}
BENCHMARK(BM_RabinChunking)->Arg(16 << 20)->Unit(benchmark::kMillisecond);

void BM_HashRingSelect(benchmark::State& state) {
  HashRing ring;
  for (int i = 0; i < 8; ++i) {
    (void)ring.AddCsp(i, StrCat("csp", i), -1);
  }
  uint64_t counter = 0;
  for (auto _ : state) {
    const Sha1Digest id = Sha1::Hash(StrCat("chunk-", counter++));
    benchmark::DoNotOptimize(ring.SelectCsps(id, 4));
  }
}
BENCHMARK(BM_HashRingSelect);

void BM_DownloadSelection(benchmark::State& state) {
  const size_t chunks = static_cast<size_t>(state.range(0));
  Rng rng(12);
  DownloadProblem problem;
  problem.t = 2;
  for (int c = 0; c < 7; ++c) {
    problem.csp_bandwidth.push_back(c < 4 ? 15e6 : 2e6);
  }
  for (size_t r = 0; r < chunks; ++r) {
    DownloadChunk chunk;
    chunk.share_bytes = rng.NextDouble(0.5e6, 4e6);
    chunk.stored_at = {0, 1, 2, 3, 4, 5, 6};
    problem.chunks.push_back(chunk);
  }
  OptimalDownloadSelector selector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.Select(problem));
  }
  state.counters["chunks"] = static_cast<double>(chunks);
}
BENCHMARK(BM_DownloadSelection)->Arg(1)->Arg(4)->Arg(13)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
