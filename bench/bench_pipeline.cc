// Pipelined vs sequential Put/Get wall-clock (the tentpole experiment for
// the chunk-level transfer pipeline).
//
// A ThrottledConnector decorator charges every Upload/Download a real
// sleep of rtt + bytes/bandwidth, modelling one HTTP request over that
// CSP's link. Crucially the decorator holds no lock across the sleep:
// concurrent requests to the same CSP overlap, exactly the multi-stream
// parallelism §5.3 exploits. With the pipeline window at 1 the client
// degenerates to the pre-pipeline engine (finish chunk i before chunking
// chunk i+1), so sweeping pipeline_window_chunks isolates the speedup of
// overlapping chunk i's transfers with chunk i+1's chunk/encode/upload.
//
// The headline configuration matches the acceptance bar: a 16-chunk file,
// one slow CSP among fast ones, window 4 vs window 1. The sweep also
// covers uniform and half-slow bandwidth skews.
//
// Emits BENCH_pipeline.json; exits non-zero if any pipelined window is
// slower than the sequential baseline (beyond timer noise).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/cloud/connector.h"
#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/core/reliability.h"
#include "src/rest/json.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

// Wraps a connector and charges rtt + bytes/bandwidth of *real* time per
// transfer. No mutex is held across the sleep: simultaneous requests to
// the same CSP proceed in parallel, like independent HTTP connections.
class ThrottledConnector : public CloudConnector {
 public:
  ThrottledConnector(std::shared_ptr<CloudConnector> inner,
                     double bytes_per_sec, double rtt_ms)
      : inner_(std::move(inner)),
        bytes_per_sec_(bytes_per_sec),
        rtt_ms_(rtt_ms) {}

  std::string_view id() const override { return inner_->id(); }
  Status Authenticate(const Credentials& credentials) override {
    return inner_->Authenticate(credentials);
  }
  Result<std::vector<ObjectInfo>> List(std::string_view prefix) override {
    return inner_->List(prefix);
  }
  Status Upload(std::string_view name, ByteSpan data) override {
    Charge(data.size());
    return inner_->Upload(name, data);
  }
  Result<Bytes> Download(std::string_view name) override {
    auto result = inner_->Download(name);
    if (result.ok()) {
      Charge(result->size());
    }
    return result;
  }
  Status Delete(std::string_view name) override { return inner_->Delete(name); }

 private:
  void Charge(size_t bytes) const {
    const double seconds =
        rtt_ms_ / 1e3 + static_cast<double>(bytes) / bytes_per_sec_;
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(seconds * 1e6)));
  }

  std::shared_ptr<CloudConnector> inner_;
  double bytes_per_sec_;
  double rtt_ms_;
};

constexpr int kNumCsps = 5;

// Virtual link rates, scaled so one Put sleeps for tens of milliseconds:
// large enough to dwarf scheduler noise, small enough that the full sweep
// stays a few seconds.
constexpr double kFastBps = 512e3;
constexpr double kSlowBps = 64e3;
constexpr double kFastRttMs = 0.5;
constexpr double kSlowRttMs = 2.0;

struct SkewSpec {
  const char* name;
  int slow_csps;  // first `slow_csps` connectors get the slow link
};

struct PipelineBed {
  std::vector<std::shared_ptr<SimulatedCsp>> csps;
  std::unique_ptr<CyrusClient> client;
};

PipelineBed MakeBed(uint32_t window_chunks, int slow_csps, uint64_t seed) {
  PipelineBed bed;

  CyrusConfig config;
  config.client_id = "bench-pipeline";
  config.key_string = StrCat("pipeline-key-", seed);
  config.t = 2;
  config.cluster_aware = false;
  config.transfer_concurrency = 16;
  config.pipeline_window_chunks = window_chunks;
  // Pin Eq. (1) to n = kNumCsps so every chunk stores a share on every
  // CSP; the slow link then gates each chunk and the contrast between
  // sequential and pipelined is maximal (and deterministic).
  config.default_failure_prob = 0.01;
  const double loss_n =
      ChunkLossProbability(config.t, kNumCsps, config.default_failure_prob);
  const double loss_prev =
      ChunkLossProbability(config.t, kNumCsps - 1, config.default_failure_prob);
  config.epsilon = std::sqrt(loss_n * loss_prev);
  // Fixed-size 1 KB chunks (min == max disables the Rabin cut search), so
  // "a 16-chunk file" is exactly 16 KB and every row is comparable.
  config.chunker.modulus = 1024;
  config.chunker.min_chunk_size = 1024;
  config.chunker.max_chunk_size = 1024;

  auto client = CyrusClient::Create(std::move(config));
  if (!client.ok()) {
    std::fprintf(stderr, "client: %s\n", client.status().ToString().c_str());
    std::abort();
  }
  bed.client = std::move(client).value();

  for (int i = 0; i < kNumCsps; ++i) {
    const bool slow = i < slow_csps;
    SimulatedCspOptions o;
    o.id = StrCat(slow ? "slow" : "fast", i);
    o.naming = (i % 2 == 0) ? NamingPolicy::kNameKeyed : NamingPolicy::kIdKeyed;
    auto csp = std::make_shared<SimulatedCsp>(o);
    bed.csps.push_back(csp);
    auto throttled = std::make_shared<ThrottledConnector>(
        csp, slow ? kSlowBps : kFastBps, slow ? kSlowRttMs : kFastRttMs);
    CspProfile profile;
    profile.rtt_ms = slow ? kSlowRttMs : kFastRttMs;
    profile.download_bytes_per_sec = slow ? kSlowBps : kFastBps;
    profile.upload_bytes_per_sec = slow ? kSlowBps : kFastBps;
    auto added = bed.client->AddCsp(throttled, profile, Credentials{"token"});
    if (!added.ok()) {
      std::fprintf(stderr, "AddCsp: %s\n", added.status().ToString().c_str());
      std::abort();
    }
  }
  return bed;
}

Bytes MakeContent(size_t size, uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

struct Sample {
  double put_ms = 0;
  double get_ms = 0;
  uint64_t chunks = 0;
};

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One fresh client per measurement: dedup state must not let a repeat Put
// skip the uploads it is supposed to time.
Sample Measure(uint32_t window, int slow_csps, uint64_t seed) {
  PipelineBed bed = MakeBed(window, slow_csps, seed);
  const Bytes content = MakeContent(16 * 1024, seed);  // exactly 16 chunks

  const double put_start = NowMs();
  auto put = bed.client->Put("bench.bin", content);
  const double put_end = NowMs();
  if (!put.ok()) {
    std::fprintf(stderr, "Put: %s\n", put.status().ToString().c_str());
    std::abort();
  }

  const double get_start = NowMs();
  auto get = bed.client->Get("bench.bin");
  const double get_end = NowMs();
  if (!get.ok() || get->content != content) {
    std::fprintf(stderr, "Get failed or returned wrong bytes\n");
    std::abort();
  }

  Sample s;
  s.put_ms = put_end - put_start;
  s.get_ms = get_end - get_start;
  s.chunks = put->total_chunks;
  return s;
}

double Median3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

}  // namespace
}  // namespace cyrus

int main() {
  using namespace cyrus;
  using bench::BenchReport;

  std::printf("Pipelined vs sequential transfer engine (16-chunk file, %d CSPs)\n",
              kNumCsps);
  std::printf("window=1 is the sequential baseline; link sleeps are real time.\n\n");

  BenchReport report("pipeline");
  report.SetParam("t", uint64_t{2});
  report.SetParam("n", uint64_t{kNumCsps});
  report.SetParam("file_bytes", uint64_t{16 * 1024});
  report.SetParam("chunk_bytes", uint64_t{1024});
  report.SetParam("fast_bytes_per_sec", kFastBps);
  report.SetParam("slow_bytes_per_sec", kSlowBps);
  report.SetParam("repetitions", uint64_t{3});

  const SkewSpec skews[] = {
      {"uniform-fast", 0}, {"one-slow", 1}, {"half-slow", 2}};
  const uint32_t windows[] = {1, 2, 4, 8};

  std::printf("%-13s %-7s | %8s %8s | %9s %9s | %s\n", "skew", "window",
              "put_ms", "get_ms", "put_spdup", "get_spdup", "chunks");

  bool regression = false;
  double headline_speedup = 0.0;  // one-slow, window 4 (the acceptance bar)

  for (const SkewSpec& skew : skews) {
    double seq_put = 0.0;
    double seq_get = 0.0;
    for (const uint32_t window : windows) {
      Sample reps[3];
      for (uint64_t r = 0; r < 3; ++r) {
        reps[r] = Measure(window, skew.slow_csps,
                          /*seed=*/1000 * (skew.slow_csps + 1) + 10 * window + r);
      }
      Sample s = reps[0];
      s.put_ms = Median3(reps[0].put_ms, reps[1].put_ms, reps[2].put_ms);
      s.get_ms = Median3(reps[0].get_ms, reps[1].get_ms, reps[2].get_ms);
      if (window == 1) {
        seq_put = s.put_ms;
        seq_get = s.get_ms;
      }
      const double put_speedup = seq_put > 0 ? seq_put / s.put_ms : 0.0;
      const double get_speedup = seq_get > 0 ? seq_get / s.get_ms : 0.0;
      if (skew.slow_csps == 1 && window == 4) {
        headline_speedup = put_speedup;
      }
      // Pipelining must never cost wall-clock time; 10% headroom absorbs
      // scheduler jitter on a loaded machine.
      if (window > 1 && s.put_ms > seq_put * 1.10) {
        std::fprintf(stderr,
                     "REGRESSION: skew=%s window=%u put %.1f ms > sequential "
                     "%.1f ms\n",
                     skew.name, window, s.put_ms, seq_put);
        regression = true;
      }

      std::printf("%-13s %-7u | %8.1f %8.1f | %8.2fx %8.2fx | %llu\n",
                  skew.name, window, s.put_ms, s.get_ms, put_speedup,
                  get_speedup, static_cast<unsigned long long>(s.chunks));

      JsonValue row{JsonValue::Object{}};
      row.Set("skew", skew.name);
      row.Set("slow_csps", uint64_t{static_cast<uint64_t>(skew.slow_csps)});
      row.Set("window_chunks", uint64_t{window});
      row.Set("put_ms", s.put_ms);
      row.Set("get_ms", s.get_ms);
      row.Set("put_speedup_vs_sequential", put_speedup);
      row.Set("get_speedup_vs_sequential", get_speedup);
      row.Set("chunks", s.chunks);
      report.AddRow(std::move(row));
    }
  }

  std::printf(
      "\nHeadline: one slow CSP, window 4 vs sequential: %.2fx faster Put\n"
      "(acceptance bar is 1.5x). Sequential pays the slow link once per\n"
      "chunk back-to-back; the pipeline overlaps those sleeps across the\n"
      "window, so wall-clock approaches ceil(chunks/window) slow periods.\n",
      headline_speedup);
  std::printf("wrote %s\n", report.Write().c_str());

  if (regression) {
    return 1;
  }
  if (headline_speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: headline pipelined speedup %.2fx below the 1.5x bar\n",
                 headline_speedup);
    return 1;
  }
  return 0;
}
