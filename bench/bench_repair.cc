// Proactive scrub & repair: repair throughput and time-to-full-redundancy
// after killing k of the testbed's N clouds (no paper counterpart - the
// published prototype only repairs lazily on download, §5.5).
//
// For each k in 1..n-t: upload a scaled Table 4 dataset, fail k clouds, run
// one scrub pass, and price its TransferReport on the fluid network
// simulator. Time-to-full-redundancy is the virtual completion time of the
// pass's repair traffic; throughput is bytes moved over that time. Expected
// shape: traffic and repair time scale roughly linearly with k (each lost
// cloud strands one share of every chunk it held), and killing fast clouds
// costs more than killing slow ones only in *probe* terms - repair reads t
// surviving shares regardless, so the bottleneck is the slowest surviving
// upload target.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/common.h"

int main() {
  using namespace cyrus;
  using namespace cyrus::bench;

  constexpr double kDatasetScale = 0.05;
  const auto files = GenerateTable4Dataset(kDatasetScale, 99);

  BenchReport bench_report("repair");
  bench_report.SetParam("dataset_scale", kDatasetScale);
  bench_report.SetParam("num_files", static_cast<uint64_t>(files.size()));

  struct Config {
    uint32_t t;
    uint32_t n;
  };
  const std::vector<Config> configs = {{2, 4}, {3, 5}};

  std::printf("Scrub & repair after k cloud failures (Table 4 x%.2f, %zu files)\n\n",
              kDatasetScale, files.size());
  std::printf("%-6s %-3s | %8s %8s %9s | %12s %12s | %10s\n", "(t,n)", "k",
              "chunks", "shares", "MB moved", "t_repair(s)", "MB/s(sim)",
              "wall(ms)");

  for (const Config& config : configs) {
    for (uint32_t k = 1; k + config.t <= config.n; ++k) {
      Testbed bed = MakeTestbed(config.t, config.n, /*seed=*/7 + k);
      uint64_t content_bytes = 0;
      for (const DatasetFile& file : files) {
        auto put = bed.client->Put(file.name, file.content);
        if (!put.ok()) {
          std::fprintf(stderr, "put failed: %s\n", put.status().ToString().c_str());
          return 1;
        }
        content_bytes += file.content.size();
      }

      // Fail k clouds. The fast clouds hold more optimizer traffic but the
      // ring spreads shares evenly, so which k die barely changes the
      // repair volume; kill the first k for reproducibility.
      for (uint32_t c = 0; c < k; ++c) {
        bed.csps[c]->set_available(false);
        (void)bed.client->MarkCspFailed(static_cast<int>(c));
      }

      const auto wall_start = std::chrono::steady_clock::now();
      auto report = bed.client->ScrubOnce();
      const double wall_ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                    wall_start)
              .count();
      if (!report.ok()) {
        std::fprintf(stderr, "scrub failed: %s\n", report.status().ToString().c_str());
        return 1;
      }
      // Sanity: the pass must have restored every chunk to target.
      for (const ChunkHealth& chunk : bed.client->ScrubScan()) {
        if (chunk.degraded()) {
          std::fprintf(stderr, "chunk still degraded after scrub (k=%u)\n", k);
          return 1;
        }
      }

      const double repair_seconds = TransferCompletionSeconds(
          report->transfer, bed.upload_bytes_per_sec, bed.download_bytes_per_sec);
      const double mb_moved = static_cast<double>(report->stats.bytes_moved) / 1e6;
      const double throughput = repair_seconds > 0 ? mb_moved / repair_seconds : 0.0;
      std::printf("(%u,%u)  %-3u | %8llu %8llu %9.2f | %12.2f %12.2f | %10.1f\n",
                  config.t, config.n, k,
                  static_cast<unsigned long long>(report->stats.chunks_repaired),
                  static_cast<unsigned long long>(report->stats.shares_rebuilt),
                  mb_moved, repair_seconds, throughput, wall_ms);

      JsonValue row{JsonValue::Object{}};
      row.Set("t", static_cast<uint64_t>(config.t));
      row.Set("n", static_cast<uint64_t>(config.n));
      row.Set("k", static_cast<uint64_t>(k));
      row.Set("content_bytes", content_bytes);
      row.Set("chunks_repaired", report->stats.chunks_repaired);
      row.Set("shares_rebuilt", report->stats.shares_rebuilt);
      row.Set("bytes_moved", report->stats.bytes_moved);
      row.Set("repair_seconds", repair_seconds);
      row.Set("throughput_mb_per_s", throughput);
      row.Set("wall_ms", wall_ms);
      bench_report.AddRow(std::move(row));
    }
  }
  std::printf(
      "\nShape: repair traffic grows ~linearly with k (t reads + k rebuilt\n"
      "shares per degraded chunk); time-to-full-redundancy is bounded by the\n"
      "slowest surviving upload target, not by how fast the dead clouds were.\n");
  std::printf("wrote %s\n", bench_report.Write().c_str());
  return 0;
}
