// Range reads, the ARC chunk cache, and readahead (the streaming tentpole).
//
// Four phases, each with a hard acceptance bar:
//   1. byte accounting - a range Get of 1% of a 64 MB file must download
//      < 5% of the file's bytes and decode only the covering chunks;
//   2. warm-cache TTFB - p99 time-to-first-byte of cached ranges must be
//      >= 10x better than cold fetches over throttled links;
//   3. rebuffers - a paced playback loop over one slow CSP must rebuffer
//      >= 2x less with readahead on than off;
//   4. A/B parity - whole-file Get routed through the range scheduler must
//      stay within 5% of the legacy gather (get_via_range_path=false).
//
// Links are throttled with the same ThrottledConnector discipline as
// bench_pipeline: each transfer sleeps rtt + bytes/bandwidth of real time,
// with no lock held, so concurrent requests overlap. Emits
// BENCH_streaming.json; exits non-zero if any bar fails.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/cloud/connector.h"
#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/core/reliability.h"
#include "src/rest/json.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

class ThrottledConnector : public CloudConnector {
 public:
  ThrottledConnector(std::shared_ptr<CloudConnector> inner,
                     double bytes_per_sec, double rtt_ms)
      : inner_(std::move(inner)),
        bytes_per_sec_(bytes_per_sec),
        rtt_ms_(rtt_ms) {}

  std::string_view id() const override { return inner_->id(); }
  Status Authenticate(const Credentials& credentials) override {
    return inner_->Authenticate(credentials);
  }
  Result<std::vector<ObjectInfo>> List(std::string_view prefix) override {
    return inner_->List(prefix);
  }
  Status Upload(std::string_view name, ByteSpan data) override {
    Charge(data.size());
    return inner_->Upload(name, data);
  }
  Result<Bytes> Download(std::string_view name) override {
    auto result = inner_->Download(name);
    if (result.ok()) {
      Charge(result->size());
    }
    return result;
  }
  Status Delete(std::string_view name) override { return inner_->Delete(name); }

 private:
  void Charge(size_t bytes) const {
    const double seconds =
        rtt_ms_ / 1e3 + static_cast<double>(bytes) / bytes_per_sec_;
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(seconds * 1e6)));
  }

  std::shared_ptr<CloudConnector> inner_;
  double bytes_per_sec_;
  double rtt_ms_;
};

constexpr int kNumCsps = 5;
constexpr double kFastBps = 512e3;
constexpr double kSlowBps = 64e3;
constexpr double kFastRttMs = 0.5;
constexpr double kSlowRttMs = 2.0;

struct StreamBed {
  std::vector<std::shared_ptr<SimulatedCsp>> csps;
  std::unique_ptr<CyrusClient> client;
};

struct BedSpec {
  uint32_t chunk_bytes = 4 * 1024;  // fixed-size chunks (min == max)
  int slow_csps = 0;                // first N connectors get the slow link
  bool throttled = false;           // false: raw in-memory CSPs
  uint32_t readahead_chunks = 0;
  bool get_via_range_path = true;
  uint64_t seed = 1;
};

StreamBed MakeBed(const BedSpec& spec) {
  StreamBed bed;

  CyrusConfig config;
  config.client_id = "bench-streaming";
  config.key_string = StrCat("streaming-key-", spec.seed);
  config.t = 2;
  config.cluster_aware = false;
  config.transfer_concurrency = 16;
  config.readahead_chunks = spec.readahead_chunks;
  config.get_via_range_path = spec.get_via_range_path;
  // Pin Eq. (1) to n = kNumCsps (as bench_pipeline does) so every chunk
  // stores a share on every CSP and the beds are comparable.
  config.default_failure_prob = 0.01;
  const double loss_n =
      ChunkLossProbability(config.t, kNumCsps, config.default_failure_prob);
  const double loss_prev =
      ChunkLossProbability(config.t, kNumCsps - 1, config.default_failure_prob);
  config.epsilon = std::sqrt(loss_n * loss_prev);
  config.chunker.modulus = spec.chunk_bytes;
  config.chunker.min_chunk_size = spec.chunk_bytes;
  config.chunker.max_chunk_size = spec.chunk_bytes;

  auto client = CyrusClient::Create(std::move(config));
  if (!client.ok()) {
    std::fprintf(stderr, "client: %s\n", client.status().ToString().c_str());
    std::abort();
  }
  bed.client = std::move(client).value();

  for (int i = 0; i < kNumCsps; ++i) {
    const bool slow = i < spec.slow_csps;
    SimulatedCspOptions o;
    o.id = StrCat(slow ? "slow" : "fast", i);
    auto csp = std::make_shared<SimulatedCsp>(o);
    bed.csps.push_back(csp);
    std::shared_ptr<CloudConnector> conn = csp;
    if (spec.throttled) {
      conn = std::make_shared<ThrottledConnector>(
          csp, slow ? kSlowBps : kFastBps, slow ? kSlowRttMs : kFastRttMs);
    }
    CspProfile profile;
    profile.rtt_ms = slow ? kSlowRttMs : kFastRttMs;
    profile.download_bytes_per_sec = slow ? kSlowBps : kFastBps;
    profile.upload_bytes_per_sec = slow ? kSlowBps : kFastBps;
    auto added = bed.client->AddCsp(conn, profile, Credentials{"token"});
    if (!added.ok()) {
      std::fprintf(stderr, "AddCsp: %s\n", added.status().ToString().c_str());
      std::abort();
    }
  }
  return bed;
}

Bytes MakeContent(size_t size, uint64_t seed) {
  Rng rng(seed);
  Bytes data(size);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Median3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

bool g_failed = false;

void Bar(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    g_failed = true;
  }
}

}  // namespace
}  // namespace cyrus

int main() {
  using namespace cyrus;
  using bench::BenchReport;
  using bench::Percentile;

  BenchReport report("streaming");
  report.SetParam("t", uint64_t{2});
  report.SetParam("n", uint64_t{kNumCsps});
  report.SetParam("fast_bytes_per_sec", kFastBps);
  report.SetParam("slow_bytes_per_sec", kSlowBps);

  // --- Phase 1: byte accounting on a 64 MB file ---------------------------
  // Unthrottled (raw in-memory CSPs): the claim is about *bytes moved and
  // chunks decoded*, not wall-clock.
  {
    constexpr uint64_t kFileBytes = 64ull << 20;
    constexpr uint32_t kChunkBytes = 64 * 1024;
    constexpr uint64_t kRangeBytes = kFileBytes / 100;  // 1%
    BedSpec spec;
    spec.chunk_bytes = kChunkBytes;
    spec.seed = 101;
    StreamBed bed = MakeBed(spec);
    const Bytes content = MakeContent(kFileBytes, 101);
    auto put = bed.client->Put("large.bin", content);
    if (!put.ok()) {
      std::fprintf(stderr, "Put: %s\n", put.status().ToString().c_str());
      return 1;
    }

    const uint64_t offset = 31ull << 20;  // mid-file, chunk-unaligned
    auto got = bed.client->GetRange("large.bin", offset + 137, kRangeBytes);
    if (!got.ok()) {
      std::fprintf(stderr, "GetRange: %s\n", got.status().ToString().c_str());
      return 1;
    }
    const bool bytes_match =
        std::equal(got->content.begin(), got->content.end(),
                   content.begin() + static_cast<ptrdiff_t>(offset + 137));
    const uint64_t downloaded = got->transfer.TotalBytes(TransferKind::kGet);
    const double fraction =
        static_cast<double>(downloaded) / static_cast<double>(kFileBytes);
    const uint64_t covering = kRangeBytes / kChunkBytes + 2;

    std::printf("Phase 1: range Get of 1%% of a 64 MB file\n");
    std::printf("  downloaded %8.2f KB (%.2f%% of file), decoded %zu/%llu chunks\n\n",
                downloaded / 1024.0, fraction * 100.0, got->chunks_decoded,
                static_cast<unsigned long long>(put->total_chunks));
    Bar(bytes_match, "phase1: range content mismatch");
    Bar(fraction < 0.05, "phase1: range Get downloaded >= 5% of the file");
    Bar(got->chunks_decoded <= covering,
        "phase1: decoded chunks beyond the covering set");

    JsonValue row{JsonValue::Object{}};
    row.Set("phase", "byte-accounting");
    row.Set("file_bytes", kFileBytes);
    row.Set("range_bytes", kRangeBytes);
    row.Set("downloaded_bytes", downloaded);
    row.Set("downloaded_fraction", fraction);
    row.Set("chunks_decoded", uint64_t{got->chunks_decoded});
    row.Set("chunks_total", put->total_chunks);
    report.AddRow(std::move(row));
  }

  // --- Phase 2: cold vs warm TTFB over throttled links --------------------
  {
    constexpr uint32_t kChunkBytes = 4 * 1024;
    constexpr uint64_t kFileBytes = 512 * 1024;
    constexpr uint64_t kProbeBytes = 4 * 1024;
    constexpr int kProbes = 30;
    BedSpec spec;
    spec.chunk_bytes = kChunkBytes;
    spec.slow_csps = 1;
    spec.throttled = true;
    spec.seed = 202;
    StreamBed bed = MakeBed(spec);
    const Bytes content = MakeContent(kFileBytes, 202);
    if (!bed.client->Put("ttfb.bin", content).ok()) {
      return 1;
    }

    std::vector<double> cold_ms;
    std::vector<double> warm_ms;
    // Strided probes, far enough apart that the sequential detector never
    // arms: every cold sample pays the network.
    for (int pass = 0; pass < 2; ++pass) {
      for (int i = 0; i < kProbes; ++i) {
        const uint64_t offset = static_cast<uint64_t>(i) * 16 * 1024;
        const double start = NowMs();
        auto got = bed.client->GetRange("ttfb.bin", offset, kProbeBytes);
        const double elapsed = NowMs() - start;
        if (!got.ok()) {
          std::fprintf(stderr, "GetRange: %s\n",
                       got.status().ToString().c_str());
          return 1;
        }
        (pass == 0 ? cold_ms : warm_ms).push_back(elapsed);
      }
    }
    const double cold_p99 = Percentile(cold_ms, 99.0);
    const double warm_p99 = Percentile(warm_ms, 99.0);
    const double ratio = warm_p99 > 0 ? cold_p99 / warm_p99 : 0.0;
    const auto& cache = bed.client->chunk_cache().stats();

    std::printf("Phase 2: TTFB, cold vs warm cache (throttled, one slow CSP)\n");
    std::printf("  cold p99 %7.2f ms | warm p99 %7.3f ms | %.0fx (bar: 10x)\n",
                cold_p99, warm_p99, ratio);
    std::printf("  cache: %llu hits, %llu misses, %.0f KB resident\n\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                cache.bytes / 1024.0);
    Bar(ratio >= 10.0, "phase2: warm-cache p99 TTFB improvement below 10x");

    JsonValue row{JsonValue::Object{}};
    row.Set("phase", "ttfb");
    row.Set("cold_p99_ms", cold_p99);
    row.Set("warm_p99_ms", warm_p99);
    row.Set("improvement", ratio);
    row.Set("cache_hits", cache.hits);
    row.Set("cache_misses", cache.misses);
    report.AddRow(std::move(row));
  }

  // --- Phase 3: rebuffers with readahead on vs off ------------------------
  // A paced playback loop: fetch segment i, then "play" it for the segment
  // duration. The duration sits below the cold fetch time, so a player
  // with no readahead rebuffers on (nearly) every segment; with readahead
  // the prefetches land during playback and fetches become cache hits.
  {
    constexpr uint32_t kChunkBytes = 4 * 1024;
    constexpr uint64_t kSegmentBytes = 8 * 1024;
    constexpr int kSegments = 24;
    constexpr double kSegmentMs = 5.0;

    auto play = [&](uint32_t readahead_chunks, uint64_t seed) -> int {
      BedSpec spec;
      spec.chunk_bytes = kChunkBytes;
      spec.slow_csps = 1;
      spec.throttled = true;
      spec.readahead_chunks = readahead_chunks;
      spec.seed = seed;
      StreamBed bed = MakeBed(spec);
      const Bytes content = MakeContent(kSegmentBytes * kSegments, seed);
      if (!bed.client->Put("video.bin", content).ok()) {
        std::abort();
      }
      int rebuffers = 0;
      for (int i = 0; i < kSegments; ++i) {
        const double start = NowMs();
        auto got = bed.client->GetRange("video.bin",
                                        static_cast<uint64_t>(i) * kSegmentBytes,
                                        kSegmentBytes);
        const double fetch_ms = NowMs() - start;
        if (!got.ok()) {
          std::abort();
        }
        if (fetch_ms > kSegmentMs) {
          ++rebuffers;  // the fetch outlasted the playout buffer
        }
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            kSegmentMs));
      }
      return rebuffers;
    };

    const int off = play(/*readahead_chunks=*/0, 303);
    const int on = play(/*readahead_chunks=*/8, 303);
    std::printf("Phase 3: paced playback, %d segments of %llu KB (one slow CSP)\n",
                kSegments,
                static_cast<unsigned long long>(kSegmentBytes / 1024));
    std::printf("  rebuffers: readahead off %2d | on %2d (bar: >= 2x fewer)\n\n",
                off, on);
    Bar(off >= 2 * std::max(on, 1) || (on == 0 && off >= 2),
        "phase3: readahead cut rebuffers by less than 2x");

    JsonValue row{JsonValue::Object{}};
    row.Set("phase", "rebuffers");
    row.Set("segments", uint64_t{kSegments});
    row.Set("segment_ms", kSegmentMs);
    row.Set("rebuffers_readahead_off", uint64_t{static_cast<uint64_t>(off)});
    row.Set("rebuffers_readahead_on", uint64_t{static_cast<uint64_t>(on)});
    report.AddRow(std::move(row));
  }

  // --- Phase 4: whole-file Get A/B - range scheduler vs legacy gather -----
  {
    constexpr uint64_t kFileBytes = 4ull << 20;
    constexpr uint32_t kChunkBytes = 64 * 1024;

    auto measure = [&](bool via_range, uint64_t seed) -> double {
      BedSpec spec;
      spec.chunk_bytes = kChunkBytes;
      spec.get_via_range_path = via_range;
      spec.seed = seed;
      StreamBed bed = MakeBed(spec);
      const Bytes content = MakeContent(kFileBytes, seed);
      if (!bed.client->Put("ab.bin", content).ok()) {
        std::abort();
      }
      const double start = NowMs();
      auto got = bed.client->Get("ab.bin");
      const double elapsed = NowMs() - start;
      if (!got.ok() || got->content != content) {
        std::fprintf(stderr, "phase4: Get failed or wrong bytes\n");
        std::abort();
      }
      return elapsed;
    };

    double legacy[3];
    double ranged[3];
    for (uint64_t r = 0; r < 3; ++r) {
      legacy[r] = measure(/*via_range=*/false, 400 + r);
      ranged[r] = measure(/*via_range=*/true, 400 + r);
    }
    const double legacy_ms = Median3(legacy[0], legacy[1], legacy[2]);
    const double ranged_ms = Median3(ranged[0], ranged[1], ranged[2]);
    const double overhead =
        legacy_ms > 0 ? (ranged_ms - legacy_ms) / legacy_ms : 0.0;

    std::printf("Phase 4: whole-file Get, range scheduler vs legacy gather\n");
    std::printf("  legacy %7.1f ms | range path %7.1f ms | overhead %+.1f%%"
                " (bar: <= 5%%)\n\n",
                legacy_ms, ranged_ms, overhead * 100.0);
    // 5% plus a small absolute slack so micro-runs don't fail on timer
    // noise when both medians are a few milliseconds.
    Bar(ranged_ms <= legacy_ms * 1.05 + 10.0,
        "phase4: range-path whole-file Get more than 5% slower than legacy");

    JsonValue row{JsonValue::Object{}};
    row.Set("phase", "whole-file-ab");
    row.Set("file_bytes", kFileBytes);
    row.Set("legacy_ms", legacy_ms);
    row.Set("range_path_ms", ranged_ms);
    row.Set("overhead_fraction", overhead);
    report.AddRow(std::move(row));
  }

  std::printf("wrote %s\n", report.Write().c_str());
  return g_failed ? 1 : 0;
}
