// Reproduces Table 1 (feature comparison with similar cloud integration
// systems) and Table 3 (CYRUS's API) as executable documentation: each
// CYRUS "Yes" cell names the module implementing the feature and the test
// that demonstrates it, so the claims are checkable against this repo.
#include <cstdio>
#include <string>

int main() {
  std::printf("Table 1: feature comparison (CYRUS column backed by this repo)\n\n");
  std::printf("%-26s %-8s %s\n", "feature", "CYRUS", "implementation / demonstrating test");
  std::printf("%s\n", std::string(110, '-').c_str());
  struct Row {
    const char* feature;
    const char* where;
  };
  const Row rows[] = {
      {"Erasure coding", "src/rs (keyed non-systematic RS); SecretSharingSweep.*"},
      {"Data deduplication",
       "src/meta/chunk_table + src/chunker; ClientTest.DeduplicationSkipsStoredChunks"},
      {"Concurrency",
       "lock-free uploads + conflict detection; "
       "ClientTest.ConcurrentEditsConflictDetectedAndResolved"},
      {"Versioning", "src/meta/version_tree; ClientTest.VersioningAndRestore"},
      {"Optimal CSP selection",
       "src/opt (Algorithm 1 LP+B&B); OptimalSelectorTest.NearOptimalOnRandomInstances"},
      {"Customizable reliability",
       "src/core/reliability (Eq. 1); ClientTest.CurrentNRespondsToEpsilon"},
      {"Client-based architecture",
       "no coordinator anywhere: clients talk only to CloudConnector; "
       "ClientTest.SecondClientSeesFirstClientsFiles"},
  };
  for (const Row& row : rows) {
    std::printf("%-26s %-8s %s\n", row.feature, "Yes", row.where);
  }
  std::printf(
      "\n(Comparison rows for Attasena, DepSky, InterCloud RAIDer and PiCsMu are\n"
      "the paper's; this repo additionally implements the DepSky protocol as a\n"
      "baseline - src/baseline/depsky_client.)\n");

  std::printf("\nTable 3: CYRUS API -> CyrusClient methods\n\n");
  std::printf("%-34s %s\n", "paper call", "this repo");
  std::printf("%s\n", std::string(70, '-').c_str());
  const Row api[] = {
      {"s = create()", "CyrusClient::Create(config)"},
      {"add(s, c)", "CyrusClient::AddCsp(connector, profile, creds)"},
      {"remove(s, c)", "CyrusClient::RemoveCsp(csp)"},
      {"f' = get(s, f, v)", "CyrusClient::Get / GetVersion(name, id)"},
      {"put(s, f)", "CyrusClient::Put(name, content)"},
      {"delete(s, f)", "CyrusClient::Delete(name)"},
      {"[(f, r), ...] = list(s, d)", "CyrusClient::List(directory_prefix)"},
      {"s' = recover(s)", "CyrusClient::Recover()"},
  };
  for (const Row& row : api) {
    std::printf("%-34s %s\n", row.feature, row.where);
  }
  return 0;
}
