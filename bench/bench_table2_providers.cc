// Reproduces Table 2: commercial CSP APIs and measured performance.
//
// The paper measured RTTs from Korea and derived throughput "assuming a
// 0.1% packet loss rate and 65,535 byte TCP window". This harness feeds the
// paper's RTTs through the TCP model (src/net/tcp_model.h) and prints the
// same rows; the throughput column should match the paper's to the printed
// precision.
#include <cstdio>
#include <string>

#include "src/net/providers.h"
#include "src/net/tcp_model.h"

int main() {
  using cyrus::PaperProviders;
  using cyrus::ProviderInfo;
  using cyrus::TcpThroughputMbps;

  std::printf("Table 2: APIs and modelled performance of commercial CSPs\n");
  std::printf("(throughput from RTT via Mathis model: MSS=1448, p=0.1%%, W=65535B)\n\n");
  std::printf("%-15s %-9s %-10s %-24s %8s %18s\n", "CSP", "Format", "Protocol",
              "Authentication", "RTT(ms)", "Throughput(Mbps)");
  std::printf("%s\n", std::string(88, '-').c_str());
  for (const ProviderInfo& p : PaperProviders()) {
    std::printf("%-15s %-9s %-10s %-24s %8.0f %18.3f\n",
                (std::string(p.name) + (p.on_amazon ? "*" : "")).c_str(),
                std::string(p.format).c_str(), std::string(p.protocol).c_str(),
                std::string(p.auth).c_str(), p.rtt_ms, TcpThroughputMbps(p.rtt_ms));
  }
  std::printf("\n* = destination IPs resolve into Amazon address space\n");
  return 0;
}
