// Reproduces Table 4: the testbed evaluation dataset (172 files across
// seven extensions, 638,433,479 bytes, 3.71 MB average).
//
// The original user files are not distributable, so the workload generator
// synthesizes incompressible files matching the per-extension counts and
// (scaled) byte totals; the download/upload benches consume the same
// generator. This harness prints the generated dataset at full scale so it
// can be compared against the paper's table row by row.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace cyrus::bench;

  // Generating at 1/16 scale keeps this binary fast; counts are unscaled
  // and byte totals scale exactly, so the full-scale column is derived.
  constexpr double kScale = 1.0 / 16.0;
  const auto files = GenerateTable4Dataset(kScale, 4);

  std::printf("Table 4: testbed evaluation dataset (generated; x%.4f scale)\n\n", kScale);
  std::printf("%-10s %10s %16s %20s\n", "Extension", "# of files", "Total bytes",
              "Avg. size (bytes)");

  uint64_t grand_total = 0;
  size_t grand_count = 0;
  for (const DatasetSpec& spec : Table4Spec()) {
    uint64_t total = 0;
    size_t count = 0;
    for (const DatasetFile& file : files) {
      if (file.extension == spec.extension) {
        total += file.content.size();
        ++count;
      }
    }
    grand_total += total;
    grand_count += count;
    std::printf("%-10s %10zu %16llu %20.0f   (paper: %zu files, %llu bytes)\n",
                spec.extension.c_str(), count,
                static_cast<unsigned long long>(static_cast<uint64_t>(total / kScale)),
                total / kScale / count, spec.num_files,
                static_cast<unsigned long long>(spec.total_bytes));
  }
  std::printf("%-10s %10zu %16llu %20.0f   (paper: 172 files, 638433479 bytes)\n",
              "Total", grand_count,
              static_cast<unsigned long long>(static_cast<uint64_t>(grand_total / kScale)),
              grand_total / kScale / grand_count);
  return 0;
}
