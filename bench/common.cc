#include "bench/common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "src/core/reliability.h"
#include "src/obs/export.h"
#include "src/util/strings.h"

namespace cyrus {
namespace bench {

Testbed MakeTestbed(uint32_t t, uint32_t n, uint64_t seed) {
  Testbed bed;

  CyrusConfig config;
  config.client_id = "bench-client";
  config.key_string = StrCat("bench-key-", seed);
  config.t = t;
  config.cluster_aware = false;
  config.default_failure_prob = 0.01;
  // Pin Eq. (1)'s answer to exactly n: epsilon between the loss of n and
  // the loss of n-1 shares (geometric mean keeps clear of both edges).
  const double loss_n = ChunkLossProbability(t, n, config.default_failure_prob);
  const double loss_prev =
      (n > t) ? ChunkLossProbability(t, n - 1, config.default_failure_prob) : 1.0;
  config.epsilon = std::sqrt(loss_n * loss_prev);
  // Scaled-down Dropbox-style chunking: ~1 MB average (the benches run the
  // Table 4 dataset at 1/4 scale so chunk-per-file counts match the paper).
  config.chunker.modulus = 1 * 1024 * 1024;
  config.chunker.min_chunk_size = 128 * 1024;
  config.chunker.max_chunk_size = 8 * 1024 * 1024;

  auto client = CyrusClient::Create(config);
  if (!client.ok()) {
    std::abort();
  }
  bed.client = std::move(client).value();

  for (int i = 0; i < kNumFastClouds + kNumSlowClouds; ++i) {
    const bool fast = i < kNumFastClouds;
    SimulatedCspOptions o;
    o.id = StrCat(fast ? "fast" : "slow", i);
    o.naming = (i % 2 == 0) ? NamingPolicy::kNameKeyed : NamingPolicy::kIdKeyed;
    auto csp = std::make_shared<SimulatedCsp>(o);
    bed.csps.push_back(csp);
    const double rate = fast ? kFastCloudBytesPerSec : kSlowCloudBytesPerSec;
    bed.download_bytes_per_sec.push_back(rate);
    bed.upload_bytes_per_sec.push_back(rate);
    CspProfile profile;
    profile.rtt_ms = 1.0;  // LAN testbed
    profile.download_bytes_per_sec = rate;
    profile.upload_bytes_per_sec = rate;
    auto added = bed.client->AddCsp(csp, profile, Credentials{"token"});
    if (!added.ok()) {
      std::abort();
    }
  }
  return bed;
}

const std::vector<DatasetSpec>& Table4Spec() {
  static const std::vector<DatasetSpec> kSpec = {
      {"pdf", 70, 60575608},   {"pptx", 11, 12263894}, {"docx", 15, 9844628},
      {"jpg", 55, 151918946},  {"mov", 7, 351603110},  {"apk", 10, 4872703},
      {"ipa", 4, 47354590},
  };
  return kSpec;
}

std::vector<DatasetFile> GenerateTable4Dataset(double scale, uint64_t seed) {
  Rng rng(seed);
  std::vector<DatasetFile> files;
  for (const DatasetSpec& spec : Table4Spec()) {
    const uint64_t target = static_cast<uint64_t>(scale * spec.total_bytes);
    // Log-normal jitter gives a realistic spread; normalizing the weights
    // makes the per-extension byte total scale exactly.
    std::vector<double> weights(spec.num_files);
    double weight_sum = 0.0;
    for (double& w : weights) {
      w = std::exp(rng.NextGaussian(0.0, 0.4));
      weight_sum += w;
    }
    uint64_t assigned = 0;
    for (size_t i = 0; i < spec.num_files; ++i) {
      uint64_t size;
      if (i + 1 == spec.num_files) {
        size = target > assigned ? target - assigned : 1;
      } else {
        size = std::max<uint64_t>(
            1, static_cast<uint64_t>(target * weights[i] / weight_sum));
      }
      assigned += size;
      DatasetFile file;
      file.extension = spec.extension;
      file.name = StrCat(spec.extension, "/", i, ".", spec.extension);
      file.content.resize(size);
      Rng content_rng = rng.Fork();
      for (auto& b : file.content) {
        b = static_cast<uint8_t>(content_rng.Next());
      }
      files.push_back(std::move(file));
    }
  }
  return files;
}

double TransferCompletionSeconds(const TransferReport& report,
                                 const std::vector<double>& upload_bps,
                                 const std::vector<double>& download_bps,
                                 const TimingOptions& options) {
  FlowNetwork net;
  const int client_up = net.AddLink(options.client_uplink, "client-up");
  const int client_down = net.AddLink(options.client_downlink, "client-down");
  std::vector<int> csp_up(upload_bps.size());
  std::vector<int> csp_down(download_bps.size());
  for (size_t c = 0; c < upload_bps.size(); ++c) {
    csp_up[c] = net.AddLink(upload_bps[c], StrCat("csp", c, "-up"));
  }
  for (size_t c = 0; c < download_bps.size(); ++c) {
    csp_down[c] = net.AddLink(download_bps[c], StrCat("csp", c, "-down"));
  }

  std::vector<FlowSpec> flows;
  for (const TransferRecord& record : report.records) {
    if (!record.success || record.csp < 0) {
      continue;
    }
    FlowSpec flow;
    flow.bytes = static_cast<double>(record.bytes);
    flow.start_time = options.pre_delay_seconds;
    const bool upload =
        record.kind == TransferKind::kPut || record.kind == TransferKind::kPutMeta;
    if (upload) {
      flow.links = {client_up, csp_up[record.csp]};
    } else {
      flow.links = {client_down, csp_down[record.csp]};
    }
    flows.push_back(flow);
  }
  auto results = net.Run(flows);
  if (!results.ok()) {
    std::abort();
  }
  double completion = options.pre_delay_seconds;
  for (const FlowResult& r : *results) {
    completion = std::max(completion, r.completion_time);
  }
  return completion;
}

double SchemeCompletionSeconds(const SchemePlan& plan, bool download,
                               const std::vector<SchemeCsp>& csps,
                               const TimingOptions& options) {
  FlowNetwork net;
  const int client =
      net.AddLink(download ? options.client_downlink : options.client_uplink, "client");
  std::vector<int> csp_links(csps.size());
  for (size_t c = 0; c < csps.size(); ++c) {
    csp_links[c] = net.AddLink(
        download ? csps[c].download_bytes_per_sec : csps[c].upload_bytes_per_sec,
        StrCat("csp", c));
  }
  const double start = options.pre_delay_seconds + plan.pre_delay_seconds;
  std::vector<FlowSpec> flows;
  for (const SchemeTransfer& transfer : plan.transfers) {
    FlowSpec flow;
    flow.bytes = static_cast<double>(transfer.bytes);
    flow.start_time = start;
    flow.links = {client, csp_links[transfer.csp]};
    flows.push_back(flow);
  }
  auto results = net.Run(flows);
  if (!results.ok()) {
    std::abort();
  }
  std::vector<double> completions;
  for (const FlowResult& r : *results) {
    completions.push_back(r.completion_time);
  }
  std::sort(completions.begin(), completions.end());
  if (completions.empty()) {
    return start;
  }
  if (plan.quorum > 0 && plan.quorum <= completions.size()) {
    return completions[plan.quorum - 1];  // done when the quorum-th finishes
  }
  return completions.back();
}

BoxStats ComputeBoxStats(std::vector<double> samples) {
  BoxStats stats;
  if (samples.empty()) {
    return stats;
  }
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    const double pos = q * (samples.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - lo;
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  stats.min = samples.front();
  stats.q1 = at(0.25);
  stats.median = at(0.5);
  stats.q3 = at(0.75);
  stats.max = samples.back();
  for (double s : samples) {
    stats.mean += s;
  }
  stats.mean /= samples.size();
  return stats;
}

double Percentile(std::vector<double> samples, double pct) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const double pos = pct / 100.0 * (samples.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - lo;
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

// --- BenchReport -----------------------------------------------------------

BenchReport::BenchReport(std::string name, std::string directory)
    : name_(std::move(name)), directory_(std::move(directory)) {}

void BenchReport::SetParam(const std::string& key, JsonValue value) {
  params_[key] = std::move(value);
}

void BenchReport::AddRow(JsonValue row) { rows_.push_back(std::move(row)); }

std::string BenchReport::Write() {
  JsonValue doc{JsonValue::Object{}};
  doc.Set("bench", name_);
  doc.Set("params", JsonValue(params_));
  doc.Set("rows", JsonValue(rows_));
  // Attach the registry snapshot so the perf file explains itself: op
  // counts, retry totals, and latency percentiles behind the rows above.
  auto metrics =
      JsonValue::Parse(obs::RenderMetricsJson(obs::MetricsRegistry::Default()));
  doc.Set("metrics", metrics.ok() ? std::move(*metrics) : JsonValue());

  std::string path = StrCat("BENCH_", name_, ".json");
  if (!directory_.empty()) {
    path = StrCat(directory_, "/", path);
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return path;
  }
  out << doc.Dump() << '\n';
  return path;
}

}  // namespace bench
}  // namespace cyrus
