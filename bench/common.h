// Shared infrastructure for the experiment harnesses in bench/.
//
// Each bench binary reproduces one table or figure of the paper's
// evaluation (§7). They share: the lab testbed of §7.2 (seven private
// clouds: four fast at 15 MB/s, three slow at 2 MB/s), the Table 4
// dataset generator, and the conversion from a client's TransferReport
// (which CSPs moved how many bytes) to completion times under the fluid
// network simulator.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "src/baseline/schemes.h"
#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/core/transfer.h"
#include "src/obs/metrics.h"
#include "src/rest/json.h"
#include "src/sim/flow_network.h"
#include "src/util/rng.h"

namespace cyrus {
namespace bench {

// --- Testbed (§7.2): 4 fast + 3 slow private clouds -----------------------

constexpr double kFastCloudBytesPerSec = 15e6;
constexpr double kSlowCloudBytesPerSec = 2e6;
constexpr int kNumFastClouds = 4;
constexpr int kNumSlowClouds = 3;

struct Testbed {
  std::vector<std::shared_ptr<SimulatedCsp>> csps;
  std::unique_ptr<CyrusClient> client;
  std::vector<double> download_bytes_per_sec;  // per CSP
  std::vector<double> upload_bytes_per_sec;
};

// Builds the 7-cloud testbed and a CYRUS client configured with the given
// (t, n). n is pinned by setting epsilon so that Eq. (1) returns exactly n
// for the synthetic failure probability.
Testbed MakeTestbed(uint32_t t, uint32_t n, uint64_t seed = 1);

// --- Table 4 dataset -------------------------------------------------------

struct DatasetFile {
  std::string name;
  std::string extension;
  Bytes content;
};

struct DatasetSpec {
  std::string extension;
  size_t num_files;
  uint64_t total_bytes;
};

// The rows of Table 4 (172 files, 638,433,479 bytes in total).
const std::vector<DatasetSpec>& Table4Spec();

// Generates files matching a (possibly scaled) Table 4: per-extension file
// counts are kept, sizes are scaled by `scale` and jittered around the
// extension's mean. Contents are incompressible pseudo-random bytes.
std::vector<DatasetFile> GenerateTable4Dataset(double scale, uint64_t seed);

// --- Transfer timing -------------------------------------------------------

struct TimingOptions {
  // Client NIC caps in bytes/second; <= 0 = uncapped (the testbed's 1 Gbps
  // ethernet never binds against 15 MB/s clouds).
  double client_uplink = 0.0;
  double client_downlink = 0.0;
  // Extra latency charged before the data phase (protocol round-trips).
  double pre_delay_seconds = 0.0;
};

// Completion time of one API call's TransferReport: every PUT/GET record
// becomes a flow over {client NIC, that CSP's rate cap}; metadata records
// ride along. Returns the time the last flow finishes.
double TransferCompletionSeconds(const TransferReport& report,
                                 const std::vector<double>& upload_bps,
                                 const std::vector<double>& download_bps,
                                 const TimingOptions& options = {});

// Completion time of a baseline SchemePlan (handles DepSky's quorum: the
// plan completes at the quorum-th flow finish). `download` selects which
// per-CSP rate bound applies.
double SchemeCompletionSeconds(const SchemePlan& plan, bool download,
                               const std::vector<SchemeCsp>& csps,
                               const TimingOptions& options = {});

// --- Small stats helpers ---------------------------------------------------

struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0, mean = 0;
};
BoxStats ComputeBoxStats(std::vector<double> samples);

// Percentile (0..100) of a sample vector.
double Percentile(std::vector<double> samples, double pct);

// --- Machine-readable results ----------------------------------------------

// Accumulates one bench run's result rows and writes BENCH_<name>.json:
//   { "bench": ..., "params": {...}, "rows": [...], "metrics": {...} }
// where "metrics" is the default registry's JSON snapshot at Write() time,
// so every perf file carries the op counts and latency percentiles behind
// its numbers. These files are the perf trajectory the repo accumulates
// across PRs; the tables printed to stdout stay unchanged.
class BenchReport {
 public:
  // Writes into `directory` ("" = current working directory).
  explicit BenchReport(std::string name, std::string directory = "");

  // Run-level parameters (t, n, scale, seed, ...).
  void SetParam(const std::string& key, JsonValue value);
  // One result row; `row` should be a JSON object.
  void AddRow(JsonValue row);

  // Serializes to BENCH_<name>.json; returns the path written. Failures
  // print a warning to stderr rather than aborting a finished bench.
  std::string Write();

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::string directory_;
  JsonValue::Object params_;
  JsonValue::Array rows_;
};

}  // namespace bench
}  // namespace cyrus

#endif  // BENCH_COMMON_H_
