file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_erasure.dir/bench_fig12_erasure.cc.o"
  "CMakeFiles/bench_fig12_erasure.dir/bench_fig12_erasure.cc.o.d"
  "bench_fig12_erasure"
  "bench_fig12_erasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_erasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
