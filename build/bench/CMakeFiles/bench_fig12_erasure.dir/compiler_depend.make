# Empty compiler generated dependencies file for bench_fig12_erasure.
# This may be replaced when dependencies are built.
