file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_reliability.dir/bench_fig13_reliability.cc.o"
  "CMakeFiles/bench_fig13_reliability.dir/bench_fig13_reliability.cc.o.d"
  "bench_fig13_reliability"
  "bench_fig13_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
