# Empty dependencies file for bench_fig13_reliability.
# This may be replaced when dependencies are built.
