# Empty dependencies file for bench_fig14_download_selection.
# This may be replaced when dependencies are built.
