file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_completion.dir/bench_fig15_completion.cc.o"
  "CMakeFiles/bench_fig15_completion.dir/bench_fig15_completion.cc.o.d"
  "bench_fig15_completion"
  "bench_fig15_completion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_completion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
