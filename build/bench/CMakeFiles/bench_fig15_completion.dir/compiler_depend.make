# Empty compiler generated dependencies file for bench_fig15_completion.
# This may be replaced when dependencies are built.
