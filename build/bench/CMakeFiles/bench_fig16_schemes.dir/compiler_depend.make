# Empty compiler generated dependencies file for bench_fig16_schemes.
# This may be replaced when dependencies are built.
