file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_hourly.dir/bench_fig17_hourly.cc.o"
  "CMakeFiles/bench_fig17_hourly.dir/bench_fig17_hourly.cc.o.d"
  "bench_fig17_hourly"
  "bench_fig17_hourly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_hourly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
