# Empty dependencies file for bench_fig18_share_balance.
# This may be replaced when dependencies are built.
