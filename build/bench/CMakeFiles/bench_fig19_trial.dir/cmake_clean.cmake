file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_trial.dir/bench_fig19_trial.cc.o"
  "CMakeFiles/bench_fig19_trial.dir/bench_fig19_trial.cc.o.d"
  "bench_fig19_trial"
  "bench_fig19_trial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_trial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
