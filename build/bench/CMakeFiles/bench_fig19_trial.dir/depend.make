# Empty dependencies file for bench_fig19_trial.
# This may be replaced when dependencies are built.
