file(REMOVE_RECURSE
  "CMakeFiles/cyrus_benchlib.dir/common.cc.o"
  "CMakeFiles/cyrus_benchlib.dir/common.cc.o.d"
  "libcyrus_benchlib.a"
  "libcyrus_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyrus_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
