file(REMOVE_RECURSE
  "libcyrus_benchlib.a"
)
