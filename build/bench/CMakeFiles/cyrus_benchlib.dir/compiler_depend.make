# Empty compiler generated dependencies file for cyrus_benchlib.
# This may be replaced when dependencies are built.
