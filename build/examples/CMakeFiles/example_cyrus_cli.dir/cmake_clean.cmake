file(REMOVE_RECURSE
  "CMakeFiles/example_cyrus_cli.dir/cyrus_cli.cpp.o"
  "CMakeFiles/example_cyrus_cli.dir/cyrus_cli.cpp.o.d"
  "example_cyrus_cli"
  "example_cyrus_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cyrus_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
