# Empty dependencies file for example_cyrus_cli.
# This may be replaced when dependencies are built.
