file(REMOVE_RECURSE
  "CMakeFiles/example_multi_vendor.dir/multi_vendor.cpp.o"
  "CMakeFiles/example_multi_vendor.dir/multi_vendor.cpp.o.d"
  "example_multi_vendor"
  "example_multi_vendor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_vendor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
