# Empty dependencies file for example_multi_vendor.
# This may be replaced when dependencies are built.
