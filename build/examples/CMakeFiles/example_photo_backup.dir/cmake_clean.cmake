file(REMOVE_RECURSE
  "CMakeFiles/example_photo_backup.dir/photo_backup.cpp.o"
  "CMakeFiles/example_photo_backup.dir/photo_backup.cpp.o.d"
  "example_photo_backup"
  "example_photo_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_photo_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
