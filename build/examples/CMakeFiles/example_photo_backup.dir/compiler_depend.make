# Empty compiler generated dependencies file for example_photo_backup.
# This may be replaced when dependencies are built.
