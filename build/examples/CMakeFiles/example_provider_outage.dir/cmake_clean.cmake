file(REMOVE_RECURSE
  "CMakeFiles/example_provider_outage.dir/provider_outage.cpp.o"
  "CMakeFiles/example_provider_outage.dir/provider_outage.cpp.o.d"
  "example_provider_outage"
  "example_provider_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_provider_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
