# Empty dependencies file for example_provider_outage.
# This may be replaced when dependencies are built.
