file(REMOVE_RECURSE
  "CMakeFiles/example_team_share.dir/team_share.cpp.o"
  "CMakeFiles/example_team_share.dir/team_share.cpp.o.d"
  "example_team_share"
  "example_team_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_team_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
