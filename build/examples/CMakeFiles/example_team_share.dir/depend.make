# Empty dependencies file for example_team_share.
# This may be replaced when dependencies are built.
