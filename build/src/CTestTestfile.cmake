# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("crypto")
subdirs("rs")
subdirs("chunker")
subdirs("opt")
subdirs("net")
subdirs("sim")
subdirs("cloud")
subdirs("rest")
subdirs("meta")
subdirs("core")
subdirs("repair")
subdirs("baseline")
