file(REMOVE_RECURSE
  "CMakeFiles/cyrus_baseline.dir/depsky_client.cc.o"
  "CMakeFiles/cyrus_baseline.dir/depsky_client.cc.o.d"
  "CMakeFiles/cyrus_baseline.dir/schemes.cc.o"
  "CMakeFiles/cyrus_baseline.dir/schemes.cc.o.d"
  "libcyrus_baseline.a"
  "libcyrus_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyrus_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
