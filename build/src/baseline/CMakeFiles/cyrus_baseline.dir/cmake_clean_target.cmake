file(REMOVE_RECURSE
  "libcyrus_baseline.a"
)
