# Empty compiler generated dependencies file for cyrus_baseline.
# This may be replaced when dependencies are built.
