file(REMOVE_RECURSE
  "CMakeFiles/cyrus_chunker.dir/chunker.cc.o"
  "CMakeFiles/cyrus_chunker.dir/chunker.cc.o.d"
  "CMakeFiles/cyrus_chunker.dir/rabin.cc.o"
  "CMakeFiles/cyrus_chunker.dir/rabin.cc.o.d"
  "libcyrus_chunker.a"
  "libcyrus_chunker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyrus_chunker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
