file(REMOVE_RECURSE
  "libcyrus_chunker.a"
)
