# Empty dependencies file for cyrus_chunker.
# This may be replaced when dependencies are built.
