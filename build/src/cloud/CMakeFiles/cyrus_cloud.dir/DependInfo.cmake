
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/availability.cc" "src/cloud/CMakeFiles/cyrus_cloud.dir/availability.cc.o" "gcc" "src/cloud/CMakeFiles/cyrus_cloud.dir/availability.cc.o.d"
  "/root/repo/src/cloud/bandwidth.cc" "src/cloud/CMakeFiles/cyrus_cloud.dir/bandwidth.cc.o" "gcc" "src/cloud/CMakeFiles/cyrus_cloud.dir/bandwidth.cc.o.d"
  "/root/repo/src/cloud/fault_injection.cc" "src/cloud/CMakeFiles/cyrus_cloud.dir/fault_injection.cc.o" "gcc" "src/cloud/CMakeFiles/cyrus_cloud.dir/fault_injection.cc.o.d"
  "/root/repo/src/cloud/file_csp.cc" "src/cloud/CMakeFiles/cyrus_cloud.dir/file_csp.cc.o" "gcc" "src/cloud/CMakeFiles/cyrus_cloud.dir/file_csp.cc.o.d"
  "/root/repo/src/cloud/registry.cc" "src/cloud/CMakeFiles/cyrus_cloud.dir/registry.cc.o" "gcc" "src/cloud/CMakeFiles/cyrus_cloud.dir/registry.cc.o.d"
  "/root/repo/src/cloud/simulated_csp.cc" "src/cloud/CMakeFiles/cyrus_cloud.dir/simulated_csp.cc.o" "gcc" "src/cloud/CMakeFiles/cyrus_cloud.dir/simulated_csp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cyrus_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
