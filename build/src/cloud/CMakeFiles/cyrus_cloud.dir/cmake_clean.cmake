file(REMOVE_RECURSE
  "CMakeFiles/cyrus_cloud.dir/availability.cc.o"
  "CMakeFiles/cyrus_cloud.dir/availability.cc.o.d"
  "CMakeFiles/cyrus_cloud.dir/bandwidth.cc.o"
  "CMakeFiles/cyrus_cloud.dir/bandwidth.cc.o.d"
  "CMakeFiles/cyrus_cloud.dir/fault_injection.cc.o"
  "CMakeFiles/cyrus_cloud.dir/fault_injection.cc.o.d"
  "CMakeFiles/cyrus_cloud.dir/file_csp.cc.o"
  "CMakeFiles/cyrus_cloud.dir/file_csp.cc.o.d"
  "CMakeFiles/cyrus_cloud.dir/registry.cc.o"
  "CMakeFiles/cyrus_cloud.dir/registry.cc.o.d"
  "CMakeFiles/cyrus_cloud.dir/simulated_csp.cc.o"
  "CMakeFiles/cyrus_cloud.dir/simulated_csp.cc.o.d"
  "libcyrus_cloud.a"
  "libcyrus_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyrus_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
