file(REMOVE_RECURSE
  "libcyrus_cloud.a"
)
