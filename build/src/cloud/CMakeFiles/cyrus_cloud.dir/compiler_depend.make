# Empty compiler generated dependencies file for cyrus_cloud.
# This may be replaced when dependencies are built.
