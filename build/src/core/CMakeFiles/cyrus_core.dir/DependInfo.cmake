
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cc" "src/core/CMakeFiles/cyrus_core.dir/client.cc.o" "gcc" "src/core/CMakeFiles/cyrus_core.dir/client.cc.o.d"
  "/root/repo/src/core/hash_ring.cc" "src/core/CMakeFiles/cyrus_core.dir/hash_ring.cc.o" "gcc" "src/core/CMakeFiles/cyrus_core.dir/hash_ring.cc.o.d"
  "/root/repo/src/core/local_cache.cc" "src/core/CMakeFiles/cyrus_core.dir/local_cache.cc.o" "gcc" "src/core/CMakeFiles/cyrus_core.dir/local_cache.cc.o.d"
  "/root/repo/src/core/reliability.cc" "src/core/CMakeFiles/cyrus_core.dir/reliability.cc.o" "gcc" "src/core/CMakeFiles/cyrus_core.dir/reliability.cc.o.d"
  "/root/repo/src/core/sync_service.cc" "src/core/CMakeFiles/cyrus_core.dir/sync_service.cc.o" "gcc" "src/core/CMakeFiles/cyrus_core.dir/sync_service.cc.o.d"
  "/root/repo/src/core/transfer.cc" "src/core/CMakeFiles/cyrus_core.dir/transfer.cc.o" "gcc" "src/core/CMakeFiles/cyrus_core.dir/transfer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cyrus_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cyrus_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/rs/CMakeFiles/cyrus_rs.dir/DependInfo.cmake"
  "/root/repo/build/src/chunker/CMakeFiles/cyrus_chunker.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/cyrus_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/cyrus_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/cyrus_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/cyrus_repair.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
