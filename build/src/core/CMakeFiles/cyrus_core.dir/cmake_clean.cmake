file(REMOVE_RECURSE
  "CMakeFiles/cyrus_core.dir/client.cc.o"
  "CMakeFiles/cyrus_core.dir/client.cc.o.d"
  "CMakeFiles/cyrus_core.dir/hash_ring.cc.o"
  "CMakeFiles/cyrus_core.dir/hash_ring.cc.o.d"
  "CMakeFiles/cyrus_core.dir/local_cache.cc.o"
  "CMakeFiles/cyrus_core.dir/local_cache.cc.o.d"
  "CMakeFiles/cyrus_core.dir/reliability.cc.o"
  "CMakeFiles/cyrus_core.dir/reliability.cc.o.d"
  "CMakeFiles/cyrus_core.dir/sync_service.cc.o"
  "CMakeFiles/cyrus_core.dir/sync_service.cc.o.d"
  "CMakeFiles/cyrus_core.dir/transfer.cc.o"
  "CMakeFiles/cyrus_core.dir/transfer.cc.o.d"
  "libcyrus_core.a"
  "libcyrus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyrus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
