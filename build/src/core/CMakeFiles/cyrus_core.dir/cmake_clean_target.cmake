file(REMOVE_RECURSE
  "libcyrus_core.a"
)
