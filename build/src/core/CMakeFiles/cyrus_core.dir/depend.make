# Empty dependencies file for cyrus_core.
# This may be replaced when dependencies are built.
