file(REMOVE_RECURSE
  "CMakeFiles/cyrus_crypto.dir/naming.cc.o"
  "CMakeFiles/cyrus_crypto.dir/naming.cc.o.d"
  "CMakeFiles/cyrus_crypto.dir/sha1.cc.o"
  "CMakeFiles/cyrus_crypto.dir/sha1.cc.o.d"
  "libcyrus_crypto.a"
  "libcyrus_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyrus_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
