file(REMOVE_RECURSE
  "libcyrus_crypto.a"
)
