# Empty compiler generated dependencies file for cyrus_crypto.
# This may be replaced when dependencies are built.
