
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/meta/chunk_table.cc" "src/meta/CMakeFiles/cyrus_meta.dir/chunk_table.cc.o" "gcc" "src/meta/CMakeFiles/cyrus_meta.dir/chunk_table.cc.o.d"
  "/root/repo/src/meta/metadata.cc" "src/meta/CMakeFiles/cyrus_meta.dir/metadata.cc.o" "gcc" "src/meta/CMakeFiles/cyrus_meta.dir/metadata.cc.o.d"
  "/root/repo/src/meta/serialize.cc" "src/meta/CMakeFiles/cyrus_meta.dir/serialize.cc.o" "gcc" "src/meta/CMakeFiles/cyrus_meta.dir/serialize.cc.o.d"
  "/root/repo/src/meta/version_tree.cc" "src/meta/CMakeFiles/cyrus_meta.dir/version_tree.cc.o" "gcc" "src/meta/CMakeFiles/cyrus_meta.dir/version_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cyrus_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cyrus_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
