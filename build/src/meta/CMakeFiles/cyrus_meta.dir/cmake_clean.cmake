file(REMOVE_RECURSE
  "CMakeFiles/cyrus_meta.dir/chunk_table.cc.o"
  "CMakeFiles/cyrus_meta.dir/chunk_table.cc.o.d"
  "CMakeFiles/cyrus_meta.dir/metadata.cc.o"
  "CMakeFiles/cyrus_meta.dir/metadata.cc.o.d"
  "CMakeFiles/cyrus_meta.dir/serialize.cc.o"
  "CMakeFiles/cyrus_meta.dir/serialize.cc.o.d"
  "CMakeFiles/cyrus_meta.dir/version_tree.cc.o"
  "CMakeFiles/cyrus_meta.dir/version_tree.cc.o.d"
  "libcyrus_meta.a"
  "libcyrus_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyrus_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
