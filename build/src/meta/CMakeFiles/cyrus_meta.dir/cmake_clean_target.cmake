file(REMOVE_RECURSE
  "libcyrus_meta.a"
)
