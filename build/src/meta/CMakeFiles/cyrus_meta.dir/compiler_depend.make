# Empty compiler generated dependencies file for cyrus_meta.
# This may be replaced when dependencies are built.
