file(REMOVE_RECURSE
  "CMakeFiles/cyrus_net.dir/clustering.cc.o"
  "CMakeFiles/cyrus_net.dir/clustering.cc.o.d"
  "CMakeFiles/cyrus_net.dir/providers.cc.o"
  "CMakeFiles/cyrus_net.dir/providers.cc.o.d"
  "CMakeFiles/cyrus_net.dir/tcp_model.cc.o"
  "CMakeFiles/cyrus_net.dir/tcp_model.cc.o.d"
  "CMakeFiles/cyrus_net.dir/topology.cc.o"
  "CMakeFiles/cyrus_net.dir/topology.cc.o.d"
  "libcyrus_net.a"
  "libcyrus_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyrus_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
