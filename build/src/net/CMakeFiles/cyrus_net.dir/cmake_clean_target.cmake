file(REMOVE_RECURSE
  "libcyrus_net.a"
)
