# Empty dependencies file for cyrus_net.
# This may be replaced when dependencies are built.
