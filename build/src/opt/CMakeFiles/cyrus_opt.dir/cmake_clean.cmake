file(REMOVE_RECURSE
  "CMakeFiles/cyrus_opt.dir/download_selector.cc.o"
  "CMakeFiles/cyrus_opt.dir/download_selector.cc.o.d"
  "CMakeFiles/cyrus_opt.dir/lp.cc.o"
  "CMakeFiles/cyrus_opt.dir/lp.cc.o.d"
  "CMakeFiles/cyrus_opt.dir/milp.cc.o"
  "CMakeFiles/cyrus_opt.dir/milp.cc.o.d"
  "libcyrus_opt.a"
  "libcyrus_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyrus_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
