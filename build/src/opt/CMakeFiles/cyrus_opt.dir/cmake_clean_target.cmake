file(REMOVE_RECURSE
  "libcyrus_opt.a"
)
