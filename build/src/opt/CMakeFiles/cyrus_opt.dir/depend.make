# Empty dependencies file for cyrus_opt.
# This may be replaced when dependencies are built.
