file(REMOVE_RECURSE
  "CMakeFiles/cyrus_repair.dir/repair_engine.cc.o"
  "CMakeFiles/cyrus_repair.dir/repair_engine.cc.o.d"
  "libcyrus_repair.a"
  "libcyrus_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyrus_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
