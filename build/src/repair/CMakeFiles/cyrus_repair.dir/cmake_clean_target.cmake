file(REMOVE_RECURSE
  "libcyrus_repair.a"
)
