# Empty dependencies file for cyrus_repair.
# This may be replaced when dependencies are built.
