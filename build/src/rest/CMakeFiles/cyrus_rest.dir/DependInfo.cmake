
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rest/http.cc" "src/rest/CMakeFiles/cyrus_rest.dir/http.cc.o" "gcc" "src/rest/CMakeFiles/cyrus_rest.dir/http.cc.o.d"
  "/root/repo/src/rest/json.cc" "src/rest/CMakeFiles/cyrus_rest.dir/json.cc.o" "gcc" "src/rest/CMakeFiles/cyrus_rest.dir/json.cc.o.d"
  "/root/repo/src/rest/oauth.cc" "src/rest/CMakeFiles/cyrus_rest.dir/oauth.cc.o" "gcc" "src/rest/CMakeFiles/cyrus_rest.dir/oauth.cc.o.d"
  "/root/repo/src/rest/rest_connector.cc" "src/rest/CMakeFiles/cyrus_rest.dir/rest_connector.cc.o" "gcc" "src/rest/CMakeFiles/cyrus_rest.dir/rest_connector.cc.o.d"
  "/root/repo/src/rest/rest_server.cc" "src/rest/CMakeFiles/cyrus_rest.dir/rest_server.cc.o" "gcc" "src/rest/CMakeFiles/cyrus_rest.dir/rest_server.cc.o.d"
  "/root/repo/src/rest/xml.cc" "src/rest/CMakeFiles/cyrus_rest.dir/xml.cc.o" "gcc" "src/rest/CMakeFiles/cyrus_rest.dir/xml.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cyrus_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cyrus_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/cyrus_cloud.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
