file(REMOVE_RECURSE
  "CMakeFiles/cyrus_rest.dir/http.cc.o"
  "CMakeFiles/cyrus_rest.dir/http.cc.o.d"
  "CMakeFiles/cyrus_rest.dir/json.cc.o"
  "CMakeFiles/cyrus_rest.dir/json.cc.o.d"
  "CMakeFiles/cyrus_rest.dir/oauth.cc.o"
  "CMakeFiles/cyrus_rest.dir/oauth.cc.o.d"
  "CMakeFiles/cyrus_rest.dir/rest_connector.cc.o"
  "CMakeFiles/cyrus_rest.dir/rest_connector.cc.o.d"
  "CMakeFiles/cyrus_rest.dir/rest_server.cc.o"
  "CMakeFiles/cyrus_rest.dir/rest_server.cc.o.d"
  "CMakeFiles/cyrus_rest.dir/xml.cc.o"
  "CMakeFiles/cyrus_rest.dir/xml.cc.o.d"
  "libcyrus_rest.a"
  "libcyrus_rest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyrus_rest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
