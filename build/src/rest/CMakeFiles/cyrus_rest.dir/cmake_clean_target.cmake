file(REMOVE_RECURSE
  "libcyrus_rest.a"
)
