# Empty compiler generated dependencies file for cyrus_rest.
# This may be replaced when dependencies are built.
