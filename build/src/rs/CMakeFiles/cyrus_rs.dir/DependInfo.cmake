
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rs/galois.cc" "src/rs/CMakeFiles/cyrus_rs.dir/galois.cc.o" "gcc" "src/rs/CMakeFiles/cyrus_rs.dir/galois.cc.o.d"
  "/root/repo/src/rs/matrix.cc" "src/rs/CMakeFiles/cyrus_rs.dir/matrix.cc.o" "gcc" "src/rs/CMakeFiles/cyrus_rs.dir/matrix.cc.o.d"
  "/root/repo/src/rs/secret_sharing.cc" "src/rs/CMakeFiles/cyrus_rs.dir/secret_sharing.cc.o" "gcc" "src/rs/CMakeFiles/cyrus_rs.dir/secret_sharing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cyrus_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cyrus_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
