file(REMOVE_RECURSE
  "CMakeFiles/cyrus_rs.dir/galois.cc.o"
  "CMakeFiles/cyrus_rs.dir/galois.cc.o.d"
  "CMakeFiles/cyrus_rs.dir/matrix.cc.o"
  "CMakeFiles/cyrus_rs.dir/matrix.cc.o.d"
  "CMakeFiles/cyrus_rs.dir/secret_sharing.cc.o"
  "CMakeFiles/cyrus_rs.dir/secret_sharing.cc.o.d"
  "libcyrus_rs.a"
  "libcyrus_rs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyrus_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
