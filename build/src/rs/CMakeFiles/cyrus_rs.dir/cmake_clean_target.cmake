file(REMOVE_RECURSE
  "libcyrus_rs.a"
)
