# Empty dependencies file for cyrus_rs.
# This may be replaced when dependencies are built.
