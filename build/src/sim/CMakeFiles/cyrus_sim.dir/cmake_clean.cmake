file(REMOVE_RECURSE
  "CMakeFiles/cyrus_sim.dir/event_queue.cc.o"
  "CMakeFiles/cyrus_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/cyrus_sim.dir/flow_network.cc.o"
  "CMakeFiles/cyrus_sim.dir/flow_network.cc.o.d"
  "libcyrus_sim.a"
  "libcyrus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyrus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
