file(REMOVE_RECURSE
  "libcyrus_sim.a"
)
