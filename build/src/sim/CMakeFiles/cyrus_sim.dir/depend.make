# Empty dependencies file for cyrus_sim.
# This may be replaced when dependencies are built.
