file(REMOVE_RECURSE
  "CMakeFiles/cyrus_util.dir/bytes.cc.o"
  "CMakeFiles/cyrus_util.dir/bytes.cc.o.d"
  "CMakeFiles/cyrus_util.dir/hex.cc.o"
  "CMakeFiles/cyrus_util.dir/hex.cc.o.d"
  "CMakeFiles/cyrus_util.dir/retry.cc.o"
  "CMakeFiles/cyrus_util.dir/retry.cc.o.d"
  "CMakeFiles/cyrus_util.dir/rng.cc.o"
  "CMakeFiles/cyrus_util.dir/rng.cc.o.d"
  "CMakeFiles/cyrus_util.dir/status.cc.o"
  "CMakeFiles/cyrus_util.dir/status.cc.o.d"
  "CMakeFiles/cyrus_util.dir/strings.cc.o"
  "CMakeFiles/cyrus_util.dir/strings.cc.o.d"
  "CMakeFiles/cyrus_util.dir/thread_pool.cc.o"
  "CMakeFiles/cyrus_util.dir/thread_pool.cc.o.d"
  "libcyrus_util.a"
  "libcyrus_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyrus_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
