file(REMOVE_RECURSE
  "libcyrus_util.a"
)
