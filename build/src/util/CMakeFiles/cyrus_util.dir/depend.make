# Empty dependencies file for cyrus_util.
# This may be replaced when dependencies are built.
