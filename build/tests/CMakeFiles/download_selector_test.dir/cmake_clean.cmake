file(REMOVE_RECURSE
  "CMakeFiles/download_selector_test.dir/download_selector_test.cc.o"
  "CMakeFiles/download_selector_test.dir/download_selector_test.cc.o.d"
  "download_selector_test"
  "download_selector_test.pdb"
  "download_selector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/download_selector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
