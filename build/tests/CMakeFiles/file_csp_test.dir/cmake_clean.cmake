file(REMOVE_RECURSE
  "CMakeFiles/file_csp_test.dir/file_csp_test.cc.o"
  "CMakeFiles/file_csp_test.dir/file_csp_test.cc.o.d"
  "file_csp_test"
  "file_csp_test.pdb"
  "file_csp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_csp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
