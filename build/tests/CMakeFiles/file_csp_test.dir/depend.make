# Empty dependencies file for file_csp_test.
# This may be replaced when dependencies are built.
