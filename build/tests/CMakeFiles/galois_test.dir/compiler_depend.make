# Empty compiler generated dependencies file for galois_test.
# This may be replaced when dependencies are built.
