file(REMOVE_RECURSE
  "CMakeFiles/local_cache_test.dir/local_cache_test.cc.o"
  "CMakeFiles/local_cache_test.dir/local_cache_test.cc.o.d"
  "local_cache_test"
  "local_cache_test.pdb"
  "local_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
