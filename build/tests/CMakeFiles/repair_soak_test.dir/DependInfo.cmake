
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/repair_soak_test.cc" "tests/CMakeFiles/repair_soak_test.dir/repair_soak_test.cc.o" "gcc" "tests/CMakeFiles/repair_soak_test.dir/repair_soak_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cyrus_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cyrus_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/rs/CMakeFiles/cyrus_rs.dir/DependInfo.cmake"
  "/root/repo/build/src/chunker/CMakeFiles/cyrus_chunker.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/cyrus_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/cyrus_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/cyrus_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cyrus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/cyrus_repair.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
