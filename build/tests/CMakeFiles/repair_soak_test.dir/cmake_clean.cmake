file(REMOVE_RECURSE
  "CMakeFiles/repair_soak_test.dir/repair_soak_test.cc.o"
  "CMakeFiles/repair_soak_test.dir/repair_soak_test.cc.o.d"
  "repair_soak_test"
  "repair_soak_test.pdb"
  "repair_soak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_soak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
