# Empty dependencies file for repair_soak_test.
# This may be replaced when dependencies are built.
