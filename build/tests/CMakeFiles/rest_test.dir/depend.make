# Empty dependencies file for rest_test.
# This may be replaced when dependencies are built.
