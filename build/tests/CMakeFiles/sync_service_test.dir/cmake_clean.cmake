file(REMOVE_RECURSE
  "CMakeFiles/sync_service_test.dir/sync_service_test.cc.o"
  "CMakeFiles/sync_service_test.dir/sync_service_test.cc.o.d"
  "sync_service_test"
  "sync_service_test.pdb"
  "sync_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
