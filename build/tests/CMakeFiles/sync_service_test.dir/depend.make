# Empty dependencies file for sync_service_test.
# This may be replaced when dependencies are built.
