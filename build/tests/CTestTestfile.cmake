# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/bench_common_test[1]_include.cmake")
include("/root/repo/build/tests/chunker_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/cloud_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/download_selector_test[1]_include.cmake")
include("/root/repo/build/tests/file_csp_test[1]_include.cmake")
include("/root/repo/build/tests/galois_test[1]_include.cmake")
include("/root/repo/build/tests/local_cache_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/meta_test[1]_include.cmake")
include("/root/repo/build/tests/model_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/repair_test[1]_include.cmake")
include("/root/repo/build/tests/rest_test[1]_include.cmake")
include("/root/repo/build/tests/secret_sharing_test[1]_include.cmake")
include("/root/repo/build/tests/sync_service_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/thread_pool_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/repair_soak_test[1]_include.cmake")
