add_test([=[RepairSoakTest.NoDataLossUnderSeededFaultSchedule]=]  /root/repo/build/tests/repair_soak_test [==[--gtest_filter=RepairSoakTest.NoDataLossUnderSeededFaultSchedule]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[RepairSoakTest.NoDataLossUnderSeededFaultSchedule]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] LABELS soak)
set(  repair_soak_test_TESTS RepairSoakTest.NoDataLossUnderSeededFaultSchedule)
