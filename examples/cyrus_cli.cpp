// cyrus_cli: a command-line CYRUS client over directory-backed providers.
//
// The paper's prototype exposed CYRUS through a desktop GUI; this is the
// command-line analog, and it is genuinely usable: point it at two or more
// directories (a NAS mount, a USB drive, folders synced by commercial
// clients...) and it secret-shares your files across them. No directory
// alone reveals anything; any t of them reconstruct everything.
//
// All durable state lives in the "cloud": an invocation rebuilds the client
// via recover(), exactly as a freshly installed device would (Table 3) - or
// warm-starts from the --cache file (the paper's local metadata copy, §5.2)
// and syncs incrementally.
//
// Usage:
//   cyrus_cli --key <secret> --csp <dir> --csp <dir> [--csp <dir>...]
//             [--cache <file>] [--t <threshold>] <cmd>
// Commands:
//   put <local-file> [remote-name]     store a file
//   get <remote-name> [local-file]     retrieve the latest version
//   ls [prefix]                        list stored files
//   history <remote-name>              show the version chain
//   rm <remote-name>                   delete (undelete via history + restore)
//   restore <remote-name> <version-#>  fetch an old version (1 = newest)
//   status                             provider and dedup statistics
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/cloud/file_csp.h"
#include "src/core/local_cache.h"
#include "src/core/client.h"
#include "src/util/strings.h"

using namespace cyrus;

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "cyrus: %s\n", message.c_str());
  return 1;
}

Result<Bytes> ReadLocalFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return NotFoundError(StrCat("cannot open ", path));
  }
  return Bytes((std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());
}

Status WriteLocalFile(const std::string& path, ByteSpan data) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return UnavailableError(StrCat("cannot open ", path, " for writing"));
  }
  file.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size()));
  return file ? OkStatus() : UnavailableError(StrCat("short write to ", path));
}

}  // namespace

int main(int argc, char** argv) {
  std::string key;
  std::string cache_path;
  std::vector<std::string> csp_dirs;
  uint32_t t = 2;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--key" && i + 1 < argc) {
      key = argv[++i];
    } else if (arg == "--csp" && i + 1 < argc) {
      csp_dirs.emplace_back(argv[++i]);
    } else if (arg == "--cache" && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (arg == "--t" && i + 1 < argc) {
      t = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else {
      args.push_back(arg);
    }
  }
  if (key.empty() || csp_dirs.size() < 2 || args.empty()) {
    std::fprintf(stderr,
                 "usage: cyrus_cli --key <secret> --csp <dir> --csp <dir> [...] "
                 "[--cache <file>] [--t <threshold>] <command> [args]\n"
                 "commands: put get ls history rm restore status\n");
    return 2;
  }

  CyrusConfig config;
  config.key_string = key;
  config.client_id = "cyrus-cli";
  config.t = t;
  config.epsilon = 1e-3;  // Eq. (1) sizes n against the configured budget
  config.default_failure_prob = 0.01;
  config.cluster_aware = false;
  config.chunker.modulus = 1 * 1024 * 1024;  // ~1 MB chunks
  config.chunker.min_chunk_size = 64 * 1024;
  config.chunker.max_chunk_size = 8 * 1024 * 1024;
  auto client_or = CyrusClient::Create(config);
  if (!client_or.ok()) {
    return Fail(client_or.status().ToString());
  }
  auto client = std::move(client_or).value();
  client->set_time(static_cast<double>(std::time(nullptr)));

  for (size_t i = 0; i < csp_dirs.size(); ++i) {
    auto csp = FileCsp::Open(StrCat("dir", i, ":", csp_dirs[i]), csp_dirs[i]);
    if (!csp.ok()) {
      return Fail(csp.status().ToString());
    }
    CspProfile profile;  // local disks: uniform profile
    profile.rtt_ms = 1.0;
    profile.download_bytes_per_sec = 100e6;
    profile.upload_bytes_per_sec = 100e6;
    auto added = client->AddCsp(std::shared_ptr<CloudConnector>(std::move(csp).value()),
                                profile, Credentials{});
    if (!added.ok()) {
      return Fail(added.status().ToString());
    }
  }

  // Warm start from the local metadata cache when available (paper §5.2);
  // otherwise rebuild from the providers like a fresh device. Either way an
  // incremental sync picks up anything newer.
  const Sha1Digest cache_key = Sha1::Hash(key);
  bool warm = false;
  if (!cache_path.empty()) {
    auto snapshot = LoadLocalCache(cache_path, cache_key);
    if (snapshot.ok() && client->ImportCache(*snapshot).ok()) {
      warm = true;
    }
  }
  if (warm) {
    if (auto synced = client->SyncMetadata(); !synced.ok()) {
      return Fail(StrCat("sync failed: ", synced.status().ToString()));
    }
  } else if (Status recovered = client->Recover(); !recovered.ok()) {
    return Fail(StrCat("recover failed: ", recovered.ToString()));
  }
  // Persist the refreshed cache on the way out (best effort).
  struct CacheSaver {
    CyrusClient* client;
    std::string path;
    Sha1Digest key;
    ~CacheSaver() {
      if (!path.empty()) {
        (void)SaveLocalCache(path, client->ExportCache(), key);
      }
    }
  } cache_saver{client.get(), cache_path, cache_key};

  const std::string& command = args[0];
  if (command == "put") {
    if (args.size() < 2) {
      return Fail("put needs a local file");
    }
    const std::string remote = args.size() > 2 ? args[2] : args[1];
    auto content = ReadLocalFile(args[1]);
    if (!content.ok()) {
      return Fail(content.status().ToString());
    }
    auto put = client->Put(remote, *content);
    if (!put.ok()) {
      return Fail(put.status().ToString());
    }
    if (put->unchanged) {
      std::printf("%s unchanged (already stored)\n", remote.c_str());
    } else {
      std::printf("%s: %zu chunk(s), %zu new, %zu deduplicated, %s of shares written "
                  "(n=%u, t=%u)\n",
                  remote.c_str(), put->total_chunks, put->new_chunks,
                  put->dedup_chunks, HumanBytes(put->uploaded_share_bytes).c_str(),
                  put->n, t);
    }
    return 0;
  }
  if (command == "get" || command == "restore") {
    if (args.size() < 2) {
      return Fail(StrCat(command, " needs a remote name"));
    }
    Result<GetResult> get = NotFoundError("unresolved");
    if (command == "get") {
      get = client->Get(args[1]);
    } else {
      if (args.size() < 3) {
        return Fail("restore needs a version number (1 = newest)");
      }
      auto versions = client->Versions(args[1]);
      if (!versions.ok()) {
        return Fail(versions.status().ToString());
      }
      const size_t index = static_cast<size_t>(std::atoi(args[2].c_str()));
      if (index < 1 || index > versions->size()) {
        return Fail(StrCat("version out of range; file has ", versions->size()));
      }
      get = client->GetVersion(args[1], (*versions)[index - 1]->id);
    }
    if (!get.ok()) {
      return Fail(get.status().ToString());
    }
    const std::string local = args.size() > 3 ? args[3]
                              : (command == "get" && args.size() > 2) ? args[2]
                                                                      : args[1];
    if (Status written = WriteLocalFile(local, get->content); !written.ok()) {
      return Fail(written.ToString());
    }
    std::printf("%s -> %s (%s)%s\n", args[1].c_str(), local.c_str(),
                HumanBytes(get->content.size()).c_str(),
                get->had_conflicts ? "  [CONFLICTED: see history]" : "");
    return 0;
  }
  if (command == "ls") {
    auto listing = client->List(args.size() > 1 ? args[1] : "");
    if (!listing.ok()) {
      return Fail(listing.status().ToString());
    }
    for (const FileListing& f : *listing) {
      std::printf("%10s  %2zu version(s)%s  %s\n", HumanBytes(f.size).c_str(),
                  f.num_versions, f.conflicted ? " [conflict]" : "", f.name.c_str());
    }
    std::printf("%zu file(s)\n", listing->size());
    return 0;
  }
  if (command == "history") {
    if (args.size() < 2) {
      return Fail("history needs a remote name");
    }
    auto versions = client->Versions(args[1]);
    if (!versions.ok()) {
      return Fail(versions.status().ToString());
    }
    size_t index = 1;
    for (const FileVersion* v : *versions) {
      std::printf("%2zu. %s  %10s  by %-12s%s\n", index++,
                  v->id.ToHex().substr(0, 12).c_str(), HumanBytes(v->size).c_str(),
                  v->client_id.c_str(), v->deleted ? "  [deletion marker]" : "");
    }
    return 0;
  }
  if (command == "rm") {
    if (args.size() < 2) {
      return Fail("rm needs a remote name");
    }
    if (Status deleted = client->Delete(args[1]); !deleted.ok()) {
      return Fail(deleted.ToString());
    }
    std::printf("%s deleted (history retained; use 'history' + 'restore')\n",
                args[1].c_str());
    return 0;
  }
  if (command == "status") {
    std::printf("providers:\n");
    for (size_t i = 0; i < client->registry().size(); ++i) {
      auto name = client->registry().name(static_cast<int>(i));
      std::printf("  [%zu] %s\n", i, name.ok() ? name->c_str() : "?");
    }
    auto n = client->CurrentN();
    if (n.ok()) {
      std::printf("secret sharing: t=%u, n=%u (epsilon=%g)\n", t, *n, config.epsilon);
    } else {
      std::printf(
          "secret sharing: t=%u, n=%zu (degraded: epsilon=%g unreachable with %zu "
          "providers)\n",
          t, client->registry().ActiveIndices().size(), config.epsilon,
          client->registry().ActiveIndices().size());
    }
    std::printf("versions known: %zu; unique chunks: %zu (%s before coding)\n",
                client->tree().size(), client->chunk_table().size(),
                HumanBytes(client->chunk_table().TotalUniqueBytes()).c_str());
    return 0;
  }
  return Fail(StrCat("unknown command '", command, "'"));
}
