// Gateway demo: one multi-tenant gateway fronting two metadata shards,
// three tenants with different quota contracts, and a burst that shows
// admission control shedding load with typed rejects while everyone
// else keeps working.
//
// The gateway tier (src/gateway) is the piece the paper's one-user client
// library leaves out: per-tenant namespaces, token-bucket quotas, AIMD
// backpressure windows, and consistent-hash sharding of the metadata
// across independent CyrusClient workers. The REST frontend at the end
// serves the same operations over HTTP for non-C++ tenants.
#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/gateway/admission.h"
#include "src/gateway/gateway.h"
#include "src/gateway/gateway_rest.h"
#include "src/util/strings.h"

using namespace cyrus;

namespace {

// One shard worker = one CyrusClient scattering to its own CSP pool.
std::unique_ptr<CyrusClient> MakeShardClient(int shard) {
  CyrusConfig config;
  config.client_id = StrCat("gateway-shard-", shard);
  config.key_string = "gateway demo key";
  config.t = 2;
  config.chunker = ChunkerOptions::ForTesting();
  config.cluster_aware = false;
  // Shard workers are the sole writers to their CSPs, so the per-read
  // metadata discovery scan can run on a coarse interval.
  config.metadata_sync_interval_s = 60.0;
  auto client = CyrusClient::Create(std::move(config));
  for (int i = 0; i < 3; ++i) {
    SimulatedCspOptions options;
    options.id = StrCat("shard", shard, "-csp", i);
    (void)client.value()->AddCsp(std::make_shared<SimulatedCsp>(options),
                                 CspProfile{}, Credentials{"token"});
  }
  return std::move(client).value();
}

}  // namespace

int main() {
  // --- build a 2-shard gateway. ---
  GatewayOptions options;
  options.shard_queue_reject_depth = 64;
  std::vector<std::unique_ptr<CyrusClient>> shards;
  shards.push_back(MakeShardClient(0));
  shards.push_back(MakeShardClient(1));
  auto gateway_or = GatewayService::Create(options, std::move(shards));
  if (!gateway_or.ok()) {
    std::fprintf(stderr, "create: %s\n", gateway_or.status().ToString().c_str());
    return 1;
  }
  GatewayService& gateway = *gateway_or.value();

  // --- three tenants, three contracts. ---
  TenantQuotas generous;
  generous.ops_per_sec = 100.0;
  TenantQuotas metered;
  metered.ops_per_sec = 2.0;  // burst defaults to the rate: 2 ops at t=0
  TenantQuotas capped;
  capped.ops_per_sec = 100.0;
  capped.stored_bytes_limit = 4096;  // tiny storage ceiling
  (void)gateway.RegisterTenant("acme", generous);
  (void)gateway.RegisterTenant("metered", metered);
  (void)gateway.RegisterTenant("capped", capped);

  // --- namespaces are private per tenant. ---
  gateway.set_time(0.0);
  const Bytes doc = ToBytes(std::string(512, 'x') + "acme quarterly notes");
  if (auto put = gateway.Put("acme", "docs/q3.txt", doc); !put.ok()) {
    std::fprintf(stderr, "put: %s\n", put.status().ToString().c_str());
    return 1;
  }
  auto shard = gateway.ShardFor("acme", "docs/q3.txt");
  std::printf("acme wrote docs/q3.txt (routes to shard %d of %zu)\n",
              shard.ok() ? *shard : -1, gateway.num_shards());
  std::printf("metered sees it: %s\n",
              gateway.Get("metered", "docs/q3.txt").ok() ? "yes (BUG)"
                                                         : "no - private");

  // --- a burst past the metered tenant's contract gets typed rejects. ---
  int served = 0, rejected = 0;
  for (int i = 0; i < 6; ++i) {
    auto get = gateway.Get("acme", "docs/q3.txt");
    Status metered_put = gateway
                             .Put("metered", StrCat("burst/", i, ".dat"),
                                  ToBytes(std::string(64, 'b')))
                             .status();
    if (metered_put.ok()) {
      ++served;
    } else if (IsGatewayReject(metered_put)) {
      ++rejected;
      if (rejected == 1) {
        auto reason = RejectReasonOf(metered_put);
        std::printf("metered burst op %d rejected: %s\n", i,
                    std::string(RejectReasonName(*reason)).c_str());
      }
    }
    (void)get;
  }
  std::printf("metered burst: %d served, %d typed rejects (contract: %.0f "
              "ops/s); acme unaffected\n",
              served, rejected, metered.ops_per_sec);

  // --- the storage ceiling rejects before any shard work happens. ---
  Status big = gateway
                   .Put("capped", "huge.bin",
                        ToBytes(std::string(16384, 'z')))
                   .status();
  auto reason = RejectReasonOf(big);
  std::printf("capped 16 KiB put vs 4 KiB ceiling: %s\n",
              reason ? std::string(RejectReasonName(*reason)).c_str()
                     : big.ToString().c_str());

  // --- a minute later the metered bucket has refilled. ---
  gateway.set_time(60.0);
  std::printf("t=60s, metered retries: %s\n",
              gateway.Put("metered", "burst/retry.dat", ToBytes("ok"))
                      .ok()
                  ? "served"
                  : "still rejected");

  // --- the same gateway over HTTP. ---
  GatewayRestFrontend frontend(&gateway);
  HttpRequest list_req;
  list_req.method = HttpMethod::kGet;
  list_req.path = "/gateway/acme/files/list";
  std::printf("\nGET %s -> %d\n%s\n", list_req.path.c_str(),
              frontend.Handle(list_req).status,
              ToString(frontend.Handle(list_req).body).c_str());

  HttpRequest stats_req;
  stats_req.method = HttpMethod::kGet;
  stats_req.path = "/gateway/stats";
  HttpResponse stats = frontend.Handle(stats_req);
  std::printf("GET /gateway/stats -> %d (%zu bytes of counters)\n",
              stats.status, stats.body.size());
  return 0;
}
