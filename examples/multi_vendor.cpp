// Multi-vendor deployment: REST providers, traceroute clustering, and
// platform-aware placement working together.
//
// This is the paper's full §4 pipeline on realistic plumbing: six providers
// speak real vendor dialects (JSON+OAuth and XML+API-key) behind the
// five-call connector interface; traceroutes over a simulated topology
// reveal that three of them share one physical platform; the clustering
// feeds CyrusClient::AssignClusters, and cluster-aware consistent hashing
// then never co-locates two shares of a chunk on that platform.
#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "src/core/client.h"
#include "src/net/clustering.h"
#include "src/net/topology.h"
#include "src/rest/rest_connector.h"
#include "src/rest/rest_server.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

using namespace cyrus;

int main() {
  // --- Six vendors; three secretly run on the same "mega-cloud". ---
  struct VendorSpec {
    const char* name;
    ApiDialect dialect;
    const char* platform;
  };
  const VendorSpec vendors[] = {
      {"dropbex", ApiDialect::kJson, "megacloud"},
      {"boxly", ApiDialect::kJson, "megacloud"},
      {"cloudapp2", ApiDialect::kXml, "megacloud"},
      {"gdrivish", ApiDialect::kJson, "gplat"},
      {"s3ish", ApiDialect::kXml, "awsplat"},
      {"rackish", ApiDialect::kXml, "rackplat"},
  };

  // --- Routing topology reflecting the shared platform. ---
  std::map<std::string, PlatformSpec> platforms;
  for (const VendorSpec& vendor : vendors) {
    platforms[vendor.platform].name = vendor.platform;
    platforms[vendor.platform].csps.emplace_back(vendor.name);
    platforms[vendor.platform].backbone_latency_ms = 20.0 + platforms.size() * 5.0;
  }
  std::vector<PlatformSpec> platform_list;
  for (auto& [name, spec] : platforms) {
    platform_list.push_back(spec);
  }
  ProviderTopology topo = BuildProviderTopology(platform_list);

  // --- Infer clusters from traceroutes (paper §4.1 / Figure 3). ---
  auto tree = BuildRoutingTree(topo.topology, topo.client, topo.csp_nodes);
  if (!tree.ok()) {
    return 1;
  }
  auto clusters = ClusterByPlatform(*tree, topo.csp_nodes);
  if (!clusters.ok()) {
    return 1;
  }
  std::map<std::string, int> cluster_of;
  for (size_t i = 0; i < topo.csp_names.size(); ++i) {
    cluster_of[topo.csp_names[i]] = (*clusters)[i];
  }
  std::printf("traceroute clustering found %d platform clusters:\n",
              1 + *std::max_element(clusters->begin(), clusters->end()));
  for (const VendorSpec& vendor : vendors) {
    std::printf("  %-10s -> cluster %d\n", vendor.name, cluster_of[vendor.name]);
  }

  // --- CYRUS over the REST vendors, cluster-aware. ---
  CyrusConfig config;
  config.key_string = "multi vendor demo";
  config.client_id = "workstation";
  config.t = 2;
  config.epsilon = 1e-4;
  config.cluster_aware = true;  // at most one share per platform
  config.chunker = ChunkerOptions::ForTesting();
  auto client = std::move(CyrusClient::Create(config)).value();

  std::vector<int> cluster_ids;
  for (const VendorSpec& vendor : vendors) {
    RestVendorOptions options;
    options.id = vendor.name;
    options.dialect = vendor.dialect;
    auto server = std::make_shared<RestVendorServer>(options);
    auto connector = std::make_shared<RestConnector>(vendor.name, server);
    CspProfile profile;
    profile.download_bytes_per_sec = 2e6;
    profile.upload_bytes_per_sec = 1e6;
    profile.cluster = cluster_of[vendor.name];
    const std::string grant =
        (vendor.dialect == ApiDialect::kXml) ? "api-key" : "granted";
    if (!client->AddCsp(connector, profile, Credentials{grant}).ok()) {
      return 1;
    }
    cluster_ids.push_back(cluster_of[vendor.name]);
  }
  auto n = client->CurrentN();
  std::printf("\nEq. (1): n=%u shares per chunk across %zu placement domains\n",
              n.ok() ? *n : 0, client->registry().NumActiveClusters());

  // --- Store data and verify the placement invariant. ---
  Rng rng(6);
  Bytes archive(40 * 1024);
  for (auto& b : archive) {
    b = static_cast<uint8_t>(rng.Next());
  }
  auto put = client->Put("vault/archive.bin", archive);
  if (!put.ok()) {
    std::fprintf(stderr, "put failed: %s\n", put.status().ToString().c_str());
    return 1;
  }
  size_t violations = 0;
  for (const FileVersion* version : client->tree().AllVersions()) {
    for (const ChunkRecord& chunk : version->chunks) {
      std::set<int> used_clusters;
      for (const ShareLocation& loc : version->SharesOfChunk(chunk.id)) {
        if (!used_clusters.insert(cluster_ids[loc.csp]).second) {
          ++violations;
        }
      }
    }
  }
  std::printf("stored %zu chunk(s); platform co-location violations: %zu\n",
              put->total_chunks, violations);

  // --- The shared platform goes down entirely; data survives. ---
  std::printf("\nmega-cloud platform outage (3 providers at once)...\n");
  // (simulated by marking those CSPs failed - the client's view of it)
  for (size_t i = 0; i < std::size(vendors); ++i) {
    if (std::string(vendors[i].platform) == "megacloud") {
      (void)client->MarkCspFailed(static_cast<int>(i));
    }
  }
  auto get = client->Get("vault/archive.bin");
  std::printf("read during platform outage: %s (content intact: %s)\n",
              get.ok() ? "ok" : get.status().ToString().c_str(),
              (get.ok() && get->content == archive) ? "yes" : "no");
  std::printf(
      "\nWithout cluster-aware placement, a chunk with two shares on the mega-\n"
      "cloud would have dropped below t reachable shares in this outage.\n");
  return get.ok() && get->content == archive ? 0 : 1;
}
