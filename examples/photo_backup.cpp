// Photo backup: content-defined deduplication across repeated backups.
//
// The motivating workload from the paper's intro: a user repeatedly backs
// up a media library where most files never change and edited files change
// only locally. Rabin chunking + the global chunk table mean every backup
// after the first moves only the changed bytes (paper §3.2, §5.1), keeping
// the user inside the free tiers of their CSP accounts.
#include <cstdio>
#include <map>
#include <memory>

#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

using namespace cyrus;

namespace {

uint64_t CloudBytes(const std::vector<std::shared_ptr<SimulatedCsp>>& csps) {
  uint64_t total = 0;
  for (const auto& csp : csps) {
    total += csp->used_bytes();
  }
  return total;
}

}  // namespace

int main() {
  CyrusConfig config;
  config.key_string = "photo backup key";
  config.client_id = "phone";
  config.t = 2;
  config.epsilon = 1e-4;  // Eq. (1) then picks n = 4 over four CSPs
  config.chunker = ChunkerOptions::ForTesting();
  config.chunker.modulus = 8 * 1024;  // ~8 KB chunks for the demo library
  config.cluster_aware = false;
  auto client = std::move(CyrusClient::Create(config)).value();

  std::vector<std::shared_ptr<SimulatedCsp>> csps;
  for (int i = 0; i < 4; ++i) {
    csps.push_back(
        std::make_shared<SimulatedCsp>(SimulatedCspOptions{StrCat("cloud", i)}));
    CspProfile profile;
    profile.download_bytes_per_sec = 2e6;
    profile.upload_bytes_per_sec = 1e6;
    if (!client->AddCsp(csps[i], profile, Credentials{"token"}).ok()) {
      return 1;
    }
  }

  // A little photo library: 12 "photos" of 40-120 KB.
  Rng rng(77);
  std::map<std::string, Bytes> library;
  for (int i = 0; i < 12; ++i) {
    Bytes photo(40 * 1024 + rng.NextBelow(80 * 1024));
    for (auto& b : photo) {
      b = static_cast<uint8_t>(rng.Next());
    }
    library[StrCat("photos/img_", 1000 + i, ".jpg")] = std::move(photo);
  }

  // --- Backup #1: everything is new. ---
  client->set_time(1.0);
  uint64_t uploaded = 0;
  size_t new_chunks = 0, dedup_chunks = 0;
  for (const auto& [name, content] : library) {
    auto put = client->Put(name, content);
    if (!put.ok()) {
      return 1;
    }
    uploaded += put->uploaded_share_bytes;
    new_chunks += put->new_chunks;
    dedup_chunks += put->dedup_chunks;
  }
  std::printf("backup #1: %zu photos, %zu chunks scattered, %s of shares uploaded\n",
              library.size(), new_chunks, HumanBytes(uploaded).c_str());
  std::printf("cloud footprint: %s (n/t overhead over %s of photos)\n",
              HumanBytes(CloudBytes(csps)).c_str(),
              HumanBytes([&] {
                uint64_t t = 0;
                for (const auto& [k, v] : library) {
                  t += v.size();
                }
                return t;
              }()).c_str());

  // --- Edit two photos locally (crop = prefix change + tail unchanged),
  //     duplicate one into an album, and back up again. ---
  client->set_time(2.0);
  auto& edited = library["photos/img_1003.jpg"];
  for (size_t i = 0; i < 2048; ++i) {
    edited[i] = static_cast<uint8_t>(rng.Next());
  }
  auto& rotated = library["photos/img_1007.jpg"];
  for (size_t i = 0; i < 1024; ++i) {
    rotated[rotated.size() / 2 + i] ^= 0xFF;
  }
  library["albums/best_of/img_1005.jpg"] = library["photos/img_1005.jpg"];

  uploaded = 0;
  new_chunks = 0;
  dedup_chunks = 0;
  for (const auto& [name, content] : library) {
    auto put = client->Put(name, content);
    if (!put.ok()) {
      return 1;
    }
    uploaded += put->uploaded_share_bytes;
    new_chunks += put->new_chunks;
    dedup_chunks += put->dedup_chunks;
  }
  std::printf("\nbackup #2: %zu new chunk(s), %zu deduplicated, only %s uploaded\n",
              new_chunks, dedup_chunks, HumanBytes(uploaded).c_str());
  std::printf("the album copy of img_1005 cost zero share uploads (whole-file dedup)\n");

  // --- Verify everything reads back bit-exact. ---
  size_t verified = 0;
  for (const auto& [name, content] : library) {
    auto get = client->Get(name);
    if (get.ok() && get->content == content) {
      ++verified;
    }
  }
  std::printf("\nverified %zu/%zu files read back bit-exact\n", verified, library.size());

  // --- The edited photo's previous version is still there. ---
  auto versions = client->Versions("photos/img_1003.jpg");
  std::printf("img_1003.jpg has %zu versions; restoring the original...\n",
              versions->size());
  auto original = client->GetVersion("photos/img_1003.jpg", (*versions)[1]->id);
  std::printf("restored original: %s\n",
              original.ok() ? HumanBytes(original->content.size()).c_str()
                            : original.status().ToString().c_str());
  return 0;
}
