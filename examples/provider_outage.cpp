// Provider failure and account removal: CYRUS's reliability machinery.
//
// Walks through the paper's §5.5 lifecycle: an outage at one CSP (reads
// keep working because n > t), failure detection feeding the availability
// monitor, user-initiated account removal with immediate metadata
// re-scatter and lazy share migration on the next download, and finally a
// fresh device rebuilding everything with recover().
#include <cstdio>
#include <memory>

#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

using namespace cyrus;

int main() {
  CyrusConfig config;
  config.key_string = "outage demo key";
  config.client_id = "primary";
  config.t = 2;
  config.epsilon = 1e-4;
  config.chunker = ChunkerOptions::ForTesting();
  config.cluster_aware = false;
  auto client = std::move(CyrusClient::Create(config)).value();

  std::vector<std::shared_ptr<SimulatedCsp>> csps;
  for (int i = 0; i < 5; ++i) {
    csps.push_back(
        std::make_shared<SimulatedCsp>(SimulatedCspOptions{StrCat("csp", i)}));
    CspProfile profile;
    profile.download_bytes_per_sec = 2e6;
    profile.upload_bytes_per_sec = 1e6;
    if (!client->AddCsp(csps[i], profile, Credentials{"token"}).ok()) {
      return 1;
    }
  }

  // Store a file; Eq. (1) decides how many shares to scatter.
  Rng rng(5);
  Bytes archive(60 * 1024);
  for (auto& b : archive) {
    b = static_cast<uint8_t>(rng.Next());
  }
  auto put = client->Put("backups/archive.bin", archive);
  if (!put.ok()) {
    return 1;
  }
  std::printf("stored archive.bin: %zu chunks, n=%u shares each (t=%u)\n",
              put->total_chunks, put->n, config.t);

  // --- Outage: one provider goes dark; reads keep working. ---
  csps[1]->set_available(false);
  std::printf("\ncsp1 goes down...\n");
  auto during_outage = client->Get("backups/archive.bin");
  std::printf("read during outage: %s (content intact: %s)\n",
              during_outage.ok() ? "ok" : during_outage.status().ToString().c_str(),
              (during_outage.ok() && during_outage->content == archive) ? "yes" : "no");
  std::printf("registry marked csp1: %s\n",
              *client->registry().state(1) == CspState::kFailed ? "failed" : "active");

  // --- Recovery: the provider returns; uploads use it again. ---
  csps[1]->set_available(true);
  if (!client->MarkCspRecovered(1).ok()) {
    return 1;
  }
  std::printf("\ncsp1 recovered; state: %s\n",
              *client->registry().state(1) == CspState::kActive ? "active" : "failed");

  // --- Removal: the user cancels the csp0 account. ---
  const uint64_t csp0_bytes_before = csps[0]->used_bytes();
  if (!client->RemoveCsp(0).ok()) {
    return 1;
  }
  std::printf("\nremoved csp0 (held %s). Metadata re-scattered immediately;\n",
              HumanBytes(csp0_bytes_before).c_str());
  auto migrated_get = client->Get("backups/archive.bin");
  std::printf("next download migrates %zu share(s) to surviving CSPs (Figure 9)\n",
              migrated_get.ok() ? migrated_get->migrated_shares : 0);
  std::printf("chunks still referencing csp0: %zu\n",
              client->chunk_table().ChunksOnCsp(0).size());

  // --- recover(): a brand-new device rebuilds the whole cloud state. ---
  CyrusConfig fresh_config = config;
  fresh_config.client_id = "replacement-device";
  auto fresh = std::move(CyrusClient::Create(fresh_config)).value();
  for (size_t i = 1; i < csps.size(); ++i) {  // csp0's account is gone
    CspProfile profile;
    profile.download_bytes_per_sec = 2e6;
    profile.upload_bytes_per_sec = 1e6;
    if (!fresh->AddCsp(csps[i], profile, Credentials{"token"}).ok()) {
      return 1;
    }
  }
  if (!fresh->Recover().ok()) {
    return 1;
  }
  auto restored = fresh->Get("backups/archive.bin");
  std::printf("\nfresh device after recover(): %zu version(s) known, archive intact: %s\n",
              fresh->tree().size(),
              (restored.ok() && restored->content == archive) ? "yes" : "no");
  return 0;
}
