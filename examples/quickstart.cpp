// Quickstart: build a CYRUS cloud from four providers, store a file,
// read it back, inspect history, and restore an old version.
//
// Every operation here is Table 3's public API on CyrusClient. The
// providers are simulated (in-memory object stores with realistic
// heterogeneity); swapping in real connectors only means implementing the
// five-call CloudConnector interface for each vendor.
#include <cstdio>
#include <memory>

#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/util/strings.h"

using namespace cyrus;

int main() {
  // --- s = create(): configure privacy (t) and reliability (epsilon). ---
  CyrusConfig config;
  config.key_string = "correct horse battery staple";  // keys the RS code
  config.client_id = "laptop";
  config.t = 2;        // two CSPs must cooperate to read anything
  config.epsilon = 1e-4;  // chunk-loss budget; Eq. (1) picks n
  config.chunker = ChunkerOptions::ForTesting();  // small demo files
  config.cluster_aware = false;
  auto client_or = CyrusClient::Create(config);
  if (!client_or.ok()) {
    std::fprintf(stderr, "create failed: %s\n", client_or.status().ToString().c_str());
    return 1;
  }
  auto client = std::move(client_or).value();

  // --- add(s, c): register four provider accounts. ---
  const char* names[] = {"dropbox", "gdrive", "onedrive", "box"};
  for (int i = 0; i < 4; ++i) {
    SimulatedCspOptions options;
    options.id = names[i];
    // Google-Drive-style id-keyed stores duplicate on name collision;
    // CYRUS's content-derived share names make that harmless.
    options.naming = (i == 1) ? NamingPolicy::kIdKeyed : NamingPolicy::kNameKeyed;
    CspProfile profile;
    profile.rtt_ms = 100 + 15.0 * i;
    profile.download_bytes_per_sec = 2e6 + 5e5 * i;
    profile.upload_bytes_per_sec = 1e6 + 2e5 * i;
    auto added = client->AddCsp(std::make_shared<SimulatedCsp>(options), profile,
                                Credentials{"token"});
    if (!added.ok()) {
      std::fprintf(stderr, "add %s failed\n", names[i]);
      return 1;
    }
    std::printf("added CSP %-9s (index %d)\n", names[i], *added);
  }
  auto n = client->CurrentN();
  std::printf("\nEq. (1): with t=%u and epsilon=%g, CYRUS stores n=%u shares/chunk\n",
              config.t, config.epsilon, n.ok() ? *n : 0);

  // --- put(s, f): store two versions of a document. ---
  client->set_time(100.0);
  const Bytes v1 = ToBytes(std::string(20000, 'a') + "CYRUS quickstart v1");
  auto put1 = client->Put("docs/notes.txt", v1);
  if (!put1.ok()) {
    std::fprintf(stderr, "put failed: %s\n", put1.status().ToString().c_str());
    return 1;
  }
  std::printf("\nput v1: %zu chunks (%zu new), %s of shares uploaded\n",
              put1->total_chunks, put1->new_chunks,
              HumanBytes(put1->uploaded_share_bytes).c_str());

  client->set_time(200.0);
  const Bytes v2 = ToBytes(std::string(20000, 'a') + "CYRUS quickstart v2 - edited!");
  auto put2 = client->Put("docs/notes.txt", v2);
  std::printf("put v2: %zu chunks, %zu deduplicated (only the edited tail moved)\n",
              put2->total_chunks, put2->dedup_chunks);

  // --- get(s, f): read the latest version back. ---
  auto get = client->Get("docs/notes.txt");
  if (!get.ok() || get->content != v2) {
    std::fprintf(stderr, "get failed or content mismatch\n");
    return 1;
  }
  std::printf("\nget: %s back, matches v2, conflicts: %s\n",
              HumanBytes(get->content.size()).c_str(),
              get->had_conflicts ? "yes" : "none");

  // --- list(s, d) and version history. ---
  auto listing = client->List("docs/");
  for (const FileListing& f : *listing) {
    std::printf("list: %-16s %s, %zu version(s)\n", f.name.c_str(),
                HumanBytes(f.size).c_str(), f.num_versions);
  }
  auto versions = client->Versions("docs/notes.txt");
  std::printf("\nhistory (newest first):\n");
  for (const FileVersion* v : *versions) {
    std::printf("  %s  t=%.0f  %s\n", v->id.ToHex().substr(0, 12).c_str(),
                v->modified_time, HumanBytes(v->size).c_str());
  }

  // --- restore the previous version. ---
  auto old_version = client->GetVersion("docs/notes.txt", (*versions)[1]->id);
  std::printf("\nrestored v1: %s, matches original: %s\n",
              HumanBytes(old_version->content.size()).c_str(),
              (old_version->content == v1) ? "yes" : "NO");

  // --- delete(s, f): hide the file; history survives for undelete. ---
  client->set_time(300.0);
  if (Status s = client->Delete("docs/notes.txt"); !s.ok()) {
    std::fprintf(stderr, "delete failed\n");
    return 1;
  }
  std::printf("\nafter delete: Get -> %s (history retained: %zu versions)\n",
              client->Get("docs/notes.txt").status().ToString().c_str(),
              client->Versions("docs/notes.txt")->size());
  return 0;
}
