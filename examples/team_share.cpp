// Team file sharing: two devices, one shared CYRUS cloud, concurrent edits.
//
// Demonstrates the paper's multi-client story (§5.4): devices never talk to
// each other - coordination flows entirely through metadata scattered on
// the CSPs. Without locks, concurrent edits create sibling versions in the
// metadata tree; the next downloader detects the conflict and resolves it
// without losing either update.
#include <cstdio>
#include <memory>

#include "src/cloud/simulated_csp.h"
#include "src/core/client.h"
#include "src/util/strings.h"

using namespace cyrus;

namespace {

std::unique_ptr<CyrusClient> MakeDevice(
    const std::string& device_id,
    const std::vector<std::shared_ptr<SimulatedCsp>>& csps) {
  CyrusConfig config;
  config.key_string = "team shared secret";  // same key = same CYRUS cloud
  config.client_id = device_id;
  config.t = 2;
  config.epsilon = 1e-4;  // Eq. (1) then picks n = 4 over four CSPs
  config.chunker = ChunkerOptions::ForTesting();
  config.cluster_aware = false;
  auto client = CyrusClient::Create(config);
  if (!client.ok()) {
    std::abort();
  }
  for (size_t i = 0; i < csps.size(); ++i) {
    CspProfile profile;
    profile.download_bytes_per_sec = 2e6;
    profile.upload_bytes_per_sec = 1e6;
    if (!(*client)->AddCsp(csps[i], profile, Credentials{"token"}).ok()) {
      std::abort();
    }
  }
  return std::move(client).value();
}

}  // namespace

int main() {
  // One set of provider accounts, shared by the whole team.
  std::vector<std::shared_ptr<SimulatedCsp>> csps;
  for (int i = 0; i < 4; ++i) {
    csps.push_back(
        std::make_shared<SimulatedCsp>(SimulatedCspOptions{StrCat("csp", i)}));
  }
  auto alice = MakeDevice("alice-laptop", csps);
  auto bob = MakeDevice("bob-desktop", csps);

  // Alice shares the project plan; Bob syncs and sees it.
  alice->set_time(1000.0);
  const Bytes draft = ToBytes("Project plan draft: ship CYRUS reproduction by Friday.");
  if (!alice->Put("team/plan.md", draft).ok()) {
    return 1;
  }
  auto bob_view = bob->Get("team/plan.md");
  std::printf("bob reads alice's file (%s): \"%.40s...\"\n",
              bob_view.ok() ? "ok" : "FAILED", ToString(bob_view->content).c_str());

  // Both edit concurrently - neither device syncs before uploading.
  alice->set_time(2000.0);
  bob->set_time(2010.0);
  const Bytes alice_edit = ToBytes("Project plan: ship by Friday. [alice: add tests]");
  const Bytes bob_edit = ToBytes("Project plan: ship by Friday. [bob: add benches]");
  auto alice_put = alice->Put("team/plan.md", alice_edit);
  auto bob_put = bob->Put("team/plan.md", bob_edit);
  std::printf("\nconcurrent edits uploaded (no locks taken, no client-to-client link)\n");

  // Alice downloads: the diverged-versions conflict surfaces (Figure 8).
  auto get = alice->Get("team/plan.md");
  if (!get.ok()) {
    return 1;
  }
  std::printf("alice's next download flags conflict: %s (%zu conflicting head(s))\n",
              get->had_conflicts ? "yes" : "no",
              get->conflicts.empty() ? 0 : get->conflicts[0].versions.size());
  std::printf("newest-edit content served: \"%.50s\"\n",
              ToString(get->content).c_str());

  // Alice resolves: keep Bob's newer edit; her own is renamed, not lost.
  if (!alice->ResolveConflict("team/plan.md", bob_put->version_id).ok()) {
    return 1;
  }
  std::printf("\nafter resolution:\n");
  auto alice_listing = alice->List("team/");
  for (const FileListing& f : *alice_listing) {
    std::printf("  %-36s %s%s\n", f.name.c_str(), HumanBytes(f.size).c_str(),
                f.conflicted ? "  [conflicted]" : "");
  }

  // Bob syncs and sees the same resolved state - and both edits survive.
  auto bob_sync = bob->SyncMetadata();
  auto bob_final = bob->Get("team/plan.md");
  std::printf("\nbob after sync: plan.md = \"%.50s\" (conflicts: %s)\n",
              ToString(bob_final->content).c_str(),
              bob_final->had_conflicts ? "yes" : "none");
  auto bob_listing = bob->List("team/");
  for (const FileListing& f : *bob_listing) {
    if (f.name != "team/plan.md") {
      auto rescued = bob->Get(f.name);
      std::printf("bob can still read the renamed copy %s: \"%.50s\"\n",
                  f.name.c_str(), ToString(rescued->content).c_str());
    }
  }
  return 0;
}
