#!/usr/bin/env python3
"""Compare fresh BENCH_*.json artifacts against the committed baselines.

Usage:
    scripts/bench_delta.py [--baselines DIR] [--strict] BENCH_foo.json ...

Each bench binary emits BENCH_<name>.json (see bench/common.h); the blessed
snapshots live in bench/baselines/. For every row shared between the current
artifact and its baseline this prints the numeric fields side by side with
the relative change, flagging anything that moved more than --flag-pct
(default 10%). Rows are matched by their non-numeric fields (phase, skew,
window, ...), so reordering or appending rows never misreports a delta.

By default exit status is always 0: the deltas are advisory (each bench
binary enforces its own hard bars and exits non-zero itself). With --strict
any flagged field fails the run (exit 1) - CI tiers pair it with a looser
--flag-pct so only gross regressions gate, while scheduler-level jitter
stays advisory. Stdlib only.
"""

import argparse
import json
import os
import sys


def row_key(row):
    """Identity of a row: its non-numeric fields, order-independent."""
    parts = []
    for k in sorted(row):
        v = row[k]
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            parts.append((k, json.dumps(v, sort_keys=True)))
    return tuple(parts)


def numeric_fields(row):
    return {
        k: float(v)
        for k, v in row.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def describe_key(key):
    return ", ".join(f"{k}={v}" for k, v in key) or "(single row)"


def diff_artifact(current_path, baseline_path, flag_pct):
    with open(current_path) as f:
        current = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    base_rows = {}
    for row in baseline.get("rows", []):
        base_rows.setdefault(row_key(row), []).append(row)

    name = current.get("bench", os.path.basename(current_path))
    print(f"== bench delta: {name} ==")
    flagged = 0
    unmatched = 0
    for row in current.get("rows", []):
        key = row_key(row)
        candidates = base_rows.get(key)
        if not candidates:
            unmatched += 1
            continue
        base = candidates.pop(0)
        cur_nums = numeric_fields(row)
        base_nums = numeric_fields(base)
        lines = []
        for field in sorted(cur_nums):
            if field not in base_nums:
                continue
            b, c = base_nums[field], cur_nums[field]
            if b == c:
                continue
            pct = 100.0 * (c - b) / b if b != 0 else float("inf")
            mark = " <<" if abs(pct) >= flag_pct else ""
            if mark:
                flagged += 1
            lines.append(f"    {field}: {b:g} -> {c:g} ({pct:+.1f}%){mark}")
        if lines:
            print(f"  {describe_key(key)}")
            print("\n".join(lines))
    if unmatched:
        print(f"  ({unmatched} row(s) with no matching baseline row)")
    if flagged:
        print(f"  {flagged} field(s) moved >= {flag_pct:g}% (marked <<)")
    else:
        print(f"  all matched fields within {flag_pct:g}% of baseline")
    return flagged


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifacts", nargs="+", help="BENCH_*.json files")
    parser.add_argument(
        "--baselines",
        default=os.path.join(os.path.dirname(__file__), "..", "bench", "baselines"),
        help="directory of blessed BENCH_*.json snapshots",
    )
    parser.add_argument(
        "--flag-pct",
        type=float,
        default=10.0,
        help="relative change (percent) past which a field is flagged",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any field is flagged (regression gate)",
    )
    args = parser.parse_args()

    total_flagged = 0
    for path in args.artifacts:
        # Deltas are advisory, so a missing or unreadable side is a warning,
        # never a failure: a bench that didn't run (fresh checkout, filtered
        # build) must not fail the whole --bench tier.
        if not os.path.exists(path):
            print(f"== bench delta: {os.path.basename(path)} ==")
            print(f"  no artifact at {path}; skipping (bench not run?)")
            continue
        baseline = os.path.join(args.baselines, os.path.basename(path))
        if not os.path.exists(baseline):
            print(f"== bench delta: {os.path.basename(path)} ==")
            print(f"  no baseline at {baseline}; skipping")
            continue
        try:
            total_flagged += diff_artifact(path, baseline, args.flag_pct)
        except (json.JSONDecodeError, OSError) as err:
            print(f"  unreadable artifact or baseline ({err}); skipping")
    if args.strict and total_flagged:
        print(f"STRICT: {total_flagged} flagged field(s); failing the run")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
