#!/usr/bin/env bash
# Repo check driver.
#
#   scripts/check.sh                 # build + fast tier-1 tests (no heavy
#                                   #   labels; includes the gateway unit
#                                   #   tests, `ctest -L gateway`)
#   scripts/check.sh --stress        # + pipelined-engine stress battery
#   scripts/check.sh --soak         # + fault-injection repair soak and the
#                                   #   scaled-down zipfian gateway soak
#   scripts/check.sh --metrics      # + observability exposition tests
#   scripts/check.sh --chaos        # + degraded-mode chaos battery (outages,
#                                   #   crash recovery, hedging, corruption)
#   scripts/check.sh --codec        # + codec battery (`ctest -L codec`:
#                                   #   SIMD-vs-scalar differential tests,
#                                   #   kernel dispatch, buffer pool) run
#                                   #   under the dispatched kernel and
#                                   #   again forced to ssse3 and scalar
#   scripts/check.sh --stream       # + streaming tier: ARC chunk cache +
#                                   #   range-read suites (`ctest -L
#                                   #   stream`, also in the fast tier) and
#                                   #   the bench_streaming bars (range
#                                   #   byte accounting, warm TTFB,
#                                   #   readahead rebuffers, whole-file
#                                   #   A/B parity)
#   scripts/check.sh --integrity    # + share-integrity tier (`ctest -L
#                                   #   integrity`, also in the fast tier):
#                                   #   per-share authentication, corrupt-
#                                   #   CSP isolation, breaker weighting /
#                                   #   quarantine, legacy combinatorial
#                                   #   upgrade, scrub bit-rot healing
#   scripts/check.sh --all          # every labeled suite
#   scripts/check.sh --bench        # + bench binaries with hard bars
#                                   #   (pipeline, degraded, repair, the
#                                   #   10k-client gateway soak, the
#                                   #   cross-user dedup economics run, the
#                                   #   integrity chaos bar, and the fig12
#                                   #   codec gate with its >=10x AVX2
#                                   #   kernel bar), then a strict delta
#                                   #   gate vs bench/baselines/
#   scripts/check.sh --tsan         # ThreadSanitizer build of the stress
#                                   #   battery + gateway concurrency tests
#                                   #   + buffer-pool checkout + integrity
#                                   #   gather/heal + codec stress loop in
#                                   #   build-tsan/
#
# Flags compose: `scripts/check.sh --stress --bench`. The fast tier always
# runs first; labeled suites are opt-in so the default stays quick enough
# for a pre-commit hook.
set -euo pipefail

cd "$(dirname "$0")/.."

RUN_STRESS=0
RUN_SOAK=0
RUN_METRICS=0
RUN_CHAOS=0
RUN_CODEC=0
RUN_STREAM=0
RUN_INTEGRITY=0
RUN_BENCH=0
RUN_TSAN=0

for arg in "$@"; do
  case "$arg" in
    --stress)  RUN_STRESS=1 ;;
    --soak)    RUN_SOAK=1 ;;
    --metrics) RUN_METRICS=1 ;;
    --chaos)   RUN_CHAOS=1 ;;
    --codec)   RUN_CODEC=1 ;;
    --stream)  RUN_STREAM=1 ;;
    --integrity) RUN_INTEGRITY=1 ;;
    --all)     RUN_STRESS=1; RUN_SOAK=1; RUN_METRICS=1; RUN_CHAOS=1; RUN_CODEC=1; RUN_STREAM=1; RUN_INTEGRITY=1 ;;
    --bench)   RUN_BENCH=1 ;;
    --tsan)    RUN_TSAN=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

# Prefer Ninja for fresh build trees, but never force a generator onto an
# existing cache (cmake hard-errors on a generator mismatch).
configure() {
  local dir="$1"; shift
  local gen=()
  if [[ ! -f "$dir/CMakeCache.txt" ]] && command -v ninja >/dev/null 2>&1; then
    gen=(-G Ninja)
  fi
  cmake -B "$dir" -S . "${gen[@]}" "$@" >/dev/null
}

echo "== build =="
configure build
cmake --build build --parallel

echo "== tier-1 tests (fast, unlabeled) =="
ctest --test-dir build -LE 'stress|soak|metrics|chaos' --output-on-failure

if [[ "$RUN_STRESS" == 1 ]]; then
  echo "== stress: pipelined transfer engine =="
  ctest --test-dir build -L stress --output-on-failure
fi

if [[ "$RUN_SOAK" == 1 ]]; then
  echo "== soak: repair fault schedules + gateway zipfian soak =="
  ctest --test-dir build -L soak --output-on-failure
fi

if [[ "$RUN_METRICS" == 1 ]]; then
  echo "== metrics: observability exposition =="
  ctest --test-dir build -L metrics --output-on-failure
fi

if [[ "$RUN_CHAOS" == 1 ]]; then
  echo "== chaos: degraded-mode transfer engine =="
  ctest --test-dir build -L chaos --output-on-failure
fi

if [[ "$RUN_CODEC" == 1 ]]; then
  echo "== codec: differential battery on every kernel the host supports =="
  # Once under the CPUID-dispatched kernel, then forced down the ladder:
  # each kernel must agree with the scalar oracle byte for byte (the
  # forced runs fall back cleanly on hosts lacking the ISA).
  ctest --test-dir build -L codec --output-on-failure
  CYRUS_CODEC_KERNEL=ssse3 ctest --test-dir build -L codec --output-on-failure
  CYRUS_CODEC_KERNEL=scalar ctest --test-dir build -L codec --output-on-failure
fi

if [[ "$RUN_STREAM" == 1 ]]; then
  echo "== stream: chunk cache + range reads + streaming bars =="
  ctest --test-dir build -L stream --output-on-failure
  (cd build && ./bench/bench_streaming)
fi

if [[ "$RUN_INTEGRITY" == 1 ]]; then
  echo "== integrity: share authentication + corrupt-CSP isolation + scrub =="
  ctest --test-dir build -L integrity --output-on-failure
fi

if [[ "$RUN_BENCH" == 1 ]]; then
  echo "== bench: pipeline / degraded / repair / gateway / dedup / integrity bars =="
  # Each binary enforces its own hard bars and exits non-zero on a miss
  # (e.g. pipelined Put slower than sequential, gateway probe p99 blowing
  # the 1.5x isolation bar under 2x overload, any Get surfacing corrupt
  # plaintext in the integrity chaos run).
  (cd build &&
    ./bench/bench_pipeline &&
    ./bench/bench_degraded &&
    ./bench/bench_repair &&
    ./bench/bench_gateway &&
    ./bench/bench_dedup &&
    ./bench/bench_streaming &&
    ./bench/bench_integrity &&
    ./bench/bench_fig12_erasure)
  echo "== bench: delta vs bench/baselines (strict past 50%) =="
  # --strict turns gross movements into failures; the loose 50% threshold
  # keeps scheduler-level timing jitter advisory while still catching real
  # regressions the per-binary bars are too coarse to see.
  python3 scripts/bench_delta.py --strict --flag-pct 50 \
    build/BENCH_pipeline.json build/BENCH_degraded.json \
    build/BENCH_repair.json build/BENCH_gateway.json \
    build/BENCH_dedup.json build/BENCH_streaming.json \
    build/BENCH_integrity.json build/BENCH_codec.json
fi

if [[ "$RUN_TSAN" == 1 ]]; then
  echo "== tsan: stress battery + gateway concurrency under ThreadSanitizer =="
  configure build-tsan -DENABLE_TSAN=ON
  cmake --build build-tsan --parallel --target pipeline_stress_test thread_pool_test degraded_test gateway_test dedup_test buffer_pool_test chunk_cache_test integrity_test codec_stress_test
  (cd build-tsan && ./tests/thread_pool_test && ./tests/pipeline_stress_test && ./tests/degraded_test &&
    ./tests/gateway_test && ./tests/dedup_test &&
    ./tests/buffer_pool_test && ./tests/chunk_cache_test &&
    ./tests/integrity_test && ./tests/codec_stress_test)
fi

echo "OK"
