#include "src/baseline/depsky_client.h"

#include <algorithm>
#include <numeric>

#include "src/crypto/sha1.h"
#include "src/meta/serialize.h"
#include "src/rs/secret_sharing.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

std::string LockName(std::string_view file, std::string_view client) {
  return StrCat("depsky-lock-", file, "-", client);
}

std::string ShareObjectName(std::string_view file, uint32_t index) {
  return StrCat("depsky-share-", file, "-", index);
}

std::string MetaObjectName(std::string_view file) {
  return StrCat("depsky-meta-", file);
}

}  // namespace

DepSkyClient::DepSkyClient(std::string key_string, uint32_t t, uint32_t n,
                           std::string client_id, uint64_t seed,
                           double mean_backoff_seconds)
    : key_string_(std::move(key_string)),
      t_(t),
      n_(n),
      client_id_(std::move(client_id)),
      rng_(seed),
      mean_backoff_(mean_backoff_seconds) {}

Result<int> DepSkyClient::AddCsp(std::shared_ptr<CloudConnector> connector,
                                 CspProfile profile, const Credentials& credentials) {
  if (connector == nullptr) {
    return InvalidArgumentError("connector must not be null");
  }
  CYRUS_RETURN_IF_ERROR(connector->Authenticate(credentials));
  return registry_.Add(std::move(connector), profile);
}

std::vector<int> DepSkyClient::FastestFirst(bool download) const {
  std::vector<int> order = registry_.ActiveIndices();
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const CspProfile pa = registry_.profile(a).value_or(CspProfile{});
    const CspProfile pb = registry_.profile(b).value_or(CspProfile{});
    return (download ? pa.download_bytes_per_sec : pa.upload_bytes_per_sec) >
           (download ? pb.download_bytes_per_sec : pb.upload_bytes_per_sec);
  });
  return order;
}

Result<DepSkyWriteStats> DepSkyClient::Write(std::string_view name, ByteSpan content) {
  const std::vector<int> active = registry_.ActiveIndices();
  if (active.size() < n_) {
    return FailedPreconditionError(
        StrCat("DepSky needs n=", n_, " CSPs, has ", active.size()));
  }

  DepSkyWriteStats stats;

  // --- Lock phase: create the lock, back off, check for rival writers. ---
  double max_rtt_ms = 0.0;
  for (int csp : active) {
    max_rtt_ms = std::max(max_rtt_ms,
                          registry_.profile(csp).value_or(CspProfile{}).rtt_ms);
  }
  const std::string lock = LockName(name, client_id_);
  const std::string lock_prefix = StrCat("depsky-lock-", name, "-");
  for (int csp : active) {
    CYRUS_ASSIGN_OR_RETURN(CloudConnector * conn, registry_.connector(csp));
    CYRUS_RETURN_IF_ERROR(conn->Upload(lock, AsByteSpan(client_id_)));
    stats.transfer.records.push_back(
        TransferRecord{TransferKind::kPutMeta, csp, lock, client_id_.size(), true});
  }
  stats.protocol_delay_seconds =
      2.0 * max_rtt_ms / 1000.0 + rng_.NextExponential(mean_backoff_);
  for (int csp : active) {
    CYRUS_ASSIGN_OR_RETURN(CloudConnector * conn, registry_.connector(csp));
    CYRUS_ASSIGN_OR_RETURN(std::vector<ObjectInfo> locks, conn->List(lock_prefix));
    for (const ObjectInfo& other : locks) {
      if (other.name != lock) {
        // Rival writer: release our lock and fail with a conflict.
        for (int cleanup : active) {
          auto cleanup_conn = registry_.connector(cleanup);
          if (cleanup_conn.ok()) {
            (void)(*cleanup_conn)->Delete(lock);
          }
        }
        return ConflictError(StrCat("concurrent DepSky writer holds a lock on ", name));
      }
    }
  }

  // --- Data phase: push shares everywhere; first n completers win. ---
  // Completion order under equal share sizes follows upload bandwidth, so
  // the cancel-after-n behaviour keeps the n fastest CSPs' shares.
  CYRUS_ASSIGN_OR_RETURN(
      SecretSharingCodec codec,
      SecretSharingCodec::Create(key_string_, t_,
                                 static_cast<uint32_t>(active.size())));
  CYRUS_ASSIGN_OR_RETURN(std::vector<Share> shares, codec.Encode(content));

  const std::vector<int> completion_order = FastestFirst(/*download=*/false);
  for (size_t i = 0; i < completion_order.size(); ++i) {
    const int csp = completion_order[i];
    const bool kept = i < n_;  // stragglers are cancelled
    if (!kept) {
      continue;
    }
    CYRUS_ASSIGN_OR_RETURN(CloudConnector * conn, registry_.connector(csp));
    // The share index is the CSP's position in the active list, DepSky's
    // fixed share-per-cloud mapping.
    const uint32_t index = static_cast<uint32_t>(
        std::find(active.begin(), active.end(), csp) - active.begin());
    const std::string object = ShareObjectName(name, index);
    CYRUS_RETURN_IF_ERROR(conn->Upload(object, shares[index].data));
    stats.transfer.records.push_back(TransferRecord{TransferKind::kPut, csp, object,
                                                    shares[index].data.size(), true});
    stats.share_csps.push_back(csp);
  }

  // --- Metadata: replicated in the clear protocol-wise (content is still
  // coded); one copy per CSP. ---
  BinaryWriter meta;
  meta.WriteU64(content.size());
  meta.WriteU32(t_);
  meta.WriteU32(n_);
  meta.WriteDigest(Sha1::Hash(content));
  meta.WriteU32(static_cast<uint32_t>(stats.share_csps.size()));
  for (int csp : stats.share_csps) {
    meta.WriteI32(csp);
    const uint32_t index = static_cast<uint32_t>(
        std::find(active.begin(), active.end(), csp) - active.begin());
    meta.WriteU32(index);
  }
  const std::string meta_name = MetaObjectName(name);
  for (int csp : active) {
    CYRUS_ASSIGN_OR_RETURN(CloudConnector * conn, registry_.connector(csp));
    CYRUS_RETURN_IF_ERROR(conn->Upload(meta_name, meta.data()));
    stats.transfer.records.push_back(TransferRecord{TransferKind::kPutMeta, csp,
                                                    meta_name, meta.data().size(), true});
  }

  // --- Unlock. ---
  for (int csp : active) {
    CYRUS_ASSIGN_OR_RETURN(CloudConnector * conn, registry_.connector(csp));
    CYRUS_RETURN_IF_ERROR(conn->Delete(lock));
  }
  return stats;
}

Result<DepSkyReadStats> DepSkyClient::Read(std::string_view name) {
  const std::vector<int> order = FastestFirst(/*download=*/true);
  if (order.empty()) {
    return FailedPreconditionError("DepSky has no CSPs");
  }
  DepSkyReadStats stats;

  // Metadata from the fastest reachable CSP (one round-trip).
  const std::string meta_name = MetaObjectName(name);
  Result<Bytes> meta_bytes = NotFoundError("no metadata");
  double rtt_ms = 0.0;
  for (int csp : order) {
    CYRUS_ASSIGN_OR_RETURN(CloudConnector * conn, registry_.connector(csp));
    meta_bytes = conn->Download(meta_name);
    if (meta_bytes.ok()) {
      rtt_ms = registry_.profile(csp).value_or(CspProfile{}).rtt_ms;
      stats.transfer.records.push_back(TransferRecord{TransferKind::kGetMeta, csp,
                                                      meta_name, meta_bytes->size(), true});
      break;
    }
  }
  if (!meta_bytes.ok()) {
    return NotFoundError(StrCat("DepSky metadata for ", name, " not found"));
  }
  stats.protocol_delay_seconds = rtt_ms / 1000.0;

  BinaryReader reader(*meta_bytes);
  CYRUS_ASSIGN_OR_RETURN(uint64_t size, reader.ReadU64());
  CYRUS_ASSIGN_OR_RETURN(uint32_t t, reader.ReadU32());
  CYRUS_ASSIGN_OR_RETURN(uint32_t n, reader.ReadU32());
  CYRUS_ASSIGN_OR_RETURN(Sha1Digest digest, reader.ReadDigest());
  CYRUS_ASSIGN_OR_RETURN(uint32_t count, reader.ReadU32());
  std::vector<std::pair<int, uint32_t>> locations;  // (csp, share index)
  for (uint32_t i = 0; i < count; ++i) {
    CYRUS_ASSIGN_OR_RETURN(int32_t csp, reader.ReadI32());
    CYRUS_ASSIGN_OR_RETURN(uint32_t index, reader.ReadU32());
    locations.emplace_back(csp, index);
  }
  (void)n;

  // Greedy: fastest holders first.
  std::stable_sort(locations.begin(), locations.end(), [&](const auto& a, const auto& b) {
    return registry_.profile(a.first).value_or(CspProfile{}).download_bytes_per_sec >
           registry_.profile(b.first).value_or(CspProfile{}).download_bytes_per_sec;
  });
  std::vector<Share> shares;
  for (const auto& [csp, index] : locations) {
    if (shares.size() >= t) {
      break;
    }
    auto conn = registry_.connector(csp);
    if (!conn.ok()) {
      continue;
    }
    auto data = (*conn)->Download(ShareObjectName(name, index));
    if (!data.ok()) {
      continue;
    }
    stats.transfer.records.push_back(TransferRecord{
        TransferKind::kGet, csp, ShareObjectName(name, index), data->size(), true});
    stats.share_csps.push_back(csp);
    shares.push_back(Share{index, *std::move(data)});
  }
  if (shares.size() < t) {
    return DataLossError(StrCat("DepSky: only ", shares.size(), " of ", t,
                                " shares reachable for ", name));
  }

  CYRUS_ASSIGN_OR_RETURN(SecretSharingCodec codec,
                         SecretSharingCodec::Create(key_string_, t, 255));
  CYRUS_ASSIGN_OR_RETURN(stats.content, codec.Decode(shares, size));
  if (Sha1::Hash(stats.content) != digest) {
    return DataLossError(StrCat("DepSky: ", name, " failed integrity check"));
  }
  return stats;
}

}  // namespace cyrus
