// A functional DepSky-style client (Bessani et al., EuroSys 2011), the
// paper's main comparison system (§7.3), implemented against the same
// CloudConnector interface as CYRUS so both run on identical simulated
// providers.
//
// Protocol differences from CYRUS that this client reproduces:
//   - writes take a lock: create a lock object, list to check for a
//     concurrent writer, wait a random backoff, and only then write
//     (two extra round-trips plus backoff latency);
//   - shares are uploaded to ALL CSPs and the write completes once n
//     finish - the pending stragglers are cancelled, so consistently fast
//     CSPs accumulate shares (Figure 18's imbalance);
//   - reads fetch metadata then greedily download from the fastest CSPs.
#ifndef SRC_BASELINE_DEPSKY_CLIENT_H_
#define SRC_BASELINE_DEPSKY_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cloud/connector.h"
#include "src/cloud/registry.h"
#include "src/core/transfer.h"
#include "src/util/result.h"
#include "src/util/rng.h"

namespace cyrus {

struct DepSkyWriteStats {
  // Lock round-trips + backoff, charged before data movement.
  double protocol_delay_seconds = 0.0;
  // CSPs that ended up holding a share (the first n "completers").
  std::vector<int> share_csps;
  TransferReport transfer;
};

struct DepSkyReadStats {
  Bytes content;
  std::vector<int> share_csps;  // CSPs the shares were read from
  double protocol_delay_seconds = 0.0;
  TransferReport transfer;
};

class DepSkyClient {
 public:
  DepSkyClient(std::string key_string, uint32_t t, uint32_t n, std::string client_id,
               uint64_t seed, double mean_backoff_seconds = 1.0);

  Result<int> AddCsp(std::shared_ptr<CloudConnector> connector, CspProfile profile,
                     const Credentials& credentials);

  // Writes under DepSky's protocol. kConflict if another writer holds the
  // lock after the backoff.
  Result<DepSkyWriteStats> Write(std::string_view name, ByteSpan content);

  Result<DepSkyReadStats> Read(std::string_view name);

  const CspRegistry& registry() const { return registry_; }

 private:
  // CSP indices ordered by the given bandwidth, fastest first.
  std::vector<int> FastestFirst(bool download) const;

  std::string key_string_;
  uint32_t t_;
  uint32_t n_;
  std::string client_id_;
  Rng rng_;
  double mean_backoff_;
  CspRegistry registry_;
};

}  // namespace cyrus

#endif  // SRC_BASELINE_DEPSKY_CLIENT_H_
