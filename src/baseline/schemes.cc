#include "src/baseline/schemes.h"

#include <algorithm>
#include <numeric>

#include "src/util/strings.h"

namespace cyrus {
namespace {

uint64_t ShareBytes(uint64_t file_bytes, uint32_t t) {
  return (file_bytes + t - 1) / t;
}

double MaxRttSeconds(const std::vector<SchemeCsp>& csps) {
  double rtt = 0.0;
  for (const SchemeCsp& c : csps) {
    rtt = std::max(rtt, c.rtt_ms);
  }
  return rtt / 1000.0;
}

// CSP indices sorted by descending bandwidth (download or upload).
std::vector<int> ByBandwidth(const std::vector<SchemeCsp>& csps, bool download) {
  std::vector<int> order(csps.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return (download ? csps[a].download_bytes_per_sec : csps[a].upload_bytes_per_sec) >
           (download ? csps[b].download_bytes_per_sec : csps[b].upload_bytes_per_sec);
  });
  return order;
}

Status CheckCsps(const std::vector<SchemeCsp>& csps, size_t needed,
                 std::string_view scheme) {
  if (csps.size() < needed) {
    return FailedPreconditionError(
        StrCat(scheme, " needs ", needed, " CSPs, got ", csps.size()));
  }
  return OkStatus();
}

}  // namespace

// --- Full Replication ---

Result<SchemePlan> FullReplicationScheme::PlanUpload(uint64_t file_bytes,
                                                     const std::vector<SchemeCsp>& csps) {
  CYRUS_RETURN_IF_ERROR(CheckCsps(csps, 1, name()));
  SchemePlan plan;
  for (size_t c = 0; c < csps.size(); ++c) {
    plan.transfers.push_back(SchemeTransfer{static_cast<int>(c), file_bytes});
  }
  return plan;
}

Result<SchemePlan> FullReplicationScheme::PlanDownload(
    uint64_t file_bytes, const std::vector<SchemeCsp>& csps) {
  CYRUS_RETURN_IF_ERROR(CheckCsps(csps, 1, name()));
  if (download_csp_ < 0 || static_cast<size_t>(download_csp_) >= csps.size()) {
    return InvalidArgumentError(StrCat("replica CSP ", download_csp_, " out of range"));
  }
  SchemePlan plan;
  plan.transfers.push_back(SchemeTransfer{download_csp_, file_bytes});
  return plan;
}

// --- Full Striping ---

Result<SchemePlan> FullStripingScheme::PlanUpload(uint64_t file_bytes,
                                                  const std::vector<SchemeCsp>& csps) {
  CYRUS_RETURN_IF_ERROR(CheckCsps(csps, 1, name()));
  SchemePlan plan;
  const uint64_t fragment = file_bytes / csps.size();
  uint64_t assigned = 0;
  for (size_t c = 0; c < csps.size(); ++c) {
    const uint64_t bytes =
        (c + 1 == csps.size()) ? file_bytes - assigned : fragment;
    assigned += bytes;
    plan.transfers.push_back(SchemeTransfer{static_cast<int>(c), bytes});
  }
  return plan;
}

Result<SchemePlan> FullStripingScheme::PlanDownload(uint64_t file_bytes,
                                                    const std::vector<SchemeCsp>& csps) {
  // Striping reads require every fragment, including from the slowest CSP.
  return PlanUpload(file_bytes, csps);
}

// --- DepSky ---

Result<SchemePlan> DepSkyScheme::PlanUpload(uint64_t file_bytes,
                                            const std::vector<SchemeCsp>& csps) {
  CYRUS_RETURN_IF_ERROR(CheckCsps(csps, n_, name()));
  SchemePlan plan;
  // Two round-trips create and verify the lock file, then a random backoff
  // guards against concurrent writers (paper §7.3).
  plan.pre_delay_seconds = 2.0 * MaxRttSeconds(csps) + rng_.NextExponential(mean_backoff_);
  // Shares are pushed to every CSP; the write completes at the n-th finish
  // and the stragglers are cancelled.
  const uint64_t share = ShareBytes(file_bytes, t_);
  for (size_t c = 0; c < csps.size(); ++c) {
    plan.transfers.push_back(SchemeTransfer{static_cast<int>(c), share});
  }
  plan.quorum = n_;
  return plan;
}

Result<SchemePlan> DepSkyScheme::PlanDownload(uint64_t file_bytes,
                                              const std::vector<SchemeCsp>& csps) {
  CYRUS_RETURN_IF_ERROR(CheckCsps(csps, t_, name()));
  SchemePlan plan;
  // One metadata round-trip, then greedily read from the fastest CSPs.
  plan.pre_delay_seconds = MaxRttSeconds(csps);
  const uint64_t share = ShareBytes(file_bytes, t_);
  const std::vector<int> order = ByBandwidth(csps, /*download=*/true);
  for (uint32_t k = 0; k < t_; ++k) {
    plan.transfers.push_back(SchemeTransfer{order[k], share});
  }
  return plan;
}

// --- CYRUS (planning form) ---

Result<SchemePlan> CyrusScheme::PlanUpload(uint64_t file_bytes,
                                           const std::vector<SchemeCsp>& csps) {
  CYRUS_RETURN_IF_ERROR(CheckCsps(csps, n_, name()));
  SchemePlan plan;
  const uint64_t share = ShareBytes(file_bytes, t_);
  // Consistent hashing spreads placements evenly across uploads; a rotating
  // cursor reproduces that long-run balance deterministically.
  for (uint32_t i = 0; i < n_; ++i) {
    plan.transfers.push_back(
        SchemeTransfer{static_cast<int>((upload_counter_ + i) % csps.size()), share});
  }
  ++upload_counter_;
  return plan;
}

Result<SchemePlan> CyrusScheme::PlanDownload(uint64_t file_bytes,
                                             const std::vector<SchemeCsp>& csps) {
  CYRUS_RETURN_IF_ERROR(CheckCsps(csps, t_, name()));
  SchemePlan plan;
  // For a single unchunked file the optimizer's choice is exactly the t
  // fastest CSPs holding shares (paper footnote 13); shares were stored on
  // the most recent upload's targets.
  std::vector<int> holders;
  const size_t base = (upload_counter_ == 0) ? 0 : (upload_counter_ - 1) % csps.size();
  for (uint32_t i = 0; i < n_; ++i) {
    holders.push_back(static_cast<int>((base + i) % csps.size()));
  }
  std::stable_sort(holders.begin(), holders.end(), [&](int a, int b) {
    return csps[a].download_bytes_per_sec > csps[b].download_bytes_per_sec;
  });
  const uint64_t share = ShareBytes(file_bytes, t_);
  for (uint32_t k = 0; k < t_; ++k) {
    plan.transfers.push_back(SchemeTransfer{holders[k], share});
  }
  return plan;
}

}  // namespace cyrus
