// Baseline storage schemes compared against CYRUS (paper §7.3, Figure 16):
//
//   Full Replication - the whole file replicated to every CSP; a download
//     reads one replica from one CSP.
//   Full Striping    - the file split into C equal fragments, one per CSP;
//     reads need every fragment (no redundancy: any CSP failure loses data).
//   DepSky           - (t, n) RS shares like CYRUS, but with DepSky's
//     protocol costs: two lock round-trips plus a random backoff before
//     writing, uploads issued to ALL CSPs with pending requests cancelled
//     once n finish (so fast CSPs accumulate shares - Figure 18), and
//     greedy fastest-CSP reads.
//   CYRUS            - (t, n) shares to n consistent-hash-chosen CSPs and
//     optimizer-selected downloads (for apples-to-apples planning).
//
// Planners emit the byte movements plus protocol overheads; benchmarks run
// the movements through the fluid network simulator to obtain times.
#ifndef SRC_BASELINE_SCHEMES_H_
#define SRC_BASELINE_SCHEMES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/result.h"
#include "src/util/rng.h"

namespace cyrus {

struct SchemeCsp {
  double rtt_ms = 100.0;
  double download_bytes_per_sec = 1e6;
  double upload_bytes_per_sec = 1e6;
};

struct SchemeTransfer {
  int csp = 0;
  uint64_t bytes = 0;
};

struct SchemePlan {
  // Concurrent data movements. Completion is when `quorum` of them finish
  // (0 = all); with a quorum, the rest are cancelled at that instant
  // (DepSky's write optimization).
  std::vector<SchemeTransfer> transfers;
  uint32_t quorum = 0;
  // Protocol overhead incurred before the data phase starts (lock
  // round-trips, random backoff, metadata fetches).
  double pre_delay_seconds = 0.0;
};

class StorageScheme {
 public:
  virtual ~StorageScheme() = default;
  virtual std::string_view name() const = 0;
  virtual Result<SchemePlan> PlanUpload(uint64_t file_bytes,
                                        const std::vector<SchemeCsp>& csps) = 0;
  virtual Result<SchemePlan> PlanDownload(uint64_t file_bytes,
                                          const std::vector<SchemeCsp>& csps) = 0;
};

// Full Replication. Downloads read the replica from `download_csp`; the
// paper averages over all CSPs, so benchmarks sweep this.
class FullReplicationScheme : public StorageScheme {
 public:
  explicit FullReplicationScheme(int download_csp = 0) : download_csp_(download_csp) {}
  std::string_view name() const override { return "full-replication"; }
  Result<SchemePlan> PlanUpload(uint64_t file_bytes,
                                const std::vector<SchemeCsp>& csps) override;
  Result<SchemePlan> PlanDownload(uint64_t file_bytes,
                                  const std::vector<SchemeCsp>& csps) override;

  void set_download_csp(int csp) { download_csp_ = csp; }

 private:
  int download_csp_;
};

class FullStripingScheme : public StorageScheme {
 public:
  std::string_view name() const override { return "full-striping"; }
  Result<SchemePlan> PlanUpload(uint64_t file_bytes,
                                const std::vector<SchemeCsp>& csps) override;
  Result<SchemePlan> PlanDownload(uint64_t file_bytes,
                                  const std::vector<SchemeCsp>& csps) override;
};

class DepSkyScheme : public StorageScheme {
 public:
  // mean_backoff_seconds: DepSky waits a random backoff after acquiring the
  // lock to detect write races (paper §7.3 cites this as a latency cost).
  DepSkyScheme(uint32_t t, uint32_t n, uint64_t seed, double mean_backoff_seconds = 1.0)
      : t_(t), n_(n), rng_(seed), mean_backoff_(mean_backoff_seconds) {}

  std::string_view name() const override { return "depsky"; }
  Result<SchemePlan> PlanUpload(uint64_t file_bytes,
                                const std::vector<SchemeCsp>& csps) override;
  Result<SchemePlan> PlanDownload(uint64_t file_bytes,
                                  const std::vector<SchemeCsp>& csps) override;

 private:
  uint32_t t_;
  uint32_t n_;
  Rng rng_;
  double mean_backoff_;
};

class CyrusScheme : public StorageScheme {
 public:
  // upload_targets rotates deterministically to model consistent hashing's
  // even placement across uploads.
  CyrusScheme(uint32_t t, uint32_t n, uint64_t seed) : t_(t), n_(n), rng_(seed) {}

  std::string_view name() const override { return "cyrus"; }
  Result<SchemePlan> PlanUpload(uint64_t file_bytes,
                                const std::vector<SchemeCsp>& csps) override;
  Result<SchemePlan> PlanDownload(uint64_t file_bytes,
                                  const std::vector<SchemeCsp>& csps) override;

 private:
  uint32_t t_;
  uint32_t n_;
  Rng rng_;
  uint64_t upload_counter_ = 0;
};

}  // namespace cyrus

#endif  // SRC_BASELINE_SCHEMES_H_
