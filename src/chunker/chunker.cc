#include "src/chunker/chunker.h"

#include "src/util/strings.h"

namespace cyrus {

Result<Chunker> Chunker::Create(const ChunkerOptions& options) {
  if (options.modulus == 0) {
    return InvalidArgumentError("chunker modulus must be positive");
  }
  if (options.residue >= options.modulus) {
    return InvalidArgumentError("chunker residue must be < modulus");
  }
  if (options.window_size == 0 || options.window_size > options.min_chunk_size) {
    return InvalidArgumentError(
        StrCat("window size ", options.window_size, " must be in (0, min_chunk_size]"));
  }
  if (options.min_chunk_size > options.max_chunk_size) {
    return InvalidArgumentError("min_chunk_size must be <= max_chunk_size");
  }
  return Chunker(options);
}

std::vector<ChunkSpan> Chunker::Split(ByteSpan data) const {
  std::vector<ChunkSpan> chunks;
  if (data.empty()) {
    return chunks;
  }

  RabinFingerprint rf(options_.window_size);
  size_t chunk_start = 0;
  size_t in_chunk = 0;  // bytes accumulated in the current chunk

  for (size_t i = 0; i < data.size(); ++i) {
    const uint64_t fp = rf.Roll(data[i]);
    ++in_chunk;
    const bool at_boundary =
        in_chunk >= options_.min_chunk_size && fp % options_.modulus == options_.residue;
    if (at_boundary || in_chunk >= options_.max_chunk_size) {
      chunks.push_back(ChunkSpan{chunk_start, in_chunk});
      chunk_start = i + 1;
      in_chunk = 0;
      // A boundary resets the window so chunk identity depends only on the
      // chunk's own content, not on preceding chunks. This is what lets two
      // files sharing a middle section produce identical chunk ids there.
      rf.Reset();
    }
  }
  if (in_chunk > 0) {
    chunks.push_back(ChunkSpan{chunk_start, in_chunk});
  }
  return chunks;
}

}  // namespace cyrus
