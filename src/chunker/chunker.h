// Content-defined chunking (paper §5.1).
//
// A chunk boundary is declared at offset i when the Rabin fingerprint of the
// trailing window satisfies fp mod M == K for pre-defined M (which sets the
// average chunk size) and K. Because boundaries depend only on local
// content, an edit only re-chunks the neighbourhood of the change, which is
// what makes deduplication effective across file versions.
//
// Min/max bounds keep pathological content (e.g. long runs of zeros) from
// producing degenerate chunks.
#ifndef SRC_CHUNKER_CHUNKER_H_
#define SRC_CHUNKER_CHUNKER_H_

#include <cstdint>
#include <vector>

#include "src/chunker/rabin.h"
#include "src/util/bytes.h"
#include "src/util/result.h"

namespace cyrus {

struct ChunkerOptions {
  size_t window_size = 48;
  // Boundary when fp % modulus == residue. The expected spacing between
  // boundaries is `modulus` bytes, so this is the average chunk size
  // (CYRUS follows Dropbox's 4 MB average; tests use smaller values).
  uint64_t modulus = 4 * 1024 * 1024;
  uint64_t residue = 0x1f;
  size_t min_chunk_size = 64 * 1024;
  size_t max_chunk_size = 16 * 1024 * 1024;

  // Small preset for unit tests and examples with little data.
  static ChunkerOptions ForTesting() {
    ChunkerOptions o;
    o.modulus = 1024;
    o.min_chunk_size = 128;
    o.max_chunk_size = 8 * 1024;
    return o;
  }
};

// A chunk described by its placement in the source buffer.
struct ChunkSpan {
  size_t offset = 0;
  size_t size = 0;
};

class Chunker {
 public:
  // Requires window <= min <= max, modulus > 0, residue < modulus.
  static Result<Chunker> Create(const ChunkerOptions& options);

  // Splits `data` into consecutive chunks covering the whole buffer.
  // An empty input yields no chunks.
  std::vector<ChunkSpan> Split(ByteSpan data) const;

  const ChunkerOptions& options() const { return options_; }

 private:
  explicit Chunker(const ChunkerOptions& options) : options_(options) {}

  ChunkerOptions options_;
};

}  // namespace cyrus

#endif  // SRC_CHUNKER_CHUNKER_H_
