#include "src/chunker/rabin.h"

namespace cyrus {
namespace {

// Multiplies `value` by x once in GF(2)[x] mod (x^64 + poly_low).
uint64_t TimesX(uint64_t value, uint64_t poly_low) {
  const uint64_t top = value >> 63;
  value <<= 1;
  if (top) {
    value ^= poly_low;
  }
  return value;
}

}  // namespace

RabinFingerprint::RabinFingerprint(size_t window_size, uint64_t polynomial)
    : polynomial_(polynomial), window_size_(window_size), window_(window_size, 0) {
  BuildTables();
}

void RabinFingerprint::BuildTables() {
  // mod_table_[b] = b * x^64 mod P: the reduction applied when the top byte
  // of the fingerprint overflows during an 8-bit shift.
  for (unsigned b = 0; b < 256; ++b) {
    uint64_t r = b;
    for (int i = 0; i < 64; ++i) {
      r = TimesX(r, polynomial_);
    }
    mod_table_[b] = r;
  }
  // out_table_[b] = b * x^(8 * (window_size - 1)) mod P: the contribution of
  // the window's oldest byte at the moment it is expired (Roll removes the
  // oldest byte *before* applying the x^8 append shift).
  for (unsigned b = 0; b < 256; ++b) {
    uint64_t r = b;
    for (size_t i = 0; i < 8 * (window_size_ - 1); ++i) {
      r = TimesX(r, polynomial_);
    }
    out_table_[b] = r;
  }
}

uint64_t RabinFingerprint::Roll(uint8_t byte) {
  // Expire the byte that is leaving the window...
  const uint8_t oldest = window_[window_pos_];
  window_[window_pos_] = byte;
  window_pos_ = (window_pos_ + 1) % window_size_;
  fingerprint_ ^= out_table_[oldest];
  // ...then append the new byte: fp = fp * x^8 + byte (mod P).
  const uint8_t top = static_cast<uint8_t>(fingerprint_ >> 56);
  fingerprint_ = ((fingerprint_ << 8) | byte) ^ mod_table_[top];
  return fingerprint_;
}

void RabinFingerprint::Reset() {
  fingerprint_ = 0;
  window_pos_ = 0;
  std::fill(window_.begin(), window_.end(), 0);
}

uint64_t RabinFingerprint::Of(ByteSpan data, size_t window_size, uint64_t polynomial) {
  RabinFingerprint rf(window_size, polynomial);
  for (uint8_t b : data) {
    rf.Roll(b);
  }
  return rf.fingerprint();
}

}  // namespace cyrus
