// Rabin fingerprinting by random polynomials (Rabin 1981), the rolling hash
// CYRUS uses for content-defined chunk boundaries (paper §5.1).
//
// The fingerprint of a byte window is the residue of the window, viewed as a
// polynomial over GF(2), modulo a fixed degree-63 irreducible polynomial.
// Appending a byte and expiring the oldest byte are O(1) via two
// precomputed 256-entry tables.
#ifndef SRC_CHUNKER_RABIN_H_
#define SRC_CHUNKER_RABIN_H_

#include <array>
#include <cstdint>

#include "src/util/bytes.h"

namespace cyrus {

class RabinFingerprint {
 public:
  // Degree-63 irreducible polynomial over GF(2) (x^63 + x^62 + ... form,
  // bit i = coefficient of x^i; the x^64 leading term is implicit).
  static constexpr uint64_t kDefaultPolynomial = 0xbfe6b8a5bf378d83ULL;

  // window_size is the number of bytes the rolling window covers.
  explicit RabinFingerprint(size_t window_size = 48,
                            uint64_t polynomial = kDefaultPolynomial);

  // Feeds one byte, sliding the window. Returns the new fingerprint.
  uint64_t Roll(uint8_t byte);

  uint64_t fingerprint() const { return fingerprint_; }
  size_t window_size() const { return window_size_; }

  // Resets to the empty-window state.
  void Reset();

  // Fingerprint of a whole buffer fed through a fresh window (convenience
  // for tests; equals the final fingerprint after rolling every byte).
  static uint64_t Of(ByteSpan data, size_t window_size = 48,
                     uint64_t polynomial = kDefaultPolynomial);

 private:
  void BuildTables();

  uint64_t polynomial_;
  size_t window_size_;
  uint64_t fingerprint_ = 0;
  size_t window_pos_ = 0;
  std::vector<uint8_t> window_;
  // mod_table_[b]: reduction of b * x^64; out_table_[b]: contribution of a
  // byte leaving the window (b * x^{8*window_size} mod P).
  std::array<uint64_t, 256> mod_table_{};
  std::array<uint64_t, 256> out_table_{};
};

}  // namespace cyrus

#endif  // SRC_CHUNKER_RABIN_H_
