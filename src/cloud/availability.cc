#include "src/cloud/availability.h"

#include <algorithm>
#include <cassert>

namespace cyrus {

AvailabilityMonitor::AvailabilityMonitor(double failure_threshold_seconds)
    : threshold_(failure_threshold_seconds) {}

void AvailabilityMonitor::RecordProbe(int csp, double time, bool reachable) {
  std::lock_guard<std::mutex> lock(mutex_);
  History& h = history_[csp];
  if (!h.any_probe) {
    h.any_probe = true;
    h.first_probe = time;
    h.last_probe = time;
    h.unreachable_since = reachable ? -1.0 : time;
    return;
  }
  assert(time >= h.last_probe);

  if (!reachable) {
    if (h.unreachable_since < 0.0) {
      h.unreachable_since = time;  // outage begins
    }
  } else if (h.unreachable_since >= 0.0) {
    // Outage over; count it as failure time only if it crossed the
    // threshold (shorter blips are treated as transient, paper §4.2).
    const double outage = time - h.unreachable_since;
    if (outage >= threshold_) {
      h.failed_seconds += outage;
    }
    h.unreachable_since = -1.0;
  }
  h.last_probe = time;
}

double AvailabilityMonitor::EstimateFailureProbability(int csp) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return EstimateLocked(csp);
}

double AvailabilityMonitor::EstimateLocked(int csp) const {
  auto it = history_.find(csp);
  if (it == history_.end() || !it->second.any_probe) {
    return 0.0;
  }
  const History& h = it->second;
  double failed = h.failed_seconds;
  // An outage still in progress counts once it crosses the threshold.
  if (h.unreachable_since >= 0.0 && h.last_probe - h.unreachable_since >= threshold_) {
    failed += h.last_probe - h.unreachable_since;
  }
  const double span = h.last_probe - h.first_probe;
  if (span <= 0.0) {
    return 0.0;  // no observation window yet; the threshold rule applies
  }
  return std::min(1.0, failed / span);
}

double AvailabilityMonitor::MaxFailureProbability() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double p = 0.0;
  for (const auto& [csp, h] : history_) {
    p = std::max(p, EstimateLocked(csp));
  }
  return p;
}

bool AvailabilityMonitor::IsFailed(int csp) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = history_.find(csp);
  if (it == history_.end()) {
    return false;
  }
  const History& h = it->second;
  return h.unreachable_since >= 0.0 && h.last_probe - h.unreachable_since >= threshold_;
}

void AvailabilityMonitor::RecordLatency(int csp, double latency_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  History& h = history_[csp];
  if (!h.any_latency) {
    h.any_latency = true;
    h.latency_ewma_ms = latency_ms;
    return;
  }
  // alpha = 0.25 follows the smoothing factor family used by TCP RTT
  // estimation: responsive enough to track a CSP that turns slow, damped
  // enough that one straggler does not blow up the hedge deadline.
  constexpr double kAlpha = 0.25;
  h.latency_ewma_ms += kAlpha * (latency_ms - h.latency_ewma_ms);
}

double AvailabilityMonitor::LatencyEstimateMs(int csp, double fallback_ms) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = history_.find(csp);
  if (it == history_.end() || !it->second.any_latency) {
    return fallback_ms;
  }
  return it->second.latency_ewma_ms;
}

void AvailabilityMonitor::RecordIntegrityFailure(int csp) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++history_[csp].integrity_failures;
}

uint64_t AvailabilityMonitor::IntegrityFailureCount(int csp) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = history_.find(csp);
  return it == history_.end() ? 0 : it->second.integrity_failures;
}

std::map<int, uint64_t> AvailabilityMonitor::IntegrityFailureCounts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<int, uint64_t> counts;
  for (const auto& [csp, h] : history_) {
    if (h.integrity_failures > 0) {
      counts[csp] = h.integrity_failures;
    }
  }
  return counts;
}

const std::vector<double>& PaperAnnualDowntimeHours() {
  // CloudHarmony-style annual downtime for the four commercial providers
  // (paper: "downtime varies from 1.37 to 18.53 hours per year"). The two
  // interior values are interpolated; DESIGN.md records the substitution.
  static const std::vector<double> kHours = {1.37, 5.0, 10.0, 18.53};
  return kHours;
}

OutageSchedule::OutageSchedule(double downtime_hours_per_year, double mean_outage_hours,
                               Rng rng)
    : p_down_(downtime_hours_per_year / 8760.0),
      mean_down_seconds_(mean_outage_hours * 3600.0),
      mean_up_seconds_(mean_down_seconds_ * (1.0 - p_down_) / std::max(p_down_, 1e-12)),
      rng_(rng) {
  phase_end_ = rng_.NextExponential(mean_up_seconds_);
}

bool OutageSchedule::IsUp(double time_seconds) {
  while (time_seconds >= phase_end_) {
    up_ = !up_;
    phase_end_ += rng_.NextExponential(up_ ? mean_up_seconds_ : mean_down_seconds_);
  }
  return up_;
}

}  // namespace cyrus
