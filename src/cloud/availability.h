// CSP availability tracking and outage modelling (paper §4.2, §7.2).
//
// AvailabilityMonitor estimates each CSP's failure probability p from probe
// history: a CSP counts as *failed* once it has been unreachable for at
// least `failure_threshold` seconds (the paper suggests one day); p is the
// observed failed fraction of time. Equation (1) then uses the largest p
// across CSPs as a conservative bound.
//
// OutageSchedule generates the alternating up/down process used by the
// Figure 13 reliability simulation, parameterized by annual downtime (the
// paper cites 1.37-18.53 hours/year for four commercial CSPs).
// AvailabilityMonitor is thread-safe: the pipelined transfer engine records
// probes from pool threads while Eq. (1) sizing reads estimates.
#ifndef SRC_CLOUD_AVAILABILITY_H_
#define SRC_CLOUD_AVAILABILITY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "src/util/result.h"
#include "src/util/rng.h"

namespace cyrus {

class AvailabilityMonitor {
 public:
  // failure_threshold: seconds of continuous unreachability after which the
  // CSP is considered down (user-configurable; default one day).
  explicit AvailabilityMonitor(double failure_threshold_seconds = 86400.0);

  // Records a probe of CSP `csp` at virtual time `time` (monotone per CSP).
  void RecordProbe(int csp, double time, bool reachable);

  // Fraction of observed time the CSP spent in failed state, in [0, 1].
  // Zero when no failure interval has been observed yet.
  double EstimateFailureProbability(int csp) const;

  // max over CSPs (conservative p for the reliability solver); zero if no
  // probes at all.
  double MaxFailureProbability() const;

  // Whether the CSP is currently in the failed state.
  bool IsFailed(int csp) const;

  // Records an observed per-share transfer latency for `csp`, folded into
  // an exponentially-weighted moving average. Feeds the hedged-Get
  // deadline: "how long does this CSP usually take?".
  void RecordLatency(int csp, double latency_ms);

  // EWMA transfer latency for `csp`; `fallback_ms` when no samples yet.
  double LatencyEstimateMs(int csp, double fallback_ms) const;

  // Records a share downloaded from `csp` that failed its digest check.
  // Integrity failures are tracked separately from reachability: a lying
  // CSP answers promptly, so the probe history alone would call it healthy.
  void RecordIntegrityFailure(int csp);

  // Cumulative integrity failures attributed to `csp`.
  uint64_t IntegrityFailureCount(int csp) const;

  // Snapshot of every CSP with at least one integrity failure.
  std::map<int, uint64_t> IntegrityFailureCounts() const;

 private:
  struct History {
    double first_probe = 0.0;
    double last_probe = 0.0;
    double unreachable_since = -1.0;  // <0: currently reachable
    double failed_seconds = 0.0;
    bool any_probe = false;
    double latency_ewma_ms = 0.0;
    bool any_latency = false;
    uint64_t integrity_failures = 0;
  };

  // Requires mutex_ held.
  double EstimateLocked(int csp) const;

  mutable std::mutex mutex_;
  double threshold_;
  std::map<int, History> history_;
};

// Hours-per-year downtime of the four commercial CSPs the paper's Figure 13
// simulation draws on (CloudHarmony monitoring, 1.37 to 18.53 h/yr).
const std::vector<double>& PaperAnnualDowntimeHours();

// Alternating renewal process: exponentially-distributed up and down
// periods with the given annual downtime budget.
class OutageSchedule {
 public:
  // downtime_hours_per_year determines the stationary down probability;
  // mean_outage_hours sets the mean length of a single outage.
  OutageSchedule(double downtime_hours_per_year, double mean_outage_hours, Rng rng);

  // Advances the process and reports whether the CSP is up at `time`
  // (times must be queried in nondecreasing order).
  bool IsUp(double time_seconds);

  // Stationary probability of being down (annual downtime / year).
  double StationaryDownProbability() const { return p_down_; }

 private:
  double p_down_;
  double mean_down_seconds_;
  double mean_up_seconds_;
  Rng rng_;
  double phase_end_ = 0.0;
  bool up_ = true;
};

}  // namespace cyrus

#endif  // SRC_CLOUD_AVAILABILITY_H_
