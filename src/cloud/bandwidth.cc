#include "src/cloud/bandwidth.h"

namespace cyrus {

void BandwidthEstimator::AddSample(int csp, TransferDirection direction, uint64_t bytes,
                                   double seconds) {
  if (seconds <= 0.0 || bytes < options_.min_sample_bytes) {
    return;
  }
  const double rate = static_cast<double>(bytes) / seconds;
  Stream& stream = streams_[{csp, direction}];
  if (stream.samples == 0) {
    stream.ewma_bytes_per_sec = rate;
  } else {
    stream.ewma_bytes_per_sec =
        options_.alpha * rate + (1.0 - options_.alpha) * stream.ewma_bytes_per_sec;
  }
  ++stream.samples;
}

double BandwidthEstimator::Estimate(int csp, TransferDirection direction) const {
  auto it = streams_.find({csp, direction});
  if (it == streams_.end() || it->second.samples == 0) {
    return options_.default_bytes_per_sec;
  }
  return it->second.ewma_bytes_per_sec;
}

bool BandwidthEstimator::HasSamples(int csp, TransferDirection direction) const {
  auto it = streams_.find({csp, direction});
  return it != streams_.end() && it->second.samples > 0;
}

size_t BandwidthEstimator::sample_count(int csp, TransferDirection direction) const {
  auto it = streams_.find({csp, direction});
  return it == streams_.end() ? 0 : it->second.samples;
}

}  // namespace cyrus
