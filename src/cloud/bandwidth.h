// Per-CSP bandwidth estimation (paper footnote 7: "Each client maintains
// local bandwidth statistics to all CSPs for different network interfaces").
//
// The downlink optimizer's beta_bar_c inputs come from here in a real
// deployment: every completed transfer contributes a (bytes, seconds)
// sample, and the estimator keeps an exponentially-weighted moving average
// per CSP and direction, so estimates track diurnal swings (Figure 17's
// phenomenon) without being whipsawed by single slow requests. Tiny
// transfers are ignored - their timing measures latency, not bandwidth.
#ifndef SRC_CLOUD_BANDWIDTH_H_
#define SRC_CLOUD_BANDWIDTH_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>

namespace cyrus {

enum class TransferDirection { kUpload, kDownload };

class BandwidthEstimator {
 public:
  struct Options {
    // EWMA weight of a new sample (0 < alpha <= 1).
    double alpha = 0.3;
    // Samples below this size measure RTT, not bandwidth: skipped.
    uint64_t min_sample_bytes = 16 * 1024;
    // Returned when a CSP has no samples yet.
    double default_bytes_per_sec = 1e6;
  };

  BandwidthEstimator() : BandwidthEstimator(Options()) {}
  explicit BandwidthEstimator(Options options) : options_(options) {}

  // Records a completed transfer of `bytes` that took `seconds` (> 0).
  void AddSample(int csp, TransferDirection direction, uint64_t bytes, double seconds);

  // Current estimate in bytes/second (the default until samples arrive).
  double Estimate(int csp, TransferDirection direction) const;

  // Whether any qualifying sample has been recorded.
  bool HasSamples(int csp, TransferDirection direction) const;

  size_t sample_count(int csp, TransferDirection direction) const;

 private:
  struct Stream {
    double ewma_bytes_per_sec = 0.0;
    size_t samples = 0;
  };

  Options options_;
  std::map<std::pair<int, TransferDirection>, Stream> streams_;
};

}  // namespace cyrus

#endif  // SRC_CLOUD_BANDWIDTH_H_
