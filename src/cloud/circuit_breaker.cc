#include "src/cloud/circuit_breaker.h"

#include <algorithm>
#include <utility>

namespace cyrus {

CircuitBreaker::CircuitBreaker(std::string csp_name, CircuitBreakerOptions options,
                               std::function<double()> now)
    : csp_name_(std::move(csp_name)),
      options_(options),
      now_(std::move(now)),
      rng_(options.seed) {
  options_.failure_threshold = std::max<uint32_t>(options_.failure_threshold, 1);
  options_.half_open_successes = std::max<uint32_t>(options_.half_open_successes, 1);
  options_.cooldown_jitter = std::clamp(options_.cooldown_jitter, 0.0, 1.0);
  metrics_ = options_.metrics ? options_.metrics : &obs::MetricsRegistry::Default();
  state_gauge_ = metrics_->GetGauge(
      "cyrus_breaker_state", {{"csp", csp_name_}},
      "Circuit breaker state per CSP: 0 closed, 1 half-open, 2 open");
  fast_failures_ = metrics_->GetCounter(
      "cyrus_breaker_fast_failures_total", {{"csp", csp_name_}},
      "Calls rejected locally because the CSP's breaker was open");
  state_gauge_->Set(0.0);
}

std::string_view CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kHalfOpen:
      return "half_open";
    case State::kOpen:
      return "open";
  }
  return "unknown";
}

void CircuitBreaker::set_on_transition(std::function<void(State, State)> cb) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_transition_ = std::move(cb);
}

double CircuitBreaker::CooldownLocked() {
  double cooldown = options_.open_cooldown_seconds;
  if (options_.cooldown_jitter > 0.0) {
    cooldown *= rng_.NextDouble(1.0 - options_.cooldown_jitter,
                                1.0 + options_.cooldown_jitter);
  }
  return cooldown;
}

void CircuitBreaker::TransitionLocked(State to) {
  if (state_ == to) {
    return;
  }
  const State from = state_;
  state_ = to;
  if (to == State::kOpen) {
    open_until_ = now_() + CooldownLocked();
  }
  if (to != State::kHalfOpen) {
    half_open_probe_in_flight_ = false;
  }
  half_open_successes_seen_ = 0;
  consecutive_failures_ = 0;
  state_gauge_->Set(static_cast<double>(static_cast<int>(to)));
  metrics_
      ->GetCounter("cyrus_breaker_transitions_total",
                   {{"csp", csp_name_}, {"to", std::string(StateName(to))}},
                   "Circuit breaker state transitions per CSP and target state")
      ->Increment();
  // Record only; the callback runs outside mutex_ (it may take the
  // client's topology mutex). Queueing under mutex_ pins the delivery
  // order to the transition order even when transitions race.
  pending_transitions_.emplace_back(from, to);
}

void CircuitBreaker::DrainTransitions() {
  // Holding callback_mutex_ across the whole drain keeps delivery in
  // enqueue order when two threads transition back-to-back: whichever
  // drains first delivers both, the other finds an empty queue.
  std::lock_guard<std::mutex> cb_lock(callback_mutex_);
  while (true) {
    std::function<void(State, State)> cb;
    std::pair<State, State> transition;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (pending_transitions_.empty()) {
        return;
      }
      transition = pending_transitions_.front();
      pending_transitions_.pop_front();
      cb = on_transition_;
    }
    if (cb) {
      cb(transition.first, transition.second);
    }
  }
}

bool CircuitBreaker::AllowRequest() {
  bool allow = true;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (state_ == State::kOpen && now_() >= open_until_) {
      TransitionLocked(State::kHalfOpen);
    }
    switch (state_) {
      case State::kClosed:
        allow = true;
        break;
      case State::kOpen:
        fast_failures_->Increment();
        allow = false;
        break;
      case State::kHalfOpen:
        if (half_open_probe_in_flight_) {
          fast_failures_->Increment();
          allow = false;
        } else {
          half_open_probe_in_flight_ = true;
          allow = true;
        }
        break;
    }
  }
  DrainTransitions();
  return allow;
}

void CircuitBreaker::RecordSuccess() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    switch (state_) {
      case State::kClosed:
        consecutive_failures_ = 0;
        break;
      case State::kHalfOpen: {
        half_open_probe_in_flight_ = false;
        if (++half_open_successes_seen_ >= options_.half_open_successes) {
          TransitionLocked(State::kClosed);
        }
        break;
      }
      case State::kOpen:
        // A straggler call issued before the trip finished late; ignore.
        break;
    }
  }
  DrainTransitions();
}

void CircuitBreaker::RecordFailure() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    switch (state_) {
      case State::kClosed:
        if (++consecutive_failures_ >= options_.failure_threshold) {
          TransitionLocked(State::kOpen);
        }
        break;
      case State::kHalfOpen:
        half_open_probe_in_flight_ = false;
        TransitionLocked(State::kOpen);
        break;
      case State::kOpen:
        break;
    }
  }
  DrainTransitions();
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

void CircuitBreaker::ForceHalfOpen() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (state_ == State::kOpen) {
      TransitionLocked(State::kHalfOpen);
    }
  }
  DrainTransitions();
}

void CircuitBreaker::ForceOpen() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (state_ != State::kOpen) {
      TransitionLocked(State::kOpen);
    }
  }
  DrainTransitions();
}

void CircuitBreaker::ForceClose() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == State::kClosed) {
    return;
  }
  const State to = State::kClosed;
  state_ = to;
  half_open_probe_in_flight_ = false;
  half_open_successes_seen_ = 0;
  consecutive_failures_ = 0;
  // Queued-but-undelivered transitions describe a state this reset just
  // overrode; delivering them now would re-indict the CSP the caller is
  // recovering.
  pending_transitions_.clear();
  state_gauge_->Set(0.0);
  metrics_
      ->GetCounter("cyrus_breaker_transitions_total",
                   {{"csp", csp_name_}, {"to", std::string(StateName(to))}},
                   "Circuit breaker state transitions per CSP and target state")
      ->Increment();
  // Deliberately no on_transition_: the caller is the recovery path itself.
}

bool IsCspHealthFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kPermissionDenied:
      return true;
    default:
      return false;
  }
}

CircuitBreakerConnector::CircuitBreakerConnector(
    std::shared_ptr<CloudConnector> inner, std::shared_ptr<CircuitBreaker> breaker)
    : inner_(std::move(inner)), breaker_(std::move(breaker)) {}

Status CircuitBreakerConnector::FastFail() const {
  return UnavailableError("circuit breaker open for csp " +
                          std::string(inner_->id()));
}

void CircuitBreakerConnector::Record(const Status& status) {
  if (IsCspHealthFailure(status)) {
    breaker_->RecordFailure();
  } else {
    breaker_->RecordSuccess();
  }
}

Status CircuitBreakerConnector::Authenticate(const Credentials& credentials) {
  if (!breaker_->AllowRequest()) {
    return FastFail();
  }
  Status status = inner_->Authenticate(credentials);
  Record(status);
  return status;
}

Result<std::vector<ObjectInfo>> CircuitBreakerConnector::List(std::string_view prefix) {
  if (!breaker_->AllowRequest()) {
    return FastFail();
  }
  Result<std::vector<ObjectInfo>> result = inner_->List(prefix);
  Record(result.status());
  return result;
}

Status CircuitBreakerConnector::Upload(std::string_view name, ByteSpan data) {
  if (!breaker_->AllowRequest()) {
    return FastFail();
  }
  Status status = inner_->Upload(name, data);
  Record(status);
  return status;
}

Result<Bytes> CircuitBreakerConnector::Download(std::string_view name) {
  if (!breaker_->AllowRequest()) {
    return FastFail();
  }
  Result<Bytes> result = inner_->Download(name);
  Record(result.status());
  return result;
}

Status CircuitBreakerConnector::Delete(std::string_view name) {
  if (!breaker_->AllowRequest()) {
    return FastFail();
  }
  Status status = inner_->Delete(name);
  Record(status);
  return status;
}

}  // namespace cyrus
