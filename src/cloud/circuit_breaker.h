// Per-CSP circuit breaker (closed / open / half-open).
//
// The transfer engine used to indict a CSP with an ad-hoc MarkCspFailed
// read-modify-write the first time any call failed, and nothing but a
// manual MarkCspRecovered (or a scrub reprobe) ever let it back in. The
// breaker replaces that with the standard three-state machine:
//
//   closed    -> every call passes through; `failure_threshold` consecutive
//                eligible failures (kUnavailable / kDeadlineExceeded /
//                kPermissionDenied) trip the breaker.
//   open      -> calls fast-fail with kUnavailable without touching the
//                network; after a seeded cooldown (virtual seconds, with
//                optional jitter so a fleet of clients does not probe in
//                lockstep) the breaker admits probes.
//   half-open -> one probe call at a time passes through; `half_open_
//                successes` consecutive successes close the breaker, any
//                failure re-opens it with a fresh cooldown.
//
// The breaker is a CloudConnector decorator, so placement (hash ring),
// the download selector, and the repair engine all see its verdicts
// through the same state-change callback the client uses to keep the
// registry in sync. Thread-safe; the transition callback is invoked
// *outside* the breaker lock (it typically takes the client's topology
// mutex).
#ifndef SRC_CLOUD_CIRCUIT_BREAKER_H_
#define SRC_CLOUD_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "src/cloud/connector.h"
#include "src/obs/metrics.h"
#include "src/util/rng.h"

namespace cyrus {

struct CircuitBreakerOptions {
  // Master switch for the client-level wiring: when false, CyrusClient
  // registers connectors without the breaker decorator and keeps the
  // legacy MarkCspFailed indictment path. Off by default because a
  // threshold-1 breaker trips on the first transient error the retry
  // layer would otherwise ride out, changing placement mid-burst.
  bool enabled = false;
  // Consecutive eligible failures that trip a closed breaker. The default
  // of 1 reproduces the legacy immediate-indictment behaviour; chaos
  // configurations raise it to ride out transient blips.
  uint32_t failure_threshold = 1;
  // Virtual seconds an open breaker waits before admitting half-open
  // probes.
  double open_cooldown_seconds = 30.0;
  // Fractional jitter applied to each cooldown, drawn from the seeded rng
  // in [1 - jitter, 1 + jitter]. 0 = deterministic cooldowns.
  double cooldown_jitter = 0.0;
  // Consecutive half-open successes needed to close the breaker.
  uint32_t half_open_successes = 1;
  uint64_t seed = 1;
  // nullptr -> obs::MetricsRegistry::Default().
  obs::MetricsRegistry* metrics = nullptr;
};

class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

  // `csp_name` labels the breaker's metrics; `now` supplies virtual time
  // (seconds) and must be callable from any thread.
  CircuitBreaker(std::string csp_name, CircuitBreakerOptions options,
                 std::function<double()> now);

  // Whether a call may proceed right now. In half-open state this hands
  // out at most one in-flight probe slot; callers that receive `true`
  // MUST follow up with RecordSuccess or RecordFailure.
  bool AllowRequest();

  void RecordSuccess();
  void RecordFailure();

  State state() const;
  const std::string& csp_name() const { return csp_name_; }

  // Invoked after every state change, outside the breaker lock, as
  // (from, to). At most one callback runs at a time per breaker, and
  // callbacks are delivered in transition order even when transitions
  // race on different threads.
  void set_on_transition(std::function<void(State, State)> cb);

  // Forces the breaker into half-open immediately (scrub-driven reprobe:
  // the repair engine has independent evidence the CSP may be back).
  void ForceHalfOpen();

  // Forces the breaker open immediately (with a fresh cooldown), firing
  // the transition callback so placement evicts the CSP. The integrity
  // path's quarantine primitive: a CSP serving corrupted bytes answers
  // promptly, so its transfer-level "successes" keep resetting the
  // consecutive-failure count and the trip must come from cumulative
  // evidence instead. No-op when already open.
  void ForceOpen();

  // Forces the breaker closed WITHOUT firing the transition callback. Used
  // by MarkCspRecovered, which already holds the topology mutex the
  // callback would re-take: the registry state is being fixed by the
  // caller, so only the breaker's bookkeeping needs resetting.
  void ForceClose();

  static std::string_view StateName(State state);

 private:
  // Requires lock held. Applies the state change and enqueues the
  // (from, to) pair for DrainTransitions; never invokes the callback
  // itself.
  void TransitionLocked(State to);
  // Delivers queued transitions to on_transition_ in enqueue order.
  // Must be called WITHOUT mutex_ held (callbacks typically take the
  // client's topology mutex).
  void DrainTransitions();
  double CooldownLocked();

  const std::string csp_name_;
  CircuitBreakerOptions options_;
  std::function<double()> now_;

  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  uint32_t consecutive_failures_ = 0;
  uint32_t half_open_successes_seen_ = 0;
  bool half_open_probe_in_flight_ = false;
  double open_until_ = 0.0;
  Rng rng_;
  std::function<void(State, State)> on_transition_;
  // Transitions recorded under mutex_ but not yet delivered to the
  // callback; drained FIFO so delivery order matches transition order.
  std::deque<std::pair<State, State>> pending_transitions_;
  // Serializes callback invocations without holding mutex_ across them.
  std::mutex callback_mutex_;

  obs::Gauge* state_gauge_ = nullptr;
  obs::Counter* fast_failures_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

// CloudConnector decorator enforcing a CircuitBreaker on every call.
// Failures that count against the breaker: kUnavailable,
// kDeadlineExceeded, kPermissionDenied. Application-level outcomes such
// as kNotFound count as successes (the provider answered).
class CircuitBreakerConnector : public CloudConnector {
 public:
  CircuitBreakerConnector(std::shared_ptr<CloudConnector> inner,
                          std::shared_ptr<CircuitBreaker> breaker);

  std::string_view id() const override { return inner_->id(); }
  Status Authenticate(const Credentials& credentials) override;
  Result<std::vector<ObjectInfo>> List(std::string_view prefix) override;
  Status Upload(std::string_view name, ByteSpan data) override;
  Result<Bytes> Download(std::string_view name) override;
  Status Delete(std::string_view name) override;

  const std::shared_ptr<CircuitBreaker>& breaker() const { return breaker_; }
  const std::shared_ptr<CloudConnector>& inner() const { return inner_; }

 private:
  Status FastFail() const;
  void Record(const Status& status);

  std::shared_ptr<CloudConnector> inner_;
  std::shared_ptr<CircuitBreaker> breaker_;
};

// Whether a status indicts the provider (as opposed to the request).
bool IsCspHealthFailure(const Status& status);

}  // namespace cyrus

#endif  // SRC_CLOUD_CIRCUIT_BREAKER_H_
