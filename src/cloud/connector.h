// The CSP connector abstraction (paper §3.1, §6).
//
// CYRUS deliberately restricts itself to the five operations every storage
// provider - even a bare FTP server - offers: authenticate, list, upload,
// download, delete. All provider heterogeneity (name-keyed vs id-keyed
// object stores, overwrite semantics, quotas, outages) lives behind this
// interface; everything above it is provider-agnostic.
//
// Implementations must be thread-safe: the pipelined transfer engine
// issues List/Upload/Download/Delete from pool threads concurrently
// (Authenticate runs before any transfers start).
#ifndef SRC_CLOUD_CONNECTOR_H_
#define SRC_CLOUD_CONNECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/result.h"

namespace cyrus {

struct Credentials {
  std::string token;  // stand-in for OAuth tokens / API keys
};

struct ObjectInfo {
  std::string name;
  uint64_t size = 0;
  double modified_time = 0.0;  // seconds since epoch (virtual time)
};

class CloudConnector {
 public:
  virtual ~CloudConnector() = default;

  // Stable identifier, e.g. "dropbox".
  virtual std::string_view id() const = 0;

  // Establishes a session. Every other call fails with kPermissionDenied
  // until this succeeds.
  virtual Status Authenticate(const Credentials& credentials) = 0;

  // Objects whose name starts with `prefix` ("" lists everything).
  virtual Result<std::vector<ObjectInfo>> List(std::string_view prefix) = 0;

  // Stores an object. Whether an existing object with the same name is
  // overwritten or duplicated is provider-specific (see SimulatedCsp).
  virtual Status Upload(std::string_view name, ByteSpan data) = 0;

  // Retrieves the newest object with this name.
  virtual Result<Bytes> Download(std::string_view name) = 0;

  // Removes every object with this name. Deleting a missing object is not
  // an error (providers differ; CYRUS treats it as idempotent).
  virtual Status Delete(std::string_view name) = 0;
};

}  // namespace cyrus

#endif  // SRC_CLOUD_CONNECTOR_H_
