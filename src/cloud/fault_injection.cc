#include "src/cloud/fault_injection.h"

#include <utility>
#include <vector>

#include "src/util/strings.h"

namespace cyrus {

FaultInjectingConnector::FaultInjectingConnector(
    std::shared_ptr<CloudConnector> inner, FaultInjectionOptions options)
    : inner_(std::move(inner)),
      options_(options),
      rng_(options.seed),
      down_(options.permanently_down) {}

Status FaultInjectingConnector::RollFaults(bool allow_transient) {
  ++counters_.calls;
  if (options_.latency_mean_ms > 0.0) {
    counters_.injected_latency_ms += rng_.NextExponential(options_.latency_mean_ms);
  }
  if (down_) {
    ++counters_.outage_errors;
    return UnavailableError(StrCat(inner_->id(), ": injected permanent outage"));
  }
  if (allow_transient && options_.transient_error_prob > 0.0 &&
      rng_.NextBool(options_.transient_error_prob)) {
    ++counters_.transient_errors;
    return UnavailableError(StrCat(inner_->id(), ": injected transient error"));
  }
  return OkStatus();
}

Status FaultInjectingConnector::Authenticate(const Credentials& credentials) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (down_) {
      ++counters_.outage_errors;
      return UnavailableError(StrCat(inner_->id(), ": injected permanent outage"));
    }
  }
  return inner_->Authenticate(credentials);
}

Result<std::vector<ObjectInfo>> FaultInjectingConnector::List(
    std::string_view prefix) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CYRUS_RETURN_IF_ERROR(RollFaults(/*allow_transient=*/true));
  }
  return inner_->List(prefix);
}

Status FaultInjectingConnector::Upload(std::string_view name, ByteSpan data) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CYRUS_RETURN_IF_ERROR(RollFaults(/*allow_transient=*/true));
    if (options_.upload_loss_prob > 0.0 && rng_.NextBool(options_.upload_loss_prob)) {
      ++counters_.uploads_lost;
      return OkStatus();  // the silent part of silent loss
    }
  }
  return inner_->Upload(name, data);
}

Result<Bytes> FaultInjectingConnector::Download(std::string_view name) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CYRUS_RETURN_IF_ERROR(RollFaults(/*allow_transient=*/true));
  }
  return inner_->Download(name);
}

Status FaultInjectingConnector::Delete(std::string_view name) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CYRUS_RETURN_IF_ERROR(RollFaults(/*allow_transient=*/true));
  }
  return inner_->Delete(name);
}

void FaultInjectingConnector::set_permanently_down(bool down) {
  std::lock_guard<std::mutex> lock(mutex_);
  down_ = down;
}

bool FaultInjectingConnector::permanently_down() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return down_;
}

Status FaultInjectingConnector::DestroyObject(std::string_view name) {
  // Bypasses the fault dice: this models provider-side loss, not a client
  // call, so it must succeed even during an outage.
  auto listing = inner_->List(name);
  CYRUS_RETURN_IF_ERROR(listing.status());
  bool found = false;
  for (const ObjectInfo& object : *listing) {
    found |= object.name == name;
  }
  if (!found) {
    return NotFoundError(StrCat(inner_->id(), ": no object ", name));
  }
  CYRUS_RETURN_IF_ERROR(inner_->Delete(name));
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.objects_destroyed;
  return OkStatus();
}

Result<size_t> FaultInjectingConnector::DestroyRandomObjects(double fraction) {
  if (fraction < 0.0 || fraction > 1.0) {
    return InvalidArgumentError(StrCat("loss fraction ", fraction, " not in [0, 1]"));
  }
  auto listing = inner_->List("");
  CYRUS_RETURN_IF_ERROR(listing.status());
  std::vector<std::string> victims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const ObjectInfo& object : *listing) {
      if (rng_.NextBool(fraction)) {
        victims.push_back(object.name);
      }
    }
  }
  size_t destroyed = 0;
  for (const std::string& name : victims) {
    if (inner_->Delete(name).ok()) {
      ++destroyed;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.objects_destroyed += destroyed;
  return destroyed;
}

FaultInjectionCounters FaultInjectingConnector::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void FaultInjectingConnector::ResetCounters() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_ = FaultInjectionCounters{};
}

}  // namespace cyrus
