#include "src/cloud/fault_injection.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/strings.h"

namespace cyrus {
namespace {

void SleepMs(double ms) {
  if (ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(ms * 1000.0)));
  }
}

}  // namespace

FaultInjectingConnector::FaultInjectingConnector(
    std::shared_ptr<CloudConnector> inner, FaultInjectionOptions options)
    : inner_(std::move(inner)),
      options_(options),
      rng_(options.seed),
      down_(options.permanently_down) {
  obs::MetricsRegistry& registry =
      options_.metrics != nullptr ? *options_.metrics : obs::MetricsRegistry::Default();
  const obs::Labels csp = {{"csp", std::string(inner_->id())}};
  calls_ = registry.GetCounter("cyrus_fault_calls_total", csp,
                               "Connector calls seen by the fault injector");
  transient_errors_ =
      registry.GetCounter("cyrus_fault_errors_total",
                          {{"csp", std::string(inner_->id())}, {"fault", "transient"}},
                          "Errors injected, by fault class");
  outage_errors_ =
      registry.GetCounter("cyrus_fault_errors_total",
                          {{"csp", std::string(inner_->id())}, {"fault", "outage"}},
                          "Errors injected, by fault class");
  uploads_lost_ = registry.GetCounter("cyrus_fault_uploads_lost_total", csp,
                                      "Uploads silently discarded");
  objects_destroyed_ = registry.GetCounter("cyrus_fault_objects_destroyed_total", csp,
                                           "Stored objects silently removed");
  downloads_corrupted_ =
      registry.GetCounter("cyrus_fault_downloads_corrupted_total", csp,
                          "Downloads returned with injected byte flips");
  uploads_corrupted_ =
      registry.GetCounter("cyrus_fault_uploads_corrupted_total", csp,
                          "Uploads stored with injected byte flips");
  objects_rotted_ =
      registry.GetCounter("cyrus_fault_objects_rotted_total", csp,
                          "Stored objects bit-rotted in place");
  injected_latency_ms_ = registry.GetGauge("cyrus_fault_injected_latency_ms_total", csp,
                                           "Cumulative injected virtual latency");
  baseline_ = RawCounters();
}

Status FaultInjectingConnector::RollFaults(bool allow_transient) {
  calls_->Increment();
  if (options_.latency_mean_ms > 0.0) {
    injected_latency_ms_->Add(rng_.NextExponential(options_.latency_mean_ms));
  }
  if (down_) {
    outage_errors_->Increment();
    return UnavailableError(StrCat(inner_->id(), ": injected permanent outage"));
  }
  if (allow_transient && options_.transient_error_prob > 0.0 &&
      rng_.NextBool(options_.transient_error_prob)) {
    transient_errors_->Increment();
    return UnavailableError(StrCat(inner_->id(), ": injected transient error"));
  }
  return OkStatus();
}

double FaultInjectingConnector::DrawRealSleepMsLocked() {
  if (options_.real_sleep_max_ms <= 0.0) {
    return 0.0;
  }
  return rng_.NextDouble() * options_.real_sleep_max_ms;
}

Status FaultInjectingConnector::Authenticate(const Credentials& credentials) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (down_) {
      outage_errors_->Increment();
      return UnavailableError(StrCat(inner_->id(), ": injected permanent outage"));
    }
  }
  return inner_->Authenticate(credentials);
}

Result<std::vector<ObjectInfo>> FaultInjectingConnector::List(
    std::string_view prefix) {
  double sleep_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CYRUS_RETURN_IF_ERROR(RollFaults(/*allow_transient=*/true));
    sleep_ms = DrawRealSleepMsLocked();
  }
  SleepMs(sleep_ms);
  return inner_->List(prefix);
}

Status FaultInjectingConnector::Upload(std::string_view name, ByteSpan data) {
  double sleep_ms = 0.0;
  Bytes corrupted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CYRUS_RETURN_IF_ERROR(RollFaults(/*allow_transient=*/true));
    if (options_.upload_loss_prob > 0.0 && rng_.NextBool(options_.upload_loss_prob)) {
      uploads_lost_->Increment();
      return OkStatus();  // the silent part of silent loss
    }
    if (options_.upload_corrupt_prob > 0.0 && !data.empty() &&
        rng_.NextBool(options_.upload_corrupt_prob)) {
      // Corrupt a private copy so the caller's buffer (possibly pooled and
      // reused for other CSPs) is untouched; what lands at rest is rotten
      // from the first byte.
      corrupted.assign(data.begin(), data.end());
      const size_t flips = 1 + rng_.NextBelow(3);
      for (size_t i = 0; i < flips; ++i) {
        const size_t pos = rng_.NextBelow(corrupted.size());
        corrupted[pos] ^= static_cast<uint8_t>(1 + rng_.NextBelow(255));
      }
      uploads_corrupted_->Increment();
    }
    sleep_ms = DrawRealSleepMsLocked();
  }
  SleepMs(sleep_ms);
  Status status = inner_->Upload(name, corrupted.empty() ? data : ByteSpan(corrupted));
  if (status.ok() && options_.down_after_uploads > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (++successful_uploads_ >= options_.down_after_uploads) {
      down_ = true;  // the crash: everything after this call fails
    }
  }
  return status;
}

Result<Bytes> FaultInjectingConnector::Download(std::string_view name) {
  double sleep_ms = 0.0;
  bool corrupt = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CYRUS_RETURN_IF_ERROR(RollFaults(/*allow_transient=*/true));
    if (options_.download_corrupt_prob > 0.0 &&
        rng_.NextBool(options_.download_corrupt_prob)) {
      corrupt = true;
    }
    sleep_ms = DrawRealSleepMsLocked();
  }
  SleepMs(sleep_ms);
  Result<Bytes> result = inner_->Download(name);
  if (corrupt && result.ok() && !result->empty()) {
    Bytes bytes = std::move(*result);
    // One to three seeded flips: enough to break the codeword, few enough
    // that error-correcting decode still pins the corrupted share.
    size_t flips = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      flips = 1 + rng_.NextBelow(3);
      for (size_t i = 0; i < flips; ++i) {
        const size_t pos = rng_.NextBelow(bytes.size());
        bytes[pos] ^= static_cast<uint8_t>(1 + rng_.NextBelow(255));
      }
    }
    downloads_corrupted_->Increment();
    return bytes;
  }
  return result;
}

Status FaultInjectingConnector::Delete(std::string_view name) {
  double sleep_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CYRUS_RETURN_IF_ERROR(RollFaults(/*allow_transient=*/true));
    sleep_ms = DrawRealSleepMsLocked();
  }
  SleepMs(sleep_ms);
  return inner_->Delete(name);
}

void FaultInjectingConnector::set_permanently_down(bool down) {
  std::lock_guard<std::mutex> lock(mutex_);
  down_ = down;
  if (!down) {
    // Reviving models the provider coming back for good: disarm the
    // one-shot crash trigger so the next upload does not re-trip it.
    options_.down_after_uploads = 0;
    successful_uploads_ = 0;
  }
}

bool FaultInjectingConnector::permanently_down() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return down_;
}

Status FaultInjectingConnector::DestroyObject(std::string_view name) {
  // Bypasses the fault dice: this models provider-side loss, not a client
  // call, so it must succeed even during an outage.
  auto listing = inner_->List(name);
  CYRUS_RETURN_IF_ERROR(listing.status());
  bool found = false;
  for (const ObjectInfo& object : *listing) {
    found |= object.name == name;
  }
  if (!found) {
    return NotFoundError(StrCat(inner_->id(), ": no object ", name));
  }
  CYRUS_RETURN_IF_ERROR(inner_->Delete(name));
  objects_destroyed_->Increment();
  return OkStatus();
}

Result<size_t> FaultInjectingConnector::DestroyRandomObjects(double fraction) {
  if (fraction < 0.0 || fraction > 1.0) {
    return InvalidArgumentError(StrCat("loss fraction ", fraction, " not in [0, 1]"));
  }
  auto listing = inner_->List("");
  CYRUS_RETURN_IF_ERROR(listing.status());
  std::vector<std::string> victims;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const ObjectInfo& object : *listing) {
      if (rng_.NextBool(fraction)) {
        victims.push_back(object.name);
      }
    }
  }
  size_t destroyed = 0;
  for (const std::string& name : victims) {
    if (inner_->Delete(name).ok()) {
      ++destroyed;
    }
  }
  objects_destroyed_->Increment(destroyed);
  return destroyed;
}

Status FaultInjectingConnector::RotStoredObject(std::string_view name,
                                                size_t byte_index) {
  // Bypasses the fault dice like DestroyObject: rot happens at the
  // provider, not on a client call, so it must land even during an outage.
  auto stored = inner_->Download(name);
  CYRUS_RETURN_IF_ERROR(stored.status());
  if (stored->empty()) {
    return FailedPreconditionError(
        StrCat(inner_->id(), ": cannot rot empty object ", name));
  }
  Bytes bytes = *std::move(stored);
  // Deterministic single-byte flip: callers pick the byte, repeated runs
  // produce identical rot, and XOR with a fixed nonzero mask guarantees the
  // stored bytes actually change.
  bytes[byte_index % bytes.size()] ^= 0x5a;
  CYRUS_RETURN_IF_ERROR(inner_->Upload(name, bytes));
  objects_rotted_->Increment();
  return OkStatus();
}

FaultInjectionCounters FaultInjectingConnector::RawCounters() const {
  FaultInjectionCounters raw;
  raw.calls = calls_->value();
  raw.transient_errors = transient_errors_->value();
  raw.outage_errors = outage_errors_->value();
  raw.uploads_lost = uploads_lost_->value();
  raw.objects_destroyed = objects_destroyed_->value();
  raw.downloads_corrupted = downloads_corrupted_->value();
  raw.uploads_corrupted = uploads_corrupted_->value();
  raw.objects_rotted = objects_rotted_->value();
  raw.injected_latency_ms = injected_latency_ms_->value();
  return raw;
}

FaultInjectionCounters FaultInjectingConnector::counters() const {
  // Saturating subtraction: a registry ResetForTest can pull the lifetime
  // totals below this instance's baseline, and a negative count would be
  // nonsense.
  auto delta = [](uint64_t now, uint64_t base) { return now > base ? now - base : 0; };
  const FaultInjectionCounters raw = RawCounters();
  std::lock_guard<std::mutex> lock(mutex_);
  FaultInjectionCounters out;
  out.calls = delta(raw.calls, baseline_.calls);
  out.transient_errors = delta(raw.transient_errors, baseline_.transient_errors);
  out.outage_errors = delta(raw.outage_errors, baseline_.outage_errors);
  out.uploads_lost = delta(raw.uploads_lost, baseline_.uploads_lost);
  out.objects_destroyed = delta(raw.objects_destroyed, baseline_.objects_destroyed);
  out.downloads_corrupted = delta(raw.downloads_corrupted, baseline_.downloads_corrupted);
  out.uploads_corrupted = delta(raw.uploads_corrupted, baseline_.uploads_corrupted);
  out.objects_rotted = delta(raw.objects_rotted, baseline_.objects_rotted);
  out.injected_latency_ms =
      std::max(0.0, raw.injected_latency_ms - baseline_.injected_latency_ms);
  return out;
}

void FaultInjectingConnector::ResetCounters() {
  const FaultInjectionCounters raw = RawCounters();
  std::lock_guard<std::mutex> lock(mutex_);
  baseline_ = raw;
}

}  // namespace cyrus
