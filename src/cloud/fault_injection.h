// A fault-injecting decorator over any CloudConnector.
//
// Wraps a real or simulated provider and misbehaves on purpose, so the
// repair engine, the lazy-migration path, and the retry logic can be
// exercised under realistic CSP failure modes without touching the wrapped
// store's implementation:
//   - transient errors: individual calls fail with kUnavailable (the next
//     attempt may succeed) with a configured probability;
//   - permanent outage: every call fails with kUnavailable until revived;
//   - latency: per-call exponentially distributed virtual latency is
//     accumulated in a counter (CYRUS runs on a virtual clock; benches add
//     it to the flow simulator's pre-delay rather than sleeping);
//   - silent object loss: an Upload reports success but stores nothing, or
//     already-stored objects vanish without any error ever being returned -
//     the failure mode only a scrub pass can catch.
//
// All randomness flows through one seeded Rng (src/util/rng.h), so every
// fault schedule is reproducible. Thread-safe: connectors are called from
// the client's transfer pool.
#ifndef SRC_CLOUD_FAULT_INJECTION_H_
#define SRC_CLOUD_FAULT_INJECTION_H_

#include <memory>
#include <mutex>
#include <string>

#include "src/cloud/connector.h"
#include "src/obs/metrics.h"
#include "src/util/rng.h"

namespace cyrus {

struct FaultInjectionOptions {
  uint64_t seed = 1;
  // Registry receiving the cyrus_fault_* series (labeled by csp id);
  // nullptr means the process-wide default. Tests that assert on absolute
  // fault counts hand in a private registry for isolation.
  obs::MetricsRegistry* metrics = nullptr;
  // Probability that any one List/Upload/Download/Delete call fails with
  // kUnavailable. Authenticate is exempt (session setup is interactive and
  // retried by the user, not the transfer paths).
  double transient_error_prob = 0.0;
  // Probability that an Upload silently discards the object while still
  // reporting success.
  double upload_loss_prob = 0.0;
  // Mean of the exponential per-call latency draw, in milliseconds; 0
  // disables the draw. Accumulated, never slept.
  double latency_mean_ms = 0.0;
  // Upper bound of a uniform per-call *real* sleep, in milliseconds; 0
  // disables it. Slept outside the injector's lock, so concurrent calls
  // overlap and their completion order is genuinely scrambled - the knob
  // the pipelined-engine stress tests use to force out-of-submission-order
  // completions on real threads.
  double real_sleep_max_ms = 0.0;
  // Probability that a Download returns the stored bytes with one or more
  // seeded byte flips (bit rot / tampering in transit). The corruption is
  // silent: the call reports success, so only the share-digest check (or,
  // for legacy metadata, the decode integrity path / a scrub) catches it.
  double download_corrupt_prob = 0.0;
  // Probability that an Upload *stores* seeded-flipped bytes while still
  // reporting success - corruption at rest from the first byte, as opposed
  // to download_corrupt_prob's corruption on the wire (which leaves the
  // stored object clean).
  double upload_corrupt_prob = 0.0;
  // After this many successful (non-dropped) Uploads the connector enters
  // the permanent-outage state, as if the process or provider died
  // mid-Put. 0 disables. The crash-recovery tests use this to abandon a
  // Put after exactly k shares have landed. set_permanently_down(false)
  // disarms the trigger (one crash per configured schedule).
  uint64_t down_after_uploads = 0;
  // Start in the permanent-outage state.
  bool permanently_down = false;
};

// Per-instance view of the injected-fault totals. The live counts are
// registry instruments (cyrus_fault_* series labeled by csp id) so
// dashboards and the /metrics route see them; this struct is what
// counters() derives from those instruments for test assertions.
struct FaultInjectionCounters {
  uint64_t calls = 0;               // forwarded or failed, excluding Authenticate
  uint64_t transient_errors = 0;    // injected kUnavailable (transient)
  uint64_t outage_errors = 0;       // injected kUnavailable (permanent outage)
  uint64_t uploads_lost = 0;        // silently dropped uploads
  uint64_t objects_destroyed = 0;   // stored objects silently removed
  uint64_t downloads_corrupted = 0; // downloads returned with flipped bytes
  uint64_t uploads_corrupted = 0;   // uploads stored with flipped bytes
  uint64_t objects_rotted = 0;      // stored objects bit-rotted in place
  double injected_latency_ms = 0.0;
};

class FaultInjectingConnector : public CloudConnector {
 public:
  FaultInjectingConnector(std::shared_ptr<CloudConnector> inner,
                          FaultInjectionOptions options);

  // CloudConnector:
  std::string_view id() const override { return inner_->id(); }
  Status Authenticate(const Credentials& credentials) override;
  Result<std::vector<ObjectInfo>> List(std::string_view prefix) override;
  Status Upload(std::string_view name, ByteSpan data) override;
  Result<Bytes> Download(std::string_view name) override;
  Status Delete(std::string_view name) override;

  // --- Fault controls (not part of the connector surface) ---

  // Permanent outage: every call (including Authenticate) fails with
  // kUnavailable until revived.
  void set_permanently_down(bool down);
  bool permanently_down() const;

  // Silently removes the named object from the wrapped store (no error is
  // ever surfaced to the owner). kNotFound if absent.
  Status DestroyObject(std::string_view name);

  // Silently removes a seeded-random `fraction` of the stored objects -
  // what a provider-side data-loss incident looks like from the client.
  // Returns how many objects were destroyed.
  Result<size_t> DestroyRandomObjects(double fraction);

  // Deterministically flips one byte of the named stored object in place
  // (at `byte_index` modulo the object size) - injectable at-rest bit rot
  // for the scrub integrity pass. Bypasses the fault dice like
  // DestroyObject: this models decay at the provider, not a client call.
  // kNotFound if absent, kFailedPrecondition if the object is empty.
  Status RotStoredObject(std::string_view name, size_t byte_index);

  // Faults injected by this instance: current registry totals minus the
  // baseline captured at construction (or the last ResetCounters()), so
  // the numbers stay per-instance even though the underlying instruments
  // are shared, process-lifetime series.
  FaultInjectionCounters counters() const;
  void ResetCounters();

  CloudConnector& inner() { return *inner_; }

 private:
  // Rolls the outage/transient/latency dice for one call; returns the
  // injected failure or OK to forward. Requires mutex_ held.
  Status RollFaults(bool allow_transient);

  // Draws this call's real-sleep duration (0 when disabled). Requires
  // mutex_ held; the caller sleeps after releasing the lock.
  double DrawRealSleepMsLocked();

  // Raw (lifetime) registry values, before baseline subtraction.
  FaultInjectionCounters RawCounters() const;

  mutable std::mutex mutex_;
  std::shared_ptr<CloudConnector> inner_;
  FaultInjectionOptions options_;
  Rng rng_;
  bool down_;
  uint64_t successful_uploads_ = 0;

  // Registry instruments, labeled {csp=<inner id>}. Registered once in the
  // constructor; pointers stay valid for the registry's lifetime.
  obs::Counter* calls_;
  obs::Counter* transient_errors_;
  obs::Counter* outage_errors_;
  obs::Counter* uploads_lost_;
  obs::Counter* objects_destroyed_;
  obs::Counter* downloads_corrupted_;
  obs::Counter* uploads_corrupted_;
  obs::Counter* objects_rotted_;
  obs::Gauge* injected_latency_ms_;
  FaultInjectionCounters baseline_;
};

}  // namespace cyrus

#endif  // SRC_CLOUD_FAULT_INJECTION_H_
