#include "src/cloud/file_csp.h"

#include <fstream>
#include <system_error>

#include "src/util/hex.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

bool IsSafeChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '-' || c == '_' || c == '.';
}

constexpr char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  return -1;
}

}  // namespace

std::string EscapeObjectName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (IsSafeChar(c) && c != '%') {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHexDigits[static_cast<uint8_t>(c) >> 4]);
      out.push_back(kHexDigits[static_cast<uint8_t>(c) & 0x0f]);
    }
  }
  return out;
}

Result<std::string> UnescapeObjectName(std::string_view file_name) {
  std::string out;
  out.reserve(file_name.size());
  for (size_t i = 0; i < file_name.size(); ++i) {
    if (file_name[i] != '%') {
      out.push_back(file_name[i]);
      continue;
    }
    if (i + 2 >= file_name.size()) {
      return InvalidArgumentError("truncated escape in object file name");
    }
    const int hi = HexNibble(file_name[i + 1]);
    const int lo = HexNibble(file_name[i + 2]);
    if (hi < 0 || lo < 0) {
      return InvalidArgumentError("bad escape in object file name");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

Result<std::unique_ptr<FileCsp>> FileCsp::Open(std::string id,
                                               std::filesystem::path root) {
  std::error_code ec;
  if (std::filesystem::exists(root, ec)) {
    if (!std::filesystem::is_directory(root, ec)) {
      return InvalidArgumentError(StrCat(root.string(), " exists and is not a directory"));
    }
  } else {
    std::filesystem::create_directories(root, ec);
    if (ec) {
      return UnavailableError(StrCat("cannot create ", root.string(), ": ", ec.message()));
    }
  }
  return std::unique_ptr<FileCsp>(new FileCsp(std::move(id), std::move(root)));
}

Status FileCsp::Authenticate(const Credentials& credentials) {
  (void)credentials;  // a local directory has no credentials
  return OkStatus();
}

Result<std::vector<ObjectInfo>> FileCsp::List(std::string_view prefix) {
  std::vector<ObjectInfo> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    auto name = UnescapeObjectName(entry.path().filename().string());
    if (!name.ok() || !StartsWith(*name, prefix)) {
      continue;
    }
    ObjectInfo info;
    info.name = *std::move(name);
    info.size = entry.file_size(ec);
    const auto mtime = entry.last_write_time(ec);
    info.modified_time =
        std::chrono::duration<double>(mtime.time_since_epoch()).count();
    out.push_back(std::move(info));
  }
  if (ec) {
    return UnavailableError(StrCat(id_, ": listing failed: ", ec.message()));
  }
  return out;
}

Status FileCsp::Upload(std::string_view name, ByteSpan data) {
  const std::filesystem::path path = root_ / EscapeObjectName(name);
  // Write-then-rename for atomicity against concurrent readers.
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
      return UnavailableError(StrCat(id_, ": cannot open ", tmp.string()));
    }
    file.write(reinterpret_cast<const char*>(data.data()),
               static_cast<std::streamsize>(data.size()));
    if (!file) {
      return UnavailableError(StrCat(id_, ": short write to ", tmp.string()));
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return UnavailableError(StrCat(id_, ": rename failed: ", ec.message()));
  }
  return OkStatus();
}

Result<Bytes> FileCsp::Download(std::string_view name) {
  const std::filesystem::path path = root_ / EscapeObjectName(name);
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return NotFoundError(StrCat(id_, ": no object named ", name));
  }
  Bytes data((std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());
  if (file.bad()) {
    return UnavailableError(StrCat(id_, ": read failed for ", name));
  }
  return data;
}

Status FileCsp::Delete(std::string_view name) {
  const std::filesystem::path path = root_ / EscapeObjectName(name);
  std::error_code ec;
  std::filesystem::remove(path, ec);  // removing a missing file is fine
  if (ec) {
    return UnavailableError(StrCat(id_, ": delete failed: ", ec.message()));
  }
  return OkStatus();
}

}  // namespace cyrus
