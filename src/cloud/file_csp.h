// A CloudConnector persisting objects to a local directory.
//
// The paper notes CYRUS's connector interface is minimal enough that even
// an FTP server qualifies (§3.1); a directory on disk is the simplest such
// provider and makes the CLI tool (examples/cyrus_cli.cpp) genuinely
// usable: point one FileCsp at a NAS mount, another at a USB drive, a third
// at a cloud-synced folder, and CYRUS secret-shares across them. Objects
// are stored one-per-file with percent-escaped names.
#ifndef SRC_CLOUD_FILE_CSP_H_
#define SRC_CLOUD_FILE_CSP_H_

#include <filesystem>
#include <string>

#include "src/cloud/connector.h"

namespace cyrus {

class FileCsp : public CloudConnector {
 public:
  // Creates the directory if missing. Fails if the path exists and is not
  // a directory, or cannot be created.
  static Result<std::unique_ptr<FileCsp>> Open(std::string id,
                                               std::filesystem::path root);

  std::string_view id() const override { return id_; }
  Status Authenticate(const Credentials& credentials) override;
  Result<std::vector<ObjectInfo>> List(std::string_view prefix) override;
  Status Upload(std::string_view name, ByteSpan data) override;
  Result<Bytes> Download(std::string_view name) override;
  Status Delete(std::string_view name) override;

  const std::filesystem::path& root() const { return root_; }

 private:
  FileCsp(std::string id, std::filesystem::path root)
      : id_(std::move(id)), root_(std::move(root)) {}

  std::string id_;
  std::filesystem::path root_;
};

// Object-name <-> file-name escaping ('%', '/' and other characters that
// are unsafe in file names become %XX). Exposed for tests.
std::string EscapeObjectName(std::string_view name);
Result<std::string> UnescapeObjectName(std::string_view file_name);

}  // namespace cyrus

#endif  // SRC_CLOUD_FILE_CSP_H_
