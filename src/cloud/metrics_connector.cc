#include "src/cloud/metrics_connector.h"

#include <chrono>
#include <utility>

#include "src/util/status.h"

namespace cyrus {
namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

}  // namespace

MetricsConnector::MetricsConnector(std::shared_ptr<CloudConnector> inner,
                                   obs::MetricsRegistry* registry)
    : inner_(std::move(inner)),
      registry_(registry != nullptr ? registry : &obs::MetricsRegistry::Default()),
      auth_(MakeInstruments("authenticate")),
      list_(MakeInstruments("list")),
      upload_(MakeInstruments("upload")),
      download_(MakeInstruments("download")),
      delete_(MakeInstruments("delete")) {}

MetricsConnector::OpInstruments MetricsConnector::MakeInstruments(
    std::string_view op) const {
  const std::string csp(inner_->id());
  const std::string op_name(op);
  OpInstruments instruments;
  instruments.ok_calls = registry_->GetCounter(
      "cyrus_csp_ops_total", {{"csp", csp}, {"op", op_name}, {"result", "ok"}},
      "Connector operations by CSP, operation, and result");
  instruments.error_calls = registry_->GetCounter(
      "cyrus_csp_ops_total", {{"csp", csp}, {"op", op_name}, {"result", "error"}},
      "Connector operations by CSP, operation, and result");
  instruments.bytes =
      registry_->GetCounter("cyrus_csp_bytes_total", {{"csp", csp}, {"op", op_name}},
                            "Payload bytes moved on successful operations");
  instruments.latency_ms = registry_->GetHistogram(
      "cyrus_csp_op_latency_ms", {{"csp", csp}, {"op", op_name}}, {},
      "Wall-clock connector call latency in milliseconds");
  return instruments;
}

void MetricsConnector::RecordOutcome(const OpInstruments& instruments,
                                     std::string_view op, const Status& status,
                                     double latency_ms, uint64_t bytes) {
  instruments.latency_ms->Observe(latency_ms);
  if (status.ok()) {
    instruments.ok_calls->Increment();
    if (bytes > 0) {
      instruments.bytes->Increment(bytes);
    }
    return;
  }
  instruments.error_calls->Increment();
  // Error codes arrive only on the failure path, so lazy registration (a
  // mutex hit) costs nothing where it matters.
  registry_
      ->GetCounter("cyrus_csp_errors_total",
                   {{"csp", std::string(inner_->id())},
                    {"op", std::string(op)},
                    {"code", std::string(StatusCodeName(status.code()))}},
                   "Connector failures by CSP, operation, and status code")
      ->Increment();
}

Status MetricsConnector::Authenticate(const Credentials& credentials) {
  const auto start = std::chrono::steady_clock::now();
  Status status = inner_->Authenticate(credentials);
  RecordOutcome(auth_, "authenticate", status, ElapsedMs(start), 0);
  return status;
}

Result<std::vector<ObjectInfo>> MetricsConnector::List(std::string_view prefix) {
  const auto start = std::chrono::steady_clock::now();
  Result<std::vector<ObjectInfo>> result = inner_->List(prefix);
  RecordOutcome(list_, "list", result.status(), ElapsedMs(start), 0);
  return result;
}

Status MetricsConnector::Upload(std::string_view name, ByteSpan data) {
  const auto start = std::chrono::steady_clock::now();
  Status status = inner_->Upload(name, data);
  RecordOutcome(upload_, "upload", status, ElapsedMs(start), data.size());
  return status;
}

Result<Bytes> MetricsConnector::Download(std::string_view name) {
  const auto start = std::chrono::steady_clock::now();
  Result<Bytes> result = inner_->Download(name);
  RecordOutcome(download_, "download", result.status(), ElapsedMs(start),
                result.ok() ? result->size() : 0);
  return result;
}

Status MetricsConnector::Delete(std::string_view name) {
  const auto start = std::chrono::steady_clock::now();
  Status status = inner_->Delete(name);
  RecordOutcome(delete_, "delete", status, ElapsedMs(start), 0);
  return status;
}

}  // namespace cyrus
