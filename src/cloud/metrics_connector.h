// A metrics-recording decorator over any CloudConnector.
//
// Wraps a connector and records, per CSP and operation, into a
// MetricsRegistry:
//   - cyrus_csp_ops_total{csp,op,result}   call counts, result ok|error
//   - cyrus_csp_bytes_total{csp,op}        payload bytes moved (upload =
//                                          bytes sent, download = bytes
//                                          received on success)
//   - cyrus_csp_op_latency_ms{csp,op}      wall-clock latency histogram
//   - cyrus_csp_errors_total{csp,op,code}  failures by status code
//
// Composes freely with other decorators. The intended stack for tests and
// benches is MetricsConnector(FaultInjectingConnector(SimulatedCsp)): the
// metrics layer sits outside the fault layer so every injected error is
// observed exactly like a real provider error would be.
//
// Latency here is the wrapped connector's real compute time. For simulated
// providers the virtual transfer time lives in the flow simulator and the
// fault injector's latency gauge, not in these histograms.
#ifndef SRC_CLOUD_METRICS_CONNECTOR_H_
#define SRC_CLOUD_METRICS_CONNECTOR_H_

#include <memory>
#include <string>

#include "src/cloud/connector.h"
#include "src/obs/metrics.h"

namespace cyrus {

class MetricsConnector : public CloudConnector {
 public:
  // `registry` == nullptr records into MetricsRegistry::Default().
  MetricsConnector(std::shared_ptr<CloudConnector> inner,
                   obs::MetricsRegistry* registry = nullptr);

  // CloudConnector:
  std::string_view id() const override { return inner_->id(); }
  Status Authenticate(const Credentials& credentials) override;
  Result<std::vector<ObjectInfo>> List(std::string_view prefix) override;
  Status Upload(std::string_view name, ByteSpan data) override;
  Result<Bytes> Download(std::string_view name) override;
  Status Delete(std::string_view name) override;

  CloudConnector& inner() { return *inner_; }

 private:
  // One operation's cached instruments: registered once in the
  // constructor, recorded into lock-free afterwards.
  struct OpInstruments {
    obs::Counter* ok_calls;
    obs::Counter* error_calls;
    obs::Counter* bytes;
    obs::Histogram* latency_ms;
  };

  OpInstruments MakeInstruments(std::string_view op) const;
  // Wraps one forwarded call: times it, then files result/bytes/latency.
  // `bytes` counts only on success.
  void RecordOutcome(const OpInstruments& instruments, std::string_view op,
                     const Status& status, double latency_ms, uint64_t bytes);

  std::shared_ptr<CloudConnector> inner_;
  obs::MetricsRegistry* registry_;
  OpInstruments auth_;
  OpInstruments list_;
  OpInstruments upload_;
  OpInstruments download_;
  OpInstruments delete_;
};

}  // namespace cyrus

#endif  // SRC_CLOUD_METRICS_CONNECTOR_H_
