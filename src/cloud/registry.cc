#include "src/cloud/registry.h"

#include <set>

#include "src/util/strings.h"

namespace cyrus {

int CspRegistry::Add(std::shared_ptr<CloudConnector> connector, CspProfile profile) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back(Entry{std::move(connector), profile, CspState::kActive});
  return static_cast<int>(entries_.size()) - 1;
}

size_t CspRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

Status CspRegistry::CheckIndex(int index) const {
  if (index < 0 || static_cast<size_t>(index) >= entries_.size()) {
    return InvalidArgumentError(StrCat("CSP index ", index, " out of range"));
  }
  return OkStatus();
}

Result<CloudConnector*> CspRegistry::connector(int index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  CYRUS_RETURN_IF_ERROR(CheckIndex(index));
  // The pointer stays valid after the lock drops: entries are never erased
  // (removal is a state change) and the connector object is shared-owned.
  return entries_[index].connector.get();
}

Result<CspProfile> CspRegistry::profile(int index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  CYRUS_RETURN_IF_ERROR(CheckIndex(index));
  return entries_[index].profile;
}

Result<CspState> CspRegistry::state(int index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  CYRUS_RETURN_IF_ERROR(CheckIndex(index));
  return entries_[index].state;
}

Result<std::string> CspRegistry::name(int index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  CYRUS_RETURN_IF_ERROR(CheckIndex(index));
  return std::string(entries_[index].connector->id());
}

Status CspRegistry::SetState(int index, CspState state) {
  std::lock_guard<std::mutex> lock(mutex_);
  CYRUS_RETURN_IF_ERROR(CheckIndex(index));
  entries_[index].state = state;
  return OkStatus();
}

Status CspRegistry::SetProfile(int index, CspProfile profile) {
  std::lock_guard<std::mutex> lock(mutex_);
  CYRUS_RETURN_IF_ERROR(CheckIndex(index));
  entries_[index].profile = profile;
  return OkStatus();
}

Result<int> CspRegistry::IndexByName(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].connector->id() == name) {
      return static_cast<int>(i);
    }
  }
  return NotFoundError(StrCat("no CSP account named ", name));
}

std::vector<int> CspRegistry::ActiveIndices() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].state == CspState::kActive) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

size_t CspRegistry::NumActiveClusters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::set<int> clusters;
  size_t unclustered = 0;
  for (const Entry& e : entries_) {
    if (e.state != CspState::kActive) {
      continue;
    }
    if (e.profile.cluster >= 0) {
      clusters.insert(e.profile.cluster);
    } else {
      ++unclustered;
    }
  }
  return clusters.size() + unclustered;
}

}  // namespace cyrus
