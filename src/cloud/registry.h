// The client's view of its CSP accounts (paper §3.2, §5.5).
//
// Each entry couples a connector with a network profile (RTT, up/down
// bandwidth - what the client's local measurements would provide) and a
// platform cluster id from the §4.1 clustering. Entries move between
// active / failed / removed states: failures are detected by upload errors
// and probed periodically; removal triggers lazy share migration in the
// core client.
//
// Thread-safe: the pipelined transfer engine reads states and connectors
// from pool threads while the failover path flips states concurrently.
// Each call is atomic; read-modify-write sequences (e.g. "if active then
// fail") are serialized by the client's topology mutex, not here.
#ifndef SRC_CLOUD_REGISTRY_H_
#define SRC_CLOUD_REGISTRY_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/cloud/connector.h"
#include "src/util/result.h"

namespace cyrus {

struct CspProfile {
  double rtt_ms = 100.0;
  double download_bytes_per_sec = 1e6;
  double upload_bytes_per_sec = 1e6;
  // Platform cluster from routing-tree clustering; CSPs sharing a cluster
  // never hold two shares of one chunk when cluster-aware placement is on.
  int cluster = -1;
};

enum class CspState {
  kActive,
  kFailed,   // temporarily unreachable; probed for recovery
  kRemoved,  // user removed the account; shares migrate lazily
};

class CspRegistry {
 public:
  // Adds a CSP account; returns its stable index.
  int Add(std::shared_ptr<CloudConnector> connector, CspProfile profile);

  size_t size() const;

  Result<CloudConnector*> connector(int index) const;
  Result<CspProfile> profile(int index) const;
  Result<CspState> state(int index) const;
  Result<std::string> name(int index) const;

  Status SetState(int index, CspState state);
  Status SetProfile(int index, CspProfile profile);

  // Indices of CSPs in the active state, ascending.
  std::vector<int> ActiveIndices() const;

  // Registry index of the CSP whose connector id equals `name`, regardless
  // of state; kNotFound if this client has no such account. Used to remap
  // metadata written by other clients (registry indices are client-local).
  Result<int> IndexByName(std::string_view name) const;

  // Number of distinct platform clusters among active CSPs (unclustered
  // CSPs count individually). This caps n when cluster-aware placement is
  // enabled (paper §4.1: at most one share per cluster).
  size_t NumActiveClusters() const;

 private:
  struct Entry {
    std::shared_ptr<CloudConnector> connector;
    CspProfile profile;
    CspState state = CspState::kActive;
  };

  // Requires mutex_ held.
  Status CheckIndex(int index) const;

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

}  // namespace cyrus

#endif  // SRC_CLOUD_REGISTRY_H_
