#include "src/cloud/simulated_csp.h"

#include "src/util/strings.h"

namespace cyrus {

SimulatedCsp::SimulatedCsp(SimulatedCspOptions options) : options_(std::move(options)) {}

Status SimulatedCsp::CheckUp() const {
  if (!available_) {
    return UnavailableError(StrCat(options_.id, " is unreachable"));
  }
  if (!authenticated_) {
    return PermissionDeniedError(StrCat(options_.id, ": not authenticated"));
  }
  return OkStatus();
}

Status SimulatedCsp::Authenticate(const Credentials& credentials) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!available_) {
    ++counters_.failed_requests;
    return UnavailableError(StrCat(options_.id, " is unreachable"));
  }
  if (credentials.token != options_.expected_token) {
    return PermissionDeniedError(StrCat(options_.id, ": bad token"));
  }
  authenticated_ = true;
  return OkStatus();
}

Result<std::vector<ObjectInfo>> SimulatedCsp::List(std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Status s = CheckUp(); !s.ok()) {
    ++counters_.failed_requests;
    return s;
  }
  ++counters_.lists;
  std::vector<ObjectInfo> out;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (!StartsWith(it->first, prefix)) {
      break;
    }
    // Id-keyed providers report one row per stored object, so a name
    // uploaded twice shows up twice (the heterogeneity in paper §3.1).
    for (const StoredObject& version : it->second) {
      out.push_back(ObjectInfo{it->first, version.data.size(), version.modified_time});
    }
  }
  return out;
}

Status SimulatedCsp::Upload(std::string_view name, ByteSpan data) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Status s = CheckUp(); !s.ok()) {
    ++counters_.failed_requests;
    return s;
  }
  auto& versions = objects_[std::string(name)];
  uint64_t delta = data.size();
  if (options_.naming == NamingPolicy::kNameKeyed && !versions.empty()) {
    delta = data.size() >= versions.back().data.size()
                ? data.size() - versions.back().data.size()
                : 0;
  }
  if (options_.quota_bytes > 0 && used_bytes_ + delta > options_.quota_bytes) {
    if (versions.empty()) {
      objects_.erase(std::string(name));
    }
    return ResourceExhaustedError(StrCat(options_.id, ": quota exceeded"));
  }

  StoredObject object;
  object.data.assign(data.begin(), data.end());
  object.modified_time = now_;
  if (options_.naming == NamingPolicy::kNameKeyed && !versions.empty()) {
    used_bytes_ -= versions.back().data.size();
    versions.back() = std::move(object);
  } else {
    versions.push_back(std::move(object));
  }
  used_bytes_ += data.size();
  ++counters_.uploads;
  counters_.bytes_uploaded += data.size();
  return OkStatus();
}

Result<Bytes> SimulatedCsp::Download(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Status s = CheckUp(); !s.ok()) {
    ++counters_.failed_requests;
    return s;
  }
  auto it = objects_.find(std::string(name));
  if (it == objects_.end() || it->second.empty()) {
    return NotFoundError(StrCat(options_.id, ": no object named ", name));
  }
  ++counters_.downloads;
  counters_.bytes_downloaded += it->second.back().data.size();
  return it->second.back().data;
}

Status SimulatedCsp::Delete(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (Status s = CheckUp(); !s.ok()) {
    ++counters_.failed_requests;
    return s;
  }
  ++counters_.deletes;
  auto it = objects_.find(std::string(name));
  if (it == objects_.end()) {
    return OkStatus();  // idempotent
  }
  for (const StoredObject& version : it->second) {
    used_bytes_ -= version.data.size();
  }
  objects_.erase(it);
  return OkStatus();
}

Status SimulatedCsp::CorruptObject(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = objects_.find(std::string(name));
  if (it == objects_.end() || it->second.empty()) {
    return NotFoundError(StrCat(options_.id, ": no object named ", name));
  }
  for (StoredObject& version : it->second) {
    for (size_t i = 0; i < version.data.size(); i += 7) {
      version.data[i] ^= 0x5A;
    }
  }
  return OkStatus();
}

uint64_t SimulatedCsp::object_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t count = 0;
  for (const auto& [name, versions] : objects_) {
    count += versions.size();
  }
  return count;
}

}  // namespace cyrus
