// An in-memory simulated cloud storage provider.
//
// Substitutes for the commercial CSPs of the paper's prototype while
// preserving the semantics CYRUS's design actually depends on:
//   - naming policy: name-keyed stores (Dropbox-style) overwrite an object
//     uploaded under an existing name; id-keyed stores (Google-Drive-style)
//     keep both, and List then shows duplicate names (paper §3.1);
//   - no locking primitives;
//   - quotas (kResourceExhausted once exceeded);
//   - outages (kUnavailable while down) for reliability experiments;
//   - token authentication;
//   - request/byte counters, which the benchmarks read (e.g. Figure 18's
//     shares-per-CSP counts).
#ifndef SRC_CLOUD_SIMULATED_CSP_H_
#define SRC_CLOUD_SIMULATED_CSP_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/cloud/connector.h"

namespace cyrus {

enum class NamingPolicy {
  kNameKeyed,  // upload to an existing name overwrites (Dropbox-like)
  kIdKeyed,    // upload always creates a new object (Google-Drive-like)
};

struct SimulatedCspOptions {
  std::string id;
  NamingPolicy naming = NamingPolicy::kNameKeyed;
  std::string expected_token = "token";
  uint64_t quota_bytes = 0;  // 0 = unlimited
};

struct CspCounters {
  uint64_t uploads = 0;
  uint64_t downloads = 0;
  uint64_t lists = 0;
  uint64_t deletes = 0;
  uint64_t failed_requests = 0;  // rejected while unavailable
  uint64_t bytes_uploaded = 0;
  uint64_t bytes_downloaded = 0;
};

class SimulatedCsp : public CloudConnector {
 public:
  explicit SimulatedCsp(SimulatedCspOptions options);

  // CloudConnector:
  std::string_view id() const override { return options_.id; }
  Status Authenticate(const Credentials& credentials) override;
  Result<std::vector<ObjectInfo>> List(std::string_view prefix) override;
  Status Upload(std::string_view name, ByteSpan data) override;
  Result<Bytes> Download(std::string_view name) override;
  Status Delete(std::string_view name) override;

  // --- Simulation controls (not part of the connector surface) ---

  // Takes the provider down / brings it back; while down every operation
  // fails with kUnavailable.
  void set_available(bool available) {
    std::lock_guard<std::mutex> lock(mutex_);
    available_ = available;
  }
  bool available() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return available_;
  }

  // Virtual timestamp applied to subsequently stored objects.
  void set_time(double now) {
    std::lock_guard<std::mutex> lock(mutex_);
    now_ = now;
  }

  // Flips bytes of a stored object in place (bit rot / tampering injection
  // for error-correction tests). kNotFound if absent.
  Status CorruptObject(std::string_view name);

  uint64_t used_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return used_bytes_;
  }
  uint64_t object_count() const;
  CspCounters counters() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
  }
  void ResetCounters() {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_ = CspCounters{};
  }

 private:
  struct StoredObject {
    Bytes data;
    double modified_time = 0.0;
  };

  // Requires mutex_ held.
  Status CheckUp() const;

  // Connectors are called from the client's transfer thread pool; all
  // state is guarded by one mutex (an in-memory store has no slow path
  // worth finer locking).
  mutable std::mutex mutex_;
  SimulatedCspOptions options_;
  bool authenticated_ = false;
  bool available_ = true;
  double now_ = 0.0;
  uint64_t used_bytes_ = 0;
  CspCounters counters_;
  // name -> versions (newest last). Name-keyed stores keep one version.
  std::map<std::string, std::vector<StoredObject>, std::less<>> objects_;
};

}  // namespace cyrus

#endif  // SRC_CLOUD_SIMULATED_CSP_H_
