#include "src/core/chunk_cache.h"

#include <algorithm>
#include <utility>

namespace cyrus {

ChunkCache::ChunkCache(ChunkCacheOptions options) : options_(options) {
  const size_t shard_count = std::max<size_t>(options_.shards, 1);
  shard_budget_ = options_.byte_budget / shard_count;
  shards_ = std::vector<Shard>(shard_count);

  obs::MetricsRegistry* metrics = options_.metrics != nullptr
                                      ? options_.metrics
                                      : &obs::MetricsRegistry::Default();
  hits_ = metrics->GetCounter("cyrus_chunk_cache_hits_total", {},
                              "Range/Get chunks served from the decoded-chunk cache");
  misses_ = metrics->GetCounter("cyrus_chunk_cache_misses_total", {},
                                "Chunk cache lookups that fell through to the CSPs");
  evictions_ = metrics->GetCounter("cyrus_chunk_cache_evictions_total", {},
                                   "Resident chunks evicted by the ARC policy");
  bytes_gauge_ = metrics->GetGauge("cyrus_chunk_cache_bytes", {},
                                   "Resident decoded plaintext bytes");
}

std::shared_ptr<const Bytes> ChunkCache::Get(const Sha1Digest& id) {
  if (!enabled()) {
    misses_->Increment();
    return nullptr;
  }
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(id);
  if (it == shard.index.end() || it->second.list == ListId::kB1 ||
      it->second.list == ListId::kB2) {
    misses_->Increment();
    return nullptr;
  }
  Locator& loc = it->second;
  std::shared_ptr<const Bytes> data = loc.it->data;
  // ARC: any resident hit promotes to the MRU end of T2 (seen >= twice).
  EntryList& from = loc.list == ListId::kT1 ? shard.t1 : shard.t2;
  if (loc.list == ListId::kT1) {
    shard.t1_bytes -= loc.it->size;
    shard.t2_bytes += loc.it->size;
  }
  shard.t2.splice(shard.t2.begin(), from, loc.it);
  loc.list = ListId::kT2;
  loc.it = shard.t2.begin();
  hits_->Increment();
  return data;
}

std::shared_ptr<const Bytes> ChunkCache::Peek(const Sha1Digest& id) const {
  if (!enabled()) {
    return nullptr;
  }
  const Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(id);
  if (it == shard.index.end() || it->second.list == ListId::kB1 ||
      it->second.list == ListId::kB2) {
    return nullptr;
  }
  return it->second.it->data;
}

void ChunkCache::Replace(Shard& shard, uint64_t need, bool ghost_hit_b2) {
  while (shard.t1_bytes + shard.t2_bytes + need > shard_budget_) {
    if (shard.t1.empty() && shard.t2.empty()) {
      break;  // `need` alone exceeds the budget; caller skips the insert
    }
    // ARC's REPLACE: evict from T1 while it exceeds the target p (a B2
    // ghost hit breaks the tie toward T1, making room on the frequency
    // side); otherwise from T2. Victims become ghosts so a re-reference
    // can still teach the adaptation.
    const bool from_t1 =
        !shard.t1.empty() &&
        (shard.t2.empty() || shard.t1_bytes > shard.p ||
         (ghost_hit_b2 && shard.t1_bytes == shard.p));
    EntryList& list = from_t1 ? shard.t1 : shard.t2;
    EntryList& ghosts = from_t1 ? shard.b1 : shard.b2;
    auto victim = std::prev(list.end());
    const uint64_t size = victim->size;
    victim->data.reset();
    ghosts.splice(ghosts.begin(), list, victim);
    Locator& loc = shard.index.at(victim->id);
    loc.list = from_t1 ? ListId::kB1 : ListId::kB2;
    loc.it = ghosts.begin();
    if (from_t1) {
      shard.t1_bytes -= size;
      shard.b1_bytes += size;
    } else {
      shard.t2_bytes -= size;
      shard.b2_bytes += size;
    }
    evictions_->Increment();
    bytes_gauge_->Add(-static_cast<double>(size));
  }
  TrimGhosts(shard, shard.b1, shard.b1_bytes);
  TrimGhosts(shard, shard.b2, shard.b2_bytes);
}

void ChunkCache::TrimGhosts(Shard& shard, EntryList& list, uint64_t& bytes) {
  while (bytes > shard_budget_ && !list.empty()) {
    auto victim = std::prev(list.end());
    bytes -= victim->size;
    shard.index.erase(victim->id);
    list.erase(victim);
  }
}

void ChunkCache::Put(const Sha1Digest& id, std::shared_ptr<const Bytes> data) {
  if (!enabled() || data == nullptr) {
    return;
  }
  const uint64_t size = data->size();
  if (size == 0 || size > shard_budget_) {
    return;  // oversized entries would monopolize the shard
  }
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(id);
  if (it != shard.index.end()) {
    Locator& loc = it->second;
    const bool ghost_hit_b2 = loc.list == ListId::kB2;
    switch (loc.list) {
      case ListId::kT1:
      case ListId::kT2: {
        // Already resident: a re-insert is a second reference - promote,
        // keep the existing bytes (they hash to the same id by contract).
        EntryList& from = loc.list == ListId::kT1 ? shard.t1 : shard.t2;
        if (loc.list == ListId::kT1) {
          shard.t1_bytes -= loc.it->size;
          shard.t2_bytes += loc.it->size;
        }
        shard.t2.splice(shard.t2.begin(), from, loc.it);
        loc.list = ListId::kT2;
        loc.it = shard.t2.begin();
        return;
      }
      case ListId::kB1: {
        // Ghost hit in B1: recency would have kept it - grow p. The delta
        // is byte-weighted: an entry's worth of budget, scaled up when B2
        // dwarfs B1 (the standard |B2|/|B1| rule).
        const uint64_t delta =
            shard.b1_bytes >= shard.b2_bytes || shard.b1_bytes == 0
                ? size
                : size * (shard.b2_bytes / shard.b1_bytes);
        shard.p = std::min(shard_budget_, shard.p + delta);
        shard.b1_bytes -= loc.it->size;
        shard.b1.erase(loc.it);
        shard.index.erase(it);
        break;
      }
      case ListId::kB2: {
        const uint64_t delta =
            shard.b2_bytes >= shard.b1_bytes || shard.b2_bytes == 0
                ? size
                : size * (shard.b1_bytes / shard.b2_bytes);
        shard.p = shard.p > delta ? shard.p - delta : 0;
        shard.b2_bytes -= loc.it->size;
        shard.b2.erase(loc.it);
        shard.index.erase(it);
        break;
      }
    }
    // A ghost hit re-enters as a *frequent* entry (it was referenced,
    // evicted, referenced again): straight into T2.
    Replace(shard, size, ghost_hit_b2);
    shard.t2.push_front(Entry{id, std::move(data), size});
    shard.t2_bytes += size;
    shard.index[id] = Locator{ListId::kT2, shard.t2.begin()};
    bytes_gauge_->Add(static_cast<double>(size));
    return;
  }

  // Brand-new entry. Standard ARC case IV, byte-weighted: when the
  // recency side (T1 + B1) is at budget, recycle B1 ghosts first; when
  // the whole directory is at twice the budget, recycle B2 ghosts.
  if (shard.t1_bytes + shard.b1_bytes + size > shard_budget_) {
    while (!shard.b1.empty() &&
           shard.t1_bytes + shard.b1_bytes + size > shard_budget_) {
      auto victim = std::prev(shard.b1.end());
      shard.b1_bytes -= victim->size;
      shard.index.erase(victim->id);
      shard.b1.erase(victim);
    }
  } else {
    const uint64_t directory = shard.t1_bytes + shard.t2_bytes +
                               shard.b1_bytes + shard.b2_bytes;
    while (!shard.b2.empty() && directory + size > 2 * shard_budget_ &&
           shard.b2_bytes > 0) {
      auto victim = std::prev(shard.b2.end());
      shard.b2_bytes -= victim->size;
      shard.index.erase(victim->id);
      shard.b2.erase(victim);
      break;  // one entry per insert, like the unit-cost algorithm
    }
  }
  Replace(shard, size, /*ghost_hit_b2=*/false);
  if (shard.t1_bytes + shard.t2_bytes + size > shard_budget_) {
    return;  // could not make room (budget smaller than the entry)
  }
  shard.t1.push_front(Entry{id, std::move(data), size});
  shard.t1_bytes += size;
  shard.index[id] = Locator{ListId::kT1, shard.t1.begin()};
  bytes_gauge_->Add(static_cast<double>(size));
}

void ChunkCache::EraseLocked(Shard& shard, const Sha1Digest& id) {
  auto it = shard.index.find(id);
  if (it == shard.index.end()) {
    return;
  }
  const Locator loc = it->second;
  const uint64_t size = loc.it->size;
  switch (loc.list) {
    case ListId::kT1:
      shard.t1_bytes -= size;
      shard.t1.erase(loc.it);
      bytes_gauge_->Add(-static_cast<double>(size));
      break;
    case ListId::kT2:
      shard.t2_bytes -= size;
      shard.t2.erase(loc.it);
      bytes_gauge_->Add(-static_cast<double>(size));
      break;
    case ListId::kB1:
      shard.b1_bytes -= size;
      shard.b1.erase(loc.it);
      break;
    case ListId::kB2:
      shard.b2_bytes -= size;
      shard.b2.erase(loc.it);
      break;
  }
  shard.index.erase(it);
}

void ChunkCache::Invalidate(const Sha1Digest& id) {
  if (!enabled()) {
    return;
  }
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  EraseLocked(shard, id);
}

void ChunkCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    bytes_gauge_->Add(
        -static_cast<double>(shard.t1_bytes + shard.t2_bytes));
    shard.t1.clear();
    shard.t2.clear();
    shard.b1.clear();
    shard.b2.clear();
    shard.index.clear();
    shard.t1_bytes = shard.t2_bytes = shard.b1_bytes = shard.b2_bytes = 0;
    shard.p = 0;
  }
}

ChunkCache::Stats ChunkCache::stats() const {
  Stats stats;
  stats.hits = hits_->value();
  stats.misses = misses_->value();
  stats.evictions = evictions_->value();
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.t1_bytes += shard.t1_bytes;
    stats.t2_bytes += shard.t2_bytes;
    stats.entries += shard.t1.size() + shard.t2.size();
    stats.ghost_entries += shard.b1.size() + shard.b2.size();
  }
  stats.bytes = stats.t1_bytes + stats.t2_bytes;
  return stats;
}

}  // namespace cyrus
