// A byte-budgeted, sharded ARC cache over decoded chunk plaintext.
//
// Range reads turn the access pattern from "whole file, once" into "hot
// ranges, repeatedly": a streaming client re-reads the same chunks across
// seeks, and many readers share a working set. Caching *decoded plaintext*
// (not shares) means a hit skips the CSPs, the RS decode, and the hash
// check entirely - the chunk id IS the SHA-1 of the cached bytes, so an
// entry can never serve wrong data, only stale-but-identical data.
//
// Eviction is ARC (Adaptive Replacement Cache), adapted to byte-weighted
// entries: two resident lists (T1 = seen once, T2 = seen twice) plus two
// ghost lists (B1/B2) remembering recently evicted ids. A ghost hit shifts
// the adaptation target p toward the list that would have kept the entry,
// so the cache balances recency against frequency by itself - a one-shot
// sequential scan cannot flush the frequently re-read chunks in T2,
// which is exactly the failure mode a plain LRU has under streaming.
//
// Sharded by chunk-id prefix: readers on different pool threads hit
// different mutexes. Values are shared_ptr<const Bytes>, so a reader keeps
// its chunk alive even if the entry is evicted mid-read, and inserting a
// decoded chunk is a pointer copy, not a byte copy.
//
// Ownership vs BufferPool (see DESIGN.md "Streaming & range reads"): the
// BufferPool recycles *transient* encode/decode scratch whose lifetime
// ends with the operation; the chunk cache owns *resident* plaintext with
// open-ended lifetime. The two never exchange storage - a pooled buffer
// handed to the cache would pin pool capacity forever.
#ifndef SRC_CORE_CHUNK_CACHE_H_
#define SRC_CORE_CHUNK_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/crypto/sha1.h"
#include "src/obs/metrics.h"
#include "src/util/bytes.h"

namespace cyrus {

struct ChunkCacheOptions {
  // Total resident plaintext budget across all shards. 0 disables the
  // cache (every Get misses, Put is a no-op).
  uint64_t byte_budget = 64ull << 20;
  // Lock shards; rounded up to at least 1. Chunk ids are uniform (SHA-1),
  // so shard load balances without any placement logic.
  size_t shards = 8;
  // Metrics sink; nullptr selects the process-wide default registry.
  obs::MetricsRegistry* metrics = nullptr;
};

class ChunkCache {
 public:
  explicit ChunkCache(ChunkCacheOptions options);

  ChunkCache(const ChunkCache&) = delete;
  ChunkCache& operator=(const ChunkCache&) = delete;

  // The cached plaintext of `id`, or nullptr on a miss. A hit promotes the
  // entry to the frequent list (T2) per ARC.
  std::shared_ptr<const Bytes> Get(const Sha1Digest& id);

  // Like Get but records no hit/miss metrics and performs no promotion;
  // for "would this be served from cache" decisions (duplicate fill,
  // readahead skip) that should not distort the ARC state.
  std::shared_ptr<const Bytes> Peek(const Sha1Digest& id) const;

  // Inserts decoded plaintext under `id`. `data` must hash to `id` (the
  // caller just verified that in GatherChunk); the cache trusts it.
  // Entries larger than a shard's budget are not cached. Re-inserting a
  // resident id refreshes its position but keeps the existing bytes.
  void Put(const Sha1Digest& id, std::shared_ptr<const Bytes> data);

  // Drops `id` from resident and ghost lists (overwrite/delete released
  // the chunk). No-op when absent.
  void Invalidate(const Sha1Digest& id);

  // Drops every entry (tests).
  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t bytes = 0;       // resident plaintext (T1 + T2)
    uint64_t entries = 0;     // resident entry count
    uint64_t t1_bytes = 0;    // recency list
    uint64_t t2_bytes = 0;    // frequency list
    uint64_t ghost_entries = 0;  // B1 + B2
  };
  Stats stats() const;

  uint64_t byte_budget() const { return options_.byte_budget; }
  bool enabled() const { return options_.byte_budget > 0; }

 private:
  // Which list an id currently lives on.
  enum class ListId : uint8_t { kT1, kT2, kB1, kB2 };

  struct Entry {
    Sha1Digest id;
    std::shared_ptr<const Bytes> data;  // null for ghosts
    uint64_t size = 0;                  // plaintext bytes (kept for ghosts)
  };

  using EntryList = std::list<Entry>;

  struct Locator {
    ListId list;
    EntryList::iterator it;
  };

  // One ARC instance; guarded by `mutex`.
  struct Shard {
    mutable std::mutex mutex;
    EntryList t1, t2, b1, b2;
    std::unordered_map<Sha1Digest, Locator, Sha1DigestHash> index;
    uint64_t t1_bytes = 0, t2_bytes = 0, b1_bytes = 0, b2_bytes = 0;
    uint64_t p = 0;  // adaptation target for t1_bytes, in [0, budget]
  };

  Shard& shard_for(const Sha1Digest& id) {
    return shards_[static_cast<size_t>(id.Prefix64() % shards_.size())];
  }
  const Shard& shard_for(const Sha1Digest& id) const {
    return shards_[static_cast<size_t>(id.Prefix64() % shards_.size())];
  }

  // Evicts the ARC-chosen victim from T1 or T2 into its ghost list until
  // `need` more resident bytes fit under the shard budget. `ghost_hit_b2`
  // biases the boundary case toward evicting T1 (the standard ARC
  // REPLACE tie-break). Requires the shard lock.
  void Replace(Shard& shard, uint64_t need, bool ghost_hit_b2);
  // Trims a ghost list to the shard budget. Requires the shard lock.
  void TrimGhosts(Shard& shard, EntryList& list, uint64_t& bytes);
  void EraseLocked(Shard& shard, const Sha1Digest& id);

  uint64_t shard_budget() const { return shard_budget_; }

  ChunkCacheOptions options_;
  uint64_t shard_budget_ = 0;
  std::vector<Shard> shards_;

  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Gauge* bytes_gauge_ = nullptr;
};

}  // namespace cyrus

#endif  // SRC_CORE_CHUNK_CACHE_H_
