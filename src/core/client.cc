#include "src/core/client.h"

#include <algorithm>
#include <chrono>
#include <list>
#include <map>
#include <set>

#include "src/core/reliability.h"
#include "src/crypto/naming.h"
#include "src/meta/serialize.h"
#include "src/rs/secret_sharing.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

// Decoding only needs dispersal-matrix rows up to the highest share index;
// rows are a deterministic prefix for fixed (key, t), so a decoder built
// with the maximum n can decode shares produced under any stored n.
constexpr uint32_t kMaxShares = 255;

// Wraps payload bytes in a length-prefixed envelope so the secret-sharing
// padding can be trimmed without tracking the exact plaintext size.
Bytes WrapEnvelope(ByteSpan payload) {
  BinaryWriter w;
  w.WriteU32(static_cast<uint32_t>(payload.size()));
  Bytes out = w.TakeData();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Result<Bytes> UnwrapEnvelope(ByteSpan envelope) {
  BinaryReader r(envelope);
  CYRUS_ASSIGN_OR_RETURN(uint32_t len, r.ReadU32());
  if (len > r.remaining()) {
    return DataLossError("metadata envelope length exceeds payload");
  }
  return Bytes(envelope.begin() + 4, envelope.begin() + 4 + len);
}

// Metadata share object name: "<base>.<index>.<generation>".
//
// The index must be recoverable by other clients; unlike chunk shares,
// metadata shares embed it in the name (confidentiality still requires
// meta_t shares from distinct CSPs plus the user's key string).
//
// The generation tags which *rewrite* of the metadata a share belongs to:
// a version's metadata is republished after share migration, and a CSP
// that was unreachable during the republish still holds a share of the old
// plaintext. Mixing generations would decode garbage, so readers group
// shares by generation and decode within one.
std::string MetaShareName(const std::string& base, uint32_t index,
                          std::string_view generation) {
  return StrCat(base, ".", index, ".", generation);
}

// Short content tag for a metadata envelope (8 hex chars).
std::string MetaGeneration(ByteSpan envelope) {
  return Sha1::Hash(envelope).ToHex().substr(0, 8);
}

// Observes the enclosing scope's wall time into a latency histogram on
// every exit path, error returns included.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(obs::Histogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  LatencyRecorder(const LatencyRecorder&) = delete;
  LatencyRecorder& operator=(const LatencyRecorder&) = delete;
  ~LatencyRecorder() {
    histogram_->Observe(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start_)
                            .count());
  }

 private:
  obs::Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

// Parses "<base>.<index>.<generation>"; returns false for other names.
bool ParseMetaShareName(std::string_view object, std::string* base, uint32_t* index,
                        std::string* generation) {
  const size_t gen_dot = object.rfind('.');
  if (gen_dot == std::string_view::npos || gen_dot + 1 >= object.size()) {
    return false;
  }
  const size_t idx_dot = object.rfind('.', gen_dot - 1);
  if (idx_dot == std::string_view::npos || idx_dot + 1 >= gen_dot) {
    return false;
  }
  uint32_t value = 0;
  for (size_t i = idx_dot + 1; i < gen_dot; ++i) {
    if (object[i] < '0' || object[i] > '9') {
      return false;
    }
    value = value * 10 + static_cast<uint32_t>(object[i] - '0');
  }
  *base = std::string(object.substr(0, idx_dot));
  *index = value;
  *generation = std::string(object.substr(gen_dot + 1));
  return true;
}

// Live (undeleted) heads of `name`, newest-winner first in *winner; fails
// with NotFound when none exist. Shared by Get and GetRange.
Result<const FileVersion*> NewestLiveHead(const VersionTree& tree,
                                          std::string_view name,
                                          std::vector<const FileVersion*>* live) {
  live->clear();
  for (const FileVersion* head : tree.Heads(name)) {
    if (!head->deleted) {
      live->push_back(head);
    }
  }
  if (live->empty()) {
    return NotFoundError(StrCat("no live version of ", name));
  }
  const FileVersion* newest = live->front();
  for (const FileVersion* head : *live) {
    if (head->modified_time > newest->modified_time ||
        (head->modified_time == newest->modified_time && head->id > newest->id)) {
      newest = head;
    }
  }
  return newest;
}

// Marks a multi-head name's result as conflicted (paper §5.4).
void AnnotateConflicts(const std::vector<const FileVersion*>& live,
                       std::string_view name, GetResult& result) {
  if (live.size() < 2) {
    return;
  }
  result.had_conflicts = true;
  bool all_roots = true;
  std::vector<Sha1Digest> ids;
  for (const FileVersion* head : live) {
    all_roots &= IsNullDigest(head->prev_id);
    ids.push_back(head->id);
  }
  result.conflicts.push_back(Conflict{
      all_roots ? ConflictType::kSameName : ConflictType::kDivergedVersions,
      std::string(name), std::move(ids)});
}

// Copies the per-share digests stored on chunk-table/ShareIndex rows into a
// ChunkRecord's authentication list (one entry per distinct share index).
void AdoptShareDigests(const std::vector<ChunkShare>& shares, ChunkRecord& record) {
  for (const ChunkShare& s : shares) {
    if (s.has_digest() && record.FindShareDigest(s.share_index) == nullptr) {
      record.SetShareDigest(s.share_index, s.digest);
    }
  }
}

// The digest recorded for `share_index`, or null when the scatter produced
// none for it.
const Sha1Digest* DigestForIndex(const std::vector<ShareDigest>& digests,
                                 uint32_t share_index) {
  for (const ShareDigest& sd : digests) {
    if (sd.share_index == share_index) {
      return &sd.digest;
    }
  }
  return nullptr;
}

}  // namespace

CyrusClient::CyrusClient(CyrusConfig config, Chunker chunker)
    : config_(std::move(config)),
      deriver_(config_.dedup_salt, config_.key_string),
      chunker_(std::move(chunker)),
      ring_(config_.ring_virtual_points),
      chunk_cache_(ChunkCacheOptions{config_.chunk_cache_bytes,
                                     config_.chunk_cache_shards,
                                     config_.metrics}),
      selector_(std::make_unique<OptimalDownloadSelector>()) {
  if (config_.transfer_concurrency > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.transfer_concurrency);
  }
  metrics_ = config_.metrics != nullptr ? config_.metrics : &obs::MetricsRegistry::Default();
  if (config_.hedge.enabled) {
    HedgeOptions hedge = config_.hedge;
    if (hedge.metrics == nullptr) {
      hedge.metrics = metrics_;
    }
    // Every in-flight GatherChunk blocks a transfer worker inside Fetch()
    // while its t primaries (plus any backups) run here, so the pool must
    // hold roughly concurrency * (t + hedges) downloads at once. Undersize
    // it and primaries queue behind a slow CSP's transfers: the queue wait
    // counts against hedge deadlines, and backups stack up behind the very
    // stragglers they were launched to cover. Threads are cheap - they
    // spend their lives blocked in connector I/O.
    hedge_pool_ = std::make_unique<ThreadPool>(std::max<uint32_t>(
        config_.transfer_concurrency *
            (config_.t + static_cast<uint32_t>(hedge.max_hedges)),
        2));
    fetcher_ = std::make_unique<HedgedFetcher>(hedge, hedge_pool_.get(), &monitor_);
  }
  RepairContext repair_context;
  repair_context.key_string = &config_.key_string;
  repair_context.registry = &registry_;
  repair_context.ring = &ring_;
  repair_context.chunk_table = &chunk_table_;
  repair_context.monitor = &monitor_;
  repair_context.pool = pool_.get();
  repair_context.buffers = config_.use_buffer_pool ? &codec_buffers_ : nullptr;
  repair_context.cluster_aware = config_.cluster_aware;
  repair_context.t = config_.t;
  repair_context.now = [this] { return now(); };
  repair_context.mark_csp_failed = [this](int csp) { return MarkCspFailed(csp); };
  repair_context.current_n = [this] { return CurrentN(); };
  // Convergent chunks decode under their unwrapped content key; the repair
  // engine resolves per-chunk keys through this callback so it can rebuild
  // both kinds. The share index (nullable) additionally enables its
  // orphan-reclaim GC pass.
  repair_context.share_index = config_.share_index;
  repair_context.chunk_key = [this](const Sha1Digest& chunk_id,
                                    const ChunkEntry& entry) -> Result<std::string> {
    if (!entry.dedup) {
      return config_.key_string;
    }
    return deriver_.UnwrapForUser(entry.wrapped_key, chunk_id);
  };

  traces_ = config_.traces != nullptr ? config_.traces : &obs::TraceCollector::Default();
  repair_context.metrics = metrics_;
  repair_ = std::make_unique<RepairEngine>(std::move(repair_context), config_.repair);

  puts_total_ = metrics_->GetCounter("cyrus_client_puts_total", {},
                                     "Put operations attempted");
  gets_total_ = metrics_->GetCounter("cyrus_client_gets_total", {},
                                     "Get/GetVersion operations attempted");
  chunks_scattered_ = metrics_->GetCounter("cyrus_client_chunks_scattered_total", {},
                                           "Chunks encoded and uploaded by Put");
  chunks_deduped_ = metrics_->GetCounter("cyrus_client_chunks_deduped_total", {},
                                         "Put chunks served from the chunk table");
  chunks_gathered_ = metrics_->GetCounter("cyrus_client_chunks_gathered_total", {},
                                          "Chunks downloaded and decoded by Get");
  shares_migrated_ = metrics_->GetCounter("cyrus_client_shares_migrated_total", {},
                                          "Share locations lazily migrated by Get");
  codec_creates_ = metrics_->GetCounter("cyrus_client_codec_creates_total", {},
                                        "Secret-sharing codecs constructed for "
                                        "chunk scatter (one per Put, not per chunk)");
  range_gets_total_ = metrics_->GetCounter("cyrus_client_range_gets_total", {},
                                           "GetRange operations attempted");
  readahead_issued_ = metrics_->GetCounter("cyrus_readahead_issued_total", {},
                                           "Chunk prefetches handed to the pool");
  readahead_completed_ = metrics_->GetCounter(
      "cyrus_readahead_completed_total", {},
      "Prefetched chunks decoded, verified, and cached");
  readahead_cancelled_ = metrics_->GetCounter(
      "cyrus_readahead_cancelled_total", {},
      "Prefetches credited back because the reader seeked (or the fetch "
      "failed) before they ran");
  integrity_failures_ = metrics_->GetCounter(
      "cyrus_integrity_rejected_shares_total", {},
      "Share downloads discarded before decode because the bytes failed "
      "digest authentication (per-CSP attribution is in the labeled "
      "cyrus_integrity_failures_total series)");
  integrity_shares_healed_ = metrics_->GetCounter(
      "cyrus_integrity_shares_healed_total", {},
      "Corrupt shares overwritten in place with freshly re-encoded bytes "
      "after a gather identified them");
  integrity_records_upgraded_ = metrics_->GetCounter(
      "cyrus_integrity_records_upgraded_total", {},
      "Legacy (pre-digest) chunk records upgraded with per-share digests "
      "derived on first read");
  put_latency_ms_ = metrics_->GetHistogram("cyrus_client_put_latency_ms", {}, {},
                                           "End-to-end Put pipeline wall time");
  get_latency_ms_ = metrics_->GetHistogram("cyrus_client_get_latency_ms", {}, {},
                                           "End-to-end Get pipeline wall time");
}

Result<std::unique_ptr<CyrusClient>> CyrusClient::Create(CyrusConfig config) {
  if (config.t < 1) {
    return InvalidArgumentError("privacy parameter t must be >= 1");
  }
  if (config.meta_t < 1) {
    return InvalidArgumentError("metadata threshold meta_t must be >= 1");
  }
  if (config.epsilon <= 0.0 || config.epsilon >= 1.0) {
    return InvalidArgumentError("epsilon must be in (0, 1)");
  }
  if (config.key_string.empty()) {
    return InvalidArgumentError("key string must not be empty");
  }
  if (config.pipeline_window_chunks < 1) {
    return InvalidArgumentError("pipeline_window_chunks must be >= 1");
  }
  if (config.put_failure_budget >= 0 &&
      static_cast<uint32_t>(config.put_failure_budget) > kMaxShares) {
    return InvalidArgumentError("put_failure_budget exceeds the share-count bound");
  }
  if (config.dedup_mode == DedupMode::kConvergent && config.dedup_salt.empty()) {
    return InvalidArgumentError(
        "convergent dedup requires a deployment salt (dedup_salt): unsalted "
        "content keys are open to offline dictionary attacks");
  }
  std::unique_ptr<PutJournal> journal;
  if (!config.journal_path.empty()) {
    CYRUS_ASSIGN_OR_RETURN(journal, PutJournal::Open(config.journal_path));
  }
  CYRUS_ASSIGN_OR_RETURN(Chunker chunker, Chunker::Create(config.chunker));
  std::unique_ptr<CyrusClient> client(
      new CyrusClient(std::move(config), std::move(chunker)));
  client->journal_ = std::move(journal);
  return client;
}

// ---------------------------------------------------------------------------
// CSP account management
// ---------------------------------------------------------------------------

Result<int> CyrusClient::AddCsp(std::shared_ptr<CloudConnector> connector,
                                CspProfile profile, const Credentials& credentials) {
  if (connector == nullptr) {
    return InvalidArgumentError("connector must not be null");
  }
  const std::string name(connector->id());
  std::shared_ptr<CircuitBreaker> breaker;
  if (config_.breaker.enabled) {
    CircuitBreakerOptions opts = config_.breaker;
    if (opts.metrics == nullptr) {
      opts.metrics = metrics_;
    }
    // Per-CSP seed derivation keeps cooldown jitter decorrelated between
    // breakers even when every breaker shares one configured seed.
    opts.seed ^= std::hash<std::string>{}(name);
    breaker = std::make_shared<CircuitBreaker>(name, opts,
                                               [this] { return now(); });
    connector = std::make_shared<CircuitBreakerConnector>(std::move(connector),
                                                          breaker);
  }
  CYRUS_RETURN_IF_ERROR(connector->Authenticate(credentials));
  // Authenticate ran outside the lock (it is a connector call); the
  // registry+ring registration below is the atomic part.
  std::lock_guard<std::mutex> topology(topology_mutex_);
  const int index = registry_.Add(std::move(connector), profile);
  Status ring_status = ring_.AddCsp(index, name, profile.cluster);
  if (!ring_status.ok()) {
    // Roll the registry entry back to keep ring and registry consistent.
    (void)registry_.SetState(index, CspState::kRemoved);
    return ring_status;
  }
  if (breaker != nullptr) {
    breakers_[index] = breaker;
    // The breaker's verdicts drive registry/ring placement: a trip evicts
    // the CSP exactly like the legacy indictment, a close re-admits it.
    breaker->set_on_transition(
        [this, index](CircuitBreaker::State /*from*/, CircuitBreaker::State to) {
          if (to == CircuitBreaker::State::kOpen) {
            (void)MarkCspFailed(index);
          } else if (to == CircuitBreaker::State::kClosed) {
            (void)MarkCspRecovered(index);
          }
        });
  }
  monitor_.RecordProbe(index, now_, true);
  return index;
}

Status CyrusClient::RemoveCsp(int csp) {
  {
    std::lock_guard<std::mutex> topology(topology_mutex_);
    CYRUS_ASSIGN_OR_RETURN(CspState state, registry_.state(csp));
    if (state == CspState::kRemoved) {
      return OkStatus();
    }
    CYRUS_RETURN_IF_ERROR(registry_.SetState(csp, CspState::kRemoved));
    if (ring_.Contains(csp)) {
      CYRUS_RETURN_IF_ERROR(ring_.RemoveCsp(csp));
    }
  }
  // Metadata is small: re-scatter every version to the remaining CSPs now.
  // Chunk shares migrate lazily on subsequent downloads (paper §5.5).
  // Outside the topology lock: UploadMetadata may itself MarkCspFailed.
  TransferReport report;
  for (const FileVersion* version : tree_.AllVersions()) {
    CYRUS_RETURN_IF_ERROR(UploadMetadata(*version, report));
  }
  return OkStatus();
}

Status CyrusClient::MarkCspFailed(int csp) {
  // Pipeline workers race here when several transfers to one CSP fail at
  // once; the topology lock makes check-then-remove atomic, so exactly one
  // caller performs the downgrade and the rest see the new state.
  std::lock_guard<std::mutex> topology(topology_mutex_);
  CYRUS_ASSIGN_OR_RETURN(CspState state, registry_.state(csp));
  monitor_.RecordProbe(csp, now_, false);
  if (state != CspState::kActive) {
    return OkStatus();
  }
  CYRUS_RETURN_IF_ERROR(registry_.SetState(csp, CspState::kFailed));
  if (ring_.Contains(csp)) {
    CYRUS_RETURN_IF_ERROR(ring_.RemoveCsp(csp));
  }
  return OkStatus();
}

Status CyrusClient::MarkCspRecovered(int csp) {
  std::lock_guard<std::mutex> topology(topology_mutex_);
  CYRUS_ASSIGN_OR_RETURN(CspState state, registry_.state(csp));
  monitor_.RecordProbe(csp, now_, true);
  if (state != CspState::kFailed) {
    return OkStatus();
  }
  CYRUS_RETURN_IF_ERROR(registry_.SetState(csp, CspState::kActive));
  CYRUS_ASSIGN_OR_RETURN(std::string name, registry_.name(csp));
  CYRUS_ASSIGN_OR_RETURN(CspProfile profile, registry_.profile(csp));
  CYRUS_RETURN_IF_ERROR(ring_.AddCsp(csp, name, profile.cluster));
  if (auto it = breakers_.find(csp); it != breakers_.end()) {
    // Callback-suppressed reset: we hold the topology mutex the transition
    // callback would re-take, and the registry is already being fixed here.
    it->second->ForceClose();
  }
  // ShareLocations naming this CSP predate the outage; the provider may
  // have lost objects while down, so they must be re-verified by a scrub
  // pass before the reliability accounting trusts them again.
  repair_->FlagCspForReprobe(csp);
  return OkStatus();
}

Status CyrusClient::NoteTransferFailure(int csp, const Status& status) {
  if (!IsCspHealthFailure(status)) {
    return OkStatus();
  }
  if (config_.breaker.enabled) {
    // The breaker decorator already saw the failure and decides when the
    // CSP leaves placement; only the availability history needs the sample.
    std::lock_guard<std::mutex> topology(topology_mutex_);
    monitor_.RecordProbe(csp, now_, false);
    return OkStatus();
  }
  return MarkCspFailed(csp);
}

Status CyrusClient::NoteIntegrityFailure(int csp) {
  integrity_failures_->Increment();
  std::string csp_id = StrCat("csp-", csp);
  if (auto name = registry_.name(csp); name.ok()) {
    csp_id = *std::move(name);
  }
  metrics_
      ->GetCounter("cyrus_integrity_failures_total", {{"csp", csp_id}},
                   "Share downloads whose bytes failed digest authentication, "
                   "attributed to the CSP that served them")
      ->Increment();
  uint64_t ledger = 0;
  {
    std::lock_guard<std::mutex> topology(topology_mutex_);
    monitor_.RecordIntegrityFailure(csp);
    monitor_.RecordProbe(csp, now_, false);
    ledger = monitor_.IntegrityFailureCount(csp);
  }
  if (config_.breaker.enabled) {
    // A provider returning corrupted bytes while answering promptly never
    // times out, so the breaker decorator saw a *success*; replay the
    // failure into it with the configured weight so a lying CSP trips the
    // breaker faster than a merely flaky one.
    if (auto breaker = breaker_for(csp); breaker != nullptr) {
      const uint32_t weight = std::max<uint32_t>(config_.integrity_failure_weight, 1);
      for (uint32_t i = 0; i < weight; ++i) {
        breaker->RecordFailure();
      }
      // Consecutive counting alone cannot accumulate integrity evidence:
      // every corrupt download is a transfer-level success that resets the
      // streak before this replay. The monitor's cumulative ledger can -
      // once the weighted total crosses the trip bar, quarantine outright.
      if (ledger * weight >= config_.breaker.failure_threshold) {
        breaker->ForceOpen();
      }
    }
    return OkStatus();
  }
  if (config_.integrity_quarantine_threshold > 0 &&
      monitor_.IntegrityFailureCount(csp) >= config_.integrity_quarantine_threshold) {
    return MarkCspFailed(csp);
  }
  return OkStatus();
}

void CyrusClient::AugmentRecordDigests(ChunkRecord& record) const {
  const ChunkEntry* entry = chunk_table_.Find(record.id);
  if (entry == nullptr) {
    return;
  }
  for (const ChunkShare& share : entry->shares) {
    if (share.has_digest() && record.FindShareDigest(share.share_index) == nullptr) {
      record.SetShareDigest(share.share_index, share.digest);
    }
  }
}

uint32_t CyrusClient::PutQuorum(uint32_t n) const {
  if (config_.put_failure_budget < 0) {
    return config_.t;
  }
  const uint32_t budget =
      std::min(n, static_cast<uint32_t>(config_.put_failure_budget));
  return std::max(config_.t, n - budget);
}

std::shared_ptr<CircuitBreaker> CyrusClient::breaker_for(int csp) {
  std::lock_guard<std::mutex> topology(topology_mutex_);
  auto it = breakers_.find(csp);
  return it != breakers_.end() ? it->second : nullptr;
}

Status CyrusClient::AssignClusters(const std::vector<int>& cluster_per_csp) {
  std::lock_guard<std::mutex> topology(topology_mutex_);
  if (cluster_per_csp.size() != registry_.size()) {
    return InvalidArgumentError(StrCat("got ", cluster_per_csp.size(),
                                       " cluster ids for ", registry_.size(), " CSPs"));
  }
  for (size_t i = 0; i < cluster_per_csp.size(); ++i) {
    const int csp = static_cast<int>(i);
    CYRUS_ASSIGN_OR_RETURN(CspProfile profile, registry_.profile(csp));
    profile.cluster = cluster_per_csp[i];
    CYRUS_RETURN_IF_ERROR(registry_.SetProfile(csp, profile));
    if (ring_.Contains(csp)) {
      CYRUS_RETURN_IF_ERROR(ring_.RemoveCsp(csp));
      CYRUS_ASSIGN_OR_RETURN(std::string name, registry_.name(csp));
      CYRUS_RETURN_IF_ERROR(ring_.AddCsp(csp, name, profile.cluster));
    }
  }
  return OkStatus();
}

Result<uint32_t> CyrusClient::CurrentN() const {
  const size_t max_n = config_.cluster_aware ? registry_.NumActiveClusters()
                                             : registry_.ActiveIndices().size();
  double p = monitor_.MaxFailureProbability();
  if (p <= 0.0) {
    p = config_.default_failure_prob;
  }
  return MinSharesForReliability(config_.t, p, config_.epsilon,
                                 static_cast<uint32_t>(max_n));
}

void CyrusClient::set_download_selector(std::unique_ptr<DownloadSelector> selector) {
  selector_ = std::move(selector);
}

// ---------------------------------------------------------------------------
// Share placement and scatter/gather
// ---------------------------------------------------------------------------

Result<std::vector<int>> CyrusClient::PlaceShares(const Sha1Digest& chunk_id,
                                                  uint32_t n) const {
  return config_.cluster_aware ? ring_.SelectCspsClusterAware(chunk_id, n)
                               : ring_.SelectCsps(chunk_id, n);
}

Result<std::vector<ShareLocation>> CyrusClient::ScatterChunk(
    const SecretSharingCodec& codec, const Sha1Digest& chunk_id, ByteSpan chunk,
    const std::string& file, const std::string& journal_id,
    std::vector<ShareDigest>* share_digests,
    TransferReport& report, obs::TraceBuilder* trace) {
  // The codec is built once per Put (the dispersal matrix depends only on
  // (key, t, n), not on chunk content) and shared read-only by every
  // pipelined scatter of that file.
  const uint32_t n = codec.n();
  obs::ScopedSpan encode_span;
  if (trace != nullptr) {
    encode_span = trace->Span("encode");
    encode_span.AddBytes(chunk.size());
  }
  // Encode share i straight into a pooled, 32B-aligned upload buffer
  // (share index i is row i of the dispersal matrix). The handles live to
  // the end of the scatter - connectors read the spans during upload - and
  // recycle through codec_buffers_ on return. With the pool disabled the
  // legacy allocate-per-chunk Encode() path is used; both paths produce
  // byte-identical shares (asserted by buffer_pool_test).
  const size_t share_len = ShareSize(chunk.size(), codec.t());
  std::vector<PooledBuffer> share_buffers;
  std::vector<Share> shares;
  std::vector<MutableByteSpan> share_spans(n);
  if (config_.use_buffer_pool) {
    share_buffers.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      share_buffers.push_back(codec_buffers_.Acquire(std::max<size_t>(share_len, 1)));
      share_spans[i] = share_buffers[i].span(share_len);
    }
    CYRUS_RETURN_IF_ERROR(codec.EncodeInto(chunk, share_spans));
  } else {
    CYRUS_ASSIGN_OR_RETURN(shares, codec.Encode(chunk));
    for (uint32_t i = 0; i < n; ++i) {
      share_spans[i] = MutableByteSpan(shares[i].data);
    }
  }
  encode_span.End();

  obs::ScopedSpan place_span;
  if (trace != nullptr) {
    place_span = trace->Span("place");
  }
  Result<std::vector<int>> placement_or = PlaceShares(chunk_id, n);
  if (!placement_or.ok() &&
      placement_or.status().code() == StatusCode::kFailedPrecondition) {
    // Fewer eligible CSPs than the target n - a provider was indicted
    // after this Put sized its codec. Scatter onto the widest feasible
    // placement that still reaches the commit quorum; the unplaced shares
    // become repair debt instead of failing the whole Put.
    const uint32_t quorum = PutQuorum(n);
    for (uint32_t m = n - 1; m >= quorum && m >= 1; --m) {
      placement_or = PlaceShares(chunk_id, m);
      if (placement_or.ok()) {
        break;
      }
      if (placement_or.status().code() != StatusCode::kFailedPrecondition) {
        break;
      }
    }
  }
  CYRUS_RETURN_IF_ERROR(placement_or.status());
  const std::vector<int> placement = *std::move(placement_or);
  // Shares beyond the feasible placement are simply not uploaded; the
  // codec still encodes all n, and indices [placed, n) are the debt.
  const uint32_t placed = static_cast<uint32_t>(placement.size());
  place_span.End();

  // Write-ahead journaling: every (csp, object) pair this scatter might
  // create is durably recorded *before* the upload is attempted, so a crash
  // at any point leaves a journal superset of what actually landed. A
  // record whose upload never happened rolls back as a harmless
  // NotFound-on-delete.
  auto journal_share = [&](int csp, const std::string& object) -> Status {
    if (journal_ == nullptr || journal_id.empty()) {
      return OkStatus();
    }
    CYRUS_ASSIGN_OR_RETURN(std::string csp_name, registry_.name(csp));
    return journal_->AppendShare(journal_id, csp_name, object);
  };
  for (uint32_t i = 0; i < placed; ++i) {
    CYRUS_RETURN_IF_ERROR(
        journal_share(placement[i], ShareName(chunk_id, i, config_.t)));
  }

  obs::ScopedSpan upload_span;
  if (trace != nullptr) {
    upload_span = trace->Span("upload");
    for (const MutableByteSpan& span : share_spans) {
      upload_span.AddBytes(span.size());
    }
  }

  // Phase 1: issue all n uploads concurrently on the transfer pool (the
  // prototype's per-connector threads, §5.3). Placement targets are
  // distinct, so the parallel requests never race on a provider decision;
  // connectors themselves are thread-safe.
  std::vector<Status> first_pass(placed, InternalError("no upload attempted"));
  std::vector<TransferReport> first_pass_reports(placed);
  auto upload_share = [&](size_t i) {
    const std::string object =
        ShareName(chunk_id, static_cast<uint32_t>(i), config_.t);
    auto conn = registry_.connector(placement[i]);
    if (!conn.ok()) {
      first_pass[i] = conn.status();
      first_pass_reports[i].records.push_back(TransferRecord{
          TransferKind::kPut, placement[i], object, share_spans[i].size(), false});
      return;
    }
    // Transient errors are retried in place before the failover path below
    // re-places the share on a different CSP.
    first_pass[i] =
        UploadWithRetry(**conn, TransferKind::kPut, placement[i], object,
                        share_spans[i], config_.transfer_retry, first_pass_reports[i]);
  };
  if (pool_ != nullptr && placed > 1) {
    pool_->ParallelFor(placed, upload_share);
  } else {
    for (uint32_t i = 0; i < placed; ++i) {
      upload_share(i);
    }
  }

  // Phase 2 (sequential): bookkeeping plus the failover path for shares
  // whose first upload failed. Failovers must avoid every CSP that already
  // holds a share - including targets of *later* shares whose first-pass
  // upload succeeded but has not been book-kept yet.
  std::vector<int> reserved;
  for (uint32_t j = 0; j < placed; ++j) {
    if (first_pass[j].ok()) {
      reserved.push_back(placement[j]);
    }
  }
  std::vector<ShareLocation> locations;
  std::vector<int> used;
  for (uint32_t i = 0; i < placed; ++i) {
    const std::string object = ShareName(chunk_id, i, config_.t);
    int target = placement[i];
    Status upload = first_pass[i];
    report.Append(first_pass_reports[i]);
    if (upload.ok()) {
      monitor_.RecordProbe(target, now_, true);
      used.push_back(target);
      locations.push_back(ShareLocation{chunk_id, i, target});
      continue;
    }
    // Retry on replacements from the ring, excluding CSPs already holding
    // (or already refusing) a share of this chunk. Only connectivity
    // errors indict the provider; a full quota just makes it ineligible
    // for *this* share.
    std::vector<int> exhausted = reserved;
    for (int held : used) {
      if (std::find(exhausted.begin(), exhausted.end(), held) == exhausted.end()) {
        exhausted.push_back(held);
      }
    }
    for (int attempt = 0; attempt < 3; ++attempt) {
      // Any provider-indicting status (kUnavailable, kDeadlineExceeded,
      // kPermissionDenied) is failover-eligible; the CSP is also always
      // excluded from re-selection for this share - a timed-out upload may
      // have landed, and a second share index on the same provider would
      // weaken the placement either way.
      if (IsCspHealthFailure(upload)) {
        CYRUS_RETURN_IF_ERROR(NoteTransferFailure(target, upload));
      }
      exhausted.push_back(target);
      auto replacement = ring_.SelectCspsExcluding(chunk_id, 1, exhausted);
      if (!replacement.ok()) {
        break;  // no CSP left to try
      }
      target = replacement->front();
      // Defense in depth: never store two shares of one chunk on the same
      // provider (the exclusion list above should already prevent this).
      if (std::find(used.begin(), used.end(), target) != used.end() ||
          std::find(reserved.begin(), reserved.end(), target) != reserved.end()) {
        exhausted.push_back(target);
        upload = InternalError("placement collision");
        continue;
      }
      CYRUS_RETURN_IF_ERROR(journal_share(target, object));
      CYRUS_ASSIGN_OR_RETURN(CloudConnector * conn, registry_.connector(target));
      upload = UploadWithRetry(*conn, TransferKind::kPut, target, object,
                               share_spans[i], config_.transfer_retry, report);
      if (upload.ok()) {
        monitor_.RecordProbe(target, now_, true);
        used.push_back(target);
        reserved.push_back(target);
        locations.push_back(ShareLocation{chunk_id, i, target});
        break;
      }
    }
  }
  // Quorum commit: the chunk is durable once `quorum` shares landed. With
  // the default budget (-1) the quorum is the legacy bar t; a non-negative
  // put_failure_budget lets that many of the n placements fail while the
  // Put still succeeds *degraded* - the caller books the missing shares as
  // repair debt for the scrub engine to complete in the background.
  const uint32_t quorum = PutQuorum(n);
  if (locations.size() < quorum) {
    return UnavailableError(StrCat("only ", locations.size(), " of ", n,
                                   " shares uploaded; need at least ", quorum));
  }
  // Authentication records: the digest of each placed share's bytes, keyed
  // by share index (index i's bytes are identical wherever it lands, so
  // the failover re-placements above share the first upload's digest).
  if (share_digests != nullptr && config_.verify_share_digests) {
    share_digests->reserve(locations.size());
    for (const ShareLocation& loc : locations) {
      share_digests->push_back(
          ShareDigest{loc.share_index, Sha1::Hash(share_spans[loc.share_index])});
    }
  }
  aggregator_.ExpectChunk(file, chunk_id, static_cast<uint32_t>(locations.size()));
  for (size_t i = 0; i < locations.size(); ++i) {
    aggregator_.OnShareEvent(file, chunk_id, /*success=*/true);
  }
  return locations;
}

std::vector<ShareLocation> CyrusClient::ResolveChunkLocations(
    const FileVersion& version, const Sha1Digest& chunk_id) const {
  std::vector<ShareLocation> locations;
  if (const ChunkEntry* entry = chunk_table_.Find(chunk_id); entry != nullptr) {
    for (const ChunkShare& s : entry->shares) {
      locations.push_back(ShareLocation{chunk_id, s.share_index, s.csp});
    }
  } else {
    locations = version.SharesOfChunk(chunk_id);
  }
  return locations;
}

Status CyrusClient::GatherChunk(const std::string& file_name,
                                const ChunkRecord& chunk, MutableByteSpan dst,
                                const std::vector<ShareLocation>& resolved,
                                const std::vector<int>& selected_csps,
                                std::vector<ShareLocation>& updated_shares,
                                size_t& migrated, size_t& hedged_downloads,
                                size_t& integrity_rejected,
                                std::vector<ShareDigest>& upgraded_digests,
                                TransferReport& report) {
  if (dst.size() != chunk.size) {
    return InvalidArgumentError("gather destination size mismatch");
  }
  // The driver resolved `resolved` before submitting this gather, so no
  // pool thread ever reads the mutable FileVersion (its ShareMap is being
  // rewritten on the driver as earlier chunks migrate).
  std::vector<ShareLocation> locations = resolved;

  auto location_state = [&](const ShareLocation& loc) {
    auto state = registry_.state(loc.csp);
    return state.ok() ? *state : CspState::kRemoved;
  };

  // Prefetch the optimizer-selected shares concurrently on the transfer
  // pool (the synchronous fallback path below reuses these results).
  std::map<int, Result<Bytes>> prefetched;
  if (fetcher_ != nullptr) {
    // Hedged path: the selector's picks run as primaries against adaptive
    // per-CSP deadlines; remaining active locations are spares the fetcher
    // may launch as backups (stragglers) or replacements (failures). The
    // outcomes feed the same `prefetched` map the sequential consumption
    // below already understands, so journaling stays consumed-only and
    // losers never surface as TransferRecords.
    std::vector<HedgeCandidate> candidates;
    std::vector<int> candidate_csps;
    std::set<int> covered;
    auto add_candidate = [&](const ShareLocation& loc) {
      auto conn = registry_.connector(loc.csp);
      if (!conn.ok()) {
        return;
      }
      HedgeCandidate candidate;
      candidate.csp = loc.csp;
      candidate.share_index = loc.share_index;
      CloudConnector* raw = *conn;
      const std::string object = ShareName(chunk.id, loc.share_index, chunk.t);
      const RetryOptions retry = config_.transfer_retry;
      candidate.fetch = [raw, object, retry]() -> Result<Bytes> {
        return RetryWithBackoff(retry,
                                [&]() -> Result<Bytes> { return raw->Download(object); });
      };
      candidates.push_back(std::move(candidate));
      candidate_csps.push_back(loc.csp);
      covered.insert(loc.csp);
    };
    for (int csp : selected_csps) {
      for (const ShareLocation& loc : locations) {
        if (loc.csp == csp && location_state(loc) == CspState::kActive) {
          add_candidate(loc);
          break;
        }
      }
    }
    const size_t primaries = candidates.size();
    for (const ShareLocation& loc : locations) {
      if (covered.count(loc.csp) == 0 && location_state(loc) == CspState::kActive) {
        add_candidate(loc);
      }
    }
    std::vector<HedgeFetchResult> outcomes =
        fetcher_->Fetch(std::move(candidates), primaries, chunk.t);
    for (HedgeFetchResult& outcome : outcomes) {
      // Only hedges that delivered a share count here; launch totals
      // (including failed backups and losers still in flight at return)
      // live in the cyrus_hedged_requests_total counter.
      if (outcome.hedged && outcome.data.ok()) {
        ++hedged_downloads;
      }
      prefetched.emplace(candidate_csps[outcome.candidate], std::move(outcome.data));
    }
  } else {
    std::vector<const ShareLocation*> to_fetch;
    for (int csp : selected_csps) {
      for (const ShareLocation& loc : locations) {
        if (loc.csp == csp && location_state(loc) == CspState::kActive) {
          to_fetch.push_back(&loc);
          break;
        }
      }
    }
    if (pool_ != nullptr && to_fetch.size() > 1) {
      std::vector<Result<Bytes>> results(to_fetch.size(),
                                         InternalError("not fetched"));
      pool_->ParallelFor(to_fetch.size(), [&](size_t k) {
        auto conn = registry_.connector(to_fetch[k]->csp);
        if (!conn.ok()) {
          results[k] = conn.status();
          return;
        }
        // Journaled once by try_download when the result is consumed.
        results[k] = RetryWithBackoff(config_.transfer_retry, [&]() -> Result<Bytes> {
          return (*conn)->Download(ShareName(chunk.id, to_fetch[k]->share_index,
                                             chunk.t));
        });
      });
      for (size_t k = 0; k < to_fetch.size(); ++k) {
        prefetched.emplace(to_fetch[k]->csp, std::move(results[k]));
      }
    }
  }

  // Download t shares, preferring the optimizer's CSP choices.
  std::vector<Share> shares;
  std::set<int> attempted;
  // Locations whose downloaded bytes failed digest authentication: the
  // share is discarded *before* decode (a poisoned share would otherwise
  // corrupt the reconstruction), the CSP is indicted, and the loops below
  // top up from alternates - so the Get still succeeds whenever any t
  // clean shares exist anywhere.
  std::vector<ShareLocation> integrity_bad;
  auto try_download = [&](const ShareLocation& loc) -> bool {
    if (!attempted.insert(loc.csp).second) {
      return false;
    }
    const std::string object = ShareName(chunk.id, loc.share_index, chunk.t);
    Result<Bytes> data = InternalError("not fetched");
    if (auto hit = prefetched.find(loc.csp); hit != prefetched.end()) {
      data = std::move(hit->second);
      prefetched.erase(hit);
      report.records.push_back(TransferRecord{
          TransferKind::kGet, loc.csp, object,
          data.ok() ? data->size() : uint64_t{0}, data.ok()});
    } else {
      auto conn = registry_.connector(loc.csp);
      if (!conn.ok()) {
        return false;
      }
      data = DownloadWithRetry(**conn, TransferKind::kGet, loc.csp, object,
                               config_.transfer_retry, report);
    }
    if (!data.ok()) {
      // Only provider-indicting failures count against the CSP; a missing
      // object is a metadata staleness problem, not an outage.
      if (IsCspHealthFailure(data.status())) {
        (void)NoteTransferFailure(loc.csp, data.status());
      }
      return false;
    }
    if (config_.verify_share_digests) {
      if (const Sha1Digest* want = chunk.FindShareDigest(loc.share_index)) {
        if (Sha1::Hash(*data) != *want) {
          ++integrity_rejected;
          integrity_bad.push_back(loc);
          (void)NoteIntegrityFailure(loc.csp);
          aggregator_.OnShareEvent(file_name, chunk.id, /*success=*/false);
          return false;
        }
      }
    }
    monitor_.RecordProbe(loc.csp, now_, true);
    shares.push_back(Share{loc.share_index, *std::move(data)});
    aggregator_.OnShareEvent(file_name, chunk.id, /*success=*/true);
    return true;
  };

  aggregator_.ExpectChunk(file_name, chunk.id, chunk.t);
  if (fetcher_ != nullptr) {
    // Consume the fetcher's wins before walking selector order: a backup
    // that beat a straggling primary lives under a *spare* CSP, and the
    // straggler itself has no map entry (it is still in flight). Walking
    // selector order first would re-download the slow share inline and
    // hand back the exact tail the hedge already paid to cut. Failed
    // entries stay in the map for the loops below, whose try_download
    // consumes them and indicts the CSP.
    for (const ShareLocation& loc : locations) {
      if (shares.size() >= chunk.t) {
        break;
      }
      auto hit = prefetched.find(loc.csp);
      if (hit != prefetched.end() && hit->second.ok() &&
          location_state(loc) == CspState::kActive) {
        (void)try_download(loc);
      }
    }
  }
  for (int csp : selected_csps) {
    if (shares.size() >= chunk.t) {
      break;
    }
    for (const ShareLocation& loc : locations) {
      if (loc.csp == csp && location_state(loc) == CspState::kActive) {
        (void)try_download(loc);
        break;
      }
    }
  }
  // Fall back to any remaining active location if the optimizer's picks
  // failed under us.
  for (const ShareLocation& loc : locations) {
    if (shares.size() >= chunk.t) {
      break;
    }
    if (location_state(loc) == CspState::kActive) {
      (void)try_download(loc);
    }
  }
  if (shares.size() < chunk.t) {
    if (!integrity_bad.empty()) {
      return IntegrityError(StrCat(
          "chunk ", chunk.id.ToHex(), ": only ", shares.size(), " of t=",
          chunk.t, " shares authenticated (", integrity_bad.size(),
          " failed share digest checks)"));
    }
    return DataLossError(StrCat("chunk ", chunk.id.ToHex(), ": only ", shares.size(),
                                " of t=", chunk.t, " shares reachable"));
  }

  // Dedup chunks were dispersed under their content key; unwrap it with
  // the user key (reads never touch the deployment salt or the index).
  std::string decode_key = config_.key_string;
  if (chunk.dedup) {
    CYRUS_ASSIGN_OR_RETURN(decode_key,
                           deriver_.UnwrapForUser(chunk.wrapped_key, chunk.id));
  }
  CYRUS_ASSIGN_OR_RETURN(
      SecretSharingCodec decoder,
      SecretSharingCodec::Create(decode_key, chunk.t, kMaxShares));
  // Re-encoded shares (corruption repair, lazy migration) go through the
  // same pooled buffers the scatter path uploads from.
  const size_t share_len = ShareSize(chunk.size, chunk.t);
  Bytes scratch_heap;
  auto acquire_share_buf = [&](PooledBuffer& handle) -> MutableByteSpan {
    if (config_.use_buffer_pool) {
      handle = codec_buffers_.Acquire(std::max<size_t>(share_len, 1));
      return handle.span(share_len);
    }
    scratch_heap.assign(share_len, 0);
    return MutableByteSpan(scratch_heap);
  };
  // Overwrites the share at `loc` with freshly encoded bytes from the
  // verified plaintext in dst (uploads are idempotent overwrites under the
  // content-addressed name). Best effort: a failed heal is the scrub
  // engine's problem, not this Get's.
  size_t healed = 0;
  auto heal_share = [&](const ShareLocation& loc) {
    if (location_state(loc) != CspState::kActive) {
      return;
    }
    PooledBuffer fresh_buf;
    MutableByteSpan fresh = acquire_share_buf(fresh_buf);
    auto encoded = decoder.EncodeShareInto(dst, loc.share_index, fresh);
    auto conn = registry_.connector(loc.csp);
    if (encoded.ok() && conn.ok()) {
      const std::string object = ShareName(chunk.id, loc.share_index, chunk.t);
      if (UploadWithRetry(**conn, TransferKind::kPut, loc.csp, object, fresh,
                          config_.transfer_retry, report)
              .ok()) {
        ++healed;
      }
    }
  };

  bool decode_corrected = false;
  CYRUS_RETURN_IF_ERROR(decoder.DecodeInto(shares, dst));
  if (Sha1::Hash(dst) != chunk.id) {
    // A share is corrupted (bit rot or a tampering provider) and the
    // record predates per-share digests, so the bad share could not be
    // screened out up front. Pull every reachable share and run the
    // error-correcting decode (§5.1 footnote 9): the exhaustive t-subset
    // search both recovers the plaintext and *identifies* the corrupt
    // indices - the combinatorial fallback that lets legacy metadata be
    // upgraded in place below.
    decode_corrected = true;
    for (const ShareLocation& loc : locations) {
      if (location_state(loc) == CspState::kActive) {
        (void)try_download(loc);
      }
    }
    auto corrected = decoder.DecodeWithErrorCorrection(shares, chunk.size);
    if (!corrected.ok() || Sha1::Hash(corrected->chunk) != chunk.id) {
      return IntegrityError(StrCat("chunk ", chunk.id.ToHex(),
                                   " failed integrity check after decode"));
    }
    std::copy(corrected->chunk.begin(), corrected->chunk.end(), dst.begin());
    // Repair: overwrite each corrupted share with freshly encoded bytes at
    // its existing location.
    for (uint32_t bad_index : corrected->corrupted_indices) {
      for (const ShareLocation& loc : locations) {
        if (loc.share_index == bad_index) {
          heal_share(loc);
          break;
        }
      }
    }
  }
  // Shares the digest check rejected pre-decode are healed in place from
  // the now-verified plaintext, so a transiently-corrupting CSP stops
  // poisoning future reads (a persistently-lying one is quarantined by
  // NoteIntegrityFailure regardless of what this write does).
  for (const ShareLocation& loc : integrity_bad) {
    heal_share(loc);
  }
  if (healed > 0) {
    integrity_shares_healed_->Increment(healed);
  }

  // Lazy share migration (paper §5.5, Figure 9): regenerate shares whose
  // CSP is failed or removed and place them on fresh CSPs.
  std::vector<ShareLocation> repaired = locations;
  for (ShareLocation& loc : repaired) {
    if (location_state(loc) == CspState::kActive) {
      continue;
    }
    std::vector<int> exclude;
    uint32_t max_index = 0;
    for (const ShareLocation& l : repaired) {
      if (location_state(l) == CspState::kActive) {
        exclude.push_back(l.csp);
      }
      max_index = std::max(max_index, l.share_index);
    }
    auto replacement = ring_.SelectCspsExcluding(chunk.id, 1, exclude);
    if (!replacement.ok()) {
      continue;  // nowhere to migrate; retry on a later download
    }
    const uint32_t new_index = max_index + 1;
    if (new_index >= kMaxShares) {
      continue;
    }
    PooledBuffer fresh_buf;
    MutableByteSpan fresh = acquire_share_buf(fresh_buf);
    CYRUS_RETURN_IF_ERROR(decoder.EncodeShareInto(dst, new_index, fresh));
    const int target = replacement->front();
    CYRUS_ASSIGN_OR_RETURN(CloudConnector * conn, registry_.connector(target));
    const std::string object = ShareName(chunk.id, new_index, chunk.t);
    Status upload = UploadWithRetry(*conn, TransferKind::kPut, target, object,
                                    fresh, config_.transfer_retry, report);
    if (!upload.ok()) {
      (void)NoteTransferFailure(target, upload);
      continue;
    }
    const int32_t old_csp = loc.csp;
    const uint32_t old_index = loc.share_index;
    loc.csp = target;
    loc.share_index = new_index;
    (void)chunk_table_.MoveShare(chunk.id, old_csp, old_index, target, new_index,
                                 Sha1::Hash(fresh));
    ++migrated;
  }

  // Digest bookkeeping: whenever this gather changed what the CSPs store
  // (healed or migrated shares) or the record predates per-share digests,
  // derive the authoritative digest set from the verified plaintext -
  // share bytes are a pure function of (chunk, key, index), so re-encoding
  // reproduces exactly what a clean provider holds. The chunk table is
  // updated here (same distinct-entry contract as MoveShare above); the
  // caller folds `upgraded_digests` into the version's ChunkRecord on the
  // driver and republishes the metadata.
  if (config_.verify_share_digests &&
      (chunk.share_digests.empty() || migrated > 0 || healed > 0 ||
       decode_corrected)) {
    std::set<uint32_t> indices;
    for (const ShareLocation& loc : repaired) {
      indices.insert(loc.share_index);
    }
    for (uint32_t index : indices) {
      PooledBuffer buf;
      MutableByteSpan span = acquire_share_buf(buf);
      if (!decoder.EncodeShareInto(dst, index, span).ok()) {
        continue;
      }
      const Sha1Digest digest = Sha1::Hash(span);
      upgraded_digests.push_back(ShareDigest{index, digest});
      (void)chunk_table_.SetShareDigest(chunk.id, index, digest);
    }
  }
  updated_shares = std::move(repaired);
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Metadata scatter / fetch / sync
// ---------------------------------------------------------------------------

Status CyrusClient::UploadMetadata(const FileVersion& version, TransferReport& report) {
  const std::vector<int> active = registry_.ActiveIndices();
  if (active.size() < config_.meta_t) {
    return FailedPreconditionError(
        StrCat("metadata needs ", config_.meta_t, " CSPs but only ", active.size(),
               " are active"));
  }
  // Metadata shares go to every active CSP (paper footnote 3), secret-
  // shared with threshold meta_t.
  const uint32_t m = static_cast<uint32_t>(std::min<size_t>(active.size(), kMaxShares));
  CYRUS_ASSIGN_OR_RETURN(
      SecretSharingCodec codec,
      SecretSharingCodec::Create(config_.key_string, config_.meta_t, m));
  const Bytes envelope = WrapEnvelope(ToWireForm(version).Serialize());
  CYRUS_ASSIGN_OR_RETURN(std::vector<Share> shares, codec.Encode(envelope));

  const std::string base = MetadataName(version.id);
  // The generation is hashed over the *padded* envelope (what a decoder
  // reconstructs), so readers can verify a share group decoded cleanly.
  Bytes padded_envelope = envelope;
  padded_envelope.resize(ShareSize(envelope.size(), config_.meta_t) * config_.meta_t, 0);
  const std::string generation = MetaGeneration(padded_envelope);
  size_t uploaded = 0;
  for (uint32_t i = 0; i < m; ++i) {
    const int csp = active[i];
    auto conn = registry_.connector(csp);
    if (!conn.ok()) {
      continue;
    }
    const std::string object = MetaShareName(base, shares[i].index, generation);
    Status upload = UploadWithRetry(**conn, TransferKind::kPutMeta, csp, object,
                                    shares[i].data, config_.transfer_retry, report);
    if (!upload.ok()) {
      if (IsCspHealthFailure(upload)) {
        CYRUS_RETURN_IF_ERROR(NoteTransferFailure(csp, upload));
      }
      continue;  // e.g. quota: the CSP is full, not down
    }
    ++uploaded;
    // Metadata for a version is mutable (share migration rewrites the
    // ShareMap) and the active set changes over time, so a CSP may hold a
    // share object from an earlier upload under a *different* index. A
    // reader mixing that stale share with fresh ones would decode garbage;
    // make each CSP hold exactly its assigned share.
    auto existing = RetryWithBackoff(config_.transfer_retry,
                                     [&] { return (*conn)->List(base); });
    if (existing.ok()) {
      for (const ObjectInfo& stale : *existing) {
        if (stale.name != object) {
          (void)(*conn)->Delete(stale.name);
        }
      }
    }
  }
  if (uploaded < config_.meta_t) {
    return UnavailableError(StrCat("metadata for ", version.file_name, " reached only ",
                                   uploaded, " CSPs; need ", config_.meta_t));
  }
  known_meta_bases_.insert(base);
  return OkStatus();
}

Result<FileVersion> CyrusClient::FetchMetadata(const std::string& base,
                                               TransferReport& report) {
  // Find shares of this base across active CSPs, grouped by generation: a
  // CSP that slept through a republish still holds an old-generation share
  // that must never be mixed with fresh ones.
  std::map<std::string, std::map<uint32_t, int>> generations;  // gen -> idx -> csp
  for (int csp : registry_.ActiveIndices()) {
    auto conn = registry_.connector(csp);
    if (!conn.ok()) {
      continue;
    }
    auto listing = RetryWithBackoff(config_.transfer_retry,
                                    [&] { return (*conn)->List(base); });
    if (!listing.ok()) {
      (void)NoteTransferFailure(csp, listing.status());
      continue;
    }
    for (const ObjectInfo& object : *listing) {
      std::string parsed_base;
      uint32_t index = 0;
      std::string generation;
      if (ParseMetaShareName(object.name, &parsed_base, &index, &generation) &&
          parsed_base == base) {
        generations[generation].emplace(index, csp);
      }
    }
  }
  // Try generations by decreasing share availability; the current one is
  // on every reachable CSP, stale ones survive only on stragglers.
  std::vector<const std::pair<const std::string, std::map<uint32_t, int>>*> order;
  for (const auto& entry : generations) {
    order.push_back(&entry);
  }
  std::stable_sort(order.begin(), order.end(), [](const auto* a, const auto* b) {
    return a->second.size() > b->second.size();
  });

  Bytes envelope;
  bool decoded = false;
  for (const auto* entry : order) {
    const auto& [generation, index_to_csp] = *entry;
    if (index_to_csp.size() < config_.meta_t) {
      continue;
    }
    std::vector<Share> shares;
    for (const auto& [index, csp] : index_to_csp) {
      if (shares.size() >= config_.meta_t) {
        break;
      }
      auto conn = registry_.connector(csp);
      if (!conn.ok()) {
        continue;
      }
      const std::string object = MetaShareName(base, index, generation);
      auto data = DownloadWithRetry(**conn, TransferKind::kGetMeta, csp, object,
                                    config_.transfer_retry, report);
      if (!data.ok()) {
        (void)NoteTransferFailure(csp, data.status());
        continue;
      }
      shares.push_back(Share{index, *std::move(data)});
    }
    if (shares.size() < config_.meta_t) {
      continue;
    }
    CYRUS_ASSIGN_OR_RETURN(
        SecretSharingCodec decoder,
        SecretSharingCodec::Create(config_.key_string, config_.meta_t, kMaxShares));
    const size_t envelope_size = shares.front().data.size() * config_.meta_t;
    auto decoded_envelope = decoder.Decode(shares, envelope_size);
    if (!decoded_envelope.ok() ||
        MetaGeneration(*decoded_envelope) != generation) {
      continue;  // inconsistent shares within the group; try the next gen
    }
    envelope = *std::move(decoded_envelope);
    decoded = true;
    break;
  }
  if (!decoded) {
    return UnavailableError(
        StrCat("metadata ", base, ": no generation has ", config_.meta_t,
               " consistent shares reachable"));
  }
  CYRUS_ASSIGN_OR_RETURN(Bytes payload, UnwrapEnvelope(envelope));
  CYRUS_ASSIGN_OR_RETURN(FileVersion version, FileVersion::Deserialize(payload));
  if (MetadataName(version.id) != base) {
    return DataLossError(StrCat("metadata ", base, " decodes to mismatched version id"));
  }
  return ToLocalForm(std::move(version));
}

FileVersion CyrusClient::ToWireForm(const FileVersion& version) const {
  // Rewrite local registry indices to stable connector names via the
  // csp_directory, so any client can interpret the ShareMap (registry
  // indices differ between devices and sessions).
  FileVersion wire = version;
  wire.csp_directory.clear();
  std::map<int32_t, int32_t> local_to_dir;
  for (ShareLocation& loc : wire.shares) {
    auto it = local_to_dir.find(loc.csp);
    if (it == local_to_dir.end()) {
      auto name_or = registry_.name(loc.csp);
      const std::string stable =
          name_or.ok() ? *name_or : StrCat("<unknown-", loc.csp, ">");
      it = local_to_dir
               .emplace(loc.csp, static_cast<int32_t>(wire.csp_directory.size()))
               .first;
      wire.csp_directory.push_back(stable);
    }
    loc.csp = it->second;
  }
  return wire;
}

FileVersion CyrusClient::ToLocalForm(FileVersion version) const {
  // Map the directory of stable connector names back to this client's
  // registry indices; providers this client has no account at become -1
  // (unreachable, candidates for lazy migration).
  std::vector<int32_t> dir_to_local(version.csp_directory.size(), -1);
  for (size_t k = 0; k < version.csp_directory.size(); ++k) {
    auto index = registry_.IndexByName(version.csp_directory[k]);
    if (index.ok()) {
      dir_to_local[k] = *index;
    }
  }
  for (ShareLocation& loc : version.shares) {
    loc.csp = (loc.csp >= 0 && static_cast<size_t>(loc.csp) < dir_to_local.size())
                  ? dir_to_local[loc.csp]
                  : -1;
  }
  version.csp_directory.clear();  // back to local in-memory form
  return version;
}

LocalCacheSnapshot CyrusClient::ExportCache() const {
  LocalCacheSnapshot snapshot;
  for (const FileVersion* version : tree_.AllVersions()) {
    snapshot.versions.push_back(ToWireForm(*version));
  }
  snapshot.chunk_table = chunk_table_;
  snapshot.known_meta_bases = known_meta_bases_;
  return snapshot;
}

Status CyrusClient::ImportCache(const LocalCacheSnapshot& snapshot) {
  tree_ = VersionTree();
  chunk_table_ = ChunkTable();
  known_meta_bases_.clear();
  for (const FileVersion& wire : snapshot.versions) {
    FileVersion version = ToLocalForm(wire);
    CYRUS_RETURN_IF_ERROR(version.Validate());
    CYRUS_RETURN_IF_ERROR(tree_.Insert(version));
    // The chunk table is rebuilt from the versions rather than trusted
    // from the snapshot: its share locations are registry-local and the
    // rebuild reproduces refcounts exactly.
    CYRUS_RETURN_IF_ERROR(RegisterVersionChunks(version));
  }
  known_meta_bases_ = snapshot.known_meta_bases;
  return OkStatus();
}

Status CyrusClient::RegisterVersionChunks(const FileVersion& version) {
  std::set<Sha1Digest> seen;
  for (const ChunkRecord& chunk : version.chunks) {
    if (!seen.insert(chunk.id).second) {
      continue;  // duplicate chunk within the file: count once per version
    }
    if (chunk_table_.Contains(chunk.id)) {
      CYRUS_RETURN_IF_ERROR(chunk_table_.AddRef(chunk.id));
      continue;
    }
    ChunkEntry entry;
    entry.size = chunk.size;
    entry.logical_size = chunk.size;
    entry.t = chunk.t;
    entry.n = chunk.n;
    // Synced copies carry the dedup fields so Get can unwrap the content
    // key, but take no *global* reference: the writing client counted the
    // version at Put time, and this table is a mirror of the same versions.
    entry.dedup = chunk.dedup;
    entry.wrapped_key = chunk.wrapped_key;
    for (const ShareLocation& loc : version.SharesOfChunk(chunk.id)) {
      ChunkShare share{loc.share_index, loc.csp};
      if (const Sha1Digest* d = chunk.FindShareDigest(loc.share_index)) {
        share.digest = *d;
      }
      entry.shares.push_back(share);
    }
    CYRUS_RETURN_IF_ERROR(chunk_table_.Insert(chunk.id, std::move(entry)));
  }
  return OkStatus();
}

Result<std::vector<Conflict>> CyrusClient::SyncMetadata() {
  // Sole-writer throttle: skip the O(total versions) discovery scan when a
  // pass ran within the configured virtual-time interval.
  const double now = now_.load(std::memory_order_relaxed);
  if (config_.metadata_sync_interval_s > 0 && last_meta_sync_s_ >= 0 &&
      now - last_meta_sync_s_ < config_.metadata_sync_interval_s) {
    return std::vector<Conflict>{};
  }
  last_meta_sync_s_ = now;

  // One listing pass over the active CSPs discovers every metadata base.
  std::set<std::string> bases;
  for (int csp : registry_.ActiveIndices()) {
    auto conn = registry_.connector(csp);
    if (!conn.ok()) {
      continue;
    }
    auto listing = RetryWithBackoff(config_.transfer_retry,
                                    [&] { return (*conn)->List("meta-"); });
    if (!listing.ok()) {
      (void)NoteTransferFailure(csp, listing.status());
      continue;
    }
    monitor_.RecordProbe(csp, now_, true);
    for (const ObjectInfo& object : *listing) {
      std::string base;
      uint32_t index = 0;
      std::string generation;
      if (ParseMetaShareName(object.name, &base, &index, &generation)) {
        bases.insert(base);
      }
    }
  }

  TransferReport report;
  std::set<std::string> touched_names;
  for (const std::string& base : bases) {
    if (known_meta_bases_.count(base) > 0) {
      continue;
    }
    auto version = FetchMetadata(base, report);
    if (!version.ok()) {
      continue;  // unreachable this round; retried on the next sync
    }
    CYRUS_RETURN_IF_ERROR(version->Validate());
    if (!tree_.Contains(version->id)) {
      CYRUS_RETURN_IF_ERROR(tree_.Insert(*version));
      CYRUS_RETURN_IF_ERROR(RegisterVersionChunks(*version));
      touched_names.insert(version->file_name);
    }
    known_meta_bases_.insert(base);
  }

  // Report user-level conflicts: names with several live heads (paper
  // Figure 8's two cases both surface this way).
  std::vector<Conflict> conflicts;
  for (const std::string& name : touched_names) {
    std::vector<const FileVersion*> live;
    for (const FileVersion* head : tree_.Heads(name)) {
      if (!head->deleted) {
        live.push_back(head);
      }
    }
    if (live.size() < 2) {
      continue;
    }
    bool all_roots = true;
    std::vector<Sha1Digest> ids;
    for (const FileVersion* head : live) {
      all_roots &= IsNullDigest(head->prev_id);
      ids.push_back(head->id);
    }
    conflicts.push_back(Conflict{
        all_roots ? ConflictType::kSameName : ConflictType::kDivergedVersions, name,
        std::move(ids)});
  }
  return conflicts;
}

Status CyrusClient::Recover() {
  tree_ = VersionTree();
  chunk_table_ = ChunkTable();
  known_meta_bases_.clear();
  last_meta_sync_s_ = -1.0;  // force a full pass despite the throttle
  return SyncMetadata().status();
}

// ---------------------------------------------------------------------------
// File operations
// ---------------------------------------------------------------------------

Sha1Digest CyrusClient::ParentFor(std::string_view name) const {
  const FileVersion* newest = nullptr;
  for (const FileVersion* head : tree_.Heads(name)) {
    if (newest == nullptr || head->modified_time > newest->modified_time ||
        (head->modified_time == newest->modified_time && head->id > newest->id)) {
      newest = head;
    }
  }
  return newest != nullptr ? newest->id : Sha1Digest{};
}

Status CyrusClient::RescatterDedupChunk(const Sha1Digest& chunk_id, ByteSpan chunk,
                                        uint32_t n, const std::string& file,
                                        const std::string& journal_id,
                                        TransferReport& report,
                                        obs::TraceBuilder* trace,
                                        PutResult& result) {
  if (config_.dedup_salt.empty()) {
    // Without the deployment salt the content key this client would derive
    // is not the one other users derive; publishing shares encoded under it
    // would hand future adopters undecodable bytes. Fail the Put loudly
    // rather than republish a layout whose objects may be gone.
    return FailedPreconditionError(
        StrCat("chunk ", chunk_id.ToHex(),
               " lost its share-index entry and cannot be re-encoded without "
               "the deployment dedup salt"));
  }
  const std::string content_key = deriver_.ContentKey(chunk_id);
  Bytes wrapped_key = deriver_.WrapForUser(content_key, chunk_id);
  CYRUS_ASSIGN_OR_RETURN(
      SecretSharingCodec codec,
      SecretSharingCodec::Create(content_key, config_.t, n));
  codec_creates_->Increment();
  std::vector<ShareDigest> digests;
  CYRUS_ASSIGN_OR_RETURN(
      std::vector<ShareLocation> locations,
      ScatterChunk(codec, chunk_id, chunk, file, journal_id, &digests, report,
                   trace));
  std::vector<ChunkShare> shares;
  shares.reserve(locations.size());
  for (const ShareLocation& loc : locations) {
    ChunkShare share{loc.share_index, loc.csp};
    if (const Sha1Digest* d = DigestForIndex(digests, loc.share_index)) {
      share.digest = *d;
    }
    shares.push_back(share);
  }
  if (config_.share_index != nullptr) {
    ShareIndexEntry published;
    published.logical_size = chunk.size();
    published.t = config_.t;
    published.n = n;
    published.refcount = 1;
    published.shares = shares;
    CYRUS_RETURN_IF_ERROR(
        config_.share_index->Publish(chunk_id, std::move(published)));
  }
  CYRUS_RETURN_IF_ERROR(chunk_table_.ResetShares(
      chunk_id, config_.t, n, std::move(wrapped_key), std::move(shares)));
  const uint32_t stored = static_cast<uint32_t>(locations.size());
  if (stored < n) {
    ++result.degraded_chunks;
    result.missing_shares += n - stored;
    repair_->NoteDegradedWrite(chunk_id, n - stored);
  }
  return OkStatus();
}

Result<PutResult> CyrusClient::Put(std::string_view name, ByteSpan content) {
  if (name.empty()) {
    return InvalidArgumentError("file name must not be empty");
  }
  puts_total_->Increment();
  LatencyRecorder latency(put_latency_ms_);
  obs::TraceBuilder trace(traces_, "Put", std::string(name));
  // Algorithm 2 reads the head from the *local* tree (metadata sync runs as
  // its own service); a stale local tree is exactly what produces the
  // Figure 8 conflicts, which are detected on download instead of blocking
  // the upload.
  PutResult result;
  result.content_bytes = content.size();

  const Sha1Digest content_hash = Sha1::Hash(content);
  const Sha1Digest parent = ParentFor(name);
  if (!IsNullDigest(parent)) {
    const FileVersion* head = tree_.Find(parent);
    if (head != nullptr && !head->deleted && head->content_id == content_hash) {
      result.unchanged = true;
      result.version_id = head->id;
      return result;
    }
  }
  result.version_id = ComputeVersionId(content_hash, parent, name);
  if (tree_.Contains(result.version_id)) {
    // Identical (content, parent, name): re-putting is a no-op.
    result.unchanged = true;
    return result;
  }

  // Crash safety: open a write intent before any share leaves this client.
  // Every upload target is journaled ahead of its attempt, metadata is
  // journaled once all shares are durable, and the intent commits only
  // after the version metadata is published - so recovery can always
  // either roll the Put forward or delete every orphan it may have left.
  const std::string journal_id =
      journal_ != nullptr ? result.version_id.ToHex() : std::string();
  if (journal_ != nullptr) {
    CYRUS_RETURN_IF_ERROR(journal_->BeginIntent(journal_id, std::string(name)));
  }

  // Eq. (1) sizes n; if the failure budget is unreachable with the CSPs
  // currently active (e.g. some are marked failed), degrade to the widest
  // feasible scatter rather than refusing writes - the paper's "no shares
  // are uploaded to that CSP until it is back" implies exactly this.
  uint32_t n;
  if (auto n_or = CurrentN(); n_or.ok()) {
    n = *n_or;
  } else {
    const size_t max_n = config_.cluster_aware ? registry_.NumActiveClusters()
                                               : registry_.ActiveIndices().size();
    if (max_n < config_.t) {
      return n_or.status();
    }
    n = static_cast<uint32_t>(max_n);
  }
  result.n = n;

  FileVersion version;
  version.id = result.version_id;
  version.content_id = content_hash;
  version.prev_id = parent;
  version.client_id = config_.client_id;
  version.file_name = std::string(name);
  version.modified_time = now_;
  version.size = content.size();

  obs::ScopedSpan chunking_span = trace.Span("chunking");
  chunking_span.AddBytes(content.size());
  const std::vector<ChunkSpan> chunk_spans = chunker_.Split(content);
  chunking_span.End();

  // One codec serves every chunk of this Put: the dispersal matrix depends
  // only on (key, t, n), so constructing it per chunk was pure waste.
  CYRUS_ASSIGN_OR_RETURN(
      SecretSharingCodec codec,
      SecretSharingCodec::Create(config_.key_string, config_.t, n));
  codec_creates_->Increment();

  // Pipelined scatter (§5.3): chunk i+1 is encoded and uploading on the
  // pool while chunk i's completion is book-kept. The OrderedPipeline
  // delivers completions in file order on this thread, so every mutation
  // of chunk_table_ / version below keeps the sequential path's
  // invariants; the window bounds in-flight share buffers to O(window).
  //
  // Slots live in a std::list so in-flight workers hold stable addresses;
  // declared before the pipeline so they outlive its destructor's join.
  struct ScatterSlot {
    Sha1Digest chunk_id;
    ChunkSpan span{};
    Result<std::vector<ShareLocation>> locations = InternalError("not scattered");
    TransferReport report;
    bool dedup = false;      // served by the local chunk table / in-flight set
    bool index_hit = false;  // served by the cross-user ShareIndex (ref taken)
    ShareIndexEntry index_entry;
    Bytes wrapped_key;       // per-user wrap of the content key (convergent)
    std::vector<ShareDigest> digests;  // per-share auth records from the scatter
  };
  std::list<ScatterSlot> slots;
  OrderedPipeline::Options window;
  window.max_in_flight = pipeline_window();
  window.max_in_flight_bytes = config_.pipeline_window_bytes;
  OrderedPipeline pipeline(pool_.get(), window);

  const bool convergent = convergent_writes();
  std::set<Sha1Digest> shares_recorded;
  // New chunks submitted but whose completion has not been delivered yet.
  // A duplicate of an in-flight chunk rides the pipeline as a no-work
  // task: ordered delivery guarantees the first occurrence's chunk-table
  // insert lands before the duplicate's lookup. Index hits ride the set
  // too - their local chunk-table insert also lands in on_complete.
  std::set<Sha1Digest> inflight;
  Status pipeline_status;
  for (const ChunkSpan& span : chunk_spans) {
    const ByteSpan chunk_bytes = content.subspan(span.offset, span.size);
    const Sha1Digest chunk_id = Sha1::Hash(chunk_bytes);
    ++result.total_chunks;

    slots.emplace_back();
    ScatterSlot* slot = &slots.back();
    slot->chunk_id = chunk_id;
    slot->span = span;
    slot->dedup =
        chunk_table_.Find(chunk_id) != nullptr || inflight.count(chunk_id) > 0;
    if (!slot->dedup && convergent && config_.share_index != nullptr) {
      // The cross-user lookup is batched into the pipelined submit loop:
      // one sharded-map probe per chunk, and a hit takes its global
      // reference here so a concurrent GC pass can never reclaim the
      // chunk between this decision and the metadata publish.
      if (auto hit = config_.share_index->LookupAndRef(chunk_id)) {
        slot->index_hit = true;
        slot->index_entry = *std::move(hit);
      }
    }

    std::function<void()> work;
    if (slot->dedup) {
      work = [] {};
    } else if (slot->index_hit) {
      inflight.insert(chunk_id);
      // No encode, no upload - the only work a duplicate chunk costs is
      // re-deriving its content key so this user's metadata can carry the
      // wrap (the writer holds the salt, so derive beats re-reading it).
      work = [this, slot] {
        slot->wrapped_key = deriver_.WrapForUser(
            deriver_.ContentKey(slot->chunk_id), slot->chunk_id);
      };
    } else if (convergent) {
      inflight.insert(chunk_id);
      // Convergent miss: this chunk's codec is keyed by its own content,
      // so the per-Put user-key codec above cannot serve it. Codec
      // construction is pure (key, t, n) -> matrices and runs on the
      // worker beside the encode it feeds.
      work = [this, slot, chunk_bytes, n, &version, &journal_id, &trace] {
        const std::string content_key = deriver_.ContentKey(slot->chunk_id);
        slot->wrapped_key = deriver_.WrapForUser(content_key, slot->chunk_id);
        auto chunk_codec = SecretSharingCodec::Create(content_key, config_.t, n);
        if (!chunk_codec.ok()) {
          slot->locations = chunk_codec.status();
          return;
        }
        codec_creates_->Increment();
        slot->locations =
            ScatterChunk(*chunk_codec, slot->chunk_id, chunk_bytes,
                         version.file_name, journal_id, &slot->digests,
                         slot->report, &trace);
      };
    } else {
      inflight.insert(chunk_id);
      work = [this, slot, chunk_bytes, &codec, &version, &journal_id, &trace] {
        slot->locations =
            ScatterChunk(codec, slot->chunk_id, chunk_bytes, version.file_name,
                         journal_id, &slot->digests, slot->report, &trace);
      };
    }
    auto on_complete = [this, slot, n, convergent, chunk_bytes, &version,
                        &result, &shares_recorded, &inflight, &journal_id,
                        &trace]() -> Status {
      if (slot->dedup) {
        // Deduplicated: reuse the stored shares (Algorithm 2's "if chunk
        // is not stored" guard).
        const ChunkEntry* existing = chunk_table_.Find(slot->chunk_id);
        if (existing == nullptr) {
          return InternalError(StrCat("dedup chunk ", slot->chunk_id.ToHex(),
                                      " missing from chunk table"));
        }
        ++result.dedup_chunks;
        chunks_deduped_->Increment();
        if (shares_recorded.insert(slot->chunk_id).second) {
          CYRUS_RETURN_IF_ERROR(chunk_table_.AddRef(slot->chunk_id));
          if (existing->dedup && config_.share_index != nullptr) {
            // Mirror the local reference in the deployment-wide index.
            Status global = config_.share_index->AddRef(slot->chunk_id);
            if (global.code() == StatusCode::kNotFound) {
              // Reclaimed between this chunk's last release and its
              // re-adoption here. Another shard's scrub only consults its
              // own chunk table, so our local entry did NOT keep the
              // objects out of its delete set - the cached layout may
              // point at nothing. Re-upload rather than republish a
              // layout nobody verified.
              global = RescatterDedupChunk(slot->chunk_id, chunk_bytes, n,
                                           version.file_name, journal_id,
                                           slot->report, &trace, result);
              if (global.ok()) {
                result.transfer.Append(slot->report);
                existing = chunk_table_.Find(slot->chunk_id);
              }
            }
            CYRUS_RETURN_IF_ERROR(global);
          }
          // Recorded after the index round-trip: a re-scatter replaces the
          // layout, and the metadata must reference the objects that exist.
          for (const ChunkShare& s : existing->shares) {
            version.shares.push_back(
                ShareLocation{slot->chunk_id, s.share_index, s.csp});
          }
        }
        ChunkRecord record{slot->chunk_id, slot->span.offset, slot->span.size,
                           existing->t, existing->n, existing->dedup,
                           existing->wrapped_key, {}};
        AdoptShareDigests(existing->shares, record);
        version.chunks.push_back(std::move(record));
        return OkStatus();
      }
      if (slot->index_hit) {
        // Cross-user dedup: the chunk exists under its convergent name at
        // the CSPs already. The reference was taken at submit; all that
        // lands here is this user's bookkeeping - no encode, no upload.
        inflight.erase(slot->chunk_id);
        ++result.dedup_chunks;
        ++result.index_hit_chunks;
        chunks_deduped_->Increment();
        ChunkRecord record{slot->chunk_id, slot->span.offset, slot->span.size,
                           slot->index_entry.t, slot->index_entry.n, true,
                           slot->wrapped_key, {}};
        AdoptShareDigests(slot->index_entry.shares, record);
        version.chunks.push_back(std::move(record));
        ChunkEntry entry;
        entry.size = slot->span.size;
        entry.logical_size = slot->span.size;
        entry.t = slot->index_entry.t;
        entry.n = slot->index_entry.n;
        entry.dedup = true;
        entry.wrapped_key = slot->wrapped_key;
        entry.shares = slot->index_entry.shares;
        CYRUS_RETURN_IF_ERROR(chunk_table_.Insert(slot->chunk_id, std::move(entry)));
        if (shares_recorded.insert(slot->chunk_id).second) {
          for (const ChunkShare& s : slot->index_entry.shares) {
            version.shares.push_back(
                ShareLocation{slot->chunk_id, s.share_index, s.csp});
          }
        }
        return OkStatus();
      }
      inflight.erase(slot->chunk_id);
      CYRUS_RETURN_IF_ERROR(slot->locations.status());
      const std::vector<ShareLocation>& locations = *slot->locations;
      ++result.new_chunks;
      chunks_scattered_->Increment();
      result.transfer.Append(slot->report);
      // Record the *target* share count n, not the stored count: a quorum
      // commit may have landed fewer, and the gap is repair debt the scrub
      // engine completes against exactly this record.
      const uint32_t stored = static_cast<uint32_t>(locations.size());
      ChunkRecord record{slot->chunk_id, slot->span.offset, slot->span.size,
                         config_.t, n, convergent, slot->wrapped_key, {}};
      record.share_digests = slot->digests;
      version.chunks.push_back(std::move(record));
      ChunkEntry entry;
      entry.size = slot->span.size;
      entry.logical_size = slot->span.size;
      entry.t = config_.t;
      entry.n = n;
      entry.dedup = convergent;
      entry.wrapped_key = slot->wrapped_key;
      for (const ShareLocation& loc : locations) {
        ChunkShare share{loc.share_index, loc.csp};
        if (const Sha1Digest* d = DigestForIndex(slot->digests, loc.share_index)) {
          share.digest = *d;
        }
        entry.shares.push_back(share);
      }
      if (convergent && config_.share_index != nullptr) {
        // Publish the layout for every other writer. Racing publishers of
        // the same chunk merge (uploads were byte-identical overwrites).
        ShareIndexEntry published;
        published.logical_size = slot->span.size;
        published.t = config_.t;
        published.n = n;
        published.refcount = 1;
        published.shares = entry.shares;
        CYRUS_RETURN_IF_ERROR(
            config_.share_index->Publish(slot->chunk_id, std::move(published)));
      }
      CYRUS_RETURN_IF_ERROR(chunk_table_.Insert(slot->chunk_id, std::move(entry)));
      if (shares_recorded.insert(slot->chunk_id).second) {
        version.shares.insert(version.shares.end(), locations.begin(),
                              locations.end());
      }
      if (stored < n) {
        ++result.degraded_chunks;
        result.missing_shares += n - stored;
        repair_->NoteDegradedWrite(slot->chunk_id, n - stored);
      }
      return OkStatus();
    };
    pipeline_status = pipeline.Submit(slot->dedup ? 0 : span.size,
                                      std::move(work), std::move(on_complete));
    if (!pipeline_status.ok()) {
      break;  // an earlier chunk failed; stop feeding, join what's running
    }
  }
  {
    obs::ScopedSpan drain_span = trace.Span("pipeline_drain");
    const Status drained = pipeline.Drain();
    if (pipeline_status.ok()) {
      pipeline_status = drained;
    }
  }
  CYRUS_RETURN_IF_ERROR(pipeline_status);
  result.uploaded_share_bytes = result.transfer.TotalBytes(TransferKind::kPut);

  CYRUS_RETURN_IF_ERROR(version.Validate());
  CYRUS_RETURN_IF_ERROR(tree_.Insert(version));

  // Metadata publishes only after every chunk's shares are stored
  // (Algorithm 2 line 10), so readers never see a half-uploaded file. The
  // gate is expressed over the aggregator's event stream: ScatterChunk fed
  // a ShareComplete per stored share, and draining the pipeline joined
  // them all, so the file-level completion event must have fired
  // (dedup-only Puts move no shares and have nothing to wait for).
  if (result.new_chunks > 0 && !aggregator_.FileComplete(version.file_name)) {
    return InternalError(StrCat(version.file_name,
                                ": pipeline drained but share uploads incomplete"));
  }
  // The metadata record marks the journal intent roll-forward-able: it is
  // only written once every chunk's quorum is durable, so recovery can
  // republish this version without touching share data.
  if (journal_ != nullptr) {
    CYRUS_RETURN_IF_ERROR(
        journal_->RecordMetadata(journal_id, ToWireForm(version).Serialize()));
  }
  obs::ScopedSpan publish_span = trace.Span("publish_meta");
  TransferReport meta_report;
  CYRUS_RETURN_IF_ERROR(UploadMetadata(version, meta_report));
  publish_span.End();
  if (journal_ != nullptr) {
    CYRUS_RETURN_IF_ERROR(journal_->Commit(journal_id));
  }
  // Overwrite decrements the superseded head's references (after the new
  // version is durably published, so a crash can only leak refs, never
  // free chunks the surviving metadata still needs). Old versions stay in
  // the tree for history, but their zero-ref chunks become scrub-
  // reclaimable. Only the convergent deployments pay this: the legacy
  // path keeps its append-only refcounts, matching pre-dedup behaviour.
  if (!IsNullDigest(parent)) {
    const FileVersion* old_head = tree_.Find(parent);
    if (old_head != nullptr && !old_head->deleted) {
      // Superseded chunks leave the decoded-chunk cache in every dedup
      // mode; chunks the new version still references stay warm (content
      // addressing makes them byte-identical).
      InvalidateCachedChunks(old_head->chunks, &version.chunks);
      if (convergent) {
        ReleaseChunkRefs(old_head->chunks);
      }
    }
  }
  result.transfer.Append(meta_report);
  RecordTransferMetrics(result.transfer, metrics_);
  return result;
}

Result<GetResult> CyrusClient::Get(std::string_view name) {
  gets_total_->Increment();
  LatencyRecorder latency(get_latency_ms_);
  obs::TraceBuilder trace(traces_, "Get", std::string(name));
  {
    obs::ScopedSpan sync_span = trace.Span("sync_meta");
    CYRUS_RETURN_IF_ERROR(SyncMetadata().status());
  }

  std::vector<const FileVersion*> live;
  CYRUS_ASSIGN_OR_RETURN(const FileVersion* newest,
                         NewestLiveHead(tree_, name, &live));

  Result<GetResult> body =
      config_.get_via_range_path
          ? GetRangeTraced(name, newest->id, 0, 0, /*whole_file=*/true, trace)
          : GetFullFileLegacy(name, newest->id, trace);
  CYRUS_ASSIGN_OR_RETURN(GetResult result, std::move(body));
  AnnotateConflicts(live, name, result);
  return result;
}

Result<GetResult> CyrusClient::GetVersion(std::string_view name,
                                          const Sha1Digest& version_id) {
  gets_total_->Increment();
  LatencyRecorder latency(get_latency_ms_);
  obs::TraceBuilder trace(traces_, "GetVersion", std::string(name));
  if (config_.get_via_range_path) {
    return GetRangeTraced(name, version_id, 0, 0, /*whole_file=*/true, trace);
  }
  return GetFullFileLegacy(name, version_id, trace);
}

Result<GetResult> CyrusClient::GetRange(std::string_view name, uint64_t offset,
                                        uint64_t len) {
  gets_total_->Increment();
  range_gets_total_->Increment();
  LatencyRecorder latency(get_latency_ms_);
  obs::TraceBuilder trace(traces_, "GetRange", std::string(name));
  {
    obs::ScopedSpan sync_span = trace.Span("sync_meta");
    CYRUS_RETURN_IF_ERROR(SyncMetadata().status());
  }
  std::vector<const FileVersion*> live;
  CYRUS_ASSIGN_OR_RETURN(const FileVersion* newest,
                         NewestLiveHead(tree_, name, &live));
  CYRUS_ASSIGN_OR_RETURN(
      GetResult result,
      GetRangeTraced(name, newest->id, offset, len, /*whole_file=*/false, trace));
  AnnotateConflicts(live, name, result);
  // Readahead fires only after the foreground bytes are assembled, so the
  // detector sees the range the caller actually consumed.
  if (const FileVersion* version = tree_.Find(result.version_id)) {
    MaybeScheduleReadahead(std::string(name), *version, result.range_offset,
                           result.content.size());
  }
  return result;
}

Result<GetResult> CyrusClient::GetFullFileLegacy(std::string_view name,
                                                 const Sha1Digest& version_id,
                                                 obs::TraceBuilder& trace) {
  const FileVersion* version = tree_.Find(version_id);
  if (version == nullptr || version->file_name != name) {
    return NotFoundError(StrCat("no version ", version_id.ToHex(), " of ", name));
  }

  GetResult result;
  result.version_id = version_id;
  result.file_size = version->size;

  // Build the download problem over *unique* chunks (duplicates within the
  // file are copied from the first occurrence's slice after the drain).
  // The whole file is allocated up front and every unique chunk decodes
  // directly into its slice (GatherChunk -> DecodeInto), so Get skips the
  // per-chunk temporaries and the assemble copy. Geometry is validated
  // before any slice is handed to a worker.
  obs::ScopedSpan select_span = trace.Span("select");
  std::vector<Sha1Digest> unique_ids;
  std::map<Sha1Digest, const ChunkRecord*> by_id;
  std::map<Sha1Digest, uint64_t> first_offset;
  result.content.assign(version->size, 0);
  for (const ChunkRecord& chunk : version->chunks) {
    if (chunk.offset + chunk.size > result.content.size()) {
      return DataLossError(StrCat(name, ": chunk geometry mismatch"));
    }
    if (by_id.emplace(chunk.id, &chunk).second) {
      unique_ids.push_back(chunk.id);
      first_offset.emplace(chunk.id, chunk.offset);
    }
  }

  DownloadProblem problem;
  problem.t = config_.t;
  problem.client_bandwidth = config_.client_downlink_bytes_per_sec;
  for (size_t i = 0; i < registry_.size(); ++i) {
    auto profile = registry_.profile(static_cast<int>(i));
    problem.csp_bandwidth.push_back(profile.ok() ? profile->download_bytes_per_sec
                                                 : 1.0);
  }
  bool optimizable = true;
  for (const Sha1Digest& id : unique_ids) {
    const ChunkRecord* chunk = by_id[id];
    if (chunk->t != config_.t) {
      optimizable = false;  // mixed thresholds: fall back to direct gather
    }
    DownloadChunk dc;
    dc.share_bytes = static_cast<double>(ShareSize(chunk->size, chunk->t));
    const std::vector<ShareLocation> locations = ResolveChunkLocations(*version, id);
    std::set<int> active_holders;
    for (const ShareLocation& loc : locations) {
      auto state = registry_.state(loc.csp);
      if (state.ok() && *state == CspState::kActive) {
        active_holders.insert(loc.csp);
      }
    }
    dc.stored_at.assign(active_holders.begin(), active_holders.end());
    problem.chunks.push_back(std::move(dc));
  }

  // Optimized downlink selection (Algorithm 1); on infeasibility (e.g. too
  // few active holders) GatherChunk's fallback path still tries everything.
  std::vector<std::vector<int>> selections(unique_ids.size());
  if (optimizable) {
    auto assignment = selector_->Select(problem);
    if (assignment.ok()) {
      selections = assignment->selected;
    }
  }
  select_span.End();

  // Pipelined gather, mirroring Put: chunk i+1 downloads and decodes on
  // the pool while chunk i's result is book-kept in order on this thread.
  // Each slot carries driver-resolved share locations so workers never
  // read the mutable FileVersion; migration merges happen per-slot in
  // on_complete, where the slot's own migrations are folded into the
  // version's ShareMap before the next completion is delivered.
  obs::ScopedSpan gather_span = trace.Span("gather");
  struct GatherSlot {
    ChunkRecord chunk;
    MutableByteSpan dst;  // the chunk's slice of result.content
    std::vector<ShareLocation> locations;
    std::vector<int> selected;
    Status status = InternalError("not gathered");
    std::vector<ShareLocation> updated;
    size_t migrated = 0;
    size_t hedged = 0;
    size_t integrity_rejected = 0;
    std::vector<ShareDigest> upgraded;
    TransferReport report;
  };
  std::list<GatherSlot> slots;  // stable addresses; outlives the pipeline
  const std::string file_name(version->file_name);
  OrderedPipeline::Options window;
  window.max_in_flight = pipeline_window();
  window.max_in_flight_bytes = config_.pipeline_window_bytes;
  OrderedPipeline pipeline(pool_.get(), window);

  Status pipeline_status;
  size_t digest_republish = 0;  // chunks whose version record gained digests
  for (size_t i = 0; i < unique_ids.size(); ++i) {
    slots.emplace_back();
    GatherSlot* slot = &slots.back();
    slot->chunk = *by_id[unique_ids[i]];
    // A record synced from v1/v2 metadata carries no digests; the chunk
    // table may have them (a Put or an earlier upgrade recorded them), and
    // workers must not read it, so merge here on the driver.
    AugmentRecordDigests(slot->chunk);
    slot->dst = MutableByteSpan(result.content.data() + slot->chunk.offset,
                                slot->chunk.size);
    slot->locations = ResolveChunkLocations(*version, unique_ids[i]);
    slot->selected = selections[i];

    auto work = [this, slot, &file_name] {
      slot->status = GatherChunk(file_name, slot->chunk, slot->dst,
                                 slot->locations, slot->selected, slot->updated,
                                 slot->migrated, slot->hedged,
                                 slot->integrity_rejected, slot->upgraded,
                                 slot->report);
    };
    auto on_complete = [this, slot, &version, &version_id, &result,
                        &gather_span, &digest_republish]() -> Status {
      result.transfer.Append(slot->report);
      result.hedged_downloads += slot->hedged;
      result.integrity_rejected_shares += slot->integrity_rejected;
      CYRUS_RETURN_IF_ERROR(slot->status);
      chunks_gathered_->Increment();
      ++result.chunks_decoded;
      gather_span.AddBytes(slot->chunk.size);

      // Persist this chunk's migrations into the version's ShareMap (the
      // metadata republish happens once, after the drain).
      if (slot->migrated > 0) {
        result.migrated_shares += slot->migrated;
        std::vector<ShareLocation> merged;
        for (const ShareLocation& loc : version->shares) {
          if (loc.chunk_id != slot->chunk.id) {
            merged.push_back(loc);
          }
        }
        merged.insert(merged.end(), slot->updated.begin(), slot->updated.end());
        CYRUS_RETURN_IF_ERROR(
            tree_.UpdateShareLocations(version->id, std::move(merged)));
        version = tree_.Find(version_id);  // re-resolve after mutation
      }
      // Fold freshly derived per-share digests into the version's
      // ChunkRecord (legacy upgrade, or new digests minted by healing /
      // migration) so the republished metadata authenticates future reads.
      if (!slot->upgraded.empty()) {
        if (slot->chunk.share_digests.empty()) {
          ++result.digest_upgraded_chunks;
          integrity_records_upgraded_->Increment();
        }
        ++digest_republish;
        CYRUS_RETURN_IF_ERROR(tree_.UpdateChunkShareDigests(
            version->id, slot->chunk.id, slot->upgraded));
        version = tree_.Find(version_id);  // re-resolve after mutation
      }
      if ((slot->migrated > 0 || !slot->upgraded.empty()) &&
          slot->chunk.dedup && config_.share_index != nullptr) {
        // Keep the cross-user layout current so the next writer's dedup
        // hit points at the migrated shares, not the dead CSP. Best
        // effort: a missed update self-heals on that writer's repair.
        if (const ChunkEntry* moved = chunk_table_.Find(slot->chunk.id)) {
          (void)config_.share_index->ReplaceShares(slot->chunk.id,
                                                   moved->shares);
        }
      }
      return OkStatus();
    };
    pipeline_status = pipeline.Submit(slot->chunk.size, std::move(work),
                                      std::move(on_complete));
    if (!pipeline_status.ok()) {
      break;
    }
  }
  {
    obs::ScopedSpan drain_span = trace.Span("pipeline_drain");
    const Status drained = pipeline.Drain();
    if (pipeline_status.ok()) {
      pipeline_status = drained;
    }
  }
  CYRUS_RETURN_IF_ERROR(pipeline_status);
  gather_span.End();
  if (result.migrated_shares > 0 || digest_republish > 0) {
    shares_migrated_->Increment(result.migrated_shares);
    obs::ScopedSpan republish_span = trace.Span("republish_meta");
    TransferReport meta_report;
    CYRUS_RETURN_IF_ERROR(UploadMetadata(*version, meta_report));
    result.transfer.Append(meta_report);
  }

  // Unique chunks already decoded in place; fill duplicate occurrences from
  // their first slice, then verify the whole file.
  obs::ScopedSpan assemble_span = trace.Span("assemble");
  for (const ChunkRecord& chunk : version->chunks) {
    const uint64_t src = first_offset.at(chunk.id);
    if (chunk.offset != src) {
      std::copy_n(result.content.begin() + src, chunk.size,
                  result.content.begin() + chunk.offset);
    }
  }
  if (Sha1::Hash(result.content) != version->content_id) {
    return DataLossError(StrCat(name, ": reassembled content fails integrity check"));
  }
  assemble_span.End();
  RecordTransferMetrics(result.transfer, metrics_);
  return result;
}

Result<GetResult> CyrusClient::GetRangeTraced(std::string_view name,
                                              const Sha1Digest& version_id,
                                              uint64_t offset, uint64_t len,
                                              bool whole_file,
                                              obs::TraceBuilder& trace) {
  const FileVersion* version = tree_.Find(version_id);
  if (version == nullptr || version->file_name != name) {
    return NotFoundError(StrCat("no version ", version_id.ToHex(), " of ", name));
  }
  if (whole_file) {
    offset = 0;
    len = version->size;
  }
  if (offset > version->size) {
    // The REST layer maps this to 416 Range Not Satisfiable.
    return InvalidArgumentError(StrCat(name, ": range start ", offset,
                                       " past end of ", version->size,
                                       "-byte file"));
  }
  len = std::min(len, version->size - offset);
  const uint64_t range_end = offset + len;

  GetResult result;
  result.version_id = version_id;
  result.file_size = version->size;
  result.range_offset = offset;
  result.content.assign(len, 0);

  // Covering chunks, in file order. A record covers the range iff it
  // overlaps [offset, range_end); everything else is never downloaded,
  // decoded, or allocated - the whole point of the range path. Geometry is
  // validated for every record so a corrupt chunk table fails loudly even
  // when the bad record is outside the range.
  obs::ScopedSpan select_span = trace.Span("select");
  std::vector<const ChunkRecord*> covering;
  std::map<Sha1Digest, const ChunkRecord*> by_id;  // first covering record
  std::vector<Sha1Digest> unique_ids;
  std::set<Sha1Digest> dup_ids;  // ids with >1 covering occurrence
  for (const ChunkRecord& chunk : version->chunks) {
    if (chunk.offset + chunk.size > version->size) {
      return DataLossError(StrCat(name, ": chunk geometry mismatch"));
    }
    if (chunk.offset >= range_end || chunk.offset + chunk.size <= offset) {
      continue;
    }
    covering.push_back(&chunk);
    if (by_id.emplace(chunk.id, &chunk).second) {
      unique_ids.push_back(chunk.id);
    } else {
      dup_ids.insert(chunk.id);
    }
  }

  // Copies a decoded chunk's overlap with the range into the result span.
  auto copy_overlap = [&](const ChunkRecord& chunk, const Bytes& data) {
    const uint64_t begin = std::max<uint64_t>(chunk.offset, offset);
    const uint64_t end =
        std::min<uint64_t>(chunk.offset + chunk.size, range_end);
    std::copy_n(data.begin() + static_cast<ptrdiff_t>(begin - chunk.offset),
                end - begin,
                result.content.begin() + static_cast<ptrdiff_t>(begin - offset));
  };

  // Buffers pinned for the post-drain duplicate fill: cache hits and
  // gathered chunks whose id recurs in the covering set. Pinning (rather
  // than re-Get from the cache) keeps the fill correct even if the ARC
  // evicts the entry mid-operation.
  std::map<Sha1Digest, std::shared_ptr<const Bytes>> resident;

  // Cache pass, on the driver thread: hits are copied out immediately and
  // drop out of the download problem entirely.
  std::vector<Sha1Digest> to_gather;
  for (const Sha1Digest& id : unique_ids) {
    std::shared_ptr<const Bytes> cached = chunk_cache_.Get(id);
    if (cached == nullptr) {
      to_gather.push_back(id);
      continue;
    }
    ++result.chunks_from_cache;
    copy_overlap(*by_id.at(id), *cached);
    if (dup_ids.count(id) > 0) {
      resident.emplace(id, std::move(cached));
    }
  }

  // Optimized downlink selection over the chunks that actually need the
  // network (Algorithm 1), exactly as in the whole-file path.
  DownloadProblem problem;
  problem.t = config_.t;
  problem.client_bandwidth = config_.client_downlink_bytes_per_sec;
  for (size_t i = 0; i < registry_.size(); ++i) {
    auto profile = registry_.profile(static_cast<int>(i));
    problem.csp_bandwidth.push_back(profile.ok() ? profile->download_bytes_per_sec
                                                 : 1.0);
  }
  bool optimizable = true;
  for (const Sha1Digest& id : to_gather) {
    const ChunkRecord* chunk = by_id.at(id);
    if (chunk->t != config_.t) {
      optimizable = false;
    }
    DownloadChunk dc;
    dc.share_bytes = static_cast<double>(ShareSize(chunk->size, chunk->t));
    const std::vector<ShareLocation> locations = ResolveChunkLocations(*version, id);
    std::set<int> active_holders;
    for (const ShareLocation& loc : locations) {
      auto state = registry_.state(loc.csp);
      if (state.ok() && *state == CspState::kActive) {
        active_holders.insert(loc.csp);
      }
    }
    dc.stored_at.assign(active_holders.begin(), active_holders.end());
    problem.chunks.push_back(std::move(dc));
  }
  std::vector<std::vector<int>> selections(to_gather.size());
  if (optimizable) {
    auto assignment = selector_->Select(problem);
    if (assignment.ok()) {
      selections = assignment->selected;
    }
  }
  select_span.End();

  // Pipelined gather of the misses. The range path decodes each chunk into
  // a fresh cache-owned buffer (inserted on completion, overlap copied to
  // the result); the whole-file path keeps the zero-copy decode straight
  // into the result slice and does NOT populate the cache - one large
  // download must not flush a streaming working set. Fragment scheduling:
  // a range Get caps the window at max_resident_chunks decoded buffers so
  // memory stays bounded regardless of span length.
  obs::ScopedSpan gather_span = trace.Span("gather");
  struct GatherSlot {
    ChunkRecord chunk;
    std::shared_ptr<Bytes> buffer;  // range path only
    MutableByteSpan dst;
    std::vector<ShareLocation> locations;
    std::vector<int> selected;
    Status status = InternalError("not gathered");
    std::vector<ShareLocation> updated;
    size_t migrated = 0;
    size_t hedged = 0;
    size_t integrity_rejected = 0;
    std::vector<ShareDigest> upgraded;
    TransferReport report;
  };
  std::list<GatherSlot> slots;  // stable addresses; outlives the pipeline
  const std::string file_name(version->file_name);
  OrderedPipeline::Options window;
  window.max_in_flight = pipeline_window();
  if (!whole_file && config_.max_resident_chunks > 0) {
    window.max_in_flight = std::min<size_t>(window.max_in_flight,
                                            config_.max_resident_chunks);
  }
  window.max_in_flight_bytes = config_.pipeline_window_bytes;
  OrderedPipeline pipeline(pool_.get(), window);

  Status pipeline_status;
  size_t digest_republish = 0;  // chunks whose version record gained digests
  for (size_t i = 0; i < to_gather.size(); ++i) {
    slots.emplace_back();
    GatherSlot* slot = &slots.back();
    slot->chunk = *by_id.at(to_gather[i]);
    // Merge chunk-table digests into the worker's record copy (see the
    // legacy path): workers authenticate against the record alone.
    AugmentRecordDigests(slot->chunk);
    if (whole_file) {
      slot->dst = MutableByteSpan(result.content.data() + slot->chunk.offset,
                                  slot->chunk.size);
    } else {
      slot->buffer = std::make_shared<Bytes>(slot->chunk.size);
      slot->dst = MutableByteSpan(*slot->buffer);
    }
    slot->locations = ResolveChunkLocations(*version, slot->chunk.id);
    slot->selected = selections[i];

    auto work = [this, slot, &file_name] {
      slot->status = GatherChunk(file_name, slot->chunk, slot->dst,
                                 slot->locations, slot->selected, slot->updated,
                                 slot->migrated, slot->hedged,
                                 slot->integrity_rejected, slot->upgraded,
                                 slot->report);
    };
    auto on_complete = [this, slot, &version, &version_id, &result, &gather_span,
                        &resident, &dup_ids, &copy_overlap, &digest_republish,
                        whole_file]() -> Status {
      result.transfer.Append(slot->report);
      result.hedged_downloads += slot->hedged;
      result.integrity_rejected_shares += slot->integrity_rejected;
      CYRUS_RETURN_IF_ERROR(slot->status);
      chunks_gathered_->Increment();
      ++result.chunks_decoded;
      gather_span.AddBytes(slot->chunk.size);

      // Persist this chunk's migrations into the version's ShareMap (the
      // metadata republish happens once, after the drain).
      if (slot->migrated > 0) {
        result.migrated_shares += slot->migrated;
        std::vector<ShareLocation> merged;
        for (const ShareLocation& loc : version->shares) {
          if (loc.chunk_id != slot->chunk.id) {
            merged.push_back(loc);
          }
        }
        merged.insert(merged.end(), slot->updated.begin(), slot->updated.end());
        CYRUS_RETURN_IF_ERROR(
            tree_.UpdateShareLocations(version->id, std::move(merged)));
        version = tree_.Find(version_id);  // re-resolve after mutation
      }
      // Fold freshly derived per-share digests into the version's
      // ChunkRecord so the republished metadata authenticates future reads.
      if (!slot->upgraded.empty()) {
        if (slot->chunk.share_digests.empty()) {
          ++result.digest_upgraded_chunks;
          integrity_records_upgraded_->Increment();
        }
        ++digest_republish;
        CYRUS_RETURN_IF_ERROR(tree_.UpdateChunkShareDigests(
            version->id, slot->chunk.id, slot->upgraded));
        version = tree_.Find(version_id);  // re-resolve after mutation
      }
      if ((slot->migrated > 0 || !slot->upgraded.empty()) &&
          slot->chunk.dedup && config_.share_index != nullptr) {
        if (const ChunkEntry* moved = chunk_table_.Find(slot->chunk.id)) {
          (void)config_.share_index->ReplaceShares(slot->chunk.id,
                                                   moved->shares);
        }
      }

      if (!whole_file) {
        copy_overlap(slot->chunk, *slot->buffer);
        std::shared_ptr<const Bytes> decoded = std::move(slot->buffer);
        if (dup_ids.count(slot->chunk.id) > 0) {
          resident.emplace(slot->chunk.id, decoded);
        }
        chunk_cache_.Put(slot->chunk.id, std::move(decoded));
      }
      return OkStatus();
    };
    pipeline_status = pipeline.Submit(slot->chunk.size, std::move(work),
                                      std::move(on_complete));
    if (!pipeline_status.ok()) {
      break;
    }
  }
  {
    obs::ScopedSpan drain_span = trace.Span("pipeline_drain");
    const Status drained = pipeline.Drain();
    if (pipeline_status.ok()) {
      pipeline_status = drained;
    }
  }
  CYRUS_RETURN_IF_ERROR(pipeline_status);
  gather_span.End();
  if (result.migrated_shares > 0 || digest_republish > 0) {
    shares_migrated_->Increment(result.migrated_shares);
    obs::ScopedSpan republish_span = trace.Span("republish_meta");
    TransferReport meta_report;
    CYRUS_RETURN_IF_ERROR(UploadMetadata(*version, meta_report));
    result.transfer.Append(meta_report);
  }

  // Duplicate fill: every covering record after the first for its id. The
  // bytes come from the pinned buffer (range path, or a whole-file cache
  // hit) so a cache-resident duplicate is never recopied through the
  // content vector; the whole-file gathered case - where the chunk decoded
  // straight into its first slice and no buffer exists - copies from that
  // slice, which there always holds the complete chunk.
  obs::ScopedSpan assemble_span = trace.Span("assemble");
  for (const ChunkRecord* chunk : covering) {
    const ChunkRecord* first = by_id.at(chunk->id);
    if (chunk == first) {
      continue;
    }
    auto pinned = resident.find(chunk->id);
    if (pinned != resident.end()) {
      copy_overlap(*chunk, *pinned->second);
      continue;
    }
    if (!whole_file) {
      // Unreachable: the range path pins every duplicate id above.
      return InternalError(StrCat(name, ": duplicate chunk ",
                                  chunk->id.ToHex(), " has no pinned buffer"));
    }
    std::copy_n(result.content.begin() + static_cast<ptrdiff_t>(first->offset),
                chunk->size,
                result.content.begin() + static_cast<ptrdiff_t>(chunk->offset));
  }
  if (whole_file && Sha1::Hash(result.content) != version->content_id) {
    return DataLossError(StrCat(name, ": reassembled content fails integrity check"));
  }
  assemble_span.End();
  RecordTransferMetrics(result.transfer, metrics_);
  return result;
}

Status CyrusClient::FetchChunkForCache(const ChunkRecord& chunk,
                                       const std::vector<ShareLocation>& locations,
                                       Bytes* out) {
  // Fastest links first: a prefetch that waits on the slowest CSP arrives
  // after the reader does, which defeats the point of readahead. (The
  // foreground gather gets the full optimizing selector; this lean path
  // just sorts by the profiled downlink.)
  std::vector<ShareLocation> ordered(locations);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [this](const ShareLocation& a, const ShareLocation& b) {
                     auto pa = registry_.profile(a.csp);
                     auto pb = registry_.profile(b.csp);
                     const double ra = pa.ok() ? pa->download_bytes_per_sec : 0.0;
                     const double rb = pb.ok() ? pb->download_bytes_per_sec : 0.0;
                     return ra > rb;
                   });
  std::vector<Share> shares;
  std::set<int> attempted;
  TransferReport report;
  for (const ShareLocation& loc : ordered) {
    if (shares.size() >= chunk.t) {
      break;
    }
    if (!attempted.insert(loc.csp).second) {
      continue;
    }
    auto state = registry_.state(loc.csp);
    if (!state.ok() || *state != CspState::kActive) {
      continue;
    }
    auto conn = registry_.connector(loc.csp);
    if (!conn.ok()) {
      continue;
    }
    Result<Bytes> data =
        DownloadWithRetry(**conn, TransferKind::kGet, loc.csp,
                          ShareName(chunk.id, loc.share_index, chunk.t),
                          config_.transfer_retry, report);
    if (!data.ok()) {
      if (IsCspHealthFailure(data.status())) {
        (void)NoteTransferFailure(loc.csp, data.status());
      }
      continue;
    }
    if (config_.verify_share_digests) {
      if (const Sha1Digest* want = chunk.FindShareDigest(loc.share_index)) {
        if (Sha1::Hash(*data) != *want) {
          // Discard and indict, but no healing here: the background path
          // must never race the foreground gather's repair writes.
          (void)NoteIntegrityFailure(loc.csp);
          continue;
        }
      }
    }
    monitor_.RecordProbe(loc.csp, now_, true);
    shares.push_back(Share{loc.share_index, *std::move(data)});
  }
  if (shares.size() < chunk.t) {
    return UnavailableError(StrCat("readahead chunk ", chunk.id.ToHex(),
                                   ": only ", shares.size(), " of t=", chunk.t,
                                   " shares reachable"));
  }
  std::string decode_key = config_.key_string;
  if (chunk.dedup) {
    CYRUS_ASSIGN_OR_RETURN(decode_key,
                           deriver_.UnwrapForUser(chunk.wrapped_key, chunk.id));
  }
  CYRUS_ASSIGN_OR_RETURN(
      SecretSharingCodec decoder,
      SecretSharingCodec::Create(decode_key, chunk.t, kMaxShares));
  out->assign(chunk.size, 0);
  CYRUS_RETURN_IF_ERROR(decoder.DecodeInto(shares, MutableByteSpan(*out)));
  if (Sha1::Hash(*out) != chunk.id) {
    // No error correction on the background path: the next foreground
    // gather of this chunk runs the full repair machinery.
    return DataLossError(StrCat("readahead chunk ", chunk.id.ToHex(),
                                " failed integrity check"));
  }
  RecordTransferMetrics(report, metrics_);
  return OkStatus();
}

void CyrusClient::MaybeScheduleReadahead(const std::string& name,
                                         const FileVersion& version,
                                         uint64_t offset, uint64_t len) {
  if (config_.readahead_chunks == 0 || pool_ == nullptr ||
      !chunk_cache_.enabled()) {
    return;
  }
  uint64_t generation = 0;
  uint64_t resume = 0;
  {
    std::lock_guard<std::mutex> lock(readahead_mutex_);
    StreamState& stream = streams_[name];
    const bool sequential = len > 0 && offset == stream.next_offset;
    stream.next_offset = offset + len;
    if (!sequential) {
      // A seek (or a fresh mid-file stream): bump the generation so
      // in-flight prefetches for the abandoned position self-cancel, and
      // prefetch nothing until the reader looks sequential again.
      ++stream.generation;
      return;
    }
    generation = stream.generation;
    resume = stream.next_offset;
  }

  // Pick the next K chunks past the consumed range. The chunk containing
  // `resume` mid-chunk was covering in the call that just finished, so
  // only records starting at or after it matter. Everything here runs on
  // the driver thread (tree/chunk-table reads); the tasks capture copies.
  struct Prefetch {
    ChunkRecord chunk;
    std::vector<ShareLocation> locations;
  };
  std::vector<Prefetch> picks;
  std::set<Sha1Digest> picked;
  for (const ChunkRecord& chunk : version.chunks) {
    if (picks.size() >= config_.readahead_chunks) {
      break;
    }
    if (chunk.offset < resume || picked.count(chunk.id) > 0 ||
        chunk_cache_.Peek(chunk.id) != nullptr) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(readahead_mutex_);
      if (!readahead_inflight_.insert(chunk.id).second) {
        continue;  // an earlier call is already fetching it
      }
      ++readahead_active_;
    }
    picked.insert(chunk.id);
    picks.push_back(Prefetch{chunk, ResolveChunkLocations(version, chunk.id)});
  }

  for (Prefetch& pick : picks) {
    readahead_issued_->Increment();
    pool_->SubmitBackground([this, name, generation, pick = std::move(pick)] {
      bool stale = true;
      {
        std::lock_guard<std::mutex> lock(readahead_mutex_);
        auto it = streams_.find(name);
        stale = it == streams_.end() || it->second.generation != generation;
      }
      if (stale) {
        readahead_cancelled_->Increment();  // credited: the reader seeked
      } else {
        Bytes chunk_bytes;
        if (FetchChunkForCache(pick.chunk, pick.locations, &chunk_bytes).ok()) {
          chunk_cache_.Put(pick.chunk.id,
                           std::make_shared<const Bytes>(std::move(chunk_bytes)));
          readahead_completed_->Increment();
        } else {
          readahead_cancelled_->Increment();
        }
      }
      std::lock_guard<std::mutex> lock(readahead_mutex_);
      readahead_inflight_.erase(pick.chunk.id);
      if (--readahead_active_ == 0) {
        readahead_idle_.notify_all();
      }
    });
  }
}

void CyrusClient::WaitForReadahead() {
  std::unique_lock<std::mutex> lock(readahead_mutex_);
  readahead_idle_.wait(lock, [this] { return readahead_active_ == 0; });
}

CyrusClient::ReadaheadStats CyrusClient::readahead_stats() const {
  ReadaheadStats stats;
  stats.issued = readahead_issued_->value();
  stats.completed = readahead_completed_->value();
  stats.cancelled = readahead_cancelled_->value();
  return stats;
}

void CyrusClient::InvalidateCachedChunks(const std::vector<ChunkRecord>& released,
                                         const std::vector<ChunkRecord>* kept) {
  if (!chunk_cache_.enabled()) {
    return;
  }
  std::set<Sha1Digest> keep;
  if (kept != nullptr) {
    for (const ChunkRecord& chunk : *kept) {
      keep.insert(chunk.id);
    }
  }
  std::set<Sha1Digest> seen;
  for (const ChunkRecord& chunk : released) {
    if (seen.insert(chunk.id).second && keep.count(chunk.id) == 0) {
      chunk_cache_.Invalidate(chunk.id);
    }
  }
}

Result<PutResult> CyrusClient::ImportForeignObject(int csp, std::string_view object_name,
                                                   std::string_view target_name,
                                                   bool delete_original) {
  CYRUS_ASSIGN_OR_RETURN(CloudConnector * conn, registry_.connector(csp));
  CYRUS_ASSIGN_OR_RETURN(Bytes content, conn->Download(object_name));
  CYRUS_ASSIGN_OR_RETURN(PutResult result, Put(target_name, content));
  if (delete_original) {
    // Only remove the plaintext once the CYRUS copy is fully durable
    // (Put published metadata after all shares landed).
    CYRUS_RETURN_IF_ERROR(conn->Delete(object_name));
  }
  return result;
}

Status CyrusClient::RebalanceMetadata() {
  TransferReport report;
  for (const FileVersion* version : tree_.AllVersions()) {
    CYRUS_RETURN_IF_ERROR(UploadMetadata(*version, report));
  }
  return OkStatus();
}

Result<ScrubReport> CyrusClient::ScrubOnce() {
  obs::TraceBuilder trace(traces_, "ScrubOnce", "");
  // Give tripped breakers their half-open probe before scrubbing, so a CSP
  // that recovered during the cooldown rejoins placement and this very
  // scrub pass can complete degraded writes onto it.
  CYRUS_RETURN_IF_ERROR(ProbeRecoveredCsps());
  CYRUS_ASSIGN_OR_RETURN(ScrubReport report, repair_->ScrubOnce(&trace));
  if (report.repaired_chunks.empty() && report.upgraded_chunks.empty()) {
    return report;
  }
  obs::ScopedSpan republish_span = trace.Span("republish_meta");
  // The engine rewrote the chunk table; fold each repaired chunk's new
  // locations - and each touched chunk's per-share digests (integrity
  // heals and legacy upgrades) - into every version referencing it and
  // republish that version's metadata so other clients find the rebuilt
  // shares (the same contract lazy migration honors in GetVersion).
  std::set<Sha1Digest> touched(report.repaired_chunks.begin(),
                               report.repaired_chunks.end());
  touched.insert(report.upgraded_chunks.begin(), report.upgraded_chunks.end());
  for (const FileVersion* version : tree_.AllVersions()) {
    std::set<Sha1Digest> affected;
    for (const ChunkRecord& chunk : version->chunks) {
      if (touched.count(chunk.id) > 0) {
        affected.insert(chunk.id);
      }
    }
    if (affected.empty()) {
      continue;
    }
    std::vector<ShareLocation> merged;
    for (const ShareLocation& loc : version->shares) {
      if (affected.count(loc.chunk_id) == 0) {
        merged.push_back(loc);
      }
    }
    std::map<Sha1Digest, std::vector<ShareDigest>> fresh_digests;
    for (const Sha1Digest& chunk_id : affected) {
      const ChunkEntry* entry = chunk_table_.Find(chunk_id);
      if (entry == nullptr) {
        continue;  // evicted between repair and republish; keep old rows out
      }
      std::vector<ShareDigest>& digests = fresh_digests[chunk_id];
      for (const ChunkShare& share : entry->shares) {
        merged.push_back(ShareLocation{chunk_id, share.share_index, share.csp});
        if (share.has_digest()) {
          digests.push_back(ShareDigest{share.share_index, share.digest});
        }
      }
    }
    const Sha1Digest version_id = version->id;
    CYRUS_RETURN_IF_ERROR(tree_.UpdateShareLocations(version_id, std::move(merged)));
    for (auto& [chunk_id, digests] : fresh_digests) {
      if (!digests.empty()) {
        CYRUS_RETURN_IF_ERROR(tree_.UpdateChunkShareDigests(
            version_id, chunk_id, std::move(digests)));
      }
    }
    const FileVersion* refreshed = tree_.Find(version_id);
    TransferReport meta_report;
    CYRUS_RETURN_IF_ERROR(UploadMetadata(*refreshed, meta_report));
    report.transfer.Append(meta_report);
  }
  return report;
}

std::vector<ChunkHealth> CyrusClient::ScrubScan() { return repair_->Scan(); }

Status CyrusClient::ProbeRecoveredCsps() {
  if (!config_.breaker.enabled) {
    return OkStatus();
  }
  const size_t csp_count = registry_.size();
  for (size_t i = 0; i < csp_count; ++i) {
    const int csp = static_cast<int>(i);
    std::shared_ptr<CircuitBreaker> breaker;
    {
      std::lock_guard<std::mutex> topology(topology_mutex_);
      auto state = registry_.state(csp);
      if (!state.ok() || *state != CspState::kFailed) {
        continue;
      }
      auto it = breakers_.find(csp);
      if (it == breakers_.end()) {
        continue;
      }
      breaker = it->second;
    }
    auto conn = registry_.connector(csp);
    if (!conn.ok()) {
      continue;
    }
    // One cheap call through the breaker-wrapped connector: once the
    // cooldown has elapsed the breaker admits it as the half-open probe,
    // and a success closes the breaker, whose transition callback marks
    // the CSP recovered in registry and ring.
    auto listing = (*conn)->List("");
    if (listing.ok() && breaker->state() == CircuitBreaker::State::kClosed) {
      // Normally the transition callback already re-admitted the CSP; this
      // covers a breaker that was closed while the registry stayed failed.
      (void)MarkCspRecovered(csp);
    }
  }
  return OkStatus();
}

Result<JournalRecoveryReport> CyrusClient::RecoverFromJournal() {
  JournalRecoveryReport report;
  if (journal_ == nullptr) {
    return report;
  }
  const std::vector<JournalIntent> pending = journal_->PendingIntents();
  if (pending.empty()) {
    return report;
  }
  // Pull published metadata first: an interrupted Put may have been synced
  // from another device already, and its shares may now be referenced by a
  // committed chunk - roll-back must never delete those.
  CYRUS_RETURN_IF_ERROR(SyncMetadata().status());

  std::set<std::string> referenced;
  for (const Sha1Digest& chunk_id : chunk_table_.AllChunkIds()) {
    const ChunkEntry* entry = chunk_table_.Find(chunk_id);
    if (entry == nullptr) {
      continue;
    }
    for (const ChunkShare& share : entry->shares) {
      referenced.insert(ShareName(chunk_id, share.share_index, entry->t));
    }
  }
  // Under convergent dedup, share names are content-addressed and shared
  // across users: the object this client's crashed Put journaled may be the
  // very object another tenant's committed metadata (and the deployment-wide
  // ShareIndex) reference. This client's chunk table knows nothing about
  // those references, so protect every object any live index entry records
  // - including zero-ref entries (adoptable until scrub reclaims them
  // through its own erase-then-delete path) and pending-delete tombstones
  // (scrub owns those deletions, not rollback).
  if (config_.share_index != nullptr) {
    for (const auto& [chunk_id, entry] : config_.share_index->Snapshot()) {
      for (const ChunkShare& share : entry.shares) {
        referenced.insert(ShareName(chunk_id, share.share_index, entry.t));
      }
    }
  }
  std::set<std::string> known_ids;
  for (const FileVersion* version : tree_.AllVersions()) {
    known_ids.insert(version->id.ToHex());
  }

  for (const JournalIntent& intent : pending) {
    ++report.intents_seen;
    if (known_ids.count(intent.version_id) > 0) {
      // The version reached the tree (the publish happened, or another
      // device finished the Put): just retire the intent.
      CYRUS_RETURN_IF_ERROR(journal_->Commit(intent.version_id));
      continue;
    }
    if (intent.has_metadata) {
      // Roll forward. The M record was written only after every chunk's
      // quorum was durable, so republishing the metadata completes the Put
      // without touching share data.
      CYRUS_ASSIGN_OR_RETURN(FileVersion wire,
                             FileVersion::Deserialize(intent.meta_wire));
      FileVersion version = ToLocalForm(std::move(wire));
      CYRUS_RETURN_IF_ERROR(version.Validate());
      if (!tree_.Contains(version.id)) {
        CYRUS_RETURN_IF_ERROR(tree_.Insert(version));
        CYRUS_RETURN_IF_ERROR(RegisterVersionChunks(version));
      }
      TransferReport transfer;
      CYRUS_RETURN_IF_ERROR(UploadMetadata(*tree_.Find(version.id), transfer));
      CYRUS_RETURN_IF_ERROR(journal_->Commit(intent.version_id));
      ++report.rolled_forward;
      continue;
    }
    // Roll back: the Put died before all shares were durable, and no
    // metadata references them. Delete every journaled orphan object.
    bool all_cleaned = true;
    for (const JournalShare& share : intent.shares) {
      if (referenced.count(share.object_name) > 0) {
        continue;  // a committed chunk owns this object now
      }
      auto index = registry_.IndexByName(share.csp_name);
      if (!index.ok()) {
        all_cleaned = false;  // no account at that provider this session
        continue;
      }
      auto conn = registry_.connector(*index);
      if (!conn.ok()) {
        all_cleaned = false;
        continue;
      }
      const Status deleted = (*conn)->Delete(share.object_name);
      if (deleted.ok()) {
        ++report.orphan_shares_deleted;
      } else if (deleted.code() != StatusCode::kNotFound) {
        all_cleaned = false;  // provider unreachable: retry next start
      }
    }
    if (all_cleaned) {
      CYRUS_RETURN_IF_ERROR(journal_->Commit(intent.version_id));
      ++report.rolled_back;
    }
  }
  return report;
}

Status CyrusClient::Delete(std::string_view name) {
  const Sha1Digest parent = ParentFor(name);
  if (IsNullDigest(parent)) {
    return NotFoundError(StrCat("no version of ", name, " to delete"));
  }
  const FileVersion* head = tree_.Find(parent);
  if (head == nullptr || head->deleted) {
    return NotFoundError(StrCat(name, " is already deleted"));
  }
  // Deletion is a marker version: metadata stays (undelete support), chunk
  // shares stay (other files may reference them) - paper §5.4.
  //
  // Copy the head's chunk list before inserting the marker: tree_.Insert
  // may rehash and the `head` pointer is not stable across it.
  const std::vector<ChunkRecord> released_chunks = head->chunks;
  FileVersion marker;
  marker.content_id = Sha1::Hash(ByteSpan{});
  marker.id = ComputeVersionId(marker.content_id, parent, name);
  marker.prev_id = parent;
  marker.client_id = config_.client_id;
  marker.file_name = std::string(name);
  marker.deleted = true;
  marker.modified_time = now_;
  marker.size = 0;
  CYRUS_RETURN_IF_ERROR(tree_.Insert(marker));
  TransferReport report;
  CYRUS_RETURN_IF_ERROR(UploadMetadata(marker, report));
  // Only after the marker is durable do the dead head's chunks lose their
  // references; zero-ref dedup chunks become reclaimable by the next scrub.
  InvalidateCachedChunks(released_chunks, nullptr);
  if (convergent_writes()) {
    ReleaseChunkRefs(released_chunks);
  }
  return OkStatus();
}

void CyrusClient::ReleaseChunkRefs(const std::vector<ChunkRecord>& chunks) {
  // Mirror of RegisterVersionChunks: one reference per distinct chunk per
  // version, released locally and (for dedup chunks) globally. Failures are
  // swallowed - a release that cannot land leaks at worst one reference,
  // which errs toward keeping data; the ShareIndex clamps at zero so a
  // double release can never free a chunk another user still holds.
  std::set<Sha1Digest> seen;
  for (const ChunkRecord& chunk : chunks) {
    if (!seen.insert(chunk.id).second) {
      continue;
    }
    const ChunkEntry* entry = chunk_table_.Find(chunk.id);
    if (entry == nullptr) {
      continue;
    }
    const bool global = entry->dedup && config_.share_index != nullptr;
    if (!chunk_table_.Release(chunk.id).ok()) {
      continue;  // already at zero locally: the global ref went with it
    }
    if (global) {
      (void)config_.share_index->Release(chunk.id);
    }
    // A chunk at zero references is scrub-reclaimable: its cached
    // plaintext must not outlive the shares.
    const ChunkEntry* after = chunk_table_.Find(chunk.id);
    if (after == nullptr || after->refcount == 0) {
      chunk_cache_.Invalidate(chunk.id);
    }
  }
}

Result<std::vector<FileListing>> CyrusClient::List(std::string_view directory_prefix) {
  CYRUS_RETURN_IF_ERROR(SyncMetadata().status());
  std::vector<FileListing> out;
  for (const std::string& name : tree_.FileNames(/*include_deleted=*/false)) {
    if (!StartsWith(name, directory_prefix)) {
      continue;
    }
    std::vector<const FileVersion*> live;
    for (const FileVersion* head : tree_.Heads(name)) {
      if (!head->deleted) {
        live.push_back(head);
      }
    }
    if (live.empty()) {
      continue;
    }
    const FileVersion* newest = live.front();
    for (const FileVersion* head : live) {
      if (head->modified_time > newest->modified_time) {
        newest = head;
      }
    }
    auto history = tree_.History(newest->id);
    out.push_back(FileListing{name, newest->size, newest->modified_time,
                              history.ok() ? history->size() : 1, live.size() > 1});
  }
  return out;
}

Result<std::vector<const FileVersion*>> CyrusClient::Versions(std::string_view name) {
  const std::vector<const FileVersion*> heads = tree_.Heads(name);
  if (heads.empty()) {
    return NotFoundError(StrCat("no versions of ", name));
  }
  const FileVersion* newest = heads.front();
  for (const FileVersion* head : heads) {
    if (head->modified_time > newest->modified_time) {
      newest = head;
    }
  }
  return tree_.History(newest->id);
}

Status CyrusClient::ResolveConflict(std::string_view name, const Sha1Digest& winner) {
  std::vector<const FileVersion*> live;
  for (const FileVersion* head : tree_.Heads(name)) {
    if (!head->deleted) {
      live.push_back(head);
    }
  }
  if (live.size() < 2) {
    return FailedPreconditionError(StrCat(name, " has no conflict to resolve"));
  }
  bool winner_found = false;
  for (const FileVersion* head : live) {
    winner_found |= head->id == winner;
  }
  if (!winner_found) {
    return InvalidArgumentError(
        StrCat(winner.ToHex(), " is not a conflicting head of ", name));
  }
  // Losing heads are renamed, never discarded: each gets a child version
  // under "<name>.conflict-<shortid>" pointing at the same content.
  TransferReport report;
  for (const FileVersion* head : live) {
    if (head->id == winner) {
      continue;
    }
    FileVersion rename = *head;
    rename.prev_id = head->id;
    rename.client_id = config_.client_id;
    rename.file_name = StrCat(name, ".conflict-", head->id.ToHex().substr(0, 8));
    rename.id = ComputeVersionId(rename.content_id, rename.prev_id, rename.file_name);
    rename.modified_time = now_;
    CYRUS_RETURN_IF_ERROR(tree_.Insert(rename));
    CYRUS_RETURN_IF_ERROR(RegisterVersionChunks(rename));
    CYRUS_RETURN_IF_ERROR(UploadMetadata(rename, report));
  }
  return OkStatus();
}

}  // namespace cyrus
