// CyrusClient: the public facade implementing the paper's API (Table 3).
//
//   s = create()      -> CyrusClient::Create(config)
//   add(s, c)         -> AddCsp()
//   remove(s, c)      -> RemoveCsp()
//   put(s, f)         -> Put()
//   f' = get(s, f, v) -> Get() / GetVersion()
//   delete(s, f)      -> Delete()
//   list(s, d)        -> List()
//   s' = recover(s)   -> Recover()
//
// The client owns all CYRUS mechanics: content-defined chunking,
// deduplication against the global chunk table, keyed non-systematic
// Reed-Solomon secret sharing, reliability parameter selection (Eq. 1),
// consistent-hash share placement (optionally cluster-aware), optimized
// downlink CSP selection (Algorithm 1), metadata scattering, distributed
// conflict detection, versioning/undelete, and lazy share migration after
// CSP failure or removal. It talks to providers exclusively through the
// five-call CloudConnector interface.
#ifndef SRC_CORE_CLIENT_H_
#define SRC_CORE_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/chunker/chunker.h"
#include "src/cloud/availability.h"
#include "src/cloud/circuit_breaker.h"
#include "src/cloud/registry.h"
#include "src/crypto/convergent.h"
#include "src/dedup/share_index.h"
#include "src/core/chunk_cache.h"
#include "src/core/hash_ring.h"
#include "src/core/hedged_fetch.h"
#include "src/core/local_cache.h"
#include "src/core/put_journal.h"
#include "src/core/transfer.h"
#include "src/meta/chunk_table.h"
#include "src/meta/version_tree.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/opt/download_selector.h"
#include "src/repair/repair_engine.h"
#include "src/rs/secret_sharing.h"
#include "src/util/buffer_pool.h"
#include "src/util/result.h"
#include "src/util/retry.h"
#include "src/util/thread_pool.h"

namespace cyrus {

// How Put keys the dispersal of new chunks.
//   kOff        - the user key keys every chunk (the paper's behavior):
//                 maximal privacy, zero cross-user dedup.
//   kConvergent - chunks are keyed by their own content hash (salted; see
//                 src/crypto/convergent.h), so identical chunks across
//                 users yield identical shares, the shared ShareIndex
//                 dedupes them at the CSPs, and Delete/overwrite drop
//                 refcounts the scrub engine GCs.
enum class DedupMode { kOff, kConvergent };

struct CyrusConfig {
  // The user's secret: keys the RS dispersal matrix (privacy, §7.1).
  std::string key_string = "cyrus-default-key";
  // Identifies this device/user in FileMap rows.
  std::string client_id = "client";

  // Privacy parameter: shares (and thus CSPs) needed to reconstruct data.
  uint32_t t = 2;
  // Reliability budget epsilon for Eq. (1).
  double epsilon = 1e-6;
  // Per-CSP failure probability assumed when the availability monitor has
  // no observations yet.
  double default_failure_prob = 0.01;

  // Metadata secret-sharing threshold; metadata shares go to *all* active
  // CSPs (paper footnote 3).
  uint32_t meta_t = 2;

  // Minimum virtual-time gap (seconds, per set_time) between full metadata
  // sync passes. Every Get/List re-lists all metadata objects on every
  // active CSP to pick up writes from other devices - O(total versions)
  // per call. A sole-writer deployment (e.g. a gateway shard worker that
  // owns its CSP pool) can throttle that discovery scan since no foreign
  // writes can appear. 0 (the default) keeps the always-sync behavior;
  // Recover() always forces a full pass regardless.
  double metadata_sync_interval_s = 0.0;

  // Place at most one share of a chunk per platform cluster (§4.1).
  bool cluster_aware = true;

  // Content-defined chunking parameters (default: 4 MB average, like
  // Dropbox; tests shrink these).
  ChunkerOptions chunker;

  // Client NIC caps in bytes/second for the download optimizer's model;
  // <= 0 means uncapped.
  double client_downlink_bytes_per_sec = 0.0;
  double client_uplink_bytes_per_sec = 0.0;

  uint32_t ring_virtual_points = 64;

  // Concurrent connector calls per scatter/gather phase (the prototype's
  // dedicated transfer threads, paper §5.3). 1 = fully synchronous.
  uint32_t transfer_concurrency = 4;

  // Pipelined transfer engine (§5.3, Figure 15): how many chunks may be in
  // flight at once between the chunk/encode stage and share-transfer
  // completion. Chunk i+1 is hashed, encoded, and uploading while chunk
  // i's shares are still in transit, so one slow CSP no longer stalls the
  // whole file. 1 degrades to strictly sequential chunk handling (the
  // pre-pipeline behavior). Must be >= 1. Memory held by in-flight share
  // buffers is O(window), not O(file).
  uint32_t pipeline_window_chunks = 4;
  // Cap on summed plaintext bytes of in-flight chunks; 0 = unbounded. A
  // single chunk larger than the cap still passes through alone.
  uint64_t pipeline_window_bytes = 0;

  // Transient-failure retry for share and metadata transfers (capped
  // exponential backoff + jitter). max_attempts = 1 disables retries.
  RetryOptions transfer_retry;

  // Recycle encode/upload buffers through a shared BufferPool
  // (src/util/buffer_pool.h) instead of allocating fresh share vectors per
  // chunk. Off restores the pre-pool allocation pattern (kept as an A/B
  // lever for the identical-bytes regression test and for debugging).
  bool use_buffer_pool = true;

  // Knobs for the proactive scrub & repair engine (bandwidth budget,
  // per-pass repair cap).
  RepairEngineOptions repair;

  // Quorum writes: a chunk commits once max(t, n - put_failure_budget)
  // shares are durable. The shortfall is recorded as degraded-write debt
  // (cyrus_degraded_* gauges) and completed by the next scrub pass. The
  // default of -1 keeps the legacy bar - commit at >= t, maximum write
  // availability - while still booking the debt.
  int32_t put_failure_budget = -1;

  // Hedged Get: adaptive per-CSP deadlines launch backup share downloads
  // for straggling primaries (see src/core/hedged_fetch.h). Disabled by
  // default; enabling allocates a dedicated hedge thread pool.
  HedgeOptions hedge;

  // Per-CSP circuit breakers (closed/open/half-open) replacing the ad-hoc
  // first-error MarkCspFailed indictment when enabled. Breaker verdicts
  // feed the hash ring and download selector through the same registry
  // state transitions the legacy path used.
  CircuitBreakerOptions breaker;

  // End-to-end share integrity. When on (the default), every share whose
  // ChunkRecord carries a per-share digest is authenticated *before* decode;
  // a mismatch is a typed kIntegrity failure that is failover-eligible (the
  // gather discards the poisoned share and tops up from alternate CSPs), so
  // Get succeeds whenever any t clean shares exist. Off reproduces the
  // pre-digest client exactly: Put records no digests and Get authenticates
  // nothing (useful for writing legacy-format metadata in tests).
  bool verify_share_digests = true;
  // A CSP returning corrupted bytes is worse than one timing out: each
  // integrity failure counts as this many breaker failures, so a
  // repeatedly-lying provider trips its breaker sooner than a flaky one.
  uint32_t integrity_failure_weight = 3;
  // Without breakers: integrity failures from one CSP before it is marked
  // failed outright (quarantined from placement and selection until a scrub
  // re-verifies it). 0 disables the quarantine.
  uint32_t integrity_quarantine_threshold = 3;

  // Crash-safe Put: path of the local write-intent journal. Empty (the
  // default) disables journaling; RecoverFromJournal() is then a no-op.
  std::string journal_path;

  // Cross-user convergent dedup (src/dedup). kConvergent requires a
  // non-empty dedup_salt (the deployment-wide dictionary-attack guard) and
  // normally a share_index; without an index the client still encodes
  // convergently (its own chunk table dedupes) but cannot share chunks
  // with other clients. The index is borrowed, never owned: a gateway
  // points every shard worker at one index, and all of them must register
  // the same connectors in the same order (share locations are registry
  // indices). Reads stay mode-independent - a chunk's metadata records how
  // it was keyed - so flipping the mode never strands old data.
  DedupMode dedup_mode = DedupMode::kOff;
  std::string dedup_salt;
  ShareIndex* share_index = nullptr;

  // Decoded-chunk plaintext cache backing GetRange (src/core/chunk_cache.h):
  // a byte-budgeted sharded ARC keyed by chunk id. Range reads populate it;
  // whole-file Gets consult it for hits (and duplicate fills) but do not
  // populate it, so one large download cannot flush a streaming working
  // set. 0 disables caching entirely.
  uint64_t chunk_cache_bytes = 64ull << 20;
  size_t chunk_cache_shards = 8;

  // Sequential-read detector: when consecutive GetRange calls are
  // contiguous, prefetch up to this many following chunks into the chunk
  // cache on background-priority pool tasks. A seek bumps the stream's
  // generation, cancelling (crediting) prefetches not yet started. 0
  // disables readahead.
  uint32_t readahead_chunks = 4;

  // Fragment scheduling for memory-constrained serving: a range Get admits
  // at most this many decoded chunks into its pipeline window at once,
  // streaming them into the result in order instead of buffering the whole
  // span. 0 = use the pipeline window unchanged. Whole-file Gets keep the
  // plain window (parity with the legacy path).
  uint32_t max_resident_chunks = 0;

  // Route whole-file Get/GetVersion through the unified range scheduler
  // (GetRange(name, 0, size) internally), so both paths share one gather
  // engine. Off restores GetFullFileLegacy - kept as an A/B lever (like
  // use_buffer_pool) for one release.
  bool get_via_range_path = true;

  // Observability sinks. Pipeline counters/histograms go to `metrics`;
  // each Put/Get/ScrubOnce also records a stage timeline (chunking ->
  // encode -> place -> upload -> metadata publish) into `traces`. nullptr
  // selects the process-wide defaults; both are cheap enough to leave on.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceCollector* traces = nullptr;
};

struct FileListing {
  std::string name;
  uint64_t size = 0;
  double modified_time = 0.0;
  size_t num_versions = 0;
  bool conflicted = false;
};

struct PutResult {
  Sha1Digest version_id;
  uint32_t n = 0;            // shares stored for each newly scattered chunk
  size_t total_chunks = 0;
  size_t new_chunks = 0;
  size_t dedup_chunks = 0;   // chunks served without upload (local or index)
  size_t index_hit_chunks = 0;  // of those, served by the cross-user ShareIndex
  uint64_t content_bytes = 0;
  uint64_t uploaded_share_bytes = 0;
  bool unchanged = false;    // content identical to the current head
  size_t degraded_chunks = 0;  // committed at quorum but short of target n
  size_t missing_shares = 0;   // shares owed to the background repair queue
  TransferReport transfer;
};

struct GetResult {
  Bytes content;
  Sha1Digest version_id;
  bool had_conflicts = false;
  std::vector<Conflict> conflicts;
  size_t migrated_shares = 0;  // lazily repaired share locations (§5.5)
  // Backup (hedged) share downloads that completed successfully before the
  // gather returned; launch totals are in cyrus_hedged_requests_total.
  size_t hedged_downloads = 0;
  // Full size of the version read (== content.size() for whole-file Gets;
  // the Content-Range total for range reads).
  uint64_t file_size = 0;
  // First byte offset this result covers (0 for whole-file Gets).
  uint64_t range_offset = 0;
  // Covering chunks served from the decoded-chunk cache vs downloaded and
  // decoded from the CSPs.
  size_t chunks_from_cache = 0;
  size_t chunks_decoded = 0;
  // Legacy (pre-digest) chunk records whose per-share digests were derived
  // during this read - via the combinatorial decode path - and recorded in
  // the chunk table and republished metadata.
  size_t digest_upgraded_chunks = 0;
  // Shares rejected before decode because their bytes failed digest
  // authentication (each also feeds the owning CSP's health accounting).
  size_t integrity_rejected_shares = 0;
  TransferReport transfer;
};

// What RecoverFromJournal() did with the write-intent journal.
struct JournalRecoveryReport {
  size_t intents_seen = 0;
  size_t rolled_forward = 0;        // shares were durable: metadata republished
  size_t rolled_back = 0;           // incomplete Put abandoned
  size_t orphan_shares_deleted = 0; // unreferenced journaled objects removed
};

class CyrusClient {
 public:
  static Result<std::unique_ptr<CyrusClient>> Create(CyrusConfig config);

  // --- CSP account management ---

  // Registers a CSP account, authenticates, and adds it to the placement
  // ring. Returns the CSP's registry index.
  Result<int> AddCsp(std::shared_ptr<CloudConnector> connector, CspProfile profile,
                     const Credentials& credentials);

  // User-initiated removal: metadata is re-scattered to the remaining CSPs
  // immediately; chunk shares migrate lazily on subsequent downloads.
  Status RemoveCsp(int csp);

  // Failure handling (upload errors call this internally too).
  Status MarkCspFailed(int csp);
  Status MarkCspRecovered(int csp);

  // Installs platform cluster ids (output of src/net/clustering.h), one per
  // registry index, and rebuilds the placement ring.
  Status AssignClusters(const std::vector<int>& cluster_per_csp);

  // --- File operations (Table 3) ---

  Result<PutResult> Put(std::string_view name, ByteSpan content);
  Result<GetResult> Get(std::string_view name);
  Result<GetResult> GetVersion(std::string_view name, const Sha1Digest& version_id);

  // Range read: bytes [offset, offset+len) of the newest live head. Only
  // the covering chunks are fetched and decoded (cache hits skip the CSPs
  // entirely); `len` is clamped to the end of the file, and an offset past
  // the end fails with InvalidArgument (the REST layer's 416). Contiguous
  // GetRange calls on one name are detected as a sequential stream and
  // trigger background readahead of the next config.readahead_chunks
  // chunks; any seek cancels prefetches not yet started.
  Result<GetResult> GetRange(std::string_view name, uint64_t offset,
                             uint64_t len);
  Status Delete(std::string_view name);
  Result<std::vector<FileListing>> List(std::string_view directory_prefix);

  // Version history of the file's newest head (newest first). Works for
  // deleted files too, enabling undelete via GetVersion (paper §5.4).
  Result<std::vector<const FileVersion*>> Versions(std::string_view name);

  // Imports a file the user already stores in plaintext at one provider
  // into CYRUS (the most-requested extension from the paper's user trial,
  // §7.5): downloads the object through the connector, stores it under
  // `target_name` with full chunking/coding/scattering, and optionally
  // deletes the plaintext original.
  Result<PutResult> ImportForeignObject(int csp, std::string_view object_name,
                                        std::string_view target_name,
                                        bool delete_original = false);

  // Re-scatters every metadata object over the *current* active CSP set.
  // Useful after AddCsp when the user wants newly added accounts to raise
  // metadata reliability immediately (paper §5.5: "shares of the file
  // metadata can be stored at the new CSP ... if the user wishes").
  Status RebalanceMetadata();

  // --- Proactive scrub & repair (background complement to §5.5) ---

  // One scrub pass: probes share health at every active CSP (one List
  // each), repairs degraded chunks worst-first within the configured
  // bandwidth budget, then folds the new share locations into every
  // affected version's ShareMap and republishes its metadata so other
  // clients find them. Run this periodically; lazy migration still covers
  // whatever a pass defers.
  Result<ScrubReport> ScrubOnce();

  // Health of every tracked chunk, degraded first, without repairing.
  std::vector<ChunkHealth> ScrubScan();

  RepairEngine& repair_engine() { return *repair_; }
  const RepairStats& repair_stats() const { return repair_->stats(); }

  // CSPs whose shares await re-verification because they returned from an
  // outage that may have lost objects (see MarkCspRecovered); cleared by
  // the next ScrubOnce.
  std::vector<int> csps_pending_reprobe() const { return repair_->pending_reprobe(); }

  // --- Crash recovery (write-intent journal) ---

  // Replays pending write intents from the journal (config.journal_path).
  // Call after registering CSP accounts: an intent whose metadata record
  // exists is rolled *forward* (its shares are already durable, so the
  // version is re-inserted and its metadata republished); one without is
  // rolled *back* (every journaled share object that no committed chunk
  // references is deleted from its CSP). Safe to call when no journal is
  // configured or nothing is pending.
  Result<JournalRecoveryReport> RecoverFromJournal();

  // With circuit breakers enabled, probes every failed CSP through its
  // breaker (one List each): once the open cooldown has elapsed the
  // breaker admits the probe half-open, and enough successes close it,
  // which marks the CSP recovered. ScrubOnce runs this first, so periodic
  // scrubbing doubles as the outage-recovery detector. No-op without
  // breakers.
  Status ProbeRecoveredCsps();

  // --- Multi-client synchronization ---

  // Pulls metadata objects this client has not seen and returns the
  // conflicts the new versions introduce (paper §5.4).
  Result<std::vector<Conflict>> SyncMetadata();

  // Rebuilds the whole local state (version tree + chunk table) from the
  // clouds; what a freshly installed device runs (Table 3's recover()).
  Status Recover();

  // --- Local metadata cache (paper §5.2) ---

  // Snapshot of the synced state (version tree in portable wire form,
  // chunk table, ingested metadata names) for SaveLocalCache().
  LocalCacheSnapshot ExportCache() const;

  // Installs a snapshot saved earlier, replacing local state; callers then
  // run SyncMetadata() to pick up anything newer than the snapshot. Share
  // locations are remapped by stable connector name, so the CSP
  // registration order may differ from the saving session's.
  Status ImportCache(const LocalCacheSnapshot& snapshot);

  // Resolves a conflicted name: `winner` stays as `name`; every other
  // conflicting live head is renamed to "<name>.conflict-<shortid>" so no
  // update is silently lost.
  Status ResolveConflict(std::string_view name, const Sha1Digest& winner);

  // --- Introspection (benchmarks, tests, UI) ---

  const VersionTree& tree() const { return tree_; }
  const ChunkTable& chunk_table() const { return chunk_table_; }
  const CspRegistry& registry() const { return registry_; }
  AvailabilityMonitor& availability_monitor() { return monitor_; }
  TransferAggregator& aggregator() { return aggregator_; }
  const CyrusConfig& config() const { return config_; }

  // The sinks this client records into (resolved from the config's
  // nullable pointers).
  obs::MetricsRegistry& metrics() { return *metrics_; }
  obs::TraceCollector& traces() { return *traces_; }

  // Solves Eq. (1) for the current CSP set; the n a Put would use.
  Result<uint32_t> CurrentN() const;

  // Shares a chunk must have durable before Put commits it: t when the
  // failure budget is unset (-1), max(t, n - budget) otherwise.
  uint32_t PutQuorum(uint32_t n) const;

  // The write-intent journal (null unless config.journal_path is set).
  const PutJournal* journal() const { return journal_.get(); }

  // The circuit breaker guarding `csp`, or null when breakers are off.
  std::shared_ptr<CircuitBreaker> breaker_for(int csp);

  // Replaces the downlink selector (benchmarks swap in random/round-robin).
  void set_download_selector(std::unique_ptr<DownloadSelector> selector);

  // Runtime override of config.pipeline_window_chunks, read at the start of
  // each Put/Get. The gateway's backpressure controller shrinks a shard
  // worker's window when its queue deepens and restores it as load drains.
  // 0 restores the configured value; anything else is clamped to >= 1.
  // Thread-safe (atomic); in-flight pipelines keep the window they started
  // with.
  void set_pipeline_window(uint32_t chunks) {
    pipeline_window_override_.store(chunks, std::memory_order_relaxed);
  }
  // The window the next Put/Get will use.
  uint32_t pipeline_window() const {
    const uint32_t forced = pipeline_window_override_.load(std::memory_order_relaxed);
    return forced > 0 ? forced : config_.pipeline_window_chunks;
  }

  // Virtual clock for modified times and availability probes. Atomic:
  // breaker and repair-engine `now` callbacks read it from pool and
  // hedge-pool threads while tests advance it on the driver.
  void set_time(double now) { now_.store(now, std::memory_order_relaxed); }
  double now() const { return now_.load(std::memory_order_relaxed); }

  // The decoded-chunk plaintext cache behind GetRange (tests, benches).
  ChunkCache& chunk_cache() { return chunk_cache_; }

  // Blocks until every issued readahead prefetch has finished (stored,
  // failed, or self-cancelled). Benches and tests use it to separate
  // cache warm-up from measurement; production callers never need it.
  void WaitForReadahead();

  struct ReadaheadStats {
    uint64_t issued = 0;     // prefetch tasks handed to the pool
    uint64_t completed = 0;  // decoded, verified, and cached
    uint64_t cancelled = 0;  // credited back: a seek staled the stream
  };
  ReadaheadStats readahead_stats() const;

 private:
  explicit CyrusClient(CyrusConfig config, Chunker chunker);

  // Placement candidates for new shares (cluster-aware if configured).
  Result<std::vector<int>> PlaceShares(const Sha1Digest& chunk_id, uint32_t n) const;

  // Scatters one chunk to codec.n() CSPs; returns the share rows. Runs on
  // a pipeline worker: it touches only thread-safe components (registry,
  // ring, monitor, aggregator) plus caller-owned out-params; all chunk
  // table and version bookkeeping stays on the driver thread. `trace`
  // (nullable) receives encode/place/upload spans.
  // `journal_id` (empty = journaling off) write-ahead-logs every placement
  // target before its upload, so a crash mid-scatter leaves a deletable
  // record of every object that may exist. `share_digests` (nullable)
  // receives the SHA-1 of each successfully placed share's bytes, keyed by
  // share index - the authentication records Put threads into the chunk
  // table, the version metadata, and the shared ShareIndex.
  Result<std::vector<ShareLocation>> ScatterChunk(const SecretSharingCodec& codec,
                                                  const Sha1Digest& chunk_id,
                                                  ByteSpan chunk,
                                                  const std::string& file,
                                                  const std::string& journal_id,
                                                  std::vector<ShareDigest>* share_digests,
                                                  TransferReport& report,
                                                  obs::TraceBuilder* trace);

  // A dedup chunk's entry vanished from the global ShareIndex (another
  // shard's scrub reclaimed the chunk after its last release, and that
  // scrub only consults its own chunk table - the objects may be gone).
  // The cached local layout cannot be trusted, so re-encode and re-upload
  // the chunk as a fresh convergent scatter (uploads are idempotent
  // overwrites under content-addressed names), replace the stale layout in
  // the chunk table, and publish the fresh one globally with refcount 1.
  // Driver-thread only (runs inside an ordered pipeline completion).
  Status RescatterDedupChunk(const Sha1Digest& chunk_id, ByteSpan chunk,
                             uint32_t n, const std::string& file,
                             const std::string& journal_id,
                             TransferReport& report, obs::TraceBuilder* trace,
                             PutResult& result);

  // Whole-file gather predating the unified range scheduler; kept one
  // release as the config.get_via_range_path=false A/B lever.
  Result<GetResult> GetFullFileLegacy(std::string_view name,
                                      const Sha1Digest& version_id,
                                      obs::TraceBuilder& trace);

  // The unified range scheduler behind GetRange and (when
  // config.get_via_range_path) whole-file Get/GetVersion: assembles bytes
  // [offset, offset+len) of `version_id` from cache hits plus pipelined
  // gathers of the covering chunks. `whole_file` selects the zero-copy
  // decode-into-result layout (and the whole-file SHA-1 check) instead of
  // per-chunk cache-owned buffers.
  Result<GetResult> GetRangeTraced(std::string_view name,
                                   const Sha1Digest& version_id,
                                   uint64_t offset, uint64_t len,
                                   bool whole_file, obs::TraceBuilder& trace);

  // Lean gather for readahead: downloads t shares of `chunk` from
  // `locations`, decodes, and hash-verifies into `out`. Deliberately no
  // hedging, no lazy migration, no error-correcting repair - a background
  // prefetch must never race the foreground path's chunk-table updates.
  // Runs on a pool worker; touches only thread-safe components.
  Status FetchChunkForCache(const ChunkRecord& chunk,
                            const std::vector<ShareLocation>& locations,
                            Bytes* out);

  // Sequential-stream detection and prefetch scheduling after a GetRange
  // of [offset, offset+len) on `version`. Driver thread only.
  void MaybeScheduleReadahead(const std::string& name,
                              const FileVersion& version, uint64_t offset,
                              uint64_t len);

  // Drops released chunks from the decoded-chunk cache. `kept` (nullable)
  // lists chunks still referenced by the superseding version - an
  // overwrite with unchanged chunks must not cold-start its readers.
  void InvalidateCachedChunks(const std::vector<ChunkRecord>& released,
                              const std::vector<ChunkRecord>* kept);

  // Downloads and reconstructs one chunk per its ChunkRecord, decoding
  // straight into `dst` - the chunk's slice of the assembled file (exactly
  // chunk.size bytes) - so Get never materializes per-chunk temporaries.
  // Performs lazy migration of shares on failed/removed CSPs. Runs on a
  // pipeline worker; the caller resolves `locations` (chunk table /
  // ShareMap) on the driver thread and folds `updated_shares` back into
  // the version there, so this function never reads the mutable
  // FileVersion. Workers write disjoint dst slices, never the vector.
  // `integrity_rejected` counts shares discarded pre-decode on digest
  // mismatch; `upgraded_digests`, when filled, is the authoritative digest
  // set this gather derived for a legacy (digestless) record - the driver
  // folds it into the version's ChunkRecord and republishes the metadata.
  Status GatherChunk(const std::string& file_name, const ChunkRecord& chunk,
                     MutableByteSpan dst,
                     const std::vector<ShareLocation>& locations,
                     const std::vector<int>& selected_csps,
                     std::vector<ShareLocation>& updated_shares,
                     size_t& migrated, size_t& hedged_downloads,
                     size_t& integrity_rejected,
                     std::vector<ShareDigest>& upgraded_digests,
                     TransferReport& report);

  // Routes a failed transfer into the health machinery: with breakers on,
  // the connector decorator already counted the failure (the breaker trips
  // the topology change through its callback), so only the availability
  // monitor is fed; without them this is the legacy immediate
  // MarkCspFailed. No-op for statuses that do not indict the provider.
  Status NoteTransferFailure(int csp, const Status& status);

  // Routes a share-digest mismatch into the health machinery: the
  // availability monitor's integrity ledger always records it; with
  // breakers on the failure is replayed integrity_failure_weight times into
  // the CSP's breaker, without them the CSP is marked failed once its
  // ledger reaches integrity_quarantine_threshold. Safe from pipeline
  // workers (same locking as NoteTransferFailure).
  Status NoteIntegrityFailure(int csp);

  // Merges chunk-table share digests into a version-sourced ChunkRecord
  // copy that predates them (or was synced from v1/v2 metadata), so gather
  // workers can authenticate without reading the mutable chunk table.
  // Driver-thread only.
  void AugmentRecordDigests(ChunkRecord& record) const;

  // Current share locations of a chunk: the global chunk table wins (it
  // sees migrations from other files); falls back to the version's
  // ShareMap. Driver-thread only.
  std::vector<ShareLocation> ResolveChunkLocations(const FileVersion& version,
                                                   const Sha1Digest& chunk_id) const;

  // Wire-form conversion: local registry indices <-> stable connector
  // names via the version's csp_directory.
  FileVersion ToWireForm(const FileVersion& version) const;
  FileVersion ToLocalForm(FileVersion version) const;

  // Metadata scatter/fetch (secret-shared to all active CSPs).
  Status UploadMetadata(const FileVersion& version, TransferReport& report);
  Result<FileVersion> FetchMetadata(const std::string& base_name,
                                    TransferReport& report);

  // Picks this Put's parent version for `name` (newest live head), or a
  // null digest for new files.
  Sha1Digest ParentFor(std::string_view name) const;

  Status RegisterVersionChunks(const FileVersion& version);

  // Drops one reference per unique chunk, locally and (for convergent
  // chunks) in the shared ShareIndex. Run after a version stops being a
  // live head (Delete, or an overwrite superseding its parent). Unknown
  // chunks and already-zero entries are skipped: the refs were never
  // taken, or another device raced the release (clamped and counted by
  // the index).
  void ReleaseChunkRefs(const std::vector<ChunkRecord>& chunks);

  // True when Put keys new chunks convergently.
  bool convergent_writes() const {
    return config_.dedup_mode == DedupMode::kConvergent;
  }

  CyrusConfig config_;
  // Two-stage convergent keying (content key from config_.dedup_salt, wrap
  // under config_.key_string). Constructed unconditionally: reads of
  // synced convergent chunks need the unwrap half even in kOff mode.
  ConvergentKeyDeriver deriver_;
  Chunker chunker_;
  CspRegistry registry_;
  HashRing ring_;
  VersionTree tree_;
  ChunkTable chunk_table_;
  AvailabilityMonitor monitor_;
  TransferAggregator aggregator_;
  // Serializes topology read-modify-write sequences (MarkCspFailed's
  // state-check + SetState + ring removal, and its recovery twin) against
  // each other. Individual registry/ring/monitor calls are already atomic;
  // this lock makes the *sequences* atomic so two pipeline workers cannot
  // both observe kActive and both try to remove the same ring node. Lock
  // order: topology_mutex_ before any component-internal mutex; never held
  // across a connector call.
  std::mutex topology_mutex_;
  // Reusable aligned share/upload buffers for the codec paths. Declared
  // before pool_/hedge_pool_ so the worker threads (whose ScatterChunk /
  // repair frames hold PooledBuffer handles) join before the pool dies.
  BufferPool codec_buffers_;
  // Decoded-chunk plaintext cache (GetRange hits skip the CSPs entirely).
  // Declared before pool_ for the same reason as codec_buffers_: the pool
  // destructor *drains* queued readahead tasks, and those insert here.
  ChunkCache chunk_cache_;
  // --- Sequential-read detector / readahead state. Guarded by
  // readahead_mutex_; declared before pool_ (prefetch tasks drained at
  // pool destruction read it). ---
  struct StreamState {
    uint64_t next_offset = 0;  // where a contiguous reader resumes
    uint64_t generation = 0;   // bumped on seek; stale prefetches cancel
  };
  mutable std::mutex readahead_mutex_;
  std::map<std::string, StreamState, std::less<>> streams_;
  std::set<Sha1Digest> readahead_inflight_;  // ids queued or downloading
  size_t readahead_active_ = 0;
  std::condition_variable readahead_idle_;
  std::unique_ptr<DownloadSelector> selector_;
  // Transfer worker threads (null when transfer_concurrency == 1).
  std::unique_ptr<ThreadPool> pool_;
  // Dedicated pool for hedged share downloads (null unless hedging is
  // enabled). Distinct from pool_: HedgedFetcher::Fetch blocks its caller
  // - a pool_ worker during a pipelined Get - so running the downloads on
  // pool_ could leave every worker waiting on work no thread is free to
  // run. Declared after pool_ so it is destroyed first, joining abandoned
  // loser downloads while the registry and monitor they use are alive.
  std::unique_ptr<ThreadPool> hedge_pool_;
  std::unique_ptr<HedgedFetcher> fetcher_;
  // Proactive scrub & repair over the chunk table (src/repair).
  std::unique_ptr<RepairEngine> repair_;
  // Crash-safe Put write-intent journal (null when journal_path is empty).
  std::unique_ptr<PutJournal> journal_;
  // Per-CSP circuit breakers (populated only when config.breaker.enabled);
  // guarded by topology_mutex_.
  std::map<int, std::shared_ptr<CircuitBreaker>> breakers_;
  // Metadata object base names this client has already ingested.
  std::set<std::string> known_meta_bases_;
  // Virtual time of the last full SyncMetadata discovery pass (-1 = never);
  // compared against metadata_sync_interval_s.
  double last_meta_sync_s_ = -1.0;
  std::atomic<double> now_{0.0};
  // Gateway backpressure override of the pipeline window (0 = use config).
  std::atomic<uint32_t> pipeline_window_override_{0};

  // Observability sinks (never null after Create) plus cached pipeline
  // counters so the hot paths skip registry lookups.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceCollector* traces_ = nullptr;
  obs::Counter* puts_total_ = nullptr;
  obs::Counter* gets_total_ = nullptr;
  obs::Counter* chunks_scattered_ = nullptr;
  obs::Counter* chunks_deduped_ = nullptr;
  obs::Counter* chunks_gathered_ = nullptr;
  obs::Counter* shares_migrated_ = nullptr;
  obs::Counter* codec_creates_ = nullptr;
  obs::Counter* range_gets_total_ = nullptr;
  obs::Counter* readahead_issued_ = nullptr;
  obs::Counter* readahead_completed_ = nullptr;
  obs::Counter* readahead_cancelled_ = nullptr;
  // Integrity pipeline: shares rejected pre-decode (total; the per-CSP
  // breakdown is the labeled cyrus_integrity_failures_total series looked
  // up on the - rare - failure path), shares re-uploaded in place after a
  // gather identified them as corrupt, and legacy records upgraded with
  // freshly derived digests.
  obs::Counter* integrity_failures_ = nullptr;
  obs::Counter* integrity_shares_healed_ = nullptr;
  obs::Counter* integrity_records_upgraded_ = nullptr;
  obs::Histogram* put_latency_ms_ = nullptr;
  obs::Histogram* get_latency_ms_ = nullptr;
};

}  // namespace cyrus

#endif  // SRC_CORE_CLIENT_H_
