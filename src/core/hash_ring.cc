#include "src/core/hash_ring.h"

#include <algorithm>
#include <set>

#include "src/util/strings.h"

namespace cyrus {
namespace {

uint64_t RingPosition(std::string_view name, uint32_t replica) {
  Sha1 h;
  h.Update(std::string_view("cyrus-ring-v1"));
  h.Update(name);
  const uint8_t rep_bytes[4] = {
      static_cast<uint8_t>(replica >> 24), static_cast<uint8_t>(replica >> 16),
      static_cast<uint8_t>(replica >> 8), static_cast<uint8_t>(replica)};
  h.Update(ByteSpan(rep_bytes, 4));
  return h.Finish().Prefix64();
}

}  // namespace

Status HashRing::AddCsp(int csp_index, std::string_view name, int cluster) {
  std::vector<uint64_t> points;
  points.reserve(virtual_points_);
  for (uint32_t r = 0; r < virtual_points_; ++r) {
    points.push_back(RingPosition(name, r));
  }
  return AddCspAt(csp_index, name, cluster, std::move(points));
}

Status HashRing::AddCspAt(int csp_index, std::string_view name, int cluster,
                          std::vector<uint64_t> points) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (points.empty()) {
    return InvalidArgumentError("a ring member needs at least one point");
  }
  if (csps_.count(csp_index) > 0) {
    return AlreadyExistsError(StrCat("CSP ", csp_index, " already on the ring"));
  }
  for (const auto& [index, info] : csps_) {
    if (info.name == name) {
      return AlreadyExistsError(StrCat("CSP name '", name, "' already on the ring"));
    }
  }
  CspInfo info{std::string(name), cluster, {}};
  for (uint64_t point : points) {
    // Collisions across 64-bit positions are negligible; keep first owner
    // (derived points) and record only the points actually claimed so
    // removal stays exact.
    if (ring_.emplace(point, csp_index).second) {
      info.points.push_back(point);
    }
  }
  if (info.points.empty()) {
    return InvalidArgumentError("every requested ring point is already taken");
  }
  std::sort(info.points.begin(), info.points.end());
  csps_.emplace(csp_index, std::move(info));
  return OkStatus();
}

Status HashRing::RemoveCsp(int csp_index) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = csps_.find(csp_index);
  if (it == csps_.end()) {
    return NotFoundError(StrCat("CSP ", csp_index, " not on the ring"));
  }
  for (uint64_t point : it->second.points) {
    auto ring_it = ring_.find(point);
    if (ring_it != ring_.end() && ring_it->second == csp_index) {
      ring_.erase(ring_it);
    }
  }
  csps_.erase(it);
  return OkStatus();
}

Result<int> HashRing::OwnerOf(uint64_t position) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) {
    return FailedPreconditionError("hash ring has no members");
  }
  auto it = ring_.lower_bound(position);
  if (it == ring_.end()) {
    it = ring_.begin();  // wrap
  }
  return it->second;
}

Result<std::vector<uint64_t>> HashRing::PointsOf(int csp_index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = csps_.find(csp_index);
  if (it == csps_.end()) {
    return NotFoundError(StrCat("CSP ", csp_index, " not on the ring"));
  }
  return it->second.points;
}

std::vector<std::pair<uint64_t, int>> HashRing::AllPoints() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<std::pair<uint64_t, int>>(ring_.begin(), ring_.end());
}

bool HashRing::Contains(int csp_index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return csps_.count(csp_index) > 0;
}

size_t HashRing::num_csps() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return csps_.size();
}

template <typename Accept>
Result<std::vector<int>> HashRing::Walk(const Sha1Digest& chunk_id, uint32_t n,
                                        Accept accept) const {
  std::vector<int> selected;
  if (n == 0) {
    return selected;
  }
  if (ring_.empty()) {
    return FailedPreconditionError("hash ring has no CSPs");
  }
  const uint64_t start = chunk_id.Prefix64();
  auto it = ring_.lower_bound(start);
  std::set<int> seen;
  // Two laps around the ring guarantee every distinct CSP is visited.
  const size_t max_steps = 2 * ring_.size();
  for (size_t step = 0; step < max_steps && selected.size() < n; ++step) {
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    const int csp = it->second;
    if (seen.insert(csp).second && accept(csp, csps_.at(csp))) {
      selected.push_back(csp);
    }
    ++it;
  }
  if (selected.size() < n) {
    return FailedPreconditionError(
        StrCat("need ", n, " placement targets but only ", selected.size(),
               " eligible CSPs on the ring"));
  }
  return selected;
}

Result<std::vector<int>> HashRing::SelectCsps(const Sha1Digest& chunk_id,
                                              uint32_t n) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Walk(chunk_id, n, [](int, const CspInfo&) { return true; });
}

Result<std::vector<int>> HashRing::SelectCspsClusterAware(const Sha1Digest& chunk_id,
                                                          uint32_t n) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::set<int> used_clusters;
  return Walk(chunk_id, n, [&used_clusters](int, const CspInfo& info) {
    if (info.cluster < 0) {
      return true;  // unclustered CSPs are their own platform
    }
    return used_clusters.insert(info.cluster).second;
  });
}

Result<std::vector<int>> HashRing::SelectCspsExcluding(
    const Sha1Digest& chunk_id, uint32_t n, const std::vector<int>& excluded) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Walk(chunk_id, n, [&excluded](int csp, const CspInfo&) {
    return std::find(excluded.begin(), excluded.end(), csp) == excluded.end();
  });
}

}  // namespace cyrus
