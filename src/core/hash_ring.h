// Consistent hashing for uplink share placement (paper §5.3).
//
// Each CSP owns a set of virtual points on a 64-bit ring (many points per
// CSP smooth the partition). A chunk maps to the ring position of its id;
// walking clockwise and taking the first n *distinct* CSPs yields the
// upload targets. Consistent hashing balances stored bytes across CSPs and
// minimizes share reshuffling when accounts come and go (paper §5.5). The
// cluster-aware walk instead takes the first n distinct *platform clusters*
// so that no two shares of a chunk land on CSPs sharing infrastructure
// (paper §4.1).
//
// Thread-safe: the pipelined failover path selects replacement CSPs from
// pool threads while MarkCspFailed removes ring entries concurrently. Each
// call is individually atomic; a selection can still be stale by the time
// its upload runs, and the failover loop absorbs that by retrying.
#ifndef SRC_CORE_HASH_RING_H_
#define SRC_CORE_HASH_RING_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/crypto/sha1.h"
#include "src/util/result.h"

namespace cyrus {

class HashRing {
 public:
  // virtual_points: ring positions created per CSP (default smooths the
  // partition to a few percent imbalance).
  explicit HashRing(uint32_t virtual_points = 64) : virtual_points_(virtual_points) {}

  // Adds a CSP under a stable name (its connector id). `cluster` < 0 means
  // unclustered. kAlreadyExists on duplicate names.
  Status AddCsp(int csp_index, std::string_view name, int cluster);

  // Adds a member whose virtual points are given explicitly instead of
  // being derived from the name. The gateway's shard map splits a shard by
  // placing a new member's points inside the victim's arcs, so only the
  // victim's keyspace moves. kInvalidArgument on an empty or colliding
  // point set.
  Status AddCspAt(int csp_index, std::string_view name, int cluster,
                  std::vector<uint64_t> points);

  Status RemoveCsp(int csp_index);

  bool Contains(int csp_index) const;
  size_t num_csps() const;

  // The member owning a raw ring position: the first virtual point
  // clockwise from `position` (wrapping). kFailedPrecondition when empty.
  Result<int> OwnerOf(uint64_t position) const;

  // Virtual points recorded for one member, ascending. kNotFound if absent.
  Result<std::vector<uint64_t>> PointsOf(int csp_index) const;

  // Every (position, member) pair on the ring, ascending by position. The
  // shard map walks this to find a victim's arcs before a split.
  std::vector<std::pair<uint64_t, int>> AllPoints() const;

  // First n distinct CSPs clockwise from the chunk's ring position.
  Result<std::vector<int>> SelectCsps(const Sha1Digest& chunk_id, uint32_t n) const;

  // Like SelectCsps but at most one CSP per cluster (unclustered CSPs each
  // count as their own cluster). Fails if fewer than n clusters exist.
  Result<std::vector<int>> SelectCspsClusterAware(const Sha1Digest& chunk_id,
                                                  uint32_t n) const;

  // First n distinct CSPs excluding the given ones (share regeneration
  // picks replacement CSPs this way).
  Result<std::vector<int>> SelectCspsExcluding(const Sha1Digest& chunk_id, uint32_t n,
                                               const std::vector<int>& excluded) const;

 private:
  struct CspInfo {
    std::string name;
    int cluster = -1;
    // Ring positions this member occupies, recorded at add time so removal
    // works for explicit (AddCspAt) point sets too.
    std::vector<uint64_t> points;
  };

  // Requires mutex_ held.
  template <typename Accept>
  Result<std::vector<int>> Walk(const Sha1Digest& chunk_id, uint32_t n,
                                Accept accept) const;

  mutable std::mutex mutex_;
  uint32_t virtual_points_;
  std::map<uint64_t, int> ring_;  // ring position -> CSP index
  std::map<int, CspInfo> csps_;
};

}  // namespace cyrus

#endif  // SRC_CORE_HASH_RING_H_
