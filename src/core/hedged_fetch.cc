#include "src/core/hedged_fetch.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <utility>

namespace cyrus {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

HedgedFetcher::HedgedFetcher(HedgeOptions options, ThreadPool* pool,
                             AvailabilityMonitor* monitor)
    : options_(options), pool_(pool), monitor_(monitor) {
  obs::MetricsRegistry& registry =
      options_.metrics != nullptr ? *options_.metrics : obs::MetricsRegistry::Default();
  hedges_launched_ =
      registry.GetCounter("cyrus_hedged_requests_total", {},
                          "Backup downloads launched because a primary straggled");
  hedge_wins_ = registry.GetCounter(
      "cyrus_hedge_wins_total", {},
      "Hedged downloads that delivered a share the Get was still waiting for");
  replacements_launched_ =
      registry.GetCounter("cyrus_hedge_replacements_total", {},
                          "Spare downloads launched because a fetch failed");
}

std::vector<HedgeFetchResult> HedgedFetcher::Fetch(
    std::vector<HedgeCandidate> candidates, size_t primaries, size_t needed) {
  std::vector<HedgeFetchResult> out;
  if (candidates.empty() || needed == 0) {
    return out;
  }
  primaries = std::min(std::max<size_t>(primaries, 1), candidates.size());

  struct Slot {
    bool launched = false;
    bool done = false;
    bool hedged = false;
    // A straggler that already triggered its hedge stops arming the timer
    // (deadline pushed to infinity), so one slow CSP costs one hedge.
    Clock::time_point deadline = Clock::time_point::max();
    Result<Bytes> data = Result<Bytes>(InternalError("not fetched"));
    double elapsed_ms = 0.0;
  };
  // Tasks share ownership: losers may finish after Fetch() returns, and
  // they must still have candidates and slots to write into.
  struct State {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<HedgeCandidate> candidates;
    std::vector<Slot> slots;
    size_t launched = 0;
    size_t completed = 0;
    size_t successes = 0;
    size_t needed = 0;
    bool abandoned = false;  // Fetch() returned; late wins do not count
  };
  auto state = std::make_shared<State>();
  state->candidates = std::move(candidates);
  state->slots.resize(state->candidates.size());
  state->needed = needed;

  // Tasks deferred when running without a pool; executed by the driver
  // outside the state lock.
  std::vector<std::function<void()>> inline_tasks;

  // Requires state->mutex held.
  auto launch = [&](size_t i, bool hedged) {
    Slot& slot = state->slots[i];
    slot.launched = true;
    slot.hedged = hedged;
    const double estimate =
        monitor_ != nullptr
            ? monitor_->LatencyEstimateMs(state->candidates[i].csp,
                                          options_.default_deadline_ms)
            : options_.default_deadline_ms;
    const double deadline_ms =
        std::max(options_.min_deadline_ms, options_.deadline_factor * estimate);
    slot.deadline =
        Clock::now() + std::chrono::microseconds(
                           static_cast<int64_t>(deadline_ms * 1000.0));
    ++state->launched;
    obs::Counter* wins = hedge_wins_;
    AvailabilityMonitor* monitor = monitor_;
    auto task = [state, monitor, wins, i] {
      const Clock::time_point start = Clock::now();
      Result<Bytes> data = state->candidates[i].fetch();
      const double elapsed = MsSince(start);
      if (data.ok() && monitor != nullptr) {
        monitor->RecordLatency(state->candidates[i].csp, elapsed);
      }
      std::lock_guard<std::mutex> lock(state->mutex);
      Slot& slot = state->slots[i];
      slot.done = true;
      slot.elapsed_ms = elapsed;
      slot.data = std::move(data);
      ++state->completed;
      if (slot.data.ok()) {
        ++state->successes;
        // The hedge "won" if the Get was still short of its quota when the
        // backup landed - i.e. this success is one of the needed t.
        if (slot.hedged && !state->abandoned && state->successes <= state->needed) {
          wins->Increment();
        }
      }
      state->cv.notify_all();
    };
    if (pool_ != nullptr) {
      pool_->Submit(std::move(task));
    } else {
      inline_tasks.push_back(std::move(task));
    }
  };

  std::unique_lock<std::mutex> lock(state->mutex);
  size_t next_spare = primaries;
  size_t hedges_used = 0;
  size_t replacements_done = 0;
  for (size_t i = 0; i < primaries; ++i) {
    launch(i, /*hedged=*/false);
  }
  const bool hedging = options_.enabled;

  while (true) {
    // Without a pool the "concurrent" fetches degrade to sequential
    // execution in deadline order; hedging is meaningless but the quota
    // and replacement logic still hold.
    while (!inline_tasks.empty()) {
      auto task = std::move(inline_tasks.back());
      inline_tasks.pop_back();
      lock.unlock();
      task();
      lock.lock();
    }
    if (state->successes >= needed) {
      break;
    }
    if (state->completed == state->launched &&
        state->launched == state->slots.size()) {
      break;  // everything ran; the caller gets what there is
    }
    // Correctness first: keep enough fetches in flight that the quota is
    // still reachable. This both replaces failures and tops up a short
    // primary list (the selector hands over fewer than `needed` primaries
    // when it was infeasible, e.g. too few active holders); without the
    // top-up the wait below could block forever with zero fetches in
    // flight and no deadline armed.
    const size_t in_flight = state->launched - state->completed;
    if (state->successes + in_flight < needed &&
        next_spare < state->slots.size()) {
      const size_t failures = state->completed - state->successes;
      if (failures > replacements_done) {
        ++replacements_done;
        replacements_launched_->Increment();
      }
      launch(next_spare++, /*hedged=*/false);
      continue;
    }
    // Latency second: hedge the earliest-deadline straggler.
    Clock::time_point next_deadline = Clock::time_point::max();
    if (hedging && hedges_used < options_.max_hedges &&
        next_spare < state->slots.size()) {
      for (const Slot& slot : state->slots) {
        if (slot.launched && !slot.done && slot.deadline < next_deadline) {
          next_deadline = slot.deadline;
        }
      }
    }
    if (next_deadline != Clock::time_point::max() && Clock::now() >= next_deadline) {
      for (Slot& slot : state->slots) {
        if (slot.launched && !slot.done && slot.deadline <= next_deadline) {
          slot.deadline = Clock::time_point::max();
          break;
        }
      }
      ++hedges_used;
      hedges_launched_->Increment();
      launch(next_spare++, /*hedged=*/true);
      continue;
    }
    if (next_deadline == Clock::time_point::max()) {
      state->cv.wait(lock);
    } else {
      state->cv.wait_until(lock, next_deadline);
    }
  }

  state->abandoned = true;
  out.reserve(state->completed);
  for (size_t i = 0; i < state->slots.size(); ++i) {
    Slot& slot = state->slots[i];
    if (!slot.done) {
      continue;
    }
    HedgeFetchResult result;
    result.candidate = i;
    result.data = std::move(slot.data);
    result.elapsed_ms = slot.elapsed_ms;
    result.hedged = slot.hedged;
    out.push_back(std::move(result));
  }
  return out;
}

}  // namespace cyrus
