// Hedged share downloads: tail-latency mitigation for Get.
//
// A Get needs any t of a chunk's n shares, so a single slow CSP should
// never put the whole download on its tail. The HedgedFetcher launches the
// selector's t primary downloads, then watches each against an adaptive
// per-CSP deadline seeded from the AvailabilityMonitor's latency EWMA
// (factor * usual latency, floored). A primary that outlives its deadline
// triggers a *hedge*: the next spare candidate is launched as a backup and
// whichever copy lands first wins. Fetch() returns as soon as `needed`
// downloads succeed; losers are not interrupted (connectors have no cancel
// surface) - they finish on the dedicated hedge pool and their results are
// discarded, with all shared state kept alive by the tasks themselves.
//
// Failures are handled separately from stragglers: whenever the successes
// plus in-flight fetches no longer cover `needed`, the next spare is
// launched as a replacement (that is correctness, not latency) without
// consuming the hedge budget. The same rule tops up a primary list that
// was shorter than `needed` to begin with, so Fetch() never waits with
// nothing in flight.
//
// The fetcher must be given a pool that is NOT the client's transfer pool:
// Fetch() blocks its calling thread (a transfer-pool worker during
// pipelined Get), and running the downloads on the same pool could leave
// every worker waiting on downloads no thread is free to run.
#ifndef SRC_CORE_HEDGED_FETCH_H_
#define SRC_CORE_HEDGED_FETCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/cloud/availability.h"
#include "src/obs/metrics.h"
#include "src/util/bytes.h"
#include "src/util/result.h"
#include "src/util/thread_pool.h"

namespace cyrus {

struct HedgeOptions {
  // Master switch: when false the client keeps the sequential gather path
  // and never constructs a fetcher.
  bool enabled = false;
  // A launched fetch older than deadline_factor * EWMA(csp latency) is a
  // straggler; the multiplier leaves headroom for ordinary jitter so
  // hedges fire on genuine tail events, not noise.
  double deadline_factor = 3.0;
  // Floor of any hedge deadline, so sub-millisecond EWMAs (in-memory test
  // connectors) do not hedge on every request.
  double min_deadline_ms = 5.0;
  // Deadline for a CSP with no latency history yet.
  double default_deadline_ms = 50.0;
  // Most deadline-triggered backups one Fetch may launch. Failure
  // replacements are exempt - those are needed for correctness.
  size_t max_hedges = 2;
  // Sink for cyrus_hedge_* metrics; nullptr = process-wide default.
  obs::MetricsRegistry* metrics = nullptr;
};

// One download the fetcher may run: which CSP it hits (for deadlines and
// latency feedback) and the blocking call that performs it. `fetch` must be
// safe to invoke from a hedge-pool thread and may outlive Fetch().
struct HedgeCandidate {
  int csp = -1;
  uint32_t share_index = 0;
  std::function<Result<Bytes>()> fetch;
};

// Outcome of one candidate that finished before Fetch() returned.
struct HedgeFetchResult {
  size_t candidate = 0;  // index into the vector passed to Fetch()
  Result<Bytes> data = Result<Bytes>(InternalError("not fetched"));
  double elapsed_ms = 0.0;
  bool hedged = false;  // launched as a deadline-triggered backup
};

class HedgedFetcher {
 public:
  // `pool` runs the downloads (nullptr degrades to sequential in-caller
  // execution); `monitor` (nullable) supplies latency estimates and
  // receives per-fetch latency samples.
  HedgedFetcher(HedgeOptions options, ThreadPool* pool, AvailabilityMonitor* monitor);

  // Launches the first `primaries` candidates immediately and returns once
  // `needed` fetches succeeded, or every candidate has been launched and
  // finished. Spare candidates (beyond the primaries) are launched either
  // as hedges (a primary blew its deadline) or as replacements (a fetch
  // failed). Results of fetches still in flight at return are discarded.
  std::vector<HedgeFetchResult> Fetch(std::vector<HedgeCandidate> candidates,
                                      size_t primaries, size_t needed);

  const HedgeOptions& options() const { return options_; }

 private:
  HedgeOptions options_;
  ThreadPool* pool_;
  AvailabilityMonitor* monitor_;
  obs::Counter* hedges_launched_;
  obs::Counter* hedge_wins_;
  obs::Counter* replacements_launched_;
};

}  // namespace cyrus

#endif  // SRC_CORE_HEDGED_FETCH_H_
