#include "src/core/local_cache.h"

#include <algorithm>
#include <fstream>
#include <system_error>

#include "src/crypto/sha1.h"

#include "src/meta/serialize.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

constexpr uint32_t kMagic = 0x43594c43;  // "CYLC"
constexpr uint32_t kFormatVersion = 2;   // v2: trailing SHA-1 checksum
constexpr size_t kChecksumBytes = 20;

}  // namespace

Bytes EncodeLocalCache(const LocalCacheSnapshot& snapshot,
                       const Sha1Digest& key_fingerprint) {
  BinaryWriter w;
  w.WriteU32(kMagic);
  w.WriteU32(kFormatVersion);
  w.WriteDigest(key_fingerprint);
  w.WriteU32(static_cast<uint32_t>(snapshot.versions.size()));
  for (const FileVersion& version : snapshot.versions) {
    w.WriteBytes(version.Serialize());
  }
  w.WriteBytes(snapshot.chunk_table.Serialize());
  w.WriteU32(static_cast<uint32_t>(snapshot.known_meta_bases.size()));
  for (const std::string& base : snapshot.known_meta_bases) {
    w.WriteString(base);
  }
  Bytes data = w.TakeData();
  // Trailing whole-payload checksum: length-prefix parsing alone misses a
  // bit flip inside a serialized blob, and a client that trusts a silently
  // corrupted cache serves wrong metadata until the next full sync. Any
  // corruption now fails the load, and the caller falls back to Recover().
  const Sha1Digest checksum = Sha1::Hash(ByteSpan(data));
  data.insert(data.end(), checksum.bytes.begin(), checksum.bytes.end());
  return data;
}

Result<LocalCacheSnapshot> DecodeLocalCache(ByteSpan data,
                                            const Sha1Digest& key_fingerprint) {
  if (data.size() < kChecksumBytes) {
    return DataLossError("local cache shorter than its checksum");
  }
  const ByteSpan payload = data.first(data.size() - kChecksumBytes);
  const ByteSpan trailer = data.last(kChecksumBytes);
  const Sha1Digest checksum = Sha1::Hash(payload);
  if (!std::equal(trailer.begin(), trailer.end(), checksum.bytes.begin())) {
    return DataLossError("local cache checksum mismatch (truncated or corrupted)");
  }
  BinaryReader r(payload);
  CYRUS_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) {
    return DataLossError("local cache magic mismatch");
  }
  CYRUS_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kFormatVersion) {
    return DataLossError(StrCat("unsupported local cache version ", version));
  }
  CYRUS_ASSIGN_OR_RETURN(Sha1Digest fingerprint, r.ReadDigest());
  if (fingerprint != key_fingerprint) {
    return FailedPreconditionError("local cache belongs to a different CYRUS cloud");
  }
  LocalCacheSnapshot snapshot;
  CYRUS_ASSIGN_OR_RETURN(uint32_t num_versions, r.ReadU32());
  snapshot.versions.reserve(num_versions);
  for (uint32_t i = 0; i < num_versions; ++i) {
    CYRUS_ASSIGN_OR_RETURN(Bytes blob, r.ReadBytes());
    CYRUS_ASSIGN_OR_RETURN(FileVersion v, FileVersion::Deserialize(blob));
    snapshot.versions.push_back(std::move(v));
  }
  CYRUS_ASSIGN_OR_RETURN(Bytes table_blob, r.ReadBytes());
  CYRUS_ASSIGN_OR_RETURN(snapshot.chunk_table, ChunkTable::Deserialize(table_blob));
  CYRUS_ASSIGN_OR_RETURN(uint32_t num_bases, r.ReadU32());
  for (uint32_t i = 0; i < num_bases; ++i) {
    CYRUS_ASSIGN_OR_RETURN(std::string base, r.ReadString());
    snapshot.known_meta_bases.insert(std::move(base));
  }
  if (!r.AtEnd()) {
    return DataLossError("trailing bytes after local cache");
  }
  return snapshot;
}

Status SaveLocalCache(const std::filesystem::path& path,
                      const LocalCacheSnapshot& snapshot,
                      const Sha1Digest& key_fingerprint) {
  const Bytes data = EncodeLocalCache(snapshot, key_fingerprint);
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
      return UnavailableError(StrCat("cannot open ", tmp.string()));
    }
    file.write(reinterpret_cast<const char*>(data.data()),
               static_cast<std::streamsize>(data.size()));
    if (!file) {
      return UnavailableError(StrCat("short write to ", tmp.string()));
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return UnavailableError(StrCat("rename failed: ", ec.message()));
  }
  return OkStatus();
}

Result<LocalCacheSnapshot> LoadLocalCache(const std::filesystem::path& path,
                                          const Sha1Digest& key_fingerprint) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return NotFoundError(StrCat("no local cache at ", path.string()));
  }
  Bytes data((std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());
  return DecodeLocalCache(data, key_fingerprint);
}

}  // namespace cyrus
