// Local metadata cache (paper §5.2: "Clients maintain local copies of the
// metadata tree for efficiency and periodically sync with the metadata
// stored at the CSPs").
//
// Serializes a client's synced state - version tree, global chunk table,
// and the set of already-ingested metadata object names - to one local
// file. A restarting client loads the cache and then runs an ordinary
// incremental SyncMetadata() instead of a full Recover(), turning startup
// from O(all metadata) downloads into O(new metadata). The cache is a pure
// optimization: deleting it is always safe (recover() rebuilds from the
// clouds), and it is keyed to the key string so a cache cannot be loaded
// into the wrong CYRUS cloud.
#ifndef SRC_CORE_LOCAL_CACHE_H_
#define SRC_CORE_LOCAL_CACHE_H_

#include <filesystem>
#include <set>
#include <string>

#include "src/meta/chunk_table.h"
#include "src/meta/version_tree.h"
#include "src/util/result.h"

namespace cyrus {

struct LocalCacheSnapshot {
  std::vector<FileVersion> versions;
  ChunkTable chunk_table;
  std::set<std::string> known_meta_bases;
};

// Encodes a snapshot. `key_fingerprint` ties the cache to one CYRUS cloud
// (use Sha1::Hash(key_string)); Decode rejects a mismatched fingerprint.
Bytes EncodeLocalCache(const LocalCacheSnapshot& snapshot,
                       const Sha1Digest& key_fingerprint);
Result<LocalCacheSnapshot> DecodeLocalCache(ByteSpan data,
                                            const Sha1Digest& key_fingerprint);

// File helpers (write-then-rename for crash safety).
Status SaveLocalCache(const std::filesystem::path& path,
                      const LocalCacheSnapshot& snapshot,
                      const Sha1Digest& key_fingerprint);
Result<LocalCacheSnapshot> LoadLocalCache(const std::filesystem::path& path,
                                          const Sha1Digest& key_fingerprint);

}  // namespace cyrus

#endif  // SRC_CORE_LOCAL_CACHE_H_
