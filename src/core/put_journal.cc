#include "src/core/put_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <utility>

#include "src/util/hex.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

// Makes the directory entry for `path` durable: without this, a crash
// after rename() can resurface the pre-compaction journal (or none at
// all) even though the file data itself was fsynced.
void FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : (slash == 0 ? "/" : path.substr(0, slash));
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

std::string HexOf(std::string_view text) {
  return HexEncode(ByteSpan(reinterpret_cast<const uint8_t*>(text.data()),
                            text.size()));
}

Result<std::string> UnhexToString(std::string_view hex) {
  CYRUS_ASSIGN_OR_RETURN(Bytes bytes, HexDecode(hex));
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace

PutJournal::PutJournal(std::string path) : path_(std::move(path)) {}

PutJournal::~PutJournal() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Result<std::unique_ptr<PutJournal>> PutJournal::Open(std::string path) {
  if (path.empty()) {
    return InvalidArgumentError("journal path must not be empty");
  }
  std::unique_ptr<PutJournal> journal(new PutJournal(std::move(path)));
  CYRUS_RETURN_IF_ERROR(journal->LoadAndCompact());
  return journal;
}

Status PutJournal::LoadAndCompact() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::FILE* in = std::fopen(path_.c_str(), "r")) {
    std::string line;
    int c;
    while ((c = std::fgetc(in)) != EOF) {
      if (c == '\n') {
        if (!line.empty()) {
          Status parsed = ApplyLine(line);
          if (!parsed.ok()) {
            std::fclose(in);
            return parsed;
          }
        }
        line.clear();
      } else {
        line.push_back(static_cast<char>(c));
      }
    }
    std::fclose(in);
    // A torn final line (crash mid-append) is expected, not corruption:
    // drop it if it does not parse.
    if (!line.empty()) {
      (void)ApplyLine(line).ok();
    }
  }
  return Rewrite();
}

Status PutJournal::ApplyLine(const std::string& line) {
  const std::vector<std::string> fields = Split(line, ' ');
  if (fields.size() < 2) {
    return DataLossError(StrCat("journal: malformed record '", line, "'"));
  }
  const std::string& tag = fields[0];
  const std::string& id = fields[1];
  if (tag == "I") {
    if (fields.size() != 3) {
      return DataLossError("journal: malformed I record");
    }
    CYRUS_ASSIGN_OR_RETURN(std::string file_name, UnhexToString(fields[2]));
    JournalIntent intent;
    intent.version_id = id;
    intent.file_name = std::move(file_name);
    const uint64_t seq = next_seq_++;
    pending_[seq] = std::move(intent);
    by_id_[id] = seq;
    return OkStatus();
  }
  auto seq_it = by_id_.find(id);
  if (seq_it == by_id_.end()) {
    // Record for an already-compacted (committed) intent; stale but
    // harmless.
    return OkStatus();
  }
  JournalIntent& intent = pending_[seq_it->second];
  if (tag == "S") {
    if (fields.size() != 4) {
      return DataLossError("journal: malformed S record");
    }
    JournalShare share;
    CYRUS_ASSIGN_OR_RETURN(share.csp_name, UnhexToString(fields[2]));
    CYRUS_ASSIGN_OR_RETURN(share.object_name, UnhexToString(fields[3]));
    intent.shares.push_back(std::move(share));
    return OkStatus();
  }
  if (tag == "M") {
    if (fields.size() != 3) {
      return DataLossError("journal: malformed M record");
    }
    CYRUS_ASSIGN_OR_RETURN(intent.meta_wire, HexDecode(fields[2]));
    intent.has_metadata = true;
    return OkStatus();
  }
  if (tag == "C") {
    pending_.erase(seq_it->second);
    by_id_.erase(seq_it);
    return OkStatus();
  }
  return DataLossError(StrCat("journal: unknown record tag '", tag, "'"));
}

Status PutJournal::Rewrite() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  const std::string tmp = path_ + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "w");
  if (out == nullptr) {
    return UnavailableError(StrCat("journal: cannot write ", tmp));
  }
  for (const auto& [seq, intent] : pending_) {
    std::fprintf(out, "I %s %s\n", intent.version_id.c_str(),
                 HexOf(intent.file_name).c_str());
    for (const JournalShare& share : intent.shares) {
      std::fprintf(out, "S %s %s %s\n", intent.version_id.c_str(),
                   HexOf(share.csp_name).c_str(), HexOf(share.object_name).c_str());
    }
    if (intent.has_metadata) {
      std::fprintf(out, "M %s %s\n", intent.version_id.c_str(),
                   HexEncode(intent.meta_wire).c_str());
    }
  }
  std::fflush(out);
  fsync(fileno(out));
  std::fclose(out);
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return UnavailableError(StrCat("journal: cannot rename ", tmp, " to ", path_));
  }
  // Every journal file is born via this rename (Open always compacts), so
  // this one directory fsync also covers first creation; AppendLine's
  // per-record fsyncs then hit an already-durable directory entry.
  FsyncParentDir(path_);
  file_ = std::fopen(path_.c_str(), "a");
  if (file_ == nullptr) {
    return UnavailableError(StrCat("journal: cannot append to ", path_));
  }
  return OkStatus();
}

Status PutJournal::AppendLine(const std::string& line) {
  if (file_ == nullptr) {
    return FailedPreconditionError("journal: not open");
  }
  if (std::fputs(line.c_str(), file_) == EOF || std::fputc('\n', file_) == EOF) {
    return UnavailableError(StrCat("journal: write failed on ", path_));
  }
  std::fflush(file_);
  fsync(fileno(file_));
  return OkStatus();
}

Status PutJournal::BeginIntent(const std::string& version_id,
                               const std::string& file_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (by_id_.count(version_id) > 0) {
    // Same content re-Put after an earlier in-flight attempt; keep the
    // original intent (its share records are still valid).
    return OkStatus();
  }
  CYRUS_RETURN_IF_ERROR(AppendLine(StrCat("I ", version_id, " ", HexOf(file_name))));
  JournalIntent intent;
  intent.version_id = version_id;
  intent.file_name = file_name;
  const uint64_t seq = next_seq_++;
  pending_[seq] = std::move(intent);
  by_id_[version_id] = seq;
  return OkStatus();
}

Status PutJournal::AppendShare(const std::string& version_id,
                               const std::string& csp_name,
                               const std::string& object_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_id_.find(version_id);
  if (it == by_id_.end()) {
    return FailedPreconditionError(StrCat("journal: no intent ", version_id));
  }
  CYRUS_RETURN_IF_ERROR(AppendLine(
      StrCat("S ", version_id, " ", HexOf(csp_name), " ", HexOf(object_name))));
  pending_[it->second].shares.push_back(JournalShare{csp_name, object_name});
  return OkStatus();
}

Status PutJournal::RecordMetadata(const std::string& version_id, ByteSpan meta_wire) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_id_.find(version_id);
  if (it == by_id_.end()) {
    return FailedPreconditionError(StrCat("journal: no intent ", version_id));
  }
  CYRUS_RETURN_IF_ERROR(AppendLine(StrCat("M ", version_id, " ", HexEncode(meta_wire))));
  JournalIntent& intent = pending_[it->second];
  intent.meta_wire.assign(meta_wire.begin(), meta_wire.end());
  intent.has_metadata = true;
  return OkStatus();
}

Status PutJournal::Commit(const std::string& version_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_id_.find(version_id);
  if (it == by_id_.end()) {
    return OkStatus();  // idempotent: already committed and compacted
  }
  CYRUS_RETURN_IF_ERROR(AppendLine(StrCat("C ", version_id)));
  pending_.erase(it->second);
  by_id_.erase(it);
  return OkStatus();
}

std::vector<JournalIntent> PutJournal::PendingIntents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JournalIntent> out;
  out.reserve(pending_.size());
  for (const auto& [seq, intent] : pending_) {
    out.push_back(intent);
  }
  return out;
}

}  // namespace cyrus
