// Write-intent journal making Put crash-safe.
//
// A Put scatters shares to CSPs *before* publishing the version's metadata
// object. If the client dies in between, the shares are orphans: no
// metadata references them, no later session knows they exist, and they
// leak at the providers forever. The journal closes that window with a
// local append-only log:
//
//   I <version-id> <file-name>          intent opened, shares may follow
//   S <version-id> <csp-name> <object>  one share object landed durably
//   M <version-id> <wire-metadata>      all shares landed; metadata built
//   C <version-id>                      metadata published; intent closed
//
// On the next start, RecoverJournal() (CyrusClient) replays pending
// intents: an intent with an M record is rolled *forward* (the metadata
// blob is re-published - the shares are already durable), one without is
// rolled *back* (every journaled share object that no committed chunk
// references is deleted from its CSP). CSPs are recorded by stable
// connector name, not registry index, because the recovering session may
// register accounts in a different order.
//
// Variable fields are hex-encoded so the format survives spaces and
// binary metadata. Each append is flushed and fsync'd before the caller
// proceeds; Open() compacts committed intents away.
#ifndef SRC_CORE_PUT_JOURNAL_H_
#define SRC_CORE_PUT_JOURNAL_H_

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/result.h"

namespace cyrus {

struct JournalShare {
  std::string csp_name;     // stable connector id, e.g. "dropbox"
  std::string object_name;  // share object name at that CSP
};

struct JournalIntent {
  std::string version_id;  // hex version digest
  std::string file_name;
  std::vector<JournalShare> shares;
  Bytes meta_wire;         // serialized wire-form FileVersion (may be empty)
  bool has_metadata = false;
};

class PutJournal {
 public:
  // Opens (creating if absent) the journal at `path`, loads pending
  // intents, and compacts committed ones away. Fails on an unwritable
  // path or a corrupt record.
  static Result<std::unique_ptr<PutJournal>> Open(std::string path);

  ~PutJournal();
  PutJournal(const PutJournal&) = delete;
  PutJournal& operator=(const PutJournal&) = delete;

  // Each mutator appends one durable record (write + flush + fsync).
  Status BeginIntent(const std::string& version_id, const std::string& file_name);
  Status AppendShare(const std::string& version_id, const std::string& csp_name,
                     const std::string& object_name);
  Status RecordMetadata(const std::string& version_id, ByteSpan meta_wire);
  Status Commit(const std::string& version_id);

  // Intents without a C record, oldest first. Used by crash recovery.
  std::vector<JournalIntent> PendingIntents() const;

  const std::string& path() const { return path_; }

 private:
  explicit PutJournal(std::string path);

  Status AppendLine(const std::string& line);
  Status LoadAndCompact();
  // Parses one journal line into pending_; kDataLoss on malformed input.
  Status ApplyLine(const std::string& line);
  // Rewrites the file with only pending intents (temp file + rename).
  Status Rewrite();

  const std::string path_;
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  // Insertion-ordered: map key is a sequence number so recovery replays
  // intents oldest-first.
  std::map<uint64_t, JournalIntent> pending_;
  std::map<std::string, uint64_t> by_id_;
  uint64_t next_seq_ = 0;
};

}  // namespace cyrus

#endif  // SRC_CORE_PUT_JOURNAL_H_
