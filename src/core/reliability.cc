#include "src/core/reliability.h"

#include <cassert>
#include <cmath>

#include "src/util/strings.h"

namespace cyrus {

double BinomialCoefficient(uint32_t n, uint32_t k) {
  if (k > n) {
    return 0.0;
  }
  k = std::min(k, n - k);
  double result = 1.0;
  for (uint32_t i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return result;
}

double ChunkLossProbability(uint32_t t, uint32_t n, double p) {
  assert(t >= 1 && t <= n);
  assert(p >= 0.0 && p <= 1.0);
  // Survivors s ~ Binomial(n, 1-p); loss iff s < t.
  double loss = 0.0;
  for (uint32_t s = 0; s < t; ++s) {
    loss += BinomialCoefficient(n, s) * std::pow(1.0 - p, s) *
            std::pow(p, static_cast<double>(n - s));
  }
  return std::min(loss, 1.0);
}

Result<uint32_t> MinSharesForReliability(uint32_t t, double p, double epsilon,
                                         uint32_t max_n) {
  if (t == 0) {
    return InvalidArgumentError("t must be positive");
  }
  if (max_n < t) {
    return FailedPreconditionError(
        StrCat("only ", max_n, " CSPs/clusters available but t=", t));
  }
  if (p < 0.0 || p > 1.0) {
    return InvalidArgumentError(StrCat("failure probability ", p, " outside [0,1]"));
  }
  for (uint32_t n = t; n <= max_n; ++n) {
    if (ChunkLossProbability(t, n, p) <= epsilon) {
      return n;
    }
  }
  return FailedPreconditionError(
      StrCat("cannot meet failure budget ", epsilon, " with t=", t, ", p=", p,
             " using at most ", max_n, " CSPs"));
}

}  // namespace cyrus
