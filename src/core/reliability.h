// Reliability parameter selection (paper §4.2, Equation 1).
//
// The user fixes privacy t (shares required to reconstruct) and a failure
// budget epsilon. Each CSP fails independently with probability p. A chunk
// is unrecoverable when fewer than t of its n shares are reachable, i.e.
// when fewer than t CSPs survive:
//     P(loss) = sum_{s=0}^{t-1} C(n, s) (1-p)^s p^(n-s).
// CYRUS picks the smallest n in [t, max_n] with P(loss) <= epsilon,
// minimizing stored data (shares cost chunk/t bytes each).
#ifndef SRC_CORE_RELIABILITY_H_
#define SRC_CORE_RELIABILITY_H_

#include <cstdint>

#include "src/util/result.h"

namespace cyrus {

// Exact binomial loss probability for a (t, n) configuration with per-CSP
// failure probability p in [0, 1]. Requires 1 <= t <= n.
double ChunkLossProbability(uint32_t t, uint32_t n, double p);

// Smallest n in [t, max_n] with ChunkLossProbability(t, n, p) <= epsilon.
// kFailedPrecondition if even n = max_n misses the budget (the caller can
// add CSP accounts or relax epsilon).
Result<uint32_t> MinSharesForReliability(uint32_t t, double p, double epsilon,
                                         uint32_t max_n);

// Binomial coefficient as a double (exact for the small arguments used
// here; exposed for tests and the Figure 13 benchmark).
double BinomialCoefficient(uint32_t n, uint32_t k);

}  // namespace cyrus

#endif  // SRC_CORE_RELIABILITY_H_
