#include "src/core/sync_service.h"

#include <set>

#include "src/util/strings.h"

namespace cyrus {

void LocalWorkspace::WriteFile(std::string_view name, Bytes content, double mtime) {
  LocalFile& file = files_[std::string(name)];
  file.content = std::move(content);
  file.mtime = mtime;
  file.dirty = true;
  file.tombstone = false;
}

Result<Bytes> LocalWorkspace::ReadFile(std::string_view name) const {
  auto it = files_.find(name);
  if (it == files_.end() || it->second.tombstone) {
    return NotFoundError(StrCat("no local file ", name));
  }
  return it->second.content;
}

Status LocalWorkspace::DeleteFile(std::string_view name, double mtime) {
  auto it = files_.find(name);
  if (it == files_.end() || it->second.tombstone) {
    return NotFoundError(StrCat("no local file ", name));
  }
  if (!it->second.ever_synced) {
    files_.erase(it);  // never reached the cloud: just forget it
    return OkStatus();
  }
  it->second.tombstone = true;
  it->second.dirty = true;
  it->second.mtime = mtime;
  it->second.content.clear();
  return OkStatus();
}

bool LocalWorkspace::Exists(std::string_view name) const {
  auto it = files_.find(name);
  return it != files_.end() && !it->second.tombstone;
}

std::vector<std::string> LocalWorkspace::FileNames() const {
  std::vector<std::string> out;
  for (const auto& [name, file] : files_) {
    if (!file.tombstone) {
      out.push_back(name);
    }
  }
  return out;
}

void SyncStats::Accumulate(const SyncStats& other) {
  uploads += other.uploads;
  downloads += other.downloads;
  deletes_pushed += other.deletes_pushed;
  deletes_pulled += other.deletes_pulled;
  conflicts_detected += other.conflicts_detected;
  conflicts_resolved += other.conflicts_resolved;
}

SyncService::SyncService(CyrusClient* client, LocalWorkspace* workspace,
                         SyncOptions options)
    : client_(client), workspace_(workspace), options_(options) {}

Result<SyncStats> SyncService::RunOnce() {
  SyncStats stats;

  // 1. Push local changes first, against the *stale* local tree - exactly
  //    what a real client racing other devices does (Algorithm 2 reads the
  //    head locally). Pulling first would silently linearize concurrent
  //    edits instead of surfacing them as conflicts.
  for (auto& [name, file] : workspace_->files_) {
    if (!file.dirty) {
      continue;
    }
    if (file.tombstone) {
      Status deleted = client_->Delete(name);
      if (deleted.ok() || deleted.code() == StatusCode::kNotFound) {
        file.dirty = false;
        ++stats.deletes_pushed;
      }
      continue;
    }
    CYRUS_ASSIGN_OR_RETURN(PutResult put, client_->Put(name, file.content));
    file.dirty = false;
    file.ever_synced = true;
    file.synced_content_id = Sha1::Hash(file.content);
    if (!put.unchanged) {
      ++stats.uploads;
    }
  }

  // 2. Pull metadata: new versions uploaded by other clients (and any
  //    sibling versions the pushes above created) become visible.
  CYRUS_ASSIGN_OR_RETURN(std::vector<Conflict> sync_conflicts, client_->SyncMetadata());

  // 3. Detect conflicts across all names and optionally resolve them by
  //    keeping the newest live head (losers are renamed, not dropped).
  for (const std::string& name : client_->tree().FileNames()) {
    std::vector<const FileVersion*> live;
    for (const FileVersion* head : client_->tree().Heads(name)) {
      if (!head->deleted) {
        live.push_back(head);
      }
    }
    if (live.size() < 2) {
      continue;
    }
    ++stats.conflicts_detected;
    if (options_.conflict_policy != ConflictPolicy::kAutoResolve) {
      continue;
    }
    const FileVersion* newest = live.front();
    for (const FileVersion* head : live) {
      if (head->modified_time > newest->modified_time ||
          (head->modified_time == newest->modified_time && head->id > newest->id)) {
        newest = head;
      }
    }
    CYRUS_RETURN_IF_ERROR(client_->ResolveConflict(name, newest->id));
    ++stats.conflicts_resolved;
  }
  (void)sync_conflicts;  // the full rescan above covers these

  // 4. Pull remote state into the workspace: new files, newer versions,
  //    and deletions performed elsewhere.
  CYRUS_ASSIGN_OR_RETURN(std::vector<FileListing> remote, client_->List(""));
  std::set<std::string> remote_names;
  for (const FileListing& listing : remote) {
    remote_names.insert(listing.name);
    auto it = workspace_->files_.find(listing.name);
    if (it != workspace_->files_.end() && it->second.dirty) {
      continue;  // local change takes precedence until the next pass
    }
    // Skip the download when the local copy already matches the head.
    auto latest = client_->tree().Latest(listing.name);
    if (!latest.ok()) {
      continue;  // conflicted and policy is report-only
    }
    if (it != workspace_->files_.end() && !it->second.tombstone &&
        it->second.synced_content_id == (*latest)->content_id) {
      continue;
    }
    CYRUS_ASSIGN_OR_RETURN(GetResult get, client_->Get(listing.name));
    LocalWorkspace::LocalFile& file = workspace_->files_[listing.name];
    file.content = std::move(get.content);
    file.mtime = listing.modified_time;
    file.dirty = false;
    file.tombstone = false;
    file.ever_synced = true;
    file.synced_content_id = (*latest)->content_id;
    ++stats.downloads;
  }
  // Remote deletions: synced local files whose name vanished from the
  // cloud listing (deleted by another client).
  for (auto& [name, file] : workspace_->files_) {
    if (!file.tombstone && !file.dirty && file.ever_synced &&
        remote_names.count(name) == 0) {
      file.tombstone = true;
      file.content.clear();
      ++stats.deletes_pulled;
    }
  }

  lifetime_.Accumulate(stats);
  return stats;
}

void SyncService::Start(EventQueue* queue) {
  running_ = true;
  ScheduleNext(queue);
}

void SyncService::ScheduleNext(EventQueue* queue) {
  queue->ScheduleAfter(options_.interval_seconds, [this, queue] {
    if (!running_) {
      return;
    }
    client_->set_time(queue->now());
    (void)RunOnce();  // periodic passes tolerate transient CSP errors
    ScheduleNext(queue);
  });
}

}  // namespace cyrus
