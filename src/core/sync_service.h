// The synchronization service (paper §5.4): keeps a local folder and the
// CYRUS cloud converged without client-to-client communication.
//
// The prototype watches a local directory; here LocalWorkspace models that
// directory (an in-memory file map with modification times and tombstones)
// so the sync logic is fully testable under virtual time. Each sync pass:
//   1. pulls new metadata from the CSPs (change detection at the cloud is
//      "look for new metadata objects", paper §5.4);
//   2. pushes locally created/edited files (new versions; deletions become
//      deletion markers);
//   3. pulls remote updates into the workspace;
//   4. detects conflicts and - under the auto policy - resolves them by
//      keeping the newest head and renaming the losers, so no edit is lost.
// Periodic operation plugs into the discrete-event queue.
#ifndef SRC_CORE_SYNC_SERVICE_H_
#define SRC_CORE_SYNC_SERVICE_H_

#include <map>
#include <string>

#include "src/core/client.h"
#include "src/sim/event_queue.h"

namespace cyrus {

// A local folder stand-in. Writes through the workspace mark files dirty;
// writes performed by the sync service itself do not.
class LocalWorkspace {
 public:
  // User-visible operations (what a file watcher would observe).
  void WriteFile(std::string_view name, Bytes content, double mtime);
  Result<Bytes> ReadFile(std::string_view name) const;
  // Returns kNotFound if the file does not exist locally.
  Status DeleteFile(std::string_view name, double mtime);

  bool Exists(std::string_view name) const;
  std::vector<std::string> FileNames() const;

 private:
  friend class SyncService;

  struct LocalFile {
    Bytes content;
    double mtime = 0.0;
    bool dirty = false;            // locally modified since last sync
    bool tombstone = false;        // locally deleted, deletion not yet pushed
    bool ever_synced = false;
    Sha1Digest synced_content_id;  // content hash at last sync
  };
  std::map<std::string, LocalFile, std::less<>> files_;
};

enum class ConflictPolicy {
  kReportOnly,   // surface conflicts in SyncStats, change nothing
  kAutoResolve,  // keep the newest head, rename losing heads (paper's UI
                 // prompts the user; auto-rename is the lossless default)
};

struct SyncOptions {
  ConflictPolicy conflict_policy = ConflictPolicy::kAutoResolve;
  double interval_seconds = 30.0;  // periodic cadence under an EventQueue
};

struct SyncStats {
  size_t uploads = 0;
  size_t downloads = 0;
  size_t deletes_pushed = 0;
  size_t deletes_pulled = 0;
  size_t conflicts_detected = 0;
  size_t conflicts_resolved = 0;

  void Accumulate(const SyncStats& other);
};

class SyncService {
 public:
  // Borrows both; they must outlive the service.
  SyncService(CyrusClient* client, LocalWorkspace* workspace, SyncOptions options = {});

  // One full sync pass at the client's current virtual time.
  Result<SyncStats> RunOnce();

  // Schedules RunOnce every options.interval_seconds on the queue, driving
  // the client's virtual clock from queue time. Runs until Stop().
  void Start(EventQueue* queue);
  void Stop() { running_ = false; }
  bool running() const { return running_; }

  // Totals across all passes since construction.
  const SyncStats& lifetime_stats() const { return lifetime_; }

 private:
  void ScheduleNext(EventQueue* queue);

  CyrusClient* client_;
  LocalWorkspace* workspace_;
  SyncOptions options_;
  SyncStats lifetime_;
  bool running_ = false;
};

}  // namespace cyrus

#endif  // SRC_CORE_SYNC_SERVICE_H_
