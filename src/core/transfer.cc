#include "src/core/transfer.h"

#include <functional>

namespace cyrus {
namespace {

// Distinct jitter stream per object without threading extra state through.
RetryOptions MixSeed(const RetryOptions& options, const std::string& object) {
  RetryOptions mixed = options;
  mixed.seed ^= std::hash<std::string>{}(object);
  return mixed;
}

}  // namespace

Status UploadWithRetry(CloudConnector& connector, TransferKind kind, int csp,
                       const std::string& object, ByteSpan data,
                       const RetryOptions& options, TransferReport& report) {
  return RetryWithBackoff(MixSeed(options, object), [&] {
    Status upload = connector.Upload(object, data);
    report.records.push_back(
        TransferRecord{kind, csp, object, data.size(), upload.ok()});
    return upload;
  });
}

Result<Bytes> DownloadWithRetry(CloudConnector& connector, TransferKind kind, int csp,
                                const std::string& object, const RetryOptions& options,
                                TransferReport& report) {
  return RetryWithBackoff(MixSeed(options, object), [&]() -> Result<Bytes> {
    Result<Bytes> data = connector.Download(object);
    report.records.push_back(TransferRecord{kind, csp, object,
                                            data.ok() ? data->size() : uint64_t{0},
                                            data.ok()});
    return data;
  });
}

void RecordTransferMetrics(const TransferReport& report,
                           obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    registry = &obs::MetricsRegistry::Default();
  }
  static constexpr TransferKind kKinds[] = {TransferKind::kPut, TransferKind::kGet,
                                            TransferKind::kPutMeta,
                                            TransferKind::kGetMeta};
  for (TransferKind kind : kKinds) {
    uint64_t ok = 0;
    uint64_t failed = 0;
    uint64_t bytes = 0;
    for (const TransferRecord& r : report.records) {
      if (r.kind != kind) {
        continue;
      }
      if (r.success) {
        ++ok;
        bytes += r.bytes;
      } else {
        ++failed;
      }
    }
    if (ok + failed == 0) {
      continue;
    }
    const std::string kind_name(TransferKindName(kind));
    if (ok > 0) {
      registry
          ->GetCounter("cyrus_transfer_requests_total",
                       {{"kind", kind_name}, {"result", "ok"}},
                       "Journaled transfer requests by kind and result")
          ->Increment(ok);
      registry
          ->GetCounter("cyrus_transfer_bytes_total", {{"kind", kind_name}},
                       "Bytes moved by successful transfer requests")
          ->Increment(bytes);
    }
    if (failed > 0) {
      registry
          ->GetCounter("cyrus_transfer_requests_total",
                       {{"kind", kind_name}, {"result", "error"}},
                       "Journaled transfer requests by kind and result")
          ->Increment(failed);
    }
  }
}

std::string_view TransferKindName(TransferKind kind) {
  switch (kind) {
    case TransferKind::kPut:
      return "PUT";
    case TransferKind::kGet:
      return "GET";
    case TransferKind::kPutMeta:
      return "PUT_META";
    case TransferKind::kGetMeta:
      return "GET_META";
  }
  return "UNKNOWN";
}

uint64_t TransferReport::TotalBytes(TransferKind kind) const {
  uint64_t total = 0;
  for (const TransferRecord& r : records) {
    if (r.kind == kind && r.success) {
      total += r.bytes;
    }
  }
  return total;
}

uint64_t TransferReport::BytesToCsp(int csp) const {
  uint64_t total = 0;
  for (const TransferRecord& r : records) {
    if (r.csp == csp && r.success) {
      total += r.bytes;
    }
  }
  return total;
}

size_t TransferReport::CountOf(TransferKind kind) const {
  size_t count = 0;
  for (const TransferRecord& r : records) {
    if (r.kind == kind) {
      ++count;
    }
  }
  return count;
}

void TransferReport::Append(const TransferReport& other) {
  records.insert(records.end(), other.records.begin(), other.records.end());
}

void TransferAggregator::ExpectChunk(const std::string& file, const Sha1Digest& chunk_id,
                                     uint32_t shares_needed) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = chunks_.emplace(chunk_id, ChunkState{shares_needed, 0});
  if (!inserted) {
    return;  // chunk already tracked (dedup within a file)
  }
  chunk_file_[chunk_id] = file;
  ++files_[file].chunks_expected;
}

void TransferAggregator::OnShareEvent(const std::string& file, const Sha1Digest& chunk_id,
                                      bool success) {
  if (!success) {
    return;
  }
  // Decide which completion levels fired under the lock; invoke callbacks
  // after releasing it so they can re-enter the aggregator safely.
  bool chunk_fired = false;
  bool file_fired = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = chunks_.find(chunk_id);
    if (it == chunks_.end() || it->second.done >= it->second.needed) {
      return;  // unknown or already complete: surplus shares are fine
    }
    if (++it->second.done < it->second.needed) {
      return;
    }
    chunk_fired = true;  // ChunkComplete just transitioned to true
    FileState& fs = files_[file];
    if (++fs.chunks_complete >= fs.chunks_expected && !fs.fired) {
      fs.fired = true;
      file_fired = true;
    }
  }
  if (chunk_fired && on_chunk_complete_) {
    on_chunk_complete_(chunk_id);
  }
  if (file_fired && on_file_complete_) {
    on_file_complete_(file);
  }
}

bool TransferAggregator::ChunkComplete(const Sha1Digest& chunk_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = chunks_.find(chunk_id);
  return it != chunks_.end() && it->second.done >= it->second.needed;
}

bool TransferAggregator::FileComplete(const std::string& file) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(file);
  return it != files_.end() && it->second.fired;
}

}  // namespace cyrus
