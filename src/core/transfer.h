// Transfer records and asynchronous completion aggregation (paper §5.3).
//
// Cloud connectors answer requests as asynchronous events; the CYRUS core
// aggregates them through three levels of completion:
//   ShareComplete - one share uploaded/downloaded,
//   ChunkComplete - n shares uploaded or t shares downloaded for a chunk,
//   FileComplete  - every chunk of the file complete.
// The event types mirror the paper: PUT, GET, PUT_META, GET_META.
//
// The core also journals every request as a TransferRecord. Benchmarks feed
// those records into the fluid network simulator (src/sim/flow_network.h)
// to obtain completion times for the exact byte pattern a real deployment
// would have moved.
#ifndef SRC_CORE_TRANSFER_H_
#define SRC_CORE_TRANSFER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/cloud/connector.h"
#include "src/crypto/sha1.h"
#include "src/obs/metrics.h"
#include "src/util/result.h"
#include "src/util/retry.h"

namespace cyrus {

enum class TransferKind { kPut, kGet, kPutMeta, kGetMeta };

std::string_view TransferKindName(TransferKind kind);

struct TransferRecord {
  TransferKind kind = TransferKind::kPut;
  int csp = -1;
  std::string object_name;
  uint64_t bytes = 0;
  bool success = true;
};

// Journal of the requests one API call issued. Records within a phase are
// logically concurrent (CYRUS issues them in parallel); metadata uploads
// happen strictly after all share uploads (Algorithm 2 line 10).
struct TransferReport {
  std::vector<TransferRecord> records;

  uint64_t TotalBytes(TransferKind kind) const;
  uint64_t BytesToCsp(int csp) const;
  size_t CountOf(TransferKind kind) const;
  void Append(const TransferReport& other);
};

// Folds a completed report into `registry` as
// cyrus_transfer_requests_total{kind,result} and
// cyrus_transfer_bytes_total{kind}, giving the pipeline-level view that
// complements MetricsConnector's per-CSP series (the report journals
// logical requests, including ones that never reached a connector).
void RecordTransferMetrics(const TransferReport& report, obs::MetricsRegistry* registry);

// Connector calls with transient-failure retry (capped exponential backoff
// + jitter, src/util/retry.h) and per-attempt journaling: every attempt -
// including the failed ones - is appended to `report`, so benches see the
// true request pattern a retrying client generates. The retry seed is mixed
// with the object name so concurrent transfers draw distinct jitter
// streams. Backoff delays are virtual (counted, not slept).
Status UploadWithRetry(CloudConnector& connector, TransferKind kind, int csp,
                       const std::string& object, ByteSpan data,
                       const RetryOptions& options, TransferReport& report);
Result<Bytes> DownloadWithRetry(CloudConnector& connector, TransferKind kind, int csp,
                                const std::string& object, const RetryOptions& options,
                                TransferReport& report);

// Aggregates share-level events into chunk- and file-level completion.
// Thread-safe: the pipelined engine feeds share events from pool threads.
// Completion callbacks run on the thread that delivered the completing
// event, outside the aggregator's lock.
class TransferAggregator {
 public:
  using ChunkCallback = std::function<void(const Sha1Digest&)>;
  using FileCallback = std::function<void(const std::string&)>;

  // Declares that `chunk_id` of `file` needs `shares_needed` successful
  // share events (n when uploading, t when downloading).
  void ExpectChunk(const std::string& file, const Sha1Digest& chunk_id,
                   uint32_t shares_needed);

  // Feeds one share event. Unsuccessful events do not advance completion.
  void OnShareEvent(const std::string& file, const Sha1Digest& chunk_id, bool success);

  bool ChunkComplete(const Sha1Digest& chunk_id) const;
  bool FileComplete(const std::string& file) const;

  // Install callbacks before transfers start; they are read without the
  // lock while events are in flight.
  void set_on_chunk_complete(ChunkCallback cb) { on_chunk_complete_ = std::move(cb); }
  void set_on_file_complete(FileCallback cb) { on_file_complete_ = std::move(cb); }

 private:
  struct ChunkState {
    uint32_t needed = 0;
    uint32_t done = 0;
  };
  struct FileState {
    uint32_t chunks_expected = 0;
    uint32_t chunks_complete = 0;
    bool fired = false;
  };

  mutable std::mutex mutex_;
  std::map<Sha1Digest, ChunkState> chunks_;
  std::map<Sha1Digest, std::string> chunk_file_;
  std::map<std::string, FileState> files_;
  ChunkCallback on_chunk_complete_;
  FileCallback on_file_complete_;
};

}  // namespace cyrus

#endif  // SRC_CORE_TRANSFER_H_
