#include "src/crypto/convergent.h"

#include <utility>

#include "src/util/hex.h"

namespace cyrus {
namespace {

// One keystream block: SHA-1 over a domain-separated (key, chunk_id,
// counter) encoding. 20 bytes per block; callers concatenate blocks.
Sha1Digest KeystreamBlock(std::string_view domain, std::string_view key,
                          const Sha1Digest& chunk_id, uint32_t counter) {
  Sha1 h;
  h.Update(domain);
  h.Update(key);
  h.Update(ByteSpan(chunk_id.bytes.data(), chunk_id.bytes.size()));
  const uint8_t ctr[4] = {static_cast<uint8_t>(counter >> 24),
                          static_cast<uint8_t>(counter >> 16),
                          static_cast<uint8_t>(counter >> 8),
                          static_cast<uint8_t>(counter)};
  h.Update(ByteSpan(ctr, 4));
  return h.Finish();
}

}  // namespace

ConvergentKeyDeriver::ConvergentKeyDeriver(std::string salt, std::string user_key)
    : salt_(std::move(salt)), user_key_(std::move(user_key)) {}

std::string ConvergentKeyDeriver::ContentKey(const Sha1Digest& chunk_id) const {
  // Rendered as hex so the key string is printable (codec keys flow through
  // string-typed plumbing) while keeping the full 160 derived bits.
  const Sha1Digest derived =
      KeystreamBlock("cyrus-convergent-content-v1", salt_, chunk_id, 0);
  return HexEncode(ByteSpan(derived.bytes.data(), derived.bytes.size()));
}

Bytes ConvergentKeyDeriver::WrapForUser(const std::string& content_key,
                                        const Sha1Digest& chunk_id) const {
  Bytes out(content_key.begin(), content_key.end());
  for (size_t i = 0; i < out.size(); i += 20) {
    const Sha1Digest block = KeystreamBlock(
        "cyrus-convergent-wrap-v1", user_key_, chunk_id,
        static_cast<uint32_t>(i / 20));
    for (size_t j = 0; j < 20 && i + j < out.size(); ++j) {
      out[i + j] ^= block.bytes[j];
    }
  }
  return out;
}

Result<std::string> ConvergentKeyDeriver::UnwrapForUser(
    ByteSpan wrapped, const Sha1Digest& chunk_id) const {
  if (wrapped.empty()) {
    return InvalidArgumentError("convergent chunk record has no wrapped key");
  }
  // XOR is its own inverse; WrapForUser round-trips through the same
  // keystream.
  const Bytes rewrapped =
      WrapForUser(std::string(wrapped.begin(), wrapped.end()), chunk_id);
  return std::string(rewrapped.begin(), rewrapped.end());
}

}  // namespace cyrus
