// Convergent dispersal keying (CDStore-style two-stage keying).
//
// CYRUS keys the non-systematic RS dispersal matrix with the user's secret,
// so identical chunks stored by different users encode to unrelated shares
// and can never dedupe at the CSPs. Convergent dispersal replaces the user
// key with a *content key* derived from the chunk's own hash: every holder
// of the same plaintext chunk derives the same dispersal vector, produces
// byte-identical shares under the same content-addressed names (ShareName
// depends only on (chunk_id, index, t)), and uploads become idempotent
// overwrites a share index can refcount.
//
// Two-stage keying:
//   stage 1  content key  = KDF(deployment salt, chunk_id)
//   stage 2  wrapped key  = content key XOR keystream(user key, chunk_id)
//
// The salt is a deployment-wide secret shared by the cooperating clients
// (e.g. one gateway's shard workers). It defends against the classic
// convergent-encryption offline dictionary attack: an outside adversary who
// can guess a chunk's plaintext cannot derive its content key - and thus
// cannot confirm the guess against stored shares - without the salt.
// Clients that hold only the *user* key (a second device restoring from
// metadata) unwrap the per-chunk wrapped key from the ChunkMap row instead
// of re-deriving it, so the salt never needs to leave the writing side.
//
// Threat model: a CSP (or any salt-less outsider) sees shares of a keyed
// RS encoding under an unknown content key - the paper's §7.1 privacy
// argument unchanged. A salt holder can mount dictionary attacks against
// *predictable* chunks; that is the known, accepted convergent-encryption
// trade-off and exactly why the salt is scoped to a deployment rather than
// baked into the client. Per-user keys still gate reconstruction of any
// chunk the user actually owns metadata for.
#ifndef SRC_CRYPTO_CONVERGENT_H_
#define SRC_CRYPTO_CONVERGENT_H_

#include <string>

#include "src/crypto/sha1.h"
#include "src/util/bytes.h"
#include "src/util/result.h"

namespace cyrus {

class ConvergentKeyDeriver {
 public:
  // `salt` is the deployment-wide dictionary-attack guard (required for
  // ContentKey); `user_key` keys the per-user wrap (required for Wrap /
  // Unwrap). Either may be empty when only the other half is used.
  ConvergentKeyDeriver(std::string salt, std::string user_key);

  // Stage 1: the chunk's dispersal key string, derived from (salt,
  // chunk_id). Feeding this to SecretSharingCodec::Create in place of the
  // user key makes the dispersal matrix - and hence every share byte - a
  // pure function of chunk content.
  std::string ContentKey(const Sha1Digest& chunk_id) const;

  // Stage 2: XOR-wraps `content_key` under a keystream derived from
  // (user_key, chunk_id), for storage in this user's metadata. Unwrap
  // inverts it; it needs only the user key, never the salt.
  Bytes WrapForUser(const std::string& content_key, const Sha1Digest& chunk_id) const;
  Result<std::string> UnwrapForUser(ByteSpan wrapped,
                                    const Sha1Digest& chunk_id) const;

  const std::string& salt() const { return salt_; }

 private:
  std::string salt_;
  std::string user_key_;
};

}  // namespace cyrus

#endif  // SRC_CRYPTO_CONVERGENT_H_
