#include "src/crypto/naming.h"

#include <cassert>

#include "src/util/bytes.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

// Appends a 32-bit big-endian integer to the hash input.
void UpdateU32(Sha1& h, uint32_t v) {
  const uint8_t b[4] = {static_cast<uint8_t>(v >> 24), static_cast<uint8_t>(v >> 16),
                        static_cast<uint8_t>(v >> 8), static_cast<uint8_t>(v)};
  h.Update(ByteSpan(b, 4));
}

// Expands key material into a stream of bytes: block k is
// SHA-1(domain || key || k). Deterministic and domain-separated.
class KeyStream {
 public:
  KeyStream(std::string_view domain, std::string_view key)
      : domain_(domain), key_(key) {}

  uint8_t NextByte() {
    if (pos_ == block_.bytes.size()) {
      pos_ = 0;
      ++counter_;
    }
    if (pos_ == 0) {
      Sha1 h;
      h.Update(domain_);
      h.Update(key_);
      UpdateU32(h, counter_);
      block_ = h.Finish();
    }
    return block_.bytes[pos_++];
  }

 private:
  std::string domain_;
  std::string key_;
  uint32_t counter_ = 0;
  size_t pos_ = 0;
  Sha1Digest block_{};
};

// Draws `count` distinct nonzero bytes from the key stream.
std::vector<uint8_t> DistinctNonzeroBytes(std::string_view domain, std::string_view key,
                                          uint32_t count) {
  assert(count <= 255);
  std::vector<uint8_t> out;
  out.reserve(count);
  bool seen[256] = {false};
  seen[0] = true;  // zero is never a valid evaluation point
  KeyStream stream(domain, key);
  while (out.size() < count) {
    const uint8_t b = stream.NextByte();
    if (!seen[b]) {
      seen[b] = true;
      out.push_back(b);
    }
  }
  return out;
}

}  // namespace

std::string ShareName(const Sha1Digest& chunk_id, uint32_t share_index, uint32_t t) {
  Sha1 h;
  h.Update(std::string_view("cyrus-share-v1"));
  UpdateU32(h, share_index);
  UpdateU32(h, t);
  h.Update(ByteSpan(chunk_id.bytes.data(), chunk_id.bytes.size()));
  return h.Finish().ToHex();
}

std::string MetadataName(const Sha1Digest& version_id) {
  Sha1 h;
  h.Update(std::string_view("cyrus-meta-v1"));
  h.Update(ByteSpan(version_id.bytes.data(), version_id.bytes.size()));
  return StrCat("meta-", h.Finish().ToHex());
}

std::vector<uint8_t> DeriveDispersalVector(std::string_view key_string, uint32_t t) {
  return DistinctNonzeroBytes("cyrus-dispersal-v1", key_string, t);
}

std::vector<uint8_t> DeriveEvaluationPoints(std::string_view key_string, uint32_t n) {
  return DistinctNonzeroBytes("cyrus-evalpoints-v1", key_string, n);
}

}  // namespace cyrus
