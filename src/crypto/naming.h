// Share naming and key derivation (paper §5.1).
//
// Each share stored at a CSP is named H'(index, H(chunk_content)) so that a
// CSP cannot learn which index (and hence which row of the dispersal matrix)
// a share corresponds to, while any client that knows the chunk id can
// recompute the name. H is SHA-1; H' here is SHA-1 over a domain-separated
// encoding of (index, chunk_id, t).
//
// The dispersal matrix is keyed: the Vandermonde generator vector is derived
// from a consistent hash of the user's key string, so decoding requires the
// key (paper §5.1, §7.1).
#ifndef SRC_CRYPTO_NAMING_H_
#define SRC_CRYPTO_NAMING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/crypto/sha1.h"

namespace cyrus {

// Name of the share with the given creation index for the given chunk.
// Guaranteed unique per (chunk content, index, t): shares of identical
// content map to identical names, so re-uploading is an idempotent
// overwrite (paper: "we only overwrite the existing file share if its
// content is the same").
std::string ShareName(const Sha1Digest& chunk_id, uint32_t share_index, uint32_t t);

// Name of a metadata object for the file version with the given id.
std::string MetadataName(const Sha1Digest& version_id);

// Derives the length-t Vandermonde generator vector for the non-systematic
// Reed-Solomon dispersal matrix from the user's key string. Elements are
// distinct and nonzero in GF(2^8), which makes the Vandermonde matrix
// invertible on any t distinct evaluation points.
std::vector<uint8_t> DeriveDispersalVector(std::string_view key_string, uint32_t t);

// Derives distinct nonzero evaluation points x_0..x_{n-1} in GF(2^8) for the
// n shares, keyed by the same key string. n must be <= 255.
std::vector<uint8_t> DeriveEvaluationPoints(std::string_view key_string, uint32_t n);

}  // namespace cyrus

#endif  // SRC_CRYPTO_NAMING_H_
