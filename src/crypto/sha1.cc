#include "src/crypto/sha1.h"

#include <cassert>
#include <cstring>

#include "src/util/hex.h"

namespace cyrus {
namespace {

uint32_t RotL32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

}  // namespace

std::string Sha1Digest::ToHex() const { return HexEncode(bytes); }

uint64_t Sha1Digest::Prefix64() const {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | bytes[i];
  }
  return v;
}

Sha1::Sha1() : h_{0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u} {}

void Sha1::Update(ByteSpan data) {
  assert(!finished_);
  total_bytes_ += data.size();
  size_t offset = 0;
  // Fill a partially-buffered block first.
  if (buffer_len_ > 0) {
    const size_t take = std::min(data.size(), buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == buffer_.size()) {
      ProcessBlock(buffer_.data());
      buffer_len_ = 0;
    }
  }
  // Whole blocks straight from the input.
  while (offset + 64 <= data.size()) {
    ProcessBlock(data.data() + offset);
    offset += 64;
  }
  // Stash the tail.
  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffer_len_);
  }
}

Sha1Digest Sha1::Finish() {
  assert(!finished_);

  const uint64_t bit_len = total_bytes_ * 8;
  // Append 0x80, zero-pad to 56 mod 64, then the 64-bit big-endian length.
  uint8_t pad[72] = {0x80};
  const size_t pad_len = (buffer_len_ < 56) ? (56 - buffer_len_) : (120 - buffer_len_);
  Update(ByteSpan(pad, pad_len));
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(ByteSpan(len_bytes, 8));
  assert(buffer_len_ == 0);
  finished_ = true;

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest.bytes[4 * i] = static_cast<uint8_t>(h_[i] >> 24);
    digest.bytes[4 * i + 1] = static_cast<uint8_t>(h_[i] >> 16);
    digest.bytes[4 * i + 2] = static_cast<uint8_t>(h_[i] >> 8);
    digest.bytes[4 * i + 3] = static_cast<uint8_t>(h_[i]);
  }
  return digest;
}

Sha1Digest Sha1::Hash(ByteSpan data) {
  Sha1 h;
  h.Update(data);
  return h.Finish();
}

void Sha1::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
           (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = RotL32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const uint32_t temp = RotL32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = RotL32(b, 30);
    b = a;
    a = temp;
  }

  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

}  // namespace cyrus
