// SHA-1 (FIPS 180-4), implemented from scratch.
//
// CYRUS uses SHA-1 exactly as the paper does: as a content identifier for
// files and chunks, as the input to consistent hashing for share placement,
// and as H in the share naming scheme H'(index, H(chunk)). It is used for
// content addressing, not collision-resistant signing.
#ifndef SRC_CRYPTO_SHA1_H_
#define SRC_CRYPTO_SHA1_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/util/bytes.h"

namespace cyrus {

// A 160-bit digest. Comparable and hashable so it can key maps.
struct Sha1Digest {
  std::array<uint8_t, 20> bytes{};

  std::string ToHex() const;

  // First 8 bytes interpreted big-endian; used to place digests on the
  // consistent-hash ring.
  uint64_t Prefix64() const;

  friend bool operator==(const Sha1Digest& a, const Sha1Digest& b) = default;
  friend auto operator<=>(const Sha1Digest& a, const Sha1Digest& b) = default;
};

struct Sha1DigestHash {
  size_t operator()(const Sha1Digest& d) const {
    return static_cast<size_t>(d.Prefix64());
  }
};

// Incremental SHA-1. Usage: Sha1 h; h.Update(a); h.Update(b); h.Finish().
class Sha1 {
 public:
  Sha1();

  void Update(ByteSpan data);
  void Update(std::string_view text) { Update(AsByteSpan(text)); }

  // Finalizes and returns the digest. The object must not be reused after.
  Sha1Digest Finish();

  // One-shot convenience.
  static Sha1Digest Hash(ByteSpan data);
  static Sha1Digest Hash(std::string_view text) { return Hash(AsByteSpan(text)); }

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 5> h_;
  std::array<uint8_t, 64> buffer_;
  size_t buffer_len_ = 0;
  uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

}  // namespace cyrus

#endif  // SRC_CRYPTO_SHA1_H_
