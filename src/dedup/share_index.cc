#include "src/dedup/share_index.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "src/meta/serialize.h"
#include "src/rs/secret_sharing.h"
#include "src/util/hex.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

constexpr uint32_t kMagic = 0x43594449;  // "CYDI"
// v2 added the pending_delete flag; v3 entries append per-share digests
// (readable either way: DecodeEntry treats the digest block as optional, so
// v2 snapshots and old journal lines parse with digests left unknown).
constexpr uint32_t kFormatVersion = 3;

// Same durability trick as put_journal: after rename(), the new directory
// entry must itself be fsynced or a crash can resurface the old journal.
void FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : (slash == 0 ? "/" : path.substr(0, slash));
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

// Journal payload for a P record: the entry without its digest (the digest
// rides in the record key field).
Bytes EncodeEntry(const ShareIndexEntry& entry) {
  BinaryWriter w;
  w.WriteU64(entry.logical_size);
  w.WriteU32(entry.t);
  w.WriteU32(entry.n);
  w.WriteU64(entry.refcount);
  w.WriteU32(entry.pending_delete ? 1 : 0);
  w.WriteU32(static_cast<uint32_t>(entry.shares.size()));
  for (const ChunkShare& share : entry.shares) {
    w.WriteU32(share.share_index);
    w.WriteI32(share.csp);
  }
  // Per-share digests ride as a trailing block keyed by share index, so old
  // readers (which stop at the shares) and old records (which lack the
  // block; DecodeEntry treats it as optional) both stay compatible.
  uint32_t with_digest = 0;
  for (const ChunkShare& share : entry.shares) {
    if (share.has_digest()) {
      ++with_digest;
    }
  }
  w.WriteU32(with_digest);
  for (const ChunkShare& share : entry.shares) {
    if (share.has_digest()) {
      w.WriteU32(share.share_index);
      w.WriteDigest(share.digest);
    }
  }
  return w.TakeData();
}

Result<ShareIndexEntry> DecodeEntry(BinaryReader& r) {
  ShareIndexEntry entry;
  CYRUS_ASSIGN_OR_RETURN(entry.logical_size, r.ReadU64());
  CYRUS_ASSIGN_OR_RETURN(entry.t, r.ReadU32());
  CYRUS_ASSIGN_OR_RETURN(entry.n, r.ReadU32());
  CYRUS_ASSIGN_OR_RETURN(entry.refcount, r.ReadU64());
  CYRUS_ASSIGN_OR_RETURN(uint32_t pending, r.ReadU32());
  entry.pending_delete = pending != 0;
  CYRUS_ASSIGN_OR_RETURN(uint32_t num_shares, r.ReadU32());
  entry.shares.reserve(num_shares);
  for (uint32_t s = 0; s < num_shares; ++s) {
    ChunkShare share;
    CYRUS_ASSIGN_OR_RETURN(share.share_index, r.ReadU32());
    CYRUS_ASSIGN_OR_RETURN(share.csp, r.ReadI32());
    entry.shares.push_back(share);
  }
  if (!r.AtEnd()) {
    // Optional trailing digest block (records written since per-share
    // authentication landed).
    CYRUS_ASSIGN_OR_RETURN(uint32_t with_digest, r.ReadU32());
    for (uint32_t s = 0; s < with_digest; ++s) {
      CYRUS_ASSIGN_OR_RETURN(uint32_t index, r.ReadU32());
      CYRUS_ASSIGN_OR_RETURN(Sha1Digest digest, r.ReadDigest());
      for (ChunkShare& share : entry.shares) {
        if (share.share_index == index) {
          share.digest = digest;
          break;
        }
      }
    }
  }
  return entry;
}

Result<Sha1Digest> DigestFromHex(std::string_view hex) {
  CYRUS_ASSIGN_OR_RETURN(Bytes raw, HexDecode(hex));
  if (raw.size() != 20) {
    return DataLossError("share index journal: bad digest length");
  }
  Sha1Digest d;
  std::copy(raw.begin(), raw.end(), d.bytes.begin());
  return d;
}

}  // namespace

uint64_t ShareIndexEntry::physical_bytes() const {
  if (t == 0) {
    return 0;
  }
  return static_cast<uint64_t>(shares.size()) * ShareSize(logical_size, t);
}

ShareIndex::ShareIndex(ShareIndexOptions options) : options_(std::move(options)) {
  if (options_.num_shards < 1) {
    options_.num_shards = 1;
  }
  shards_.reserve(options_.num_shards);
  for (uint32_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  metrics_ = options_.metrics != nullptr ? options_.metrics
                                         : &obs::MetricsRegistry::Default();
  hits_counter_ = metrics_->GetCounter("cyrus_dedup_hits_total", {},
                                       "Put chunks served by the share index");
  misses_counter_ = metrics_->GetCounter("cyrus_dedup_misses_total", {},
                                         "Put chunks absent from the share index");
  reclaimed_shares_counter_ =
      metrics_->GetCounter("cyrus_dedup_reclaimed_shares_total", {},
                           "Zero-ref share objects deleted from CSPs by scrub GC");
  reclaimed_bytes_counter_ =
      metrics_->GetCounter("cyrus_dedup_reclaimed_bytes_total", {},
                           "Physical share bytes reclaimed by scrub GC");
  over_release_counter_ = metrics_->GetCounter(
      "cyrus_dedup_over_releases_total", {},
      "Release calls on an entry already at zero references (clamped)");
  entries_gauge_ = metrics_->GetGauge("cyrus_dedup_index_entries", {},
                                      "Unique chunks tracked by the share index");
  logical_gauge_ = metrics_->GetGauge(
      "cyrus_dedup_logical_bytes", {},
      "Logical bytes referenced across all users (refcount-weighted)");
  unique_gauge_ = metrics_->GetGauge("cyrus_dedup_unique_bytes", {},
                                     "Unique plaintext bytes stored once");
  physical_gauge_ = metrics_->GetGauge("cyrus_dedup_physical_bytes", {},
                                       "Share bytes actually held at CSPs");
  ratio_gauge_ = metrics_->GetGauge("cyrus_dedup_ratio", {},
                                    "logical_bytes / unique_bytes");
}

ShareIndex::~ShareIndex() {
  if (journal_file_ != nullptr) {
    std::fclose(journal_file_);
  }
}

Result<std::unique_ptr<ShareIndex>> ShareIndex::Open(ShareIndexOptions options) {
  std::unique_ptr<ShareIndex> index(new ShareIndex(std::move(options)));
  if (!index->options_.journal_path.empty()) {
    std::lock_guard<std::mutex> lock(index->journal_mutex_);
    CYRUS_RETURN_IF_ERROR(index->LoadAndCompactLocked());
  }
  return index;
}

ShareIndex::Shard& ShareIndex::ShardFor(const Sha1Digest& chunk_id) const {
  return *shards_[chunk_id.Prefix64() % shards_.size()];
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

Status ShareIndex::LoadAndCompactLocked() {
  std::map<Sha1Digest, ShareIndexEntry> replay;
  if (std::FILE* in = std::fopen(options_.journal_path.c_str(), "r")) {
    std::string line;
    int c;
    while ((c = std::fgetc(in)) != EOF) {
      if (c == '\n') {
        if (!line.empty()) {
          Status parsed = ApplyLineLocked(line, replay);
          if (!parsed.ok()) {
            std::fclose(in);
            return parsed;
          }
        }
        line.clear();
      } else {
        line.push_back(static_cast<char>(c));
      }
    }
    std::fclose(in);
    // A torn final line (crash mid-append) is expected, not corruption.
    if (!line.empty()) {
      (void)ApplyLineLocked(line, replay).ok();
    }
  }
  // Install the replayed state and rebuild the aggregates.
  for (auto& [id, entry] : replay) {
    Shard& shard = ShardFor(id);
    Account(1, static_cast<int64_t>(entry.refcount * entry.logical_size),
            static_cast<int64_t>(entry.logical_size),
            static_cast<int64_t>(entry.physical_bytes()));
    shard.entries.emplace(id, std::move(entry));
  }
  std::map<Sha1Digest, ShareIndexEntry> live;
  for (const auto& shard : shards_) {
    for (const auto& [id, entry] : shard->entries) {
      live.emplace(id, entry);
    }
  }
  return RewriteLocked(live);
}

Status ShareIndex::ApplyLineLocked(const std::string& line,
                                   std::map<Sha1Digest, ShareIndexEntry>& replay) {
  const std::vector<std::string> fields = Split(line, ' ');
  if (fields.size() < 2) {
    return DataLossError(StrCat("share index journal: malformed record '", line, "'"));
  }
  const std::string& tag = fields[0];
  CYRUS_ASSIGN_OR_RETURN(Sha1Digest id, DigestFromHex(fields[1]));
  if (tag == "P") {
    if (fields.size() != 3) {
      return DataLossError("share index journal: malformed P record");
    }
    CYRUS_ASSIGN_OR_RETURN(Bytes payload, HexDecode(fields[2]));
    BinaryReader r(payload);
    CYRUS_ASSIGN_OR_RETURN(ShareIndexEntry entry, DecodeEntry(r));
    if (!r.AtEnd()) {
      return DataLossError("share index journal: trailing bytes in P record");
    }
    replay[id] = std::move(entry);
    return OkStatus();
  }
  if (tag == "R") {
    if (fields.size() != 3) {
      return DataLossError("share index journal: malformed R record");
    }
    auto it = replay.find(id);
    if (it == replay.end()) {
      return OkStatus();  // ref for an already-erased entry; stale but harmless
    }
    if (fields[2] == "+1") {
      ++it->second.refcount;
    } else if (fields[2] == "-1") {
      if (it->second.refcount > 0) {
        --it->second.refcount;
      }
    } else {
      return DataLossError("share index journal: bad R delta");
    }
    return OkStatus();
  }
  if (tag == "E") {
    replay.erase(id);
    return OkStatus();
  }
  return DataLossError(StrCat("share index journal: unknown tag '", tag, "'"));
}

Status ShareIndex::RewriteLocked(const std::map<Sha1Digest, ShareIndexEntry>& live) {
  if (journal_file_ != nullptr) {
    std::fclose(journal_file_);
    journal_file_ = nullptr;
  }
  const std::string tmp = options_.journal_path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "w");
  if (out == nullptr) {
    return UnavailableError(StrCat("share index journal: cannot write ", tmp));
  }
  for (const auto& [id, entry] : live) {
    std::fprintf(out, "P %s %s\n", id.ToHex().c_str(),
                 HexEncode(EncodeEntry(entry)).c_str());
  }
  std::fflush(out);
  fsync(fileno(out));
  std::fclose(out);
  if (std::rename(tmp.c_str(), options_.journal_path.c_str()) != 0) {
    return UnavailableError(StrCat("share index journal: cannot rename ", tmp));
  }
  FsyncParentDir(options_.journal_path);
  journal_file_ = std::fopen(options_.journal_path.c_str(), "a");
  if (journal_file_ == nullptr) {
    return UnavailableError(
        StrCat("share index journal: cannot append to ", options_.journal_path));
  }
  return OkStatus();
}

Status ShareIndex::AppendLineLocked(const std::string& line) {
  if (journal_file_ == nullptr) {
    return FailedPreconditionError("share index journal: not open");
  }
  if (std::fputs(line.c_str(), journal_file_) == EOF ||
      std::fputc('\n', journal_file_) == EOF) {
    return UnavailableError(
        StrCat("share index journal: write failed on ", options_.journal_path));
  }
  std::fflush(journal_file_);
  fsync(fileno(journal_file_));
  return OkStatus();
}

Status ShareIndex::JournalPublish(const Sha1Digest& chunk_id,
                                  const ShareIndexEntry& entry) {
  if (options_.journal_path.empty()) {
    return OkStatus();
  }
  std::lock_guard<std::mutex> lock(journal_mutex_);
  return AppendLineLocked(
      StrCat("P ", chunk_id.ToHex(), " ", HexEncode(EncodeEntry(entry))));
}

Status ShareIndex::JournalRef(const Sha1Digest& chunk_id, int64_t delta) {
  if (options_.journal_path.empty()) {
    return OkStatus();
  }
  std::lock_guard<std::mutex> lock(journal_mutex_);
  return AppendLineLocked(
      StrCat("R ", chunk_id.ToHex(), " ", delta > 0 ? "+1" : "-1"));
}

Status ShareIndex::JournalErase(const Sha1Digest& chunk_id) {
  if (options_.journal_path.empty()) {
    return OkStatus();
  }
  std::lock_guard<std::mutex> lock(journal_mutex_);
  return AppendLineLocked(StrCat("E ", chunk_id.ToHex()));
}

// ---------------------------------------------------------------------------
// Entry operations
// ---------------------------------------------------------------------------

void ShareIndex::Account(int64_t entries_delta, int64_t logical_delta,
                         int64_t unique_delta, int64_t physical_delta) {
  // uint64 atomics + two's-complement deltas: adds and subtracts both land
  // as one fetch_add.
  const uint64_t entries =
      total_entries_.fetch_add(static_cast<uint64_t>(entries_delta),
                               std::memory_order_relaxed) +
      static_cast<uint64_t>(entries_delta);
  const uint64_t logical =
      logical_bytes_.fetch_add(static_cast<uint64_t>(logical_delta),
                               std::memory_order_relaxed) +
      static_cast<uint64_t>(logical_delta);
  const uint64_t unique =
      unique_bytes_.fetch_add(static_cast<uint64_t>(unique_delta),
                              std::memory_order_relaxed) +
      static_cast<uint64_t>(unique_delta);
  const uint64_t physical =
      physical_bytes_.fetch_add(static_cast<uint64_t>(physical_delta),
                                std::memory_order_relaxed) +
      static_cast<uint64_t>(physical_delta);
  entries_gauge_->Set(static_cast<double>(entries));
  logical_gauge_->Set(static_cast<double>(logical));
  unique_gauge_->Set(static_cast<double>(unique));
  physical_gauge_->Set(static_cast<double>(physical));
  ratio_gauge_->Set(unique == 0 ? 1.0
                                : static_cast<double>(logical) /
                                      static_cast<double>(unique));
}

std::optional<ShareIndexEntry> ShareIndex::Lookup(const Sha1Digest& chunk_id) const {
  Shard& shard = ShardFor(chunk_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(chunk_id);
  if (it == shard.entries.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<ShareIndexEntry> ShareIndex::LookupAndRef(const Sha1Digest& chunk_id) {
  Shard& shard = ShardFor(chunk_id);
  std::optional<ShareIndexEntry> out;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(chunk_id);
    if (it != shard.entries.end() && !it->second.pending_delete) {
      ++it->second.refcount;
      // Journaled under the shard lock so no concurrent P snapshot of this
      // chunk can land in the log on the wrong side of this +1. A failed
      // append undoes the increment and misses into the upload path: a +1
      // the log never saw would make replay undercount, and an undercounted
      // entry is exactly what lets GC reclaim shares live metadata still
      // references.
      if (JournalRef(chunk_id, +1).ok()) {
        out = it->second;
      } else {
        --it->second.refcount;
      }
    }
  }
  if (!out.has_value()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    misses_counter_->Increment();
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  hits_counter_->Increment();
  Account(0, static_cast<int64_t>(out->logical_size), 0, 0);
  return out;
}

Status ShareIndex::Publish(const Sha1Digest& chunk_id, ShareIndexEntry entry) {
  if (entry.t == 0) {
    return InvalidArgumentError("share index entry must have t >= 1");
  }
  Shard& shard = ShardFor(chunk_id);
  int64_t logical_delta = 0;
  int64_t physical_delta = 0;
  int64_t unique_delta = 0;
  int64_t entries_delta = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(chunk_id);
    if (it == shard.entries.end()) {
      entries_delta = 1;
      unique_delta = static_cast<int64_t>(entry.logical_size);
      logical_delta = static_cast<int64_t>(entry.refcount * entry.logical_size);
      physical_delta = static_cast<int64_t>(entry.physical_bytes());
      it = shard.entries.emplace(chunk_id, std::move(entry)).first;
      const Status journaled = JournalPublish(chunk_id, it->second);
      if (!journaled.ok()) {
        shard.entries.erase(it);
        return journaled;
      }
    } else {
      ShareIndexEntry& mine = it->second;
      if (mine.logical_size != entry.logical_size || mine.t != entry.t) {
        return DataLossError(
            StrCat("chunk ", chunk_id.ToHex(),
                   " published with divergent parameters: convergent encoding "
                   "should make identical content identical shares"));
      }
      const uint64_t old_physical = mine.physical_bytes();
      const uint64_t old_refcount = mine.refcount;
      const size_t old_share_count = mine.shares.size();
      const bool old_pending = mine.pending_delete;
      mine.refcount += entry.refcount;
      // A live publish (a writer just uploaded the full convergent layout)
      // revives a GC tombstone; merging two tombstones keeps the flag.
      mine.pending_delete = mine.pending_delete && entry.pending_delete;
      for (const ChunkShare& share : entry.shares) {
        bool known = false;
        for (ChunkShare& existing : mine.shares) {
          if (existing.share_index == share.share_index &&
              existing.csp == share.csp) {
            known = true;
            // Convergent encoding makes racing publishers byte-identical,
            // so a digest learned by either is authoritative for both.
            if (!existing.has_digest() && share.has_digest()) {
              existing.digest = share.digest;
            }
            break;
          }
        }
        if (!known) {
          mine.shares.push_back(share);
        }
      }
      logical_delta = static_cast<int64_t>(entry.refcount * entry.logical_size);
      physical_delta = static_cast<int64_t>(mine.physical_bytes() - old_physical);
      const Status journaled = JournalPublish(chunk_id, mine);
      if (!journaled.ok()) {
        mine.refcount = old_refcount;
        mine.shares.resize(old_share_count);
        mine.pending_delete = old_pending;
        return journaled;
      }
    }
  }
  Account(entries_delta, logical_delta, unique_delta, physical_delta);
  return OkStatus();
}

Status ShareIndex::AddRef(const Sha1Digest& chunk_id) {
  Shard& shard = ShardFor(chunk_id);
  uint64_t logical = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(chunk_id);
    if (it == shard.entries.end() || it->second.pending_delete) {
      // Tombstones read as absent: their layout may be partially deleted,
      // so a would-be adopter must re-upload instead of taking a ref.
      return NotFoundError(StrCat("chunk ", chunk_id.ToHex(), " not indexed"));
    }
    ++it->second.refcount;
    const Status journaled = JournalRef(chunk_id, +1);
    if (!journaled.ok()) {
      --it->second.refcount;
      return journaled;
    }
    logical = it->second.logical_size;
  }
  Account(0, static_cast<int64_t>(logical), 0, 0);
  return OkStatus();
}

Status ShareIndex::Release(const Sha1Digest& chunk_id) {
  Shard& shard = ShardFor(chunk_id);
  uint64_t logical = 0;
  bool clamped = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(chunk_id);
    if (it == shard.entries.end()) {
      return NotFoundError(StrCat("chunk ", chunk_id.ToHex(), " not indexed"));
    }
    if (it->second.refcount == 0) {
      clamped = true;
    } else {
      --it->second.refcount;
      // An unjournaled -1 would only make replay overcount (shares linger
      // until a later pass), but undoing keeps memory and log identical so
      // callers can retry the release.
      const Status journaled = JournalRef(chunk_id, -1);
      if (!journaled.ok()) {
        ++it->second.refcount;
        return journaled;
      }
      logical = it->second.logical_size;
    }
  }
  if (clamped) {
    over_releases_.fetch_add(1, std::memory_order_relaxed);
    over_release_counter_->Increment();
    return FailedPreconditionError(
        StrCat("chunk ", chunk_id.ToHex(), " released below zero references"));
  }
  Account(0, -static_cast<int64_t>(logical), 0, 0);
  return OkStatus();
}

Status ShareIndex::ReplaceShares(const Sha1Digest& chunk_id,
                                 std::vector<ChunkShare> shares) {
  Shard& shard = ShardFor(chunk_id);
  int64_t physical_delta = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(chunk_id);
    if (it == shard.entries.end()) {
      return NotFoundError(StrCat("chunk ", chunk_id.ToHex(), " not indexed"));
    }
    const uint64_t old_physical = it->second.physical_bytes();
    std::vector<ChunkShare> previous = std::move(it->second.shares);
    it->second.shares = std::move(shares);
    physical_delta = static_cast<int64_t>(it->second.physical_bytes() - old_physical);
    const Status journaled = JournalPublish(chunk_id, it->second);
    if (!journaled.ok()) {
      it->second.shares = std::move(previous);
      return journaled;
    }
  }
  Account(0, 0, 0, physical_delta);
  return OkStatus();
}

Status ShareIndex::Erase(const Sha1Digest& chunk_id) {
  Shard& shard = ShardFor(chunk_id);
  int64_t unique_delta = 0;
  int64_t physical_delta = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(chunk_id);
    if (it == shard.entries.end()) {
      return NotFoundError(StrCat("chunk ", chunk_id.ToHex(), " not indexed"));
    }
    if (it->second.refcount > 0) {
      return FailedPreconditionError(
          StrCat("chunk ", chunk_id.ToHex(), " still has ", it->second.refcount,
                 " references"));
    }
    unique_delta = -static_cast<int64_t>(it->second.logical_size);
    physical_delta = -static_cast<int64_t>(it->second.physical_bytes());
    ShareIndexEntry removed = std::move(it->second);
    shard.entries.erase(it);
    const Status journaled = JournalErase(chunk_id);
    if (!journaled.ok()) {
      shard.entries.emplace(chunk_id, std::move(removed));
      return journaled;
    }
  }
  Account(-1, 0, unique_delta, physical_delta);
  return OkStatus();
}

std::vector<Sha1Digest> ShareIndex::ZeroRefChunks() const {
  std::vector<Sha1Digest> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [id, entry] : shard->entries) {
      if (entry.refcount == 0) {
        out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<Sha1Digest, ShareIndexEntry>> ShareIndex::Snapshot() const {
  std::vector<std::pair<Sha1Digest, ShareIndexEntry>> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [id, entry] : shard->entries) {
      out.emplace_back(id, entry);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void ShareIndex::NoteReclaimed(uint64_t shares, uint64_t bytes) {
  reclaimed_shares_.fetch_add(shares, std::memory_order_relaxed);
  reclaimed_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  reclaimed_shares_counter_->Increment(shares);
  reclaimed_bytes_counter_->Increment(bytes);
}

ShareIndexStats ShareIndex::Stats() const {
  ShareIndexStats stats;
  stats.entries = total_entries_.load(std::memory_order_relaxed);
  stats.logical_bytes = logical_bytes_.load(std::memory_order_relaxed);
  stats.unique_bytes = unique_bytes_.load(std::memory_order_relaxed);
  stats.physical_bytes = physical_bytes_.load(std::memory_order_relaxed);
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.reclaimed_shares = reclaimed_shares_.load(std::memory_order_relaxed);
  stats.reclaimed_bytes = reclaimed_bytes_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [id, entry] : shard->entries) {
      if (entry.refcount == 0) {
        ++stats.zero_ref_entries;
      }
    }
  }
  return stats;
}

size_t ShareIndex::size() const {
  return total_entries_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Snapshot serialization
// ---------------------------------------------------------------------------

Bytes ShareIndex::Serialize(const std::vector<std::string>& csp_directory) const {
  BinaryWriter w;
  w.WriteU32(kMagic);
  w.WriteU32(kFormatVersion);
  w.WriteU32(static_cast<uint32_t>(csp_directory.size()));
  for (const std::string& name : csp_directory) {
    w.WriteString(name);
  }
  std::map<Sha1Digest, ShareIndexEntry> all;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [id, entry] : shard->entries) {
      all.emplace(id, entry);
    }
  }
  w.WriteU32(static_cast<uint32_t>(all.size()));
  for (const auto& [id, entry] : all) {
    w.WriteDigest(id);
    w.WriteBytes(EncodeEntry(entry));
  }
  return w.TakeData();
}

Status ShareIndex::Load(ByteSpan data, const std::vector<std::string>& csp_directory) {
  BinaryReader r(data);
  CYRUS_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) {
    return DataLossError("share index magic mismatch");
  }
  CYRUS_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version < 2 || version > kFormatVersion) {
    return DataLossError(StrCat("unsupported share index version ", version));
  }
  CYRUS_ASSIGN_OR_RETURN(uint32_t num_names, r.ReadU32());
  std::vector<std::string> wire_directory;
  wire_directory.reserve(num_names);
  for (uint32_t i = 0; i < num_names; ++i) {
    CYRUS_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    wire_directory.push_back(std::move(name));
  }
  // Remap serialized csp indices (positions in wire_directory) to the
  // caller's local indices (positions in csp_directory); -1 for providers
  // this deployment no longer registers.
  std::vector<int32_t> remap(wire_directory.size(), -1);
  for (size_t i = 0; i < wire_directory.size(); ++i) {
    for (size_t j = 0; j < csp_directory.size(); ++j) {
      if (wire_directory[i] == csp_directory[j]) {
        remap[i] = static_cast<int32_t>(j);
        break;
      }
    }
  }
  CYRUS_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  std::map<Sha1Digest, ShareIndexEntry> loaded;
  for (uint32_t i = 0; i < count; ++i) {
    CYRUS_ASSIGN_OR_RETURN(Sha1Digest id, r.ReadDigest());
    CYRUS_ASSIGN_OR_RETURN(Bytes payload, r.ReadBytes());
    BinaryReader er(payload);
    CYRUS_ASSIGN_OR_RETURN(ShareIndexEntry entry, DecodeEntry(er));
    if (!er.AtEnd()) {
      return DataLossError("trailing bytes in share index entry");
    }
    for (ChunkShare& share : entry.shares) {
      if (share.csp >= 0 && static_cast<size_t>(share.csp) < remap.size()) {
        share.csp = remap[share.csp];
      } else {
        share.csp = -1;
      }
    }
    loaded.emplace(id, std::move(entry));
  }
  if (!r.AtEnd()) {
    return DataLossError("trailing bytes after share index");
  }
  // Replace contents wholesale; rebuild aggregates from scratch.
  Account(-static_cast<int64_t>(total_entries_.load(std::memory_order_relaxed)),
          -static_cast<int64_t>(logical_bytes_.load(std::memory_order_relaxed)),
          -static_cast<int64_t>(unique_bytes_.load(std::memory_order_relaxed)),
          -static_cast<int64_t>(physical_bytes_.load(std::memory_order_relaxed)));
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->entries.clear();
  }
  for (const auto& [id, entry] : loaded) {
    Shard& shard = ShardFor(id);
    Account(1, static_cast<int64_t>(entry.refcount * entry.logical_size),
            static_cast<int64_t>(entry.logical_size),
            static_cast<int64_t>(entry.physical_bytes()));
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.emplace(id, entry);  // keep `loaded` intact for the rewrite
  }
  if (!options_.journal_path.empty()) {
    std::lock_guard<std::mutex> lock(journal_mutex_);
    CYRUS_RETURN_IF_ERROR(RewriteLocked(loaded));
  }
  return OkStatus();
}

}  // namespace cyrus
