// Cross-user share-level dedup index (the new layer between the chunker
// and the connectors; see DESIGN.md "Cross-user convergent dedup").
//
// Under convergent dispersal (src/crypto/convergent.h) identical chunks
// produce byte-identical shares under identical content-addressed names,
// so a chunk uploaded once serves every later writer. The ShareIndex is
// the deployment-wide table making that a constant-time decision:
//
//   content hash -> { logical size, (t, n), share layout on the CSPs,
//                     refcount }
//
// The writing side consults it inside the pipelined Put: a hit takes a
// reference and skips encode+upload entirely; a miss encodes with the
// chunk's content key, uploads, and publishes the layout. Delete and
// overwrite drop references; the scrub engine's orphan-reclaim pass
// (src/repair) deletes the shares of zero-ref entries from the CSPs and
// erases them here.
//
// Sharding & threading: entries are sharded by digest prefix, one mutex
// per shard, so concurrent writers (a gateway's shard workers all point at
// one index) contend only within a shard. Aggregate byte/entry totals are
// atomics mirrored into cyrus_dedup_* gauges.
//
// Crash safety: refcounts are money (an orphaned decrement deletes live
// data; a lost increment leaks shares), so every mutation is write-ahead
// journaled with the same fsync-per-record, load-and-compact WAL pattern
// as src/core/put_journal. Records are appended while the mutated shard's
// mutex is still held (lock order: shard mutex, then journal mutex), so
// replay sees P snapshots and R deltas for a chunk in exactly the order
// memory applied them; a journal append that fails undoes the in-memory
// mutation and surfaces the error instead of letting durable state drift
// from the log. Opening an index replays the journal, compacts it to one
// P record per live entry, and continues appending. An empty journal path
// disables durability (tests and single-run benches).
//
// CSP identity: `ChunkShare.csp` values are *registry indices*, which are
// client-local. Every client sharing an index must register the same
// connectors in the same order (the gateway guarantees this for its shard
// workers); the serialized form carries a csp_directory of stable
// connector ids so a future cross-process consumer can remap, mirroring
// file metadata's convention.
#ifndef SRC_DEDUP_SHARE_INDEX_H_
#define SRC_DEDUP_SHARE_INDEX_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/crypto/sha1.h"
#include "src/meta/chunk_table.h"
#include "src/obs/metrics.h"
#include "src/util/bytes.h"
#include "src/util/result.h"

namespace cyrus {

struct ShareIndexEntry {
  uint64_t logical_size = 0;  // plaintext chunk bytes (quota accounting)
  uint32_t t = 0;
  uint32_t n = 0;             // target share count at publish time
  uint64_t refcount = 0;      // live (version, chunk) references, all users
  // GC tombstone: scrub failed to delete some of this entry's objects and
  // re-published the leftovers so a later pass retries. The layout may be
  // partially deleted, so lookups treat the entry as absent (a writer must
  // re-upload rather than adopt it); only ZeroRefChunks surfaces it.
  bool pending_delete = false;
  std::vector<ChunkShare> shares;  // where the shares actually live

  // Stored share bytes for this entry (RS shares are ceil(size/t) each).
  uint64_t physical_bytes() const;
};

struct ShareIndexStats {
  uint64_t entries = 0;
  uint64_t zero_ref_entries = 0;
  uint64_t logical_bytes = 0;    // sum(refcount * logical_size): what users store
  uint64_t unique_bytes = 0;     // sum(logical_size): what exists once
  uint64_t physical_bytes = 0;   // sum of stored share bytes
  uint64_t hits = 0;             // LookupAndRef found the chunk
  uint64_t misses = 0;           // LookupAndRef did not
  uint64_t reclaimed_shares = 0; // share objects GC'd off CSPs
  uint64_t reclaimed_bytes = 0;

  // Logical bytes stored per unique byte kept; 1.0 = no duplication.
  double dedup_ratio() const {
    return unique_bytes == 0 ? 1.0
                             : static_cast<double>(logical_bytes) /
                                   static_cast<double>(unique_bytes);
  }
  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

struct ShareIndexOptions {
  // WAL path; empty disables journaling (state lives only in memory).
  std::string journal_path;
  // Entry shards (each with its own mutex). Clamped to >= 1.
  uint32_t num_shards = 16;
  // cyrus_dedup_* sink; nullptr = process-wide default.
  obs::MetricsRegistry* metrics = nullptr;
};

class ShareIndex {
 public:
  static Result<std::unique_ptr<ShareIndex>> Open(ShareIndexOptions options);
  ~ShareIndex();

  ShareIndex(const ShareIndex&) = delete;
  ShareIndex& operator=(const ShareIndex&) = delete;

  // Read-only lookup (no ref, no hit/miss accounting).
  std::optional<ShareIndexEntry> Lookup(const Sha1Digest& chunk_id) const;

  // The Put fast path: if the chunk is indexed (and not a pending-delete
  // tombstone), atomically takes one reference and returns the entry
  // (post-increment); otherwise counts a miss and returns nullopt. The +1
  // is journaled before the hit is returned; if the journal append fails
  // the increment is undone and the chunk misses into the upload path, so
  // a replayed index can never undercount a reference some durable
  // metadata took.
  std::optional<ShareIndexEntry> LookupAndRef(const Sha1Digest& chunk_id);

  // Registers a freshly uploaded chunk with refcount = entry.refcount
  // (callers pass 1). Two clients can race the same miss: convergent
  // uploads are byte-identical idempotent overwrites, so a Publish that
  // finds the entry already present *merges* - refcounts add, share
  // layouts union - instead of failing. kDataLoss only on a (size, t)
  // parameter mismatch, which means non-convergent corruption. Journaled.
  Status Publish(const Sha1Digest& chunk_id, ShareIndexEntry entry);

  Status AddRef(const Sha1Digest& chunk_id);
  // Drops one reference; the entry stays at zero references until the
  // scrub engine reclaims its shares and calls Erase. Decrementing below
  // zero is clamped and reported (a double-release must never delete a
  // share some other user still references).
  Status Release(const Sha1Digest& chunk_id);

  // Replaces the recorded share layout (repair moved/rebuilt shares).
  Status ReplaceShares(const Sha1Digest& chunk_id, std::vector<ChunkShare> shares);

  // Removes a reclaimed entry. kFailedPrecondition while references
  // remain; kNotFound if absent. Journaled.
  Status Erase(const Sha1Digest& chunk_id);

  // Chunks eligible for GC (refcount == 0, tombstones included), in
  // digest order.
  std::vector<Sha1Digest> ZeroRefChunks() const;

  // Every entry, in digest order (tombstones included). Crash recovery
  // consults this before deleting journaled objects: a rolled-back Put
  // must never delete a content-addressed object the deployment-wide
  // index still references.
  std::vector<std::pair<Sha1Digest, ShareIndexEntry>> Snapshot() const;

  // GC bookkeeping for the cyrus_dedup_reclaimed_* counters.
  void NoteReclaimed(uint64_t shares, uint64_t bytes);

  ShareIndexStats Stats() const;
  size_t size() const;

  // CYSM snapshot of every entry (for replication / checkpointing).
  // `csp_directory[k]` supplies the stable name serialized for csp value
  // k; Load remaps through its own directory parameter symmetrically.
  Bytes Serialize(const std::vector<std::string>& csp_directory) const;
  Status Load(ByteSpan data, const std::vector<std::string>& csp_directory);

 private:
  explicit ShareIndex(ShareIndexOptions options);

  struct Shard {
    mutable std::mutex mutex;
    std::map<Sha1Digest, ShareIndexEntry> entries;
  };

  Shard& ShardFor(const Sha1Digest& chunk_id) const;

  // --- WAL (all require journal_mutex_) ---
  Status LoadAndCompactLocked();
  Status ApplyLineLocked(const std::string& line,
                         std::map<Sha1Digest, ShareIndexEntry>& replay);
  Status RewriteLocked(const std::map<Sha1Digest, ShareIndexEntry>& live);
  Status AppendLineLocked(const std::string& line);
  // Journals one record; no-op without a journal. Each takes journal_mutex_
  // itself and is called with the mutated shard's mutex held, so the log
  // order of P/R/E records for a chunk matches the in-memory history.
  Status JournalPublish(const Sha1Digest& chunk_id, const ShareIndexEntry& entry);
  Status JournalRef(const Sha1Digest& chunk_id, int64_t delta);
  Status JournalErase(const Sha1Digest& chunk_id);

  // Applies a delta to the aggregate totals and refreshes the gauges.
  void Account(int64_t entries_delta, int64_t logical_delta, int64_t unique_delta,
               int64_t physical_delta);

  ShareIndexOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex journal_mutex_;
  std::FILE* journal_file_ = nullptr;

  // Aggregates (atomics: read by Stats() while shard mutexes churn).
  std::atomic<uint64_t> total_entries_{0};
  std::atomic<uint64_t> logical_bytes_{0};
  std::atomic<uint64_t> unique_bytes_{0};
  std::atomic<uint64_t> physical_bytes_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> reclaimed_shares_{0};
  std::atomic<uint64_t> reclaimed_bytes_{0};
  std::atomic<uint64_t> over_releases_{0};

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* reclaimed_shares_counter_ = nullptr;
  obs::Counter* reclaimed_bytes_counter_ = nullptr;
  obs::Counter* over_release_counter_ = nullptr;
  obs::Gauge* entries_gauge_ = nullptr;
  obs::Gauge* logical_gauge_ = nullptr;
  obs::Gauge* unique_gauge_ = nullptr;
  obs::Gauge* physical_gauge_ = nullptr;
  obs::Gauge* ratio_gauge_ = nullptr;
};

}  // namespace cyrus

#endif  // SRC_DEDUP_SHARE_INDEX_H_
