#include "src/gateway/admission.h"

#include <algorithm>

#include "src/util/strings.h"

namespace cyrus {
namespace {

constexpr std::string_view kRejectPrefix = "gateway-reject/";

}  // namespace

std::string_view RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kUnknownTenant:
      return "unknown-tenant";
    case RejectReason::kRateLimited:
      return "rate-limited";
    case RejectReason::kByteQuota:
      return "byte-quota";
    case RejectReason::kStorageQuota:
      return "storage-quota";
    case RejectReason::kShardOverloaded:
      return "shard-overloaded";
    case RejectReason::kWindowFull:
      return "window-full";
    case RejectReason::kPrefetchShed:
      return "prefetch-shed";
  }
  return "unknown";
}

Status MakeRejectStatus(RejectReason reason, std::string_view detail) {
  std::string message =
      StrCat(kRejectPrefix, RejectReasonName(reason), ": ", detail);
  if (reason == RejectReason::kUnknownTenant) {
    return PermissionDeniedError(std::move(message));
  }
  return ResourceExhaustedError(std::move(message));
}

bool IsGatewayReject(const Status& status) {
  return RejectReasonOf(status).has_value();
}

std::optional<RejectReason> RejectReasonOf(const Status& status) {
  if (status.ok()) {
    return std::nullopt;
  }
  std::string_view message = status.message();
  if (message.substr(0, kRejectPrefix.size()) != kRejectPrefix) {
    return std::nullopt;
  }
  message.remove_prefix(kRejectPrefix.size());
  const size_t colon = message.find(':');
  const std::string_view name = message.substr(0, colon);
  for (RejectReason reason :
       {RejectReason::kUnknownTenant, RejectReason::kRateLimited,
        RejectReason::kByteQuota, RejectReason::kStorageQuota,
        RejectReason::kShardOverloaded, RejectReason::kWindowFull,
        RejectReason::kPrefetchShed}) {
    if (name == RejectReasonName(reason)) {
      return reason;
    }
  }
  return std::nullopt;
}

TokenBucket::TokenBucket(double rate, double capacity)
    : rate_(rate),
      capacity_(capacity > 0 ? capacity : rate),
      level_(capacity_) {}

void TokenBucket::Refill(double now) {
  if (now <= last_refill_) {
    return;  // virtual time never runs backwards; be safe anyway
  }
  level_ = std::min(capacity_, level_ + (now - last_refill_) * rate_);
  last_refill_ = now;
}

bool TokenBucket::TryTake(double now, double amount) {
  if (rate_ <= 0.0) {
    return true;  // unlimited
  }
  Refill(now);
  if (level_ + 1e-9 < amount) {
    return false;
  }
  level_ -= amount;
  return true;
}

double TokenBucket::AvailableAt(double now) {
  if (rate_ <= 0.0) {
    return capacity_;
  }
  Refill(now);
  return level_;
}

}  // namespace cyrus
