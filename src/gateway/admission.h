// Admission control for the multi-tenant gateway.
//
// Every tenant carries a quota contract (ops/s, upload bytes/s, stored
// bytes) enforced by token buckets refilled in *virtual* time, so the same
// policy runs identically under the simulator's EventQueue and a wall
// clock. A request that cannot be admitted fails fast with a *typed*
// reject: a ResourceExhaustedError whose message carries a machine-parsable
// "gateway-reject/<reason>" prefix. Callers (the REST frontend, benches,
// tests) recover the RejectReason with RejectReasonOf() instead of string
// matching ad hoc; anything the gateway did not reject itself (storage
// errors, decode failures) stays untyped and is never misread as shed load.
#ifndef SRC_GATEWAY_ADMISSION_H_
#define SRC_GATEWAY_ADMISSION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace cyrus {

// Why the gateway refused to execute a request.
enum class RejectReason : int {
  kUnknownTenant = 0,   // tenant never registered
  kRateLimited = 1,     // op token bucket empty
  kByteQuota = 2,       // upload byte bucket empty
  kStorageQuota = 3,    // stored-bytes ceiling reached
  kShardOverloaded = 4, // shard queue past its reject depth
  kWindowFull = 5,      // tenant's in-flight window exhausted (backpressure)
  kPrefetchShed = 6,    // readahead op shed under quota/window pressure
};

std::string_view RejectReasonName(RejectReason reason);

// A typed reject: ResourceExhausted (PermissionDenied for kUnknownTenant)
// with a "gateway-reject/<name>: <detail>" message.
Status MakeRejectStatus(RejectReason reason, std::string_view detail);

// True iff `status` was minted by MakeRejectStatus.
bool IsGatewayReject(const Status& status);

// The reason carried by a typed reject, or nullopt for ordinary errors.
std::optional<RejectReason> RejectReasonOf(const Status& status);

// Per-tenant quota contract. Zero means "unlimited" for every field.
struct TenantQuotas {
  double ops_per_sec = 0.0;           // sustained op rate
  double ops_burst = 0.0;             // op bucket capacity (defaults to rate)
  double upload_bytes_per_sec = 0.0;  // sustained ingest
  double bytes_burst = 0.0;           // byte bucket capacity (defaults to rate)
  uint64_t stored_bytes_limit = 0;    // namespace size ceiling
};

// Token bucket refilled linearly in virtual time. Not thread-safe; the
// gateway serializes access under its tenant lock.
class TokenBucket {
 public:
  // `rate` tokens/sec, `capacity` max accumulation. rate <= 0 disables the
  // bucket (TryTake always succeeds).
  TokenBucket(double rate, double capacity);

  // Takes `amount` tokens if available at time `now` (seconds). Refills
  // first; returns false (taking nothing) when short.
  bool TryTake(double now, double amount);

  // Tokens available at `now`, after refill.
  double AvailableAt(double now);

  double rate() const { return rate_; }
  double capacity() const { return capacity_; }

 private:
  void Refill(double now);

  double rate_;
  double capacity_;
  double level_;
  double last_refill_ = 0.0;
};

}  // namespace cyrus

#endif  // SRC_GATEWAY_ADMISSION_H_
