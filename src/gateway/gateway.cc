#include "src/gateway/gateway.h"

#include <algorithm>
#include <utility>

#include "src/util/strings.h"

namespace cyrus {
namespace {

double BucketCapacity(double burst, double rate) {
  return burst > 0 ? burst : rate;
}

}  // namespace

GatewayService::Tenant::Tenant(std::string tenant_name, const TenantQuotas& q,
                               uint32_t start_window)
    : name(std::move(tenant_name)),
      quotas(q),
      op_bucket(q.ops_per_sec, BucketCapacity(q.ops_burst, q.ops_per_sec)),
      byte_bucket(q.upload_bytes_per_sec,
                  BucketCapacity(q.bytes_burst, q.upload_bytes_per_sec)),
      window(start_window) {}

std::string GatewayService::QualifiedPath(std::string_view tenant,
                                          std::string_view path) {
  return StrCat("t/", tenant, "/", path);
}

Result<std::unique_ptr<GatewayService>> GatewayService::Create(
    GatewayOptions options,
    std::vector<std::unique_ptr<CyrusClient>> shard_clients) {
  if (shard_clients.empty()) {
    return InvalidArgumentError("gateway needs at least one shard client");
  }
  for (const auto& client : shard_clients) {
    if (client == nullptr) {
      return InvalidArgumentError("null shard client");
    }
  }
  if (options.max_tenant_window == 0) {
    return InvalidArgumentError("max_tenant_window must be >= 1");
  }
  options.min_tenant_window =
      std::min(std::max<uint32_t>(options.min_tenant_window, 1),
               options.max_tenant_window);
  return std::unique_ptr<GatewayService>(
      new GatewayService(std::move(options), std::move(shard_clients)));
}

GatewayService::GatewayService(
    GatewayOptions options, std::vector<std::unique_ptr<CyrusClient>> clients)
    : options_(std::move(options)),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : &obs::MetricsRegistry::Default()),
      shard_map_(options_.virtual_points) {
  for (auto& client : clients) {
    // Sequential AddShard in an empty, freshly constructed map cannot fail.
    const int id = shard_map_.AddShard().value();
    auto shard = std::make_unique<Shard>();
    shard->client = std::move(client);
    shard->depth_gauge = metrics_->GetGauge(
        "cyrus_gateway_shard_queue_depth", {{"shard", StrCat(id)}},
        "Modeled queue depth per metadata shard");
    shards_.emplace(id, std::move(shard));
  }
  for (RejectReason reason :
       {RejectReason::kUnknownTenant, RejectReason::kRateLimited,
        RejectReason::kByteQuota, RejectReason::kStorageQuota,
        RejectReason::kShardOverloaded, RejectReason::kWindowFull,
        RejectReason::kPrefetchShed}) {
    reject_counters_[static_cast<int>(reason)] = metrics_->GetCounter(
        "cyrus_gateway_admission_rejects_total",
        {{"reason", std::string(RejectReasonName(reason))}},
        "Requests refused by gateway admission control");
  }
  bytes_in_ = metrics_->GetCounter("cyrus_gateway_bytes_total",
                                   {{"direction", "in"}},
                                   "Tenant payload bytes through the gateway");
  bytes_out_ = metrics_->GetCounter("cyrus_gateway_bytes_total",
                                    {{"direction", "out"}},
                                    "Tenant payload bytes through the gateway");
  latency_put_ = metrics_->GetHistogram(
      "cyrus_gateway_request_latency_ms", {{"op", "put"}}, {},
      "Modeled gateway request latency (admission + shard queue)");
  latency_get_ = metrics_->GetHistogram("cyrus_gateway_request_latency_ms",
                                        {{"op", "get"}}, {}, "");
  latency_other_ = metrics_->GetHistogram("cyrus_gateway_request_latency_ms",
                                          {{"op", "other"}}, {}, "");
}

Status GatewayService::RegisterTenant(std::string_view tenant) {
  return RegisterTenant(tenant, options_.default_quotas);
}

Status GatewayService::RegisterTenant(std::string_view tenant,
                                      const TenantQuotas& quotas) {
  if (tenant.empty() || tenant.find('/') != std::string_view::npos) {
    return InvalidArgumentError(
        StrCat("tenant name must be non-empty and '/'-free: '", tenant, "'"));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (tenants_.count(std::string(tenant)) > 0) {
    return AlreadyExistsError(StrCat("tenant '", tenant, "' already registered"));
  }
  auto t = std::make_unique<Tenant>(std::string(tenant), quotas,
                                    options_.max_tenant_window);
  if (options_.per_tenant_metrics) {
    t->ops = metrics_->GetCounter("cyrus_gateway_tenant_ops_total",
                                  {{"tenant", t->name}},
                                  "Admitted operations per tenant");
    t->window_gauge = metrics_->GetGauge("cyrus_gateway_tenant_window",
                                         {{"tenant", t->name}},
                                         "Backpressure window per tenant");
    t->window_gauge->Set(t->window);
  }
  tenants_.emplace(t->name, std::move(t));
  return OkStatus();
}

void GatewayService::set_time(double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  now_s_ = std::max(now_s_, now_s);
  // Shard clients share the gateway clock (drives their retry/backoff and
  // metadata-sync throttling).
  for (auto& [id, shard] : shards_) {
    shard->client->set_time(now_s_);
  }
}

double GatewayService::now() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return now_s_;
}

Result<int> GatewayService::ShardFor(std::string_view tenant,
                                     std::string_view path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shard_map_.ShardFor(QualifiedPath(tenant, path));
}

double GatewayService::last_virtual_latency_s() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_latency_s_;
}

uint32_t GatewayService::TenantWindow(std::string_view tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second->window;
}

size_t GatewayService::ShardDepthLocked(Shard& shard) const {
  auto& done = shard.completions;
  done.erase(done.begin(), done.upper_bound(now_s_));
  return done.size();
}

void GatewayService::AdjustWindow(Tenant* tenant, int shard_id) {
  Shard& shard = *shards_.at(shard_id);
  const size_t depth = ShardDepthLocked(shard);
  double burn = 0.0;
  if (tenant->quotas.ops_per_sec > 0) {
    burn = 1.0 - tenant->op_bucket.AvailableAt(now_s_) /
                     tenant->op_bucket.capacity();
  }
  const bool pressured =
      depth >= options_.shard_depth_high || burn >= options_.quota_burn_high;
  if (pressured) {
    tenant->window = std::max(options_.min_tenant_window, tenant->window / 2);
    if (options_.shrink_client_window) {
      shard.client->set_pipeline_window(options_.client_window_when_shrunk);
    }
  } else if (depth <= options_.shard_depth_low &&
             tenant->window < options_.max_tenant_window) {
    ++tenant->window;  // additive recovery
    if (options_.shrink_client_window) {
      shard.client->set_pipeline_window(0);  // clear the override
    }
  }
  if (tenant->window_gauge != nullptr) {
    tenant->window_gauge->Set(tenant->window);
  }
}

GatewayService::Admission GatewayService::Admit(std::string_view tenant_name,
                                                std::string_view path,
                                                bool is_put, uint64_t bytes,
                                                bool prefetch) {
  Admission adm;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(tenant_name);
  if (it == tenants_.end()) {
    adm.status = MakeRejectStatus(RejectReason::kUnknownTenant,
                                  StrCat("tenant '", tenant_name, "'"));
    return adm;
  }
  Tenant* tenant = it->second.get();
  adm.tenant = tenant;
  if (prefetch) {
    // Prefetch is strictly lower-class traffic: shed it while there is
    // still headroom a foreground op could use, and shed it *before* it
    // takes any tokens - a refused prefetch must not burn the quota the
    // foreground reader is about to spend. All three probes below are
    // read-only (AvailableAt refills, never consumes; ShardFor skips the
    // residency update a real Route performs).
    if (tenant->in_flight * 2 >= tenant->window) {
      adm.status = MakeRejectStatus(
          RejectReason::kPrefetchShed,
          StrCat("window half-used: ", tenant->in_flight, " of ",
                 tenant->window, " in flight"));
      return adm;
    }
    if (tenant->quotas.ops_per_sec > 0) {
      const double burn = 1.0 - tenant->op_bucket.AvailableAt(now_s_) /
                                    tenant->op_bucket.capacity();
      if (burn >= options_.prefetch_shed_burn) {
        adm.status = MakeRejectStatus(
            RejectReason::kPrefetchShed,
            StrCat("op-bucket burn ", burn, " >= ",
                   options_.prefetch_shed_burn));
        return adm;
      }
    }
    const Result<int> peek =
        shard_map_.ShardFor(QualifiedPath(tenant_name, path));
    if (peek.ok()) {
      Shard& target = *shards_.at(peek.value());
      const size_t depth = ShardDepthLocked(target);
      if (depth >= options_.shard_depth_high) {
        adm.status = MakeRejectStatus(
            RejectReason::kPrefetchShed,
            StrCat("shard ", peek.value(), " depth ", depth, " >= ",
                   options_.shard_depth_high));
        return adm;
      }
    }
  }
  if (tenant->in_flight >= tenant->window) {
    adm.status = MakeRejectStatus(
        RejectReason::kWindowFull,
        StrCat("window ", tenant->window, " in-flight ", tenant->in_flight));
    return adm;
  }
  if (!tenant->op_bucket.TryTake(now_s_, 1.0)) {
    adm.status = MakeRejectStatus(
        RejectReason::kRateLimited,
        StrCat(tenant->quotas.ops_per_sec, " ops/s exceeded"));
    return adm;
  }
  if (is_put) {
    if (tenant->quotas.stored_bytes_limit > 0) {
      uint64_t replaced = 0;
      auto f = tenant->file_sizes.find(std::string(path));
      if (f != tenant->file_sizes.end()) {
        replaced = f->second;
      }
      if (tenant->stored_bytes - replaced + bytes >
          tenant->quotas.stored_bytes_limit) {
        adm.status = MakeRejectStatus(
            RejectReason::kStorageQuota,
            StrCat("stored ", tenant->stored_bytes, " + ", bytes, " > ",
                   tenant->quotas.stored_bytes_limit));
        return adm;
      }
    }
    if (!tenant->byte_bucket.TryTake(now_s_, static_cast<double>(bytes))) {
      adm.status = MakeRejectStatus(
          RejectReason::kByteQuota,
          StrCat(tenant->quotas.upload_bytes_per_sec, " B/s exceeded"));
      return adm;
    }
  }
  const Result<ShardRoute> route =
      shard_map_.Route(QualifiedPath(tenant_name, path));
  if (!route.ok()) {
    adm.status = route.status();
    return adm;
  }
  adm.shard = route.value().shard;
  Shard& shard = *shards_.at(adm.shard);
  const size_t depth = ShardDepthLocked(shard);
  if (depth >= options_.shard_queue_reject_depth) {
    adm.status =
        MakeRejectStatus(RejectReason::kShardOverloaded,
                         StrCat("shard ", adm.shard, " depth ", depth));
    return adm;
  }
  // Model the shard's service time: requests queue behind the busy horizon.
  const double service =
      options_.shard_op_overhead_s +
      (options_.shard_bytes_per_sec > 0
           ? static_cast<double>(bytes) / options_.shard_bytes_per_sec
           : 0.0);
  const double start = std::max(now_s_, shard.busy_until);
  shard.busy_until = start + service;
  shard.completions.insert(shard.busy_until);
  shard.depth_gauge->Set(static_cast<double>(shard.completions.size()));
  adm.virtual_latency_s = shard.busy_until - now_s_;
  last_latency_s_ = adm.virtual_latency_s;
  ++tenant->in_flight;
  if (tenant->ops != nullptr) {
    tenant->ops->Increment();
  }
  AdjustWindow(tenant, adm.shard);
  adm.status = OkStatus();
  return adm;
}

void GatewayService::Complete(Tenant* tenant, int shard_id, bool ok) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tenant->in_flight > 0) {
    --tenant->in_flight;
  }
  ++ops_total_;
  if (ok) {
    ++ops_ok_;
  } else {
    ++ops_failed_;
  }
  AdjustWindow(tenant, shard_id);
}

void GatewayService::RecordReject(std::string_view tenant,
                                  const Status& status, std::string_view op) {
  const std::optional<RejectReason> reason = RejectReasonOf(status);
  std::string name = "internal";
  if (reason.has_value()) {
    reject_counters_[static_cast<int>(*reason)]->Increment();
    name = std::string(RejectReasonName(*reason));
    if (options_.per_tenant_metrics) {
      metrics_
          ->GetCounter("cyrus_gateway_tenant_rejects_total",
                       {{"tenant", std::string(tenant)}, {"reason", name}},
                       "Typed rejects per tenant")
          ->Increment();
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++ops_total_;
  ++rejects_total_;
  ++rejects_by_reason_[name];
  metrics_
      ->GetCounter("cyrus_gateway_ops_total",
                   {{"op", std::string(op)}, {"result", "rejected"}},
                   "Gateway operations by op and outcome")
      ->Increment();
}

void GatewayService::RecordResult(std::string_view op, bool ok,
                                  double latency_s) {
  metrics_
      ->GetCounter("cyrus_gateway_ops_total",
                   {{"op", std::string(op)}, {"result", ok ? "ok" : "error"}},
                   "Gateway operations by op and outcome")
      ->Increment();
  obs::Histogram* histogram = op == "put" ? latency_put_
                              : (op == "get" || op == "get_range")
                                  ? latency_get_
                                  : latency_other_;
  histogram->Observe(latency_s * 1000.0);
}

Result<PutResult> GatewayService::Put(std::string_view tenant,
                                      std::string_view path,
                                      ByteSpan content) {
  obs::TraceBuilder trace(options_.traces, "gateway.put",
                          QualifiedPath(tenant, path));
  Admission adm;
  {
    obs::ScopedSpan span = trace.Span("admit+route");
    adm = Admit(tenant, path, /*is_put=*/true, content.size());
  }
  if (!adm.status.ok()) {
    RecordReject(tenant, adm.status, "put");
    return adm.status;
  }
  Result<PutResult> result = [&] {
    obs::ScopedSpan span = trace.Span("execute");
    span.AddBytes(content.size());
    Shard& shard = *shards_.at(adm.shard);
    std::lock_guard<std::mutex> lock(shard.exec_mutex);
    return shard.client->Put(QualifiedPath(tenant, path), content);
  }();
  if (result.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    Tenant* tenant_state = adm.tenant;
    uint64_t& recorded = tenant_state->file_sizes[std::string(path)];
    tenant_state->stored_bytes += content.size() - recorded;
    recorded = content.size();
    bytes_in_->Increment(content.size());
  }
  Complete(adm.tenant, adm.shard, result.ok());
  RecordResult("put", result.ok(), adm.virtual_latency_s);
  return result;
}

Result<GetResult> GatewayService::Get(std::string_view tenant,
                                      std::string_view path) {
  obs::TraceBuilder trace(options_.traces, "gateway.get",
                          QualifiedPath(tenant, path));
  Admission adm;
  {
    obs::ScopedSpan span = trace.Span("admit+route");
    adm = Admit(tenant, path, /*is_put=*/false, 0);
  }
  if (!adm.status.ok()) {
    RecordReject(tenant, adm.status, "get");
    return adm.status;
  }
  Result<GetResult> result = [&] {
    obs::ScopedSpan span = trace.Span("execute");
    Shard& shard = *shards_.at(adm.shard);
    std::lock_guard<std::mutex> lock(shard.exec_mutex);
    return shard.client->Get(QualifiedPath(tenant, path));
  }();
  if (result.ok()) {
    bytes_out_->Increment(result.value().content.size());
  }
  Complete(adm.tenant, adm.shard, result.ok());
  RecordResult("get", result.ok(), adm.virtual_latency_s);
  return result;
}

Result<GetResult> GatewayService::GetRange(std::string_view tenant,
                                           std::string_view path,
                                           uint64_t offset, uint64_t len,
                                           bool prefetch) {
  obs::TraceBuilder trace(options_.traces, "gateway.get_range",
                          QualifiedPath(tenant, path));
  Admission adm;
  {
    obs::ScopedSpan span = trace.Span("admit+route");
    adm = Admit(tenant, path, /*is_put=*/false, 0, prefetch);
  }
  if (!adm.status.ok()) {
    RecordReject(tenant, adm.status, "get_range");
    return adm.status;
  }
  Result<GetResult> result = [&] {
    obs::ScopedSpan span = trace.Span("execute");
    Shard& shard = *shards_.at(adm.shard);
    std::lock_guard<std::mutex> lock(shard.exec_mutex);
    return shard.client->GetRange(QualifiedPath(tenant, path), offset, len);
  }();
  if (result.ok()) {
    bytes_out_->Increment(result.value().content.size());
  }
  Complete(adm.tenant, adm.shard, result.ok());
  RecordResult("get_range", result.ok(), adm.virtual_latency_s);
  return result;
}

Status GatewayService::Delete(std::string_view tenant, std::string_view path) {
  obs::TraceBuilder trace(options_.traces, "gateway.delete",
                          QualifiedPath(tenant, path));
  Admission adm;
  {
    obs::ScopedSpan span = trace.Span("admit+route");
    adm = Admit(tenant, path, /*is_put=*/false, 0);
  }
  if (!adm.status.ok()) {
    RecordReject(tenant, adm.status, "delete");
    return adm.status;
  }
  Status result = [&] {
    obs::ScopedSpan span = trace.Span("execute");
    Shard& shard = *shards_.at(adm.shard);
    std::lock_guard<std::mutex> lock(shard.exec_mutex);
    return shard.client->Delete(QualifiedPath(tenant, path));
  }();
  if (result.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    Tenant* tenant_state = adm.tenant;
    auto it = tenant_state->file_sizes.find(std::string(path));
    if (it != tenant_state->file_sizes.end()) {
      tenant_state->stored_bytes -= it->second;
      tenant_state->file_sizes.erase(it);
    }
  }
  Complete(adm.tenant, adm.shard, result.ok());
  RecordResult("delete", result.ok(), adm.virtual_latency_s);
  return result;
}

Result<std::vector<FileListing>> GatewayService::List(std::string_view tenant,
                                                      std::string_view prefix) {
  obs::TraceBuilder trace(options_.traces, "gateway.list",
                          QualifiedPath(tenant, prefix));
  Admission adm;
  {
    obs::ScopedSpan span = trace.Span("admit+route");
    adm = Admit(tenant, prefix, /*is_put=*/false, 0);
  }
  if (!adm.status.ok()) {
    RecordReject(tenant, adm.status, "list");
    return adm.status;
  }
  const std::string qualified_prefix = QualifiedPath(tenant, prefix);
  // A listing spans paths on every shard: fan out and merge. Each shard
  // holds only the files routed to it, so the union is exact.
  std::vector<FileListing> merged;
  Status failure = OkStatus();
  {
    obs::ScopedSpan span = trace.Span("execute");
    for (auto& [id, shard] : shards_) {
      std::lock_guard<std::mutex> lock(shard->exec_mutex);
      Result<std::vector<FileListing>> part =
          shard->client->List(qualified_prefix);
      if (!part.ok()) {
        failure = part.status();
        break;
      }
      for (FileListing& listing : part.value()) {
        merged.push_back(std::move(listing));
      }
    }
  }
  const bool ok = failure.ok();
  Complete(adm.tenant, adm.shard, ok);
  RecordResult("list", ok, adm.virtual_latency_s);
  if (!ok) {
    return failure;
  }
  // Strip the namespace qualifier so tenants see their own paths.
  const std::string ns = StrCat("t/", tenant, "/");
  for (FileListing& listing : merged) {
    if (listing.name.size() >= ns.size() &&
        listing.name.compare(0, ns.size(), ns) == 0) {
      listing.name = listing.name.substr(ns.size());
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const FileListing& a, const FileListing& b) {
              return a.name < b.name;
            });
  return merged;
}

GatewayStats GatewayService::Stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  GatewayStats stats;
  stats.ops_total = ops_total_;
  stats.ops_ok = ops_ok_;
  stats.ops_failed = ops_failed_;
  stats.rejects_total = rejects_total_;
  stats.rejects_by_reason = rejects_by_reason_;
  for (const auto& [id, shard] : shards_) {
    auto& done = shard->completions;
    done.erase(done.begin(), done.upper_bound(now_s_));
    stats.shard_queue_depth[id] = done.size();
  }
  for (const auto& [name, tenant] : tenants_) {
    stats.tenant_window[name] = tenant->window;
    stats.tenant_stored_bytes[name] = tenant->stored_bytes;
  }
  stats.num_tenants = tenants_.size();
  stats.num_shards = shards_.size();
  // All shard workers point at the same deployment-wide index (that is the
  // whole point of cross-user dedup), so the first shard's view is the
  // gateway's view.
  if (!shards_.empty()) {
    const ShareIndex* index = shards_.begin()->second->client->config().share_index;
    if (index != nullptr) {
      const ShareIndexStats dedup = index->Stats();
      stats.dedup_enabled = true;
      stats.dedup_logical_bytes = dedup.logical_bytes;
      stats.dedup_unique_bytes = dedup.unique_bytes;
      stats.dedup_physical_bytes = dedup.physical_bytes;
      stats.dedup_ratio = dedup.dedup_ratio();
      stats.dedup_hit_rate = dedup.hit_rate();
    }
  }
  // Integrity failures accumulate per shard client (each runs its own
  // availability monitor); fold them into one per-CSP ledger keyed by
  // connector id so the operator view survives shard-local index spaces.
  for (const auto& [id, shard] : shards_) {
    CyrusClient* client = shard->client.get();
    for (const auto& [csp, count] :
         client->availability_monitor().IntegrityFailureCounts()) {
      auto name = client->registry().name(csp);
      const std::string key = name.ok() ? *name : StrCat("csp-", csp);
      stats.integrity_failures_by_csp[key] += count;
      stats.integrity_failures_total += count;
    }
  }
  return stats;
}

}  // namespace cyrus
