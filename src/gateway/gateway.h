// Multi-tenant gateway fronting a pool of sharded CYRUS clients.
//
// The paper's client library assumes one user per process; a deployment
// that terminates many tenants in a shared service needs an extra tier.
// GatewayService supplies it:
//
//   - sharding: metadata (chunk tables + version trees) is split across N
//     shard workers, each backed by its own pipelined CyrusClient; a
//     request routes by consistent hashing over the tenant-qualified file
//     path (ShardMap), so tenants spread across every shard and one hot
//     tenant cannot pin a single metadata store;
//   - tenancy: each tenant gets a private namespace ("t/<tenant>/<path>")
//     and a quota contract (ops/s, upload bytes/s, stored bytes) enforced
//     by virtual-time token buckets (admission.h). Rejections are *typed*
//     (RejectReason) and fail fast, before any shard work;
//   - backpressure: every tenant owns an in-flight window. When a shard's
//     queue depth or the tenant's quota burn crosses the high-water mark,
//     the window halves (and, optionally, the shard client's pipeline
//     window shrinks with it); calm periods recover it one slot at a time
//     - AIMD, the same discipline TCP uses, so overload sheds load
//     smoothly instead of collapsing;
//   - shard queue model: shards track a virtual busy-until horizon fed by
//     per-op overhead and byte service rates, giving deterministic queue
//     depths and latencies under src/sim virtual time (the 10k-client soak
//     runs open-loop on an EventQueue with no real threads).
//
// Instrumented with cyrus_gateway_* metrics and per-request trace spans
// (admit -> route -> execute). Thread-safe; shard executions on different
// shards proceed in parallel.
#ifndef SRC_GATEWAY_GATEWAY_H_
#define SRC_GATEWAY_GATEWAY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/core/client.h"
#include "src/gateway/admission.h"
#include "src/gateway/shard_map.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/result.h"

namespace cyrus {

struct GatewayOptions {
  // Ring points per shard in the shard map.
  uint32_t virtual_points = 64;

  // Quotas assumed by RegisterTenant when the caller passes none.
  TenantQuotas default_quotas;

  // Backpressure window bounds (concurrent in-flight ops per tenant).
  uint32_t max_tenant_window = 64;
  uint32_t min_tenant_window = 2;

  // Shard queue depth that triggers window shrink / allows regrowth.
  size_t shard_depth_high = 32;
  size_t shard_depth_low = 8;
  // Fraction of the tenant's op bucket consumed (1 - available/capacity)
  // past which the window also shrinks.
  double quota_burn_high = 0.9;
  // Burn fraction past which *prefetch-tagged* ops are shed (typed
  // kPrefetchShed) before consuming any tokens - deliberately far below
  // quota_burn_high, so readahead yields to foreground load first.
  double prefetch_shed_burn = 0.5;
  // Queue depth past which requests are refused outright (typed
  // kShardOverloaded) instead of queued.
  size_t shard_queue_reject_depth = 256;

  // Virtual service model per shard: each op costs
  // `shard_op_overhead_s + bytes / shard_bytes_per_sec` of shard time.
  double shard_op_overhead_s = 0.002;
  double shard_bytes_per_sec = 64.0 * 1024 * 1024;

  // Shrink the shard client's chunk pipeline window together with the
  // tenant window (plumbs into CyrusClient::set_pipeline_window).
  bool shrink_client_window = false;
  uint32_t client_window_when_shrunk = 2;

  // Per-tenant labeled metrics (ops, rejects, window). Off for huge tenant
  // counts - the soak keeps cardinality at the per-reason aggregates.
  bool per_tenant_metrics = true;

  obs::MetricsRegistry* metrics = nullptr;  // nullptr -> Default()
  obs::TraceCollector* traces = nullptr;    // nullptr -> tracing off
};

// Point-in-time gateway counters (cheap aggregate view; the full labeled
// series live in the metrics registry).
struct GatewayStats {
  uint64_t ops_total = 0;
  uint64_t ops_ok = 0;
  uint64_t ops_failed = 0;   // storage-layer errors (not rejects)
  uint64_t rejects_total = 0;
  std::map<std::string, uint64_t> rejects_by_reason;
  std::map<int, size_t> shard_queue_depth;
  std::map<std::string, uint32_t> tenant_window;
  std::map<std::string, uint64_t> tenant_stored_bytes;
  size_t num_tenants = 0;
  size_t num_shards = 0;
  // Cross-user dedup economics (zeros when the shard clients run without a
  // ShareIndex). Tenants are billed `tenant_stored_bytes` - *logical*
  // bytes - while the deployment pays `dedup_physical_bytes`; the gap is
  // the operator's dedup margin.
  bool dedup_enabled = false;
  uint64_t dedup_logical_bytes = 0;
  uint64_t dedup_unique_bytes = 0;
  uint64_t dedup_physical_bytes = 0;
  double dedup_ratio = 1.0;
  double dedup_hit_rate = 0.0;
  // Share-digest mismatches observed by the shard clients, keyed by the
  // offending CSP's connector id - the "who is feeding us corrupt bytes"
  // view an operator checks before quarantining a provider.
  uint64_t integrity_failures_total = 0;
  std::map<std::string, uint64_t> integrity_failures_by_csp;
};

class GatewayService {
 public:
  // One shard worker per client; shard i is backed by shard_clients[i].
  // Requires at least one client.
  static Result<std::unique_ptr<GatewayService>> Create(
      GatewayOptions options,
      std::vector<std::unique_ptr<CyrusClient>> shard_clients);

  // Registers `tenant` with explicit quotas (or the default contract).
  // Tenant names must be non-empty and '/'-free (they become a namespace
  // path segment).
  Status RegisterTenant(std::string_view tenant, const TenantQuotas& quotas);
  Status RegisterTenant(std::string_view tenant);

  // Tenant-scoped file operations. Every call runs the full admit ->
  // route -> execute path and can fail with a typed reject (admission.h).
  Result<PutResult> Put(std::string_view tenant, std::string_view path,
                        ByteSpan content);
  Result<GetResult> Get(std::string_view tenant, std::string_view path);
  // Range read: bytes [offset, offset+len) of the tenant file, clamped to
  // the file end (the REST layer turns it into a 206). `prefetch` tags the
  // op as speculative readahead: admission sheds it first - typed
  // kPrefetchShed, *before* it consumes any quota tokens - when the
  // tenant's window is half used, its op-bucket burn passes
  // prefetch_shed_burn, or the target shard is past shard_depth_high.
  Result<GetResult> GetRange(std::string_view tenant, std::string_view path,
                             uint64_t offset, uint64_t len,
                             bool prefetch = false);
  Status Delete(std::string_view tenant, std::string_view path);
  Result<std::vector<FileListing>> List(std::string_view tenant,
                                        std::string_view prefix);

  // Virtual clock (seconds) driving token buckets and the shard queue
  // model. Benches advance it from the EventQueue; defaults to 0 and
  // never moves on its own.
  void set_time(double now_s);
  double now() const;

  // Shard that `tenant`/`path` routes to (no admission, no residency
  // update).
  Result<int> ShardFor(std::string_view tenant, std::string_view path) const;

  // Current backpressure window for `tenant` (0 if unknown).
  uint32_t TenantWindow(std::string_view tenant) const;

  // Modeled latency of the most recently admitted request (seconds).
  // Benches driving the gateway from a single virtual-time loop sample
  // this after each call; under concurrency prefer the latency histogram.
  double last_virtual_latency_s() const;

  GatewayStats Stats() const;

  size_t num_shards() const { return shards_.size(); }

  // The namespace-qualified name a tenant file is stored under.
  static std::string QualifiedPath(std::string_view tenant,
                                   std::string_view path);

 private:
  struct Tenant {
    std::string name;
    TenantQuotas quotas;
    TokenBucket op_bucket;
    TokenBucket byte_bucket;
    uint32_t window;
    uint32_t in_flight = 0;
    uint64_t stored_bytes = 0;
    std::map<std::string, uint64_t> file_sizes;  // storage accounting
    obs::Counter* ops = nullptr;      // per-tenant metrics (optional)
    obs::Gauge* window_gauge = nullptr;

    Tenant(std::string name, const TenantQuotas& q, uint32_t window);
  };

  struct Shard {
    std::unique_ptr<CyrusClient> client;
    std::mutex exec_mutex;            // serializes client calls per shard
    double busy_until = 0.0;          // virtual service horizon
    std::multiset<double> completions;  // in-model finish times (depth)
    obs::Gauge* depth_gauge = nullptr;
  };

  // Admission verdict + routing decision, computed under the state lock.
  struct Admission {
    Status status;        // ok or typed reject
    Tenant* tenant = nullptr;
    int shard = -1;
    double virtual_latency_s = 0.0;
  };

  GatewayService(GatewayOptions options,
                 std::vector<std::unique_ptr<CyrusClient>> shard_clients);

  // is_put: charges the byte bucket and storage ceiling for `bytes`.
  // prefetch: run the shed checks first; a shed consumes nothing.
  // Takes mutex_ internally.
  Admission Admit(std::string_view tenant, std::string_view path,
                  bool is_put, uint64_t bytes, bool prefetch = false);
  void Complete(Tenant* tenant, int shard, bool ok);
  void AdjustWindow(Tenant* tenant, int shard);
  size_t ShardDepthLocked(Shard& shard) const;
  void RecordReject(std::string_view tenant, const Status& status,
                    std::string_view op);
  void RecordResult(std::string_view op, bool ok, double latency_s);

  GatewayOptions options_;
  obs::MetricsRegistry* metrics_;

  mutable std::mutex mutex_;  // tenants, shard map, queue model
  ShardMap shard_map_;
  std::map<int, std::unique_ptr<Shard>> shards_;
  std::map<std::string, std::unique_ptr<Tenant>, std::less<>> tenants_;
  double now_s_ = 0.0;
  double last_latency_s_ = 0.0;

  // Aggregate counters mirrored into GatewayStats.
  uint64_t ops_total_ = 0;
  uint64_t ops_ok_ = 0;
  uint64_t ops_failed_ = 0;
  uint64_t rejects_total_ = 0;
  std::map<std::string, uint64_t> rejects_by_reason_;

  // Cached instruments (reject counters indexed by RejectReason).
  obs::Counter* reject_counters_[7] = {};
  obs::Counter* bytes_in_ = nullptr;
  obs::Counter* bytes_out_ = nullptr;
  obs::Histogram* latency_put_ = nullptr;
  obs::Histogram* latency_get_ = nullptr;
  obs::Histogram* latency_other_ = nullptr;
};

}  // namespace cyrus

#endif  // SRC_GATEWAY_GATEWAY_H_
