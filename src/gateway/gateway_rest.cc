#include "src/gateway/gateway_rest.h"

#include <optional>
#include <string>
#include <utility>

#include "src/obs/export.h"
#include "src/rest/json.h"
#include "src/rest/rest_server.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

constexpr std::string_view kGatewayPrefix = "/gateway/";

HttpResponse JsonOk(const JsonValue& body) {
  return HttpResponse::Ok(ToBytes(body.Dump()), "application/json");
}

HttpResponse GatewayErrorResponse(const Status& status) {
  JsonValue body;
  const std::optional<RejectReason> reason = RejectReasonOf(status);
  body.Set("error", reason.has_value()
                        ? std::string(RejectReasonName(*reason))
                        : std::string(StatusCodeName(status.code())));
  body.Set("message", std::string(status.message()));
  HttpResponse response = JsonOk(body);
  response.status = HttpStatusForGatewayError(status);
  return response;
}

// Parses "bytes=<first>-[<last>]" into an inclusive byte range (*last is
// UINT64_MAX for the open-ended form). Returns false for anything else -
// multi-ranges, the suffix form "bytes=-N", garbage - which the download
// handler treats as "serve the whole file": RFC 7233 allows a server to
// ignore Range headers it does not support.
bool ParseByteRange(std::string_view header, uint64_t* first, uint64_t* last) {
  constexpr std::string_view kBytes = "bytes=";
  if (header.compare(0, kBytes.size(), kBytes) != 0) {
    return false;
  }
  header.remove_prefix(kBytes.size());
  const size_t dash = header.find('-');
  if (dash == std::string_view::npos || dash == 0 ||
      header.find(',') != std::string_view::npos) {
    return false;
  }
  auto parse_u64 = [](std::string_view digits, uint64_t* out) {
    if (digits.empty()) {
      return false;
    }
    uint64_t value = 0;
    for (char c : digits) {
      if (c < '0' || c > '9' || value > (UINT64_MAX - 9) / 10) {
        return false;
      }
      value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    *out = value;
    return true;
  };
  if (!parse_u64(header.substr(0, dash), first)) {
    return false;
  }
  const std::string_view tail = header.substr(dash + 1);
  if (tail.empty()) {
    *last = UINT64_MAX;
    return true;
  }
  return parse_u64(tail, last) && *last >= *first;
}

// True when the request tags itself as speculative readahead (shed first
// under pressure): "x-cyrus-prefetch: 1|true" or "?prefetch=1|true".
bool IsPrefetchRequest(const HttpRequest& request) {
  for (std::string_view tag :
       {request.Header("x-cyrus-prefetch"), request.Query("prefetch")}) {
    if (tag == "1" || tag == "true") {
      return true;
    }
  }
  return false;
}

}  // namespace

int HttpStatusForGatewayError(const Status& status) {
  if (status.ok()) {
    return 200;
  }
  const std::optional<RejectReason> reason = RejectReasonOf(status);
  if (reason.has_value()) {
    switch (*reason) {
      case RejectReason::kUnknownTenant:
        return 403;
      case RejectReason::kStorageQuota:
        return 507;  // Insufficient Storage
      case RejectReason::kRateLimited:
      case RejectReason::kByteQuota:
      case RejectReason::kShardOverloaded:
      case RejectReason::kWindowFull:
      case RejectReason::kPrefetchShed:
        return 429;  // Too Many Requests
    }
  }
  switch (status.code()) {
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kPermissionDenied:
      return 403;
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kDataLoss:
    case StatusCode::kIntegrity:
      // The backing store returned bytes we could not authenticate (or not
      // enough of them to decode): a bad gateway upstream, not a server
      // bug. The typed reason ("integrity" / "data loss") rides in the
      // error body so callers can tell rot from outage.
      return 502;
    default:
      return 500;
  }
}

GatewayRestFrontend::GatewayRestFrontend(GatewayService* gateway,
                                         const obs::MetricsRegistry* metrics)
    : gateway_(gateway), metrics_(metrics) {}

HttpResponse GatewayRestFrontend::Handle(const HttpRequest& request) {
  // The scrape endpoint answers even while the frontend is "down": an
  // operator diagnosing the outage needs the metrics most right then.
  if (request.path == "/metrics") {
    return ServeMetricsEndpoint(metrics_, request);
  }
  if (!available_.load()) {
    return HttpResponse::Error(503, "gateway unavailable");
  }
  if (request.path == "/gateway/stats") {
    if (request.method != HttpMethod::kGet) {
      return HttpResponse::Error(405, "stats is GET-only");
    }
    return HandleStats();
  }
  if (request.path == "/gateway/metrics") {
    if (request.method != HttpMethod::kGet) {
      return HttpResponse::Error(405, "metrics is GET-only");
    }
    const obs::MetricsRegistry* registry =
        metrics_ != nullptr ? metrics_ : &obs::MetricsRegistry::Default();
    return HttpResponse::Ok(
        ToBytes(obs::RenderMetricsJson(registry->Snapshot("cyrus_gateway_"))),
        "application/json");
  }
  // /gateway/<tenant>/files/<action>
  if (request.path.size() > kGatewayPrefix.size() &&
      request.path.compare(0, kGatewayPrefix.size(), kGatewayPrefix) == 0) {
    std::string_view rest =
        std::string_view(request.path).substr(kGatewayPrefix.size());
    const size_t slash = rest.find('/');
    if (slash != std::string_view::npos) {
      const std::string_view tenant = rest.substr(0, slash);
      std::string_view tail = rest.substr(slash + 1);
      constexpr std::string_view kFiles = "files/";
      if (!tenant.empty() &&
          tail.compare(0, kFiles.size(), kFiles) == 0) {
        return HandleTenantFiles(request, tenant, tail.substr(kFiles.size()));
      }
    }
  }
  return HttpResponse::Error(404, StrCat("no route for ", request.path));
}

HttpResponse GatewayRestFrontend::HandleStats() const {
  const GatewayStats stats = gateway_->Stats();
  JsonValue body;
  body.Set("ops_total", stats.ops_total);
  body.Set("ops_ok", stats.ops_ok);
  body.Set("ops_failed", stats.ops_failed);
  body.Set("rejects_total", stats.rejects_total);
  JsonValue::Object reject_fields;
  for (const auto& [reason, count] : stats.rejects_by_reason) {
    reject_fields.emplace(reason, JsonValue(count));
  }
  body.Set("rejects_by_reason", JsonValue(std::move(reject_fields)));
  JsonValue::Object depth_fields;
  for (const auto& [shard, depth] : stats.shard_queue_depth) {
    depth_fields.emplace(StrCat("shard-", shard),
                         JsonValue(static_cast<uint64_t>(depth)));
  }
  body.Set("shard_queue_depth", JsonValue(std::move(depth_fields)));
  JsonValue::Object window_fields;
  for (const auto& [tenant, window] : stats.tenant_window) {
    window_fields.emplace(tenant, JsonValue(static_cast<uint64_t>(window)));
  }
  body.Set("tenant_window", JsonValue(std::move(window_fields)));
  body.Set("num_tenants", static_cast<uint64_t>(stats.num_tenants));
  body.Set("num_shards", static_cast<uint64_t>(stats.num_shards));
  body.Set("integrity_failures_total", stats.integrity_failures_total);
  JsonValue::Object integrity_fields;
  for (const auto& [csp, count] : stats.integrity_failures_by_csp) {
    integrity_fields.emplace(csp, JsonValue(count));
  }
  body.Set("integrity_failures_by_csp", JsonValue(std::move(integrity_fields)));
  return JsonOk(body);
}

HttpResponse GatewayRestFrontend::HandleTenantFiles(const HttpRequest& request,
                                                    std::string_view tenant,
                                                    std::string_view action) {
  if (action == "upload") {
    if (request.method != HttpMethod::kPost) {
      return HttpResponse::Error(405, "upload is POST-only");
    }
    const std::string_view name = request.Query("name");
    if (name.empty()) {
      return HttpResponse::Error(400, "missing name parameter");
    }
    Result<PutResult> result = gateway_->Put(tenant, name, request.body);
    if (!result.ok()) {
      return GatewayErrorResponse(result.status());
    }
    JsonValue body;
    body.Set("name", std::string(name));
    body.Set("bytes", result.value().content_bytes);
    body.Set("new_chunks", static_cast<uint64_t>(result.value().new_chunks));
    body.Set("dedup_chunks",
             static_cast<uint64_t>(result.value().dedup_chunks));
    return JsonOk(body);
  }
  if (action == "download") {
    if (request.method != HttpMethod::kGet) {
      return HttpResponse::Error(405, "download is GET-only");
    }
    const std::string_view name = request.Query("name");
    if (name.empty()) {
      return HttpResponse::Error(400, "missing name parameter");
    }
    // "Range: bytes=a-b" serves [a, b] (clamped to the file end) as a 206
    // with Content-Range; forms we do not support (suffix "-N",
    // multi-range) are ignored per RFC 7233 and the whole file is served.
    // A range starting past the end is 416.
    uint64_t first = 0;
    uint64_t last = 0;
    const std::string_view range_header = request.Header("range");
    if (!range_header.empty() && ParseByteRange(range_header, &first, &last)) {
      const uint64_t len =
          last == UINT64_MAX ? UINT64_MAX : last - first + 1;
      Result<GetResult> result = gateway_->GetRange(
          tenant, name, first, len, IsPrefetchRequest(request));
      if (!result.ok()) {
        if (result.status().code() == StatusCode::kInvalidArgument &&
            !IsGatewayReject(result.status())) {
          HttpResponse response =
              HttpResponse::Error(416, std::string(result.status().message()));
          return response;
        }
        return GatewayErrorResponse(result.status());
      }
      GetResult& got = result.value();
      const uint64_t end =
          got.range_offset + (got.content.empty() ? 0 : got.content.size() - 1);
      HttpResponse response = HttpResponse::Ok(std::move(got.content),
                                               "application/octet-stream");
      response.status = 206;
      response.headers["content-range"] =
          StrCat("bytes ", got.range_offset, "-", end, "/", got.file_size);
      response.headers["accept-ranges"] = "bytes";
      return response;
    }
    Result<GetResult> result = gateway_->Get(tenant, name);
    if (!result.ok()) {
      return GatewayErrorResponse(result.status());
    }
    HttpResponse response = HttpResponse::Ok(std::move(result.value().content),
                                             "application/octet-stream");
    response.headers["accept-ranges"] = "bytes";
    return response;
  }
  if (action == "delete") {
    if (request.method != HttpMethod::kPost) {
      return HttpResponse::Error(405, "delete is POST-only");
    }
    const std::string_view name = request.Query("name");
    if (name.empty()) {
      return HttpResponse::Error(400, "missing name parameter");
    }
    const Status status = gateway_->Delete(tenant, name);
    if (!status.ok()) {
      return GatewayErrorResponse(status);
    }
    JsonValue body;
    body.Set("deleted", std::string(name));
    return JsonOk(body);
  }
  if (action == "list") {
    if (request.method != HttpMethod::kGet) {
      return HttpResponse::Error(405, "list is GET-only");
    }
    Result<std::vector<FileListing>> result =
        gateway_->List(tenant, request.Query("prefix"));
    if (!result.ok()) {
      return GatewayErrorResponse(result.status());
    }
    JsonValue entries{JsonValue::Array{}};
    for (const FileListing& listing : result.value()) {
      JsonValue entry;
      entry.Set("name", listing.name);
      entry.Set("size", listing.size);
      entry.Set("versions", static_cast<uint64_t>(listing.num_versions));
      entry.Set("conflicted", listing.conflicted);
      entries.Append(std::move(entry));
    }
    JsonValue body;
    body.Set("entries", std::move(entries));
    return JsonOk(body);
  }
  return HttpResponse::Error(404, StrCat("no file action '", action, "'"));
}

}  // namespace cyrus
