// HTTP surface of the multi-tenant gateway.
//
// Mounts GatewayService on the same in-process wire boundary as the
// simulated vendor endpoints (src/rest): the caller builds an HttpRequest,
// Handle() returns an HttpResponse, nothing else crosses. Routes:
//
//   GET  /metrics                          scrape (text; ?format=json)
//   GET  /gateway/stats                    gateway aggregates as JSON
//   GET  /gateway/metrics                  cyrus_gateway_* families only
//   POST /gateway/<tenant>/files/upload?name=    (raw body)
//   GET  /gateway/<tenant>/files/download?name=
//   POST /gateway/<tenant>/files/delete?name=
//   GET  /gateway/<tenant>/files/list?prefix=
//
// Typed admission rejects map onto transport codes a real multi-tenant
// frontend would use: 429 for rate/window/overload shedding (with the
// machine-readable reason in the JSON body), 507 for a full storage
// quota, 403 for an unknown tenant. Unknown paths 404. set_available(false)
// turns everything except /metrics into 503 - scrapes must survive the
// outage being scraped.
#ifndef SRC_GATEWAY_GATEWAY_REST_H_
#define SRC_GATEWAY_GATEWAY_REST_H_

#include <atomic>

#include "src/gateway/gateway.h"
#include "src/rest/http.h"

namespace cyrus {

class GatewayRestFrontend {
 public:
  // `gateway` must outlive the frontend. `metrics` is the registry served
  // by /metrics and /gateway/metrics (nullptr = process default).
  explicit GatewayRestFrontend(GatewayService* gateway,
                               const obs::MetricsRegistry* metrics = nullptr);

  // The wire boundary. Thread-safe.
  HttpResponse Handle(const HttpRequest& request);

  // Simulates frontend outage: non-/metrics routes return 503.
  void set_available(bool available) { available_.store(available); }

 private:
  HttpResponse HandleStats() const;
  HttpResponse HandleTenantFiles(const HttpRequest& request,
                                 std::string_view tenant,
                                 std::string_view action);

  GatewayService* gateway_;
  const obs::MetricsRegistry* metrics_;
  std::atomic<bool> available_{true};
};

// The transport status a gateway error maps to (200 for ok). Exposed for
// tests and benches that assert on shedding behavior.
int HttpStatusForGatewayError(const Status& status);

}  // namespace cyrus

#endif  // SRC_GATEWAY_GATEWAY_REST_H_
