#include "src/gateway/shard_map.h"

#include <algorithm>

#include "src/crypto/sha1.h"
#include "src/meta/serialize.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

constexpr uint32_t kMagic = 0x4359534d;  // "CYSM"
constexpr uint32_t kFormatVersion = 1;

std::string ShardName(int shard) { return StrCat("shard-", shard); }

uint64_t PathPoint(std::string_view path) { return Sha1::Hash(path).Prefix64(); }

}  // namespace

ShardMap::ShardMap(uint32_t virtual_points)
    : virtual_points_(virtual_points == 0 ? 1 : virtual_points),
      ring_(std::make_unique<HashRing>(virtual_points_)) {}

Result<int> ShardMap::AddShard() {
  const int id = next_shard_id_;
  CYRUS_RETURN_IF_ERROR(ring_->AddCsp(id, ShardName(id), /*cluster=*/-1));
  CYRUS_ASSIGN_OR_RETURN(std::vector<uint64_t> points, ring_->PointsOf(id));
  ++next_shard_id_;
  shard_ids_.push_back(id);
  points_.emplace(id, std::move(points));
  return id;
}

Result<int> ShardMap::SplitShard(int shard) {
  if (points_.count(shard) == 0) {
    return NotFoundError(StrCat("shard ", shard, " not in the map"));
  }
  // Bisect each of the victim's arcs: the victim's point p owns the arc
  // (prev, p]; placing a new point at the arc midpoint hands the first half
  // to the new shard and leaves every other shard's routing untouched.
  const std::vector<std::pair<uint64_t, int>> all = ring_->AllPoints();
  std::vector<uint64_t> midpoints;
  for (size_t i = 0; i < all.size(); ++i) {
    if (all[i].second != shard) {
      continue;
    }
    const uint64_t p = all[i].first;
    const uint64_t prev = i == 0 ? all.back().first : all[i - 1].first;
    const uint64_t arc = p - prev;  // mod-2^64 wrap is exactly what we want
    if (arc < 2) {
      continue;  // arc too narrow to bisect
    }
    midpoints.push_back(prev + arc / 2);
  }
  if (midpoints.empty()) {
    return FailedPreconditionError(
        StrCat("shard ", shard, " owns no arc wide enough to split"));
  }
  const int id = next_shard_id_;
  CYRUS_RETURN_IF_ERROR(
      ring_->AddCspAt(id, ShardName(id), /*cluster=*/-1, std::move(midpoints)));
  CYRUS_ASSIGN_OR_RETURN(std::vector<uint64_t> claimed, ring_->PointsOf(id));
  ++next_shard_id_;
  shard_ids_.push_back(id);
  points_.emplace(id, std::move(claimed));
  return id;
}

Status ShardMap::MergeShard(int shard) {
  if (points_.count(shard) == 0) {
    return NotFoundError(StrCat("shard ", shard, " not in the map"));
  }
  if (shard_ids_.size() <= 1) {
    return FailedPreconditionError("cannot merge away the last shard");
  }
  CYRUS_RETURN_IF_ERROR(ring_->RemoveCsp(shard));
  points_.erase(shard);
  shard_ids_.erase(std::find(shard_ids_.begin(), shard_ids_.end(), shard));
  // Residency entries still naming the merged shard migrate lazily on
  // their next Route().
  return OkStatus();
}

Result<ShardRoute> ShardMap::Route(std::string_view path) {
  CYRUS_ASSIGN_OR_RETURN(int target, ring_->OwnerOf(PathPoint(path)));
  ShardRoute route;
  route.shard = target;
  auto it = residency_.find(path);
  if (it == residency_.end()) {
    residency_.emplace(std::string(path), target);
    return route;
  }
  if (it->second != target) {
    route.migrated = true;
    route.moved_from = it->second;
    it->second = target;
  }
  return route;
}

Result<int> ShardMap::ShardFor(std::string_view path) const {
  return ring_->OwnerOf(PathPoint(path));
}

std::vector<std::string> ShardMap::ResidentPaths(int shard) const {
  std::vector<std::string> out;
  for (const auto& [path, home] : residency_) {
    if (home == shard) {
      out.push_back(path);
    }
  }
  return out;
}

Bytes ShardMap::Serialize() const {
  BinaryWriter w;
  w.WriteU32(kMagic);
  w.WriteU32(kFormatVersion);
  w.WriteU32(virtual_points_);
  w.WriteI32(next_shard_id_);
  w.WriteU32(static_cast<uint32_t>(shard_ids_.size()));
  for (int id : shard_ids_) {
    const std::vector<uint64_t>& points = points_.at(id);
    w.WriteI32(id);
    w.WriteU32(static_cast<uint32_t>(points.size()));
    for (uint64_t point : points) {
      w.WriteU64(point);
    }
  }
  w.WriteU32(static_cast<uint32_t>(residency_.size()));
  for (const auto& [path, home] : residency_) {
    w.WriteString(path);
    w.WriteI32(home);
  }
  return w.TakeData();
}

Result<ShardMap> ShardMap::Deserialize(ByteSpan data) {
  BinaryReader r(data);
  CYRUS_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) {
    return DataLossError("shard map magic mismatch");
  }
  CYRUS_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kFormatVersion) {
    return DataLossError(StrCat("unsupported shard map version ", version));
  }
  CYRUS_ASSIGN_OR_RETURN(uint32_t virtual_points, r.ReadU32());
  ShardMap map(virtual_points);
  CYRUS_ASSIGN_OR_RETURN(map.next_shard_id_, r.ReadI32());
  CYRUS_ASSIGN_OR_RETURN(uint32_t num_shards, r.ReadU32());
  for (uint32_t i = 0; i < num_shards; ++i) {
    CYRUS_ASSIGN_OR_RETURN(int id, r.ReadI32());
    CYRUS_ASSIGN_OR_RETURN(uint32_t num_points, r.ReadU32());
    std::vector<uint64_t> points;
    points.reserve(num_points);
    for (uint32_t p = 0; p < num_points; ++p) {
      CYRUS_ASSIGN_OR_RETURN(uint64_t point, r.ReadU64());
      points.push_back(point);
    }
    CYRUS_RETURN_IF_ERROR(
        map.ring_->AddCspAt(id, ShardName(id), /*cluster=*/-1, points));
    map.shard_ids_.push_back(id);
    map.points_.emplace(id, std::move(points));
  }
  CYRUS_ASSIGN_OR_RETURN(uint32_t num_resident, r.ReadU32());
  for (uint32_t i = 0; i < num_resident; ++i) {
    CYRUS_ASSIGN_OR_RETURN(std::string path, r.ReadString());
    CYRUS_ASSIGN_OR_RETURN(int home, r.ReadI32());
    map.residency_.emplace(std::move(path), home);
  }
  if (!r.AtEnd()) {
    return DataLossError("trailing bytes after shard map");
  }
  return map;
}

}  // namespace cyrus
