// Consistent-hash shard map for the gateway's metadata tier.
//
// The gateway splits metadata (chunk tables + version trees) into N shards
// keyed by consistent hashing over tenant-qualified file paths, reusing
// src/core/hash_ring: each shard owns a set of virtual points on the
// 64-bit ring and a path routes to the first shard point clockwise from
// SHA-1(path). On top of the raw ring the map adds:
//
//   - split: SplitShard(s) creates a new shard whose virtual points bisect
//     only s's arcs, so the new shard inherits roughly half of s's keyspace
//     and *no other shard's routing changes* (unlike a plain AddShard,
//     which peels ~1/N from everyone);
//   - merge: MergeShard(s) removes s; each of its arcs is absorbed by the
//     shard owning the next point clockwise - the standard consistent-hash
//     handoff;
//   - lazy migration: Route(path) remembers where a path's metadata last
//     lived. After a split/merge the first Route of an affected path
//     reports {from, to} so the caller can move the entry then, not in a
//     stop-the-world rebalance - the same lazy discipline CyrusClient uses
//     for shares after CSP removal (paper §5.5);
//   - serialization: the whole map (point layout + residency) round-trips
//     through the bounds-checked src/meta wire format, so a gateway can
//     persist and recover its routing state.
//
// Thread-compatible, not thread-safe: the gateway guards it with its own
// lock (routing is a few map lookups, far from contended).
#ifndef SRC_GATEWAY_SHARD_MAP_H_
#define SRC_GATEWAY_SHARD_MAP_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/hash_ring.h"
#include "src/util/bytes.h"
#include "src/util/result.h"

namespace cyrus {

// One Route() answer.
struct ShardRoute {
  int shard = -1;        // where the path's metadata lives now
  bool migrated = false; // true when this call moved residency
  int moved_from = -1;   // previous shard when migrated
};

class ShardMap {
 public:
  // `virtual_points`: ring points created per AddShard (SplitShard derives
  // its own points from the victim's arcs).
  explicit ShardMap(uint32_t virtual_points = 64);

  // Adds a shard at name-derived ring points (consistent hashing peels
  // ~1/(N+1) of every existing shard's keyspace). Returns the shard id.
  Result<int> AddShard();

  // Splits `shard`: a new shard takes over the first half of each of the
  // victim's arcs. Returns the new shard id.
  Result<int> SplitShard(int shard);

  // Removes `shard`; its arcs merge into the clockwise successors. Fails
  // on the last shard (a map must keep at least one).
  Status MergeShard(int shard);

  // Shard owning `path` under the current ring, updating residency. If the
  // path's recorded residency predates a split/merge, the route reports the
  // migration (migrated=true, moved_from=old shard) exactly once.
  Result<ShardRoute> Route(std::string_view path);

  // Current ring owner of `path` without touching residency.
  Result<int> ShardFor(std::string_view path) const;

  // Paths currently resident on `shard`, in lexicographic order.
  std::vector<std::string> ResidentPaths(int shard) const;

  size_t num_shards() const { return shard_ids_.size(); }
  std::vector<int> ShardIds() const { return shard_ids_; }

  // Wire form (versioned, bounds-checked).
  Bytes Serialize() const;
  static Result<ShardMap> Deserialize(ByteSpan data);

 private:
  uint32_t virtual_points_;
  int next_shard_id_ = 0;
  // unique_ptr: HashRing owns a mutex and cannot move, but ShardMap must
  // (Result<ShardMap> moves it out of Deserialize).
  std::unique_ptr<HashRing> ring_;
  std::vector<int> shard_ids_;
  // Explicit point layout per shard. The ring also tracks this internally,
  // but serialization needs it in a stable, rebuildable form.
  std::map<int, std::vector<uint64_t>> points_;
  // path -> shard whose metadata store currently holds it.
  std::map<std::string, int, std::less<>> residency_;
};

}  // namespace cyrus

#endif  // SRC_GATEWAY_SHARD_MAP_H_
