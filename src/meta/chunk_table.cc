#include "src/meta/chunk_table.h"

#include "src/meta/serialize.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

constexpr uint32_t kMagic = 0x43595254;  // "CYRT"
// v2 adds logical_size + the convergent-dedup fields per entry; v3 adds a
// per-share digest. v1/v2 streams are still readable (logical_size defaults
// to size, dedup to off, digests to unknown).
constexpr uint32_t kFormatVersion = 3;

}  // namespace

bool ChunkTable::Contains(const Sha1Digest& chunk_id) const {
  return entries_.count(chunk_id) > 0;
}

const ChunkEntry* ChunkTable::Find(const Sha1Digest& chunk_id) const {
  auto it = entries_.find(chunk_id);
  return it == entries_.end() ? nullptr : &it->second;
}

Status ChunkTable::Insert(const Sha1Digest& chunk_id, ChunkEntry entry) {
  if (Contains(chunk_id)) {
    return AlreadyExistsError(StrCat("chunk ", chunk_id.ToHex(), " already tracked"));
  }
  entry.refcount = 1;
  if (entry.logical_size == 0) {
    entry.logical_size = entry.size;
  }
  entries_.emplace(chunk_id, std::move(entry));
  return OkStatus();
}

Status ChunkTable::Evict(const Sha1Digest& chunk_id) {
  auto it = entries_.find(chunk_id);
  if (it == entries_.end()) {
    return NotFoundError(StrCat("chunk ", chunk_id.ToHex(), " not tracked"));
  }
  if (it->second.refcount > 0) {
    return FailedPreconditionError(StrCat("chunk ", chunk_id.ToHex(), " still has ",
                                          it->second.refcount, " references"));
  }
  entries_.erase(it);
  return OkStatus();
}

Status ChunkTable::AddRef(const Sha1Digest& chunk_id) {
  auto it = entries_.find(chunk_id);
  if (it == entries_.end()) {
    return NotFoundError(StrCat("chunk ", chunk_id.ToHex(), " not tracked"));
  }
  ++it->second.refcount;
  return OkStatus();
}

Status ChunkTable::Release(const Sha1Digest& chunk_id) {
  auto it = entries_.find(chunk_id);
  if (it == entries_.end()) {
    return NotFoundError(StrCat("chunk ", chunk_id.ToHex(), " not tracked"));
  }
  if (it->second.refcount == 0) {
    return FailedPreconditionError(
        StrCat("chunk ", chunk_id.ToHex(), " released below zero references"));
  }
  --it->second.refcount;
  return OkStatus();
}

Status ChunkTable::MoveShare(const Sha1Digest& chunk_id, int32_t old_csp,
                             uint32_t old_index, int32_t new_csp, uint32_t new_index,
                             const Sha1Digest& new_digest) {
  auto it = entries_.find(chunk_id);
  if (it == entries_.end()) {
    return NotFoundError(StrCat("chunk ", chunk_id.ToHex(), " not tracked"));
  }
  for (ChunkShare& share : it->second.shares) {
    if (share.csp == old_csp && share.share_index == old_index) {
      share.csp = new_csp;
      share.share_index = new_index;
      // Migration derives fresh share bytes, so the old digest never
      // applies; callers that hashed the new bytes pass the digest along,
      // everyone else resets it to unknown.
      share.digest = new_digest;
      return OkStatus();
    }
  }
  return NotFoundError(StrCat("chunk ", chunk_id.ToHex(), " has no share ", old_index,
                              " on CSP ", old_csp));
}

Status ChunkTable::SetShareDigest(const Sha1Digest& chunk_id, uint32_t share_index,
                                  const Sha1Digest& digest) {
  auto it = entries_.find(chunk_id);
  if (it == entries_.end()) {
    return NotFoundError(StrCat("chunk ", chunk_id.ToHex(), " not tracked"));
  }
  for (ChunkShare& share : it->second.shares) {
    if (share.share_index == share_index) {
      share.digest = digest;
      return OkStatus();
    }
  }
  return NotFoundError(StrCat("chunk ", chunk_id.ToHex(), " has no share ",
                              share_index));
}

Status ChunkTable::ResetShares(const Sha1Digest& chunk_id, uint32_t t, uint32_t n,
                               Bytes wrapped_key, std::vector<ChunkShare> shares) {
  auto it = entries_.find(chunk_id);
  if (it == entries_.end()) {
    return NotFoundError(StrCat("chunk ", chunk_id.ToHex(), " not tracked"));
  }
  it->second.t = t;
  it->second.n = n;
  it->second.wrapped_key = std::move(wrapped_key);
  it->second.shares = std::move(shares);
  return OkStatus();
}

Status ChunkTable::AddShare(const Sha1Digest& chunk_id, ChunkShare share) {
  auto it = entries_.find(chunk_id);
  if (it == entries_.end()) {
    return NotFoundError(StrCat("chunk ", chunk_id.ToHex(), " not tracked"));
  }
  for (const ChunkShare& existing : it->second.shares) {
    if (existing.share_index == share.share_index) {
      return AlreadyExistsError(
          StrCat("chunk ", chunk_id.ToHex(), " already has share ", share.share_index));
    }
  }
  it->second.shares.push_back(share);
  return OkStatus();
}

Status ChunkTable::RemoveShare(const Sha1Digest& chunk_id, int32_t csp,
                               uint32_t share_index) {
  auto it = entries_.find(chunk_id);
  if (it == entries_.end()) {
    return NotFoundError(StrCat("chunk ", chunk_id.ToHex(), " not tracked"));
  }
  std::vector<ChunkShare>& shares = it->second.shares;
  for (size_t i = 0; i < shares.size(); ++i) {
    if (shares[i].csp == csp && shares[i].share_index == share_index) {
      shares.erase(shares.begin() + i);
      return OkStatus();
    }
  }
  return NotFoundError(StrCat("chunk ", chunk_id.ToHex(), " has no share ",
                              share_index, " on CSP ", csp));
}

Status ChunkTable::Absorb(ChunkTable other) {
  // Validate every colliding entry before mutating anything, so a mismatch
  // leaves both tables untouched.
  for (const auto& [id, incoming] : other.entries_) {
    auto it = entries_.find(id);
    if (it == entries_.end()) {
      continue;
    }
    const ChunkEntry& mine = it->second;
    if (mine.size != incoming.size || mine.t != incoming.t || mine.n != incoming.n) {
      return DataLossError(StrCat("chunk ", id.ToHex(),
                                  " has divergent parameters across shards"));
    }
  }
  for (auto& [id, incoming] : other.entries_) {
    auto it = entries_.find(id);
    if (it == entries_.end()) {
      entries_.emplace(id, std::move(incoming));
      continue;
    }
    ChunkEntry& mine = it->second;
    mine.refcount += incoming.refcount;
    for (const ChunkShare& share : incoming.shares) {
      bool known = false;
      for (ChunkShare& existing : mine.shares) {
        if (existing.share_index == share.share_index && existing.csp == share.csp) {
          known = true;
          // Both sides describe the same stored object; adopt the digest
          // from whichever shard learned it.
          if (!existing.has_digest() && share.has_digest()) {
            existing.digest = share.digest;
          }
          break;
        }
      }
      if (!known) {
        mine.shares.push_back(share);
      }
    }
  }
  other.entries_.clear();
  return OkStatus();
}

std::vector<Sha1Digest> ChunkTable::AllChunkIds() const {
  std::vector<Sha1Digest> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    out.push_back(id);
  }
  return out;
}

std::vector<Sha1Digest> ChunkTable::ChunksOnCsp(int32_t csp) const {
  std::vector<Sha1Digest> out;
  for (const auto& [id, entry] : entries_) {
    for (const ChunkShare& share : entry.shares) {
      if (share.csp == csp) {
        out.push_back(id);
        break;
      }
    }
  }
  return out;
}

uint64_t ChunkTable::TotalUniqueBytes() const {
  uint64_t total = 0;
  for (const auto& [id, entry] : entries_) {
    total += entry.size;
  }
  return total;
}

Bytes ChunkTable::Serialize() const {
  BinaryWriter w;
  w.WriteU32(kMagic);
  w.WriteU32(kFormatVersion);
  w.WriteU32(static_cast<uint32_t>(entries_.size()));
  for (const auto& [id, entry] : entries_) {
    w.WriteDigest(id);
    w.WriteU64(entry.size);
    w.WriteU32(entry.t);
    w.WriteU32(entry.n);
    w.WriteU32(entry.refcount);
    w.WriteU64(entry.logical_size);
    w.WriteU8(entry.dedup ? 1 : 0);
    w.WriteBytes(entry.wrapped_key);
    w.WriteU32(static_cast<uint32_t>(entry.shares.size()));
    for (const ChunkShare& share : entry.shares) {
      w.WriteU32(share.share_index);
      w.WriteI32(share.csp);
      w.WriteDigest(share.digest);
    }
  }
  return w.TakeData();
}

Result<ChunkTable> ChunkTable::Deserialize(ByteSpan data) {
  BinaryReader r(data);
  CYRUS_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) {
    return DataLossError("chunk table magic mismatch");
  }
  CYRUS_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version < 1 || version > kFormatVersion) {
    return DataLossError(StrCat("unsupported chunk table version ", version));
  }
  ChunkTable table;
  CYRUS_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  for (uint32_t i = 0; i < count; ++i) {
    CYRUS_ASSIGN_OR_RETURN(Sha1Digest id, r.ReadDigest());
    ChunkEntry entry;
    CYRUS_ASSIGN_OR_RETURN(entry.size, r.ReadU64());
    CYRUS_ASSIGN_OR_RETURN(entry.t, r.ReadU32());
    CYRUS_ASSIGN_OR_RETURN(entry.n, r.ReadU32());
    CYRUS_ASSIGN_OR_RETURN(entry.refcount, r.ReadU32());
    if (version >= 2) {
      CYRUS_ASSIGN_OR_RETURN(entry.logical_size, r.ReadU64());
      CYRUS_ASSIGN_OR_RETURN(uint8_t dedup, r.ReadU8());
      entry.dedup = dedup != 0;
      CYRUS_ASSIGN_OR_RETURN(entry.wrapped_key, r.ReadBytes());
    } else {
      entry.logical_size = entry.size;  // v1 predates the distinction
    }
    CYRUS_ASSIGN_OR_RETURN(uint32_t num_shares, r.ReadU32());
    for (uint32_t s = 0; s < num_shares; ++s) {
      ChunkShare share;
      CYRUS_ASSIGN_OR_RETURN(share.share_index, r.ReadU32());
      CYRUS_ASSIGN_OR_RETURN(share.csp, r.ReadI32());
      if (version >= 3) {
        CYRUS_ASSIGN_OR_RETURN(share.digest, r.ReadDigest());
      }
      entry.shares.push_back(share);
    }
    table.entries_.emplace(id, std::move(entry));
  }
  if (!r.AtEnd()) {
    return DataLossError("trailing bytes after chunk table");
  }
  return table;
}

}  // namespace cyrus
