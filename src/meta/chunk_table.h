// The global chunk table (paper §5.2): which chunks exist, their secret-
// sharing parameters, where their shares live, and how many file versions
// reference them. This is the deduplication index - before scattering a
// chunk, the uploader consults the table; a hit means zero new bytes leave
// the client (Algorithm 2, "if chunk is not stored").
//
// Threading discipline (deliberately no internal lock): structural
// mutation - Insert, AddRef, Release - happens only on the client's driver
// thread, inside ordered pipeline completions. Pipeline workers may call
// MoveShare, which rewrites one entry's share list in place, but a Get
// gathers each unique chunk exactly once, so concurrent MoveShare calls
// always target *distinct* entries and never race with the driver's
// lookups of other chunks.
#ifndef SRC_META_CHUNK_TABLE_H_
#define SRC_META_CHUNK_TABLE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/crypto/sha1.h"
#include "src/util/bytes.h"
#include "src/util/result.h"

namespace cyrus {

struct ChunkShare {
  uint32_t share_index = 0;
  int32_t csp = -1;
  // SHA-1 of the stored share bytes; the all-zero digest means "unknown"
  // (legacy metadata predating per-share authentication). Readers verify a
  // downloaded share against this before it enters decode; scrub verifies
  // it without decoding at all.
  Sha1Digest digest{};

  bool has_digest() const { return !(digest == Sha1Digest{}); }
};

struct ChunkEntry {
  uint64_t size = 0;
  // Plaintext bytes this chunk contributes to quota accounting. Equal to
  // `size` for chunks this client stored; kept separate so logical charge
  // and stored-share bookkeeping can diverge (dedup charges every
  // referencing tenant the logical bytes while the shares exist once).
  uint64_t logical_size = 0;
  uint32_t t = 0;
  uint32_t n = 0;
  uint32_t refcount = 0;  // number of referencing file versions
  // Convergent-dedup chunks: encoded under a content key rather than the
  // user key. `wrapped_key` is the per-user XOR-wrap of that content key
  // (src/crypto/convergent.h); empty for non-dedup chunks.
  bool dedup = false;
  Bytes wrapped_key;
  std::vector<ChunkShare> shares;
};

class ChunkTable {
 public:
  bool Contains(const Sha1Digest& chunk_id) const;
  const ChunkEntry* Find(const Sha1Digest& chunk_id) const;
  size_t size() const { return entries_.size(); }

  // Registers a new chunk with refcount 1. kAlreadyExists if present.
  Status Insert(const Sha1Digest& chunk_id, ChunkEntry entry);

  // Bumps / drops the reference count. Release keeps the entry at zero
  // references (shares stay on CSPs; other files may still adopt the chunk,
  // paper §5.4 "shares of the file's component chunks are left alone").
  Status AddRef(const Sha1Digest& chunk_id);
  Status Release(const Sha1Digest& chunk_id);

  // Removes a zero-reference entry outright. The scrub engine's orphan
  // reclaim evicts a chunk here once its shares are deleted from the CSPs
  // (or were reclaimed by another shard), so later scans stop trying to
  // repair it. kFailedPrecondition while references remain.
  Status Evict(const Sha1Digest& chunk_id);

  // Replaces the share (old_csp, old_index) with a regenerated share
  // (new_csp, new_index) - lazy migration after CSP removal (paper §5.5 /
  // Figure 9). The index changes because migration derives a fresh share
  // rather than re-creating the lost one byte-for-byte.
  Status MoveShare(const Sha1Digest& chunk_id, int32_t old_csp, uint32_t old_index,
                   int32_t new_csp, uint32_t new_index,
                   const Sha1Digest& new_digest = Sha1Digest{});

  // Records (or corrects) the stored digest of one share. kNotFound if the
  // share index is not tracked for the chunk.
  Status SetShareDigest(const Sha1Digest& chunk_id, uint32_t share_index,
                        const Sha1Digest& digest);

  // Adds a share location (e.g. a regenerated share with a fresh index).
  Status AddShare(const Sha1Digest& chunk_id, ChunkShare share);

  // Replaces the entry's coding parameters, per-user key wrap, and share
  // layout wholesale. Used when a dedup chunk is re-encoded from scratch
  // because its previous objects were reclaimed by another shard's scrub -
  // the cached layout is void, not repairable share by share.
  Status ResetShares(const Sha1Digest& chunk_id, uint32_t t, uint32_t n,
                     Bytes wrapped_key, std::vector<ChunkShare> shares);

  // Drops a share location without a replacement - scrub prunes locations
  // on dead CSPs once the chunk is back at full redundancy. kNotFound if
  // the (csp, index) pair is not recorded.
  Status RemoveShare(const Sha1Digest& chunk_id, int32_t csp, uint32_t share_index);

  // Shard split: moves every entry for which `keep_predicate` returns false
  // into the returned table, leaving the rest in place. Used when a
  // metadata shard splits and the departing keyspace takes its chunk
  // bookkeeping along.
  template <typename Pred>
  ChunkTable ExtractIf(Pred&& departs) {
    ChunkTable out;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (departs(it->first, it->second)) {
        out.entries_.insert(entries_.extract(it++));
      } else {
        ++it;
      }
    }
    return out;
  }

  // Shard merge: folds `other` in. An entry present in both tables must
  // agree on (size, t, n) - the tables describe the same content-addressed
  // chunk - and the merged entry sums refcounts and unions share locations
  // (kDataLoss on a parameter mismatch, which means divergent metadata).
  Status Absorb(ChunkTable other);

  // Chunk ids in table order (scrub scans the whole table).
  std::vector<Sha1Digest> AllChunkIds() const;

  // Chunk ids that have a share on the given CSP.
  std::vector<Sha1Digest> ChunksOnCsp(int32_t csp) const;

  // Total bytes of unique chunk payload tracked (pre-encoding).
  uint64_t TotalUniqueBytes() const;

  Bytes Serialize() const;
  static Result<ChunkTable> Deserialize(ByteSpan data);

 private:
  std::map<Sha1Digest, ChunkEntry> entries_;
};

}  // namespace cyrus

#endif  // SRC_META_CHUNK_TABLE_H_
