#include "src/meta/metadata.h"

#include <algorithm>

#include "src/meta/serialize.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

// v2 adds the convergent-dedup (flag, wrapped key) pair per ChunkMap row;
// v3 adds per-share digests per row. v1/v2 objects written by older clients
// still parse (no dedup fields / no share digests).
constexpr uint32_t kFormatVersion = 3;
constexpr uint32_t kMagic = 0x43595253;  // "CYRS"

}  // namespace

const Sha1Digest* ChunkRecord::FindShareDigest(uint32_t share_index) const {
  for (const ShareDigest& sd : share_digests) {
    if (sd.share_index == share_index) {
      return &sd.digest;
    }
  }
  return nullptr;
}

void ChunkRecord::SetShareDigest(uint32_t share_index, const Sha1Digest& digest) {
  for (ShareDigest& sd : share_digests) {
    if (sd.share_index == share_index) {
      sd.digest = digest;
      return;
    }
  }
  share_digests.push_back(ShareDigest{share_index, digest});
}

Bytes FileVersion::Serialize() const {
  BinaryWriter w;
  w.WriteU32(kMagic);
  w.WriteU32(kFormatVersion);
  // FileMap.
  w.WriteDigest(id);
  w.WriteDigest(content_id);
  w.WriteDigest(prev_id);
  w.WriteString(client_id);
  w.WriteString(file_name);
  w.WriteU8(deleted ? 1 : 0);
  w.WriteDouble(modified_time);
  w.WriteU64(size);
  // ChunkMap.
  w.WriteU32(static_cast<uint32_t>(chunks.size()));
  for (const ChunkRecord& c : chunks) {
    w.WriteDigest(c.id);
    w.WriteU64(c.offset);
    w.WriteU64(c.size);
    w.WriteU32(c.t);
    w.WriteU32(c.n);
    w.WriteU8(c.dedup ? 1 : 0);
    w.WriteBytes(c.wrapped_key);
    w.WriteU32(static_cast<uint32_t>(c.share_digests.size()));
    for (const ShareDigest& sd : c.share_digests) {
      w.WriteU32(sd.share_index);
      w.WriteDigest(sd.digest);
    }
  }
  // ShareMap.
  w.WriteU32(static_cast<uint32_t>(shares.size()));
  for (const ShareLocation& s : shares) {
    w.WriteDigest(s.chunk_id);
    w.WriteU32(s.share_index);
    w.WriteI32(s.csp);
  }
  // CSP directory (stable names for the csp values above).
  w.WriteU32(static_cast<uint32_t>(csp_directory.size()));
  for (const std::string& name : csp_directory) {
    w.WriteString(name);
  }
  return w.TakeData();
}

Result<FileVersion> FileVersion::Deserialize(ByteSpan data) {
  BinaryReader r(data);
  CYRUS_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) {
    return DataLossError("metadata magic mismatch");
  }
  CYRUS_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version < 1 || version > kFormatVersion) {
    return DataLossError(StrCat("unsupported metadata format version ", version));
  }
  FileVersion v;
  CYRUS_ASSIGN_OR_RETURN(v.id, r.ReadDigest());
  CYRUS_ASSIGN_OR_RETURN(v.content_id, r.ReadDigest());
  CYRUS_ASSIGN_OR_RETURN(v.prev_id, r.ReadDigest());
  CYRUS_ASSIGN_OR_RETURN(v.client_id, r.ReadString());
  CYRUS_ASSIGN_OR_RETURN(v.file_name, r.ReadString());
  CYRUS_ASSIGN_OR_RETURN(uint8_t deleted, r.ReadU8());
  v.deleted = deleted != 0;
  CYRUS_ASSIGN_OR_RETURN(v.modified_time, r.ReadDouble());
  CYRUS_ASSIGN_OR_RETURN(v.size, r.ReadU64());

  CYRUS_ASSIGN_OR_RETURN(uint32_t num_chunks, r.ReadU32());
  v.chunks.reserve(num_chunks);
  for (uint32_t i = 0; i < num_chunks; ++i) {
    ChunkRecord c;
    CYRUS_ASSIGN_OR_RETURN(c.id, r.ReadDigest());
    CYRUS_ASSIGN_OR_RETURN(c.offset, r.ReadU64());
    CYRUS_ASSIGN_OR_RETURN(c.size, r.ReadU64());
    CYRUS_ASSIGN_OR_RETURN(c.t, r.ReadU32());
    CYRUS_ASSIGN_OR_RETURN(c.n, r.ReadU32());
    if (version >= 2) {
      CYRUS_ASSIGN_OR_RETURN(uint8_t dedup, r.ReadU8());
      c.dedup = dedup != 0;
      CYRUS_ASSIGN_OR_RETURN(c.wrapped_key, r.ReadBytes());
    }
    if (version >= 3) {
      CYRUS_ASSIGN_OR_RETURN(uint32_t num_digests, r.ReadU32());
      c.share_digests.reserve(num_digests);
      for (uint32_t d = 0; d < num_digests; ++d) {
        ShareDigest sd;
        CYRUS_ASSIGN_OR_RETURN(sd.share_index, r.ReadU32());
        CYRUS_ASSIGN_OR_RETURN(sd.digest, r.ReadDigest());
        c.share_digests.push_back(sd);
      }
    }
    v.chunks.push_back(c);
  }
  CYRUS_ASSIGN_OR_RETURN(uint32_t num_shares, r.ReadU32());
  v.shares.reserve(num_shares);
  for (uint32_t i = 0; i < num_shares; ++i) {
    ShareLocation s;
    CYRUS_ASSIGN_OR_RETURN(s.chunk_id, r.ReadDigest());
    CYRUS_ASSIGN_OR_RETURN(s.share_index, r.ReadU32());
    CYRUS_ASSIGN_OR_RETURN(s.csp, r.ReadI32());
    v.shares.push_back(s);
  }
  CYRUS_ASSIGN_OR_RETURN(uint32_t num_names, r.ReadU32());
  v.csp_directory.reserve(num_names);
  for (uint32_t i = 0; i < num_names; ++i) {
    CYRUS_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    v.csp_directory.push_back(std::move(name));
  }
  if (!r.AtEnd()) {
    return DataLossError("trailing bytes after metadata");
  }
  return v;
}

std::vector<ShareLocation> FileVersion::SharesOfChunk(const Sha1Digest& chunk_id) const {
  std::vector<ShareLocation> out;
  for (const ShareLocation& s : shares) {
    if (s.chunk_id == chunk_id) {
      out.push_back(s);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ShareLocation& a, const ShareLocation& b) {
                     return a.share_index < b.share_index;
                   });
  return out;
}

Status FileVersion::Validate() const {
  uint64_t expected_offset = 0;
  for (const ChunkRecord& c : chunks) {
    if (c.t == 0 || c.t > c.n) {
      return InvalidArgumentError(
          StrCat(file_name, ": chunk has invalid (t,n)=(", c.t, ",", c.n, ")"));
    }
    if (c.offset != expected_offset) {
      return InvalidArgumentError(StrCat(file_name, ": chunk offsets do not tile"));
    }
    expected_offset += c.size;
    const size_t located = SharesOfChunk(c.id).size();
    if (located < c.t) {
      return InvalidArgumentError(StrCat(file_name, ": chunk lists ", located,
                                         " share locations but t=", c.t));
    }
  }
  if (expected_offset != size) {
    return InvalidArgumentError(
        StrCat(file_name, ": chunks cover ", expected_offset, " of ", size, " bytes"));
  }
  return OkStatus();
}

Sha1Digest ComputeVersionId(const Sha1Digest& content_id, const Sha1Digest& prev_id,
                            std::string_view file_name) {
  Sha1 h;
  h.Update(std::string_view("cyrus-version-v1"));
  h.Update(ByteSpan(content_id.bytes.data(), content_id.bytes.size()));
  h.Update(ByteSpan(prev_id.bytes.data(), prev_id.bytes.size()));
  h.Update(file_name);
  return h.Finish();
}

}  // namespace cyrus
