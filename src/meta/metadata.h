// Per-file-version metadata (paper §5.2, Figure 6).
//
// Every upload creates one immutable metadata object holding the three
// tables of Figure 6:
//   FileMap  - version id (SHA-1 of the file content), parent version id,
//              creating client, file name, deleted flag, mtime, size;
//   ChunkMap - the chunks composing the file (id, offset, size, t, n);
//   ShareMap - which CSP holds which share index of each chunk.
// Metadata objects are content-addressed: their name at a CSP derives from
// the version id, so concurrent uploaders never clobber each other - they
// create sibling versions, detected later as conflicts.
#ifndef SRC_META_METADATA_H_
#define SRC_META_METADATA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/crypto/sha1.h"
#include "src/util/bytes.h"
#include "src/util/result.h"

namespace cyrus {

// A zero digest marks "no parent" (prevId = 0 in the paper).
inline bool IsNullDigest(const Sha1Digest& d) {
  for (uint8_t b : d.bytes) {
    if (b != 0) {
      return false;
    }
  }
  return true;
}

// Per-share authentication record: SHA-1 of the stored share bytes, keyed
// by share index (share bytes are a pure function of (chunk, key, index),
// so every CSP holding index i stores identical bytes).
struct ShareDigest {
  uint32_t share_index = 0;
  Sha1Digest digest;

  friend bool operator==(const ShareDigest& a, const ShareDigest& b) = default;
};

// ChunkMap row.
struct ChunkRecord {
  Sha1Digest id;       // SHA-1 of chunk content
  uint64_t offset = 0; // position within the file
  uint64_t size = 0;   // chunk byte count
  uint32_t t = 0;      // shares needed to reconstruct
  uint32_t n = 0;      // shares stored
  // Convergent dedup (src/crypto/convergent.h): when set, the chunk was
  // encoded under a content-derived key and `wrapped_key` carries that key
  // XOR-wrapped under this user's key, so any of the user's devices can
  // decode without knowing the deployment salt. Empty/false for chunks
  // encoded under the user key directly (wire format v1 compatible).
  bool dedup = false;
  Bytes wrapped_key;
  // Per-share digests (wire v3): readers authenticate each downloaded share
  // against its entry *before* decode. Empty for legacy v1/v2 metadata -
  // those fall back to the post-decode combinatorial identification path
  // and get upgraded in place on first repair.
  std::vector<ShareDigest> share_digests;

  // nullptr when no digest is recorded for the index.
  const Sha1Digest* FindShareDigest(uint32_t share_index) const;
  void SetShareDigest(uint32_t share_index, const Sha1Digest& digest);
};

// ShareMap row.
//
// In memory, `csp` is the *local* registry index of the provider holding
// the share (-1 when the provider is unknown to this client). Registry
// indices are client-local, so on the wire each metadata object carries a
// `csp_directory` of stable connector ids and `csp` indexes into it; the
// client translates in both directions (see CyrusClient's metadata I/O).
struct ShareLocation {
  Sha1Digest chunk_id;
  uint32_t share_index = 0;
  int32_t csp = -1;
};

// One node of the metadata tree (FileMap row + its two tables).
//
// The paper keys FileMap rows by the SHA-1 of the file content alone; that
// collides when identical content is stored under two names (or re-created
// after deletion), so this implementation derives `id` from (content hash,
// parent, name) and keeps the pure content hash in `content_id` for
// integrity checks and deduplication.
struct FileVersion {
  Sha1Digest id;          // unique version id (content x parent x name)
  Sha1Digest content_id;  // SHA-1 of the whole file content
  Sha1Digest prev_id;     // parent version; null digest for new files
  std::string client_id;
  std::string file_name;
  bool deleted = false;
  double modified_time = 0.0;
  uint64_t size = 0;
  std::vector<ChunkRecord> chunks;
  std::vector<ShareLocation> shares;
  // Stable connector ids naming the CSPs that `shares[].csp` refers to in
  // *serialized* metadata (entry k names csp value k). Local in-memory
  // versions leave it empty and use registry indices directly.
  std::vector<std::string> csp_directory;

  // Binary encoding (versioned; see serialize.h for the wire format).
  Bytes Serialize() const;
  static Result<FileVersion> Deserialize(ByteSpan data);

  // Share locations for one chunk, in share-index order.
  std::vector<ShareLocation> SharesOfChunk(const Sha1Digest& chunk_id) const;

  // Internal consistency: every chunk has >= t shares listed, chunk offsets
  // tile [0, size), and t <= n for every chunk.
  Status Validate() const;
};

// Derives the unique version id for a (content, parent, name) triple.
Sha1Digest ComputeVersionId(const Sha1Digest& content_id, const Sha1Digest& prev_id,
                            std::string_view file_name);

}  // namespace cyrus

#endif  // SRC_META_METADATA_H_
