#include "src/meta/serialize.h"

#include <cstring>

namespace cyrus {

void BinaryWriter::WriteU8(uint8_t v) { buffer_.push_back(v); }

void BinaryWriter::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void BinaryWriter::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void BinaryWriter::WriteI32(int32_t v) { WriteU32(static_cast<uint32_t>(v)); }

void BinaryWriter::WriteDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void BinaryWriter::WriteString(std::string_view s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void BinaryWriter::WriteBytes(ByteSpan data) {
  WriteU32(static_cast<uint32_t>(data.size()));
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void BinaryWriter::WriteDigest(const Sha1Digest& d) {
  buffer_.insert(buffer_.end(), d.bytes.begin(), d.bytes.end());
}

Result<ByteSpan> BinaryReader::Take(size_t count) {
  if (pos_ + count > data_.size()) {
    return DataLossError("truncated metadata: read past end of buffer");
  }
  ByteSpan out = data_.subspan(pos_, count);
  pos_ += count;
  return out;
}

Result<uint8_t> BinaryReader::ReadU8() {
  CYRUS_ASSIGN_OR_RETURN(ByteSpan b, Take(1));
  return b[0];
}

Result<uint32_t> BinaryReader::ReadU32() {
  CYRUS_ASSIGN_OR_RETURN(ByteSpan b, Take(4));
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | b[i];
  }
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  CYRUS_ASSIGN_OR_RETURN(ByteSpan b, Take(8));
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | b[i];
  }
  return v;
}

Result<int32_t> BinaryReader::ReadI32() {
  CYRUS_ASSIGN_OR_RETURN(uint32_t v, ReadU32());
  return static_cast<int32_t>(v);
}

Result<double> BinaryReader::ReadDouble() {
  CYRUS_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  CYRUS_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  CYRUS_ASSIGN_OR_RETURN(ByteSpan b, Take(len));
  return std::string(b.begin(), b.end());
}

Result<Bytes> BinaryReader::ReadBytes() {
  CYRUS_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  CYRUS_ASSIGN_OR_RETURN(ByteSpan b, Take(len));
  return Bytes(b.begin(), b.end());
}

Result<Sha1Digest> BinaryReader::ReadDigest() {
  CYRUS_ASSIGN_OR_RETURN(ByteSpan b, Take(20));
  Sha1Digest d;
  std::copy(b.begin(), b.end(), d.bytes.begin());
  return d;
}

}  // namespace cyrus
