// Bounds-checked binary serialization for metadata objects.
//
// Metadata files are scattered to CSPs as opaque bytes (secret-shared like
// everything else), so the encoding only needs to be compact, versioned,
// and safe to parse from untrusted storage. Integers are little-endian
// fixed width; strings and blobs are u32-length-prefixed.
#ifndef SRC_META_SERIALIZE_H_
#define SRC_META_SERIALIZE_H_

#include <cstdint>
#include <string>

#include "src/crypto/sha1.h"
#include "src/util/bytes.h"
#include "src/util/result.h"

namespace cyrus {

class BinaryWriter {
 public:
  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v);
  void WriteDouble(double v);
  void WriteString(std::string_view s);
  void WriteBytes(ByteSpan data);  // length-prefixed
  void WriteDigest(const Sha1Digest& d);

  const Bytes& data() const { return buffer_; }
  Bytes TakeData() { return std::move(buffer_); }

 private:
  Bytes buffer_;
};

class BinaryReader {
 public:
  explicit BinaryReader(ByteSpan data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Result<Bytes> ReadBytes();
  Result<Sha1Digest> ReadDigest();

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Result<ByteSpan> Take(size_t count);

  ByteSpan data_;
  size_t pos_ = 0;
};

}  // namespace cyrus

#endif  // SRC_META_SERIALIZE_H_
