#include "src/meta/version_tree.h"

#include <algorithm>
#include <set>

#include "src/util/strings.h"

namespace cyrus {

Status VersionTree::Insert(const FileVersion& version) {
  auto it = nodes_.find(version.id);
  if (it != nodes_.end()) {
    // Content-addressed: same id must mean same metadata.
    if (it->second.Serialize() != version.Serialize()) {
      return AlreadyExistsError(
          StrCat("version ", version.id.ToHex(), " already exists with different content"));
    }
    return OkStatus();
  }
  nodes_.emplace(version.id, version);
  by_name_.emplace(version.file_name, version.id);
  if (IsNullDigest(version.prev_id)) {
    roots_.emplace(version.file_name, version.id);
  } else {
    children_.emplace(version.prev_id, version.id);
  }
  return OkStatus();
}

bool VersionTree::Contains(const Sha1Digest& id) const { return nodes_.count(id) > 0; }

const FileVersion* VersionTree::Find(const Sha1Digest& id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : &it->second;
}

std::vector<const FileVersion*> VersionTree::Children(const Sha1Digest& id) const {
  std::vector<const FileVersion*> out;
  auto [begin, end] = children_.equal_range(id);
  for (auto it = begin; it != end; ++it) {
    out.push_back(Find(it->second));
  }
  return out;
}

std::vector<const FileVersion*> VersionTree::Heads(std::string_view file_name) const {
  // Walk the name index, keeping only childless versions. Sorted by id to
  // match the historical nodes_-scan order (callers render conflict lists
  // from this).
  std::vector<Sha1Digest> ids;
  auto [begin, end] = by_name_.equal_range(file_name);
  for (auto it = begin; it != end; ++it) {
    if (children_.find(it->second) == children_.end()) {
      ids.push_back(it->second);
    }
  }
  std::sort(ids.begin(), ids.end());
  std::vector<const FileVersion*> out;
  out.reserve(ids.size());
  for (const Sha1Digest& id : ids) {
    out.push_back(Find(id));
  }
  return out;
}

Result<const FileVersion*> VersionTree::Latest(std::string_view file_name) const {
  std::vector<const FileVersion*> live;
  for (const FileVersion* head : Heads(file_name)) {
    if (!head->deleted) {
      live.push_back(head);
    }
  }
  if (live.empty()) {
    return NotFoundError(StrCat("no live version of ", file_name));
  }
  if (live.size() > 1) {
    return ConflictError(StrCat(file_name, " has ", live.size(), " conflicting heads"));
  }
  return live.front();
}

Result<std::vector<const FileVersion*>> VersionTree::History(const Sha1Digest& id) const {
  std::vector<const FileVersion*> out;
  const FileVersion* node = Find(id);
  if (node == nullptr) {
    return NotFoundError(StrCat("unknown version ", id.ToHex()));
  }
  std::set<Sha1Digest> seen;  // defends against (corrupt) parent cycles
  while (node != nullptr) {
    if (!seen.insert(node->id).second) {
      return DataLossError("cycle in version history");
    }
    out.push_back(node);
    if (IsNullDigest(node->prev_id)) {
      break;
    }
    node = Find(node->prev_id);
  }
  return out;
}

std::vector<Conflict> VersionTree::DetectConflicts() const {
  std::vector<Conflict> out;

  // Type 1: multiple parentless versions sharing a file name.
  for (auto it = roots_.begin(); it != roots_.end();) {
    auto range_end = roots_.upper_bound(it->first);
    std::vector<Sha1Digest> ids;
    for (auto jt = it; jt != range_end; ++jt) {
      ids.push_back(jt->second);
    }
    if (ids.size() > 1) {
      out.push_back(Conflict{ConflictType::kSameName, it->first, std::move(ids)});
    }
    it = range_end;
  }

  // Type 2: any version with multiple children.
  for (auto it = children_.begin(); it != children_.end();) {
    auto range_end = children_.upper_bound(it->first);
    std::vector<Sha1Digest> ids;
    for (auto jt = it; jt != range_end; ++jt) {
      ids.push_back(jt->second);
    }
    if (ids.size() > 1) {
      const FileVersion* parent = Find(it->first);
      out.push_back(Conflict{ConflictType::kDivergedVersions,
                             parent != nullptr ? parent->file_name : "<unknown>",
                             std::move(ids)});
    }
    it = range_end;
  }
  return out;
}

std::vector<Conflict> VersionTree::DetectConflictsFor(const Sha1Digest& id) const {
  std::vector<Conflict> out;
  const FileVersion* node = Find(id);
  if (node == nullptr) {
    return out;
  }

  if (IsNullDigest(node->prev_id)) {
    // Type 1: another root with the same name but different id?
    std::vector<Sha1Digest> ids;
    auto [begin, end] = roots_.equal_range(node->file_name);
    for (auto it = begin; it != end; ++it) {
      ids.push_back(it->second);
    }
    if (ids.size() > 1) {
      out.push_back(Conflict{ConflictType::kSameName, node->file_name, std::move(ids)});
    }
  }

  // Type 2: walk up from the new node; any ancestor with several children
  // indicates divergence (paper §5.4: "traverse the tree upwards").
  const FileVersion* cursor = node;
  std::set<Sha1Digest> seen;
  while (cursor != nullptr && seen.insert(cursor->id).second) {
    if (!IsNullDigest(cursor->prev_id)) {
      const FileVersion* parent = Find(cursor->prev_id);
      if (parent != nullptr) {
        std::vector<const FileVersion*> siblings = Children(parent->id);
        if (siblings.size() > 1) {
          std::vector<Sha1Digest> ids;
          for (const FileVersion* s : siblings) {
            ids.push_back(s->id);
          }
          out.push_back(
              Conflict{ConflictType::kDivergedVersions, parent->file_name, std::move(ids)});
        }
      }
      cursor = parent;
    } else {
      break;
    }
  }
  return out;
}

std::vector<std::string> VersionTree::FileNames(bool include_deleted) const {
  // One pass over the name index (already name-ascending); a name is live
  // if any childless version of it is non-deleted.
  std::vector<std::string> out;
  for (auto it = by_name_.begin(); it != by_name_.end();) {
    auto range_end = by_name_.upper_bound(it->first);
    bool live = include_deleted;
    for (auto jt = it; !live && jt != range_end; ++jt) {
      live = children_.find(jt->second) == children_.end() &&
             !Find(jt->second)->deleted;
    }
    if (live) {
      out.push_back(it->first);
    }
    it = range_end;
  }
  return out;
}

Status VersionTree::UpdateShareLocations(const Sha1Digest& id,
                                         std::vector<ShareLocation> shares) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return NotFoundError(StrCat("unknown version ", id.ToHex()));
  }
  it->second.shares = std::move(shares);
  return OkStatus();
}

Status VersionTree::UpdateChunkShareDigests(const Sha1Digest& id,
                                            const Sha1Digest& chunk_id,
                                            std::vector<ShareDigest> digests) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return NotFoundError(StrCat("unknown version ", id.ToHex()));
  }
  // Every ChunkMap row with this id gets the digest set: duplicates within
  // a file reference the same stored shares.
  for (ChunkRecord& chunk : it->second.chunks) {
    if (chunk.id == chunk_id) {
      for (const ShareDigest& sd : digests) {
        chunk.SetShareDigest(sd.share_index, sd.digest);
      }
    }
  }
  return OkStatus();
}

std::vector<const FileVersion*> VersionTree::AllVersions() const {
  std::vector<const FileVersion*> out;
  out.reserve(nodes_.size());
  for (const auto& [id, version] : nodes_) {
    out.push_back(&version);
  }
  return out;
}

}  // namespace cyrus
