// The metadata version tree (paper §5.2, §5.4, Figures 6 and 8).
//
// All versions of all files form a forest under a dummy root: new files are
// first-level nodes, edits hang off their parent version. Because clients
// upload without locking, two situations create conflicts, detected by
// traversal after download:
//   1. same-name conflict: two parentless versions share a file name but
//      have different content ids;
//   2. diverged-version conflict: one version has multiple children (two
//      clients edited the same parent concurrently).
#ifndef SRC_META_VERSION_TREE_H_
#define SRC_META_VERSION_TREE_H_

#include <map>
#include <string>
#include <vector>

#include "src/meta/metadata.h"
#include "src/util/result.h"

namespace cyrus {

enum class ConflictType {
  kSameName,          // Figure 8, left: independent creations collide
  kDivergedVersions,  // Figure 8, right: concurrent edits of one parent
};

struct Conflict {
  ConflictType type;
  std::string file_name;
  // The sibling version ids involved (>= 2 entries).
  std::vector<Sha1Digest> versions;
};

class VersionTree {
 public:
  // Inserts a version node. Inserting an id already present is a no-op if
  // the content matches and kAlreadyExists if it differs (ids are content
  // hashes, so a mismatch means corruption).
  Status Insert(const FileVersion& version);

  bool Contains(const Sha1Digest& id) const;
  const FileVersion* Find(const Sha1Digest& id) const;
  size_t size() const { return nodes_.size(); }

  // Children of a version (versions naming it as parent).
  std::vector<const FileVersion*> Children(const Sha1Digest& id) const;

  // Leaf versions for a file name: versions with no children, following
  // either creation roots or edit chains. Deleted leaves are included
  // (the caller decides how to treat deletion markers).
  std::vector<const FileVersion*> Heads(std::string_view file_name) const;

  // The single live head of a file.
  //   kNotFound  - no version, or every head is deleted;
  //   kConflict  - multiple live heads (caller should surface conflicts).
  Result<const FileVersion*> Latest(std::string_view file_name) const;

  // Version chain from `id` back to its creation (newest first).
  Result<std::vector<const FileVersion*>> History(const Sha1Digest& id) const;

  // Every conflict in the tree (paper's distributed conflict detection).
  std::vector<Conflict> DetectConflicts() const;

  // Conflicts involving one newly-inserted version id only - what a client
  // checks when a new metadata object arrives during sync (Algorithm 3).
  std::vector<Conflict> DetectConflictsFor(const Sha1Digest& id) const;

  // Distinct file names, ascending; names whose every head is deleted are
  // excluded unless include_deleted.
  std::vector<std::string> FileNames(bool include_deleted = false) const;

  // All versions (arbitrary order), for sync-service diffing.
  std::vector<const FileVersion*> AllVersions() const;

  // Replaces a version's ShareMap (lazy share migration, paper §5.5).
  // Version ids hash file *content*, so relocating shares does not change
  // the id. kNotFound if the version is absent.
  Status UpdateShareLocations(const Sha1Digest& id, std::vector<ShareLocation> shares);

  // Records per-share digests on every ChunkMap row of `id` that references
  // `chunk_id` (a gather's legacy upgrade, or a scrub heal minting fresh
  // digests). Unknown share indices are appended; known ones overwritten.
  // kNotFound if the version is absent.
  Status UpdateChunkShareDigests(const Sha1Digest& id, const Sha1Digest& chunk_id,
                                 std::vector<ShareDigest> digests);

 private:
  std::map<Sha1Digest, FileVersion> nodes_;
  std::multimap<Sha1Digest, Sha1Digest> children_;          // parent -> child
  std::multimap<std::string, Sha1Digest, std::less<>> roots_;  // name -> parentless
  // name -> every version of that name. Heads()/FileNames() walk this index
  // instead of scanning nodes_ (a shard serving many files pays O(file's
  // versions), not O(tree)).
  std::multimap<std::string, Sha1Digest, std::less<>> by_name_;
};

}  // namespace cyrus

#endif  // SRC_META_VERSION_TREE_H_
