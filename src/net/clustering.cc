#include "src/net/clustering.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "src/net/union_find.h"
#include "src/util/strings.h"

namespace cyrus {

int RoutingTree::IndexOf(int topology_node) const {
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].topology_node == topology_node) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int RoutingTree::Height() const {
  int h = 0;
  for (const TreeNode& n : nodes) {
    h = std::max(h, n.depth);
  }
  return h;
}

std::string RoutingTree::Render(const Topology& topology) const {
  std::string out;
  // Depth-first with indentation.
  std::vector<std::pair<int, int>> stack = {{root, 0}};  // (index, depth)
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    out += std::string(static_cast<size_t>(depth) * 2, ' ');
    out += topology.node(nodes[idx].topology_node).name;
    out += "\n";
    // Push children in reverse so they render in order.
    const auto& children = nodes[idx].children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return out;
}

Result<RoutingTree> BuildRoutingTree(const Topology& topology, int client,
                                     const std::vector<int>& csp_nodes) {
  // Union of traceroute paths: collect the distinct weighted edges.
  struct Edge {
    int a;
    int b;
    double weight;
  };
  std::map<std::pair<int, int>, double> edge_weights;
  std::set<int> touched = {client};
  for (int csp : csp_nodes) {
    CYRUS_ASSIGN_OR_RETURN(std::vector<TracerouteHop> hops,
                           topology.Traceroute(client, csp));
    for (size_t i = 1; i < hops.size(); ++i) {
      const int a = std::min(hops[i - 1].node, hops[i].node);
      const int b = std::max(hops[i - 1].node, hops[i].node);
      edge_weights[{a, b}] = hops[i].rtt_ms - hops[i - 1].rtt_ms;
      touched.insert(hops[i - 1].node);
      touched.insert(hops[i].node);
    }
  }

  // Compact node ids.
  std::map<int, size_t> compact;
  std::vector<int> topo_of;
  for (int node : touched) {
    compact[node] = topo_of.size();
    topo_of.push_back(node);
  }

  // Kruskal MST. (Traceroute unions are usually already trees; the MST
  // makes the construction robust to path diversity.)
  std::vector<Edge> edges;
  edges.reserve(edge_weights.size());
  for (const auto& [key, w] : edge_weights) {
    edges.push_back(Edge{key.first, key.second, w});
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const Edge& x, const Edge& y) { return x.weight < y.weight; });
  UnionFind uf(topo_of.size());
  std::vector<std::vector<int>> adjacency(topo_of.size());
  for (const Edge& e : edges) {
    const size_t ca = compact[e.a];
    const size_t cb = compact[e.b];
    if (uf.Union(ca, cb)) {
      adjacency[ca].push_back(static_cast<int>(cb));
      adjacency[cb].push_back(static_cast<int>(ca));
    }
  }

  // Root at the client; BFS assigns parents and depths.
  RoutingTree tree;
  tree.nodes.resize(topo_of.size());
  for (size_t i = 0; i < topo_of.size(); ++i) {
    tree.nodes[i].topology_node = topo_of[i];
  }
  const size_t root_compact = compact[client];
  tree.root = static_cast<int>(root_compact);
  std::vector<bool> visited(topo_of.size(), false);
  std::queue<size_t> queue;
  queue.push(root_compact);
  visited[root_compact] = true;
  while (!queue.empty()) {
    const size_t u = queue.front();
    queue.pop();
    for (int v : adjacency[u]) {
      if (!visited[v]) {
        visited[v] = true;
        tree.nodes[v].parent = static_cast<int>(u);
        tree.nodes[v].depth = tree.nodes[u].depth + 1;
        tree.nodes[u].children.push_back(v);
        queue.push(static_cast<size_t>(v));
      }
    }
  }
  return tree;
}

Result<std::vector<int>> ClusterByLevel(const RoutingTree& tree,
                                        const std::vector<int>& csp_nodes, int level) {
  if (level < 0) {
    return InvalidArgumentError("cut level must be nonnegative");
  }
  std::vector<int> clusters(csp_nodes.size(), -1);
  std::map<int, int> anchor_to_cluster;  // tree index (or unique tag) -> cluster id
  int next_cluster = 0;
  for (size_t i = 0; i < csp_nodes.size(); ++i) {
    int idx = tree.IndexOf(csp_nodes[i]);
    if (idx < 0) {
      return NotFoundError(StrCat("CSP node ", csp_nodes[i], " not in routing tree"));
    }
    // Walk up to the ancestor at `level` (or stay put if shallower).
    while (tree.nodes[idx].depth > level) {
      idx = tree.nodes[idx].parent;
    }
    auto [it, inserted] = anchor_to_cluster.emplace(idx, next_cluster);
    if (inserted) {
      ++next_cluster;
    }
    clusters[i] = it->second;
  }
  return clusters;
}

Result<std::vector<int>> ClusterByPlatform(const RoutingTree& tree,
                                           const std::vector<int>& csp_nodes) {
  return ClusterByLevel(tree, csp_nodes, std::max(0, tree.Height() - 1));
}

}  // namespace cyrus
