// CSP platform clustering from traceroute paths (paper §4.1, Figure 3).
//
// The union of client->CSP traceroute paths forms a weighted graph; its
// minimum spanning tree, rooted at the client, is the routing tree. Cutting
// the tree horizontally at a depth level groups CSP endpoints by the
// subtree they fall in - CSPs behind a shared platform gateway land in the
// same cluster. CYRUS stores at most one share of a chunk per cluster to
// avoid correlated failures.
#ifndef SRC_NET_CLUSTERING_H_
#define SRC_NET_CLUSTERING_H_

#include <string>
#include <vector>

#include "src/net/topology.h"
#include "src/util/result.h"

namespace cyrus {

// The routing tree: MST of the union of traceroute paths, rooted at the
// client. Node ids refer to the originating Topology.
struct RoutingTree {
  struct TreeNode {
    int topology_node = 0;
    int parent = -1;            // index into `nodes`; -1 for the root
    int depth = 0;              // root is depth 0
    std::vector<int> children;  // indices into `nodes`
  };
  std::vector<TreeNode> nodes;
  int root = 0;

  // Index into `nodes` for a topology node id, or -1 if absent.
  int IndexOf(int topology_node) const;

  // Maximum depth over all nodes.
  int Height() const;

  // ASCII rendering (for the Figure 3 bench and debugging).
  std::string Render(const Topology& topology) const;
};

// Builds the routing tree by tracerouting from `client` to every CSP node
// and taking the MST of the union graph (Kruskal over link RTT weights).
Result<RoutingTree> BuildRoutingTree(const Topology& topology, int client,
                                     const std::vector<int>& csp_nodes);

// Clusters the CSPs by cutting the tree at `level`: two CSPs share a
// cluster iff they share an ancestor at that depth. Returns one cluster id
// per entry of csp_nodes, normalized to 0..k-1 in first-appearance order.
// CSPs shallower than `level` get singleton clusters.
Result<std::vector<int>> ClusterByLevel(const RoutingTree& tree,
                                        const std::vector<int>& csp_nodes, int level);

// Convenience: the finest level at which any two CSPs still share a
// cluster, i.e. platform granularity (the paper cuts just above the CSP
// leaves). Equivalent to ClusterByLevel(tree, csps, Height() - 1).
Result<std::vector<int>> ClusterByPlatform(const RoutingTree& tree,
                                           const std::vector<int>& csp_nodes);

}  // namespace cyrus

#endif  // SRC_NET_CLUSTERING_H_
