#include "src/net/providers.h"

namespace cyrus {

const std::vector<ProviderInfo>& PaperProviders() {
  static const std::vector<ProviderInfo> kProviders = {
      {"Amazon S3", "XML", "SOAP/REST", "AWS Signature", 235, true},
      {"Box", "JSON", "REST", "OAuth 2.0", 149, false},
      {"Dropbox", "JSON", "REST", "OAuth 2.0", 137, false},
      {"OneDrive", "JSON", "REST", "OAuth 2.0", 142, false},
      {"Google Drive", "JSON", "REST", "OAuth 2.0", 71, false},
      {"SugarSync", "XML", "REST", "OAuth-like", 146, false},
      {"CloudMine", "JSON", "REST", "ID/Password", 215, false},
      {"Rackspace", "XML/JSON", "REST", "API Key", 186, false},
      {"Copy", "JSON", "REST", "OAuth", 192, false},
      {"ShareFile", "JSON", "REST", "OAuth 2.0", 215, false},
      {"4Shared", "XML", "SOAP", "OAuth 1.0", 186, false},
      {"DigitalBucket", "XML", "REST", "ID/Password", 217, true},
      {"Bitcasa", "JSON", "REST", "OAuth 2.0", 139, true},
      {"Egnyte", "JSON", "REST", "OAuth 2.0", 153, false},
      {"MediaFire", "XML/JSON", "REST", "OAuth-like", 192, false},
      {"HP Cloud", "XML/JSON", "REST", "OpenStack Keystone V3", 210, false},
      {"CloudApp", "JSON", "REST", "HTTP Digest", 205, true},
      {"Safe Creative", "XML/JSON", "REST", "Two-step authentication", 295, true},
      {"FilesAnywhere", "XML", "SOAP", "Custom", 202, false},
      {"CenturyLink", "XML/JSON", "SOAP/REST", "SAML 2.0", 293, false},
  };
  return kProviders;
}

const std::vector<ProviderInfo>& PrototypeProviders() {
  static const std::vector<ProviderInfo> kPrototype = {
      PaperProviders()[2],  // Dropbox
      PaperProviders()[4],  // Google Drive
      PaperProviders()[3],  // OneDrive (SkyDrive at the time)
      PaperProviders()[1],  // Box
  };
  return kPrototype;
}

}  // namespace cyrus
