// The commercial-CSP catalog of paper Table 2.
//
// Twenty providers with their API style, protocol, authentication scheme,
// measured RTT from the paper's vantage point (Korea), and whether the
// provider's destination IPs resolve into Amazon's address space (the
// asterisked rows, used by the Figure 3 clustering experiment).
#ifndef SRC_NET_PROVIDERS_H_
#define SRC_NET_PROVIDERS_H_

#include <string_view>
#include <vector>

namespace cyrus {

struct ProviderInfo {
  std::string_view name;
  std::string_view format;     // XML / JSON
  std::string_view protocol;   // REST / SOAP
  std::string_view auth;       // OAuth 2.0, API key, ...
  double rtt_ms;               // measured RTT from the paper
  bool on_amazon;              // asterisk in Table 2
};

// The rows of Table 2, in the paper's order.
const std::vector<ProviderInfo>& PaperProviders();

// The four providers the prototype ships connectors for (paper §6).
const std::vector<ProviderInfo>& PrototypeProviders();

}  // namespace cyrus

#endif  // SRC_NET_PROVIDERS_H_
