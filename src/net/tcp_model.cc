#include "src/net/tcp_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cyrus {

double TcpThroughputBps(double rtt_ms, const TcpModelParams& params) {
  assert(rtt_ms > 0.0);
  const double rtt_s = rtt_ms / 1000.0;
  const double window_limit = params.window_bytes * 8.0 / rtt_s;
  const double loss_limit =
      (params.mss_bytes * 8.0 / rtt_s) * params.mathis_constant / std::sqrt(params.loss_rate);
  return std::min(window_limit, loss_limit);
}

double TcpThroughputMbps(double rtt_ms, const TcpModelParams& params) {
  return TcpThroughputBps(rtt_ms, params) / 1e6;
}

double RttForThroughputMbps(double mbps, const TcpModelParams& params) {
  assert(mbps > 0.0);
  // Invert the loss-limited regime; check the window limit afterwards.
  const double rtt_s =
      (params.mss_bytes * 8.0 * params.mathis_constant) / (std::sqrt(params.loss_rate) * mbps * 1e6);
  return rtt_s * 1000.0;
}

}  // namespace cyrus
