// TCP throughput estimation from path RTT (paper Table 2).
//
// The paper derives each CSP's achievable throughput from its measured RTT
// "assuming a 0.1% packet loss rate and 65,535 byte TCP window". Two
// regimes bound a long-lived TCP flow:
//   - receive-window limit:            W / RTT
//   - loss limit (Mathis et al. 1997): (MSS / RTT) * (C / sqrt(p))
// with C = sqrt(3/4) for delayed-ACK receivers. The achieved rate is the
// minimum of the two. With MSS = 1448 (1500 MTU minus IP/TCP headers and
// timestamps) this reproduces Table 2's numbers to the printed precision.
#ifndef SRC_NET_TCP_MODEL_H_
#define SRC_NET_TCP_MODEL_H_

#include <cstdint>

namespace cyrus {

struct TcpModelParams {
  double loss_rate = 0.001;          // p
  uint32_t window_bytes = 65535;     // receiver window W
  uint32_t mss_bytes = 1448;         // segment size
  double mathis_constant = 0.8660254037844386;  // sqrt(3/4), delayed ACKs
};

// Estimated steady-state throughput in bits/second for the given RTT.
// rtt_ms must be positive.
double TcpThroughputBps(double rtt_ms, const TcpModelParams& params = {});

// Convenience: the same value in Mbps (1e6 bits/s), as Table 2 prints it.
double TcpThroughputMbps(double rtt_ms, const TcpModelParams& params = {});

// Inverse model: the RTT (ms) at which the loss-limited rate equals
// `mbps`. Used by the trial benchmark to turn published per-CSP rates back
// into link parameters.
double RttForThroughputMbps(double mbps, const TcpModelParams& params = {});

}  // namespace cyrus

#endif  // SRC_NET_TCP_MODEL_H_
