#include "src/net/topology.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

#include "src/net/providers.h"
#include "src/util/strings.h"

namespace cyrus {

int Topology::AddNode(NodeKind kind, std::string name) {
  nodes_.push_back(TopologyNode{kind, std::move(name)});
  adjacency_.emplace_back();
  return static_cast<int>(nodes_.size()) - 1;
}

void Topology::AddLink(int a, int b, double latency_ms) {
  assert(a >= 0 && static_cast<size_t>(a) < nodes_.size());
  assert(b >= 0 && static_cast<size_t>(b) < nodes_.size());
  assert(latency_ms >= 0.0);
  adjacency_[a].push_back(Link{b, latency_ms});
  adjacency_[b].push_back(Link{a, latency_ms});
}

Result<std::vector<int>> Topology::ShortestPath(int src, int dst) const {
  if (src < 0 || dst < 0 || static_cast<size_t>(src) >= nodes_.size() ||
      static_cast<size_t>(dst) >= nodes_.size()) {
    return InvalidArgumentError("node id out of range");
  }
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(nodes_.size(), kInf);
  std::vector<int> prev(nodes_.size(), -1);
  using Entry = std::pair<double, int>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[src] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) {
      continue;
    }
    if (u == dst) {
      break;
    }
    for (const Link& link : adjacency_[u]) {
      const double nd = d + link.latency_ms;
      if (nd < dist[link.peer]) {
        dist[link.peer] = nd;
        prev[link.peer] = u;
        heap.emplace(nd, link.peer);
      }
    }
  }
  if (dist[dst] == kInf) {
    return NotFoundError(StrCat("no route from node ", src, " to node ", dst));
  }
  std::vector<int> path;
  for (int at = dst; at != -1; at = prev[at]) {
    path.push_back(at);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

Result<std::vector<TracerouteHop>> Topology::Traceroute(int src, int dst) const {
  CYRUS_ASSIGN_OR_RETURN(std::vector<int> path, ShortestPath(src, dst));
  std::vector<TracerouteHop> hops;
  hops.reserve(path.size());
  double one_way = 0.0;
  for (size_t i = 0; i < path.size(); ++i) {
    if (i > 0) {
      // Recover the link latency from the adjacency list.
      for (const Link& link : adjacency_[path[i - 1]]) {
        if (link.peer == path[i]) {
          one_way += link.latency_ms;
          break;
        }
      }
    }
    hops.push_back(TracerouteHop{path[i], 2.0 * one_way});
  }
  return hops;
}

ProviderTopology BuildProviderTopology(const std::vector<PlatformSpec>& platforms,
                                       double client_isp_latency_ms,
                                       double isp_backbone_latency_ms) {
  ProviderTopology out;
  Topology& topo = out.topology;
  out.client = topo.AddNode(NodeKind::kClient, "client");
  const int isp = topo.AddNode(NodeKind::kRouter, "isp");
  const int backbone = topo.AddNode(NodeKind::kRouter, "backbone");
  topo.AddLink(out.client, isp, client_isp_latency_ms);
  topo.AddLink(isp, backbone, isp_backbone_latency_ms);

  for (const PlatformSpec& platform : platforms) {
    const int gateway =
        topo.AddNode(NodeKind::kPlatformGateway, StrCat("gw-", platform.name));
    topo.AddLink(backbone, gateway, platform.backbone_latency_ms);
    for (const std::string& csp : platform.csps) {
      const int endpoint = topo.AddNode(NodeKind::kCspEndpoint, csp);
      topo.AddLink(gateway, endpoint, platform.intra_platform_latency_ms);
      out.csp_nodes.push_back(endpoint);
      out.csp_names.push_back(csp);
    }
  }
  return out;
}

ProviderTopology MakePaperTopology() {
  std::vector<PlatformSpec> platforms;
  PlatformSpec amazon;
  amazon.name = "amazon";
  for (const ProviderInfo& p : PaperProviders()) {
    // RTT-derived one-way backbone latency: the client-side hops contribute
    // a fixed 15 ms one-way, the rest comes from the platform link.
    const double platform_latency = std::max(1.0, p.rtt_ms / 2.0 - 15.0 - 1.0);
    if (p.on_amazon) {
      amazon.csps.emplace_back(p.name);
      // Amazon's gateway latency: keyed off the S3 row.
      if (p.name == "Amazon S3") {
        amazon.backbone_latency_ms = platform_latency;
      }
    } else {
      PlatformSpec solo;
      solo.name = StrCat("platform-", platforms.size());
      solo.csps.emplace_back(p.name);
      solo.backbone_latency_ms = platform_latency;
      platforms.push_back(std::move(solo));
    }
  }
  platforms.push_back(std::move(amazon));
  return BuildProviderTopology(platforms);
}

}  // namespace cyrus
