// A routed network topology simulator.
//
// CYRUS infers which CSPs share physical infrastructure by tracerouting to
// each provider and clustering the resulting routing tree (paper §4.1,
// Figure 3). The paper uses real traceroutes; offline we substitute this
// topology model: clients, ISP and backbone routers, platform gateways
// (one per physical cloud platform, e.g. "Amazon"), and CSP API endpoints.
// Traceroute returns the latency-shortest hop sequence, which is what the
// clustering consumes.
#ifndef SRC_NET_TOPOLOGY_H_
#define SRC_NET_TOPOLOGY_H_

#include <string>
#include <vector>

#include "src/util/result.h"
#include "src/util/rng.h"

namespace cyrus {

enum class NodeKind {
  kClient,
  kRouter,           // ISP or backbone
  kPlatformGateway,  // entry into a physical cloud platform
  kCspEndpoint,      // a provider's API endpoint
};

struct TopologyNode {
  NodeKind kind = NodeKind::kRouter;
  std::string name;
};

struct TracerouteHop {
  int node = 0;
  double rtt_ms = 0.0;  // cumulative round-trip time at this hop
};

class Topology {
 public:
  // Returns the new node's id.
  int AddNode(NodeKind kind, std::string name);

  // Undirected link with the given one-way latency.
  void AddLink(int a, int b, double latency_ms);

  size_t num_nodes() const { return nodes_.size(); }
  const TopologyNode& node(int id) const { return nodes_[id]; }

  // Latency-shortest node sequence from src to dst (inclusive), or
  // kNotFound if disconnected.
  Result<std::vector<int>> ShortestPath(int src, int dst) const;

  // Simulated traceroute: the shortest path annotated with cumulative RTTs
  // (2x the one-way latency, as ICMP echoes would measure).
  Result<std::vector<TracerouteHop>> Traceroute(int src, int dst) const;

 private:
  struct Link {
    int peer;
    double latency_ms;
  };
  std::vector<TopologyNode> nodes_;
  std::vector<std::vector<Link>> adjacency_;
};

// Specification for one physical cloud platform and the CSPs it hosts.
struct PlatformSpec {
  std::string name;
  std::vector<std::string> csps;
  // One-way latency from the backbone to this platform's gateway.
  double backbone_latency_ms = 20.0;
  // One-way latency from the gateway to each hosted CSP endpoint.
  double intra_platform_latency_ms = 1.0;
};

// Builds client -> ISP -> backbone -> platform gateways -> CSP endpoints.
// Returns the topology plus the node ids of the client and each CSP
// endpoint (in spec order, flattened platform by platform).
struct ProviderTopology {
  Topology topology;
  int client = 0;
  std::vector<int> csp_nodes;
  std::vector<std::string> csp_names;
};

ProviderTopology BuildProviderTopology(const std::vector<PlatformSpec>& platforms,
                                       double client_isp_latency_ms = 5.0,
                                       double isp_backbone_latency_ms = 10.0);

// The Figure 3 scenario: Table 2's twenty providers, with the five
// Amazon-hosted ones (asterisked rows) behind a shared "amazon" gateway and
// every other provider on its own platform.
ProviderTopology MakePaperTopology();

}  // namespace cyrus

#endif  // SRC_NET_TOPOLOGY_H_
