// Disjoint-set (union-find) with path compression and union by rank.
// Used by the minimum-spanning-tree construction in CSP clustering.
#ifndef SRC_NET_UNION_FIND_H_
#define SRC_NET_UNION_FIND_H_

#include <cstddef>
#include <numeric>
#include <vector>

namespace cyrus {

class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), rank_(n, 0), num_sets_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  // Merges the sets holding a and b; returns false if already joined.
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a);
    size_t rb = Find(b);
    if (ra == rb) {
      return false;
    }
    if (rank_[ra] < rank_[rb]) {
      std::swap(ra, rb);
    }
    parent_[rb] = ra;
    if (rank_[ra] == rank_[rb]) {
      ++rank_[ra];
    }
    --num_sets_;
    return true;
  }

  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }
  size_t num_sets() const { return num_sets_; }

 private:
  std::vector<size_t> parent_;
  std::vector<uint8_t> rank_;
  size_t num_sets_;
};

}  // namespace cyrus

#endif  // SRC_NET_UNION_FIND_H_
