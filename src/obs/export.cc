#include "src/obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <limits>

namespace cyrus {
namespace obs {
namespace {

// Shortest-round-trip double formatting; integers render without a
// trailing ".0" to match how Prometheus clients usually print.
std::string FormatNumber(double value) {
  if (std::isnan(value)) {
    return "NaN";
  }
  if (std::isinf(value)) {
    return value > 0 ? "+Inf" : "-Inf";
  }
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // %.17g always round-trips but is noisy; prefer the shortest precision
  // that parses back exactly.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == value) {
      return shorter;
    }
  }
  return buf;
}

// Prometheus label values escape backslash, double quote, and newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// JSON string escaping per RFC 8259.
std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// `{k1="v1",k2="v2"}` or "" for an empty label set. `extra` appends one
// more pair (used for histogram `le`).
std::string PrometheusLabels(const Labels& labels, const std::string& extra_key = "",
                             const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) {
      out += ',';
    }
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

const char* KindName(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string RenderPrometheusText(const RegistrySnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (m.name != last_family) {
      last_family = m.name;
      if (!m.help.empty()) {
        out += "# HELP " + m.name + " " + m.help + "\n";
      }
      out += "# TYPE " + m.name + " ";
      out += KindName(m.kind);
      out += '\n';
    }
    if (m.kind == InstrumentKind::kHistogram) {
      uint64_t cumulative = 0;
      for (size_t i = 0; i < m.histogram.bounds.size(); ++i) {
        cumulative += m.histogram.counts[i];
        out += m.name + "_bucket" +
               PrometheusLabels(m.labels, "le", FormatNumber(m.histogram.bounds[i])) +
               " " + FormatNumber(static_cast<double>(cumulative)) + "\n";
      }
      cumulative += m.histogram.overflow;
      out += m.name + "_bucket" + PrometheusLabels(m.labels, "le", "+Inf") + " " +
             FormatNumber(static_cast<double>(cumulative)) + "\n";
      out += m.name + "_sum" + PrometheusLabels(m.labels) + " " +
             FormatNumber(m.histogram.sum) + "\n";
      out += m.name + "_count" + PrometheusLabels(m.labels) + " " +
             FormatNumber(static_cast<double>(m.histogram.count)) + "\n";
    } else {
      out += m.name + PrometheusLabels(m.labels) + " " + FormatNumber(m.value) + "\n";
    }
  }
  return out;
}

std::string RenderMetricsJson(const RegistrySnapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  bool first_metric = true;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (!first_metric) {
      out += ',';
    }
    first_metric = false;
    out += "{\"name\":\"" + EscapeJson(m.name) + "\",\"type\":\"";
    out += KindName(m.kind);
    out += "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : m.labels) {
      if (!first_label) {
        out += ',';
      }
      first_label = false;
      out += "\"" + EscapeJson(k) + "\":\"" + EscapeJson(v) + "\"";
    }
    out += '}';
    if (m.kind == InstrumentKind::kHistogram) {
      out += ",\"count\":" + FormatNumber(static_cast<double>(m.histogram.count));
      out += ",\"sum\":" + FormatNumber(m.histogram.sum);
      out += ",\"p50\":" + FormatNumber(m.histogram.Percentile(50));
      out += ",\"p95\":" + FormatNumber(m.histogram.Percentile(95));
      out += ",\"p99\":" + FormatNumber(m.histogram.Percentile(99));
      out += ",\"buckets\":[";
      for (size_t i = 0; i < m.histogram.bounds.size(); ++i) {
        if (i != 0) {
          out += ',';
        }
        out += "{\"le\":" + FormatNumber(m.histogram.bounds[i]) +
               ",\"count\":" + FormatNumber(static_cast<double>(m.histogram.counts[i])) +
               "}";
      }
      if (!m.histogram.bounds.empty()) {
        out += ',';
      }
      out += "{\"le\":\"+Inf\",\"count\":" +
             FormatNumber(static_cast<double>(m.histogram.overflow)) + "}]";
    } else {
      out += ",\"value\":" + FormatNumber(m.value);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string RenderPrometheusText(const MetricsRegistry& registry) {
  return RenderPrometheusText(registry.Snapshot());
}

std::string RenderMetricsJson(const MetricsRegistry& registry) {
  return RenderMetricsJson(registry.Snapshot());
}

std::string RenderTraceText(const Trace& trace) {
  std::string out = trace.op;
  if (!trace.detail.empty()) {
    out += " " + trace.detail;
  }
  out += " (" + FormatNumber(trace.total_ms) + " ms)\n";
  for (const TraceSpan& span : trace.spans) {
    out.append(2 + 2 * static_cast<size_t>(span.depth), ' ');
    out += span.name + ": " + FormatNumber(span.duration_ms) + " ms";
    if (span.bytes > 0) {
      out += " (" + FormatNumber(static_cast<double>(span.bytes)) + " B)";
    }
    out += '\n';
  }
  return out;
}

}  // namespace obs
}  // namespace cyrus
