// Exposition formats for a MetricsRegistry snapshot.
//
// Two surfaces, both pure functions over RegistrySnapshot so they can be
// golden-tested without a registry:
//   - RenderPrometheusText: the text format Prometheus scrapes
//     (`# HELP` / `# TYPE` headers, `_bucket{le=...}` / `_sum` / `_count`
//     series for histograms).
//   - RenderMetricsJson: a JSON document with the same data plus computed
//     p50/p95/p99 per histogram, for benches and programmatic consumers.
//
// cyrus_obs depends only on the standard library, so the JSON here is
// rendered by hand (escaping per RFC 8259); src/rest's JsonValue parses it
// back in tests.
#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace cyrus {
namespace obs {

std::string RenderPrometheusText(const RegistrySnapshot& snapshot);
std::string RenderMetricsJson(const RegistrySnapshot& snapshot);

// Convenience: snapshot + render in one call.
std::string RenderPrometheusText(const MetricsRegistry& registry);
std::string RenderMetricsJson(const MetricsRegistry& registry);

// Human-readable timeline of one trace (indented by span depth), used by
// benches and the README example.
std::string RenderTraceText(const Trace& trace);

}  // namespace obs
}  // namespace cyrus

#endif  // SRC_OBS_EXPORT_H_
