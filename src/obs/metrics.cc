#include "src/obs/metrics.h"

#include <algorithm>

namespace cyrus {
namespace obs {
namespace {

// Sorted-by-key copy; exposition and map keys both want a canonical order.
Labels Canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

// Map key for one label set. '\x1f' cannot appear in sane label text, so
// the encoding is injective enough for registry lookups.
std::string LabelKey(const Labels& labels) {
  std::string key;
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x1f';
    key += v;
    key += '\x1f';
  }
  return key;
}

// Detached instruments returned on kind mismatch: recording into them is
// harmless and they are never exported.
Counter* DummyCounter() {
  static Counter counter;
  return &counter;
}
Gauge* DummyGauge() {
  static Gauge gauge;
  return &gauge;
}
Histogram* DummyHistogram() {
  static Histogram histogram(DefaultLatencyBucketsMs());
  return &histogram;
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  // Upper edges must be strictly ascending for bucket search + quantile
  // interpolation; sorting (with dedup) repairs a careless caller.
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (counts_.size() != bounds_.size() + 1) {
    counts_ = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Observe(double value) {
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.reserve(bounds_.size());
  for (size_t i = 0; i < bounds_.size(); ++i) {
    snapshot.counts.push_back(counts_[i].load(std::memory_order_relaxed));
  }
  snapshot.overflow = counts_[bounds_.size()].load(std::memory_order_relaxed);
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  return snapshot;
}

void Histogram::ResetForTest() {
  for (auto& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based), then walk the cumulative
  // counts to the containing bucket.
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bounds.size(); ++i) {
    const uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= rank && counts[i] > 0) {
      // Linear interpolation inside [lower_edge, bounds[i]].
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double fraction =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(counts[i]);
      return lower + (bounds[i] - lower) * std::min(1.0, std::max(0.0, fraction));
    }
    cumulative = next;
  }
  // Target sits in the overflow bucket: report the last finite edge (the
  // histogram cannot resolve beyond it).
  return bounds.empty() ? 0.0 : bounds.back();
}

std::vector<double> ExponentialBuckets(double start, double factor, size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double edge = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

const std::vector<double>& DefaultLatencyBucketsMs() {
  static const std::vector<double> kBounds = ExponentialBuckets(0.01, 4.0, 13);
  return kBounds;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry::Family* MetricsRegistry::GetFamily(std::string_view name,
                                                    InstrumentKind kind,
                                                    std::string_view help) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.kind = kind;
    family.help = std::string(help);
    it = families_.emplace(std::string(name), std::move(family)).first;
  }
  if (it->second.kind != kind) {
    return nullptr;  // name reused across kinds: caller gets a dummy
  }
  if (it->second.help.empty() && !help.empty()) {
    it->second.help = std::string(help);
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name, Labels labels,
                                     std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family* family = GetFamily(name, InstrumentKind::kCounter, help);
  if (family == nullptr) {
    return DummyCounter();
  }
  Labels canonical = Canonical(std::move(labels));
  const std::string key = LabelKey(canonical);
  auto it = family->counters.find(key);
  if (it == family->counters.end()) {
    it = family->counters.emplace(key, std::make_unique<Counter>()).first;
    family->label_sets.emplace(key, std::move(canonical));
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, Labels labels,
                                 std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family* family = GetFamily(name, InstrumentKind::kGauge, help);
  if (family == nullptr) {
    return DummyGauge();
  }
  Labels canonical = Canonical(std::move(labels));
  const std::string key = LabelKey(canonical);
  auto it = family->gauges.find(key);
  if (it == family->gauges.end()) {
    it = family->gauges.emplace(key, std::make_unique<Gauge>()).first;
    family->label_sets.emplace(key, std::move(canonical));
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name, Labels labels,
                                         std::vector<double> bounds,
                                         std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family* family = GetFamily(name, InstrumentKind::kHistogram, help);
  if (family == nullptr) {
    return DummyHistogram();
  }
  Labels canonical = Canonical(std::move(labels));
  const std::string key = LabelKey(canonical);
  auto it = family->histograms.find(key);
  if (it == family->histograms.end()) {
    if (bounds.empty()) {
      bounds = DefaultLatencyBucketsMs();
    }
    it = family->histograms.emplace(key, std::make_unique<Histogram>(std::move(bounds)))
             .first;
    family->label_sets.emplace(key, std::move(canonical));
  }
  return it->second.get();
}

RegistrySnapshot MetricsRegistry::Snapshot() const { return Snapshot(""); }

RegistrySnapshot MetricsRegistry::Snapshot(std::string_view prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snapshot;
  for (const auto& [name, family] : families_) {
    if (name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    auto base = [&](const std::string& key) {
      MetricSnapshot m;
      m.name = name;
      m.help = family.help;
      m.kind = family.kind;
      auto labels = family.label_sets.find(key);
      if (labels != family.label_sets.end()) {
        m.labels = labels->second;
      }
      return m;
    };
    for (const auto& [key, counter] : family.counters) {
      MetricSnapshot m = base(key);
      m.value = static_cast<double>(counter->value());
      snapshot.metrics.push_back(std::move(m));
    }
    for (const auto& [key, gauge] : family.gauges) {
      MetricSnapshot m = base(key);
      m.value = gauge->value();
      snapshot.metrics.push_back(std::move(m));
    }
    for (const auto& [key, histogram] : family.histograms) {
      MetricSnapshot m = base(key);
      m.histogram = histogram->Snapshot();
      snapshot.metrics.push_back(std::move(m));
    }
  }
  return snapshot;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, family] : families_) {
    for (auto& [key, counter] : family.counters) {
      counter->ResetForTest();
    }
    for (auto& [key, gauge] : family.gauges) {
      gauge->ResetForTest();
    }
    for (auto& [key, histogram] : family.histograms) {
      histogram->ResetForTest();
    }
  }
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace obs
}  // namespace cyrus
