// Process-wide metrics: counters, gauges, and fixed-bucket histograms.
//
// The paper evaluates CYRUS almost entirely through measurement (per-CSP
// latency distributions, completion-time CDFs, share balance); this module
// gives the reproduction the same visibility into itself. Design rules:
//
//   - Recording is lock-free: counters and gauges are single atomics,
//     histograms are an array of per-bucket atomics. Registration (name +
//     label set -> instrument) takes a mutex but callers cache the returned
//     pointer, so the hot path never touches the registry again.
//   - Instruments are never destroyed once registered; returned pointers
//     stay valid for the registry's lifetime (tests reset *values*, not
//     identity).
//   - cyrus_obs sits below src/util so every layer (retry, thread pool,
//     connectors, client, repair, rest) can record without dependency
//     cycles. It therefore depends on nothing but the standard library.
//
// Exposition (Prometheus text / JSON) lives in src/obs/export.h and works
// on the value snapshot types declared here.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cyrus {
namespace obs {

// Label set attached to one instrument, e.g. {{"csp", "dropbox"}, {"op",
// "upload"}}. Order-insensitive: the registry sorts by key internally.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t by = 1) { value_.fetch_add(by, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous value that can move both ways (queue depth, accumulated
// virtual milliseconds). Doubles so it can also carry fractional totals.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// One histogram's values at a point in time. `counts[i]` is the number of
// observations <= bounds[i] and > bounds[i-1]; `overflow` is everything
// above the last bound.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t overflow = 0;
  uint64_t count = 0;
  double sum = 0.0;

  // Quantile estimate (q in [0, 1]) by linear interpolation inside the
  // containing bucket; the overflow bucket reports the last finite bound.
  // Returns 0 for an empty histogram.
  double Quantile(double q) const;
  double Percentile(double pct) const { return Quantile(pct / 100.0); }
};

// Fixed-bucket histogram. Bucket bounds are upper edges in ascending
// order; an implicit +Inf bucket catches the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);
  HistogramSnapshot Snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }
  void ResetForTest();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> counts_;  // bounds_.size() + 1 (overflow last)
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// `count` upper bounds growing geometrically from `start` by `factor`.
std::vector<double> ExponentialBuckets(double start, double factor, size_t count);

// Default latency buckets in milliseconds: 16 buckets from 0.01 ms to
// ~5 min, wide enough for in-process simulated calls and real WAN RTTs.
const std::vector<double>& DefaultLatencyBucketsMs();

enum class InstrumentKind { kCounter, kGauge, kHistogram };

// Value snapshot of one instrument (exposition input).
struct MetricSnapshot {
  std::string name;
  std::string help;
  InstrumentKind kind = InstrumentKind::kCounter;
  Labels labels;
  double value = 0.0;            // counters and gauges
  HistogramSnapshot histogram;   // histograms only
};

struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;  // grouped by name, label-sorted
};

// Name -> labeled instruments. One registry is usually enough per process
// (Default()); tests build private registries for isolation.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. The first call for a name fixes its kind and help
  // text; later calls with the same name must use the same kind (a
  // mismatch returns a detached dummy instrument so the caller never
  // crashes, and the mistake shows up as a frozen metric).
  Counter* GetCounter(std::string_view name, Labels labels = {},
                      std::string_view help = "");
  Gauge* GetGauge(std::string_view name, Labels labels = {},
                  std::string_view help = "");
  Histogram* GetHistogram(std::string_view name, Labels labels = {},
                          std::vector<double> bounds = {},
                          std::string_view help = "");

  RegistrySnapshot Snapshot() const;

  // Snapshot restricted to families whose name starts with `prefix` (the
  // gateway's stats endpoint serves Snapshot("cyrus_gateway_") rather than
  // the whole process registry).
  RegistrySnapshot Snapshot(std::string_view prefix) const;

  // Zeroes every registered instrument, keeping identity (cached pointers
  // stay valid). For tests that share the process-wide default registry.
  void ResetForTest();

  // The process-wide registry that instrumented components use unless
  // handed a specific one.
  static MetricsRegistry& Default();

 private:
  struct Family {
    InstrumentKind kind;
    std::string help;
    // Serialized sorted label set -> instrument (exactly one of the three
    // pointers is set, matching `kind`).
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    std::map<std::string, Labels> label_sets;
  };

  Family* GetFamily(std::string_view name, InstrumentKind kind, std::string_view help);

  mutable std::mutex mutex_;
  std::map<std::string, Family, std::less<>> families_;
};

}  // namespace obs
}  // namespace cyrus

#endif  // SRC_OBS_METRICS_H_
