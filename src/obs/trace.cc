#include "src/obs/trace.h"

#include <algorithm>
#include <utility>

namespace cyrus {
namespace obs {

const TraceSpan* Trace::FindSpan(std::string_view name) const {
  for (const TraceSpan& span : spans) {
    if (span.name == name) {
      return &span;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// TraceCollector
// ---------------------------------------------------------------------------

TraceCollector::TraceCollector(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {}

void TraceCollector::Record(Trace trace) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_recorded_;
  ring_.push_back(std::move(trace));
  while (ring_.size() > capacity_) {
    ring_.pop_front();
  }
}

std::vector<Trace> TraceCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<Trace>(ring_.begin(), ring_.end());
}

bool TraceCollector::Latest(std::string_view op, Trace* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->op == op) {
      *out = *it;
      return true;
    }
  }
  return false;
}

uint64_t TraceCollector::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_;
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  total_recorded_ = 0;
}

TraceCollector& TraceCollector::Default() {
  static TraceCollector* collector = new TraceCollector();  // never destroyed
  return *collector;
}

// ---------------------------------------------------------------------------
// ScopedSpan
// ---------------------------------------------------------------------------

ScopedSpan& ScopedSpan::operator=(ScopedSpan&& other) noexcept {
  if (this != &other) {
    End();
    builder_ = other.builder_;
    index_ = other.index_;
    other.builder_ = nullptr;
  }
  return *this;
}

void ScopedSpan::AddBytes(uint64_t bytes) {
  if (builder_ != nullptr) {
    builder_->AddSpanBytes(index_, bytes);
  }
}

void ScopedSpan::End() {
  if (builder_ != nullptr) {
    builder_->CloseSpan(index_);
    builder_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// TraceBuilder
// ---------------------------------------------------------------------------

TraceBuilder::TraceBuilder(TraceCollector* collector, std::string op, std::string detail)
    : collector_(collector), start_(std::chrono::steady_clock::now()) {
  trace_.op = std::move(op);
  trace_.detail = std::move(detail);
}

TraceBuilder::~TraceBuilder() {
  if (collector_ == nullptr) {
    return;
  }
  trace_.total_ms = ElapsedMs();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    trace_.spans.reserve(spans_.size());
    for (OpenSpan& open : spans_) {
      if (open.open) {
        // Leaked handle (early return): close at trace end.
        open.span.duration_ms = trace_.total_ms - open.span.start_ms;
      }
      trace_.spans.push_back(std::move(open.span));
    }
  }
  collector_->Record(std::move(trace_));
}

double TraceBuilder::ElapsedMs() const {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start_)
      .count();
}

ScopedSpan TraceBuilder::Span(std::string name) {
  if (collector_ == nullptr) {
    return ScopedSpan();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  OpenSpan open;
  open.span.name = std::move(name);
  open.span.depth = open_count_;
  open.span.start_ms = ElapsedMs();
  open.open = true;
  spans_.push_back(std::move(open));
  ++open_count_;
  return ScopedSpan(this, spans_.size() - 1);
}

void TraceBuilder::CloseSpan(size_t index) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= spans_.size() || !spans_[index].open) {
    return;
  }
  OpenSpan& open = spans_[index];
  open.span.duration_ms = ElapsedMs() - open.span.start_ms;
  open.open = false;
  if (open_count_ > 0) {
    --open_count_;
  }
}

void TraceBuilder::AddSpanBytes(size_t index, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index < spans_.size()) {
    spans_[index].span.bytes += bytes;
  }
}

}  // namespace obs
}  // namespace cyrus
