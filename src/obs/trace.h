// Lightweight scoped trace spans for pipeline operations.
//
// Each top-level API call (Put / Get / ScrubOnce) owns one TraceBuilder;
// the stages it passes through (chunking -> encode -> place -> per-CSP
// upload -> metadata publish) open scoped spans on it. Completed traces
// land in a fixed-capacity ring (TraceCollector), cheap enough to leave on
// in production and deep enough for a dashboard's "last N operations"
// timeline. Durations are wall-clock milliseconds from a steady clock:
// CYRUS's *transfer* timing is virtual (the flow simulator prices it), but
// the pipeline's own compute stages are real work worth profiling.
//
// Span depth reflects how many spans were open when a span started, so a
// sequentially nested timeline renders as an indented tree. Spans opened
// concurrently from transfer-pool threads are recorded safely (the builder
// locks) but share the depth of their common parent stage.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace cyrus {
namespace obs {

struct TraceSpan {
  std::string name;
  uint32_t depth = 0;       // open spans when this one started
  double start_ms = 0.0;    // offset from the trace's start
  double duration_ms = 0.0;
  uint64_t bytes = 0;       // optional payload size annotation
};

struct Trace {
  std::string op;       // "Put", "Get", "ScrubOnce", ...
  std::string detail;   // file name or target, free-form
  double total_ms = 0.0;
  std::vector<TraceSpan> spans;  // in span-open order

  // First span with this name, or nullptr.
  const TraceSpan* FindSpan(std::string_view name) const;
};

// Thread-safe ring of the most recent completed traces.
class TraceCollector {
 public:
  explicit TraceCollector(size_t capacity = 64);

  void Record(Trace trace);
  std::vector<Trace> Snapshot() const;
  // Most recent trace for `op`; false when none is buffered.
  bool Latest(std::string_view op, Trace* out) const;
  size_t capacity() const { return capacity_; }
  uint64_t total_recorded() const;
  void Clear();

  static TraceCollector& Default();

 private:
  mutable std::mutex mutex_;
  size_t capacity_;
  uint64_t total_recorded_ = 0;
  std::deque<Trace> ring_;
};

class TraceBuilder;

// RAII span handle: closes its span on destruction. Movable, not copyable.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(TraceBuilder* builder, size_t index) : builder_(builder), index_(index) {}
  ScopedSpan(ScopedSpan&& other) noexcept { *this = std::move(other); }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept;
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { End(); }

  // Attaches a byte count to the span (adds across calls).
  void AddBytes(uint64_t bytes);
  // Closes early (idempotent).
  void End();

 private:
  TraceBuilder* builder_ = nullptr;
  size_t index_ = 0;
};

// Builds one trace; records it into the collector on destruction. A null
// collector makes every operation a cheap no-op, so call sites never
// branch on "is tracing on".
class TraceBuilder {
 public:
  TraceBuilder(TraceCollector* collector, std::string op, std::string detail);
  TraceBuilder(const TraceBuilder&) = delete;
  TraceBuilder& operator=(const TraceBuilder&) = delete;
  ~TraceBuilder();

  // Opens a span; it closes when the returned handle dies.
  ScopedSpan Span(std::string name);

  bool enabled() const { return collector_ != nullptr; }

 private:
  friend class ScopedSpan;

  struct OpenSpan {
    TraceSpan span;
    bool open = false;
  };

  double ElapsedMs() const;
  void CloseSpan(size_t index);
  void AddSpanBytes(size_t index, uint64_t bytes);

  TraceCollector* collector_;
  std::chrono::steady_clock::time_point start_;
  Trace trace_;
  mutable std::mutex mutex_;
  std::vector<OpenSpan> spans_;
  uint32_t open_count_ = 0;
};

}  // namespace obs
}  // namespace cyrus

#endif  // SRC_OBS_TRACE_H_
