#include "src/opt/download_selector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/opt/milp.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

// Completion time of a load vector under the optimal static bandwidth split:
// y = max( sum L / beta, max_c L_c / beta_bar_c ).
double CompletionTime(const std::vector<double>& loads, const DownloadProblem& problem) {
  double total = 0.0;
  double bottleneck = 0.0;
  for (size_t c = 0; c < loads.size(); ++c) {
    total += loads[c];
    if (loads[c] > 0.0) {
      bottleneck = std::max(bottleneck, loads[c] / problem.csp_bandwidth[c]);
    }
  }
  if (problem.client_bandwidth > 0.0) {
    bottleneck = std::max(bottleneck, total / problem.client_bandwidth);
  }
  return bottleneck;
}

}  // namespace

Status DownloadSelector::Validate(const DownloadProblem& problem) {
  if (problem.t == 0) {
    return InvalidArgumentError("t must be positive");
  }
  for (double bw : problem.csp_bandwidth) {
    if (bw <= 0.0) {
      return InvalidArgumentError("every CSP bandwidth must be positive");
    }
  }
  for (size_t r = 0; r < problem.chunks.size(); ++r) {
    const DownloadChunk& chunk = problem.chunks[r];
    if (chunk.stored_at.size() < problem.t) {
      return FailedPreconditionError(
          StrCat("chunk ", r, " has shares on only ", chunk.stored_at.size(),
                 " CSPs but t=", problem.t));
    }
    for (int c : chunk.stored_at) {
      if (c < 0 || static_cast<size_t>(c) >= problem.csp_bandwidth.size()) {
        return InvalidArgumentError(StrCat("chunk ", r, " references unknown CSP ", c));
      }
    }
  }
  return OkStatus();
}

DownloadAssignment FinalizeAssignment(const DownloadProblem& problem,
                                      std::vector<std::vector<int>> selected) {
  std::vector<double> loads(problem.csp_bandwidth.size(), 0.0);
  for (size_t r = 0; r < selected.size(); ++r) {
    for (int c : selected[r]) {
      loads[c] += problem.chunks[r].share_bytes;
    }
  }
  DownloadAssignment out;
  out.selected = std::move(selected);
  out.predicted_seconds = CompletionTime(loads, problem);
  out.allocated_bandwidth.assign(loads.size(), 0.0);
  if (out.predicted_seconds > 0.0) {
    for (size_t c = 0; c < loads.size(); ++c) {
      out.allocated_bandwidth[c] = loads[c] / out.predicted_seconds;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// CYRUS optimizer (Algorithm 1).
// ---------------------------------------------------------------------------

namespace {

// Algorithm 1 solves R MILPs over O(R*C) dense variables: past a few dozen
// chunks the simplex tableaus grow cubically and a single Get's selection
// takes longer than the download it optimizes (a 2 MB file at test chunk
// sizes spent minutes here). Above this cap we switch to the load-aware
// greedy below: with many chunks the sizes are near-uniform and balancing
// marginal load converges to the same fluid optimum the LP finds, at
// O(R*C log C).
constexpr size_t kMaxExactChunks = 64;

// Picks the t feasible CSPs that minimize the resulting per-CSP bottleneck
// (load + share)/bandwidth, charging the share to each pick. Chunks are
// visited in decreasing size order, mirroring the LP path's fixing order.
std::vector<std::vector<int>> GreedyBalancedAssign(const DownloadProblem& problem,
                                                   const std::vector<size_t>& order) {
  std::vector<double> loads(problem.csp_bandwidth.size(), 0.0);
  std::vector<std::vector<int>> selected(problem.chunks.size());
  for (size_t r : order) {
    const double share = problem.chunks[r].share_bytes;
    std::vector<int> pool = problem.chunks[r].stored_at;
    for (uint32_t k = 0; k < problem.t; ++k) {
      auto best = std::min_element(
          pool.begin() + k, pool.end(), [&](int a, int b) {
            return (loads[a] + share) / problem.csp_bandwidth[a] <
                   (loads[b] + share) / problem.csp_bandwidth[b];
          });
      std::swap(pool[k], *best);
      selected[r].push_back(pool[k]);
      loads[pool[k]] += share;
    }
  }
  return selected;
}

}  // namespace

Result<DownloadAssignment> OptimalDownloadSelector::Select(
    const DownloadProblem& problem) {
  CYRUS_RETURN_IF_ERROR(Validate(problem));
  const size_t R = problem.chunks.size();
  const size_t C = problem.csp_bandwidth.size();
  if (R == 0) {
    return FinalizeAssignment(problem, {});
  }

  // Variable layout per LP: y at index 0, then one d variable per feasible
  // (chunk, CSP) pair for chunks not yet fixed. Loads of already-fixed
  // chunks enter as constants.
  std::vector<std::vector<int>> fixed(R);
  std::vector<double> fixed_loads(C, 0.0);

  // Process large chunks first: their placement constrains the bottleneck
  // most, and Algorithm 1's quality depends on fixing dominant decisions
  // early. (For equal-size chunks this is the paper's natural order.)
  std::vector<size_t> order(R);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return problem.chunks[a].share_bytes > problem.chunks[b].share_bytes;
  });

  if (R > kMaxExactChunks) {
    return FinalizeAssignment(problem, GreedyBalancedAssign(problem, order));
  }

  for (size_t step = 0; step < R; ++step) {
    const size_t eta = order[step];

    // Build the LP over y and the d variables of all not-yet-fixed chunks.
    std::vector<size_t> free_chunks;
    for (size_t s = step; s < R; ++s) {
      free_chunks.push_back(order[s]);
    }

    // var_index[r][k]: LP variable for chunk r's k-th feasible CSP.
    size_t num_vars = 1;
    std::vector<std::vector<size_t>> var_index(R);
    for (size_t r : free_chunks) {
      var_index[r].resize(problem.chunks[r].stored_at.size());
      for (size_t k = 0; k < var_index[r].size(); ++k) {
        var_index[r][k] = num_vars++;
      }
    }

    LpProblem lp;
    lp.num_vars = num_vars;
    lp.objective.assign(num_vars, 0.0);
    lp.objective[0] = 1.0;  // minimize y

    // Per-CSP bottleneck rows: (fixed_load_c + sum b_r d_rc) / beta_bar_c <= y.
    for (size_t c = 0; c < C; ++c) {
      std::vector<double> coeffs(num_vars, 0.0);
      coeffs[0] = -problem.csp_bandwidth[c];
      bool any = fixed_loads[c] > 0.0;
      for (size_t r : free_chunks) {
        const auto& stored = problem.chunks[r].stored_at;
        for (size_t k = 0; k < stored.size(); ++k) {
          if (stored[k] == static_cast<int>(c)) {
            coeffs[var_index[r][k]] = problem.chunks[r].share_bytes;
            any = true;
          }
        }
      }
      if (any) {
        lp.AddLessEqual(std::move(coeffs), -fixed_loads[c]);
      }
    }
    // Client-cap row: (sum of all loads) / beta <= y.
    if (problem.client_bandwidth > 0.0) {
      std::vector<double> coeffs(num_vars, 0.0);
      coeffs[0] = -problem.client_bandwidth;
      double fixed_total = std::accumulate(fixed_loads.begin(), fixed_loads.end(), 0.0);
      for (size_t r : free_chunks) {
        for (size_t k = 0; k < var_index[r].size(); ++k) {
          coeffs[var_index[r][k]] = problem.chunks[r].share_bytes;
        }
      }
      lp.AddLessEqual(std::move(coeffs), -fixed_total);
    }
    // Feasibility: each free chunk selects exactly t shares; d in [0,1].
    for (size_t r : free_chunks) {
      std::vector<double> coeffs(num_vars, 0.0);
      for (size_t k = 0; k < var_index[r].size(); ++k) {
        coeffs[var_index[r][k]] = 1.0;
        lp.AddUpperBound(var_index[r][k], 1.0);
      }
      lp.AddEqual(std::move(coeffs), static_cast<double>(problem.t));
    }

    // Integrality on chunk eta only (Algorithm 1 line 4), branch-and-bound.
    std::vector<size_t> binary_vars;
    for (size_t k = 0; k < var_index[eta].size(); ++k) {
      binary_vars.push_back(var_index[eta][k]);
    }
    CYRUS_ASSIGN_OR_RETURN(LpSolution solution, SolveBinaryMilp(lp, binary_vars));

    // Fix chunk eta's selection (Algorithm 1 line 6).
    for (size_t k = 0; k < var_index[eta].size(); ++k) {
      if (solution.x[var_index[eta][k]] > 0.5) {
        const int csp = problem.chunks[eta].stored_at[k];
        fixed[eta].push_back(csp);
        fixed_loads[csp] += problem.chunks[eta].share_bytes;
      }
    }
    if (fixed[eta].size() != problem.t) {
      return InternalError(StrCat("selector fixed ", fixed[eta].size(),
                                  " shares for chunk ", eta, ", expected ", problem.t));
    }
  }

  return FinalizeAssignment(problem, std::move(fixed));
}

// ---------------------------------------------------------------------------
// Baselines.
// ---------------------------------------------------------------------------

Result<DownloadAssignment> RandomDownloadSelector::Select(const DownloadProblem& problem) {
  CYRUS_RETURN_IF_ERROR(Validate(problem));
  std::vector<std::vector<int>> selected(problem.chunks.size());
  for (size_t r = 0; r < problem.chunks.size(); ++r) {
    std::vector<int> pool = problem.chunks[r].stored_at;
    // Partial Fisher-Yates: draw t distinct CSPs uniformly.
    for (uint32_t k = 0; k < problem.t; ++k) {
      const size_t j = k + rng_.NextBelow(pool.size() - k);
      std::swap(pool[k], pool[j]);
      selected[r].push_back(pool[k]);
    }
  }
  return FinalizeAssignment(problem, std::move(selected));
}

Result<DownloadAssignment> RoundRobinDownloadSelector::Select(
    const DownloadProblem& problem) {
  CYRUS_RETURN_IF_ERROR(Validate(problem));
  const size_t C = problem.csp_bandwidth.size();
  std::vector<std::vector<int>> selected(problem.chunks.size());
  for (size_t r = 0; r < problem.chunks.size(); ++r) {
    const auto& stored = problem.chunks[r].stored_at;
    // Walk the global CSP ring from the cursor, taking feasible CSPs.
    size_t probe = cursor_;
    while (selected[r].size() < problem.t) {
      const int candidate = static_cast<int>(probe % C);
      if (std::find(stored.begin(), stored.end(), candidate) != stored.end() &&
          std::find(selected[r].begin(), selected[r].end(), candidate) ==
              selected[r].end()) {
        selected[r].push_back(candidate);
      }
      ++probe;
    }
    cursor_ = (cursor_ + 1) % C;
  }
  return FinalizeAssignment(problem, std::move(selected));
}

Result<DownloadAssignment> ExactMilpDownloadSelector::Select(
    const DownloadProblem& problem) {
  CYRUS_RETURN_IF_ERROR(Validate(problem));
  const size_t R = problem.chunks.size();
  const size_t C = problem.csp_bandwidth.size();
  if (R == 0) {
    return FinalizeAssignment(problem, {});
  }

  // Same LP as the optimizer's relaxation, but every d variable is binary.
  size_t num_vars = 1;  // y first
  std::vector<std::vector<size_t>> var_index(R);
  for (size_t r = 0; r < R; ++r) {
    var_index[r].resize(problem.chunks[r].stored_at.size());
    for (size_t k = 0; k < var_index[r].size(); ++k) {
      var_index[r][k] = num_vars++;
    }
  }
  LpProblem lp;
  lp.num_vars = num_vars;
  lp.objective.assign(num_vars, 0.0);
  lp.objective[0] = 1.0;
  for (size_t c = 0; c < C; ++c) {
    std::vector<double> coeffs(num_vars, 0.0);
    coeffs[0] = -problem.csp_bandwidth[c];
    bool any = false;
    for (size_t r = 0; r < R; ++r) {
      const auto& stored = problem.chunks[r].stored_at;
      for (size_t k = 0; k < stored.size(); ++k) {
        if (stored[k] == static_cast<int>(c)) {
          coeffs[var_index[r][k]] = problem.chunks[r].share_bytes;
          any = true;
        }
      }
    }
    if (any) {
      lp.AddLessEqual(std::move(coeffs), 0.0);
    }
  }
  if (problem.client_bandwidth > 0.0) {
    std::vector<double> coeffs(num_vars, 0.0);
    coeffs[0] = -problem.client_bandwidth;
    for (size_t r = 0; r < R; ++r) {
      for (size_t k = 0; k < var_index[r].size(); ++k) {
        coeffs[var_index[r][k]] = problem.chunks[r].share_bytes;
      }
    }
    lp.AddLessEqual(std::move(coeffs), 0.0);
  }
  std::vector<size_t> binary_vars;
  for (size_t r = 0; r < R; ++r) {
    std::vector<double> coeffs(num_vars, 0.0);
    for (size_t k = 0; k < var_index[r].size(); ++k) {
      coeffs[var_index[r][k]] = 1.0;
      binary_vars.push_back(var_index[r][k]);
    }
    lp.AddEqual(std::move(coeffs), static_cast<double>(problem.t));
  }

  MilpOptions options;
  options.max_nodes = 2000000;
  CYRUS_ASSIGN_OR_RETURN(LpSolution solution, SolveBinaryMilp(lp, binary_vars, options));

  std::vector<std::vector<int>> selected(R);
  for (size_t r = 0; r < R; ++r) {
    for (size_t k = 0; k < var_index[r].size(); ++k) {
      if (solution.x[var_index[r][k]] > 0.5) {
        selected[r].push_back(problem.chunks[r].stored_at[k]);
      }
    }
  }
  return FinalizeAssignment(problem, std::move(selected));
}

Result<DownloadAssignment> GreedyFastestDownloadSelector::Select(
    const DownloadProblem& problem) {
  CYRUS_RETURN_IF_ERROR(Validate(problem));
  std::vector<std::vector<int>> selected(problem.chunks.size());
  for (size_t r = 0; r < problem.chunks.size(); ++r) {
    std::vector<int> pool = problem.chunks[r].stored_at;
    std::stable_sort(pool.begin(), pool.end(), [&](int a, int b) {
      return problem.csp_bandwidth[a] > problem.csp_bandwidth[b];
    });
    selected[r].assign(pool.begin(), pool.begin() + problem.t);
  }
  return FinalizeAssignment(problem, std::move(selected));
}

}  // namespace cyrus
