// Downlink CSP selection (paper §4.3, Algorithm 1) and baseline selectors.
//
// Given R chunks whose shares live on subsets of C CSPs, pick t source CSPs
// per chunk and a bandwidth split so the parallel download finishes fast.
//
// The paper convexifies the min-max program (5)-(7) with a linear
// over-estimator of d^(1/2) and then fixes one chunk's selection variables
// to integers at a time via branch-and-bound. We keep Algorithm 1's exact
// skeleton (relax -> fix bandwidths -> integerize chunk eta -> repeat) but
// solve the relaxation exactly: for any share assignment d, the optimal
// static bandwidth split gives completion time
//     y(d) = max( sum_c L_c(d) / beta,  max_c L_c(d) / beta_bar_c ),
// where L_c is the load placed on CSP c - and y(d) is a maximum of linear
// functions of d, so minimizing it is a plain LP. This is a tighter
// relaxation than the paper's over-estimator with the same structure.
#ifndef SRC_OPT_DOWNLOAD_SELECTOR_H_
#define SRC_OPT_DOWNLOAD_SELECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/result.h"
#include "src/util/rng.h"

namespace cyrus {

// One chunk to fetch: the per-share byte count and the CSPs holding a share.
struct DownloadChunk {
  double share_bytes = 0.0;
  std::vector<int> stored_at;  // CSP indices with u_{r,c} = 1
};

struct DownloadProblem {
  std::vector<DownloadChunk> chunks;
  // Per-CSP achievable download bandwidth, bytes/second (beta_bar_c).
  std::vector<double> csp_bandwidth;
  // Client downlink cap in bytes/second (beta); <= 0 means uncapped.
  double client_bandwidth = 0.0;
  // Shares needed per chunk (the privacy parameter t).
  uint32_t t = 2;
};

struct DownloadAssignment {
  // selected[r] lists the t CSP indices chunk r downloads from.
  std::vector<std::vector<int>> selected;
  // Static per-CSP bandwidth allocation consistent with the predicted time.
  std::vector<double> allocated_bandwidth;
  // Completion-time estimate under the static-allocation model.
  double predicted_seconds = 0.0;
};

// Computes the model completion time and bandwidth split for a fixed
// assignment (shared by every selector so comparisons are apples-to-apples).
DownloadAssignment FinalizeAssignment(const DownloadProblem& problem,
                                      std::vector<std::vector<int>> selected);

class DownloadSelector {
 public:
  virtual ~DownloadSelector() = default;
  virtual std::string_view name() const = 0;
  virtual Result<DownloadAssignment> Select(const DownloadProblem& problem) = 0;

 protected:
  // Validates chunk feasibility (each chunk stored on >= t CSPs with known
  // bandwidth); shared by implementations.
  static Status Validate(const DownloadProblem& problem);
};

// CYRUS's optimizer: LP relaxation + per-chunk branch-and-bound (Algorithm 1).
// Beyond a chunk-count cap the exact phase is replaced by a load-aware
// greedy pass (same fixing order, O(R*C log C)) so selection never
// dominates the download it plans; see kMaxExactChunks in the .cc.
class OptimalDownloadSelector : public DownloadSelector {
 public:
  std::string_view name() const override { return "cyrus"; }
  Result<DownloadAssignment> Select(const DownloadProblem& problem) override;
};

// Uniform-random choice of t CSPs per chunk (paper's "random" baseline).
class RandomDownloadSelector : public DownloadSelector {
 public:
  explicit RandomDownloadSelector(uint64_t seed) : rng_(seed) {}
  std::string_view name() const override { return "random"; }
  Result<DownloadAssignment> Select(const DownloadProblem& problem) override;

 private:
  Rng rng_;
};

// Round-robin over the CSP list (paper's "heuristic" baseline).
class RoundRobinDownloadSelector : public DownloadSelector {
 public:
  std::string_view name() const override { return "heuristic"; }
  Result<DownloadAssignment> Select(const DownloadProblem& problem) override;

 private:
  size_t cursor_ = 0;
};

// Always the t highest-bandwidth CSPs holding each chunk (DepSky's greedy
// read policy; also the strawman discussed in §4.3).
class GreedyFastestDownloadSelector : public DownloadSelector {
 public:
  std::string_view name() const override { return "greedy-fastest"; }
  Result<DownloadAssignment> Select(const DownloadProblem& problem) override;
};

// Exact one-shot solver: every d variable binary in a single
// branch-and-bound. Globally optimal under the static-allocation model but
// exponential in the worst case and not online - the ablation baseline
// that Algorithm 1's per-chunk fixing trades against
// (bench_ablation_selector).
class ExactMilpDownloadSelector : public DownloadSelector {
 public:
  std::string_view name() const override { return "exact-milp"; }
  Result<DownloadAssignment> Select(const DownloadProblem& problem) override;
};

}  // namespace cyrus

#endif  // SRC_OPT_DOWNLOAD_SELECTOR_H_
