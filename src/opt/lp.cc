#include "src/opt/lp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/strings.h"

namespace cyrus {
namespace {

constexpr double kEps = 1e-9;

// Dense simplex tableau.
//
// Layout: rows 0..m-1 are constraints (all equalities after adding slack /
// surplus / artificial columns, with rhs >= 0); row m is the objective row.
// Column layout: [structural vars | slack+surplus | artificials | rhs].
class Tableau {
 public:
  Tableau(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  void Pivot(size_t pivot_row, size_t pivot_col) {
    const double pivot = At(pivot_row, pivot_col);
    for (size_t c = 0; c < cols_; ++c) {
      At(pivot_row, c) /= pivot;
    }
    for (size_t r = 0; r < rows_; ++r) {
      if (r == pivot_row) {
        continue;
      }
      const double factor = At(r, pivot_col);
      if (std::fabs(factor) < kEps) {
        continue;
      }
      for (size_t c = 0; c < cols_; ++c) {
        At(r, c) -= factor * At(pivot_row, c);
      }
    }
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

enum class PivotOutcome { kOptimal, kUnbounded };

// Runs simplex iterations on the tableau until the objective row (row m)
// has no negative reduced costs among columns [0, num_cols_usable).
// `basis[r]` tracks which column is basic in constraint row r.
PivotOutcome RunSimplex(Tableau& tableau, std::vector<size_t>& basis,
                        size_t num_cols_usable) {
  const size_t m = tableau.rows() - 1;
  const size_t rhs_col = tableau.cols() - 1;
  // Iteration cap: Bland's rule guarantees termination, but guard anyway.
  const size_t max_iters = 50000 + 200 * (m + num_cols_usable);

  for (size_t iter = 0; iter < max_iters; ++iter) {
    // Bland's rule: entering column = lowest index with negative reduced cost.
    size_t entering = num_cols_usable;
    for (size_t c = 0; c < num_cols_usable; ++c) {
      if (tableau.At(m, c) < -kEps) {
        entering = c;
        break;
      }
    }
    if (entering == num_cols_usable) {
      return PivotOutcome::kOptimal;
    }

    // Ratio test; ties broken by lowest basis variable index (Bland).
    size_t leaving = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (size_t r = 0; r < m; ++r) {
      const double a = tableau.At(r, entering);
      if (a > kEps) {
        const double ratio = tableau.At(r, rhs_col) / a;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps && (leaving == m || basis[r] < basis[leaving]))) {
          best_ratio = ratio;
          leaving = r;
        }
      }
    }
    if (leaving == m) {
      return PivotOutcome::kUnbounded;
    }

    tableau.Pivot(leaving, entering);
    basis[leaving] = entering;
  }
  // Treat a blown iteration cap as optimal-at-tolerance; callers validate.
  return PivotOutcome::kOptimal;
}

}  // namespace

void LpProblem::AddLessEqual(std::vector<double> coeffs, double rhs) {
  constraints.push_back(LpConstraint{std::move(coeffs), LpRelation::kLessEqual, rhs});
}

void LpProblem::AddEqual(std::vector<double> coeffs, double rhs) {
  constraints.push_back(LpConstraint{std::move(coeffs), LpRelation::kEqual, rhs});
}

void LpProblem::AddGreaterEqual(std::vector<double> coeffs, double rhs) {
  constraints.push_back(LpConstraint{std::move(coeffs), LpRelation::kGreaterEqual, rhs});
}

void LpProblem::AddUpperBound(size_t var, double bound) {
  std::vector<double> coeffs(num_vars, 0.0);
  coeffs[var] = 1.0;
  AddLessEqual(std::move(coeffs), bound);
}

Result<LpSolution> SolveLp(const LpProblem& problem) {
  const size_t n = problem.num_vars;
  const size_t m = problem.constraints.size();
  if (problem.objective.size() != n) {
    return InvalidArgumentError(StrCat("objective has ", problem.objective.size(),
                                       " coefficients for ", n, " variables"));
  }
  for (const LpConstraint& c : problem.constraints) {
    if (c.coeffs.size() != n) {
      return InvalidArgumentError("constraint coefficient count mismatch");
    }
  }

  // Count auxiliary columns. Every row gets either a slack (<=), a surplus
  // plus artificial (>=), or an artificial (=). Rows with negative rhs are
  // sign-flipped first, which can convert <= into >= and vice versa.
  struct RowPlan {
    std::vector<double> coeffs;
    double rhs;
    LpRelation rel;
  };
  std::vector<RowPlan> rows(m);
  for (size_t i = 0; i < m; ++i) {
    rows[i].coeffs = problem.constraints[i].coeffs;
    rows[i].rhs = problem.constraints[i].rhs;
    rows[i].rel = problem.constraints[i].relation;
    if (rows[i].rhs < 0) {
      for (double& v : rows[i].coeffs) {
        v = -v;
      }
      rows[i].rhs = -rows[i].rhs;
      if (rows[i].rel == LpRelation::kLessEqual) {
        rows[i].rel = LpRelation::kGreaterEqual;
      } else if (rows[i].rel == LpRelation::kGreaterEqual) {
        rows[i].rel = LpRelation::kLessEqual;
      }
    }
  }

  size_t num_slack = 0;
  size_t num_artificial = 0;
  for (const RowPlan& row : rows) {
    if (row.rel == LpRelation::kLessEqual) {
      ++num_slack;
    } else if (row.rel == LpRelation::kGreaterEqual) {
      ++num_slack;       // surplus
      ++num_artificial;  // plus artificial
    } else {
      ++num_artificial;
    }
  }

  const size_t total_cols = n + num_slack + num_artificial + 1;  // +1 rhs
  const size_t rhs_col = total_cols - 1;
  Tableau tableau(m + 1, total_cols);
  std::vector<size_t> basis(m);

  size_t next_slack = n;
  size_t next_artificial = n + num_slack;
  std::vector<size_t> artificial_cols;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      tableau.At(i, j) = rows[i].coeffs[j];
    }
    tableau.At(i, rhs_col) = rows[i].rhs;
    switch (rows[i].rel) {
      case LpRelation::kLessEqual:
        tableau.At(i, next_slack) = 1.0;
        basis[i] = next_slack++;
        break;
      case LpRelation::kGreaterEqual:
        tableau.At(i, next_slack) = -1.0;
        ++next_slack;
        tableau.At(i, next_artificial) = 1.0;
        basis[i] = next_artificial;
        artificial_cols.push_back(next_artificial++);
        break;
      case LpRelation::kEqual:
        tableau.At(i, next_artificial) = 1.0;
        basis[i] = next_artificial;
        artificial_cols.push_back(next_artificial++);
        break;
    }
  }

  // --- Phase 1: minimize the sum of artificials. ---
  if (!artificial_cols.empty()) {
    for (size_t col : artificial_cols) {
      tableau.At(m, col) = 1.0;
    }
    // Make the objective row consistent with the starting basis (reduced
    // cost of basic artificials must be zero).
    for (size_t i = 0; i < m; ++i) {
      if (tableau.At(m, basis[i]) != 0.0) {
        for (size_t c = 0; c < total_cols; ++c) {
          tableau.At(m, c) -= tableau.At(i, c);
        }
      }
    }
    const PivotOutcome outcome = RunSimplex(tableau, basis, total_cols - 1);
    (void)outcome;  // phase 1 is bounded below by 0
    const double phase1 = -tableau.At(m, rhs_col);
    if (phase1 > 1e-6) {
      return FailedPreconditionError("LP is infeasible");
    }
    // Drive any artificial still in the basis (at value 0) out of it.
    for (size_t i = 0; i < m; ++i) {
      const bool is_artificial = basis[i] >= n + num_slack;
      if (!is_artificial) {
        continue;
      }
      size_t pivot_col = total_cols;
      for (size_t c = 0; c < n + num_slack; ++c) {
        if (std::fabs(tableau.At(i, c)) > kEps) {
          pivot_col = c;
          break;
        }
      }
      if (pivot_col < total_cols) {
        tableau.Pivot(i, pivot_col);
        basis[i] = pivot_col;
      }
      // If the row is all zeros it is redundant; the artificial stays basic
      // at value zero, which is harmless for phase 2.
    }
    // Zero the phase-1 objective row before installing the real objective.
    for (size_t c = 0; c < total_cols; ++c) {
      tableau.At(m, c) = 0.0;
    }
  }

  // --- Phase 2: minimize the real objective. ---
  for (size_t j = 0; j < n; ++j) {
    tableau.At(m, j) = problem.objective[j];
  }
  // Price out basic variables.
  for (size_t i = 0; i < m; ++i) {
    const double cost = tableau.At(m, basis[i]);
    if (cost != 0.0) {
      for (size_t c = 0; c < total_cols; ++c) {
        tableau.At(m, c) -= cost * tableau.At(i, c);
      }
    }
  }
  // Artificials must never re-enter: exclude them from the usable columns.
  const PivotOutcome outcome = RunSimplex(tableau, basis, n + num_slack);
  if (outcome == PivotOutcome::kUnbounded) {
    return ResourceExhaustedError("LP is unbounded below");
  }

  LpSolution solution;
  solution.x.assign(n, 0.0);
  for (size_t i = 0; i < m; ++i) {
    if (basis[i] < n) {
      solution.x[basis[i]] = tableau.At(i, rhs_col);
    }
  }
  solution.objective = 0.0;
  for (size_t j = 0; j < n; ++j) {
    solution.objective += problem.objective[j] * solution.x[j];
  }
  return solution;
}

}  // namespace cyrus
