// A dense two-phase primal simplex LP solver.
//
// This is the optimization substrate behind CYRUS's downlink CSP selection
// (paper §4.3, Algorithm 1). Problems there are small (variables = chunks x
// CSPs for one file transfer), so a dense tableau with Bland's anti-cycling
// rule is simple, robust, and fast enough.
//
// Problem form:   minimize    c . x
//                 subject to  a_i . x  (<= | = | >=)  b_i   for each row i
//                             x >= 0
// Upper bounds are expressed as ordinary <= rows by the caller.
#ifndef SRC_OPT_LP_H_
#define SRC_OPT_LP_H_

#include <vector>

#include "src/util/result.h"

namespace cyrus {

enum class LpRelation { kLessEqual, kEqual, kGreaterEqual };

struct LpConstraint {
  std::vector<double> coeffs;  // one per variable
  LpRelation relation = LpRelation::kLessEqual;
  double rhs = 0.0;
};

struct LpProblem {
  size_t num_vars = 0;
  std::vector<double> objective;  // minimized; one per variable
  std::vector<LpConstraint> constraints;

  // Builders keep call sites readable.
  void AddLessEqual(std::vector<double> coeffs, double rhs);
  void AddEqual(std::vector<double> coeffs, double rhs);
  void AddGreaterEqual(std::vector<double> coeffs, double rhs);
  // x[var] <= bound.
  void AddUpperBound(size_t var, double bound);
};

struct LpSolution {
  std::vector<double> x;
  double objective = 0.0;
};

// Solves the LP. Returns:
//   kInvalidArgument    on malformed input (dimension mismatch),
//   kFailedPrecondition if infeasible,
//   kResourceExhausted  if unbounded below.
Result<LpSolution> SolveLp(const LpProblem& problem);

}  // namespace cyrus

#endif  // SRC_OPT_LP_H_
