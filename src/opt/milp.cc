#include "src/opt/milp.h"

#include <cmath>
#include <limits>
#include <optional>

namespace cyrus {
namespace {

constexpr double kIntegerTolerance = 1e-6;

struct SearchState {
  const std::vector<size_t>* binary_vars;
  MilpOptions options;
  size_t nodes_explored = 0;
  double incumbent_value = std::numeric_limits<double>::infinity();
  std::optional<LpSolution> incumbent;
};

// Returns the index (into binary_vars) of the most fractional binary
// variable, or nullopt if all are integral.
std::optional<size_t> MostFractional(const LpSolution& solution,
                                     const std::vector<size_t>& binary_vars) {
  std::optional<size_t> best;
  double best_distance = kIntegerTolerance;
  for (size_t i = 0; i < binary_vars.size(); ++i) {
    const double v = solution.x[binary_vars[i]];
    const double distance = std::fabs(v - std::round(v));
    if (distance > best_distance) {
      best_distance = distance;
      best = i;
    }
  }
  return best;
}

void Branch(LpProblem& problem, SearchState& state) {
  if (state.nodes_explored >= state.options.max_nodes) {
    return;
  }
  ++state.nodes_explored;

  Result<LpSolution> relaxed = SolveLp(problem);
  if (!relaxed.ok()) {
    return;  // infeasible branch
  }
  if (relaxed->objective >= state.incumbent_value - state.options.bound_tolerance) {
    return;  // bound: cannot beat the incumbent
  }

  const std::optional<size_t> fractional = MostFractional(*relaxed, *state.binary_vars);
  if (!fractional.has_value()) {
    // Integer feasible and better than the incumbent.
    state.incumbent_value = relaxed->objective;
    state.incumbent = std::move(relaxed).value();
    return;
  }

  const size_t var = (*state.binary_vars)[*fractional];
  const double value = relaxed->x[var];
  // Explore the nearer side first: better incumbents earlier -> more pruning.
  const double first = (value >= 0.5) ? 1.0 : 0.0;
  for (const double fixed : {first, 1.0 - first}) {
    std::vector<double> coeffs(problem.num_vars, 0.0);
    coeffs[var] = 1.0;
    problem.AddEqual(coeffs, fixed);
    Branch(problem, state);
    problem.constraints.pop_back();
  }
}

}  // namespace

Result<LpSolution> SolveBinaryMilp(const LpProblem& problem,
                                   const std::vector<size_t>& binary_vars,
                                   const MilpOptions& options) {
  LpProblem working = problem;
  for (size_t var : binary_vars) {
    if (var >= working.num_vars) {
      return InvalidArgumentError("binary variable index out of range");
    }
    working.AddUpperBound(var, 1.0);
  }

  SearchState state;
  state.binary_vars = &binary_vars;
  state.options = options;
  Branch(working, state);

  if (!state.incumbent.has_value()) {
    return FailedPreconditionError("no integer-feasible solution found");
  }
  // Snap binaries exactly to {0,1} for downstream consumers.
  for (size_t var : binary_vars) {
    state.incumbent->x[var] = std::round(state.incumbent->x[var]);
  }
  return *std::move(state.incumbent);
}

}  // namespace cyrus
