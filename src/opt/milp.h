// Branch-and-bound for LPs with binary {0,1} variables.
//
// CYRUS's download selector (Algorithm 1) imposes integrality on one chunk's
// CSP-selection variables at a time, so the binary set is small (= number of
// CSPs) and depth-first branch-and-bound over the LP relaxation is exact and
// fast.
#ifndef SRC_OPT_MILP_H_
#define SRC_OPT_MILP_H_

#include <vector>

#include "src/opt/lp.h"
#include "src/util/result.h"

namespace cyrus {

struct MilpOptions {
  // Safety valve on explored nodes; the selector's problems need far fewer.
  size_t max_nodes = 100000;
  // A candidate LP value must beat the incumbent by this much to recurse.
  double bound_tolerance = 1e-7;
};

// Solves: minimize the LP objective subject to problem's constraints, with
// x[i] in {0,1} for every i in binary_vars (bounds x[i] <= 1 are added
// automatically). Other variables stay continuous and nonnegative.
//
// Returns kFailedPrecondition if no integer-feasible point exists.
Result<LpSolution> SolveBinaryMilp(const LpProblem& problem,
                                   const std::vector<size_t>& binary_vars,
                                   const MilpOptions& options = {});

}  // namespace cyrus

#endif  // SRC_OPT_MILP_H_
