#include "src/repair/repair_engine.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "src/crypto/naming.h"
#include "src/rs/secret_sharing.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

// Same decoder bound as the client: dispersal rows are a deterministic
// prefix for fixed (key, t), so a codec built with the maximum n handles
// shares produced under any stored n.
constexpr uint32_t kMaxShares = 255;

// Failover attempts per rebuilt share before giving up on this pass.
constexpr int kPlacementAttempts = 3;

}  // namespace

RepairEngine::RepairEngine(RepairContext context, RepairEngineOptions options)
    : context_(std::move(context)), options_(std::move(options)) {
  metrics_ = context_.metrics != nullptr ? context_.metrics
                                         : &obs::MetricsRegistry::Default();
  degraded_shares_gauge_ =
      metrics_->GetGauge("cyrus_degraded_shares", {},
                         "Shares owed by degraded (quorum) writes, pending repair");
  degraded_chunks_gauge_ =
      metrics_->GetGauge("cyrus_degraded_chunks", {},
                         "Chunks committed below their target n, pending repair");
  degraded_writes_ =
      metrics_->GetCounter("cyrus_degraded_writes_total", {},
                           "Chunk commits that met quorum but missed target n");
  scrub_counters_.passes = metrics_->GetCounter("cyrus_scrub_passes_total", {},
                                                "Completed scrub passes");
  scrub_counters_.scanned =
      metrics_->GetCounter("cyrus_scrub_chunks_scanned_total", {},
                           "Chunk-table entries classified by scans");
  scrub_counters_.degraded =
      metrics_->GetCounter("cyrus_scrub_chunks_degraded_total", {},
                           "Chunks found below their target n");
  scrub_counters_.repaired =
      metrics_->GetCounter("cyrus_scrub_chunks_repaired_total", {},
                           "Chunks restored to their target n");
  scrub_counters_.unrepairable =
      metrics_->GetCounter("cyrus_scrub_chunks_unrepairable_total", {},
                           "Chunks with fewer than t reachable shares");
  scrub_counters_.deferred =
      metrics_->GetCounter("cyrus_scrub_chunks_deferred_total", {},
                           "Repairs deferred by pass budgets");
  scrub_counters_.shares_rebuilt =
      metrics_->GetCounter("cyrus_scrub_shares_rebuilt_total", {},
                           "Fresh shares encoded and uploaded");
  scrub_counters_.shares_pruned =
      metrics_->GetCounter("cyrus_scrub_shares_pruned_total", {},
                           "Stale dead share locations dropped");
  scrub_counters_.bytes_moved = metrics_->GetCounter(
      "cyrus_scrub_bytes_moved_total", {}, "Share bytes moved by repairs");
  scrub_counters_.probe_failures =
      metrics_->GetCounter("cyrus_scrub_probe_failures_total", {},
                           "Probe List calls failed after retry");
  scrub_counters_.chunks_reclaimed =
      metrics_->GetCounter("cyrus_scrub_chunks_reclaimed_total", {},
                           "Zero-ref dedup chunks garbage-collected");
  scrub_counters_.shares_reclaimed =
      metrics_->GetCounter("cyrus_scrub_shares_reclaimed_total", {},
                           "Share objects deleted by orphan reclaim");
  scrub_counters_.bytes_reclaimed =
      metrics_->GetCounter("cyrus_scrub_bytes_reclaimed_total", {},
                           "Physical share bytes freed by orphan reclaim");
  scrub_counters_.integrity_checked =
      metrics_->GetCounter("cyrus_scrub_integrity_checked_total", {},
                           "At-rest shares downloaded and digest-checked");
  scrub_counters_.integrity_failures =
      metrics_->GetCounter("cyrus_scrub_integrity_failures_total", {},
                           "At-rest shares failing their digest check (bit rot)");
  scrub_counters_.shares_healed =
      metrics_->GetCounter("cyrus_scrub_shares_healed_total", {},
                           "Rotted shares re-encoded and overwritten in place");
  scrub_counters_.records_upgraded =
      metrics_->GetCounter("cyrus_scrub_records_upgraded_total", {},
                           "Digestless chunk entries given full digest sets");
}

void RepairEngine::RefreshDebtGaugesLocked() {
  uint64_t shares = 0;
  for (const auto& [chunk, missing] : degraded_debt_) {
    shares += missing;
  }
  degraded_shares_gauge_->Set(static_cast<double>(shares));
  degraded_chunks_gauge_->Set(static_cast<double>(degraded_debt_.size()));
}

void RepairEngine::NoteDegradedWrite(const Sha1Digest& chunk_id, uint32_t missing) {
  std::lock_guard<std::mutex> lock(debt_mutex_);
  if (missing == 0) {
    degraded_debt_.erase(chunk_id);
  } else {
    degraded_writes_->Increment();
    degraded_debt_[chunk_id] = missing;
  }
  RefreshDebtGaugesLocked();
}

uint64_t RepairEngine::OutstandingDegradedShares() const {
  std::lock_guard<std::mutex> lock(debt_mutex_);
  uint64_t shares = 0;
  for (const auto& [chunk, missing] : degraded_debt_) {
    shares += missing;
  }
  return shares;
}

void RepairEngine::Fold(const RepairStats& delta) {
  stats_.scrub_passes += delta.scrub_passes;
  stats_.chunks_scanned += delta.chunks_scanned;
  stats_.chunks_degraded += delta.chunks_degraded;
  stats_.chunks_repaired += delta.chunks_repaired;
  stats_.chunks_unrepairable += delta.chunks_unrepairable;
  stats_.chunks_deferred += delta.chunks_deferred;
  stats_.shares_rebuilt += delta.shares_rebuilt;
  stats_.shares_pruned += delta.shares_pruned;
  stats_.bytes_moved += delta.bytes_moved;
  stats_.probe_failures += delta.probe_failures;
  stats_.chunks_reclaimed += delta.chunks_reclaimed;
  stats_.shares_reclaimed += delta.shares_reclaimed;
  stats_.bytes_reclaimed += delta.bytes_reclaimed;
  stats_.reclaims_deferred += delta.reclaims_deferred;
  stats_.shares_integrity_checked += delta.shares_integrity_checked;
  stats_.integrity_failures += delta.integrity_failures;
  stats_.shares_healed += delta.shares_healed;
  stats_.records_upgraded += delta.records_upgraded;

  // Mirror the same deltas into the registry so dashboards and /metrics see
  // scrub health without holding a RepairEngine reference.
  scrub_counters_.passes->Increment(delta.scrub_passes);
  scrub_counters_.scanned->Increment(delta.chunks_scanned);
  scrub_counters_.degraded->Increment(delta.chunks_degraded);
  scrub_counters_.repaired->Increment(delta.chunks_repaired);
  scrub_counters_.unrepairable->Increment(delta.chunks_unrepairable);
  scrub_counters_.deferred->Increment(delta.chunks_deferred);
  scrub_counters_.shares_rebuilt->Increment(delta.shares_rebuilt);
  scrub_counters_.shares_pruned->Increment(delta.shares_pruned);
  scrub_counters_.bytes_moved->Increment(delta.bytes_moved);
  scrub_counters_.probe_failures->Increment(delta.probe_failures);
  scrub_counters_.chunks_reclaimed->Increment(delta.chunks_reclaimed);
  scrub_counters_.shares_reclaimed->Increment(delta.shares_reclaimed);
  scrub_counters_.bytes_reclaimed->Increment(delta.bytes_reclaimed);
  scrub_counters_.integrity_checked->Increment(delta.shares_integrity_checked);
  scrub_counters_.integrity_failures->Increment(delta.integrity_failures);
  scrub_counters_.shares_healed->Increment(delta.shares_healed);
  scrub_counters_.records_upgraded->Increment(delta.records_upgraded);
}

// ---------------------------------------------------------------------------
// Probe
// ---------------------------------------------------------------------------

RepairEngine::ProbeSnapshot RepairEngine::ProbeInternal(RepairStats& delta) {
  ProbeSnapshot snapshot;
  if (context_.registry == nullptr) {
    return snapshot;
  }
  const std::vector<int> active = context_.registry->ActiveIndices();
  std::vector<Result<std::vector<ObjectInfo>>> listings(
      active.size(), Result<std::vector<ObjectInfo>>(InternalError("not probed")));
  auto probe_one = [&](size_t i) {
    auto conn = context_.registry->connector(active[i]);
    if (!conn.ok()) {
      listings[i] = conn.status();
      return;
    }
    listings[i] = RetryWithBackoff(options_.retry,
                                   [&] { return (*conn)->List(""); });
  };
  if (context_.pool != nullptr && active.size() > 1) {
    context_.pool->ParallelFor(active.size(), probe_one);
  } else {
    for (size_t i = 0; i < active.size(); ++i) {
      probe_one(i);
    }
  }
  // Bookkeeping is sequential: registry/ring/monitor mutation is not
  // thread-safe and probe results must land before classification.
  for (size_t i = 0; i < active.size(); ++i) {
    const int csp = active[i];
    if (!listings[i].ok()) {
      ++delta.probe_failures;
      snapshot.unreachable.push_back(csp);
      if (context_.mark_csp_failed) {
        (void)context_.mark_csp_failed(csp);
      }
      continue;
    }
    if (context_.monitor != nullptr && context_.now) {
      context_.monitor->RecordProbe(csp, context_.now(), true);
    }
    auto& names = snapshot.objects_by_csp[csp];
    for (const ObjectInfo& object : *listings[i]) {
      names.insert(object.name);
    }
  }
  return snapshot;
}

RepairEngine::ProbeSnapshot RepairEngine::Probe() {
  RepairStats delta;
  ProbeSnapshot snapshot = ProbeInternal(delta);
  Fold(delta);
  return snapshot;
}

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

uint32_t RepairEngine::TargetN(const ChunkEntry& entry) const {
  const size_t feasible = context_.cluster_aware
                              ? context_.registry->NumActiveClusters()
                              : context_.registry->ActiveIndices().size();
  uint32_t target = 0;
  if (context_.current_n) {
    if (auto n = context_.current_n(); n.ok()) {
      target = *n;
    }
  }
  if (target == 0) {
    target = static_cast<uint32_t>(feasible);  // Eq. (1) infeasible: degrade
  }
  target = std::max(target, entry.t);
  target = std::min<uint32_t>(target, static_cast<uint32_t>(feasible));
  return std::min(target, kMaxShares);
}

ChunkHealth RepairEngine::Classify(const Sha1Digest& chunk_id, const ChunkEntry& entry,
                                   const ProbeSnapshot& snapshot,
                                   std::vector<ChunkShare>& dead) const {
  ChunkHealth health;
  health.chunk_id = chunk_id;
  health.size = entry.size;
  health.t = entry.t;
  health.n_target = TargetN(entry);
  for (const ChunkShare& share : entry.shares) {
    auto state = context_.registry->state(share.csp);
    const bool active = state.ok() && *state == CspState::kActive;
    bool live = active;
    if (active) {
      // Trust the location only when the probe saw the object; a listed
      // CSP missing the object is silent loss, and an active CSP absent
      // from the snapshot was unreachable when probed.
      auto listed = snapshot.objects_by_csp.find(share.csp);
      live = listed != snapshot.objects_by_csp.end() &&
             listed->second.count(ShareName(chunk_id, share.share_index, entry.t)) > 0;
    }
    if (live) {
      ++health.live_shares;
    } else {
      ++health.dead_locations;
      dead.push_back(share);
    }
  }
  return health;
}

std::vector<ChunkHealth> RepairEngine::ScanInternal(
    const ProbeSnapshot& snapshot, RepairStats& delta,
    std::map<Sha1Digest, std::vector<ChunkShare>>* dead_by_chunk) {
  std::vector<ChunkHealth> health;
  if (context_.chunk_table == nullptr) {
    return health;
  }
  for (const Sha1Digest& chunk_id : context_.chunk_table->AllChunkIds()) {
    const ChunkEntry* entry = context_.chunk_table->Find(chunk_id);
    if (entry == nullptr) {
      continue;
    }
    if (entry->dedup && entry->refcount == 0) {
      // Condemned: no version of this client references the chunk. It is
      // either awaiting this pass's orphan reclaim or was already reclaimed
      // by another shard's scrub (its objects are gone, which would read as
      // "degraded" here and waste repair bandwidth resurrecting garbage).
      // Clients that still reference it scan it through their own tables.
      continue;
    }
    std::vector<ChunkShare> dead;
    health.push_back(Classify(chunk_id, *entry, snapshot, dead));
    ++delta.chunks_scanned;
    if (health.back().degraded()) {
      ++delta.chunks_degraded;
      if (dead_by_chunk != nullptr) {
        (*dead_by_chunk)[chunk_id] = std::move(dead);
      }
    }
  }
  // Worst first: smallest margin above t (data-loss proximity), then most
  // missing redundancy, then largest chunk (more bytes at risk).
  std::stable_sort(health.begin(), health.end(),
                   [](const ChunkHealth& a, const ChunkHealth& b) {
                     if (a.degraded() != b.degraded()) {
                       return a.degraded();
                     }
                     if (a.margin() != b.margin()) {
                       return a.margin() < b.margin();
                     }
                     if (a.missing() != b.missing()) {
                       return a.missing() > b.missing();
                     }
                     return a.size > b.size;
                   });
  return health;
}

std::vector<ChunkHealth> RepairEngine::Scan() {
  RepairStats delta;
  ProbeSnapshot snapshot = ProbeInternal(delta);
  std::vector<ChunkHealth> health = ScanInternal(snapshot, delta, nullptr);
  Fold(delta);
  return health;
}

// ---------------------------------------------------------------------------
// Repair
// ---------------------------------------------------------------------------

Status RepairEngine::RepairChunk(const ChunkHealth& health,
                                 const std::vector<ChunkShare>& dead,
                                 uint64_t* budget_left, ScrubReport& report,
                                 RepairStats& delta) {
  const Sha1Digest& chunk_id = health.chunk_id;
  const ChunkEntry* entry = context_.chunk_table->Find(chunk_id);
  if (entry == nullptr) {
    return NotFoundError(StrCat("chunk ", chunk_id.ToHex(), " vanished mid-scrub"));
  }
  const uint32_t t = entry->t;
  const uint64_t share_bytes = ShareSize(entry->size, t);

  // Live locations = table locations minus the scan's dead list.
  auto is_dead = [&](const ChunkShare& share) {
    for (const ChunkShare& d : dead) {
      if (d.csp == share.csp && d.share_index == share.share_index) {
        return true;
      }
    }
    return false;
  };
  std::vector<ChunkShare> live;
  uint32_t max_index = 0;
  for (const ChunkShare& share : entry->shares) {
    max_index = std::max(max_index, share.share_index);
    if (!is_dead(share)) {
      live.push_back(share);
    }
  }
  if (live.size() < t) {
    return DataLossError(StrCat("chunk ", chunk_id.ToHex(), ": only ", live.size(),
                                " of t=", t, " shares live"));
  }
  const uint32_t missing = health.missing();

  // Pre-flight the budget on the expected traffic (t downloads + the new
  // uploads); deduct actuals as transfers land.
  if (budget_left != nullptr &&
      *budget_left < share_bytes * (t + uint64_t{missing})) {
    return ResourceExhaustedError(
        StrCat("chunk ", chunk_id.ToHex(), " deferred: bandwidth budget spent"));
  }
  auto spend = [&](uint64_t bytes) {
    delta.bytes_moved += bytes;
    if (budget_left != nullptr) {
      *budget_left -= std::min(*budget_left, bytes);
    }
  };

  // Gather t surviving shares, first t live locations concurrently on the
  // shared pool, stragglers sequentially if some of those fail under us.
  const size_t first_wave = std::min<size_t>(live.size(), t);
  std::vector<Result<Bytes>> fetched(first_wave,
                                     Result<Bytes>(InternalError("not fetched")));
  std::vector<TransferReport> wave_reports(first_wave);
  auto fetch_one = [&](size_t i) {
    auto conn = context_.registry->connector(live[i].csp);
    if (!conn.ok()) {
      fetched[i] = conn.status();
      return;
    }
    fetched[i] = DownloadWithRetry(**conn, TransferKind::kGet, live[i].csp,
                                   ShareName(chunk_id, live[i].share_index, t),
                                   options_.retry, wave_reports[i]);
  };
  if (context_.pool != nullptr && first_wave > 1) {
    context_.pool->ParallelFor(first_wave, fetch_one);
  } else {
    for (size_t i = 0; i < first_wave; ++i) {
      fetch_one(i);
    }
  }
  std::vector<Share> shares;
  for (size_t i = 0; i < first_wave; ++i) {
    report.transfer.Append(wave_reports[i]);
    if (fetched[i].ok()) {
      spend(fetched[i]->size());
      shares.push_back(Share{live[i].share_index, *std::move(fetched[i])});
    } else if (fetched[i].status().code() == StatusCode::kUnavailable &&
               context_.mark_csp_failed) {
      (void)context_.mark_csp_failed(live[i].csp);
    }
  }
  for (size_t i = first_wave; i < live.size() && shares.size() < t; ++i) {
    auto conn = context_.registry->connector(live[i].csp);
    if (!conn.ok()) {
      continue;
    }
    auto data = DownloadWithRetry(**conn, TransferKind::kGet, live[i].csp,
                                  ShareName(chunk_id, live[i].share_index, t),
                                  options_.retry, report.transfer);
    if (data.ok()) {
      spend(data->size());
      shares.push_back(Share{live[i].share_index, *std::move(data)});
    } else if (data.status().code() == StatusCode::kUnavailable &&
               context_.mark_csp_failed) {
      (void)context_.mark_csp_failed(live[i].csp);
    }
  }
  if (shares.size() < t) {
    return DataLossError(StrCat("chunk ", chunk_id.ToHex(), ": only ", shares.size(),
                                " of t=", t, " shares reachable"));
  }

  // Convergent chunks decode under their content key, resolved through the
  // owning client (which can unwrap it with the user key alone).
  std::string codec_key = *context_.key_string;
  if (context_.chunk_key) {
    CYRUS_ASSIGN_OR_RETURN(codec_key, context_.chunk_key(chunk_id, *entry));
  }
  CYRUS_ASSIGN_OR_RETURN(SecretSharingCodec codec,
                         SecretSharingCodec::Create(codec_key, t, kMaxShares));
  // Rebuilt shares are encoded into pooled upload buffers when the owning
  // client shared its pool; each handle lives only for its upload.
  const size_t share_len = ShareSize(entry->size, t);
  Bytes scratch_heap;
  auto acquire_share_buf = [&](PooledBuffer& handle) -> MutableByteSpan {
    if (context_.buffers != nullptr) {
      handle = context_.buffers->Acquire(std::max<size_t>(share_len, 1));
      return handle.span(share_len);
    }
    scratch_heap.assign(share_len, 0);
    return MutableByteSpan(scratch_heap);
  };
  CYRUS_ASSIGN_OR_RETURN(Bytes data, codec.Decode(shares, entry->size));
  if (Sha1::Hash(data) != chunk_id) {
    // Bit rot slipped past the probe (List sees names, not bytes). Pull
    // every live share and run the error-correcting decode, then overwrite
    // the corrupted shares in place.
    for (size_t i = first_wave; i < live.size(); ++i) {
      auto conn = context_.registry->connector(live[i].csp);
      if (!conn.ok()) {
        continue;
      }
      auto extra = DownloadWithRetry(**conn, TransferKind::kGet, live[i].csp,
                                     ShareName(chunk_id, live[i].share_index, t),
                                     options_.retry, report.transfer);
      if (extra.ok()) {
        spend(extra->size());
        shares.push_back(Share{live[i].share_index, *std::move(extra)});
      }
    }
    auto corrected = codec.DecodeWithErrorCorrection(shares, entry->size);
    if (!corrected.ok() || Sha1::Hash(corrected->chunk) != chunk_id) {
      return DataLossError(StrCat("chunk ", chunk_id.ToHex(),
                                  " failed integrity check during scrub"));
    }
    data = std::move(corrected->chunk);
    for (uint32_t bad_index : corrected->corrupted_indices) {
      for (const ChunkShare& loc : live) {
        if (loc.share_index != bad_index) {
          continue;
        }
        PooledBuffer fresh_buf;
        MutableByteSpan fresh = acquire_share_buf(fresh_buf);
        auto encoded = codec.EncodeShareInto(data, bad_index, fresh);
        auto conn = context_.registry->connector(loc.csp);
        if (encoded.ok() && conn.ok()) {
          const std::string object = ShareName(chunk_id, bad_index, t);
          if (UploadWithRetry(**conn, TransferKind::kPut, loc.csp, object,
                              fresh, options_.retry, report.transfer)
                  .ok()) {
            spend(fresh.size());
          }
        }
        break;
      }
    }
  }

  // Re-encode the missing redundancy at fresh indices and place it through
  // the ring, never on a CSP already holding a live share.
  std::vector<ChunkShare> dead_left = dead;
  std::vector<int> exclude;
  for (const ChunkShare& share : live) {
    exclude.push_back(share.csp);
  }
  uint32_t rebuilt = 0;
  for (uint32_t k = 0; k < missing; ++k) {
    const uint32_t new_index = ++max_index;
    if (new_index >= kMaxShares) {
      break;
    }
    PooledBuffer fresh_buf;
    MutableByteSpan fresh = acquire_share_buf(fresh_buf);
    CYRUS_RETURN_IF_ERROR(codec.EncodeShareInto(data, new_index, fresh));
    bool placed = false;
    for (int attempt = 0; attempt < kPlacementAttempts && !placed; ++attempt) {
      auto replacement = context_.ring->SelectCspsExcluding(chunk_id, 1, exclude);
      if (!replacement.ok()) {
        break;  // no CSP left to hold this share
      }
      const int target = replacement->front();
      auto conn = context_.registry->connector(target);
      if (!conn.ok()) {
        exclude.push_back(target);
        continue;
      }
      const std::string object = ShareName(chunk_id, new_index, t);
      Status upload = UploadWithRetry(**conn, TransferKind::kPut, target, object,
                                      fresh, options_.retry, report.transfer);
      if (!upload.ok()) {
        if (upload.code() == StatusCode::kUnavailable && context_.mark_csp_failed) {
          (void)context_.mark_csp_failed(target);
        }
        exclude.push_back(target);
        continue;
      }
      spend(fresh.size());
      exclude.push_back(target);
      if (context_.monitor != nullptr && context_.now) {
        context_.monitor->RecordProbe(target, context_.now(), true);
      }
      // Each rebuilt share supersedes one dead location; extras beyond the
      // dead list widen the scatter to the new target n.
      if (!dead_left.empty()) {
        const ChunkShare old = dead_left.back();
        dead_left.pop_back();
        CYRUS_RETURN_IF_ERROR(context_.chunk_table->MoveShare(
            chunk_id, old.csp, old.share_index, target, new_index));
      } else {
        CYRUS_RETURN_IF_ERROR(context_.chunk_table->AddShare(
            chunk_id, ChunkShare{new_index, target}));
      }
      ++rebuilt;
      placed = true;
    }
    if (!placed) {
      break;  // capacity exhausted; the rest stays degraded until CSPs return
    }
  }
  delta.shares_rebuilt += rebuilt;

  // Once the chunk is back at target, the leftover dead locations are
  // stale bookkeeping (their CSPs are gone or their objects vanished);
  // prune them so the next scan sees a clean entry.
  const uint32_t live_now = static_cast<uint32_t>(live.size()) + rebuilt;
  if (live_now >= health.n_target) {
    for (const ChunkShare& old : dead_left) {
      if (context_.chunk_table->RemoveShare(chunk_id, old.csp, old.share_index).ok()) {
        ++delta.shares_pruned;
      }
    }
    return OkStatus();
  }
  return FailedPreconditionError(
      StrCat("chunk ", chunk_id.ToHex(), ": restored ", live_now, " of target ",
             health.n_target, " shares; active CSP set too small"));
}

void RepairEngine::ReclaimOrphans(uint64_t* budget_left, RepairStats& delta) {
  if (context_.share_index == nullptr) {
    return;
  }
  // Refcounted GC (the Delete half of CDStore-style dedup). The entry is
  // erased from the index *before* its objects are deleted: once gone, a
  // concurrent writer misses and re-publishes from scratch rather than
  // taking a reference to shares mid-deletion. The residual window - a
  // writer re-uploading the same convergent names while this pass deletes
  // them - is excluded by the deployment model: reclaim runs in the same
  // process that owns metadata writes (the gateway), in scrub windows, not
  // concurrently with Puts against the same index.
  for (const Sha1Digest& chunk_id : context_.share_index->ZeroRefChunks()) {
    std::optional<ShareIndexEntry> entry = context_.share_index->Lookup(chunk_id);
    if (!entry.has_value()) {
      continue;  // re-adopted or reclaimed since the snapshot
    }
    const ChunkEntry* local = context_.chunk_table->Find(chunk_id);
    if (local != nullptr && local->refcount > 0) {
      // A local version still uses it (e.g. references synced outside the
      // index's accounting). Never delete what this table can still reach.
      continue;
    }
    const uint64_t share_bytes = ShareSize(entry->logical_size, entry->t);
    const uint64_t total_bytes = share_bytes * entry->shares.size();
    // Deletes move no share payload, but each one costs a provider round
    // trip; charging their object bytes against the pass budget keeps
    // scrub's total CSP pressure bounded by one knob.
    if (budget_left != nullptr && *budget_left < total_bytes) {
      ++delta.reclaims_deferred;
      continue;
    }
    if (!context_.share_index->Erase(chunk_id).ok()) {
      continue;  // a writer re-referenced it between snapshot and now
    }
    uint64_t freed = 0;
    uint64_t freed_shares = 0;
    std::vector<ChunkShare> undeleted;
    for (const ChunkShare& share : entry->shares) {
      auto conn = context_.registry->connector(share.csp);
      if (!conn.ok()) {
        // No account at that provider this session. Keep the location in
        // the tombstone so a later pass (or a client that does hold an
        // account) still has a record to retry from.
        undeleted.push_back(share);
        continue;
      }
      const std::string object = ShareName(chunk_id, share.share_index, entry->t);
      const Status deleted = RetryWithBackoff(
          options_.retry, [&] { return (*conn)->Delete(object); });
      if (deleted.ok()) {
        freed += share_bytes;
        ++freed_shares;
        if (budget_left != nullptr) {
          *budget_left -= std::min(*budget_left, share_bytes);
        }
      } else if (deleted.code() == StatusCode::kNotFound) {
        ++freed_shares;  // already gone (e.g. a crashed Put's rollback)
      } else {
        undeleted.push_back(share);  // provider unreachable after retries
      }
    }
    if (!undeleted.empty()) {
      // Erasing now would permanently orphan the surviving objects - no
      // index record would be left to drive a retry, and the paid storage
      // leaks forever. Re-publish a zero-ref tombstone holding exactly the
      // undeleted locations: pending_delete keeps it invisible to
      // LookupAndRef/AddRef (no writer may adopt a partially deleted
      // layout) while ZeroRefChunks re-surfaces it to the next pass.
      ShareIndexEntry tombstone;
      tombstone.logical_size = entry->logical_size;
      tombstone.t = entry->t;
      tombstone.n = entry->n;
      tombstone.refcount = 0;
      tombstone.pending_delete = true;
      tombstone.shares = std::move(undeleted);
      (void)context_.share_index->Publish(chunk_id, std::move(tombstone));
      ++delta.reclaims_deferred;
    } else {
      if (local != nullptr) {
        (void)context_.chunk_table->Evict(chunk_id);
      }
      ++delta.chunks_reclaimed;
    }
    delta.shares_reclaimed += freed_shares;
    delta.bytes_reclaimed += freed;
    context_.share_index->NoteReclaimed(freed_shares, freed);
  }
  // Cross-shard sweep: evict local zero-ref dedup entries whose global
  // entry is already gone (another shard's scrub deleted the objects), so
  // the table stops carrying tombstones for data that no longer exists.
  for (const Sha1Digest& chunk_id : context_.chunk_table->AllChunkIds()) {
    const ChunkEntry* entry = context_.chunk_table->Find(chunk_id);
    if (entry == nullptr || !entry->dedup || entry->refcount > 0) {
      continue;
    }
    if (!context_.share_index->Lookup(chunk_id).has_value()) {
      (void)context_.chunk_table->Evict(chunk_id);
    }
  }
}

void RepairEngine::IntegrityPass(uint64_t* budget_left, ScrubReport& report,
                                 RepairStats& delta) {
  if (options_.integrity_samples_per_pass == 0 ||
      context_.chunk_table == nullptr || context_.registry == nullptr) {
    return;
  }
  std::vector<Sha1Digest> ids = context_.chunk_table->AllChunkIds();
  if (ids.empty()) {
    return;
  }
  // AllChunkIds is sorted (map order), so a persistent cursor turns the
  // budgeted sample into a rotating full sweep across passes.
  const size_t start = integrity_cursor_ % ids.size();
  uint32_t sampled = 0;
  size_t scanned = 0;
  for (; scanned < ids.size() && sampled < options_.integrity_samples_per_pass;
       ++scanned) {
    const Sha1Digest& chunk_id = ids[(start + scanned) % ids.size()];
    const ChunkEntry* entry = context_.chunk_table->Find(chunk_id);
    if (entry == nullptr || entry->shares.empty() ||
        (entry->dedup && entry->refcount == 0)) {
      continue;  // vanished or condemned; nothing at rest worth checking
    }
    const uint32_t t = entry->t;
    const uint64_t share_bytes = ShareSize(entry->size, t);
    if (budget_left != nullptr &&
        *budget_left < share_bytes * entry->shares.size()) {
      break;  // cursor stays on this chunk; the next pass resumes here
    }
    ++sampled;
    auto spend = [&](uint64_t bytes) {
      delta.bytes_moved += bytes;
      if (budget_left != nullptr) {
        *budget_left -= std::min(*budget_left, bytes);
      }
    };

    // Pull every reachable share once; the digest checks and any heal both
    // work from these bytes, so a sampled chunk costs at most n downloads.
    std::vector<ChunkShare> locs;
    std::vector<Share> shares;
    for (const ChunkShare& share : entry->shares) {
      auto conn = context_.registry->connector(share.csp);
      if (!conn.ok()) {
        continue;
      }
      auto data = DownloadWithRetry(**conn, TransferKind::kGet, share.csp,
                                    ShareName(chunk_id, share.share_index, t),
                                    options_.retry, report.transfer);
      if (!data.ok()) {
        if (data.status().code() == StatusCode::kUnavailable &&
            context_.mark_csp_failed) {
          (void)context_.mark_csp_failed(share.csp);
        }
        continue;
      }
      spend(data->size());
      locs.push_back(share);
      shares.push_back(Share{share.share_index, *std::move(data)});
    }
    if (shares.empty()) {
      continue;
    }
    delta.shares_integrity_checked += shares.size();

    bool all_have_digests = true;
    std::vector<size_t> bad;  // indices into locs/shares failing their digest
    for (size_t i = 0; i < locs.size(); ++i) {
      if (!locs[i].has_digest()) {
        all_have_digests = false;
        continue;
      }
      if (Sha1::Hash(shares[i].data) != locs[i].digest) {
        bad.push_back(i);
        ++delta.integrity_failures;
        if (context_.monitor != nullptr) {
          context_.monitor->RecordIntegrityFailure(locs[i].csp);
        }
      }
    }
    if (all_have_digests && bad.empty()) {
      continue;  // fully authenticated and clean; the common case
    }

    // Something to heal or upgrade: resolve the chunk's codec once.
    std::string codec_key = *context_.key_string;
    if (context_.chunk_key) {
      auto resolved = context_.chunk_key(chunk_id, *entry);
      if (!resolved.ok()) {
        continue;
      }
      codec_key = *std::move(resolved);
    }
    auto codec = SecretSharingCodec::Create(codec_key, t, kMaxShares);
    if (!codec.ok()) {
      continue;
    }
    const size_t share_len = ShareSize(entry->size, t);
    Bytes scratch_heap;
    auto acquire_share_buf = [&](PooledBuffer& handle) -> MutableByteSpan {
      if (context_.buffers != nullptr) {
        handle = context_.buffers->Acquire(std::max<size_t>(share_len, 1));
        return handle.span(share_len);
      }
      scratch_heap.assign(share_len, 0);
      return MutableByteSpan(scratch_heap);
    };

    // Recover the plaintext. With digests we can decode straight from t
    // authenticated shares; without (legacy entry) the error-correcting
    // decode both recovers the chunk and names the rotted indices.
    Bytes data;
    std::vector<uint32_t> rotted;
    for (size_t i : bad) {
      rotted.push_back(locs[i].share_index);
    }
    if (all_have_digests) {
      std::vector<Share> clean;
      for (size_t i = 0; i < shares.size(); ++i) {
        bool is_bad = false;
        for (size_t b : bad) {
          is_bad = is_bad || b == i;
        }
        if (!is_bad && clean.size() < t) {
          clean.push_back(shares[i]);
        }
      }
      if (clean.size() < t) {
        continue;  // fewer than t clean shares reachable; repair pass owns it
      }
      auto decoded = codec->Decode(clean, entry->size);
      if (!decoded.ok() || Sha1::Hash(*decoded) != chunk_id) {
        continue;  // digests lied about cleanliness; do not spread bad bytes
      }
      data = *std::move(decoded);
    } else {
      auto corrected = codec->DecodeWithErrorCorrection(shares, entry->size);
      if (!corrected.ok() || Sha1::Hash(corrected->chunk) != chunk_id) {
        continue;
      }
      data = std::move(corrected->chunk);
      for (uint32_t index : corrected->corrupted_indices) {
        bool counted = false;
        for (uint32_t known : rotted) {
          counted = counted || known == index;
        }
        if (!counted) {
          rotted.push_back(index);
          ++delta.integrity_failures;
          for (const ChunkShare& loc : locs) {
            if (loc.share_index == index && context_.monitor != nullptr) {
              context_.monitor->RecordIntegrityFailure(loc.csp);
              break;
            }
          }
        }
      }
    }

    // Heal in place: the share at index i is a pure function of the chunk,
    // so overwriting the object restores exactly the bytes the digest names.
    bool healed_all = true;
    for (uint32_t index : rotted) {
      for (const ChunkShare& loc : locs) {
        if (loc.share_index != index) {
          continue;
        }
        PooledBuffer fresh_buf;
        MutableByteSpan fresh = acquire_share_buf(fresh_buf);
        auto encoded = codec->EncodeShareInto(data, index, fresh);
        auto conn = context_.registry->connector(loc.csp);
        if (encoded.ok() && conn.ok() &&
            UploadWithRetry(**conn, TransferKind::kPut, loc.csp,
                            ShareName(chunk_id, index, t), fresh,
                            options_.retry, report.transfer)
                .ok()) {
          spend(fresh.size());
          ++delta.shares_healed;
        } else {
          healed_all = false;
        }
        break;
      }
    }
    if (!rotted.empty() && healed_all) {
      report.repaired_chunks.push_back(chunk_id);
    }

    // Legacy entries earned a full digest set from the verified plaintext;
    // record it so every future read authenticates before decoding.
    if (!all_have_digests) {
      for (const ChunkShare& share : entry->shares) {
        PooledBuffer buf;
        MutableByteSpan span = acquire_share_buf(buf);
        if (!codec->EncodeShareInto(data, share.share_index, span).ok()) {
          continue;
        }
        (void)context_.chunk_table->SetShareDigest(chunk_id, share.share_index,
                                                   Sha1::Hash(span));
      }
      ++delta.records_upgraded;
      report.upgraded_chunks.push_back(chunk_id);
      if (context_.share_index != nullptr && entry->dedup) {
        const ChunkEntry* fresh = context_.chunk_table->Find(chunk_id);
        if (fresh != nullptr) {
          (void)context_.share_index->ReplaceShares(chunk_id, fresh->shares);
        }
      }
    }
  }
  integrity_cursor_ = (start + scanned) % ids.size();
}

Result<ScrubReport> RepairEngine::ScrubOnce(obs::TraceBuilder* trace) {
  if (context_.chunk_table == nullptr || context_.registry == nullptr ||
      context_.ring == nullptr || context_.key_string == nullptr) {
    return FailedPreconditionError("repair engine context is incomplete");
  }
  ScrubReport report;
  RepairStats& delta = report.stats;
  delta.scrub_passes = 1;

  obs::ScopedSpan probe_span;
  if (trace != nullptr) {
    probe_span = trace->Span("probe");
  }
  ProbeSnapshot snapshot = ProbeInternal(delta);
  probe_span.End();

  obs::ScopedSpan scan_span;
  if (trace != nullptr) {
    scan_span = trace->Span("scan");
  }
  std::map<Sha1Digest, std::vector<ChunkShare>> dead_by_chunk;
  std::vector<ChunkHealth> health = ScanInternal(snapshot, delta, &dead_by_chunk);
  scan_span.End();

  obs::ScopedSpan repair_span;
  if (trace != nullptr) {
    repair_span = trace->Span("repair");
  }
  uint64_t budget = options_.bandwidth_budget_bytes;
  uint64_t* budget_left = options_.bandwidth_budget_bytes > 0 ? &budget : nullptr;
  uint32_t repairs = 0;
  for (const ChunkHealth& chunk : health) {
    if (!chunk.degraded()) {
      break;  // sorted: every degraded chunk precedes the healthy ones
    }
    if (options_.max_repairs_per_pass > 0 && repairs >= options_.max_repairs_per_pass) {
      ++delta.chunks_deferred;
      report.unrepaired.push_back(chunk);
      continue;
    }
    Status repaired =
        RepairChunk(chunk, dead_by_chunk[chunk.chunk_id], budget_left, report, delta);
    if (repaired.ok()) {
      ++delta.chunks_repaired;
      ++repairs;
      report.repaired_chunks.push_back(chunk.chunk_id);
      if (context_.share_index != nullptr) {
        // Keep the cross-user index pointing at the rebuilt layout so the
        // next writer's dedup hit references shares that exist.
        const ChunkEntry* moved = context_.chunk_table->Find(chunk.chunk_id);
        if (moved != nullptr && moved->dedup) {
          (void)context_.share_index->ReplaceShares(chunk.chunk_id, moved->shares);
        }
      }
      continue;
    }
    report.unrepaired.push_back(chunk);
    switch (repaired.code()) {
      case StatusCode::kResourceExhausted:
        ++delta.chunks_deferred;
        break;
      case StatusCode::kDataLoss:
        ++delta.chunks_unrepairable;
        break;
      default:
        ++delta.chunks_deferred;  // capacity shortfall: retry when CSPs return
        break;
    }
  }
  repair_span.End();

  obs::ScopedSpan integrity_span;
  if (trace != nullptr) {
    integrity_span = trace->Span("integrity");
  }
  IntegrityPass(budget_left, report, delta);
  integrity_span.End();

  obs::ScopedSpan reclaim_span;
  if (trace != nullptr) {
    reclaim_span = trace->Span("reclaim");
  }
  ReclaimOrphans(budget_left, delta);
  reclaim_span.End();

  pending_reprobe_.clear();
  Fold(delta);

  // Recompute the degraded-write ledger from this pass's ground truth:
  // everything repaired (or found healthy) leaves it, everything still
  // short of target n stays with its current shortfall.
  {
    std::lock_guard<std::mutex> lock(debt_mutex_);
    degraded_debt_.clear();
    for (const ChunkHealth& chunk : report.unrepaired) {
      if (chunk.missing() > 0) {
        degraded_debt_[chunk.chunk_id] = chunk.missing();
      }
    }
    RefreshDebtGaugesLocked();
  }
  return report;
}

void RepairEngine::FlagCspForReprobe(int csp) { pending_reprobe_.insert(csp); }

std::vector<int> RepairEngine::pending_reprobe() const {
  return std::vector<int>(pending_reprobe_.begin(), pending_reprobe_.end());
}

}  // namespace cyrus
