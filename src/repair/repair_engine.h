// Proactive scrub & repair (the background complement to paper §5.5).
//
// CYRUS as published repairs shares only *lazily*: a chunk whose share sits
// on a failed or removed CSP is re-scattered the next time someone happens
// to Get it, so cold data silently decays below the reliability target n
// chosen by Eq. (1). The RepairEngine closes that gap with a scrub pass a
// client (or a background service) runs periodically:
//
//   1. Probe   - one List per active CSP builds a snapshot of which share
//                objects actually exist where; unreachable CSPs are marked
//                failed through the owning client.
//   2. Scan    - every ChunkTable entry is classified against the snapshot.
//                A share location is *dead* when its CSP is failed/removed
//                or the object has silently vanished; a chunk is *degraded*
//                when it has dead locations or fewer live shares than the
//                current Eq.-1 target n.
//   3. Repair  - degraded chunks are repaired worst-first (smallest margin
//                above t, then most missing redundancy, then largest): t
//                surviving shares are gathered, the chunk is decoded with
//                the keyed RS codec, fresh shares at new indices are
//                encoded and placed through the HashRing on CSPs not yet
//                holding one, and the ChunkTable is updated. Transfers run
//                on the shared ThreadPool; a per-pass bandwidth budget and
//                repair cap bound the traffic a scrub may add.
//
// The engine mutates the chunk table but never file metadata; the owning
// CyrusClient republishes metadata for versions whose chunks moved (see
// CyrusClient::ScrubOnce).
#ifndef SRC_REPAIR_REPAIR_ENGINE_H_
#define SRC_REPAIR_REPAIR_ENGINE_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/cloud/availability.h"
#include "src/cloud/registry.h"
#include "src/core/hash_ring.h"
#include "src/core/transfer.h"
#include "src/dedup/share_index.h"
#include "src/meta/chunk_table.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/buffer_pool.h"
#include "src/util/result.h"
#include "src/util/retry.h"
#include "src/util/thread_pool.h"

namespace cyrus {

struct RepairEngineOptions {
  // Most chunks repaired per ScrubOnce pass; 0 = unlimited. The rest stay
  // degraded and are picked up by the next pass (they remain sorted, so the
  // worst chunks always go first).
  uint32_t max_repairs_per_pass = 0;
  // Share bytes (downloaded + uploaded) one pass may move; 0 = unlimited.
  // Repair competes with foreground traffic for the same links, so
  // production deployments cap it.
  uint64_t bandwidth_budget_bytes = 0;
  // Transient-failure retry for probe and repair transfers.
  RetryOptions retry;
  // Chunks whose at-rest share bytes one pass samples for bit rot (digest
  // check without decode); 0 disables the integrity pass. A persistent
  // cursor rotates the sample window so successive passes cover the whole
  // table. Downloads are charged against the same bandwidth budget.
  uint32_t integrity_samples_per_pass = 0;
};

// Monotonic counters over the engine's lifetime.
struct RepairStats {
  uint64_t scrub_passes = 0;
  uint64_t chunks_scanned = 0;
  uint64_t chunks_degraded = 0;
  uint64_t chunks_repaired = 0;     // back to the pass's target n
  uint64_t chunks_unrepairable = 0; // fewer than t live shares reachable
  uint64_t chunks_deferred = 0;     // budget or repair cap hit
  uint64_t shares_rebuilt = 0;      // fresh shares encoded and uploaded
  uint64_t shares_pruned = 0;       // stale dead locations dropped
  uint64_t bytes_moved = 0;         // share bytes downloaded + uploaded
  uint64_t probe_failures = 0;      // List calls that failed (after retry)
  // Orphan-reclaim pass (zero-ref dedup chunks GC'd off the CSPs).
  uint64_t chunks_reclaimed = 0;
  uint64_t shares_reclaimed = 0;    // share objects deleted
  uint64_t bytes_reclaimed = 0;     // physical share bytes freed
  // The budget blocked the deletes, or some failed and the entry was kept
  // as a pending-delete tombstone; either way the next pass retries.
  uint64_t reclaims_deferred = 0;
  // Bit-rot integrity pass (sampled digest checks of at-rest shares).
  uint64_t shares_integrity_checked = 0;  // shares downloaded and hashed
  uint64_t integrity_failures = 0;        // digest mismatches found at rest
  uint64_t shares_healed = 0;             // rotted shares re-encoded in place
  uint64_t records_upgraded = 0;          // digestless entries given digests
};

// One chunk's health as seen by a scan.
struct ChunkHealth {
  Sha1Digest chunk_id;
  uint64_t size = 0;
  uint32_t t = 0;
  uint32_t n_target = 0;     // what this pass would restore the chunk to
  uint32_t live_shares = 0;
  uint32_t dead_locations = 0;

  // Shares above the reconstruction threshold; <= 0 means one more loss
  // destroys data.
  int margin() const { return static_cast<int>(live_shares) - static_cast<int>(t); }
  uint32_t missing() const {
    return n_target > live_shares ? n_target - live_shares : 0;
  }
  bool degraded() const { return dead_locations > 0 || live_shares < n_target; }
};

struct ScrubReport {
  RepairStats stats;         // this pass's deltas (not lifetime totals)
  TransferReport transfer;   // every repair transfer, for the flow simulator
  std::vector<Sha1Digest> repaired_chunks;
  std::vector<ChunkHealth> unrepaired;  // still degraded after the pass
  // Chunks whose table entries gained share digests this pass (either
  // legacy digestless entries upgraded, or healed shares re-digested); the
  // owning client republishes metadata for versions referencing them.
  std::vector<Sha1Digest> upgraded_chunks;
};

// Everything the engine borrows from the owning client. Raw pointers: the
// client owns both the engine and the pointees, and the engine never
// outlives it. `pool` may be null (transfers run synchronously). The
// callbacks route state changes through the client so registry, ring, and
// monitor stay consistent.
struct RepairContext {
  const std::string* key_string = nullptr;
  CspRegistry* registry = nullptr;
  HashRing* ring = nullptr;
  ChunkTable* chunk_table = nullptr;
  AvailabilityMonitor* monitor = nullptr;
  ThreadPool* pool = nullptr;
  bool cluster_aware = false;
  uint32_t t = 0;                              // config threshold (metadata fallback)
  std::function<double()> now;
  std::function<Status(int)> mark_csp_failed;
  std::function<Result<uint32_t>()> current_n;  // Eq. (1) for the active set
  // Cross-user dedup hooks (both optional; null = pre-dedup behaviour).
  // With `share_index` set, ScrubOnce appends an orphan-reclaim pass that
  // deletes the share objects of zero-ref entries under the same bandwidth
  // budget, and Scan skips condemned chunks instead of "repairing" garbage.
  // `chunk_key` resolves the RS key for one chunk (convergent chunks decode
  // under their unwrapped content key); unset falls back to `key_string`.
  ShareIndex* share_index = nullptr;
  std::function<Result<std::string>(const Sha1Digest&, const ChunkEntry&)> chunk_key;
  // Sink for cyrus_scrub_* counters; nullptr = process-wide default.
  obs::MetricsRegistry* metrics = nullptr;
  // Pool for re-encoded share upload buffers (borrowed from the owning
  // client, like everything else here); nullptr = plain heap allocation.
  BufferPool* buffers = nullptr;
};

class RepairEngine {
 public:
  RepairEngine(RepairContext context, RepairEngineOptions options);

  // Which share objects exist on which active CSP (one List per CSP).
  struct ProbeSnapshot {
    // Active CSP index -> names of every object it holds.
    std::map<int, std::set<std::string, std::less<>>> objects_by_csp;
    // Active CSPs whose List failed even after retries; they are marked
    // failed before the scan classifies shares.
    std::vector<int> unreachable;
  };
  ProbeSnapshot Probe();

  // Probe + classify without repairing; degraded chunks first, worst
  // first. Cheap enough to drive dashboards ("how far below n is my cold
  // data?").
  std::vector<ChunkHealth> Scan();

  // One full scrub pass: probe, scan, repair in priority order until done
  // or the pass budget is exhausted. `trace` (nullable) receives
  // probe/scan/repair stage spans.
  Result<ScrubReport> ScrubOnce(obs::TraceBuilder* trace = nullptr);

  // Flags a CSP whose shares must be re-verified before being trusted -
  // the client calls this when a CSP returns from an outage, since objects
  // may have been lost while it was down. Cleared by the next ScrubOnce.
  void FlagCspForReprobe(int csp);
  std::vector<int> pending_reprobe() const;

  // Records that a quorum Put committed `chunk_id` with `missing` shares
  // short of its target n. The debt sits in a ledger exported as the
  // cyrus_degraded_shares / cyrus_degraded_chunks gauges and is recomputed
  // from ground truth after every ScrubOnce pass (repaired chunks leave the
  // ledger; still-degraded ones stay). `missing` == 0 settles the entry.
  void NoteDegradedWrite(const Sha1Digest& chunk_id, uint32_t missing);

  // Sum of missing shares across the degraded-write ledger.
  uint64_t OutstandingDegradedShares() const;

  const RepairStats& stats() const { return stats_; }
  const RepairEngineOptions& options() const { return options_; }
  void set_options(RepairEngineOptions options) { options_ = options; }

 private:
  // The pass's restoration target for a chunk: Eq. (1)'s n clamped to what
  // the active CSP set can actually hold (one share per CSP / cluster),
  // never below the chunk's t when that many CSPs exist.
  uint32_t TargetN(const ChunkEntry& entry) const;

  // Probe/scan with stats accumulated into `delta` (public Probe/Scan wrap
  // these and fold into the lifetime counters).
  ProbeSnapshot ProbeInternal(RepairStats& delta);
  std::vector<ChunkHealth> ScanInternal(
      const ProbeSnapshot& snapshot, RepairStats& delta,
      std::map<Sha1Digest, std::vector<ChunkShare>>* dead_by_chunk);

  // Classifies one chunk against the snapshot; fills `dead` with the
  // locations found dead.
  ChunkHealth Classify(const Sha1Digest& chunk_id, const ChunkEntry& entry,
                       const ProbeSnapshot& snapshot,
                       std::vector<ChunkShare>& dead) const;

  // Repairs one degraded chunk, journaling transfers into `report` and
  // counters into `delta`; decrements `*budget_left` by the bytes moved
  // (budget_left == nullptr means unlimited). Returns OK when the chunk is
  // back at its target n, kResourceExhausted when the pass budget blocked
  // it, kDataLoss when fewer than t live shares were reachable, and
  // kFailedPrecondition when the active CSP set cannot hold the target.
  Status RepairChunk(const ChunkHealth& health, const std::vector<ChunkShare>& dead,
                     uint64_t* budget_left, ScrubReport& report, RepairStats& delta);

  // Orphan-reclaim pass: deletes the share objects of zero-ref ShareIndex
  // entries (skipping any this client's table still references), erases the
  // entries, and evicts matching zero-ref local entries. Budgeted like
  // repair; deferred entries wait for the next pass. A delete that still
  // fails after retries leaves a pending-delete tombstone in the index
  // holding the surviving locations, so the objects are never silently
  // orphaned. No-op without a share_index.
  void ReclaimOrphans(uint64_t* budget_left, RepairStats& delta);

  // Sampled bit-rot pass: downloads the shares of up to
  // options_.integrity_samples_per_pass chunks (round-robin from a
  // persistent cursor), hashes each against the table's stored digest, and
  // heals mismatches in place (decode from clean shares, re-encode the
  // rotted index, overwrite the object). Entries without digests take the
  // error-correcting decode once and are upgraded with a full digest set.
  // Healed/upgraded chunks land in report.repaired_chunks /
  // report.upgraded_chunks for metadata republish. No-op when the knob is 0.
  void IntegrityPass(uint64_t* budget_left, ScrubReport& report,
                     RepairStats& delta);

  // Adds `delta` to the lifetime totals and mirrors it into the registry's
  // cyrus_scrub_* counters.
  void Fold(const RepairStats& delta);

  // Requires debt_mutex_ held.
  void RefreshDebtGaugesLocked();

  RepairContext context_;
  RepairEngineOptions options_;
  RepairStats stats_;
  std::set<int> pending_reprobe_;
  obs::MetricsRegistry* metrics_ = nullptr;

  // Registry mirrors of the lifetime scrub stats, resolved once at
  // construction. Per-engine members, not a process-global cache keyed by
  // registry pointer: a destroyed registry's address can be reused by a new
  // one, which would make such a cache hand back dangling counters.
  struct ScrubCounters {
    obs::Counter* passes = nullptr;
    obs::Counter* scanned = nullptr;
    obs::Counter* degraded = nullptr;
    obs::Counter* repaired = nullptr;
    obs::Counter* unrepairable = nullptr;
    obs::Counter* deferred = nullptr;
    obs::Counter* shares_rebuilt = nullptr;
    obs::Counter* shares_pruned = nullptr;
    obs::Counter* bytes_moved = nullptr;
    obs::Counter* probe_failures = nullptr;
    obs::Counter* chunks_reclaimed = nullptr;
    obs::Counter* shares_reclaimed = nullptr;
    obs::Counter* bytes_reclaimed = nullptr;
    obs::Counter* integrity_checked = nullptr;
    obs::Counter* integrity_failures = nullptr;
    obs::Counter* shares_healed = nullptr;
    obs::Counter* records_upgraded = nullptr;
  };
  ScrubCounters scrub_counters_;

  // Round-robin position of the sampled integrity pass over the chunk-id
  // space, so successive budgeted passes sweep the whole table instead of
  // re-checking the same prefix.
  size_t integrity_cursor_ = 0;

  // Degraded-write ledger: chunk -> shares still owed to reach target n.
  // Own mutex (not the scrub path's implicit driver-thread serialization)
  // because Put completions note debt while a scrub may be recomputing it.
  mutable std::mutex debt_mutex_;
  std::map<Sha1Digest, uint32_t> degraded_debt_;
  obs::Gauge* degraded_shares_gauge_ = nullptr;
  obs::Gauge* degraded_chunks_gauge_ = nullptr;
  obs::Counter* degraded_writes_ = nullptr;
};

}  // namespace cyrus

#endif  // SRC_REPAIR_REPAIR_ENGINE_H_
