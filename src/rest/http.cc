#include "src/rest/http.h"

#include "src/util/strings.h"

namespace cyrus {
namespace {

constexpr char kHexDigits[] = "0123456789ABCDEF";

bool IsUnreserved(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
         c == '-' || c == '_' || c == '.' || c == '~';
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

std::string_view HttpMethodName(HttpMethod method) {
  switch (method) {
    case HttpMethod::kGet:
      return "GET";
    case HttpMethod::kPost:
      return "POST";
    case HttpMethod::kPut:
      return "PUT";
    case HttpMethod::kDelete:
      return "DELETE";
  }
  return "UNKNOWN";
}

std::string_view HttpRequest::Header(std::string_view key) const {
  auto it = headers.find(std::string(key));
  return it == headers.end() ? std::string_view() : std::string_view(it->second);
}

std::string_view HttpRequest::Query(std::string_view key) const {
  auto it = query.find(std::string(key));
  return it == query.end() ? std::string_view() : std::string_view(it->second);
}

std::string HttpRequest::RequestLine() const {
  std::string line = StrCat(HttpMethodName(method), " ", path);
  if (!query.empty()) {
    line += "?" + BuildQueryString(query);
  }
  return line;
}

HttpResponse HttpResponse::Ok(Bytes body, std::string content_type) {
  HttpResponse response;
  response.status = 200;
  response.headers["content-type"] = std::move(content_type);
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::Error(int status, std::string_view message,
                                 std::string content_type) {
  HttpResponse response;
  response.status = status;
  response.headers["content-type"] = std::move(content_type);
  const std::string body = StrCat("{\"error\": \"", message, "\"}");
  response.body = ToBytes(body);
  return response;
}

std::string UrlEncode(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (IsUnreserved(c)) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHexDigits[static_cast<uint8_t>(c) >> 4]);
      out.push_back(kHexDigits[static_cast<uint8_t>(c) & 0x0f]);
    }
  }
  return out;
}

Result<std::string> UrlDecode(std::string_view encoded) {
  std::string out;
  out.reserve(encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    const char c = encoded[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%') {
      if (i + 2 >= encoded.size()) {
        return InvalidArgumentError("truncated percent escape");
      }
      const int hi = HexNibble(encoded[i + 1]);
      const int lo = HexNibble(encoded[i + 2]);
      if (hi < 0 || lo < 0) {
        return InvalidArgumentError("bad percent escape");
      }
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string BuildQueryString(const std::map<std::string, std::string>& query) {
  std::string out;
  for (const auto& [key, value] : query) {
    if (!out.empty()) {
      out += "&";
    }
    out += UrlEncode(key) + "=" + UrlEncode(value);
  }
  return out;
}

Result<std::map<std::string, std::string>> ParseQueryString(std::string_view text) {
  std::map<std::string, std::string> out;
  if (text.empty()) {
    return out;
  }
  for (const std::string& pair : Split(text, '&')) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      CYRUS_ASSIGN_OR_RETURN(std::string key, UrlDecode(pair));
      out[key] = "";
      continue;
    }
    CYRUS_ASSIGN_OR_RETURN(std::string key, UrlDecode(pair.substr(0, eq)));
    CYRUS_ASSIGN_OR_RETURN(std::string value, UrlDecode(pair.substr(eq + 1)));
    out[std::move(key)] = std::move(value);
  }
  return out;
}

}  // namespace cyrus
