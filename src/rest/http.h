// A minimal HTTP message model for the simulated provider APIs.
//
// The paper's connectors "create a specific REST URL with proper parameters
// and content" (§6); this module supplies the request/response types, URL
// percent-encoding, and query-string handling those connectors and the
// simulated vendor endpoints (src/rest/rest_server.h) share. There is no
// socket layer - requests are delivered in-process - but the boundary is
// the same wire-shaped interface a real deployment would cross.
#ifndef SRC_REST_HTTP_H_
#define SRC_REST_HTTP_H_

#include <map>
#include <string>

#include "src/util/bytes.h"
#include "src/util/result.h"

namespace cyrus {

enum class HttpMethod { kGet, kPost, kPut, kDelete };

std::string_view HttpMethodName(HttpMethod method);

struct HttpRequest {
  HttpMethod method = HttpMethod::kGet;
  std::string path;  // path only, e.g. "/2/files/upload"
  std::map<std::string, std::string> query;
  std::map<std::string, std::string> headers;  // lowercase keys
  Bytes body;

  // Convenience accessors.
  std::string_view Header(std::string_view key) const;
  std::string_view Query(std::string_view key) const;

  // Renders "<METHOD> <path>?<query>" for logs and tests.
  std::string RequestLine() const;
};

struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;
  Bytes body;

  static HttpResponse Ok(Bytes body, std::string content_type);
  static HttpResponse Error(int status, std::string_view message,
                            std::string content_type = "application/json");

  bool ok() const { return status >= 200 && status < 300; }
};

// Percent-encodes every character outside [A-Za-z0-9_.~-].
std::string UrlEncode(std::string_view raw);

// Decodes %XX escapes and '+' as space. Fails on malformed escapes.
Result<std::string> UrlDecode(std::string_view encoded);

// Builds "a=1&b=x%20y" from a map (keys sorted, values encoded).
std::string BuildQueryString(const std::map<std::string, std::string>& query);

// Parses a query string into a map (later duplicates win).
Result<std::map<std::string, std::string>> ParseQueryString(std::string_view text);

}  // namespace cyrus

#endif  // SRC_REST_HTTP_H_
