#include "src/rest/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/util/strings.h"

namespace cyrus {
namespace {

const JsonValue& NullValue() {
  static const JsonValue kNull;
  return kNull;
}

const std::string& EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}

const JsonValue::Object& EmptyObject() {
  static const JsonValue::Object kEmpty;
  return kEmpty;
}

const JsonValue::Array& EmptyArray() {
  static const JsonValue::Array kEmpty;
  return kEmpty;
}

void AppendEscaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<uint8_t>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 passthrough
        }
    }
  }
  out.push_back('"');
}

void AppendNumber(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    out += StrCat(static_cast<long long>(d));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    CYRUS_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return InvalidArgumentError("trailing characters after JSON value");
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return InvalidArgumentError("unexpected end of JSON input");
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      CYRUS_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (ConsumeLiteral("true")) {
      return JsonValue(true);
    }
    if (ConsumeLiteral("false")) {
      return JsonValue(false);
    }
    if (ConsumeLiteral("null")) {
      return JsonValue();
    }
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue::Object object;
    SkipWhitespace();
    if (Consume('}')) {
      return JsonValue(std::move(object));
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return InvalidArgumentError("expected object key");
      }
      CYRUS_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Consume(':')) {
        return InvalidArgumentError("expected ':' after object key");
      }
      CYRUS_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      object[std::move(key)] = std::move(value);
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return JsonValue(std::move(object));
      }
      return InvalidArgumentError("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue::Array array;
    SkipWhitespace();
    if (Consume(']')) {
      return JsonValue(std::move(array));
    }
    for (;;) {
      CYRUS_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      array.push_back(std::move(value));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return JsonValue(std::move(array));
      }
      return InvalidArgumentError("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return InvalidArgumentError("truncated \\u escape");
          }
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return InvalidArgumentError("bad \\u escape");
            }
          }
          // Encode the BMP code point as UTF-8 (surrogates unsupported).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return InvalidArgumentError("unknown escape character");
      }
    }
    return InvalidArgumentError("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return InvalidArgumentError("invalid JSON value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return InvalidArgumentError(StrCat("invalid number: ", token));
    }
    return JsonValue(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonValue::AsBool(bool fallback) const {
  const bool* b = std::get_if<bool>(&value_);
  return b != nullptr ? *b : fallback;
}

double JsonValue::AsNumber(double fallback) const {
  const double* d = std::get_if<double>(&value_);
  return d != nullptr ? *d : fallback;
}

const std::string& JsonValue::AsString() const {
  const std::string* s = std::get_if<std::string>(&value_);
  return s != nullptr ? *s : EmptyString();
}

const JsonValue::Object& JsonValue::AsObject() const {
  const Object* o = std::get_if<Object>(&value_);
  return o != nullptr ? *o : EmptyObject();
}

const JsonValue::Array& JsonValue::AsArray() const {
  const Array* a = std::get_if<Array>(&value_);
  return a != nullptr ? *a : EmptyArray();
}

const JsonValue& JsonValue::operator[](std::string_view key) const {
  const Object* o = std::get_if<Object>(&value_);
  if (o == nullptr) {
    return NullValue();
  }
  auto it = o->find(std::string(key));
  return it == o->end() ? NullValue() : it->second;
}

JsonValue& JsonValue::Set(std::string key, JsonValue value) {
  if (!is_object()) {
    value_ = Object{};
  }
  std::get<Object>(value_)[std::move(key)] = std::move(value);
  return *this;
}

JsonValue& JsonValue::Append(JsonValue value) {
  if (!is_array()) {
    value_ = Array{};
  }
  std::get<Array>(value_).push_back(std::move(value));
  return *this;
}

std::string JsonValue::Dump() const {
  std::string out;
  if (is_null()) {
    out = "null";
  } else if (is_bool()) {
    out = AsBool() ? "true" : "false";
  } else if (is_number()) {
    AppendNumber(out, AsNumber());
  } else if (is_string()) {
    AppendEscaped(out, AsString());
  } else if (is_object()) {
    out = "{";
    bool first = true;
    for (const auto& [key, value] : AsObject()) {
      if (!first) {
        out += ",";
      }
      first = false;
      AppendEscaped(out, key);
      out += ":";
      out += value.Dump();
    }
    out += "}";
  } else {
    out = "[";
    bool first = true;
    for (const JsonValue& value : AsArray()) {
      if (!first) {
        out += ",";
      }
      first = false;
      out += value.Dump();
    }
    out += "]";
  }
  return out;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace cyrus
