// A small JSON value model, parser, and serializer.
//
// Most of Table 2's providers speak JSON (Dropbox, Google Drive, Box...);
// the simulated REST endpoints and the connector use this module for their
// message bodies. Supports the full JSON data model with UTF-8 passthrough
// (\uXXXX escapes are decoded for the BMP).
#ifndef SRC_REST_JSON_H_
#define SRC_REST_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/util/result.h"

namespace cyrus {

class JsonValue {
 public:
  using Object = std::map<std::string, JsonValue>;
  using Array = std::vector<JsonValue>;

  JsonValue() : value_(nullptr) {}                       // null
  JsonValue(bool b) : value_(b) {}                       // NOLINT
  JsonValue(double d) : value_(d) {}                     // NOLINT
  JsonValue(int i) : value_(static_cast<double>(i)) {}   // NOLINT
  JsonValue(int64_t i) : value_(static_cast<double>(i)) {}  // NOLINT
  JsonValue(uint64_t i) : value_(static_cast<double>(i)) {}  // NOLINT
  JsonValue(const char* s) : value_(std::string(s)) {}   // NOLINT
  JsonValue(std::string s) : value_(std::move(s)) {}     // NOLINT
  JsonValue(Object o) : value_(std::move(o)) {}          // NOLINT
  JsonValue(Array a) : value_(std::move(a)) {}           // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }

  bool AsBool(bool fallback = false) const;
  double AsNumber(double fallback = 0.0) const;
  const std::string& AsString() const;  // empty string when not a string
  const Object& AsObject() const;       // empty object when not an object
  const Array& AsArray() const;         // empty array when not an array

  // Object field lookup; returns a shared null value when absent.
  const JsonValue& operator[](std::string_view key) const;

  // Mutable object/array builders.
  JsonValue& Set(std::string key, JsonValue value);
  JsonValue& Append(JsonValue value);

  // Compact serialization (keys in map order, numbers via shortest round
  // trip for integers, %.17g otherwise).
  std::string Dump() const;

  // Strict parser: the whole input must be one JSON value.
  static Result<JsonValue> Parse(std::string_view text);

  friend bool operator==(const JsonValue& a, const JsonValue& b) {
    return a.value_ == b.value_;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Object, Array> value_;
};

}  // namespace cyrus

#endif  // SRC_REST_JSON_H_
