#include "src/rest/oauth.h"

#include "src/util/hex.h"
#include "src/util/strings.h"

namespace cyrus {

OAuthService::OAuthService(double token_lifetime_seconds, uint64_t seed)
    : token_lifetime_(token_lifetime_seconds), rng_(seed) {}

void OAuthService::RegisterClient(std::string client_id, std::string client_secret,
                                  std::string authorization_code) {
  clients_[std::move(client_id)] =
      Client{std::move(client_secret), std::move(authorization_code)};
}

std::string OAuthService::MintToken(std::string_view prefix) {
  Bytes random(16);
  for (auto& b : random) {
    b = static_cast<uint8_t>(rng_.Next());
  }
  return StrCat(prefix, "-", HexEncode(random));
}

Result<OAuthToken> OAuthService::ExchangeAuthorizationCode(std::string_view client_id,
                                                           std::string_view client_secret,
                                                           std::string_view code,
                                                           double now) {
  auto it = clients_.find(client_id);
  if (it == clients_.end() || it->second.secret != client_secret) {
    return PermissionDeniedError("invalid_client");
  }
  if (it->second.authorization_code != code) {
    return PermissionDeniedError("invalid_grant");
  }
  OAuthToken token;
  token.access_token = MintToken("at");
  token.refresh_token = MintToken("rt");
  token.expires_at = now + token_lifetime_;
  access_tokens_[token.access_token] = token.expires_at;
  refresh_tokens_[token.refresh_token] = std::string(client_id);
  return token;
}

Result<OAuthToken> OAuthService::Refresh(std::string_view client_id,
                                         std::string_view client_secret,
                                         std::string_view refresh_token, double now) {
  auto client = clients_.find(client_id);
  if (client == clients_.end() || client->second.secret != client_secret) {
    return PermissionDeniedError("invalid_client");
  }
  auto it = refresh_tokens_.find(refresh_token);
  if (it == refresh_tokens_.end() || it->second != client_id) {
    return PermissionDeniedError("invalid_grant");
  }
  OAuthToken token;
  token.access_token = MintToken("at");
  token.refresh_token = std::string(refresh_token);  // refresh tokens persist
  token.expires_at = now + token_lifetime_;
  access_tokens_[token.access_token] = token.expires_at;
  return token;
}

Status OAuthService::ValidateBearer(std::string_view access_token, double now) const {
  auto it = access_tokens_.find(access_token);
  if (it == access_tokens_.end()) {
    return PermissionDeniedError("invalid_token");
  }
  if (now >= it->second) {
    return PermissionDeniedError("expired_token");
  }
  return OkStatus();
}

void OAuthService::RevokeAllAccessTokens() { access_tokens_.clear(); }

}  // namespace cyrus
