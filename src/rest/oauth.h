// An OAuth-2.0-style token service for the simulated providers.
//
// Table 2 shows most CSPs authenticate with OAuth 2.0 (plus API keys and
// password schemes); the simulated vendor endpoints embed this service and
// the connector drives it exactly as the prototype drives real OAuth:
// exchange client credentials + an authorization grant for a bearer token,
// attach the token to every request, refresh it when it expires (§6 - "we
// utilize existing CSP authentication mechanisms", and the trial's UX note
// about caching authentication keys so users log in once).
#ifndef SRC_REST_OAUTH_H_
#define SRC_REST_OAUTH_H_

#include <map>
#include <string>

#include "src/util/result.h"
#include "src/util/rng.h"

namespace cyrus {

struct OAuthToken {
  std::string access_token;
  std::string refresh_token;
  double expires_at = 0.0;  // virtual time
};

class OAuthService {
 public:
  // token_lifetime: seconds a bearer token stays valid.
  explicit OAuthService(double token_lifetime_seconds = 3600.0, uint64_t seed = 7);

  // Registers an app (client_id/client_secret pair) authorized by a user
  // who granted it `authorization_code`.
  void RegisterClient(std::string client_id, std::string client_secret,
                      std::string authorization_code);

  // authorization_code grant: code + client credentials -> tokens.
  Result<OAuthToken> ExchangeAuthorizationCode(std::string_view client_id,
                                               std::string_view client_secret,
                                               std::string_view code, double now);

  // refresh_token grant.
  Result<OAuthToken> Refresh(std::string_view client_id, std::string_view client_secret,
                             std::string_view refresh_token, double now);

  // Validates "Bearer <token>" material on a resource request.
  Status ValidateBearer(std::string_view access_token, double now) const;

  // Expires every outstanding access token (for tests and outage drills).
  void RevokeAllAccessTokens();

 private:
  struct Client {
    std::string secret;
    std::string authorization_code;
  };

  std::string MintToken(std::string_view prefix);

  double token_lifetime_;
  Rng rng_;
  std::map<std::string, Client, std::less<>> clients_;
  std::map<std::string, double, std::less<>> access_tokens_;   // token -> expiry
  std::map<std::string, std::string, std::less<>> refresh_tokens_;  // token -> client
};

}  // namespace cyrus

#endif  // SRC_REST_OAUTH_H_
