#include "src/rest/rest_connector.h"

#include <cstdlib>

#include "src/rest/json.h"
#include "src/rest/xml.h"
#include "src/util/strings.h"

namespace cyrus {

void RestConnector::set_time(double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  now_ = now;
}

uint64_t RestConnector::requests_sent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return requests_;
}

uint64_t RestConnector::token_refreshes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return refreshes_;
}

Status RestConnector::StatusFromHttp(const HttpResponse& response,
                                     std::string_view context) {
  if (response.ok()) {
    return OkStatus();
  }
  const std::string detail = StrCat(context, ": HTTP ", response.status);
  switch (response.status) {
    case 401:
    case 403:
      return PermissionDeniedError(detail);
    case 404:
      return NotFoundError(detail);
    case 507:
    case 413:
      return ResourceExhaustedError(detail);
    case 503:
      return UnavailableError(detail);
    default:
      return InternalError(detail);
  }
}

Status RestConnector::FetchInitialToken() {
  const RestVendorOptions& vendor = server_->options();
  HttpRequest request;
  request.method = HttpMethod::kPost;
  request.path = "/oauth2/token";
  request.body = ToBytes(BuildQueryString({{"grant_type", "authorization_code"},
                                           {"code", grant_},
                                           {"client_id", vendor.client_id},
                                           {"client_secret", vendor.client_secret}}));
  ++requests_;
  const HttpResponse response = server_->Handle(request);
  CYRUS_RETURN_IF_ERROR(StatusFromHttp(response, "token exchange"));
  CYRUS_ASSIGN_OR_RETURN(JsonValue body, JsonValue::Parse(ToString(response.body)));
  token_.access_token = body["access_token"].AsString();
  token_.refresh_token = body["refresh_token"].AsString();
  token_.expires_at = now_ + body["expires_in"].AsNumber();
  if (token_.access_token.empty()) {
    return PermissionDeniedError("token exchange returned no access token");
  }
  return OkStatus();
}

Status RestConnector::RefreshToken() {
  const RestVendorOptions& vendor = server_->options();
  HttpRequest request;
  request.method = HttpMethod::kPost;
  request.path = "/oauth2/token";
  request.body = ToBytes(BuildQueryString({{"grant_type", "refresh_token"},
                                           {"refresh_token", token_.refresh_token},
                                           {"client_id", vendor.client_id},
                                           {"client_secret", vendor.client_secret}}));
  ++requests_;
  ++refreshes_;
  const HttpResponse response = server_->Handle(request);
  CYRUS_RETURN_IF_ERROR(StatusFromHttp(response, "token refresh"));
  CYRUS_ASSIGN_OR_RETURN(JsonValue body, JsonValue::Parse(ToString(response.body)));
  token_.access_token = body["access_token"].AsString();
  token_.expires_at = now_ + body["expires_in"].AsNumber();
  return OkStatus();
}

Status RestConnector::Authenticate(const Credentials& credentials) {
  std::lock_guard<std::mutex> lock(mutex_);
  grant_ = credentials.token;
  if (server_->options().dialect == ApiDialect::kJson) {
    CYRUS_RETURN_IF_ERROR(FetchInitialToken());
  } else if (grant_ != server_->options().api_key) {
    // Fail fast on a wrong key; real vendors reject at the first request.
    return PermissionDeniedError(StrCat(id_, ": bad API key"));
  }
  authenticated_ = true;
  return OkStatus();
}

Result<HttpResponse> RestConnector::SendAuthorized(HttpRequest request) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!authenticated_) {
    return PermissionDeniedError(StrCat(id_, ": not authenticated"));
  }
  const bool json = server_->options().dialect == ApiDialect::kJson;
  auto attach_auth = [&](HttpRequest& r) {
    if (json) {
      r.headers["authorization"] = StrCat("Bearer ", token_.access_token);
    } else {
      r.headers["x-api-key"] = grant_;
    }
  };
  attach_auth(request);
  ++requests_;
  HttpResponse response = server_->Handle(request);
  if (response.status == 401 && json) {
    // Expired or revoked bearer token: refresh and retry once (the
    // "login once" behaviour the trial users saw, §7.5).
    CYRUS_RETURN_IF_ERROR(RefreshToken());
    attach_auth(request);
    ++requests_;
    response = server_->Handle(request);
  }
  return response;
}

Result<std::vector<ObjectInfo>> RestConnector::List(std::string_view prefix) {
  const bool json = server_->options().dialect == ApiDialect::kJson;
  HttpRequest request;
  request.method = HttpMethod::kGet;
  request.path = json ? "/files/list" : "/v1/objects";
  request.query["prefix"] = std::string(prefix);
  CYRUS_ASSIGN_OR_RETURN(HttpResponse response, SendAuthorized(std::move(request)));
  CYRUS_RETURN_IF_ERROR(StatusFromHttp(response, StrCat(id_, " list")));

  std::vector<ObjectInfo> out;
  if (json) {
    CYRUS_ASSIGN_OR_RETURN(JsonValue body, JsonValue::Parse(ToString(response.body)));
    for (const JsonValue& entry : body["entries"].AsArray()) {
      out.push_back(ObjectInfo{entry["name"].AsString(),
                               static_cast<uint64_t>(entry["size"].AsNumber()),
                               entry["modified"].AsNumber()});
    }
  } else {
    CYRUS_ASSIGN_OR_RETURN(XmlElement root, XmlElement::Parse(ToString(response.body)));
    for (const XmlElement* object : root.Children("Object")) {
      out.push_back(
          ObjectInfo{std::string(object->Attribute("name")),
                     std::strtoull(std::string(object->Attribute("size")).c_str(),
                                   nullptr, 10),
                     std::strtod(std::string(object->Attribute("modified")).c_str(),
                                 nullptr)});
    }
  }
  return out;
}

Status RestConnector::Upload(std::string_view name, ByteSpan data) {
  const bool json = server_->options().dialect == ApiDialect::kJson;
  HttpRequest request;
  request.method = json ? HttpMethod::kPost : HttpMethod::kPut;
  request.path = json ? "/files/upload" : "/v1/objects";
  request.query["name"] = std::string(name);
  request.body.assign(data.begin(), data.end());
  CYRUS_ASSIGN_OR_RETURN(HttpResponse response, SendAuthorized(std::move(request)));
  return StatusFromHttp(response, StrCat(id_, " upload ", name));
}

Result<Bytes> RestConnector::Download(std::string_view name) {
  const bool json = server_->options().dialect == ApiDialect::kJson;
  HttpRequest request;
  request.method = HttpMethod::kGet;
  request.path = json ? "/files/download" : "/v1/object";
  request.query["name"] = std::string(name);
  CYRUS_ASSIGN_OR_RETURN(HttpResponse response, SendAuthorized(std::move(request)));
  CYRUS_RETURN_IF_ERROR(StatusFromHttp(response, StrCat(id_, " download ", name)));
  return response.body;
}

Status RestConnector::Delete(std::string_view name) {
  const bool json = server_->options().dialect == ApiDialect::kJson;
  HttpRequest request;
  request.method = json ? HttpMethod::kPost : HttpMethod::kDelete;
  request.path = json ? "/files/delete" : "/v1/objects";
  request.query["name"] = std::string(name);
  CYRUS_ASSIGN_OR_RETURN(HttpResponse response, SendAuthorized(std::move(request)));
  return StatusFromHttp(response, StrCat(id_, " delete ", name));
}

}  // namespace cyrus
