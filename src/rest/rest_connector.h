// RestConnector: CloudConnector over a vendor REST endpoint.
//
// The production-shaped connector of paper §6: it maps CYRUS's five basic
// operations onto vendor-specific URLs, speaks the vendor's dialect (JSON +
// OAuth bearer tokens, or XML + API key), caches authentication material so
// the user logs in once, and transparently refreshes expired tokens
// (retrying the failed request once). CyrusClient runs unmodified on top -
// the point of the paper's CSP-agnostic design.
#ifndef SRC_REST_REST_CONNECTOR_H_
#define SRC_REST_REST_CONNECTOR_H_

#include <memory>
#include <mutex>
#include <string>

#include "src/cloud/connector.h"
#include "src/rest/rest_server.h"

namespace cyrus {

class RestConnector : public CloudConnector {
 public:
  // Borrows the server (the "network"); callers keep it alive.
  RestConnector(std::string id, std::shared_ptr<RestVendorServer> server)
      : id_(std::move(id)), server_(std::move(server)) {}

  std::string_view id() const override { return id_; }

  // For the JSON dialect, `credentials.token` carries the OAuth
  // authorization code the user granted (client id/secret come from the
  // app registration). For the XML dialect it carries the API key.
  Status Authenticate(const Credentials& credentials) override;

  Result<std::vector<ObjectInfo>> List(std::string_view prefix) override;
  Status Upload(std::string_view name, ByteSpan data) override;
  Result<Bytes> Download(std::string_view name) override;
  Status Delete(std::string_view name) override;

  // Virtual clock for token expiry bookkeeping (mirrors the server's).
  void set_time(double now);

  // Requests issued (including token traffic); tests assert refresh flows.
  uint64_t requests_sent() const;
  uint64_t token_refreshes() const;

 private:
  // Sends with auth attached; on 401 refreshes the token and retries once.
  Result<HttpResponse> SendAuthorized(HttpRequest request);
  Status FetchInitialToken();
  Status RefreshToken();
  static Status StatusFromHttp(const HttpResponse& response, std::string_view context);

  std::string id_;
  std::shared_ptr<RestVendorServer> server_;

  mutable std::mutex mutex_;
  bool authenticated_ = false;
  std::string grant_;  // authorization code (JSON) or API key (XML)
  OAuthToken token_;
  double now_ = 0.0;
  uint64_t requests_ = 0;
  uint64_t refreshes_ = 0;
};

}  // namespace cyrus

#endif  // SRC_REST_REST_CONNECTOR_H_
