#include "src/rest/rest_server.h"

#include "src/crypto/sha1.h"
#include "src/obs/export.h"
#include "src/rest/json.h"
#include "src/rest/xml.h"
#include "src/util/strings.h"

namespace cyrus {
namespace {

constexpr std::string_view kBearerPrefix = "Bearer ";

}  // namespace

HttpResponse ServeMetricsEndpoint(const obs::MetricsRegistry* registry,
                                  const HttpRequest& request) {
  if (request.method != HttpMethod::kGet) {
    return HttpResponse::Error(405, "metrics endpoint is GET-only");
  }
  if (registry == nullptr) {
    registry = &obs::MetricsRegistry::Default();
  }
  if (request.Query("format") == "json") {
    return HttpResponse::Ok(ToBytes(obs::RenderMetricsJson(registry->Snapshot())),
                            "application/json");
  }
  return HttpResponse::Ok(ToBytes(obs::RenderPrometheusText(registry->Snapshot())),
                          "text/plain; version=0.0.4");
}

RestVendorServer::RestVendorServer(RestVendorOptions options)
    : options_(std::move(options)),
      oauth_(options_.token_lifetime_seconds, /*seed=*/Sha1::Hash(options_.id).Prefix64()) {
  oauth_.RegisterClient(options_.client_id, options_.client_secret,
                        options_.authorization_code);
}

void RestVendorServer::set_time(double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  now_ = now;
}

void RestVendorServer::set_available(bool available) {
  std::lock_guard<std::mutex> lock(mutex_);
  available_ = available;
}

void RestVendorServer::ExpireTokens() {
  std::lock_guard<std::mutex> lock(mutex_);
  oauth_.RevokeAllAccessTokens();
}

uint64_t RestVendorServer::used_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_bytes_;
}

uint64_t RestVendorServer::object_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t count = 0;
  for (const auto& [name, versions] : objects_) {
    count += versions.size();
  }
  return count;
}

uint64_t RestVendorServer::requests_served() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return requests_;
}

HttpResponse RestVendorServer::Handle(const HttpRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++requests_;
  // The scrape endpoint answers even while the vendor simulates an outage:
  // an operator needs the health export most when the service is down.
  if (request.path == "/metrics") {
    return HandleMetrics(request);
  }
  if (!available_) {
    return HttpResponse::Error(503, "service unavailable");
  }
  // The token endpoint is dialect-independent (XML vendors use API keys
  // and never call it, but serving it is harmless).
  if (request.path == "/oauth2/token") {
    return HandleToken(request);
  }
  return options_.dialect == ApiDialect::kJson ? HandleJson(request)
                                               : HandleXml(request);
}

HttpResponse RestVendorServer::HandleMetrics(const HttpRequest& request) {
  return ServeMetricsEndpoint(options_.metrics, request);
}

HttpResponse RestVendorServer::HandleToken(const HttpRequest& request) {
  auto form = ParseQueryString(ToString(request.body));
  if (!form.ok()) {
    return HttpResponse::Error(400, "malformed token request");
  }
  const std::string grant_type = (*form)["grant_type"];
  Result<OAuthToken> token = PermissionDeniedError("unsupported_grant_type");
  if (grant_type == "authorization_code") {
    token = oauth_.ExchangeAuthorizationCode((*form)["client_id"],
                                             (*form)["client_secret"], (*form)["code"],
                                             now_);
  } else if (grant_type == "refresh_token") {
    token = oauth_.Refresh((*form)["client_id"], (*form)["client_secret"],
                           (*form)["refresh_token"], now_);
  }
  if (!token.ok()) {
    return HttpResponse::Error(401, token.status().message());
  }
  JsonValue body;
  body.Set("access_token", token->access_token)
      .Set("refresh_token", token->refresh_token)
      .Set("token_type", "bearer")
      .Set("expires_in", options_.token_lifetime_seconds);
  return HttpResponse::Ok(ToBytes(body.Dump()), "application/json");
}

Status RestVendorServer::StoreObject(std::string_view name, ByteSpan data) {
  auto& versions = objects_[std::string(name)];
  uint64_t delta = data.size();
  if (options_.naming == NamingPolicy::kNameKeyed && !versions.empty()) {
    delta = data.size() >= versions.back().data.size()
                ? data.size() - versions.back().data.size()
                : 0;
  }
  if (options_.quota_bytes > 0 && used_bytes_ + delta > options_.quota_bytes) {
    if (versions.empty()) {
      objects_.erase(std::string(name));
    }
    return ResourceExhaustedError("quota exceeded");
  }
  StoredObject object;
  object.data.assign(data.begin(), data.end());
  object.modified_time = now_;
  if (options_.naming == NamingPolicy::kNameKeyed && !versions.empty()) {
    used_bytes_ -= versions.back().data.size();
    versions.back() = std::move(object);
  } else {
    versions.push_back(std::move(object));
  }
  used_bytes_ += data.size();
  return OkStatus();
}

HttpResponse RestVendorServer::NotFoundResponse(std::string_view name) const {
  return HttpResponse::Error(404, StrCat("no object named ", name));
}

HttpResponse RestVendorServer::HandleJson(const HttpRequest& request) {
  // Bearer-token authentication on every resource route.
  const std::string_view auth = request.Header("authorization");
  if (!StartsWith(auth, kBearerPrefix) ||
      !oauth_.ValidateBearer(auth.substr(kBearerPrefix.size()), now_).ok()) {
    return HttpResponse::Error(401, "invalid or expired token");
  }

  if (request.path == "/files/list" && request.method == HttpMethod::kGet) {
    const std::string prefix(request.Query("prefix"));
    JsonValue entries{JsonValue::Array{}};
    for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
      if (!StartsWith(it->first, prefix)) {
        break;
      }
      for (const StoredObject& version : it->second) {
        JsonValue entry;
        entry.Set("name", it->first)
            .Set("size", static_cast<uint64_t>(version.data.size()))
            .Set("modified", version.modified_time);
        entries.Append(std::move(entry));
      }
    }
    JsonValue body;
    body.Set("entries", std::move(entries));
    return HttpResponse::Ok(ToBytes(body.Dump()), "application/json");
  }

  if (request.path == "/files/upload" && request.method == HttpMethod::kPost) {
    const std::string name(request.Query("name"));
    if (name.empty()) {
      return HttpResponse::Error(400, "missing name");
    }
    if (Status stored = StoreObject(name, request.body); !stored.ok()) {
      return HttpResponse::Error(
          stored.code() == StatusCode::kResourceExhausted ? 507 : 500,
          stored.message());
    }
    JsonValue body;
    body.Set("name", name).Set("size", static_cast<uint64_t>(request.body.size()));
    return HttpResponse::Ok(ToBytes(body.Dump()), "application/json");
  }

  if (request.path == "/files/download" && request.method == HttpMethod::kGet) {
    const std::string name(request.Query("name"));
    auto it = objects_.find(name);
    if (it == objects_.end() || it->second.empty()) {
      return NotFoundResponse(name);
    }
    return HttpResponse::Ok(it->second.back().data, "application/octet-stream");
  }

  if (request.path == "/files/delete" && request.method == HttpMethod::kPost) {
    const std::string name(request.Query("name"));
    auto it = objects_.find(name);
    if (it != objects_.end()) {
      for (const StoredObject& version : it->second) {
        used_bytes_ -= version.data.size();
      }
      objects_.erase(it);
    }
    return HttpResponse::Ok(ToBytes(std::string("{}")), "application/json");
  }

  return HttpResponse::Error(404, StrCat("no route ", request.path));
}

HttpResponse RestVendorServer::HandleXml(const HttpRequest& request) {
  if (request.Header("x-api-key") != options_.api_key) {
    return HttpResponse::Error(401, "bad api key", "application/xml");
  }

  if (request.path == "/v1/objects" && request.method == HttpMethod::kGet) {
    const std::string prefix(request.Query("prefix"));
    XmlElement root("ListResult");
    for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
      if (!StartsWith(it->first, prefix)) {
        break;
      }
      for (const StoredObject& version : it->second) {
        XmlElement& object = root.AddChild("Object");
        object.SetAttribute("name", it->first);
        object.SetAttribute("size", StrCat(version.data.size()));
        object.SetAttribute("modified", StrCat(version.modified_time));
      }
    }
    return HttpResponse::Ok(ToBytes(root.Dump()), "application/xml");
  }

  if (request.path == "/v1/objects" && request.method == HttpMethod::kPut) {
    const std::string name(request.Query("name"));
    if (name.empty()) {
      return HttpResponse::Error(400, "missing name", "application/xml");
    }
    if (Status stored = StoreObject(name, request.body); !stored.ok()) {
      return HttpResponse::Error(
          stored.code() == StatusCode::kResourceExhausted ? 507 : 500,
          stored.message(), "application/xml");
    }
    XmlElement root("PutResult");
    root.SetAttribute("name", name);
    root.SetAttribute("size", StrCat(request.body.size()));
    return HttpResponse::Ok(ToBytes(root.Dump()), "application/xml");
  }

  if (request.path == "/v1/object" && request.method == HttpMethod::kGet) {
    const std::string name(request.Query("name"));
    auto it = objects_.find(name);
    if (it == objects_.end() || it->second.empty()) {
      return NotFoundResponse(name);
    }
    return HttpResponse::Ok(it->second.back().data, "application/octet-stream");
  }

  if (request.path == "/v1/objects" && request.method == HttpMethod::kDelete) {
    const std::string name(request.Query("name"));
    auto it = objects_.find(name);
    if (it != objects_.end()) {
      for (const StoredObject& version : it->second) {
        used_bytes_ -= version.data.size();
      }
      objects_.erase(it);
    }
    XmlElement root("Deleted");
    return HttpResponse::Ok(ToBytes(root.Dump()), "application/xml");
  }

  return HttpResponse::Error(404, StrCat("no route ", request.path), "application/xml");
}

}  // namespace cyrus
