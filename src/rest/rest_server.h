// Simulated vendor REST endpoints.
//
// Each RestVendorServer is one provider's HTTP API surface, in one of two
// dialects mirroring Table 2's split:
//   kJson - OAuth 2.0 bearer tokens, JSON bodies (Dropbox/Drive/Box style);
//   kXml  - API-key header, XML bodies (S3/SugarSync/Rackspace style).
// Both sit on the same versioned object store semantics as SimulatedCsp
// (name-keyed overwrite vs id-keyed duplication) so the heterogeneity the
// paper designs around shows up at the HTTP layer too. Handle() is the
// wire boundary: the connector builds an HttpRequest, the server returns
// an HttpResponse - nothing else crosses.
//
// JSON routes:
//   POST /oauth2/token               (form body: authorization_code/refresh)
//   GET  /files/list?prefix=
//   POST /files/upload?name=         (raw body)
//   GET  /files/download?name=
//   POST /files/delete?name=
// XML routes:
//   GET    /v1/objects?prefix=
//   PUT    /v1/objects?name=         (raw body)
//   GET    /v1/object?name=
//   DELETE /v1/objects?name=
#ifndef SRC_REST_REST_SERVER_H_
#define SRC_REST_REST_SERVER_H_

#include <map>
#include <mutex>
#include <string>

#include "src/cloud/simulated_csp.h"  // NamingPolicy
#include "src/obs/metrics.h"
#include "src/rest/http.h"
#include "src/rest/oauth.h"

namespace cyrus {

// Serves a GET /metrics scrape from `registry` (nullptr = the process-wide
// default): Prometheus text by default, the JSON snapshot on ?format=json,
// 405 on any other method. Shared by every HTTP surface with a scrape
// endpoint (the vendor simulators and the multi-tenant gateway), so the
// exposition behaves identically wherever it is mounted.
HttpResponse ServeMetricsEndpoint(const obs::MetricsRegistry* registry,
                                  const HttpRequest& request);

enum class ApiDialect { kJson, kXml };

struct RestVendorOptions {
  std::string id;
  ApiDialect dialect = ApiDialect::kJson;
  NamingPolicy naming = NamingPolicy::kNameKeyed;
  // OAuth app registration (JSON dialect).
  std::string client_id = "cyrus-app";
  std::string client_secret = "secret";
  std::string authorization_code = "granted";
  double token_lifetime_seconds = 3600.0;
  // API key (XML dialect).
  std::string api_key = "api-key";
  uint64_t quota_bytes = 0;  // 0 = unlimited
  // Registry served by GET /metrics (Prometheus text; ?format=json for the
  // JSON snapshot). nullptr serves the process-wide default registry. The
  // route is unauthenticated and dialect-independent, like a real
  // sidecar's scrape endpoint.
  const obs::MetricsRegistry* metrics = nullptr;
};

class RestVendorServer {
 public:
  explicit RestVendorServer(RestVendorOptions options);

  // The wire boundary. Thread-safe.
  HttpResponse Handle(const HttpRequest& request);

  const RestVendorOptions& options() const { return options_; }

  // Simulation controls.
  void set_time(double now);
  void set_available(bool available);
  // Expires all outstanding bearer tokens (forces connectors to refresh).
  void ExpireTokens();

  uint64_t used_bytes() const;
  uint64_t object_count() const;
  uint64_t requests_served() const;

 private:
  struct StoredObject {
    Bytes data;
    double modified_time = 0.0;
  };

  HttpResponse HandleJson(const HttpRequest& request);
  HttpResponse HandleXml(const HttpRequest& request);
  HttpResponse HandleToken(const HttpRequest& request);
  HttpResponse HandleMetrics(const HttpRequest& request);

  // Store primitives (mutex held by caller).
  Status StoreObject(std::string_view name, ByteSpan data);
  HttpResponse NotFoundResponse(std::string_view name) const;

  mutable std::mutex mutex_;
  RestVendorOptions options_;
  OAuthService oauth_;
  bool available_ = true;
  double now_ = 0.0;
  uint64_t used_bytes_ = 0;
  uint64_t requests_ = 0;
  std::map<std::string, std::vector<StoredObject>, std::less<>> objects_;
};

}  // namespace cyrus

#endif  // SRC_REST_REST_SERVER_H_
