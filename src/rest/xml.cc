#include "src/rest/xml.h"

#include "src/util/strings.h"

namespace cyrus {
namespace {

std::string XmlUnescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '&') {
      out.push_back(text[i]);
      continue;
    }
    const std::string_view rest = text.substr(i);
    if (StartsWith(rest, "&amp;")) {
      out.push_back('&');
      i += 4;
    } else if (StartsWith(rest, "&lt;")) {
      out.push_back('<');
      i += 3;
    } else if (StartsWith(rest, "&gt;")) {
      out.push_back('>');
      i += 3;
    } else if (StartsWith(rest, "&quot;")) {
      out.push_back('"');
      i += 5;
    } else if (StartsWith(rest, "&apos;")) {
      out.push_back('\'');
      i += 5;
    } else {
      out.push_back('&');
    }
  }
  return out;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<XmlElement> ParseDocument() {
    SkipWhitespace();
    // Optional <?xml ... ?> prologue.
    if (text_.substr(pos_, 2) == "<?") {
      const size_t end = text_.find("?>", pos_);
      if (end == std::string_view::npos) {
        return InvalidArgumentError("unterminated XML prologue");
      }
      pos_ = end + 2;
      SkipWhitespace();
    }
    CYRUS_ASSIGN_OR_RETURN(XmlElement root, ParseElement());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return InvalidArgumentError("trailing characters after XML root");
    }
    return root;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  static bool IsNameChar(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
           c == '-' || c == '_' || c == ':' || c == '.';
  }

  Result<std::string> ParseName() {
    const size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) {
      ++pos_;
    }
    if (pos_ == start) {
      return InvalidArgumentError("expected XML name");
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<XmlElement> ParseElement() {
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return InvalidArgumentError("expected '<'");
    }
    ++pos_;
    CYRUS_ASSIGN_OR_RETURN(std::string name, ParseName());
    XmlElement element(std::move(name));

    // Attributes.
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        return InvalidArgumentError("unterminated element start tag");
      }
      if (text_[pos_] == '/' || text_[pos_] == '>') {
        break;
      }
      CYRUS_ASSIGN_OR_RETURN(std::string key, ParseName());
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '=') {
        return InvalidArgumentError("expected '=' in attribute");
      }
      ++pos_;
      SkipWhitespace();
      if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) {
        return InvalidArgumentError("expected quoted attribute value");
      }
      const char quote = text_[pos_++];
      const size_t value_start = pos_;
      while (pos_ < text_.size() && text_[pos_] != quote) {
        ++pos_;
      }
      if (pos_ >= text_.size()) {
        return InvalidArgumentError("unterminated attribute value");
      }
      element.SetAttribute(std::move(key),
                           XmlUnescape(text_.substr(value_start, pos_ - value_start)));
      ++pos_;  // closing quote
    }

    // Self-closing?
    if (text_[pos_] == '/') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] != '>') {
        return InvalidArgumentError("malformed self-closing tag");
      }
      ++pos_;
      return element;
    }
    ++pos_;  // '>'

    // Content: interleaved text and child elements until the close tag.
    std::string text_content;
    for (;;) {
      if (pos_ >= text_.size()) {
        return InvalidArgumentError(StrCat("unterminated element <", element.name(), ">"));
      }
      if (text_[pos_] == '<') {
        if (text_.substr(pos_, 2) == "</") {
          pos_ += 2;
          CYRUS_ASSIGN_OR_RETURN(std::string close_name, ParseName());
          if (close_name != element.name()) {
            return InvalidArgumentError(
                StrCat("mismatched close tag </", close_name, "> for <", element.name(), ">"));
          }
          SkipWhitespace();
          if (pos_ >= text_.size() || text_[pos_] != '>') {
            return InvalidArgumentError("malformed close tag");
          }
          ++pos_;
          element.set_text(XmlUnescape(text_content));
          return element;
        }
        CYRUS_ASSIGN_OR_RETURN(XmlElement child, ParseElement());
        element.AddChild("") = std::move(child);
      } else {
        text_content.push_back(text_[pos_++]);
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string XmlEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string_view XmlElement::Attribute(std::string_view key) const {
  auto it = attributes_.find(std::string(key));
  return it == attributes_.end() ? std::string_view() : std::string_view(it->second);
}

XmlElement& XmlElement::AddChild(std::string name) {
  children_.emplace_back(std::move(name));
  return children_.back();
}

const XmlElement* XmlElement::Child(std::string_view name) const {
  for (const XmlElement& child : children_) {
    if (child.name() == name) {
      return &child;
    }
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::Children(std::string_view name) const {
  std::vector<const XmlElement*> out;
  for (const XmlElement& child : children_) {
    if (child.name() == name) {
      out.push_back(&child);
    }
  }
  return out;
}

std::string XmlElement::Dump() const {
  std::string out = "<" + name_;
  for (const auto& [key, value] : attributes_) {
    out += " " + key + "=\"" + XmlEscape(value) + "\"";
  }
  if (text_.empty() && children_.empty()) {
    out += "/>";
    return out;
  }
  out += ">";
  out += XmlEscape(text_);
  for (const XmlElement& child : children_) {
    out += child.Dump();
  }
  out += "</" + name_ + ">";
  return out;
}

Result<XmlElement> XmlElement::Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace cyrus
