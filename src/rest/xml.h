// A small XML element model, parser, and serializer.
//
// Several Table 2 providers (Amazon S3, SugarSync, 4Shared...) speak XML;
// the XML-flavoured simulated endpoint uses this module. Supports nested
// elements, attributes, text content, and entity escaping - enough for
// storage-API payloads; no namespaces, comments, or processing
// instructions beyond skipping an <?xml ...?> prologue.
#ifndef SRC_REST_XML_H_
#define SRC_REST_XML_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/util/result.h"

namespace cyrus {

class XmlElement {
 public:
  XmlElement() = default;
  explicit XmlElement(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  const std::map<std::string, std::string>& attributes() const { return attributes_; }
  void SetAttribute(std::string key, std::string value) {
    attributes_[std::move(key)] = std::move(value);
  }
  std::string_view Attribute(std::string_view key) const;

  const std::vector<XmlElement>& children() const { return children_; }
  XmlElement& AddChild(std::string name);
  // First child with the given name, or nullptr.
  const XmlElement* Child(std::string_view name) const;
  // All children with the given name.
  std::vector<const XmlElement*> Children(std::string_view name) const;

  // Serializes "<name attr="v">text<child/>...</name>".
  std::string Dump() const;

  // Parses a document with one root element (an <?xml?> prologue is
  // skipped if present).
  static Result<XmlElement> Parse(std::string_view text);

 private:
  std::string name_;
  std::string text_;
  std::map<std::string, std::string> attributes_;
  std::vector<XmlElement> children_;
};

// &<>"' escaping helpers.
std::string XmlEscape(std::string_view raw);

}  // namespace cyrus

#endif  // SRC_REST_XML_H_
