#include "src/rs/galois.h"

#include <cassert>

#include "src/rs/galois_kernels.h"

namespace cyrus {
namespace {

struct Tables {
  std::array<uint8_t, 510> exp{};
  std::array<uint16_t, 256> log{};

  Tables() {
    uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<uint8_t>(x);
      exp[i + 255] = static_cast<uint8_t>(x);
      log[x] = static_cast<uint16_t>(i);
      x <<= 1;
      if (x & 0x100) {
        x ^= Galois::kPolynomial;
      }
    }
    // log(0) does not exist; poison the entry so any unguarded use
    // indexes exp out of bounds (see Galois::kLogZeroSentinel).
    log[0] = Galois::kLogZeroSentinel;
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

const std::array<uint8_t, 510>& Galois::exp_table() { return tables().exp; }
const std::array<uint16_t, 256>& Galois::log_table() { return tables().log; }

uint8_t Galois::Div(uint8_t a, uint8_t b) {
  assert(b != 0);
  if (a == 0) {
    return 0;
  }
  const int diff = static_cast<int>(log_table()[a]) - static_cast<int>(log_table()[b]);
  return exp_table()[diff < 0 ? diff + 255 : diff];
}

uint8_t Galois::Inverse(uint8_t a) {
  assert(a != 0);
  return exp_table()[255 - log_table()[a]];
}

uint8_t Galois::Pow(uint8_t a, unsigned power) {
  if (power == 0) {
    return 1;
  }
  if (a == 0) {
    return 0;
  }
  const unsigned log_result = (static_cast<unsigned>(log_table()[a]) * power) % 255;
  return exp_table()[log_result];
}

void Galois::MulAddRow(uint8_t c, ByteSpan src, MutableByteSpan dst) {
  assert(src.size() == dst.size());
  ActiveGaloisKernels().mul_add_row(c, src.data(), dst.data(), src.size());
}

void Galois::MulRow(uint8_t c, ByteSpan src, MutableByteSpan dst) {
  assert(src.size() == dst.size());
  ActiveGaloisKernels().mul_row(c, src.data(), dst.data(), src.size());
}

}  // namespace cyrus
