// GF(2^8) arithmetic for Reed-Solomon coding.
//
// The field is GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1) (0x11d, the polynomial
// used by most storage RS codes). Multiplication and division go through
// log/exp tables built once at static-initialization time.
#ifndef SRC_RS_GALOIS_H_
#define SRC_RS_GALOIS_H_

#include <array>
#include <cstdint>

#include "src/util/bytes.h"

namespace cyrus {

class Galois {
 public:
  static constexpr int kFieldSize = 256;
  static constexpr uint16_t kPolynomial = 0x11d;
  static constexpr uint8_t kGenerator = 2;  // primitive element

  // a + b and a - b coincide in characteristic 2.
  static uint8_t Add(uint8_t a, uint8_t b) { return a ^ b; }
  static uint8_t Sub(uint8_t a, uint8_t b) { return a ^ b; }

  static uint8_t Mul(uint8_t a, uint8_t b) {
    if (a == 0 || b == 0) {
      return 0;
    }
    return exp_table()[log_table()[a] + log_table()[b]];
  }

  // a / b; b must be nonzero.
  static uint8_t Div(uint8_t a, uint8_t b);

  // Multiplicative inverse; a must be nonzero.
  static uint8_t Inverse(uint8_t a);

  // a^power for power >= 0 (0^0 == 1 by convention).
  static uint8_t Pow(uint8_t a, unsigned power);

  // dst[i] ^= c * src[i] for all i: the inner loop of RS encoding. Spans
  // must be the same size. Runs on the runtime-dispatched SIMD kernel
  // (src/rs/galois_kernels.h); the scalar fallback is always available.
  static void MulAddRow(uint8_t c, ByteSpan src, MutableByteSpan dst);

  // dst[i] = c * src[i].
  static void MulRow(uint8_t c, ByteSpan src, MutableByteSpan dst);

  // log_table()[0] holds this out-of-range sentinel, NOT a field element:
  // log(0) does not exist, and every user of the table guards zero operands
  // before indexing (Mul, Div, Pow, the row kernels). The sentinel is large
  // enough that exp_table()[log_table()[0] + log_table()[b]] is an
  // out-of-bounds read for every b - so code that forgets the zero guard
  // (or copies the raw table into SIMD constants; build split tables from
  // Mul products instead, as galois_kernels.cc does) fails loudly under
  // ASan/debug instead of silently corrupting byte lanes.
  static constexpr uint16_t kLogZeroSentinel = 0x1FF;

  // The raw tables, exposed for the kernel layer and its tests. exp is
  // doubled (510 entries) so Mul can skip the mod-255 reduction.
  static const std::array<uint8_t, 510>& exp_table();
  static const std::array<uint16_t, 256>& log_table();
};

}  // namespace cyrus

#endif  // SRC_RS_GALOIS_H_
